// Package sunflow is a from-scratch reproduction of "Sunflow: Efficient
// Optical Circuit Scheduling for Coflows" (Huang, Sun and Ng, CoNEXT 2016).
//
// It provides the Sunflow circuit scheduling algorithm — non-preemptive at
// the intra-Coflow level over a Port Reservation Table, priority-ordered at
// the inter-Coflow level — together with the baselines the paper evaluates
// against (Solstice, TMS and Edmond on the circuit switch; Varys and Aalo on
// the packet switch), trace-driven flow-level simulators for both fabrics, a
// coflow-benchmark trace parser and a calibrated synthetic generator.
//
// The root package is a façade: it re-exports the types a typical user needs
// and offers one-call entry points for the common operations. Power users
// can reach the underlying machinery through the internal packages' public
// mirrors on these aliases.
//
// # Quick start
//
//	c := sunflow.NewCoflow(1, 0, []sunflow.Flow{
//		{Src: 0, Dst: 1, Bytes: 64e6},
//		{Src: 2, Dst: 3, Bytes: 128e6},
//	})
//	sched, err := sunflow.ScheduleOne(c, 4, sunflow.Options{
//		LinkBps: 1e9, Delta: 0.01,
//	})
//	fmt.Println(sched.CCT(0), sched.SwitchingCount())
package sunflow

import (
	"io"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/hybrid"
	"sunflow/internal/obs"
	"sunflow/internal/sim"
	"sunflow/internal/trace"
	"sunflow/internal/workload"
)

// Core traffic model.
type (
	// Flow is one point-to-point transfer inside a Coflow.
	Flow = coflow.Flow
	// Coflow is a set of flows sharing one completion objective.
	Coflow = coflow.Coflow
	// Class is a Coflow's sender-to-receiver ratio category.
	Class = coflow.Class
)

// Coflow classes (Table 4 of the paper).
const (
	OneToOne   = coflow.OneToOne
	OneToMany  = coflow.OneToMany
	ManyToOne  = coflow.ManyToOne
	ManyToMany = coflow.ManyToMany
)

// Scheduler configuration and results.
type (
	// Options configures the Sunflow scheduler (bandwidth B, reconfiguration
	// delay δ, start time, reservation ordering).
	Options = core.Options
	// Schedule is a Coflow's circuit reservations and timing.
	Schedule = core.Schedule
	// Reservation is one circuit held on a port pair for an interval.
	Reservation = core.Reservation
	// PRT is the Port Reservation Table shared by scheduled Coflows.
	PRT = core.PRT
	// Order selects the intra-Coflow reservation ordering.
	Order = core.Order
	// Policy orders Coflows by priority for inter-Coflow scheduling.
	Policy = core.Policy
	// ShortestFirst is the shortest-Coflow-first policy of the evaluation.
	ShortestFirst = core.ShortestFirst
	// FIFO serves Coflows in arrival order.
	FIFO = core.FIFO
	// PriorityClasses serves operator-assigned classes strictly.
	PriorityClasses = core.PriorityClasses
	// FairWindows is the starvation-avoidance configuration of §4.2.
	FairWindows = core.FairWindows
)

// Reservation orderings (§5.3.1).
const (
	OrderedPort  = core.OrderedPort
	RandomOrder  = core.RandomOrder
	SortedDemand = core.SortedDemand
)

// Simulation types.
type (
	// SimResult reports per-Coflow completion times of a simulation run.
	SimResult = sim.Result
	// CircuitOptions configures the online circuit-switched simulation.
	CircuitOptions = sim.CircuitOptions
	// PacketOptions configures the packet-switched simulation.
	PacketOptions = sim.PacketOptions
	// RateAllocator computes packet-switched flow rates (Varys, Aalo, fair).
	RateAllocator = fabric.RateAllocator
)

// Fault injection (docs/FAULTS.md). A FaultPlan in CircuitOptions.Faults or
// PacketOptions.Faults deterministically injects port outages, circuit-setup
// failures (retried with exponential backoff, each attempt re-paying δ),
// degraded link rates and straggler flows; a nil or zero plan leaves the
// simulation bit-identical to the fault-free baseline. Flows a permanent
// failure makes unroutable are quarantined into SimResult.Partial.
type (
	// FaultPlan declares the faults of one simulation run.
	FaultPlan = fault.Plan
	// PortFailure is one scripted port outage in a FaultPlan.
	PortFailure = fault.PortFailure
	// PartialResult reports the flows stranded by permanent failures.
	PartialResult = sim.PartialResult
)

// DecodeFaultPlan reads and validates a JSON FaultPlan. Unknown fields,
// malformed probabilities and negative times are rejected.
func DecodeFaultPlan(r io.Reader) (*FaultPlan, error) { return fault.DecodePlan(r) }

// Hybrid fabric extension (§6 / REACToR).
type (
	// HybridOptions configures a hybrid circuit/packet fabric.
	HybridOptions = hybrid.Options
	// HybridResult reports a hybrid simulation.
	HybridResult = hybrid.Result
)

// Observability. An Observer threads counters and an optional JSONL event
// trace through the simulators and schedulers (CircuitOptions.Obs,
// Options.Obs, allocator Obs fields); a nil Observer disables everything.
type (
	// Observer is the instrumentation handle; see NewObserver.
	Observer = obs.Observer
	// ObsSummary is the headline metric set of one Observer scope.
	ObsSummary = obs.Summary
	// ObsEvent is one structured simulation trace event.
	ObsEvent = obs.Event
	// ObsSink consumes trace events (obs.NewJSONLSink writes JSON Lines).
	ObsSink = obs.Sink
)

// NewObserver returns an Observer with tracing disabled; metrics accumulate
// in a fresh registry and Snapshot()/Summary() export them.
func NewObserver() *Observer { return obs.New() }

// NewTracingObserver returns an Observer that additionally emits structured
// simulation events to w as JSON Lines. Flush (or Close) the returned sink
// before reading the output.
func NewTracingObserver(w io.Writer) (*Observer, *obs.JSONLSink) {
	sink := obs.NewJSONLSink(w)
	return obs.NewWith(obs.NewRegistry(), sink), sink
}

// SimulateHybrid replays the workload on a hybrid fabric: a Sunflow-
// scheduled circuit switch for bulk flows plus a small-bandwidth packet
// network for flows below the threshold.
func SimulateHybrid(cs []*Coflow, opts HybridOptions) (HybridResult, error) {
	return hybrid.Run(cs, opts)
}

// Trace tooling.
type (
	// Trace is a Coflow workload over an N-port fabric.
	Trace = trace.Trace
	// TraceGenerator synthesizes Facebook-like workloads.
	TraceGenerator = trace.Generator
	// Job is one MapReduce shuffle in coflow-benchmark form.
	Job = trace.Job
)

// NewCoflow returns a Coflow with the given id, arrival time (seconds) and
// flows.
func NewCoflow(id int, arrival float64, flows []Flow) *Coflow {
	return coflow.New(id, arrival, flows)
}

// NewPRT returns an empty Port Reservation Table for an n-port switch.
func NewPRT(n int) *PRT { return core.NewPRT(n) }

// ScheduleOne runs the intra-Coflow Sunflow scheduler for a single Coflow on
// an empty n-port fabric and returns its schedule. The resulting CCT is
// provably within 2× of both the optimal circuit schedule and the circuit
// lower bound TcL (Lemma 1).
func ScheduleOne(c *Coflow, ports int, opts Options) (*Schedule, error) {
	return core.IntraCoflow(core.NewPRT(ports), c, opts)
}

// ScheduleAll runs inter-Coflow Sunflow scheduling: Coflows are sorted by
// policy (nil means shortest-Coflow-first) and scheduled in order over one
// shared PRT, so higher priority Coflows are never blocked by lower priority
// ones. Returned schedules parallel the policy order; the second return
// value is that order.
func ScheduleAll(cs []*Coflow, ports int, opts Options, policy Policy) ([]*Schedule, []*Coflow, error) {
	if policy == nil {
		policy = core.ShortestFirst{LinkBps: opts.LinkBps}
	}
	ordered := policy.Sort(cs)
	scheds, err := core.InterCoflow(core.NewPRT(ports), ordered, opts)
	return scheds, ordered, err
}

// SimulateCircuit replays a Coflow workload on a Sunflow-scheduled optical
// circuit switch, rescheduling on every arrival and completion without
// preempting established circuits, and returns per-Coflow CCTs.
func SimulateCircuit(cs []*Coflow, opts CircuitOptions) (SimResult, error) {
	return sim.RunCircuit(cs, opts)
}

// SimulatePacket replays a Coflow workload on a packet-switched fabric under
// the given rate allocator (varys.Allocator, aalo.Allocator or
// fabric.FairSharing) and returns per-Coflow CCTs.
func SimulatePacket(cs []*Coflow, ports int, linkBps float64, alloc RateAllocator) (SimResult, error) {
	return sim.RunPacket(cs, ports, linkBps, alloc)
}

// SimulatePacketOpts is SimulatePacket with the full option set — an
// Observer for metrics/tracing and a FaultPlan for degraded-fabric runs.
func SimulatePacketOpts(cs []*Coflow, opts PacketOptions) (SimResult, error) {
	return sim.RunPacketOpts(cs, opts)
}

// PacketLowerBound returns TpL, the Coflow's packet-switched completion
// lower bound (Equation 2).
func PacketLowerBound(c *Coflow, linkBps float64) float64 {
	return c.PacketLowerBound(linkBps)
}

// CircuitLowerBound returns TcL, the Coflow's circuit-switched completion
// lower bound under the not-all-stop model (Equation 4).
func CircuitLowerBound(c *Coflow, linkBps, delta float64) float64 {
	return c.CircuitLowerBound(linkBps, delta)
}

// ParseTrace reads a workload in the coflow-benchmark text format.
func ParseTrace(r io.Reader) (*Trace, error) { return trace.Parse(r) }

// Perturb applies the evaluation's ±frac flow-size perturbation with a
// floor, deterministically in seed (§5.1 uses frac = 0.05 and a 1 MB floor).
func Perturb(cs []*Coflow, frac, floorBytes float64, seed int64) []*Coflow {
	return workload.Perturb(cs, frac, floorBytes, seed)
}

// Idleness computes the §5.4 network idleness metric of a workload.
func Idleness(cs []*Coflow, linkBps float64) float64 {
	return workload.Idleness(cs, linkBps)
}
