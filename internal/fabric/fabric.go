// Package fabric models the network fabric of §2.1: one non-blocking N-port
// switch. It executes circuit-assignment schedules (the common output format
// of the preemptive schedulers Solstice, TMS and Edmond) under both the
// not-all-stop and the all-stop optical switch models, and defines the rate
// allocation contract used by the fluid packet-switched simulator.
package fabric

import (
	"fmt"
	"math"
	"sort"

	"sunflow/internal/obs"
)

// Assignment is one circuit configuration: a one-to-one matching between
// input and output ports (Match[i] is the output port of input port i, or -1
// for no circuit), held for Duration seconds of transmission time. Any
// reconfiguration delay is accounted by the executor, not included in
// Duration.
type Assignment struct {
	Match    []int
	Duration float64
}

// FlowKey identifies a flow by its (input, output) port pair.
type FlowKey struct{ Src, Dst int }

// finishEpsBytes is the residual demand below which a flow counts as
// delivered. Schedules are built in floating-point seconds, so a flow can be
// left a few bytes short of its demand by arithmetic noise; real flow sizes
// are megabytes, making this threshold negligible.
const finishEpsBytes = 16.0

// ExecResult reports the outcome of executing an assignment schedule against
// a demand matrix.
type ExecResult struct {
	// Finish is the time the last byte of real demand is delivered (the CCT
	// when execution starts at the Coflow's arrival).
	Finish float64
	// End is the time the full assignment sequence completes, including
	// trailing assignments that carry only dummy demand.
	End float64
	// SwitchCount is the number of circuit establishments: a circuit is
	// counted each time a port pair appears in an assignment without having
	// been connected in the previous one.
	SwitchCount int
	// Unserved is the total real demand (bytes) left unserved by the
	// schedule; zero for a complete schedule.
	Unserved float64
	// FlowFinish maps each flow with demand to its completion time.
	FlowFinish map[FlowKey]float64
}

// Model selects the optical switch behaviour during reconfiguration.
type Model int

const (
	// NotAllStop is the accurate model (§2.1): only the ports whose circuits
	// change stop for δ; unchanged circuits keep transmitting through an
	// assignment boundary.
	NotAllStop Model = iota
	// AllStop is the conventional model of the TSA literature: every circuit
	// stops for δ whenever any circuit is reconfigured.
	AllStop
)

// String names the model.
func (m Model) String() string {
	if m == AllStop {
		return "all-stop"
	}
	return "not-all-stop"
}

// Execute plays the assignment sequence against the remaining-demand matrix
// rem (bytes) starting at time start, with link bandwidth linkBps and
// reconfiguration delay delta, under the given switch model. rem is mutated
// in place: entries are reduced by the demand served, so callers may chain
// rounds (as TMS does) or pass a copy to preserve the original. Dummy demand
// added by stuffing is simply absent from rem, so circuits serving only
// dummy traffic idle through their slot.
func Execute(rem [][]float64, schedule []Assignment, linkBps, delta, start float64, model Model) (ExecResult, error) {
	return ExecuteObs(rem, schedule, linkBps, delta, start, model, nil)
}

// ExecuteObs is Execute with optional observability: when o is non-nil, each
// circuit establishment counts toward CircuitSetups, the δ time every circuit
// spends stopped accrues to SetupSeconds, the time circuits are held accrues
// to HoldSeconds and the per-port busy vectors, delivered bytes accrue to
// BytesDelivered, and — when a trace sink is attached — circuit_up/down
// events are emitted at assignment boundaries. A nil o pays one pointer check
// per assignment.
func ExecuteObs(rem [][]float64, schedule []Assignment, linkBps, delta, start float64, model Model, o *obs.Observer) (ExecResult, error) {
	n := len(rem)
	res := ExecResult{FlowFinish: make(map[FlowKey]float64)}
	for i := range rem {
		if len(rem[i]) != n {
			return res, fmt.Errorf("fabric: demand matrix is not square (%dx%d row %d)", n, len(rem[i]), i)
		}
	}

	// Per-assignment working state, hoisted out of the loop: prev holds the
	// surviving circuits, changed flags this slot's reconfigurations, seen is
	// the matching validator's stamp slice (seen[j] == stamp marks output j
	// used by the current assignment, so it never needs clearing).
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	changed := make([]bool, n)
	seen := make([]int, n)
	stamp := 0

	t := start
	res.Finish = start
	for _, a := range schedule {
		if len(a.Match) != n {
			return res, fmt.Errorf("fabric: assignment has %d entries for %d ports", len(a.Match), n)
		}
		if a.Duration < 0 {
			return res, fmt.Errorf("fabric: negative assignment duration %v", a.Duration)
		}
		stamp++
		if err := checkMatchingStamped(a.Match, seen, stamp); err != nil {
			return res, err
		}

		anyChange := false
		for i := range changed {
			changed[i] = false
		}
		for i, j := range a.Match {
			if j >= 0 && prev[i] != j {
				changed[i] = true
				anyChange = true
				res.SwitchCount++
				if o != nil {
					o.CircuitSetups.Inc()
				}
			}
			if o != nil && prev[i] >= 0 && prev[i] != j && o.TraceEnabled() {
				o.Emit(obs.Event{T: t, Kind: obs.KindCircuitDown, Coflow: -1, Src: i, Dst: prev[i]})
			}
		}

		// Under both models an assignment with any change extends the slot
		// by δ; the models differ in who transmits during that window.
		slotStart := t
		reconf := 0.0
		if anyChange && delta > 0 {
			reconf = delta
		}
		transmitEnd := slotStart + reconf + a.Duration

		for i, j := range a.Match {
			if j < 0 {
				continue
			}
			txStart := slotStart + reconf
			if model == NotAllStop && !changed[i] {
				// The circuit survived the boundary: it transmits through
				// the reconfiguration window of the other circuits.
				txStart = slotStart
			}
			if o != nil {
				// The circuit occupies its ports for the whole slot whether
				// or not it carries real demand; the stopped prefix is δ
				// time paid.
				o.SetupSeconds.Add(txStart - slotStart)
				o.HoldSeconds.Add(transmitEnd - slotStart)
				o.InBusySeconds.Add(i, transmitEnd-slotStart)
				o.OutBusySeconds.Add(j, transmitEnd-slotStart)
				if changed[i] && o.TraceEnabled() {
					// Bytes is omitted: assignment executors do not know the
					// per-circuit planned demand, only the slot capacity.
					o.Emit(obs.Event{T: slotStart, Kind: obs.KindCircuitUp, Coflow: -1, Src: i, Dst: j, Dur: txStart - slotStart})
				}
			}
			if rem[i][j] <= 0 {
				continue
			}
			capacity := (transmitEnd - txStart) * linkBps / 8
			served := math.Min(capacity, rem[i][j])
			rem[i][j] -= served
			if o != nil {
				o.BytesDelivered.Add(served)
			}
			if rem[i][j] <= finishEpsBytes {
				rem[i][j] = 0
				finish := txStart + served*8/linkBps
				res.FlowFinish[FlowKey{Src: i, Dst: j}] = finish
				if finish > res.Finish {
					res.Finish = finish
				}
			}
		}

		for i, j := range a.Match {
			if j >= 0 {
				prev[i] = j
			} else {
				prev[i] = -1
			}
		}
		t = transmitEnd
	}
	res.End = t
	if o != nil && o.TraceEnabled() {
		for i, j := range prev {
			if j >= 0 {
				o.Emit(obs.Event{T: t, Kind: obs.KindCircuitDown, Coflow: -1, Src: i, Dst: j})
			}
		}
	}

	for i := range rem {
		for j := range rem[i] {
			res.Unserved += rem[i][j]
		}
	}
	return res, nil
}

// checkMatching verifies the assignment respects the port constraint: no
// output port appears twice.
func checkMatching(match []int) error {
	return checkMatchingStamped(match, make([]int, len(match)), 1)
}

// checkMatchingStamped is checkMatching over a reused stamp slice: seen[j] ==
// stamp marks output j as used by this call, so callers validating many
// assignments (the executor) pay no per-assignment map or clearing cost —
// they bump the stamp instead. seen must have at least len(match) entries and
// stamp must not repeat across calls sharing a slice.
func checkMatchingStamped(match []int, seen []int, stamp int) error {
	for i, j := range match {
		if j < 0 {
			continue
		}
		if j >= len(match) {
			return fmt.Errorf("fabric: input %d matched to out-of-range output %d", i, j)
		}
		if seen[j] == stamp {
			return fmt.Errorf("fabric: output port %d matched twice", j)
		}
		seen[j] = stamp
	}
	return nil
}

// RateAllocator computes instantaneous flow rates for a packet-switched
// fabric. Implementations (Varys, Aalo, fair sharing) must respect the port
// capacity constraints of §2.1: the sum of rates across any input or output
// port may not exceed the link bandwidth.
type RateAllocator interface {
	// Allocate returns rates in bits/s for the remaining flows. remaining
	// maps each live Coflow id to its per-flow remaining bytes; attained
	// maps Coflow id to bytes already delivered (used by Aalo's D-CLAS);
	// arrival maps Coflow id to its arrival time (for FIFO tie-breaks).
	Allocate(remaining map[int]map[FlowKey]float64, attained map[int]float64, arrival map[int]float64, linkBps float64, ports int) map[int]map[FlowKey]float64
	// Name identifies the allocator in reports.
	Name() string
}

// SortedKeys returns the flow keys in (src, dst) order. Accumulating float
// sums over Go's randomized map iteration makes results differ in the last
// ulp between otherwise identical runs, so every allocator loop that sums or
// spends bandwidth walks this instead.
func SortedKeys(flows map[FlowKey]float64) []FlowKey {
	keys := make([]FlowKey, 0, len(flows))
	for k := range flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Src != keys[b].Src {
			return keys[a].Src < keys[b].Src
		}
		return keys[a].Dst < keys[b].Dst
	})
	return keys
}

// PortLoads sums remaining bytes per input and output port for one Coflow's
// remaining flows — the bottleneck computation shared by Varys' SEBF and the
// lower bounds.
func PortLoads(flows map[FlowKey]float64, ports int) (in, out []float64) {
	return PortLoadsKeys(SortedKeys(flows), flows, ports)
}

// PortLoadsKeys is PortLoads over an already-sorted key slice, for callers
// that walk the same flow set repeatedly and want to pay the sort once.
func PortLoadsKeys(keys []FlowKey, flows map[FlowKey]float64, ports int) (in, out []float64) {
	in = make([]float64, ports)
	out = make([]float64, ports)
	for _, k := range keys {
		in[k.Src] += flows[k]
		out[k.Dst] += flows[k]
	}
	return in, out
}
