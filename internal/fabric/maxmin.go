package fabric

import (
	"sort"
	"sync"
)

// MaxMinFairReference allocates max-min fair rates with textbook progressive
// filling: at each step the most contended port's capacity is split equally
// among its unfrozen flows, those flows are frozen at that rate, and the
// residue propagates. The bottleneck scan is deterministic — input ports in
// ascending order, then output ports, first strict minimum wins — so the
// allocation is a pure function of its arguments. availIn and availOut are
// mutated: the allocated rates are subtracted. The returned slice parallels
// flows.
//
// This is the dense O(rounds × flows) oracle; MaxMinFair replicates its
// selection with a lazy-invalidation heap and is proven bit-identical by the
// differential suite (DESIGN.md §8).
func MaxMinFairReference(flows []FlowKey, availIn, availOut []float64) []float64 {
	rates := make([]float64, len(flows))
	frozen := make([]bool, len(flows))
	remaining := len(flows)
	inCount := make([]int, len(availIn))
	outCount := make([]int, len(availOut))

	for remaining > 0 {
		// Count unfrozen flows per port.
		for p := range inCount {
			inCount[p] = 0
		}
		for p := range outCount {
			outCount[p] = 0
		}
		for idx, f := range flows {
			if frozen[idx] {
				continue
			}
			inCount[f.Src]++
			outCount[f.Dst]++
		}

		// Find the bottleneck: the port with the smallest equal share.
		// Ascending port order, in-side before out-side, strict < — the
		// deterministic tie-break the fast path's heap ordering mirrors.
		bottleShare := -1.0
		bottleIn, bottlePort := false, -1
		for p, c := range inCount {
			if c == 0 {
				continue
			}
			share := availIn[p] / float64(c)
			if bottleShare < 0 || share < bottleShare {
				bottleShare, bottleIn, bottlePort = share, true, p
			}
		}
		for p, c := range outCount {
			if c == 0 {
				continue
			}
			share := availOut[p] / float64(c)
			if bottleShare < 0 || share < bottleShare {
				bottleShare, bottleIn, bottlePort = share, false, p
			}
		}
		if bottlePort < 0 {
			break
		}
		if bottleShare < 0 {
			bottleShare = 0
		}

		// Freeze every unfrozen flow on the bottleneck port at the share, in
		// ascending flow order (the subtraction order is load-bearing for
		// bit-identity with the fast path).
		for idx, f := range flows {
			if frozen[idx] {
				continue
			}
			onPort := (bottleIn && f.Src == bottlePort) || (!bottleIn && f.Dst == bottlePort)
			if !onPort {
				continue
			}
			rates[idx] = bottleShare
			frozen[idx] = true
			remaining--
			availIn[f.Src] -= bottleShare
			availOut[f.Dst] -= bottleShare
			if availIn[f.Src] < 0 {
				availIn[f.Src] = 0
			}
			if availOut[f.Dst] < 0 {
				availOut[f.Dst] = 0
			}
		}
	}
	return rates
}

// mmEntry is one heap candidate: the equal share a port would give its
// unfrozen flows at the time the entry was pushed. Entries go stale when the
// port's availability or flow count changes; staleness is detected at pop
// time by recomputing the share.
type mmEntry struct {
	share float64
	side  int32 // 0 = input port, 1 = output port
	port  int32
}

// less orders entries exactly like the reference's bottleneck scan: smallest
// share first, input side before output side, then ascending port.
func (e mmEntry) less(o mmEntry) bool {
	if e.share != o.share {
		return e.share < o.share
	}
	if e.side != o.side {
		return e.side < o.side
	}
	return e.port < o.port
}

// maxminScratch holds the reusable state of the fast MaxMinFair: per-port
// unfrozen-flow counters, CSR-style per-port flow lists (ascending flow
// index, so the freeze order matches the reference's linear scan), frozen
// flags and the candidate heap.
type maxminScratch struct {
	frozen            []bool
	countIn, countOut []int32
	startIn, startOut []int32
	flowsIn, flowsOut []int32
	curIn, curOut     []int32
	heap              []mmEntry
}

var maxminPool = sync.Pool{New: func() any { return new(maxminScratch) }}

func (sc *maxminScratch) init(flows []FlowKey, nIn, nOut int) {
	if cap(sc.frozen) < len(flows) {
		sc.frozen = make([]bool, len(flows))
		sc.flowsIn = make([]int32, len(flows))
		sc.flowsOut = make([]int32, len(flows))
	}
	sc.frozen = sc.frozen[:len(flows)]
	for i := range sc.frozen {
		sc.frozen[i] = false
	}
	sc.flowsIn = sc.flowsIn[:len(flows)]
	sc.flowsOut = sc.flowsOut[:len(flows)]
	if cap(sc.countIn) < nIn {
		sc.countIn = make([]int32, nIn)
		sc.startIn = make([]int32, nIn+1)
		sc.curIn = make([]int32, nIn)
	}
	sc.countIn = sc.countIn[:nIn]
	sc.startIn = sc.startIn[:nIn+1]
	sc.curIn = sc.curIn[:nIn]
	if cap(sc.countOut) < nOut {
		sc.countOut = make([]int32, nOut)
		sc.startOut = make([]int32, nOut+1)
		sc.curOut = make([]int32, nOut)
	}
	sc.countOut = sc.countOut[:nOut]
	sc.startOut = sc.startOut[:nOut+1]
	sc.curOut = sc.curOut[:nOut]
	sc.heap = sc.heap[:0]

	for p := range sc.countIn {
		sc.countIn[p] = 0
	}
	for p := range sc.countOut {
		sc.countOut[p] = 0
	}
	for _, f := range flows {
		sc.countIn[f.Src]++
		sc.countOut[f.Dst]++
	}
	sc.startIn[0] = 0
	for p := 0; p < nIn; p++ {
		sc.startIn[p+1] = sc.startIn[p] + sc.countIn[p]
	}
	sc.startOut[0] = 0
	for p := 0; p < nOut; p++ {
		sc.startOut[p+1] = sc.startOut[p] + sc.countOut[p]
	}
	copy(sc.curIn, sc.startIn[:nIn])
	copy(sc.curOut, sc.startOut[:nOut])
	for idx, f := range flows {
		sc.flowsIn[sc.curIn[f.Src]] = int32(idx)
		sc.curIn[f.Src]++
		sc.flowsOut[sc.curOut[f.Dst]] = int32(idx)
		sc.curOut[f.Dst]++
	}
}

func (sc *maxminScratch) push(e mmEntry) {
	sc.heap = append(sc.heap, e)
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sc.heap[i].less(sc.heap[parent]) {
			break
		}
		sc.heap[i], sc.heap[parent] = sc.heap[parent], sc.heap[i]
		i = parent
	}
}

func (sc *maxminScratch) pop() mmEntry {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.heap = h[:last]
	h = sc.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].less(h[small]) {
			small = l
		}
		if r < len(h) && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// MaxMinFair is the fast progressive-filling allocator: the bottleneck
// search runs on a min-heap of (share, side, port) candidates with lazy
// invalidation — a popped candidate is used only if its share still equals
// the port's current availability over its current unfrozen-flow count — and
// the freeze step walks a per-port flow list instead of rescanning all
// flows. Each port bottlenecks at most once, so the whole allocation is
// O(flows · log ports) instead of the reference's O(rounds × flows). Working
// state is pooled; only the returned rate slice is allocated.
//
// The heap ordering and the ascending freeze/subtraction order replicate
// MaxMinFairReference exactly, so the two return bit-identical rates (the
// differential suite pins this). availIn and availOut are mutated as in the
// reference.
func MaxMinFair(flows []FlowKey, availIn, availOut []float64) []float64 {
	rates := make([]float64, len(flows))
	if len(flows) == 0 {
		return rates
	}
	sc := maxminPool.Get().(*maxminScratch)
	defer maxminPool.Put(sc)
	sc.init(flows, len(availIn), len(availOut))

	for p := range sc.countIn {
		if c := sc.countIn[p]; c > 0 {
			sc.push(mmEntry{share: availIn[p] / float64(c), side: 0, port: int32(p)})
		}
	}
	for p := range sc.countOut {
		if c := sc.countOut[p]; c > 0 {
			sc.push(mmEntry{share: availOut[p] / float64(c), side: 1, port: int32(p)})
		}
	}

	remaining := len(flows)
	for remaining > 0 && len(sc.heap) > 0 {
		e := sc.pop()
		// Lazy invalidation: discard entries whose share no longer reflects
		// the port's current state. The freshest entry for every live port is
		// always in the heap, because every mutation below pushes one.
		var cnt int32
		var avail float64
		if e.side == 0 {
			cnt, avail = sc.countIn[e.port], availIn[e.port]
		} else {
			cnt, avail = sc.countOut[e.port], availOut[e.port]
		}
		if cnt == 0 || avail/float64(cnt) != e.share {
			continue
		}
		share := e.share
		if share < 0 {
			share = 0
		}

		var list []int32
		if e.side == 0 {
			list = sc.flowsIn[sc.startIn[e.port]:sc.startIn[e.port+1]]
		} else {
			list = sc.flowsOut[sc.startOut[e.port]:sc.startOut[e.port+1]]
		}
		for _, fi := range list {
			if sc.frozen[fi] {
				continue
			}
			f := flows[fi]
			rates[fi] = share
			sc.frozen[fi] = true
			remaining--
			sc.countIn[f.Src]--
			sc.countOut[f.Dst]--
			availIn[f.Src] -= share
			availOut[f.Dst] -= share
			if availIn[f.Src] < 0 {
				availIn[f.Src] = 0
			}
			if availOut[f.Dst] < 0 {
				availOut[f.Dst] = 0
			}
			if c := sc.countIn[f.Src]; c > 0 {
				sc.push(mmEntry{share: availIn[f.Src] / float64(c), side: 0, port: int32(f.Src)})
			}
			if c := sc.countOut[f.Dst]; c > 0 {
				sc.push(mmEntry{share: availOut[f.Dst] / float64(c), side: 1, port: int32(f.Dst)})
			}
		}
	}
	return rates
}

// FairSharing is a RateAllocator that max-min fair shares the fabric among
// all live flows with no Coflow awareness — the per-flow fairness baseline a
// plain packet network would provide.
type FairSharing struct{}

// Allocate implements RateAllocator.
func (FairSharing) Allocate(remaining map[int]map[FlowKey]float64, attained map[int]float64, arrival map[int]float64, linkBps float64, ports int) map[int]map[FlowKey]float64 {
	availIn := fullAvail(ports, linkBps)
	availOut := fullAvail(ports, linkBps)

	var flows []FlowKey
	var owners []int
	for id, fs := range remaining {
		for k, b := range fs {
			if b > 0 {
				flows = append(flows, k)
				owners = append(owners, id)
			}
		}
	}
	sortFlows(flows, owners)
	rates := MaxMinFair(flows, availIn, availOut)

	out := make(map[int]map[FlowKey]float64, len(remaining))
	for idx, f := range flows {
		id := owners[idx]
		if out[id] == nil {
			out[id] = make(map[FlowKey]float64)
		}
		out[id][f] = rates[idx]
	}
	return out
}

// Name implements RateAllocator.
func (FairSharing) Name() string { return "per-flow-fair" }

// fullAvail returns a slice of ports entries all set to linkBps.
func fullAvail(ports int, linkBps float64) []float64 {
	a := make([]float64, ports)
	for i := range a {
		a[i] = linkBps
	}
	return a
}

// sortFlows orders flows (and their parallel owners) deterministically by
// (owner, src, dst), since map iteration order would otherwise leak into the
// allocation.
func sortFlows(flows []FlowKey, owners []int) {
	s := flowSorter{flows: flows, owners: owners}
	sort.Sort(s)
}

type flowSorter struct {
	flows  []FlowKey
	owners []int
}

func (s flowSorter) Len() int { return len(s.flows) }
func (s flowSorter) Swap(a, b int) {
	s.flows[a], s.flows[b] = s.flows[b], s.flows[a]
	s.owners[a], s.owners[b] = s.owners[b], s.owners[a]
}
func (s flowSorter) Less(a, b int) bool {
	if s.owners[a] != s.owners[b] {
		return s.owners[a] < s.owners[b]
	}
	if s.flows[a].Src != s.flows[b].Src {
		return s.flows[a].Src < s.flows[b].Src
	}
	return s.flows[a].Dst < s.flows[b].Dst
}

// PacedFairSharing is FairSharing that recomputes only on Coflow arrivals
// and completions — the approximation large-scale experiments use for the
// hybrid fabric's packet path, where per-flow-completion reallocation over
// tens of thousands of flows is prohibitively expensive to simulate and
// immaterial to the results (the path carries only mice).
type PacedFairSharing struct{ FairSharing }

// PacedByCoflowEvents reports the paced recomputation schedule.
func (PacedFairSharing) PacedByCoflowEvents() bool { return true }

// Name identifies the allocator in reports.
func (PacedFairSharing) Name() string { return "per-flow-fair-paced" }
