package fabric

import "sort"

// MaxMinFair allocates max-min fair rates to the given flows subject to the
// available per-port bandwidth, using progressive filling: at each step the
// most contended port's capacity is split equally among its unfrozen flows,
// those flows are frozen at that rate, and the residue propagates. availIn
// and availOut are mutated: the allocated rates are subtracted. The returned
// slice parallels flows.
func MaxMinFair(flows []FlowKey, availIn, availOut []float64) []float64 {
	rates := make([]float64, len(flows))
	frozen := make([]bool, len(flows))
	remaining := len(flows)

	for remaining > 0 {
		// Count unfrozen flows per port.
		inCount := make(map[int]int)
		outCount := make(map[int]int)
		for idx, f := range flows {
			if frozen[idx] {
				continue
			}
			inCount[f.Src]++
			outCount[f.Dst]++
		}

		// Find the bottleneck: the port with the smallest equal share.
		bottleShare := -1.0
		bottleIn, bottlePort := false, -1
		for p, c := range inCount {
			share := availIn[p] / float64(c)
			if bottleShare < 0 || share < bottleShare {
				bottleShare, bottleIn, bottlePort = share, true, p
			}
		}
		for p, c := range outCount {
			share := availOut[p] / float64(c)
			if bottleShare < 0 || share < bottleShare {
				bottleShare, bottleIn, bottlePort = share, false, p
			}
		}
		if bottlePort < 0 {
			break
		}
		if bottleShare < 0 {
			bottleShare = 0
		}

		// Freeze every unfrozen flow on the bottleneck port at the share.
		for idx, f := range flows {
			if frozen[idx] {
				continue
			}
			onPort := (bottleIn && f.Src == bottlePort) || (!bottleIn && f.Dst == bottlePort)
			if !onPort {
				continue
			}
			rates[idx] = bottleShare
			frozen[idx] = true
			remaining--
			availIn[f.Src] -= bottleShare
			availOut[f.Dst] -= bottleShare
			if availIn[f.Src] < 0 {
				availIn[f.Src] = 0
			}
			if availOut[f.Dst] < 0 {
				availOut[f.Dst] = 0
			}
		}
	}
	return rates
}

// FairSharing is a RateAllocator that max-min fair shares the fabric among
// all live flows with no Coflow awareness — the per-flow fairness baseline a
// plain packet network would provide.
type FairSharing struct{}

// Allocate implements RateAllocator.
func (FairSharing) Allocate(remaining map[int]map[FlowKey]float64, attained map[int]float64, arrival map[int]float64, linkBps float64, ports int) map[int]map[FlowKey]float64 {
	availIn := fullAvail(ports, linkBps)
	availOut := fullAvail(ports, linkBps)

	var flows []FlowKey
	var owners []int
	for id, fs := range remaining {
		for k, b := range fs {
			if b > 0 {
				flows = append(flows, k)
				owners = append(owners, id)
			}
		}
	}
	sortFlows(flows, owners)
	rates := MaxMinFair(flows, availIn, availOut)

	out := make(map[int]map[FlowKey]float64, len(remaining))
	for idx, f := range flows {
		id := owners[idx]
		if out[id] == nil {
			out[id] = make(map[FlowKey]float64)
		}
		out[id][f] = rates[idx]
	}
	return out
}

// Name implements RateAllocator.
func (FairSharing) Name() string { return "per-flow-fair" }

// fullAvail returns a slice of ports entries all set to linkBps.
func fullAvail(ports int, linkBps float64) []float64 {
	a := make([]float64, ports)
	for i := range a {
		a[i] = linkBps
	}
	return a
}

// sortFlows orders flows (and their parallel owners) deterministically by
// (owner, src, dst), since map iteration order would otherwise leak into the
// allocation.
func sortFlows(flows []FlowKey, owners []int) {
	s := flowSorter{flows: flows, owners: owners}
	sort.Sort(s)
}

type flowSorter struct {
	flows  []FlowKey
	owners []int
}

func (s flowSorter) Len() int { return len(s.flows) }
func (s flowSorter) Swap(a, b int) {
	s.flows[a], s.flows[b] = s.flows[b], s.flows[a]
	s.owners[a], s.owners[b] = s.owners[b], s.owners[a]
}
func (s flowSorter) Less(a, b int) bool {
	if s.owners[a] != s.owners[b] {
		return s.owners[a] < s.owners[b]
	}
	if s.flows[a].Src != s.flows[b].Src {
		return s.flows[a].Src < s.flows[b].Src
	}
	return s.flows[a].Dst < s.flows[b].Dst
}

// PacedFairSharing is FairSharing that recomputes only on Coflow arrivals
// and completions — the approximation large-scale experiments use for the
// hybrid fabric's packet path, where per-flow-completion reallocation over
// tens of thousands of flows is prohibitively expensive to simulate and
// immaterial to the results (the path carries only mice).
type PacedFairSharing struct{ FairSharing }

// PacedByCoflowEvents reports the paced recomputation schedule.
func (PacedFairSharing) PacedByCoflowEvents() bool { return true }

// Name identifies the allocator in reports.
func (PacedFairSharing) Name() string { return "per-flow-fair-paced" }
