//go:build race

package fabric

const raceEnabled = true
