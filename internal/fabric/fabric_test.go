package fabric

import (
	"math"
	"testing"
)

const gbps = 1e9

func TestExecuteSingleAssignment(t *testing.T) {
	rem := [][]float64{
		{1e6, 0},
		{0, 1e6},
	}
	asg := []Assignment{{Match: []int{0, 1}, Duration: 0.008}}
	res, err := Execute(rem, asg, gbps, 0.01, 0, NotAllStop)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchCount != 2 {
		t.Fatalf("SwitchCount = %d, want 2", res.SwitchCount)
	}
	if res.Unserved != 0 {
		t.Fatalf("Unserved = %v", res.Unserved)
	}
	// Both flows finish at δ + 8 ms.
	if math.Abs(res.Finish-0.018) > 1e-9 {
		t.Fatalf("Finish = %v, want 0.018", res.Finish)
	}
	if f := res.FlowFinish[FlowKey{0, 0}]; math.Abs(f-0.018) > 1e-9 {
		t.Fatalf("FlowFinish = %v", f)
	}
}

func TestExecuteUnchangedCircuitSkipsDelta(t *testing.T) {
	rem := [][]float64{
		{2e6, 0},
		{0, 1e6},
	}
	// Circuit [0,0] persists across both assignments; [1,1] only in the
	// second. Under not-all-stop, [0,0] transmits through the second
	// boundary's reconfiguration too.
	asg := []Assignment{
		{Match: []int{0, -1}, Duration: 0.008},
		{Match: []int{0, 1}, Duration: 0.008},
	}
	res, err := Execute(rem, asg, gbps, 0.01, 0, NotAllStop)
	if err != nil {
		t.Fatal(err)
	}
	// SwitchCount: [0,0] once, [1,1] once.
	if res.SwitchCount != 2 {
		t.Fatalf("SwitchCount = %d, want 2", res.SwitchCount)
	}
	// Flow (0,0): transmits [0.01,0.018) then [0.018,0.036) continuously;
	// finishes its 16 ms of demand at 0.01+0.016=0.026.
	if f := res.FlowFinish[FlowKey{0, 0}]; math.Abs(f-0.026) > 1e-9 {
		t.Fatalf("persistent circuit finish = %v, want 0.026", f)
	}
	// Flow (1,1) starts after the second reconfiguration at 0.018+0.01.
	if f := res.FlowFinish[FlowKey{1, 1}]; math.Abs(f-0.036) > 1e-9 {
		t.Fatalf("new circuit finish = %v, want 0.036", f)
	}
}

func TestExecuteAllStopStopsEverything(t *testing.T) {
	rem := [][]float64{
		{2e6, 0},
		{0, 1e6},
	}
	asg := []Assignment{
		{Match: []int{0, -1}, Duration: 0.008},
		{Match: []int{0, 1}, Duration: 0.008},
	}
	res, err := Execute(rem, asg, gbps, 0.01, 0, AllStop)
	if err != nil {
		t.Fatal(err)
	}
	// Under all-stop, [0,0] also pauses during the second δ: it transmits
	// [0.01,0.018) and [0.028,0.036) and leaves 16−16=0... it needs 16 ms
	// and gets exactly 8+8; finish = 0.036.
	if f := res.FlowFinish[FlowKey{0, 0}]; math.Abs(f-0.036) > 1e-9 {
		t.Fatalf("all-stop finish = %v, want 0.036", f)
	}
}

func TestExecuteDummyDemandIdles(t *testing.T) {
	rem := [][]float64{
		{1e6, 0},
		{0, 0},
	}
	asg := []Assignment{{Match: []int{0, 1}, Duration: 0.008}}
	res, err := Execute(rem, asg, gbps, 0.01, 0, NotAllStop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 0 {
		t.Fatalf("Unserved = %v", res.Unserved)
	}
	if _, ok := res.FlowFinish[FlowKey{1, 1}]; ok {
		t.Fatal("dummy circuit reported a flow finish")
	}
}

func TestExecuteRejectsBadMatching(t *testing.T) {
	rem := [][]float64{{1, 1}, {1, 1}}
	if _, err := Execute(rem, []Assignment{{Match: []int{0, 0}, Duration: 1}}, gbps, 0, 0, NotAllStop); err == nil {
		t.Fatal("duplicate output accepted")
	}
	if _, err := Execute(rem, []Assignment{{Match: []int{2, 1}, Duration: 1}}, gbps, 0, 0, NotAllStop); err == nil {
		t.Fatal("out-of-range output accepted")
	}
	if _, err := Execute(rem, []Assignment{{Match: []int{0}, Duration: 1}}, gbps, 0, 0, NotAllStop); err == nil {
		t.Fatal("short match accepted")
	}
	if _, err := Execute(rem, []Assignment{{Match: []int{0, 1}, Duration: -1}}, gbps, 0, 0, NotAllStop); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestExecuteReportsUnserved(t *testing.T) {
	rem := [][]float64{{10e6}}
	res, err := Execute(rem, []Assignment{{Match: []int{0}, Duration: 0.008}}, gbps, 0.01, 0, NotAllStop)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Unserved-9e6) > 1 {
		t.Fatalf("Unserved = %v, want 9e6", res.Unserved)
	}
}

func TestMaxMinFairEqualShares(t *testing.T) {
	flows := []FlowKey{{0, 0}, {1, 0}} // both contend for out.0
	in := []float64{gbps, gbps}
	out := []float64{gbps, gbps}
	rates := MaxMinFair(flows, in, out)
	if math.Abs(rates[0]-gbps/2) > 1 || math.Abs(rates[1]-gbps/2) > 1 {
		t.Fatalf("rates = %v", rates)
	}
	if math.Abs(out[0]) > 1 {
		t.Fatalf("out.0 avail = %v, want 0", out[0])
	}
}

func TestMaxMinFairBottleneckPropagation(t *testing.T) {
	// Flows A(0→0), B(1→0), C(1→1). out.0 is the bottleneck for A and B
	// (B/2 each); C then gets the rest of in.1: B − B/2 = B/2... then out.1
	// allows B so C gets B/2.
	flows := []FlowKey{{0, 0}, {1, 0}, {1, 1}}
	in := []float64{gbps, gbps}
	out := []float64{gbps, gbps}
	rates := MaxMinFair(flows, in, out)
	if math.Abs(rates[0]-gbps/2) > 1 || math.Abs(rates[1]-gbps/2) > 1 {
		t.Fatalf("contended rates = %v", rates)
	}
	if math.Abs(rates[2]-gbps/2) > 1 {
		t.Fatalf("C rate = %v, want %v", rates[2], gbps/2)
	}
}

func TestMaxMinFairRespectsCapacity(t *testing.T) {
	flows := []FlowKey{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	in := []float64{gbps, gbps}
	out := []float64{gbps, gbps}
	rates := MaxMinFair(flows, in, out)
	sumIn := map[int]float64{}
	sumOut := map[int]float64{}
	for i, f := range flows {
		sumIn[f.Src] += rates[i]
		sumOut[f.Dst] += rates[i]
	}
	for p, s := range sumIn {
		if s > gbps+1 {
			t.Fatalf("in.%d oversubscribed: %v", p, s)
		}
	}
	for p, s := range sumOut {
		if s > gbps+1 {
			t.Fatalf("out.%d oversubscribed: %v", p, s)
		}
	}
}

func TestFairSharingAllocator(t *testing.T) {
	remaining := map[int]map[FlowKey]float64{
		1: {FlowKey{0, 0}: 1e6},
		2: {FlowKey{1, 0}: 1e6},
	}
	rates := FairSharing{}.Allocate(remaining, nil, nil, gbps, 2)
	if math.Abs(rates[1][FlowKey{0, 0}]-gbps/2) > 1 {
		t.Fatalf("rates = %v", rates)
	}
	if (FairSharing{}).Name() == "" {
		t.Fatal("allocator must be named")
	}
}

func TestPortLoads(t *testing.T) {
	in, out := PortLoads(map[FlowKey]float64{
		{0, 1}: 5,
		{0, 2}: 3,
		{1, 2}: 2,
	}, 3)
	if in[0] != 8 || in[1] != 2 || out[2] != 5 || out[1] != 5 {
		t.Fatalf("PortLoads = %v %v", in, out)
	}
}
