package fabric

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Differential harness for the heap-based MaxMinFair: rates and the mutated
// availability vectors must equal the deterministic dense reference bit for
// bit over random flow populations, including heavy port collisions and
// exact-tie share patterns.

const quickCount = 200

func randomFlowSet(rng *rand.Rand) ([]FlowKey, []float64, []float64) {
	ports := 1 + rng.Intn(20)
	nf := rng.Intn(4 * ports)
	flows := make([]FlowKey, nf)
	for i := range flows {
		flows[i] = FlowKey{Src: rng.Intn(ports), Dst: rng.Intn(ports)}
	}
	availIn := make([]float64, ports)
	availOut := make([]float64, ports)
	for p := 0; p < ports; p++ {
		// Mostly uniform capacity — the production shape, and the one that
		// produces exact share ties — with occasional random perturbation.
		availIn[p] = 1e9
		availOut[p] = 1e9
		if rng.Intn(4) == 0 {
			availIn[p] = rng.Float64() * 2e9
		}
		if rng.Intn(4) == 0 {
			availOut[p] = rng.Float64() * 2e9
		}
	}
	return flows, availIn, availOut
}

func TestQuickMaxMinFairMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flows, availIn, availOut := randomFlowSet(rng)
		refIn := append([]float64(nil), availIn...)
		refOut := append([]float64(nil), availOut...)
		refRates := MaxMinFairReference(flows, refIn, refOut)
		fastRates := MaxMinFair(flows, availIn, availOut)
		if !reflect.DeepEqual(fastRates, refRates) {
			t.Logf("seed %d: rates diverge\nfast %v\nref  %v", seed, fastRates, refRates)
			return false
		}
		if !reflect.DeepEqual(availIn, refIn) || !reflect.DeepEqual(availOut, refOut) {
			t.Logf("seed %d: residual availability diverges", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinFairNoScratchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(17))
	flows, availIn, availOut := randomFlowSet(rng)
	in := make([]float64, len(availIn))
	out := make([]float64, len(availOut))
	// Warm the pool, then only the returned rate slice may allocate.
	copy(in, availIn)
	copy(out, availOut)
	MaxMinFair(flows, in, out)
	if avg := testing.AllocsPerRun(50, func() {
		copy(in, availIn)
		copy(out, availOut)
		MaxMinFair(flows, in, out)
	}); avg > 1 {
		t.Errorf("MaxMinFair allocates %.1f/op, want at most the rates slice", avg)
	}
}

// TestCheckMatchingTable pins the validator on the stamp-slice rewrite.
func TestCheckMatchingTable(t *testing.T) {
	cases := []struct {
		name  string
		match []int
		ok    bool
	}{
		{"empty", nil, true},
		{"all unmatched", []int{-1, -1, -1}, true},
		{"identity", []int{0, 1, 2}, true},
		{"permutation with holes", []int{2, -1, 0}, true},
		{"duplicate output", []int{1, 1, -1}, false},
		{"duplicate at distance", []int{2, 0, 2}, false},
		{"out of range", []int{0, 3, 1}, false},
		{"far out of range", []int{0, 99, 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := checkMatching(tc.match); (err == nil) != tc.ok {
				t.Errorf("checkMatching(%v) = %v, want ok=%v", tc.match, err, tc.ok)
			}
		})
	}
	// The stamped form must behave identically when the slice is reused
	// across calls without clearing.
	seen := make([]int, 3)
	for stamp, tc := range cases {
		if len(tc.match) > len(seen) {
			continue
		}
		if err := checkMatchingStamped(tc.match, seen, stamp+1); (err == nil) != tc.ok {
			t.Errorf("checkMatchingStamped(%v) = %v, want ok=%v", tc.match, err, tc.ok)
		}
	}
}
