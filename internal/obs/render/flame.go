package render

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"sunflow/internal/obs/replay"
)

// FlameOptions tunes FlameSVG.
type FlameOptions struct {
	// Width is the chart width in pixels; 0 selects 1100.
	Width int
	// Title overrides the default chart title.
	Title string
	// MinFrac drops frames narrower than this fraction of the time axis
	// (they would render below one pixel); 0 selects 2e-4.
	MinFrac float64
}

// phaseColor colours frames deterministically by phase name, so the same
// phase reads as the same colour across rows, runs and scopes.
func phaseColor(name string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return palette[h%uint32(len(palette))]
}

// FlameSVG renders the scope's span trees as a flamegraph-style icicle
// chart: x is the wall-clock offset from the profiler epoch, each depth
// level is one row growing downward, and every finished span is one frame
// coloured by phase name with a hover title carrying its exact timing and
// attributes. Because x is real elapsed time (not collapsed stacks), gaps
// between frames are genuine unprofiled wall time.
func FlameSVG(w io.Writer, s *replay.Scope, opt FlameOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 1100
	}
	minFrac := opt.MinFrac
	if minFrac <= 0 {
		minFrac = 2e-4
	}
	title := opt.Title
	if title == "" {
		name := s.Name
		if name == "" {
			name = "root"
		}
		title = fmt.Sprintf("%s — span profile", name)
	}

	t0, t1 := math.Inf(1), math.Inf(-1)
	depth := 0
	for _, r := range s.SpanRoots {
		r.Walk(func(n *replay.SpanNode, d int) {
			t0 = math.Min(t0, n.Wall)
			t1 = math.Max(t1, n.End())
			if d+1 > depth {
				depth = d + 1
			}
		})
	}
	if len(s.SpanRoots) == 0 || t1 <= t0 {
		t0, t1, depth = 0, 1, 1
	}
	span := t1 - t0

	height := marginTop + depth*(rowH+rowGap) + marginBot
	plotW := float64(width - marginL - 12)
	x := func(t float64) float64 { return float64(marginL) + (t-t0)/span*plotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="#ffffff"/>`+"\n")
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n",
		marginL, html.EscapeString(title))

	for i := 0; i <= 6; i++ {
		tt := t0 + span*float64(i)/6
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#e0e0e0"/>`+"\n",
			x(tt), marginTop-6, x(tt), height-marginBot+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" fill="#666" text-anchor="middle">%s</text>`+"\n",
			x(tt), height-marginBot+16, fmtSec(tt-t0))
	}
	for d := 0; d < depth; d++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#333" text-anchor="end">d%d</text>`+"\n",
			marginL-6, marginTop+d*(rowH+rowGap)+rowH-4, d)
	}

	frames := 0
	for _, r := range s.SpanRoots {
		r.Walk(func(n *replay.SpanNode, d int) {
			if n.Dur < span*minFrac {
				return
			}
			frames++
			w0, w1 := x(n.Wall), x(n.End())
			if w1-w0 < 0.5 {
				w1 = w0 + 0.5
			}
			y := marginTop + d*(rowH+rowGap)
			tip := fmt.Sprintf("%s  %s – %s  (dur %s, self %s)",
				n.Name, fmtSec(n.Wall-t0), fmtSec(n.End()-t0), fmtSec(n.Dur), fmtSec(n.Self()))
			for _, kv := range sortedAttrs(n.Attrs) {
				tip += "  " + kv
			}
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="#fff" stroke-width="0.5" rx="1"><title>%s</title></rect>`+"\n",
				w0, y, w1-w0, rowH, phaseColor(n.Name), html.EscapeString(tip))
			if w1-w0 > 40 {
				label := n.Name
				if maxChars := int((w1 - w0) / 6); len(label) > maxChars && maxChars > 1 {
					label = label[:maxChars-1] + "…"
				}
				fmt.Fprintf(&b, `<text x="%.2f" y="%d" font-size="9" fill="#fff">%s</text>`+"\n",
					w0+3, y+rowH-4, html.EscapeString(label))
			}
		})
	}

	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#666">%d spans (%d drawn), wall span %s; x = wall-clock offset, rows = span depth</text>`+"\n",
		marginL, height-6, countSpans(s), frames, fmtSec(span))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func countSpans(s *replay.Scope) int {
	n := 0
	for _, r := range s.SpanRoots {
		r.Walk(func(*replay.SpanNode, int) { n++ })
	}
	return n
}

// sortedAttrs renders attrs as deterministic "k=v" strings.
func sortedAttrs(attrs map[string]string) []string {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	// insertion sort: attrs are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + "=" + attrs[k]
	}
	return out
}

// PhaseTable renders a scope's per-phase span statistics as fixed-width
// text, self-time-ordered, with the reconciliation line the profile
// workflow checks: Σ self == Σ root durations.
func PhaseTable(w io.Writer, s *replay.Scope) error {
	phases := s.SpanPhases()
	name := s.Name
	if name == "" {
		name = "root"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — span phases (%d spans, %.6fs profiled)\n", name, countSpans(s), s.SpanTotal())
	fmt.Fprintf(&b, "  %-24s %8s %14s %14s %14s\n", "phase", "count", "total", "self", "max")
	var selfSum float64
	for _, p := range phases {
		selfSum += p.Self
		fmt.Fprintf(&b, "  %-24s %8d %14.6fs %14.6fs %14.6fs\n", p.Name, p.Count, p.Total, p.Self, p.Max)
	}
	fmt.Fprintf(&b, "  %-24s %8s %14s %14.6fs\n", "Σ self", "", "", selfSum)
	_, err := io.WriteString(w, b.String())
	return err
}
