package render

import (
	"fmt"
	"html"
	"io"
	"strings"

	"sunflow/internal/matrix"
)

// MatrixReport writes a single-file HTML roll-up of an experiment-matrix
// run: the spec, one table per scenario with per-scheduler means and both
// confidence intervals, an error-bar chart of average CCT per scenario, and
// the pairwise speedup table. Like Report, everything is inlined so CI can
// attach the file as one artifact.
func MatrixReport(w io.Writer, res *matrix.Result, title string) error {
	if title == "" {
		title = fmt.Sprintf("Sunflow matrix report — %s", res.Spec.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>\n",
		html.EscapeString(title), reportCSS)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	if res.Spec.Description != "" {
		fmt.Fprintf(&b, "<p>%s</p>\n", html.EscapeString(res.Spec.Description))
	}
	fmt.Fprintf(&b, "<p class=\"small\">%d cells × %d replications = %d runs · %.0f%% confidence · base seed %d · bootstrap %d resamples</p>\n",
		len(res.Cells), res.Spec.Replications, len(res.Cells)*res.Spec.Replications,
		res.Spec.Confidence*100, res.Spec.Seed, res.Spec.BootstrapResamples)

	for _, key := range scenarioOrder(res.Cells) {
		group := scenarioCells(res.Cells, key)
		fmt.Fprintf(&b, "<h2>Scenario %s</h2>\n", html.EscapeString(key))
		b.WriteString("<table><tr><th>scheduler</th><th>avg CCT</th><th>t-CI</th><th>bootstrap CI</th><th>stddev</th><th>p95 CCT</th><th>duty cycle</th><th>switches</th><th>digest</th></tr>\n")
		for _, c := range group {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>[%s, %s]</td><td>[%s, %s]</td><td>%s</td><td>%s</td><td>%.4f</td><td>%.0f</td><td class=\"small\">%s…</td></tr>\n",
				html.EscapeString(c.Scheduler),
				fmtSec(c.AvgCCT.Mean), fmtSec(c.AvgCCT.T.Lo), fmtSec(c.AvgCCT.T.Hi),
				fmtSec(c.AvgCCT.Boot.Lo), fmtSec(c.AvgCCT.Boot.Hi),
				fmtSec(c.AvgCCT.Stddev), fmtSec(c.P95CCT.Mean),
				c.DutyCycle.Mean, c.Switches.Mean, html.EscapeString(c.Digest[:12]))
		}
		b.WriteString("</table>\n")
		errorBarSVG(&b, group, 760)
	}

	if len(res.Speedups) > 0 {
		b.WriteString("<h2>Pairwise speedups (paired by seed; ratio &lt; 1 favors the numerator)</h2>\n")
		b.WriteString("<table><tr><th>scenario</th><th>ratio</th><th>mean</th><th>t-CI</th><th>bootstrap CI</th><th>pairs</th></tr>\n")
		for _, s := range res.Speedups {
			cls := ""
			if s.Ratio.T.Hi < 1 {
				cls = " class=\"ok\"" // numerator significantly faster
			} else if s.Ratio.T.Lo > 1 {
				cls = " class=\"bad\""
			}
			fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%s/%s</td><td>%.3f</td><td>[%.3f, %.3f]</td><td>[%.3f, %.3f]</td><td>%d</td></tr>\n",
				cls, html.EscapeString(s.Scenario),
				html.EscapeString(s.Numerator), html.EscapeString(s.Denominator),
				s.Ratio.Mean, s.Ratio.T.Lo, s.Ratio.T.Hi, s.Ratio.Boot.Lo, s.Ratio.Boot.Hi, s.Pairs)
		}
		b.WriteString("</table>\n")
	}

	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// scenarioOrder returns each scenario key once, in first-appearance order.
func scenarioOrder(cells []matrix.CellResult) []string {
	var order []string
	seen := map[string]bool{}
	for _, c := range cells {
		if key := c.Key(); !seen[key] {
			seen[key] = true
			order = append(order, key)
		}
	}
	return order
}

func scenarioCells(cells []matrix.CellResult, key string) []matrix.CellResult {
	var out []matrix.CellResult
	for _, c := range cells {
		if c.Key() == key {
			out = append(out, c)
		}
	}
	return out
}

// errorBarSVG draws one horizontal bar per scheduler: the mean average CCT
// with t-interval whiskers, scaled to the widest upper bound in the group.
func errorBarSVG(b *strings.Builder, group []matrix.CellResult, width int) {
	if len(group) == 0 {
		return
	}
	max := 0.0
	for _, c := range group {
		if c.AvgCCT.T.Hi > max {
			max = c.AvgCCT.T.Hi
		}
		if c.AvgCCT.Mean > max {
			max = c.AvgCCT.Mean
		}
	}
	if max <= 0 {
		return
	}
	const rowH, labelW, pad = 26, 90, 8
	plotW := width - labelW - 70
	height := len(group)*rowH + 2*pad
	x := func(v float64) float64 { return float64(labelW) + v/max*float64(plotW) }

	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" xmlns=\"http://www.w3.org/2000/svg\" font-family=\"sans-serif\" font-size=\"11\">\n", width, height)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" fill=\"#666\">avg CCT, mean with %.0f%% t-interval</text>\n",
		labelW, pad+4, group[0].AvgCCT.T.Confidence*100)
	for i, c := range group {
		y := pad + 10 + i*rowH
		cy := float64(y) + rowH/2 - 4
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.0f\" text-anchor=\"end\">%s</text>\n", labelW-6, cy+4, html.EscapeString(c.Scheduler))
		fmt.Fprintf(b, "<rect x=\"%d\" y=\"%.0f\" width=\"%.2f\" height=\"12\" fill=\"%s\" fill-opacity=\"0.75\"/>\n",
			labelW, cy-6, x(c.AvgCCT.Mean)-float64(labelW), colorFor(i))
		// Whiskers: a horizontal CI line with end caps.
		lo, hi := x(c.AvgCCT.T.Lo), x(c.AvgCCT.T.Hi)
		fmt.Fprintf(b, "<line x1=\"%.2f\" y1=\"%.0f\" x2=\"%.2f\" y2=\"%.0f\" stroke=\"#222\" stroke-width=\"1.5\"/>\n", lo, cy, hi, cy)
		for _, xc := range []float64{lo, hi} {
			fmt.Fprintf(b, "<line x1=\"%.2f\" y1=\"%.0f\" x2=\"%.2f\" y2=\"%.0f\" stroke=\"#222\" stroke-width=\"1.5\"/>\n", xc, cy-5, xc, cy+5)
		}
		fmt.Fprintf(b, "<text x=\"%.2f\" y=\"%.0f\">%s</text>\n", hi+6, cy+4, fmtSec(c.AvgCCT.Mean))
	}
	b.WriteString("</svg>\n")
}
