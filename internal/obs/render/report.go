package render

import (
	"fmt"
	"html"
	"io"
	"strings"

	"sunflow/internal/obs/replay"
	"sunflow/internal/stats"
)

const reportCSS = `body{font-family:sans-serif;margin:24px;color:#222;max-width:1100px}
h1{font-size:20px}h2{font-size:15px;margin-top:28px;border-bottom:1px solid #ddd;padding-bottom:4px}
table{border-collapse:collapse;font-size:12px;margin:8px 0}
td,th{border:1px solid #ccc;padding:4px 9px;text-align:right}
th{background:#f4f5f7}td:first-child,th:first-child{text-align:left}
.ok{color:#188038}.bad{color:#c5221f}.small{font-size:11px;color:#666}`

// Report writes a single-file HTML report for the analysis: per-scheduler
// summary and δ-overhead tables, CCT percentiles and CDF, duty-cycle bars,
// lint findings and per-port Gantt charts. Everything is inlined — the file
// can be mailed around or attached to CI with no side-cars.
func Report(w io.Writer, a *replay.Analysis, title string) error {
	if title == "" {
		title = "Sunflow trace report"
	}
	var scopes []*replay.Scope
	for _, name := range a.ScopeNames() {
		scopes = append(scopes, a.Scopes[name])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>\n",
		html.EscapeString(title), reportCSS)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	fmt.Fprintf(&b, "<p class=\"small\">%d events, %d scope(s), time span %s – %s</p>\n",
		a.Events, len(scopes), fmtSec(a.Start), fmtSec(a.End))

	if len(a.Violations) == 0 {
		b.WriteString("<p class=\"ok\">lint: no violations</p>\n")
	} else {
		fmt.Fprintf(&b, "<h2>Lint violations (%d)</h2>\n<table><tr><th>rule</th><th>scope</th><th>t</th><th>detail</th></tr>\n", len(a.Violations))
		max := len(a.Violations)
		if max > 100 {
			max = 100
		}
		for _, v := range a.Violations[:max] {
			scope := v.Scope
			if scope == "" {
				scope = "&lt;root&gt;"
			} else {
				scope = html.EscapeString(scope)
			}
			fmt.Fprintf(&b, "<tr class=\"bad\"><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(string(v.Rule)), scope, fmtSec(v.T), html.EscapeString(v.Msg))
		}
		b.WriteString("</table>\n")
		if len(a.Violations) > 100 {
			fmt.Fprintf(&b, "<p class=\"small\">… %d more suppressed</p>\n", len(a.Violations)-100)
		}
	}

	b.WriteString("<h2>Coflow completion times</h2>\n")
	b.WriteString("<table><tr><th>scheduler</th><th>coflows</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n")
	for _, s := range scopes {
		ccts := s.CCTs()
		if len(ccts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			scopeName(s), len(ccts),
			fmtSec(stats.Mean(ccts)), fmtSec(stats.Percentile(ccts, 50)),
			fmtSec(stats.Percentile(ccts, 95)), fmtSec(stats.Percentile(ccts, 99)),
			fmtSec(stats.Max(ccts)))
	}
	b.WriteString("</table>\n")
	cdfSVG(&b, scopes, 760)

	b.WriteString("<h2>Circuit accounting and δ overhead</h2>\n")
	b.WriteString("<table><tr><th>scheduler</th><th>setups</th><th>setup s</th><th>hold s</th><th>duty cycle</th><th>δ overhead</th><th>planned MB</th><th>windows</th></tr>\n")
	for _, s := range scopes {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%.6g</td><td>%.6g</td><td>%.4f</td><td>%.4f</td><td>%.1f</td><td>%d</td></tr>\n",
			scopeName(s), s.CircuitSetups, s.SetupSeconds, s.HoldSeconds,
			s.DutyCycle, s.DeltaOverhead(), s.PlannedBytes/1e6, s.Windows)
	}
	b.WriteString("</table>\n")
	dutySVG(&b, scopes, 760)

	for _, s := range scopes {
		if len(s.Circuits) == 0 {
			continue
		}
		fmt.Fprintf(&b, "<h2>Circuit timeline — %s</h2>\n", scopeName(s))
		if err := GanttSVG(&b, s, GanttOptions{Width: 1000, In: true}); err != nil {
			return err
		}
	}

	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func scopeName(s *replay.Scope) string {
	if s.Name == "" {
		return "root"
	}
	return html.EscapeString(s.Name)
}
