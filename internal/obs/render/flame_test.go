package render

import (
	"strings"
	"testing"

	"sunflow/internal/obs"
	"sunflow/internal/obs/replay"
)

func spanScope(t *testing.T) *replay.Scope {
	t.Helper()
	sev := func(name string, id, parent int64, wall, dur float64, attrs map[string]string) obs.Event {
		return obs.Event{
			Kind: obs.KindSpan, Scope: "sunflow", Coflow: -1, Src: -1, Dst: -1,
			Name: name, Span: id, Parent: parent, Wall: wall, Dur: dur, Attrs: attrs,
		}
	}
	a := replay.Analyze([]obs.Event{
		sev("intra", 3, 2, 0.2, 0.3, map[string]string{"planner": "fast"}),
		sev("sched.pass", 2, 1, 0.1, 0.5, nil),
		sev("sim.run", 1, 0, 0.0, 1.0, nil),
	})
	if len(a.Violations) != 0 {
		t.Fatalf("fixture trace does not lint: %v", a.Violations)
	}
	return a.Scope("sunflow")
}

func TestFlameSVG(t *testing.T) {
	var b strings.Builder
	if err := FlameSVG(&b, spanScope(t), FlameOptions{Width: 800}); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("output is not a closed SVG document")
	}
	for _, want := range []string{"sim.run", "sched.pass", "intra", "planner=fast", "3 spans (3 drawn)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG is missing %q", want)
		}
	}
	// Identical phase names must get identical colours across frames.
	if phaseColor("sched.pass") != phaseColor("sched.pass") {
		t.Errorf("phaseColor is not deterministic")
	}
}

func TestFlameSVGEmptyScope(t *testing.T) {
	s := &replay.Scope{}
	var b strings.Builder
	if err := FlameSVG(&b, s, FlameOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0 spans") {
		t.Errorf("empty scope should render a 0-span chart:\n%s", b.String())
	}
}

func TestFlameSVGDropsSubpixelFrames(t *testing.T) {
	sev := func(name string, id, parent int64, wall, dur float64) obs.Event {
		return obs.Event{
			Kind: obs.KindSpan, Coflow: -1, Src: -1, Dst: -1,
			Name: name, Span: id, Parent: parent, Wall: wall, Dur: dur,
		}
	}
	a := replay.Analyze([]obs.Event{
		sev("tiny", 2, 1, 0.5, 1e-9),
		sev("root", 1, 0, 0.0, 10.0),
	})
	var b strings.Builder
	if err := FlameSVG(&b, a.Scope(""), FlameOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2 spans (1 drawn)") {
		t.Errorf("want the sub-pixel frame dropped from drawing but counted:\n%s", b.String())
	}
}

func TestPhaseTable(t *testing.T) {
	var b strings.Builder
	if err := PhaseTable(&b, spanScope(t)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sunflow — span phases (3 spans, 1.000000s profiled)",
		"sim.run", "sched.pass", "intra", "Σ self",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
	// Self times telescope: the Σ self line carries the root duration.
	if !strings.Contains(out, "1.000000s") {
		t.Errorf("phase table should reconcile to 1.000000s:\n%s", out)
	}
}
