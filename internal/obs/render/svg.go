// Package render turns replay analyses into self-contained artifacts: SVG
// Gantt charts of per-port circuit timelines, CCT CDF plots, duty-cycle bar
// charts, and a single-file HTML report stitching them together — the raw
// material of the paper's figures, with no external assets or scripts.
package render

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"sunflow/internal/obs/replay"
)

// palette colours Coflows (and scopes) deterministically; unattributed
// circuits (Coflow −1) render grey.
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#86bcb6",
}

func colorFor(id int) string {
	if id < 0 {
		return "#9aa0a6"
	}
	return palette[id%len(palette)]
}

// GanttOptions tunes GanttSVG.
type GanttOptions struct {
	// Width is the chart width in pixels; 0 selects 960.
	Width int
	// In selects input-port (src) timelines; otherwise output ports.
	In bool
	// Title overrides the default chart title.
	Title string
}

const (
	rowH      = 16
	rowGap    = 4
	marginL   = 72
	marginTop = 34
	marginBot = 26
)

func fmtSec(t float64) string {
	switch {
	case t == 0:
		return "0"
	case math.Abs(t) < 1e-3:
		return fmt.Sprintf("%.0fµs", t*1e6)
	case math.Abs(t) < 1:
		return fmt.Sprintf("%.1fms", t*1e3)
	default:
		return fmt.Sprintf("%.3gs", t)
	}
}

// GanttSVG renders the scope's per-port circuit timeline as a standalone
// SVG document: one row per port, one rectangle per circuit hold with the δ
// reconfiguration prefix hatched dark, coloured by owning Coflow.
func GanttSVG(w io.Writer, s *replay.Scope, opt GanttOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 960
	}
	ports, segs := s.PortTimeline(opt.In)
	side := "output"
	if opt.In {
		side = "input"
	}
	title := opt.Title
	if title == "" {
		name := s.Name
		if name == "" {
			name = "root"
		}
		title = fmt.Sprintf("%s — %s-port circuit timeline", name, side)
	}

	t0, t1 := math.Inf(1), math.Inf(-1)
	for _, p := range ports {
		for _, seg := range segs[p] {
			t0 = math.Min(t0, seg.Start)
			t1 = math.Max(t1, seg.End)
		}
	}
	if len(ports) == 0 || t1 <= t0 {
		t0, t1 = 0, 1
	}
	span := t1 - t0

	height := marginTop + len(ports)*(rowH+rowGap) + marginBot
	plotW := float64(width - marginL - 12)
	x := func(t float64) float64 { return float64(marginL) + (t-t0)/span*plotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="#ffffff"/>`+"\n")
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n",
		marginL, html.EscapeString(title))

	// Time axis: a light gridline per tick.
	for i := 0; i <= 6; i++ {
		tt := t0 + span*float64(i)/6
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#e0e0e0"/>`+"\n",
			x(tt), marginTop-6, x(tt), height-marginBot+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" fill="#666" text-anchor="middle">%s</text>`+"\n",
			x(tt), height-marginBot+16, fmtSec(tt))
	}

	for row, p := range ports {
		y := marginTop + row*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#333" text-anchor="end">%s.%d</text>`+"\n",
			marginL-6, y+rowH-4, side[:len(side)-3], p)
		for _, seg := range segs[p] {
			w0, w1 := x(seg.Start), x(seg.End)
			if w1-w0 < 0.5 {
				w1 = w0 + 0.5
			}
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" rx="1"><title>coflow %d  (%d→%d)  %s – %s  δ %s</title></rect>`+"\n",
				w0, y, w1-w0, rowH, colorFor(seg.Coflow), seg.Coflow, seg.Port, seg.Peer,
				fmtSec(seg.Start), fmtSec(seg.End), fmtSec(seg.Setup))
			if seg.Setup > 0 {
				sw := x(seg.Start+seg.Setup) - w0
				if sw < 0.5 {
					sw = 0.5
				}
				fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="#000" fill-opacity="0.45"/>`+"\n",
					w0, y, sw, rowH)
			}
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#666">dark prefix = δ reconfiguration; span %s</text>`+"\n",
		marginL, height-6, fmtSec(span))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// cdfSVG plots one CCT CDF per scope as step curves.
func cdfSVG(b *strings.Builder, scopes []*replay.Scope, width int) {
	const h = 260
	const mL, mR, mT, mB = 56, 16, 28, 34
	xMax := 0.0
	any := false
	for _, s := range scopes {
		if ccts := s.CCTs(); len(ccts) > 0 {
			xMax = math.Max(xMax, ccts[len(ccts)-1])
			any = true
		}
	}
	if !any {
		return
	}
	if xMax <= 0 {
		xMax = 1
	}
	plotW, plotH := float64(width-mL-mR), float64(h-mT-mB)
	x := func(t float64) float64 { return mL + t/xMax*plotW }
	y := func(f float64) float64 { return mT + (1-f)*plotH }

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, h)
	fmt.Fprintf(b, `<rect width="100%%" height="100%%" fill="#fff"/>`+"\n")
	fmt.Fprintf(b, `<text x="%d" y="16" font-size="13" font-weight="bold">CCT CDF</text>`+"\n", mL)
	for i := 0; i <= 4; i++ {
		f := float64(i) / 4
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e8e8e8"/>`+"\n", mL, y(f), width-mR, y(f))
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="9" fill="#666" text-anchor="end">%.2f</text>`+"\n", mL-6, y(f)+3, f)
		tt := xMax * f
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="9" fill="#666" text-anchor="middle">%s</text>`+"\n", x(tt), h-mB+14, fmtSec(tt))
	}
	for si, s := range scopes {
		ccts := s.CCTs()
		if len(ccts) == 0 {
			continue
		}
		var pts strings.Builder
		fmt.Fprintf(&pts, "%.1f,%.1f", x(0), y(0))
		for i, c := range ccts {
			fmt.Fprintf(&pts, " %.1f,%.1f", x(c), y(float64(i)/float64(len(ccts))))
			fmt.Fprintf(&pts, " %.1f,%.1f", x(c), y(float64(i+1)/float64(len(ccts))))
		}
		col := palette[si%len(palette)]
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n", pts.String(), col)
		name := s.Name
		if name == "" {
			name = "root"
		}
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d" font-size="10">%s (%d coflows)</text>`+"\n",
			width-mR-170, mT+16*si, col, width-mR-155, mT+9+16*si, html.EscapeString(name), len(ccts))
	}
	b.WriteString("</svg>\n")
}

// dutySVG draws one duty-cycle bar per scope with a circuit timeline.
func dutySVG(b *strings.Builder, scopes []*replay.Scope, width int) {
	var withCircuits []*replay.Scope
	for _, s := range scopes {
		if s.HoldSeconds > 0 {
			withCircuits = append(withCircuits, s)
		}
	}
	if len(withCircuits) == 0 {
		return
	}
	const barH, gap, mL, mT = 22, 8, 110, 30
	h := mT + len(withCircuits)*(barH+gap) + 18
	plotW := float64(width - mL - 70)
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, h)
	fmt.Fprintf(b, `<rect width="100%%" height="100%%" fill="#fff"/>`+"\n")
	fmt.Fprintf(b, `<text x="%d" y="16" font-size="13" font-weight="bold">Duty cycle (transmit / hold)</text>`+"\n", mL)
	for i, s := range withCircuits {
		y := mT + i*(barH+gap)
		name := s.Name
		if name == "" {
			name = "root"
		}
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%s</text>`+"\n", mL-8, y+barH-7, html.EscapeString(name))
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#eceff1"/>`+"\n", mL, y, plotW, barH)
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
			mL, y, plotW*math.Max(0, math.Min(1, s.DutyCycle)), barH, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" fill="#333">%.4f</text>`+"\n",
			float64(mL)+plotW+6, y+barH-7, s.DutyCycle)
	}
	b.WriteString("</svg>\n")
}
