package render

import (
	"bytes"
	"strings"
	"testing"

	"sunflow/internal/matrix"
)

func matrixResult(t *testing.T) *matrix.Result {
	t.Helper()
	spec, err := matrix.ParseSpec([]byte(`{
	  "name": "render-test",
	  "schedulers": ["sunflow", "varys"],
	  "ports": [8],
	  "workloads": [{"name": "tiny", "coflows": 5, "max_width": 3}],
	  "replications": 2,
	  "seed": 3,
	  "bootstrap_resamples": 100
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.Run(spec, matrix.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMatrixReport(t *testing.T) {
	res := matrixResult(t)
	var buf bytes.Buffer
	if err := MatrixReport(&buf, res, ""); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		"render-test", "sunflow", "varys",
		"t-CI", "bootstrap CI", "Pairwise speedups",
		"<svg", "t-interval",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The error-bar SVG must be well-formed markup like every other chart.
	start := strings.Index(doc, "<svg")
	end := strings.Index(doc, "</svg>")
	if start < 0 || end < 0 {
		t.Fatal("no SVG emitted")
	}
	wellFormedXML(t, doc[start:end+len("</svg>")])
	// Every cell digest's prefix must appear, for eyeballing determinism
	// drift between two CI artifacts.
	for _, c := range res.Cells {
		if !strings.Contains(doc, c.Digest[:12]) {
			t.Errorf("report missing digest prefix for cell %d", c.Index)
		}
	}
}

func TestMatrixReportEmptySpeedups(t *testing.T) {
	res := matrixResult(t)
	res.Speedups = nil
	var buf bytes.Buffer
	if err := MatrixReport(&buf, res, "custom title"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Pairwise speedups") {
		t.Error("speedup section must be omitted when empty")
	}
	if !strings.Contains(buf.String(), "custom title") {
		t.Error("custom title not used")
	}
}
