package render

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"sunflow/internal/obs"
	"sunflow/internal/obs/replay"
	"sunflow/internal/sim"
	"sunflow/internal/trace"
)

func analysis(t *testing.T) *replay.Analysis {
	t.Helper()
	sink := &obs.SliceSink{}
	o := obs.NewWith(obs.NewRegistry(), sink).Scoped("sunflow")
	cs := trace.Generator{Ports: 8, Coflows: 6, MaxWidth: 4, Seed: 3}.Trace().Coflows
	if _, err := sim.RunCircuit(cs, sim.CircuitOptions{Ports: 8, LinkBps: 1e9, Delta: 0.01, Obs: o}); err != nil {
		t.Fatal(err)
	}
	return replay.Analyze(sink.Events())
}

// wellFormedXML rejects unescaped text and unbalanced tags — the failure
// modes of string-built SVG.
func wellFormedXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err == io.EOF {
			return
		} else if err != nil {
			t.Fatalf("malformed XML: %v\n%s", err, doc)
		}
	}
}

func TestGanttSVG(t *testing.T) {
	a := analysis(t)
	var buf bytes.Buffer
	if err := GanttSVG(&buf, a.Scope("sunflow"), GanttOptions{In: true}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	wellFormedXML(t, svg)
	for _, want := range []string{"<svg", "circuit timeline", "in.0", "coflow"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
	// One rect per closed circuit plus the background and δ prefixes.
	if n := strings.Count(svg, "<rect"); n < len(a.Scope("sunflow").Circuits) {
		t.Errorf("only %d rects for %d circuits", n, len(a.Scope("sunflow").Circuits))
	}
}

func TestGanttSVGEmptyScope(t *testing.T) {
	var buf bytes.Buffer
	empty := &replay.Scope{Name: "empty"}
	if err := GanttSVG(&buf, empty, GanttOptions{}); err != nil {
		t.Fatal(err)
	}
	wellFormedXML(t, buf.String())
}

func TestReport(t *testing.T) {
	a := analysis(t)
	var buf bytes.Buffer
	if err := Report(&buf, a, "unit test report"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "unit test report", "lint: no violations",
		"Coflow completion times", "CCT CDF", "Duty cycle",
		"δ overhead", "sunflow", "</html>",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportShowsViolations(t *testing.T) {
	a := replay.Analyze([]obs.Event{
		{T: 0, Kind: obs.KindCircuitUp, Coflow: -1, Src: 0, Dst: 1, Dur: 0.01},
	})
	var buf bytes.Buffer
	if err := Report(&buf, a, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unmatched_circuit_up") {
		t.Errorf("report does not surface the lint violation:\n%s", buf.String())
	}
}
