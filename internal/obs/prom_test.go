package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// validatePromText is a minimal checker for the Prometheus text exposition
// grammar: every non-comment line is `name[{label="value"}] number`, TYPE
// comments name metrics that actually appear, and histogram buckets are
// cumulative with a closing +Inf.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		val := line[sp+1:]
		if _, err := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64); err != nil {
			t.Fatalf("unparsable sample value %q in %q", val, line)
		}
		series := line[:sp]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = series[:i]
			labels := series[i+1 : len(series)-1]
			for _, l := range strings.Split(labels, ",") {
				eq := strings.IndexByte(l, '=')
				if eq < 0 || len(l) < eq+3 || l[eq+1] != '"' || l[len(l)-1] != '"' {
					t.Fatalf("malformed label %q in %q", l, line)
				}
			}
		}
		for _, c := range name {
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("invalid metric name character %q in %q", c, name)
			}
		}
		seen[name] = true
	}
	for name, kind := range typed {
		base := name
		if kind == "histogram" {
			if !seen[name+"_sum"] || !seen[name+"_count"] || !seen[name+"_bucket"] {
				t.Errorf("histogram %s missing _sum/_count/_bucket samples", name)
			}
			continue
		}
		if !seen[base] {
			t.Errorf("TYPE declared for %s but no sample emitted", name)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	o := NewWith(reg, nil)
	o.CircuitSetups.Add(3)
	o.SetupSeconds.Add(0.25)
	o.QueueDepth.Set(17)
	o.QueueDepth.Set(5)
	o.SchedPassTime.Observe(0.001)
	o.SchedPassTime.Observe(0.004)
	o.InBusySeconds.Add(0, 1.5)
	o.InBusySeconds.Add(3, 2.5)
	o.Scoped("sunflow").CircuitSetups.Inc()

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	validatePromText(t, out)

	for _, want := range []string{
		"# TYPE circuit_setups counter\ncircuit_setups 3\n",
		"circuit_setup_seconds 0.25\n",
		"sim_queue_depth 5\n",
		"sim_queue_depth_high 17\n",
		"sched_pass_seconds_count 2\n",
		"sched_pass_seconds_bucket{le=\"+Inf\"} 2\n",
		"port_in_busy_seconds{port=\"0\"} 1.5\n",
		"port_in_busy_seconds{port=\"3\"} 2.5\n",
		"sunflow_circuit_setups 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := WritePrometheus(&sb, nil); err != nil {
		t.Errorf("nil registry: %v", err)
	}
}

// TestPromHistogramCumulative checks skipped empty buckets keep cumulative
// counts monotone and consistent with the total.
func TestPromHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	for _, x := range []float64{1e-6, 1e-6, 0.5, 1024, 1024, 1024} {
		h.Observe(x)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	var last int64
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "h_bucket{") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative: %d after %d in %q", n, prev, line)
		}
		prev, last = n, n
	}
	if last != 6 {
		t.Errorf("final cumulative bucket = %d, want 6 (the +Inf bucket)", last)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"circuit.setups":         "circuit_setups",
		"sunflow.sched.passes":   "sunflow_sched_passes",
		"9lives":                 "_9lives",
		"ok_name:with:colons":    "ok_name:with:colons",
		"spaces and-dashes.dots": "spaces_and_dashes_dots",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromFloat covers the special values Prometheus spells specially.
func TestPromFloat(t *testing.T) {
	if got := promFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf rendered %q", got)
	}
	if got := promFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf rendered %q", got)
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN rendered %q", got)
	}
}
