package obs

import (
	"sync"
	"testing"
)

// TestHistogramQuantileEdges covers the degenerate shapes Quantile must
// handle: no observations, a single occupied bucket, and q at the extremes.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %v, want 0", got)
	}
	if got := empty.Quantile(1); got != 0 {
		t.Errorf("empty histogram Quantile(1) = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}

	// Single bucket: every quantile is clamped to the one observation.
	var single Histogram
	single.Observe(5)
	for _, q := range []float64{0.01, 0.5, 0.95, 1} {
		if got := single.Quantile(q); got != 5 {
			t.Errorf("single-observation Quantile(%v) = %v, want 5 (clamped to max)", q, got)
		}
	}

	// q=1 must return the max exactly, not a bucket upper bound above it.
	var h Histogram
	for _, x := range []float64{0.5, 1.5, 3, 7.25} {
		h.Observe(x)
	}
	if got := h.Quantile(1); got != 7.25 {
		t.Errorf("Quantile(1) = %v, want the exact max 7.25", got)
	}
	// A tiny q still ranks at least one observation.
	if got := h.Quantile(1e-12); got <= 0 {
		t.Errorf("Quantile(~0) = %v, want a positive bucket bound", got)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile not monotone: Quantile(%v) = %v < %v", q, got, prev)
		}
		prev = got
	}

	// Zero and negative observations land in bucket 0 and stay finite.
	var zero Histogram
	zero.Observe(0)
	if got := zero.Quantile(1); got != 0 {
		t.Errorf("all-zero Quantile(1) = %v, want 0 (max is 0)", got)
	}
}

// TestScopedConcurrentFirstUse hammers first-time scope creation from many
// goroutines; under -race this proves the scope cache is safe, and the
// pointer comparison proves every caller got the same child.
func TestScopedConcurrentFirstUse(t *testing.T) {
	o := New()
	const workers = 16
	names := []string{"sunflow", "varys", "aalo", "solstice"}
	got := make([][]*Observer, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]*Observer, len(names))
			for i, n := range names {
				c := o.Scoped(n)
				c.CircuitSetups.Inc()
				got[w][i] = c
			}
		}(w)
	}
	wg.Wait()
	for i, n := range names {
		first := got[0][i]
		if first == nil {
			t.Fatalf("scope %q: nil child", n)
		}
		for w := 1; w < workers; w++ {
			if got[w][i] != first {
				t.Errorf("scope %q: goroutine %d got a different child observer", n, w)
			}
		}
		if c := o.Scoped(n).CircuitSetups.Load(); c != workers {
			t.Errorf("scope %q: CircuitSetups = %d, want %d (all goroutines shared one counter)", n, c, workers)
		}
	}
}
