// Package replay reconstructs a simulation from its JSONL trace: per-port
// circuit timelines (busy / δ / idle segments), per-scheduler duty-cycle and
// δ-overhead accounting, per-Coflow completion times, and a structural
// linter (see lint.go) that verifies the invariants every well-formed trace
// must satisfy.
//
// Replay is exact, not approximate: circuits are accumulated in circuit_up
// emission order — the same order the simulators add to their SetupSeconds /
// HoldSeconds / PlannedBytes counters — so the floating-point sums replay
// produces are bit-identical to the live Registry counters, and a CCT read
// from a coflow_complete event equals the simulator's returned CCT exactly.
// The property tests in replay_test.go pin this down.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"sunflow/internal/obs"
)

// timeEps absorbs floating-point noise when comparing event timestamps.
const timeEps = 1e-9

// Reader streams events from a JSONL trace without loading the whole file.
type Reader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewReader wraps r for line-at-a-time event decoding.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	// Trace lines are small, but leave generous headroom over the 64 KiB
	// Scanner default so a pathological line fails loudly, not silently.
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Reader{sc: sc}
}

// Next returns the next event. io.EOF signals a clean end of trace; any
// other error names the offending line.
func (r *Reader) Next() (obs.Event, error) {
	if r.err != nil {
		return obs.Event{}, r.err
	}
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(trimSpace(raw)) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			r.err = fmt.Errorf("replay: line %d: %w", r.line, err)
			return obs.Event{}, r.err
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = fmt.Errorf("replay: line %d: %w", r.line, err)
	} else {
		r.err = io.EOF
	}
	return obs.Event{}, r.err
}

// trimSpace is bytes.TrimSpace for the blank-line check without the import.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// ReadAll decodes a whole JSONL trace.
func ReadAll(r io.Reader) ([]obs.Event, error) {
	rd := NewReader(r)
	var evs []obs.Event
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}

// ReadFile decodes the JSONL trace at path.
func ReadFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// flowKey identifies a flow by its port pair, mirroring fabric.FlowKey
// without the import.
type flowKey struct{ Src, Dst int }

// Circuit is one reconstructed circuit reservation on a (src, dst) port
// pair. Up/Down bracket the hold; the first Setup seconds of the hold are
// reconfiguration (δ) time, the rest transmission.
type Circuit struct {
	Scope  string
	Coflow int // -1 when the executor does not attribute circuits to Coflows
	Src    int
	Dst    int
	Up     float64
	Down   float64 // NaN while unmatched
	Setup  float64 // δ paid at establishment (the up event's Dur)
	Bytes  float64 // planned demand, 0 when the executor does not know it

	// Fault-injection reconstruction: failed setup attempts inside the hold.
	Retries   int     // circuit_retry events seen
	RetrySec  float64 // Σ retry Dur — the δ paid by failed attempts
	RetryUnit float64 // the per-attempt δ (max retry Dur)
}

// Closed reports whether the circuit's down event was seen.
func (c Circuit) Closed() bool { return !math.IsNaN(c.Down) }

// Hold is the port occupancy in seconds (NaN while unmatched).
func (c Circuit) Hold() float64 { return c.Down - c.Up }

// CoflowStat is one Coflow's reconstructed lifetime.
type CoflowStat struct {
	ID         int
	Admit      float64
	Complete   float64
	CCT        float64 // the complete event's Dur: exactly finish − arrival
	AdmitBytes float64 // total demand declared at admission
	FlowBytes  float64 // Σ flow_finish bytes (0 for traces predating per-flow bytes)
	Flows      int     // distinct (src, dst) flows seen
	Completed  bool

	// Stranded counts flows quarantined by permanent port failures and
	// StrandedBytes their unserved demand. A stranded Coflow legitimately
	// never completes and is exempt from the lifecycle and demand checks.
	Stranded      int
	StrandedBytes float64

	flows map[flowKey]*flowLife
}

type flowLife struct {
	start, finish     float64
	started, finished bool
	stranded          bool
	bytes             float64
}

// PortOutage is one reconstructed port failure interval. Up is +Inf for a
// permanent failure (or an outage still open at end of trace).
type PortOutage struct {
	Port     int
	Down, Up float64
}

// Segment is one busy interval on a port timeline: [Start, Start+Setup) is
// δ reconfiguration, [Start+Setup, End) is transmission.
type Segment struct {
	Port   int
	Peer   int
	Coflow int
	Start  float64
	Setup  float64
	End    float64
}

// Scope aggregates everything replayed for one trace scope (one scheduler
// run; the root scope is the empty string).
type Scope struct {
	Name string

	// Circuits in circuit_up emission order — the accumulation order that
	// makes SetupSeconds / HoldSeconds / PlannedBytes bit-exact against the
	// live counters (on fault-free traces; truncated circuits under faults
	// correct their counters after the up was emitted).
	Circuits []Circuit
	// Coflows in admission order, one entry per admission (a re-admitted id
	// in a concatenated trace gets a fresh entry).
	Coflows []*CoflowStat
	Windows int // fair windows opened

	// Fault-injection reconstruction.
	FaultInjected bool         // a fault_inject event marked this scope
	PortOutages   []PortOutage // port_down/port_up pairs, in down order
	Retries       int64        // circuit_retry events
	StrandedFlows int          // flow_stranded events
	StrandedBytes float64      // Σ stranded demand

	// Counter-equivalent aggregates, filled by Finish.
	CircuitSetups int64
	SetupSeconds  float64
	HoldSeconds   float64
	PlannedBytes  float64
	DutyCycle     float64

	// SpanRoots are the reconstructed profiling span trees (KindSpan
	// events), roots in emission order with children re-attached under
	// their parents; see profile.go. Filled by Finish.
	SpanRoots []*SpanNode

	open       map[flowKey]int // circuit index currently holding (src, dst)
	openCoflow map[int]*CoflowStat
	portDown   map[int]int // open outage index per port
	windowOpen bool
	windowT    float64
	spans      map[int64]*SpanNode
	spanOrder  []int64
}

// DeltaOverhead is the fraction of port-holding time spent reconfiguring:
// Σsetup / Σhold. Zero when no circuit was held.
func (s *Scope) DeltaOverhead() float64 {
	if s.HoldSeconds <= 0 {
		return 0
	}
	return s.SetupSeconds / s.HoldSeconds
}

// CCTs returns the completed Coflows' completion times, ascending.
func (s *Scope) CCTs() []float64 {
	var out []float64
	for _, c := range s.Coflows {
		if c.Completed {
			out = append(out, c.CCT)
		}
	}
	sort.Float64s(out)
	return out
}

// PortTimeline groups closed circuits into per-port busy segments. in
// selects input-port (src) timelines, otherwise output-port (dst). Ports are
// returned ascending; each port's segments are in circuit-up order, which is
// time order for a single-run trace.
func (s *Scope) PortTimeline(in bool) (ports []int, segs map[int][]Segment) {
	segs = make(map[int][]Segment)
	for _, c := range s.Circuits {
		if !c.Closed() {
			continue
		}
		port, peer := c.Src, c.Dst
		if !in {
			port, peer = c.Dst, c.Src
		}
		segs[port] = append(segs[port], Segment{
			Port: port, Peer: peer, Coflow: c.Coflow,
			Start: c.Up, Setup: c.Setup, End: c.Down,
		})
	}
	for p := range segs {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports, segs
}

// Analysis is the reconstructed simulation.
type Analysis struct {
	Scopes     map[string]*Scope
	Events     int
	Start, End float64 // timestamp range over all events
	Violations []Violation
}

// ScopeNames returns the scope keys sorted, root ("") first.
func (a *Analysis) ScopeNames() []string {
	names := make([]string, 0, len(a.Scopes))
	for n := range a.Scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scope returns the named scope, or nil.
func (a *Analysis) Scope(name string) *Scope { return a.Scopes[name] }

// Builder replays events incrementally; feed every event to Add, then call
// Finish once. Analyze and AnalyzeReader wrap the common cases.
type Builder struct {
	a        *Analysis
	finished bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{a: &Analysis{
		Scopes: make(map[string]*Scope),
		Start:  math.Inf(1),
		End:    math.Inf(-1),
	}}
}

func (b *Builder) scope(name string) *Scope {
	s, ok := b.a.Scopes[name]
	if !ok {
		s = &Scope{
			Name:       name,
			open:       make(map[flowKey]int),
			openCoflow: make(map[int]*CoflowStat),
			portDown:   make(map[int]int),
			spans:      make(map[int64]*SpanNode),
		}
		b.a.Scopes[name] = s
	}
	return s
}

func (b *Builder) violate(rule Rule, scope string, t float64, format string, args ...any) {
	b.a.Violations = append(b.a.Violations, Violation{
		Rule: rule, Scope: scope, T: t, Msg: fmt.Sprintf(format, args...),
	})
}

// Add replays one event.
func (b *Builder) Add(ev obs.Event) {
	b.a.Events++
	if math.IsNaN(ev.T) || math.IsInf(ev.T, 0) || ev.T < 0 {
		b.violate(RuleTimeOrder, ev.Scope, ev.T, "%s has invalid timestamp %v", ev.Kind, ev.T)
		return
	}
	if ev.T < b.a.Start {
		b.a.Start = ev.T
	}
	if ev.T > b.a.End {
		b.a.End = ev.T
	}
	s := b.scope(ev.Scope)

	switch ev.Kind {
	case obs.KindCircuitUp:
		key := flowKey{ev.Src, ev.Dst}
		if idx, ok := s.open[key]; ok {
			b.violate(RulePortOverlap, ev.Scope, ev.T,
				"circuit_up on (%d,%d) while the circuit from t=%.6g is still up", ev.Src, ev.Dst, s.Circuits[idx].Up)
		}
		s.open[key] = len(s.Circuits)
		s.Circuits = append(s.Circuits, Circuit{
			Scope: ev.Scope, Coflow: ev.Coflow, Src: ev.Src, Dst: ev.Dst,
			Up: ev.T, Down: math.NaN(), Setup: ev.Dur, Bytes: ev.Bytes,
		})

	case obs.KindCircuitDown:
		key := flowKey{ev.Src, ev.Dst}
		idx, ok := s.open[key]
		if !ok {
			b.violate(RuleUnmatchedDown, ev.Scope, ev.T,
				"circuit_down on (%d,%d) with no circuit up", ev.Src, ev.Dst)
			return
		}
		c := &s.Circuits[idx]
		if ev.T < c.Up-timeEps {
			b.violate(RuleTimeOrder, ev.Scope, ev.T,
				"circuit on (%d,%d) comes down at t=%.6g before it went up at t=%.6g", ev.Src, ev.Dst, ev.T, c.Up)
		}
		c.Down = ev.T
		delete(s.open, key)

	case obs.KindCoflowAdmit:
		if prev, ok := s.openCoflow[ev.Coflow]; ok {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"coflow %d re-admitted while the admission from t=%.6g is still open", ev.Coflow, prev.Admit)
		}
		st := &CoflowStat{
			ID: ev.Coflow, Admit: ev.T, AdmitBytes: ev.Bytes,
			flows: make(map[flowKey]*flowLife),
		}
		s.openCoflow[ev.Coflow] = st
		s.Coflows = append(s.Coflows, st)

	case obs.KindCoflowComplete:
		st, ok := s.openCoflow[ev.Coflow]
		if !ok {
			b.violate(RuleLifecycle, ev.Scope, ev.T, "coflow %d completes without an admission", ev.Coflow)
			return
		}
		if ev.T < st.Admit-timeEps {
			b.violate(RuleTimeOrder, ev.Scope, ev.T,
				"coflow %d completes at t=%.6g before its admission at t=%.6g", ev.Coflow, ev.T, st.Admit)
		}
		st.Complete = ev.T
		st.CCT = ev.Dur
		if d := ev.T - st.Admit; math.Abs(d-ev.Dur) > timeEps*math.Max(1, math.Abs(d)) {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"coflow %d CCT %.9g disagrees with complete−admit %.9g", ev.Coflow, ev.Dur, d)
		}
		for k, f := range st.flows {
			if f.started && !f.finished {
				b.violate(RuleLifecycle, ev.Scope, ev.T,
					"coflow %d completes with flow (%d,%d) still in flight", ev.Coflow, k.Src, k.Dst)
			}
		}
		st.Completed = true
		delete(s.openCoflow, ev.Coflow)

	case obs.KindFlowStart, obs.KindFlowFinish:
		st, ok := s.openCoflow[ev.Coflow]
		if !ok {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"%s for coflow %d with no open admission", ev.Kind, ev.Coflow)
			return
		}
		key := flowKey{ev.Src, ev.Dst}
		f := st.flows[key]
		if f == nil {
			f = &flowLife{}
			st.flows[key] = f
			st.Flows++
		}
		if ev.T < st.Admit-timeEps {
			b.violate(RuleTimeOrder, ev.Scope, ev.T,
				"%s for coflow %d flow (%d,%d) precedes admission at t=%.6g", ev.Kind, ev.Coflow, ev.Src, ev.Dst, st.Admit)
		}
		if ev.Kind == obs.KindFlowStart {
			if f.started {
				b.violate(RuleLifecycle, ev.Scope, ev.T,
					"duplicate flow_start for coflow %d flow (%d,%d)", ev.Coflow, ev.Src, ev.Dst)
			}
			f.started, f.start = true, ev.T
		} else {
			switch {
			case f.finished:
				b.violate(RuleLifecycle, ev.Scope, ev.T,
					"duplicate flow_finish for coflow %d flow (%d,%d)", ev.Coflow, ev.Src, ev.Dst)
			case !f.started:
				b.violate(RuleLifecycle, ev.Scope, ev.T,
					"flow_finish before flow_start for coflow %d flow (%d,%d)", ev.Coflow, ev.Src, ev.Dst)
			case ev.T < f.start-timeEps:
				b.violate(RuleTimeOrder, ev.Scope, ev.T,
					"flow (%d,%d) of coflow %d finishes at t=%.6g before starting at t=%.6g", ev.Src, ev.Dst, ev.Coflow, ev.T, f.start)
			}
			f.finished, f.finish = true, ev.T
			f.bytes = ev.Bytes
			st.FlowBytes += ev.Bytes
		}

	case obs.KindWindowOpen:
		if s.windowOpen {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"window_open while the window from t=%.6g is still open", s.windowT)
		}
		s.windowOpen, s.windowT = true, ev.T
		s.Windows++

	case obs.KindWindowClose:
		if !s.windowOpen {
			b.violate(RuleLifecycle, ev.Scope, ev.T, "window_close with no window open")
			return
		}
		if ev.T < s.windowT-timeEps {
			b.violate(RuleTimeOrder, ev.Scope, ev.T,
				"window closes at t=%.6g before opening at t=%.6g", ev.T, s.windowT)
		}
		s.windowOpen = false

	case obs.KindFaultInject:
		s.FaultInjected = true

	case obs.KindPortDown:
		if idx, ok := s.portDown[ev.Src]; ok {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"port %d goes down at t=%.6g while already down since t=%.6g", ev.Src, ev.T, s.PortOutages[idx].Down)
		}
		s.portDown[ev.Src] = len(s.PortOutages)
		s.PortOutages = append(s.PortOutages, PortOutage{Port: ev.Src, Down: ev.T, Up: math.Inf(1)})

	case obs.KindPortUp:
		idx, ok := s.portDown[ev.Src]
		if !ok {
			b.violate(RuleLifecycle, ev.Scope, ev.T, "port_up for port %d with no outage open", ev.Src)
			return
		}
		og := &s.PortOutages[idx]
		if ev.T < og.Down-timeEps {
			b.violate(RuleTimeOrder, ev.Scope, ev.T,
				"port %d comes up at t=%.6g before going down at t=%.6g", ev.Src, ev.T, og.Down)
		}
		og.Up = ev.T
		delete(s.portDown, ev.Src)

	case obs.KindCircuitRetry:
		key := flowKey{ev.Src, ev.Dst}
		idx, ok := s.open[key]
		if !ok {
			b.violate(RuleRetryDelta, ev.Scope, ev.T,
				"circuit_retry on (%d,%d) with no circuit up", ev.Src, ev.Dst)
			return
		}
		c := &s.Circuits[idx]
		if ev.T < c.Up-timeEps {
			b.violate(RuleTimeOrder, ev.Scope, ev.T,
				"circuit_retry on (%d,%d) at t=%.6g precedes the up at t=%.6g", ev.Src, ev.Dst, ev.T, c.Up)
		}
		c.Retries++
		c.RetrySec += ev.Dur
		if ev.Dur > c.RetryUnit {
			c.RetryUnit = ev.Dur
		}
		s.Retries++

	case obs.KindSpan:
		b.addSpan(s, ev)

	case obs.KindFlowStranded:
		st, ok := s.openCoflow[ev.Coflow]
		if !ok {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"flow_stranded for coflow %d with no open admission", ev.Coflow)
			return
		}
		key := flowKey{ev.Src, ev.Dst}
		f := st.flows[key]
		if f == nil {
			f = &flowLife{}
			st.flows[key] = f
			st.Flows++
		}
		if f.stranded {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"duplicate flow_stranded for coflow %d flow (%d,%d)", ev.Coflow, ev.Src, ev.Dst)
		}
		if f.finished {
			b.violate(RuleLifecycle, ev.Scope, ev.T,
				"flow (%d,%d) of coflow %d stranded after finishing", ev.Src, ev.Dst, ev.Coflow)
		}
		f.stranded = true
		st.Stranded++
		st.StrandedBytes += ev.Bytes
		s.StrandedFlows++
		s.StrandedBytes += ev.Bytes

	default:
		b.violate(RuleLifecycle, ev.Scope, ev.T, "unknown event kind %q", ev.Kind)
	}
}

// Finish runs the end-of-trace checks (unmatched circuits, unfinished
// Coflows, port overlaps, demand reconciliation), computes the counter-
// equivalent aggregates and returns the Analysis. Add must not be called
// afterwards.
func (b *Builder) Finish() *Analysis {
	if b.finished {
		return b.a
	}
	b.finished = true
	if b.a.Events == 0 {
		b.a.Start, b.a.End = 0, 0
	}
	for _, name := range b.a.ScopeNames() {
		s := b.a.Scopes[name]
		b.finishScope(s)
	}
	return b.a
}

func (b *Builder) finishScope(s *Scope) {
	for _, idx := range sortedValues(s.open) {
		c := s.Circuits[idx]
		b.violate(RuleUnmatchedUp, s.Name, c.Up,
			"circuit on (%d,%d) up at t=%.6g never comes down", c.Src, c.Dst, c.Up)
	}
	for _, st := range s.Coflows {
		if st.Stranded > 0 {
			// A quarantined Coflow leaves the fabric without completing —
			// that is the contract, not a violation — but it must never claim
			// a completion.
			if st.Completed {
				b.violate(RuleLifecycle, s.Name, st.Complete,
					"coflow %d completed despite %d stranded flows", st.ID, st.Stranded)
			}
			continue
		}
		if !st.Completed {
			b.violate(RuleLifecycle, s.Name, st.Admit,
				"coflow %d admitted at t=%.6g never completes", st.ID, st.Admit)
			continue
		}
		b.checkDemand(s, st)
	}
	b.checkOverlap(s, true)
	b.checkOverlap(s, false)
	b.checkRetries(s)
	b.checkDownPorts(s)
	b.finishSpans(s)

	// Counter-equivalent accounting, in circuit_up emission order. The live
	// counters accrue setups / setup seconds / planned bytes at circuit_up
	// (so unmatched ups still count) and hold at up time with the planned
	// value, which for a well-formed trace equals down − up exactly.
	for _, c := range s.Circuits {
		s.CircuitSetups++
		s.SetupSeconds += c.Setup
		s.PlannedBytes += c.Bytes
		if c.Closed() {
			s.HoldSeconds += c.Down - c.Up
		}
	}
	// Same formula as obs.Summary's duty cycle.
	if s.HoldSeconds > 0 {
		s.DutyCycle = (s.HoldSeconds - s.SetupSeconds) / s.HoldSeconds
	}
}

// checkDemand reconciles Σ flow_finish bytes against the demand declared at
// admission. Traces written before flow_finish carried bytes are skipped
// (any finished flow reporting zero bytes makes the sum meaningless).
func (b *Builder) checkDemand(s *Scope, st *CoflowStat) {
	if st.AdmitBytes <= 0 || len(st.flows) == 0 {
		return
	}
	for _, f := range st.flows {
		if f.finished && f.bytes <= 0 {
			return
		}
	}
	// The admission total and the per-flow demands come from the same
	// float64 values summed in different orders; allow association noise
	// plus the 1-byte residual the simulators forgive at flow finish.
	tol := math.Max(1e-9*st.AdmitBytes, 1.0+float64(len(st.flows)))
	if diff := math.Abs(st.FlowBytes - st.AdmitBytes); diff > tol {
		b.violate(RuleBytesMismatch, s.Name, st.Complete,
			"coflow %d finished %.6g bytes but admitted %.6g (diff %.6g)", st.ID, st.FlowBytes, st.AdmitBytes, diff)
	}
}

// checkOverlap walks one side's per-port circuits in up order and flags any
// circuit that rises before the previous one on the same port released. Ups
// per port are monotone within a run, so a backwards jump marks the seam of
// a concatenated trace and resets the chain instead of flagging it.
func (b *Builder) checkOverlap(s *Scope, in bool) {
	last := make(map[int]Circuit)
	side := "out"
	if in {
		side = "in"
	}
	for _, c := range s.Circuits {
		if !c.Closed() {
			continue
		}
		port := c.Dst
		if in {
			port = c.Src
		}
		prev, ok := last[port]
		if ok && c.Up >= prev.Up-timeEps && c.Up < prev.Down-timeEps {
			b.violate(RulePortOverlap, s.Name, c.Up,
				"%s port %d: circuit (%d,%d) up at t=%.6g overlaps (%d,%d) held until t=%.6g",
				side, port, c.Src, c.Dst, c.Up, prev.Src, prev.Dst, prev.Down)
		}
		if !ok || c.Down > prev.Down || c.Up < prev.Up-timeEps {
			last[port] = c
		}
	}
}

// checkRetries verifies that every retried circuit re-paid δ: the effective
// setup reported by its up event must cover the δ of each failed attempt,
// plus one final successful δ when the circuit went on to carry data
// (Bytes > 0).
func (b *Builder) checkRetries(s *Scope) {
	for i := range s.Circuits {
		c := &s.Circuits[i]
		if c.Retries == 0 {
			continue
		}
		want := c.RetrySec
		if c.Bytes > 0 {
			want += c.RetryUnit
		}
		if c.Setup+timeEps < want {
			b.violate(RuleRetryDelta, s.Name, c.Up,
				"circuit (%d,%d) up at t=%.6g retried %d times but paid setup %.6g < %.6g — each retry must re-pay δ",
				c.Src, c.Dst, c.Up, c.Retries, c.Setup, want)
		}
	}
}

// checkDownPorts verifies that no circuit held a port inside one of its
// outage intervals: a truncated circuit must release at the failure instant
// and nothing may be established before the port recovers.
func (b *Builder) checkDownPorts(s *Scope) {
	for _, og := range s.PortOutages {
		for i := range s.Circuits {
			c := &s.Circuits[i]
			if !c.Closed() || (c.Src != og.Port && c.Dst != og.Port) {
				continue
			}
			if c.Up < og.Up-timeEps && c.Down > og.Down+timeEps {
				b.violate(RuleDownPort, s.Name, og.Down,
					"circuit (%d,%d) held [%.6g,%.6g) across port %d outage [%.6g,%.6g)",
					c.Src, c.Dst, c.Up, c.Down, og.Port, og.Down, og.Up)
			}
		}
	}
}

func sortedValues(m map[flowKey]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Analyze replays a slice of events.
func Analyze(events []obs.Event) *Analysis {
	b := NewBuilder()
	for _, ev := range events {
		b.Add(ev)
	}
	return b.Finish()
}

// AnalyzeReader streams a JSONL trace through a Builder.
func AnalyzeReader(r io.Reader) (*Analysis, error) {
	b := NewBuilder()
	rd := NewReader(r)
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			return b.Finish(), nil
		}
		if err != nil {
			return b.Finish(), err
		}
		b.Add(ev)
	}
}
