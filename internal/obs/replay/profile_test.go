package replay

import (
	"math"
	"testing"

	"sunflow/internal/obs"
)

// sev builds one KindSpan trace event the way internal/obs/span emits them:
// T=0, ids nonzero, parent 0 for roots, children emitted before parents.
func sev(scope, name string, id, parent int64, wall, dur float64) obs.Event {
	return obs.Event{
		Kind: obs.KindSpan, Scope: scope, Coflow: -1, Src: -1, Dst: -1,
		Name: name, Span: id, Parent: parent, Wall: wall, Dur: dur,
	}
}

func TestSpanTreeReconstruction(t *testing.T) {
	// root [0, 1.0) with children b [0.1, 0.4) and c [0.5, 0.9);
	// b has grandchild g [0.2, 0.3). Emission is finish order.
	evs := []obs.Event{
		sev("sunflow", "g", 4, 2, 0.2, 0.1),
		sev("sunflow", "b", 2, 1, 0.1, 0.3),
		sev("sunflow", "c", 3, 1, 0.5, 0.4),
		sev("sunflow", "root", 1, 0, 0.0, 1.0),
	}
	a := Analyze(evs)
	if len(a.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", a.Violations)
	}
	s := a.Scope("sunflow")
	if s == nil || len(s.SpanRoots) != 1 {
		t.Fatalf("want 1 root span, got %+v", s)
	}
	root := s.SpanRoots[0]
	if root.Name != "root" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want root with 2", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "b" || root.Children[1].Name != "c" {
		t.Fatalf("children = %q, %q; want b, c", root.Children[0].Name, root.Children[1].Name)
	}
	if g := root.Children[0].Children; len(g) != 1 || g[0].Name != "g" {
		t.Fatalf("grandchildren = %+v, want [g]", g)
	}

	if got := s.SpanTotal(); got != 1.0 {
		t.Fatalf("SpanTotal = %v, want 1.0", got)
	}
	if got := s.PhaseTotal("b"); got != 0.3 {
		t.Fatalf("PhaseTotal(b) = %v, want 0.3", got)
	}

	// Self times telescope: Σ self over the tree equals the root duration.
	var selfSum float64
	for _, p := range s.SpanPhases() {
		selfSum += p.Self
	}
	if math.Abs(selfSum-1.0) > 1e-12 {
		t.Fatalf("Σ self = %v, want 1.0", selfSum)
	}

	// SpanPhases orders by descending self: c (0.4) > root (0.3) > b (0.2) > g (0.1).
	phases := s.SpanPhases()
	want := []string{"c", "root", "b", "g"}
	for i, p := range phases {
		if p.Name != want[i] {
			t.Fatalf("phase order = %v..., want %v", p.Name, want)
		}
	}

	// Critical path descends through the heaviest child at each level.
	cp := CriticalPath(root)
	if len(cp) != 2 || cp[0].Name != "root" || cp[1].Name != "c" {
		names := make([]string, len(cp))
		for i, n := range cp {
			names[i] = n.Name
		}
		t.Fatalf("critical path = %v, want [root c]", names)
	}
	if CriticalPath(nil) != nil {
		t.Fatalf("CriticalPath(nil) should be nil")
	}
}

func TestSpanLintViolations(t *testing.T) {
	cases := []struct {
		name string
		evs  []obs.Event
		want Rule
	}{
		{"missing name", []obs.Event{sev("", "", 1, 0, 0, 1)}, RuleSpanStructure},
		{"zero id", []obs.Event{sev("", "x", 0, 0, 0, 1)}, RuleSpanStructure},
		{"negative duration", []obs.Event{sev("", "x", 1, 0, 0, -1)}, RuleSpanStructure},
		{"NaN duration", []obs.Event{sev("", "x", 1, 0, 0, math.NaN())}, RuleSpanStructure},
		{"negative wall", []obs.Event{sev("", "x", 1, 0, -0.5, 1)}, RuleSpanStructure},
		{"self parent", []obs.Event{sev("", "x", 1, 1, 0, 1)}, RuleSpanStructure},
		{"duplicate id", []obs.Event{
			sev("", "x", 1, 0, 0, 1),
			sev("", "y", 1, 0, 2, 1),
		}, RuleSpanStructure},
		{"unfinished parent", []obs.Event{
			sev("", "child", 2, 1, 0.1, 0.2),
		}, RuleSpanStructure},
		{"child escapes parent end", []obs.Event{
			sev("", "child", 2, 1, 0.5, 1.0), // ends at 1.5
			sev("", "parent", 1, 0, 0.0, 1.0),
		}, RuleSpanContainment},
		{"child starts before parent", []obs.Event{
			sev("", "child", 2, 1, 0.0, 0.1),
			sev("", "parent", 1, 0, 0.5, 1.0),
		}, RuleSpanContainment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Analyze(tc.evs)
			if kinds(a.Violations)[tc.want] == 0 {
				t.Errorf("want a %s violation, got %v", tc.want, a.Violations)
			}
		})
	}
}

func TestSpanLintAcceptsLegalShapes(t *testing.T) {
	cases := []struct {
		name string
		evs  []obs.Event
	}{
		{"nested tree", []obs.Event{
			sev("s", "child", 2, 1, 0.1, 0.2),
			sev("s", "root", 1, 0, 0.0, 1.0),
		}},
		{"zero-duration span", []obs.Event{
			sev("s", "instant", 1, 0, 0.5, 0),
		}},
		{"sub-eps overhang", []obs.Event{
			// FinishWith durations are caller-measured; nanosecond-scale
			// disagreement with the parent's own clock window is legal.
			sev("s", "child", 2, 1, 0.1, 0.9000000005),
			sev("s", "root", 1, 0, 0.1, 0.9),
		}},
		{"parallel scopes share ids only per scope", []obs.Event{
			sev("a", "x", 1, 0, 0, 1),
			sev("b", "x", 1, 0, 0, 1),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Analyze(tc.evs)
			if len(a.Violations) != 0 {
				t.Errorf("want clean lint, got %v", a.Violations)
			}
		})
	}
}

// An orphan span (its parent never finished) is kept as a root so its time
// still shows up in profiles, alongside the structure violation.
func TestOrphanSpanKeptAsRoot(t *testing.T) {
	a := Analyze([]obs.Event{
		sev("s", "orphan", 2, 99, 0.1, 0.2),
		sev("s", "root", 1, 0, 0.0, 1.0),
	})
	if kinds(a.Violations)[RuleSpanStructure] == 0 {
		t.Fatalf("want a span_structure violation for the orphan, got %v", a.Violations)
	}
	s := a.Scope("s")
	if len(s.SpanRoots) != 2 {
		t.Fatalf("got %d roots, want 2 (orphan promoted)", len(s.SpanRoots))
	}
	if got := s.SpanTotal(); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("SpanTotal = %v, want 1.2 (orphan time retained)", got)
	}
}
