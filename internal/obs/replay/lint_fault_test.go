package replay

import (
	"testing"

	"sunflow/internal/obs"
)

// TestLintFaultRuleViolations hand-builds traces that break each fault
// invariant: retries that skip the δ re-payment, circuits held across port
// outages, and malformed outage/strand lifecycles.
func TestLintFaultRuleViolations(t *testing.T) {
	up := func(tm float64, src, dst int, setup, bytes float64) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindCircuitUp, Coflow: -1, Src: src, Dst: dst, Dur: setup, Bytes: bytes}
	}
	down := func(tm float64, src, dst int) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindCircuitDown, Coflow: -1, Src: src, Dst: dst}
	}
	retry := func(tm float64, src, dst int, delta float64) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindCircuitRetry, Coflow: -1, Src: src, Dst: dst, Dur: delta}
	}
	portDown := func(tm float64, port int) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindPortDown, Coflow: -1, Src: port, Dst: -1}
	}
	portUp := func(tm float64, port int) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindPortUp, Coflow: -1, Src: port, Dst: -1}
	}

	cases := []struct {
		name string
		evs  []obs.Event
		want Rule
	}{
		{"retry without delta repayment", []obs.Event{
			// One failed attempt (δ=0.01) should cost 2δ of setup on a
			// data-carrying circuit; the up event only paid 1δ.
			up(0, 0, 1, 0.01, 5e6),
			retry(0.01, 0, 1, 0.01),
			down(1, 0, 1),
		}, RuleRetryDelta},
		{"orphan retry", []obs.Event{
			retry(0.5, 0, 1, 0.01),
		}, RuleRetryDelta},
		{"retry precedes its up", []obs.Event{
			up(1, 0, 1, 0.03, 5e6),
			retry(0.5, 0, 1, 0.01),
			down(2, 0, 1),
		}, RuleTimeOrder},
		{"circuit held across outage", []obs.Event{
			up(0.5, 0, 1, 0.01, 5e6),
			portDown(1, 0),
			portUp(2, 0),
			down(3, 0, 1),
		}, RuleDownPort},
		{"circuit established inside outage", []obs.Event{
			portDown(1, 1),
			up(1.2, 0, 1, 0.01, 5e6),
			down(1.8, 0, 1),
			portUp(2, 1),
		}, RuleDownPort},
		{"double port_down", []obs.Event{
			portDown(1, 0),
			portDown(2, 0),
		}, RuleLifecycle},
		{"port_up with no outage", []obs.Event{
			portUp(1, 0),
		}, RuleLifecycle},
		{"stranded flow with no admission", []obs.Event{
			{T: 1, Kind: obs.KindFlowStranded, Coflow: 3, Src: 0, Dst: 1, Bytes: 5e6},
		}, RuleLifecycle},
		{"completed despite stranded flow", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10e6},
			{T: 1, Kind: obs.KindFlowStranded, Coflow: 3, Src: 0, Dst: 1, Bytes: 10e6},
			{T: 2, Kind: obs.KindCoflowComplete, Coflow: 3, Src: -1, Dst: -1, Dur: 2},
		}, RuleLifecycle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Analyze(tc.evs)
			if kinds(a.Violations)[tc.want] == 0 {
				t.Errorf("want a %s violation, got %v", tc.want, a.Violations)
			}
		})
	}
}

// TestLintFaultRulesAcceptLegalTraces pins the other side of each rule: the
// shapes a degraded-fabric run legitimately produces must stay lint-clean.
func TestLintFaultRulesAcceptLegalTraces(t *testing.T) {
	cases := []struct {
		name string
		evs  []obs.Event
	}{
		{"retry fully paid", []obs.Event{
			// δ=0.01: one failed attempt + one success ⇒ setup ≥ 2δ (the
			// backoff makes it 3δ here).
			{T: 0, Kind: obs.KindCircuitUp, Coflow: -1, Src: 0, Dst: 1, Dur: 0.03, Bytes: 5e6},
			{T: 0.01, Kind: obs.KindCircuitRetry, Coflow: -1, Src: 0, Dst: 1, Dur: 0.01},
			{T: 1, Kind: obs.KindCircuitDown, Coflow: -1, Src: 0, Dst: 1},
		}},
		{"all-setup circuit never establishes", []obs.Event{
			// The slot ran out of room: the whole hold is setup, no data —
			// only the failed attempts' δ must be covered.
			{T: 0, Kind: obs.KindCircuitUp, Coflow: -1, Src: 0, Dst: 1, Dur: 0.025, Bytes: 0},
			{T: 0.01, Kind: obs.KindCircuitRetry, Coflow: -1, Src: 0, Dst: 1, Dur: 0.01},
			{T: 0.025, Kind: obs.KindCircuitRetry, Coflow: -1, Src: 0, Dst: 1, Dur: 0.01},
			{T: 0.025, Kind: obs.KindCircuitDown, Coflow: -1, Src: 0, Dst: 1},
		}},
		{"circuit truncated at the failure instant", []obs.Event{
			{T: 0.5, Kind: obs.KindCircuitUp, Coflow: -1, Src: 0, Dst: 1, Dur: 0.01, Bytes: 5e6},
			{T: 1, Kind: obs.KindCircuitDown, Coflow: -1, Src: 0, Dst: 1},
			{T: 1, Kind: obs.KindPortDown, Coflow: -1, Src: 0, Dst: -1},
			{T: 2, Kind: obs.KindPortUp, Coflow: -1, Src: 0, Dst: -1},
		}},
		{"circuit after recovery", []obs.Event{
			{T: 1, Kind: obs.KindPortDown, Coflow: -1, Src: 0, Dst: -1},
			{T: 2, Kind: obs.KindPortUp, Coflow: -1, Src: 0, Dst: -1},
			{T: 2, Kind: obs.KindCircuitUp, Coflow: -1, Src: 0, Dst: 1, Dur: 0.01, Bytes: 5e6},
			{T: 3, Kind: obs.KindCircuitDown, Coflow: -1, Src: 0, Dst: 1},
		}},
		{"permanent outage never recovers", []obs.Event{
			{T: 1, Kind: obs.KindPortDown, Coflow: -1, Src: 0, Dst: -1, Dur: 0},
		}},
		{"stranded coflow never completes", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10e6},
			{T: 1, Kind: obs.KindFlowStranded, Coflow: 3, Src: 0, Dst: 1, Bytes: 10e6},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if vs := Lint(tc.evs); len(vs) != 0 {
				t.Errorf("unexpected violations: %v", vs)
			}
		})
	}
}
