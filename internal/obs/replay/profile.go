package replay

import (
	"math"
	"sort"

	"sunflow/internal/obs"
)

// spanEps absorbs the nanosecond-scale gaps between a span's own clock
// window and a caller-measured FinishWith duration when checking that a
// child's wall-clock interval stays inside its parent's.
const spanEps = 1e-6

// SpanNode is one reconstructed profiling span (a KindSpan trace event; see
// docs/TRACE.md and internal/obs/span). Wall and Dur are wall-clock seconds —
// the profiler's domain is real time, never simulated time.
type SpanNode struct {
	Name     string
	ID       int64
	Parent   int64 // 0 for roots
	Wall     float64
	Dur      float64
	Attrs    map[string]string
	Children []*SpanNode
}

// End is the span's wall-clock finish offset.
func (n *SpanNode) End() float64 { return n.Wall + n.Dur }

// Self is the span's self time: its duration minus its children's, clamped
// at zero. Summed over a tree, self times telescope back to the root's
// duration, which is what makes per-phase self-time tables reconcile with
// the sched.seconds counters exactly.
func (n *SpanNode) Self() float64 {
	s := n.Dur
	for _, c := range n.Children {
		s -= c.Dur
	}
	if s < 0 {
		return 0
	}
	return s
}

// Walk visits the node and its descendants depth-first, children in
// emission (chronological) order.
func (n *SpanNode) Walk(fn func(*SpanNode, int)) { n.walk(fn, 0) }

func (n *SpanNode) walk(fn func(*SpanNode, int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// addSpan records one KindSpan event after structural validation. Parent
// resolution waits for Finish: spans are emitted child-before-parent (a span
// finishes after its children), so a child's parent id is legitimately
// unseen at this point.
func (b *Builder) addSpan(s *Scope, ev obs.Event) {
	switch {
	case ev.Name == "":
		b.violate(RuleSpanStructure, ev.Scope, ev.T, "span event without a name")
		return
	case ev.Span == 0:
		b.violate(RuleSpanStructure, ev.Scope, ev.T, "span %q without an id", ev.Name)
		return
	case math.IsNaN(ev.Dur) || math.IsInf(ev.Dur, 0) || ev.Dur < 0:
		b.violate(RuleSpanStructure, ev.Scope, ev.T, "span %q (id %d) has invalid duration %v", ev.Name, ev.Span, ev.Dur)
		return
	case math.IsNaN(ev.Wall) || math.IsInf(ev.Wall, 0) || ev.Wall < 0:
		b.violate(RuleSpanStructure, ev.Scope, ev.T, "span %q (id %d) has invalid wall offset %v", ev.Name, ev.Span, ev.Wall)
		return
	case ev.Parent == ev.Span:
		b.violate(RuleSpanStructure, ev.Scope, ev.T, "span %q (id %d) is its own parent", ev.Name, ev.Span)
		return
	}
	if _, dup := s.spans[ev.Span]; dup {
		b.violate(RuleSpanStructure, ev.Scope, ev.T, "duplicate span id %d (%q)", ev.Span, ev.Name)
		return
	}
	s.spans[ev.Span] = &SpanNode{
		Name: ev.Name, ID: ev.Span, Parent: ev.Parent,
		Wall: ev.Wall, Dur: ev.Dur, Attrs: ev.Attrs,
	}
	s.spanOrder = append(s.spanOrder, ev.Span)
}

// finishSpans resolves parent links, checks containment and collects the
// roots in emission order.
func (b *Builder) finishSpans(s *Scope) {
	for _, id := range s.spanOrder {
		n := s.spans[id]
		if n.Parent == 0 {
			s.SpanRoots = append(s.SpanRoots, n)
			continue
		}
		p, ok := s.spans[n.Parent]
		if !ok {
			// The parent was never emitted: it was still open at end of
			// trace (a forgotten Finish) or lost. Keep the orphan as a root
			// so its time still shows up in profiles.
			b.violate(RuleSpanStructure, s.Name, n.Wall,
				"span %q (id %d) references parent %d which never finished", n.Name, n.ID, n.Parent)
			s.SpanRoots = append(s.SpanRoots, n)
			continue
		}
		if n.Wall < p.Wall-spanEps || n.End() > p.End()+spanEps {
			b.violate(RuleSpanContainment, s.Name, n.Wall,
				"span %q (id %d) [%.9g,%.9g) escapes parent %q (id %d) [%.9g,%.9g)",
				n.Name, n.ID, n.Wall, n.End(), p.Name, p.ID, p.Wall, p.End())
		}
		p.Children = append(p.Children, n)
	}
}

// PhaseStat aggregates every span sharing one name within a scope.
type PhaseStat struct {
	Name  string
	Count int
	// Total is Σ duration and Self Σ self time, both in wall-clock seconds.
	// Across a scope's full phase table the Self column sums to SpanTotal.
	Total float64
	Self  float64
	Max   float64
}

// SpanPhases aggregates the scope's span trees per phase name, ordered by
// descending self time (ties by name).
func (s *Scope) SpanPhases() []PhaseStat {
	byName := map[string]*PhaseStat{}
	var order []string
	for _, r := range s.SpanRoots {
		r.Walk(func(n *SpanNode, _ int) {
			st, ok := byName[n.Name]
			if !ok {
				st = &PhaseStat{Name: n.Name}
				byName[n.Name] = st
				order = append(order, n.Name)
			}
			st.Count++
			st.Total += n.Dur
			st.Self += n.Self()
			if n.Dur > st.Max {
				st.Max = n.Dur
			}
		})
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SpanTotal is the summed duration of the scope's root spans — the
// wall-clock time the profiled code accounted for.
func (s *Scope) SpanTotal() float64 {
	var t float64
	for _, r := range s.SpanRoots {
		t += r.Dur
	}
	return t
}

// PhaseTotal sums the durations of every span named name in the scope.
// PhaseTotal("sched.pass") reconciles exactly with the scope's
// sched.seconds counter: the instrumentation feeds both from one
// measurement.
func (s *Scope) PhaseTotal(name string) float64 {
	var t float64
	for _, r := range s.SpanRoots {
		r.Walk(func(n *SpanNode, _ int) {
			if n.Name == name {
				t += n.Dur
			}
		})
	}
	return t
}

// CriticalPath returns the heaviest-child chain from root to leaf: at each
// level it descends into the child with the largest duration. Under stack
// discipline children run sequentially, so this is the chain of phases that
// dominated the root's wall time.
func CriticalPath(root *SpanNode) []*SpanNode {
	if root == nil {
		return nil
	}
	path := []*SpanNode{root}
	n := root
	for len(n.Children) > 0 {
		heaviest := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.Dur > heaviest.Dur {
				heaviest = c
			}
		}
		path = append(path, heaviest)
		n = heaviest
	}
	return path
}
