package replay

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/obs"
	"sunflow/internal/sim"
	"sunflow/internal/trace"
	"sunflow/internal/varys"
)

const gbps = 1e9

func workload() []*coflow.Coflow {
	return trace.Generator{Ports: 12, Coflows: 15, MaxWidth: 5, Seed: 7}.Trace().Coflows
}

// runCircuitTrace runs the circuit simulator with a JSONL trace, then decodes
// it back — the exact pipeline a user of sunflow-analyze exercises.
func runCircuitTrace(t *testing.T, scope string, fair *core.FairWindows) (*obs.Observer, sim.Result, []obs.Event) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	root := obs.NewWith(obs.NewRegistry(), sink)
	o := root
	if scope != "" {
		o = root.Scoped(scope)
	}
	res, err := sim.RunCircuit(workload(), sim.CircuitOptions{
		Ports: 12, LinkBps: gbps, Delta: 0.01, Fair: fair, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return o, res, evs
}

func noViolations(t *testing.T, a *Analysis) {
	t.Helper()
	for _, v := range a.Violations {
		t.Errorf("lint: %s", v)
	}
}

// TestReplayCircuitExact is the reconciliation property test: everything the
// replay derives from the trace must equal the live Registry counters and the
// simulator's returned CCTs EXACTLY — same float64 bits, not approximately.
func TestReplayCircuitExact(t *testing.T) {
	o, res, evs := runCircuitTrace(t, "", nil)
	a := Analyze(evs)
	noViolations(t, a)

	s := a.Scope("")
	if s == nil {
		t.Fatalf("no root scope; scopes = %v", a.ScopeNames())
	}
	if got, want := s.CircuitSetups, o.CircuitSetups.Load(); got != want {
		t.Errorf("CircuitSetups = %d, counter says %d", got, want)
	}
	if got, want := s.SetupSeconds, o.SetupSeconds.Load(); got != want {
		t.Errorf("SetupSeconds = %v, counter says %v (diff %g)", got, want, got-want)
	}
	if got, want := s.HoldSeconds, o.HoldSeconds.Load(); got != want {
		t.Errorf("HoldSeconds = %v, counter says %v (diff %g)", got, want, got-want)
	}
	if got, want := s.PlannedBytes, o.PlannedBytes.Load(); got != want {
		t.Errorf("PlannedBytes = %v, counter says %v (diff %g)", got, want, got-want)
	}
	if got, want := s.DutyCycle, o.Summary().DutyCycle; got != want {
		t.Errorf("DutyCycle = %v, Summary says %v", got, want)
	}

	if len(s.Coflows) == 0 {
		t.Fatal("replay found no coflows")
	}
	for _, st := range s.Coflows {
		if !st.Completed {
			t.Errorf("coflow %d not completed in replay", st.ID)
			continue
		}
		if want, ok := res.CCT[st.ID]; !ok {
			t.Errorf("coflow %d in trace but not in result", st.ID)
		} else if st.CCT != want {
			t.Errorf("coflow %d CCT = %v, simulator says %v", st.ID, st.CCT, want)
		}
	}
	if got := len(s.CCTs()); got != len(s.Coflows) {
		t.Errorf("CCTs() returned %d values for %d coflows", got, len(s.Coflows))
	}
}

// TestReplayCircuitFairScoped repeats the exactness check on a scoped, fair-
// windowed run: the trickiest trace shape (windows interleave with circuits,
// flows can drain mid-reservation, circuits outlive the last event).
func TestReplayCircuitFairScoped(t *testing.T) {
	fair := &core.FairWindows{N: 12, T: 0.5, Tau: 0.05}
	o, res, evs := runCircuitTrace(t, "sunflow", fair)
	a := Analyze(evs)
	noViolations(t, a)

	s := a.Scope("sunflow")
	if s == nil {
		t.Fatalf("no sunflow scope; scopes = %v", a.ScopeNames())
	}
	if got, want := s.CircuitSetups, o.CircuitSetups.Load(); got != want {
		t.Errorf("CircuitSetups = %d, counter says %d", got, want)
	}
	if got, want := s.SetupSeconds, o.SetupSeconds.Load(); got != want {
		t.Errorf("SetupSeconds = %v, counter says %v", got, want)
	}
	if got, want := s.HoldSeconds, o.HoldSeconds.Load(); got != want {
		t.Errorf("HoldSeconds = %v, counter says %v (diff %g)", got, want, got-want)
	}
	if got, want := s.DutyCycle, o.Summary().DutyCycle; got != want {
		t.Errorf("DutyCycle = %v, Summary says %v", got, want)
	}
	for _, st := range s.Coflows {
		if st.CCT != res.CCT[st.ID] {
			t.Errorf("coflow %d CCT = %v, simulator says %v", st.ID, st.CCT, res.CCT[st.ID])
		}
	}
}

// TestReplayPacketExact runs the packet simulator (no circuits, only flow and
// Coflow lifecycle) through the same pipeline.
func TestReplayPacketExact(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	o := obs.NewWith(obs.NewRegistry(), sink).Scoped("varys")
	res, err := sim.RunPacketObs(workload(), 12, gbps, varys.Allocator{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	noViolations(t, a)

	s := a.Scope("varys")
	if s == nil {
		t.Fatalf("no varys scope; scopes = %v", a.ScopeNames())
	}
	if s.CircuitSetups != 0 || len(s.Circuits) != 0 {
		t.Errorf("packet trace produced %d circuits", len(s.Circuits))
	}
	if len(s.Coflows) == 0 {
		t.Fatal("replay found no coflows")
	}
	for _, st := range s.Coflows {
		if st.CCT != res.CCT[st.ID] {
			t.Errorf("coflow %d CCT = %v, simulator says %v", st.ID, st.CCT, res.CCT[st.ID])
		}
	}
}

// TestReplayFabricTrace lint-checks an assignment-executor trace: circuits
// are anonymous (Coflow −1) and there are no flow or Coflow events.
func TestReplayFabricTrace(t *testing.T) {
	sink := &obs.SliceSink{}
	o := obs.NewWith(obs.NewRegistry(), sink)
	rem := [][]float64{{0, 200e6}, {200e6, 0}}
	schedule := []fabric.Assignment{
		{Match: []int{1, 0}, Duration: 1},
		{Match: []int{-1, -1}, Duration: 0},
		{Match: []int{1, 0}, Duration: 1},
	}
	if _, err := fabric.ExecuteObs(rem, schedule, gbps, 0.01, 0, fabric.NotAllStop, o); err != nil {
		t.Fatal(err)
	}
	a := Analyze(sink.Events())
	noViolations(t, a)
	s := a.Scope("")
	if s == nil {
		t.Fatal("no root scope")
	}
	if got, want := s.CircuitSetups, o.CircuitSetups.Load(); got != want {
		t.Errorf("CircuitSetups = %d, counter says %d", got, want)
	}
	for _, c := range s.Circuits {
		if c.Coflow != -1 {
			t.Errorf("fabric circuit attributed to coflow %d", c.Coflow)
		}
	}
}

// TestPortTimeline checks the Gantt-feeding accessor: every closed circuit
// lands on both its ports, segments are disjoint per port, and the δ prefix
// fits inside the segment.
func TestPortTimeline(t *testing.T) {
	_, _, evs := runCircuitTrace(t, "", nil)
	s := Analyze(evs).Scope("")
	for _, in := range []bool{true, false} {
		ports, segs := s.PortTimeline(in)
		total := 0
		for _, p := range ports {
			prevEnd := math.Inf(-1)
			for _, seg := range segs[p] {
				total++
				if seg.Start < prevEnd-timeEps {
					t.Errorf("port %d (in=%v): segment at %v overlaps previous ending %v", p, in, seg.Start, prevEnd)
				}
				if seg.Setup < 0 || seg.Start+seg.Setup > seg.End+timeEps {
					t.Errorf("port %d: setup %v does not fit in [%v,%v]", p, seg.Setup, seg.Start, seg.End)
				}
				prevEnd = seg.End
			}
		}
		closed := 0
		for _, c := range s.Circuits {
			if c.Closed() {
				closed++
			}
		}
		if total != closed {
			t.Errorf("in=%v: timeline has %d segments, %d closed circuits", in, total, closed)
		}
	}
}

func kinds(vs []Violation) map[Rule]int {
	m := map[Rule]int{}
	for _, v := range vs {
		m[v.Rule]++
	}
	return m
}

// TestLintCatchesViolations hand-builds malformed traces, one per rule.
func TestLintCatchesViolations(t *testing.T) {
	up := func(tm float64, src, dst int) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindCircuitUp, Coflow: -1, Src: src, Dst: dst, Dur: 0.01}
	}
	down := func(tm float64, src, dst int) obs.Event {
		return obs.Event{T: tm, Kind: obs.KindCircuitDown, Coflow: -1, Src: src, Dst: dst}
	}
	cases := []struct {
		name string
		evs  []obs.Event
		want Rule
	}{
		{"unmatched up", []obs.Event{up(0, 0, 1)}, RuleUnmatchedUp},
		{"unmatched down", []obs.Event{down(1, 0, 1)}, RuleUnmatchedDown},
		{"double up same pair", []obs.Event{up(0, 0, 1), up(0.5, 0, 1), down(1, 0, 1), down(1.5, 0, 1)}, RulePortOverlap},
		{"overlap on src port", []obs.Event{up(0, 0, 1), up(0.5, 0, 2), down(1, 0, 1), down(1.5, 0, 2)}, RulePortOverlap},
		{"overlap on dst port", []obs.Event{up(0, 0, 2), up(0.5, 1, 2), down(1, 0, 2), down(1.5, 1, 2)}, RulePortOverlap},
		{"down before up", []obs.Event{up(1, 0, 1), down(0.5, 0, 1)}, RuleTimeOrder},
		{"negative timestamp", []obs.Event{up(-1, 0, 1), down(1, 0, 1)}, RuleTimeOrder},
		{"nan timestamp", []obs.Event{{T: math.NaN(), Kind: obs.KindCircuitUp, Src: 0, Dst: 1}}, RuleTimeOrder},
		{"complete without admit", []obs.Event{
			{T: 1, Kind: obs.KindCoflowComplete, Coflow: 3, Src: -1, Dst: -1, Dur: 1},
		}, RuleLifecycle},
		{"duplicate admit", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10},
			{T: 1, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10},
		}, RuleLifecycle},
		{"never completes", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10},
		}, RuleLifecycle},
		{"finish before start", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10},
			{T: 1, Kind: obs.KindFlowFinish, Coflow: 3, Src: 0, Dst: 1, Bytes: 10},
			{T: 2, Kind: obs.KindCoflowComplete, Coflow: 3, Src: -1, Dst: -1, Dur: 2},
		}, RuleLifecycle},
		{"bytes mismatch", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 100e6},
			{T: 0, Kind: obs.KindFlowStart, Coflow: 3, Src: 0, Dst: 1},
			{T: 1, Kind: obs.KindFlowFinish, Coflow: 3, Src: 0, Dst: 1, Bytes: 40e6},
			{T: 1, Kind: obs.KindCoflowComplete, Coflow: 3, Src: -1, Dst: -1, Dur: 1},
		}, RuleBytesMismatch},
		{"cct disagrees", []obs.Event{
			{T: 0, Kind: obs.KindCoflowAdmit, Coflow: 3, Src: -1, Dst: -1, Bytes: 10},
			{T: 1, Kind: obs.KindCoflowComplete, Coflow: 3, Src: -1, Dst: -1, Dur: 5},
		}, RuleLifecycle},
		{"window close without open", []obs.Event{
			{T: 1, Kind: obs.KindWindowClose, Coflow: -1, Src: -1, Dst: -1},
		}, RuleLifecycle},
		{"unknown kind", []obs.Event{
			{T: 1, Kind: "teleport", Coflow: -1, Src: -1, Dst: -1},
		}, RuleLifecycle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Analyze(tc.evs)
			if kinds(a.Violations)[tc.want] == 0 {
				t.Errorf("want a %s violation, got %v", tc.want, a.Violations)
			}
		})
	}
}

// TestLintAllowsTrailingWindow mirrors reality: a simulation may end while a
// fair window is still open; that is not a violation.
func TestLintAllowsTrailingWindow(t *testing.T) {
	a := Analyze([]obs.Event{
		{T: 0, Kind: obs.KindWindowOpen, Coflow: -1, Src: -1, Dst: -1},
		{T: 1, Kind: obs.KindWindowClose, Coflow: -1, Src: -1, Dst: -1},
		{T: 2, Kind: obs.KindWindowOpen, Coflow: -1, Src: -1, Dst: -1},
	})
	noViolations(t, a)
	if a.Scope("").Windows != 2 {
		t.Errorf("Windows = %d, want 2", a.Scope("").Windows)
	}
}

// TestReaderErrors pins down the streaming reader's failure modes.
func TestReaderErrors(t *testing.T) {
	evs, err := ReadAll(strings.NewReader(
		"{\"t\":1,\"kind\":\"circuit_up\",\"src\":0,\"dst\":1}\n" +
			"\n" + // blank lines are skipped
			"  {\"t\":2,\"kind\":\"circuit_down\",\"src\":0,\"dst\":1}  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Coflow != -1 {
		t.Errorf("absent coflow decoded to %d, want -1", evs[0].Coflow)
	}

	_, err = ReadAll(strings.NewReader("{\"t\":1}\n{not json}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 decode error, got %v", err)
	}

	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty trace: want io.EOF, got %v", err)
	}
}

// TestAnalyzeEmpty keeps the degenerate case sane.
func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if len(a.Violations) != 0 || len(a.Scopes) != 0 || a.Start != 0 || a.End != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}
