package replay

import (
	"fmt"

	"sunflow/internal/obs"
)

// Rule names one structural invariant a trace can break.
type Rule string

// The linted invariants. A well-formed single-run trace (one simulator
// invocation per scope) satisfies all of them; concatenated traces reset
// the per-port chains at time regressions instead of flagging the seam.
const (
	// RuleUnmatchedUp: a circuit_up whose circuit never comes down.
	RuleUnmatchedUp Rule = "unmatched_circuit_up"
	// RuleUnmatchedDown: a circuit_down with no circuit up on that pair.
	RuleUnmatchedDown Rule = "unmatched_circuit_down"
	// RulePortOverlap: two circuits hold the same port at the same time.
	RulePortOverlap Rule = "port_overlap"
	// RuleBytesMismatch: Σ flow_finish bytes disagrees with the demand
	// declared by coflow_admit.
	RuleBytesMismatch Rule = "bytes_mismatch"
	// RuleTimeOrder: an entity's events run backwards in time, or a
	// timestamp is negative / NaN / infinite.
	RuleTimeOrder Rule = "time_order"
	// RuleLifecycle: admit/complete/start/finish events out of protocol
	// (duplicates, orphans, never-completing Coflows, unknown kinds).
	RuleLifecycle Rule = "lifecycle"
	// RuleRetryDelta: a retried circuit whose effective setup does not
	// re-pay δ for every failed attempt (or an orphan circuit_retry).
	RuleRetryDelta Rule = "retry_delta"
	// RuleDownPort: a circuit held its port inside a port_down/port_up
	// outage interval.
	RuleDownPort Rule = "down_port_overlap"
	// RuleSpanStructure: a malformed span event — missing name or id,
	// duplicate id, negative or non-finite duration, or a parent id that
	// never finished (an abandoned open span).
	RuleSpanStructure Rule = "span_structure"
	// RuleSpanContainment: a child span's wall-clock interval escapes its
	// parent's — impossible under stack discipline on one monotonic clock.
	RuleSpanContainment Rule = "span_containment"
)

// Violation is one broken invariant, anchored at the event that exposed it.
type Violation struct {
	Rule  Rule    `json:"rule"`
	Scope string  `json:"scope,omitempty"`
	T     float64 `json:"t"`
	Msg   string  `json:"msg"`
}

// String renders the violation for CLI output.
func (v Violation) String() string {
	scope := v.Scope
	if scope == "" {
		scope = "<root>"
	}
	return fmt.Sprintf("%s [%s] t=%.6g: %s", v.Rule, scope, v.T, v.Msg)
}

// Lint replays the events and returns only the violations.
func Lint(events []obs.Event) []Violation {
	return Analyze(events).Violations
}
