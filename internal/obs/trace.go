package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Kind labels a trace event.
type Kind string

// Event kinds emitted by the simulators.
const (
	// KindCircuitUp / KindCircuitDown bracket one executed circuit
	// reservation: up at its start (Dur carries the setup δ, Bytes the
	// capacity), down at its release.
	KindCircuitUp   Kind = "circuit_up"
	KindCircuitDown Kind = "circuit_down"
	// KindFlowStart / KindFlowFinish bracket a (src, dst) flow's service:
	// start when its first byte is carried, finish when its demand drains.
	KindFlowStart  Kind = "flow_start"
	KindFlowFinish Kind = "flow_finish"
	// KindCoflowAdmit / KindCoflowComplete bracket a Coflow's residence in
	// the fabric.
	KindCoflowAdmit    Kind = "coflow_admit"
	KindCoflowComplete Kind = "coflow_complete"
	// KindWindowOpen / KindWindowClose bracket one starvation-avoidance
	// fair window (§4.2).
	KindWindowOpen  Kind = "window_open"
	KindWindowClose Kind = "window_close"
	// KindFaultInject marks a run executing under a nonzero fault plan,
	// emitted once at simulation start.
	KindFaultInject Kind = "fault_inject"
	// KindPortDown / KindPortUp bracket one port outage (Src carries the
	// port, Dst is -1). A permanent failure's down has Dur 0 and never pairs
	// with an up; a transient down carries the outage length in Dur.
	KindPortDown Kind = "port_down"
	KindPortUp   Kind = "port_up"
	// KindCircuitRetry records one failed circuit-setup attempt inside an
	// open circuit's hold; Dur is the δ the attempt paid.
	KindCircuitRetry Kind = "circuit_retry"
	// KindFlowStranded records a flow quarantined because a permanent port
	// failure left it unroutable; Bytes is the demand still unserved. A
	// Coflow with a stranded flow never emits coflow_complete.
	KindFlowStranded Kind = "flow_stranded"
	// KindSpan records one finished profiling span (internal/obs/span):
	// Name is the phase, Span/Parent link the tree, Wall is the wall-clock
	// start offset from the profiler's epoch and Dur the wall-clock
	// duration. Span events live in the wall-clock domain: T is always 0
	// and they carry no simulated-time meaning.
	KindSpan Kind = "span"
)

// Event is one structured trace record. Fields that do not apply to a kind
// hold -1 (Coflow, Src, Dst) or are omitted (Bytes, Dur). T is simulation
// time in seconds.
type Event struct {
	T      float64 `json:"t"`
	Kind   Kind    `json:"kind"`
	Scope  string  `json:"scope,omitempty"`
	Coflow int     `json:"coflow"`
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Bytes  float64 `json:"bytes,omitempty"`
	Dur    float64 `json:"dur,omitempty"`

	// Span fields, set only on KindSpan events. Name is the phase name;
	// Span is the span's id (ids are unique within a trace, never 0);
	// Parent is the enclosing span's id, 0 for a root; Wall is the span's
	// wall-clock start as a seconds offset from the profiler's epoch; Attrs
	// carries optional key/value annotations (planner=fast, scheduler=tms).
	Name   string            `json:"name,omitempty"`
	Span   int64             `json:"span,omitempty"`
	Parent int64             `json:"parent,omitempty"`
	Wall   float64           `json:"wall,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Sink receives trace events. Implementations must be safe for concurrent
// use; the simulators may run in parallel experiment workers.
type Sink interface {
	Emit(Event)
}

// TraceEnabled reports whether Emit will do anything — the one check hot
// paths make before building an Event.
func (o *Observer) TraceEnabled() bool {
	return o != nil && o.sink != nil
}

// Emit forwards the event to the sink, stamping the observer's scope.
// Safe on a nil Observer or without a sink (no-op).
func (o *Observer) Emit(ev Event) {
	if o == nil || o.sink == nil {
		return
	}
	if ev.Scope == "" && o.prefix != "" {
		ev.Scope = o.prefix[:len(o.prefix)-1] // trim the trailing dot
	}
	o.sink.Emit(ev)
}

// JSONLSink writes events as JSON Lines to an io.Writer behind a mutex and
// a buffer. Call Flush (or Close) before reading the output.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewJSONLSink returns a sink writing one JSON object per line to w. If w is
// an io.Closer, Close will close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encode errors (closed file, full disk) are deliberately dropped:
	// tracing must never fail a simulation.
	_ = s.enc.Encode(ev)
}

// Flush writes buffered events through to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// SliceSink buffers events in memory — the sink tests and programmatic
// consumers use.
type SliceSink struct {
	mu  sync.Mutex
	evs []Event
}

// Emit implements Sink.
func (s *SliceSink) Emit(ev Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (s *SliceSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.evs...)
}

// Count returns how many events of the kind were emitted.
func (s *SliceSink) Count(k Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.evs {
		if ev.Kind == k {
			n++
		}
	}
	return n
}
