package obs

// Event JSON encoding. The documented contract is that Coflow, Src and Dst
// hold -1 when they do not apply to a kind, and that Bytes and Dur are
// omitted when zero. The default struct encoding broke the round trip: -1
// sentinels were always written, and an event re-decoded from a line missing
// those keys read 0 — a valid coflow/port id. The custom codec below omits
// the -1 sentinels on encode and restores them on decode, so
// Event -> JSON -> Event is the identity for every event the simulators
// emit.

import "encoding/json"

// eventWire is Event's on-the-wire shape: the identity fields become
// pointers so "absent" and "0" stay distinguishable in both directions.
type eventWire struct {
	T      float64           `json:"t"`
	Kind   Kind              `json:"kind"`
	Scope  string            `json:"scope,omitempty"`
	Coflow *int              `json:"coflow,omitempty"`
	Src    *int              `json:"src,omitempty"`
	Dst    *int              `json:"dst,omitempty"`
	Bytes  float64           `json:"bytes,omitempty"`
	Dur    float64           `json:"dur,omitempty"`
	Name   string            `json:"name,omitempty"`
	Span   int64             `json:"span,omitempty"`
	Parent int64             `json:"parent,omitempty"`
	Wall   float64           `json:"wall,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON writes the event with -1 identity sentinels omitted.
func (e Event) MarshalJSON() ([]byte, error) {
	w := eventWire{T: e.T, Kind: e.Kind, Scope: e.Scope, Bytes: e.Bytes, Dur: e.Dur,
		Name: e.Name, Span: e.Span, Parent: e.Parent, Wall: e.Wall, Attrs: e.Attrs}
	if e.Coflow != -1 {
		w.Coflow = &e.Coflow
	}
	if e.Src != -1 {
		w.Src = &e.Src
	}
	if e.Dst != -1 {
		w.Dst = &e.Dst
	}
	return json.Marshal(w)
}

// UnmarshalJSON reads the event, defaulting absent identity fields to -1.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*e = Event{T: w.T, Kind: w.Kind, Scope: w.Scope, Bytes: w.Bytes, Dur: w.Dur, Coflow: -1, Src: -1, Dst: -1,
		Name: w.Name, Span: w.Span, Parent: w.Parent, Wall: w.Wall, Attrs: w.Attrs}
	if w.Coflow != nil {
		e.Coflow = *w.Coflow
	}
	if w.Src != nil {
		e.Src = *w.Src
	}
	if w.Dst != nil {
		e.Dst = *w.Dst
	}
	return nil
}

// Tee returns a sink forwarding every event to all non-nil sinks. With one
// usable sink that sink is returned directly; with none, Tee returns nil so
// the result still disables tracing.
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink(live)
}

type teeSink []Sink

// Emit implements Sink.
func (t teeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}
