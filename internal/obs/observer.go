package obs

import (
	"reflect"
	"sort"
	"sync"
)

// Metric names used by the standard Observer handles. Scoped observers
// prefix these with "<scope>.".
const (
	NameCircuitSetups    = "circuit.setups"
	NameSetupSeconds     = "circuit.setup_seconds"
	NameHoldSeconds      = "circuit.hold_seconds"
	NamePlannedBytes     = "circuit.planned_bytes"
	NameBytesDelivered   = "sim.bytes_delivered"
	NameCoflowsAdmitted  = "sim.coflows_admitted"
	NameCoflowsCompleted = "sim.coflows_completed"
	NameSimEvents        = "sim.events"
	NameQueueDepth       = "sim.queue_depth"
	NameSchedPasses      = "sched.passes"
	NameSchedSeconds     = "sched.seconds"
	NameSchedPassTime    = "sched.pass_seconds"
	NameIntraPasses      = "sched.intra_passes"
	NameIntraSkipped     = "sched.intra_skipped"
	NameIntraSeconds     = "sched.intra_seconds"
	NameIntraFastSeconds = "sched.intra_fast_seconds"
	NameIntraRefSeconds  = "sched.intra_ref_seconds"
	NameReservations     = "sched.reservations"
	NameResShortened     = "sched.reservations_shortened"
	NameInBusySeconds    = "port.in_busy_seconds"
	NameOutBusySeconds   = "port.out_busy_seconds"
	NameCircuitRetries   = "fault.circuit_retries"
	NameRetrySeconds     = "fault.retry_seconds"
	NamePortDowns        = "fault.port_downs"
	NameFlowsStranded    = "fault.flows_stranded"
	NameStrandedBytes    = "fault.stranded_bytes"
)

// Observer is the instrumentation handle threaded through the simulators and
// schedulers. All metric handles point into one shared Registry, pre-resolved
// at construction so hot-path updates are single atomic operations. A nil
// *Observer disables everything: call sites pay one nil-check.
//
// Scoped children (Scoped) share the parent's Registry and Sink but resolve
// their handles under a "<scope>." name prefix, so one Registry can hold
// per-scheduler metric sets side by side.
type Observer struct {
	// Circuit execution: establishments actually paid on the fabric.
	CircuitSetups *Counter      // circuits established
	SetupSeconds  *FloatCounter // total reconfiguration (δ) time paid
	HoldSeconds   *FloatCounter // total time circuits held their port pair
	PlannedBytes  *FloatCounter // capacity of established circuits

	// Simulation progress.
	BytesDelivered   *FloatCounter // bytes actually credited to flows
	CoflowsAdmitted  *Counter
	CoflowsCompleted *Counter
	SimEvents        *Counter
	QueueDepth       *Gauge // live plan / event-queue depth, with high-water mark

	// Scheduler cost.
	SchedPasses   *Counter      // top-level scheduling passes (replan / allocate)
	SchedSeconds  *FloatCounter // wall time inside those passes
	SchedPassTime *Histogram    // distribution of per-pass wall time (seconds)
	IntraPasses   *Counter      // per-Coflow intra-scheduler invocations
	// IntraSkipped counts live Coflows whose cached schedule an incremental
	// replan reused instead of invoking the intra scheduler: on any event
	// sequence, IntraPasses + IntraSkipped equals the IntraPasses a
	// full-rebuild run would record (the reconciliation property tests pin
	// this).
	IntraSkipped *Counter
	IntraSeconds *FloatCounter
	// IntraSeconds split by planner path: the event-driven fast path versus
	// the scan-based reference path (core.Options.Reference). The trace
	// stream is path-invariant by design, so this is the only record of
	// which planner produced a run.
	IntraFastSeconds *FloatCounter
	IntraRefSeconds  *FloatCounter
	Reservations     *Counter // reservations/assignments planned (incl. replanned ones)
	ResShortened     *Counter // reservations cut short by a later commitment (extra δ paid later)

	// Per-port busy time of executed circuits (input and output sides are
	// independent on an optical switch).
	InBusySeconds  *FloatVec
	OutBusySeconds *FloatVec

	// Fault injection (all zero on a fault-free run).
	CircuitRetries *Counter      // failed circuit-setup attempts, each paying δ
	RetrySeconds   *FloatCounter // extra setup time beyond the base δ (retries + backoff)
	PortDowns      *Counter      // port outages that began
	FlowsStranded  *Counter      // flows quarantined by permanent port failures
	StrandedBytes  *FloatCounter // demand those flows could not deliver

	reg    *Registry
	sink   Sink
	prefix string // "" at the root, "<scope>." in children

	mu     sync.Mutex
	scopes map[string]*Observer
}

// New returns an Observer over a fresh Registry with tracing disabled.
func New() *Observer { return NewWith(NewRegistry(), nil) }

// NewWith returns an Observer over the given Registry, emitting trace events
// to sink (nil disables tracing). A typed-nil pointer sink — e.g. a nil
// *JSONLSink wrapped in the interface — also disables tracing rather than
// panicking on the first event.
func NewWith(reg *Registry, sink Sink) *Observer {
	if sink != nil {
		if v := reflect.ValueOf(sink); v.Kind() == reflect.Pointer && v.IsNil() {
			sink = nil
		}
	}
	return newScoped(reg, sink, "")
}

func newScoped(reg *Registry, sink Sink, prefix string) *Observer {
	return &Observer{
		CircuitSetups:    reg.Counter(prefix + NameCircuitSetups),
		SetupSeconds:     reg.FloatCounter(prefix + NameSetupSeconds),
		HoldSeconds:      reg.FloatCounter(prefix + NameHoldSeconds),
		PlannedBytes:     reg.FloatCounter(prefix + NamePlannedBytes),
		BytesDelivered:   reg.FloatCounter(prefix + NameBytesDelivered),
		CoflowsAdmitted:  reg.Counter(prefix + NameCoflowsAdmitted),
		CoflowsCompleted: reg.Counter(prefix + NameCoflowsCompleted),
		SimEvents:        reg.Counter(prefix + NameSimEvents),
		QueueDepth:       reg.Gauge(prefix + NameQueueDepth),
		SchedPasses:      reg.Counter(prefix + NameSchedPasses),
		SchedSeconds:     reg.FloatCounter(prefix + NameSchedSeconds),
		SchedPassTime:    reg.Histogram(prefix + NameSchedPassTime),
		IntraPasses:      reg.Counter(prefix + NameIntraPasses),
		IntraSkipped:     reg.Counter(prefix + NameIntraSkipped),
		IntraSeconds:     reg.FloatCounter(prefix + NameIntraSeconds),
		IntraFastSeconds: reg.FloatCounter(prefix + NameIntraFastSeconds),
		IntraRefSeconds:  reg.FloatCounter(prefix + NameIntraRefSeconds),
		Reservations:     reg.Counter(prefix + NameReservations),
		ResShortened:     reg.Counter(prefix + NameResShortened),
		InBusySeconds:    reg.FloatVec(prefix + NameInBusySeconds),
		OutBusySeconds:   reg.FloatVec(prefix + NameOutBusySeconds),
		CircuitRetries:   reg.Counter(prefix + NameCircuitRetries),
		RetrySeconds:     reg.FloatCounter(prefix + NameRetrySeconds),
		PortDowns:        reg.Counter(prefix + NamePortDowns),
		FlowsStranded:    reg.Counter(prefix + NameFlowsStranded),
		StrandedBytes:    reg.FloatCounter(prefix + NameStrandedBytes),
		reg:              reg,
		sink:             sink,
		prefix:           prefix,
	}
}

// Scoped returns the child Observer named scope, creating it on first use.
// Children share the Registry and Sink; their metrics live under
// "<scope>.<name>". Scoped on a nil Observer returns nil, so call sites can
// scope unconditionally.
func (o *Observer) Scoped(scope string) *Observer {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if c, ok := o.scopes[scope]; ok {
		return c
	}
	c := newScoped(o.reg, o.sink, o.prefix+scope+".")
	c.scopes = nil
	if o.scopes == nil {
		o.scopes = map[string]*Observer{}
	}
	o.scopes[scope] = c
	return c
}

// ScopeNames returns the names of the scopes created so far, sorted.
func (o *Observer) ScopeNames() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	names := make([]string, 0, len(o.scopes))
	for n := range o.scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry returns the underlying Registry (nil-safe).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Sink returns the trace sink events are emitted to, or nil when tracing is
// disabled (nil-safe). Callers that want to tee extra consumers onto an
// existing observer combine this with Tee and NewWith.
func (o *Observer) Sink() Sink {
	if o == nil {
		return nil
	}
	return o.sink
}

// Snapshot exports the whole Registry (nil-safe).
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return nil
	}
	return o.reg.Snapshot()
}

// Summary reduces this Observer's own metric set (not its scopes) to the
// headline numbers experiment rows report.
type Summary struct {
	CircuitSetups    int64   `json:"circuit_setups"`
	SetupSeconds     float64 `json:"setup_seconds"`
	HoldSeconds      float64 `json:"hold_seconds"`
	DutyCycle        float64 `json:"duty_cycle"`
	PlannedBytes     float64 `json:"planned_bytes"`
	BytesDelivered   float64 `json:"bytes_delivered"`
	CoflowsCompleted int64   `json:"coflows_completed"`
	SimEvents        int64   `json:"sim_events"`
	PeakQueueDepth   int64   `json:"peak_queue_depth"`
	SchedPasses      int64   `json:"sched_passes"`
	SchedSeconds     float64 `json:"sched_seconds"`
	IntraFastSeconds float64 `json:"intra_fast_seconds"`
	IntraRefSeconds  float64 `json:"intra_ref_seconds"`
	Reservations     int64   `json:"reservations"`
}

// Summary reads the current headline values (nil-safe). DutyCycle is the
// fraction of circuit hold time spent transmitting rather than
// reconfiguring: (hold − setup) / hold.
func (o *Observer) Summary() Summary {
	if o == nil {
		return Summary{}
	}
	s := Summary{
		CircuitSetups:    o.CircuitSetups.Load(),
		SetupSeconds:     o.SetupSeconds.Load(),
		HoldSeconds:      o.HoldSeconds.Load(),
		PlannedBytes:     o.PlannedBytes.Load(),
		BytesDelivered:   o.BytesDelivered.Load(),
		CoflowsCompleted: o.CoflowsCompleted.Load(),
		SimEvents:        o.SimEvents.Load(),
		PeakQueueDepth:   o.QueueDepth.High(),
		SchedPasses:      o.SchedPasses.Load(),
		SchedSeconds:     o.SchedSeconds.Load(),
		IntraFastSeconds: o.IntraFastSeconds.Load(),
		IntraRefSeconds:  o.IntraRefSeconds.Load(),
		Reservations:     o.Reservations.Load(),
	}
	s.DutyCycle = dutyCycle(s.HoldSeconds, s.SetupSeconds)
	return s
}

// Sub returns the change from prev to s — the per-run delta when one scoped
// Observer accumulates across several runs. PeakQueueDepth is not
// subtractable and keeps s's value.
func (s Summary) Sub(prev Summary) Summary {
	d := Summary{
		CircuitSetups:    s.CircuitSetups - prev.CircuitSetups,
		SetupSeconds:     s.SetupSeconds - prev.SetupSeconds,
		HoldSeconds:      s.HoldSeconds - prev.HoldSeconds,
		PlannedBytes:     s.PlannedBytes - prev.PlannedBytes,
		BytesDelivered:   s.BytesDelivered - prev.BytesDelivered,
		CoflowsCompleted: s.CoflowsCompleted - prev.CoflowsCompleted,
		SimEvents:        s.SimEvents - prev.SimEvents,
		PeakQueueDepth:   s.PeakQueueDepth,
		SchedPasses:      s.SchedPasses - prev.SchedPasses,
		SchedSeconds:     s.SchedSeconds - prev.SchedSeconds,
		IntraFastSeconds: s.IntraFastSeconds - prev.IntraFastSeconds,
		IntraRefSeconds:  s.IntraRefSeconds - prev.IntraRefSeconds,
		Reservations:     s.Reservations - prev.Reservations,
	}
	d.DutyCycle = dutyCycle(d.HoldSeconds, d.SetupSeconds)
	return d
}

func dutyCycle(hold, setup float64) float64 {
	if hold <= 0 {
		return 0
	}
	return (hold - setup) / hold
}
