package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterAndFloatCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	f := r.FloatCounter("f")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got, want := f.Load(), float64(workers*per)*0.5; math.Abs(got-want) > 1e-6 {
		t.Errorf("float counter = %v, want %v", got, want)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var f *FloatCounter
	var g *Gauge
	var h *Histogram
	var v *FloatVec
	c.Inc()
	c.Add(5)
	f.Add(1.5)
	g.Set(3)
	h.Observe(1)
	v.Add(2, 1)
	if c.Load() != 0 || f.Load() != 0 || g.Load() != 0 || g.High() != 0 ||
		h.Count() != 0 || v.Sum() != 0 || v.Len() != 0 {
		t.Error("nil metrics must read zero")
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Scoped("x") != nil {
		t.Error("Scoped on nil observer must return nil")
	}
	if o.TraceEnabled() {
		t.Error("nil observer must not trace")
	}
	o.Emit(Event{Kind: KindCircuitUp})
	if o.Snapshot() != nil || o.Registry() != nil {
		t.Error("nil observer snapshot/registry must be nil")
	}
	if s := o.Summary(); !s.zero() {
		t.Errorf("nil observer summary = %+v, want zero", s)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	g := &Gauge{}
	for _, x := range []int64{3, 7, 2, 5} {
		g.Set(x)
	}
	if g.Load() != 5 {
		t.Errorf("Load = %d, want 5", g.Load())
	}
	if g.High() != 7 {
		t.Errorf("High = %d, want 7", g.High())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3) // 1ms .. 100ms
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if h.Max() != 0.1 {
		t.Errorf("max = %v, want 0.1", h.Max())
	}
	p50 := h.Quantile(0.5)
	// Power-of-two buckets: the p50 upper bound must sit within a factor of
	// two of the true median (0.05) and never exceed the max.
	if p50 < 0.05 || p50 > 0.1 {
		t.Errorf("p50 = %v, want in [0.05, 0.1]", p50)
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Errorf("q100 = %v, want max %v", q, h.Max())
	}
}

func TestFloatVecGrowsConcurrently(t *testing.T) {
	v := &FloatVec{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.Add(i, 1)
			}
		}(w)
	}
	wg.Wait()
	if v.Len() != 100 {
		t.Fatalf("len = %d, want 100", v.Len())
	}
	for i := 0; i < 100; i++ {
		if v.At(i) != 8 {
			t.Fatalf("vec[%d] = %v, want 8", i, v.At(i))
		}
	}
	if v.Sum() != 800 {
		t.Errorf("sum = %v, want 800", v.Sum())
	}
}

func TestRegistryIdempotentAndTypeChecked(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type mismatch")
		}
	}()
	r.Gauge("x")
}

func TestScopedObserversShareRegistry(t *testing.T) {
	o := New()
	a := o.Scoped("sunflow")
	b := o.Scoped("sunflow")
	if a != b {
		t.Error("Scoped must be idempotent")
	}
	a.CircuitSetups.Add(3)
	if got := o.Registry().Counter("sunflow." + NameCircuitSetups).Load(); got != 3 {
		t.Errorf("scoped counter via registry = %d, want 3", got)
	}
	if names := o.ScopeNames(); len(names) != 1 || names[0] != "sunflow" {
		t.Errorf("ScopeNames = %v", names)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	o := New()
	o.CircuitSetups.Add(2)
	o.SetupSeconds.Add(0.02)
	o.QueueDepth.Set(9)
	o.QueueDepth.Set(4)
	o.SchedPassTime.Observe(1e-4)
	o.InBusySeconds.Add(0, 1.5)
	o.InBusySeconds.Add(1, 0.5)

	var got map[string]json.RawMessage
	if err := json.Unmarshal(o.Snapshot().JSON(), &got); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	var setups int64
	if err := json.Unmarshal(got[NameCircuitSetups], &setups); err != nil || setups != 2 {
		t.Errorf("circuit.setups = %s (err %v), want 2", got[NameCircuitSetups], err)
	}
	var gauge GaugeValue
	if err := json.Unmarshal(got[NameQueueDepth], &gauge); err != nil {
		t.Fatalf("gauge: %v", err)
	}
	if gauge.Value != 4 || gauge.High != 9 {
		t.Errorf("gauge = %+v, want value 4 high 9", gauge)
	}
	var vec VecValue
	if err := json.Unmarshal(got[NameInBusySeconds], &vec); err != nil {
		t.Fatalf("vec: %v", err)
	}
	if vec.Count != 2 || vec.Sum != 2.0 || vec.Max != 1.5 {
		t.Errorf("vec = %+v", vec)
	}
}

func TestSummaryDutyCycleAndSub(t *testing.T) {
	o := New()
	o.CircuitSetups.Add(10)
	o.SetupSeconds.Add(0.1)
	o.HoldSeconds.Add(1.0)
	first := o.Summary()
	if math.Abs(first.DutyCycle-0.9) > 1e-12 {
		t.Errorf("duty = %v, want 0.9", first.DutyCycle)
	}
	o.CircuitSetups.Add(5)
	o.SetupSeconds.Add(0.05)
	o.HoldSeconds.Add(0.1)
	d := o.Summary().Sub(first)
	if d.CircuitSetups != 5 {
		t.Errorf("delta setups = %d, want 5", d.CircuitSetups)
	}
	if math.Abs(d.DutyCycle-0.5) > 1e-9 {
		t.Errorf("delta duty = %v, want 0.5", d.DutyCycle)
	}
}

// TestNewWithTypedNilSinkDisablesTracing guards the typed-nil interface
// footgun: a nil *JSONLSink wrapped in the Sink interface must behave like
// no sink at all.
func TestNewWithTypedNilSinkDisablesTracing(t *testing.T) {
	var sink *JSONLSink
	o := NewWith(NewRegistry(), sink)
	if o.TraceEnabled() {
		t.Fatal("typed-nil sink reads as trace-enabled")
	}
	o.Emit(Event{Kind: KindCircuitUp}) // must not panic
}
