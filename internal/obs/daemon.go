package obs

// Metric names of the sunflowd online scheduler daemon (internal/daemon).
// They live here with the simulator names so exposition, replay and the
// Prometheus mapping treat daemon counters like every other metric set.
const (
	NameDaemonEventsAccepted  = "daemon.events_accepted"  // events admitted, WAL-appended and applied
	NameDaemonEventsRejected  = "daemon.events_rejected"  // deterministic apply rejections (duplicate id, unknown coflow, ...)
	NameDaemonEventsShed      = "daemon.events_shed"      // 429s: in-flight limit or intake-queue backpressure
	NameDaemonEventsExpired   = "daemon.events_expired"   // request deadlines that fired while queued
	NameDaemonQueueDepth      = "daemon.queue_depth"      // intake queue occupancy, with high-water mark
	NameDaemonInflight        = "daemon.inflight"         // requests inside admission, with high-water mark
	NameDaemonReplans         = "daemon.replans"          // incremental replans triggered by applied events
	NameDaemonReplanRetries   = "daemon.replan_retries"   // transient replan failures retried with backoff
	NameDaemonReplanSeconds   = "daemon.replan_seconds"   // wall-clock distribution of one apply+replan
	NameDaemonWALAppends      = "daemon.wal_appends"      // records fsynced to the write-ahead log
	NameDaemonWALBytes        = "daemon.wal_bytes"        // bytes appended to the WAL
	NameDaemonSnapshots       = "daemon.snapshots"        // checkpoints written (WAL rotations)
	NameDaemonRecoveredEvents = "daemon.recovered_events" // WAL records replayed at startup
	NameDaemonCoflowsLive     = "daemon.coflows_live"     // registered, unfinished Coflows
	NameDaemonCoflowsDone     = "daemon.coflows_done"     // Coflows completed since process start
	NameDaemonWatchdogStalls  = "daemon.watchdog_stalls"  // wedged-loop detections that failed readiness
	NameDaemonDrains          = "daemon.drains"           // graceful drains begun (SIGTERM)
)

// DaemonMetrics bundles the daemon's instrumentation handles, pre-resolved
// from one Registry the way Observer pre-resolves the simulator set. A nil
// *DaemonMetrics disables everything at the cost of one nil-check per site.
type DaemonMetrics struct {
	EventsAccepted  *Counter
	EventsRejected  *Counter
	EventsShed      *Counter
	EventsExpired   *Counter
	QueueDepth      *Gauge
	Inflight        *Gauge
	Replans         *Counter
	ReplanRetries   *Counter
	ReplanSeconds   *Histogram
	WALAppends      *Counter
	WALBytes        *Counter
	Snapshots       *Counter
	RecoveredEvents *Counter
	CoflowsLive     *Gauge
	CoflowsDone     *Counter
	WatchdogStalls  *Counter
	Drains          *Counter
}

// NewDaemonMetrics resolves the daemon metric set in reg. A nil registry
// returns nil, so callers can thread an optional registry straight through.
func NewDaemonMetrics(reg *Registry) *DaemonMetrics {
	if reg == nil {
		return nil
	}
	return &DaemonMetrics{
		EventsAccepted:  reg.Counter(NameDaemonEventsAccepted),
		EventsRejected:  reg.Counter(NameDaemonEventsRejected),
		EventsShed:      reg.Counter(NameDaemonEventsShed),
		EventsExpired:   reg.Counter(NameDaemonEventsExpired),
		QueueDepth:      reg.Gauge(NameDaemonQueueDepth),
		Inflight:        reg.Gauge(NameDaemonInflight),
		Replans:         reg.Counter(NameDaemonReplans),
		ReplanRetries:   reg.Counter(NameDaemonReplanRetries),
		ReplanSeconds:   reg.Histogram(NameDaemonReplanSeconds),
		WALAppends:      reg.Counter(NameDaemonWALAppends),
		WALBytes:        reg.Counter(NameDaemonWALBytes),
		Snapshots:       reg.Counter(NameDaemonSnapshots),
		RecoveredEvents: reg.Counter(NameDaemonRecoveredEvents),
		CoflowsLive:     reg.Gauge(NameDaemonCoflowsLive),
		CoflowsDone:     reg.Counter(NameDaemonCoflowsDone),
		WatchdogStalls:  reg.Counter(NameDaemonWatchdogStalls),
		Drains:          reg.Counter(NameDaemonDrains),
	}
}
