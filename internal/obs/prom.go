package obs

// Prometheus text exposition (version 0.0.4) rendered straight from a
// Registry, so a live /metrics endpoint needs no external client library.
// Metric names are sanitized into the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): scoped dotted names like
// "sunflow.circuit.setups" become "sunflow_circuit_setups". Histograms are
// exported in the classic cumulative-bucket form, per-port vectors as one
// sample per index under a "port" label, and gauges carry a companion
// "_high" gauge for the high-water mark.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Each calls fn for every registered metric in sorted name order. The metric
// values are the live metric objects (*Counter, *FloatCounter, *Gauge,
// *Histogram, *FloatVec); fn must not retain them past the Registry's
// lifetime but may read them freely.
func (r *Registry) Each(fn func(name string, metric any)) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = r.metrics[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		fn(n, metrics[n])
	}
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format. A nil Registry writes nothing. The writer's error, if
// any, is returned.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.Each(func(name string, m any) {
		pn := PromName(name)
		switch v := m.(type) {
		case *Counter:
			pr("# TYPE %s counter\n%s %d\n", pn, pn, v.Load())
		case *FloatCounter:
			pr("# TYPE %s counter\n%s %s\n", pn, pn, promFloat(v.Load()))
		case *Gauge:
			pr("# TYPE %s gauge\n%s %d\n", pn, pn, v.Load())
			pr("# TYPE %s_high gauge\n%s_high %d\n", pn, pn, v.High())
		case *Histogram:
			writePromHistogram(pr, pn, v)
		case *FloatVec:
			n := v.Len()
			if n == 0 {
				return
			}
			pr("# TYPE %s gauge\n", pn)
			for i := 0; i < n; i++ {
				pr("%s{port=\"%d\"} %s\n", pn, i, promFloat(v.At(i)))
			}
		}
	})
	return err
}

// writePromHistogram renders the classic cumulative _bucket/_sum/_count
// triple. Empty power-of-two buckets are skipped — cumulative counts stay
// valid over any increasing subsequence of boundaries — keeping the output
// proportional to the occupied range rather than the 64 fixed buckets.
func writePromHistogram(pr func(string, ...any), pn string, h *Histogram) {
	pr("# TYPE %s histogram\n", pn)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		pr("%s_bucket{le=\"%s\"} %d\n", pn, promFloat(histUpper(i)), cum)
	}
	pr("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
	pr("%s_sum %s\n", pn, promFloat(h.Sum()))
	pr("%s_count %d\n", pn, h.Count())
}

// promFloat renders a float64 the way Prometheus expects.
func promFloat(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "+Inf"
	case math.IsInf(x, -1):
		return "-Inf"
	case math.IsNaN(x):
		return "NaN"
	}
	return fmt.Sprintf("%g", x)
}

// PromName maps a registry metric name onto the Prometheus metric-name
// grammar: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed with '_'.
func PromName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name) + 1)
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9')
		if !ok {
			sb.WriteByte('_')
			continue
		}
		if i == 0 && c >= '0' && c <= '9' {
			sb.WriteByte('_')
		}
		sb.WriteRune(c)
	}
	return sb.String()
}
