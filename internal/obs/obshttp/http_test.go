package obshttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunflow/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewWith(reg, nil)
	o.CircuitSetups.Add(42)
	o.SetupSeconds.Add(0.5)
	o.Scoped("sunflow").CoflowsCompleted.Add(7)

	srv, err := Serve("127.0.0.1:0", reg, Options{PublishInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE circuit_setups counter",
		"circuit_setups 42",
		"circuit_setup_seconds 0.5",
		"sunflow_sim_coflows_completed 7",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	if snap["circuit.setups"] != float64(42) {
		t.Errorf("/metrics.json circuit.setups = %v, want 42", snap["circuit.setups"])
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// expvar carries the published snapshot (the publisher primed it at
	// Serve time, before any tick).
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, `"sunflow"`) || !strings.Contains(body, "circuit.setups") {
		t.Errorf("/debug/vars missing published registry snapshot:\n%s", body)
	}

	// The publisher picks up later counter movement.
	o.CircuitSetups.Add(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body = get(t, base+"/debug/vars")
		if strings.Contains(body, `"circuit.setups": 43`) || strings.Contains(body, `"circuit.setups":43`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expvar snapshot never refreshed to 43:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body %d bytes", code, len(body))
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	// A CPU profile is reachable (1s keeps the test quick).
	code, _ = get(t, base+"/debug/pprof/profile?seconds=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/profile status %d", code)
	}
}

// TestCloseStopsGoroutines verifies Close reclaims both the serve and the
// publisher goroutine — the "zero goroutines when disabled" half is the
// absence of any Serve call at all, this guards the enabled half from leaks.
func TestCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{PublishInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, body := get(t, "http://"+srv.Addr()+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %q", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, was %d before Serve", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeNilPublisher disables the publisher with a negative interval.
func TestServeNilPublisher(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{PublishInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	}
}

// TestServeTimeoutsConfigured pins the slowloris hardening: the server the
// listener hands connections to carries finite timeouts by default, honors
// overrides, and treats negative values as an explicit "unbounded".
func TestServeTimeoutsConfigured(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{PublishInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.srv.ReadHeaderTimeout; got != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", got, DefaultReadHeaderTimeout)
	}
	if got := srv.srv.ReadTimeout; got != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", got, DefaultReadTimeout)
	}
	if got := srv.srv.WriteTimeout; got != DefaultWriteTimeout {
		t.Errorf("WriteTimeout = %v, want %v", got, DefaultWriteTimeout)
	}
	if got := srv.srv.IdleTimeout; got != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", got, DefaultIdleTimeout)
	}

	over, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{
		PublishInterval:   -1,
		ReadHeaderTimeout: time.Second,
		ReadTimeout:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	if got := over.srv.ReadHeaderTimeout; got != time.Second {
		t.Errorf("override ReadHeaderTimeout = %v, want 1s", got)
	}
	if got := over.srv.ReadTimeout; got != 0 {
		t.Errorf("negative ReadTimeout should disable the bound, got %v", got)
	}
}

// TestReadyzAndRoutes: /readyz flips with the Ready callback and extra
// Routes are served from the same mux.
func TestReadyzAndRoutes(t *testing.T) {
	var unready atomic.Bool
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{
		PublishInterval: -1,
		Ready: func() error {
			if unready.Load() {
				return errors.New("draining")
			}
			return nil
		},
		Routes: map[string]http.Handler{
			"/v1/hello": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprint(w, "hi")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/readyz = %d %q, want 200 ok", code, body)
	}
	unready.Store(true)
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz = %d %q, want 503 draining", code, body)
	}
	// Liveness stays unconditional while readiness fails.
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz must stay 200 while unready, got %d", code)
	}
	if code, body := get(t, base+"/v1/hello"); code != http.StatusOK || body != "hi" {
		t.Fatalf("/v1/hello = %d %q", code, body)
	}
}

// TestShutdownDrains: Shutdown lets an in-flight request finish while new
// connections are refused, and reclaims the goroutines.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{
		PublishInterval: -1,
		Routes: map[string]http.Handler{
			"/slow": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				close(entered)
				<-release
				fmt.Fprint(w, "done")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-entered

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shut <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener, then release the handler.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "done" {
		t.Fatalf("in-flight request = %q, %v; want done, nil", r.body, r.err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}
