package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"sunflow/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewWith(reg, nil)
	o.CircuitSetups.Add(42)
	o.SetupSeconds.Add(0.5)
	o.Scoped("sunflow").CoflowsCompleted.Add(7)

	srv, err := Serve("127.0.0.1:0", reg, Options{PublishInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE circuit_setups counter",
		"circuit_setups 42",
		"circuit_setup_seconds 0.5",
		"sunflow_sim_coflows_completed 7",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	if snap["circuit.setups"] != float64(42) {
		t.Errorf("/metrics.json circuit.setups = %v, want 42", snap["circuit.setups"])
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// expvar carries the published snapshot (the publisher primed it at
	// Serve time, before any tick).
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, `"sunflow"`) || !strings.Contains(body, "circuit.setups") {
		t.Errorf("/debug/vars missing published registry snapshot:\n%s", body)
	}

	// The publisher picks up later counter movement.
	o.CircuitSetups.Add(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body = get(t, base+"/debug/vars")
		if strings.Contains(body, `"circuit.setups": 43`) || strings.Contains(body, `"circuit.setups":43`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expvar snapshot never refreshed to 43:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body %d bytes", code, len(body))
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	// A CPU profile is reachable (1s keeps the test quick).
	code, _ = get(t, base+"/debug/pprof/profile?seconds=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/profile status %d", code)
	}
}

// TestCloseStopsGoroutines verifies Close reclaims both the serve and the
// publisher goroutine — the "zero goroutines when disabled" half is the
// absence of any Serve call at all, this guards the enabled half from leaks.
func TestCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{PublishInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, body := get(t, "http://"+srv.Addr()+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %q", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, was %d before Serve", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeNilPublisher disables the publisher with a negative interval.
func TestServeNilPublisher(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), Options{PublishInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	}
}
