// Package obshttp gives long simulation runs a live window: an HTTP server
// exposing the obs Registry as Prometheus text exposition (/metrics) and
// JSON (/metrics.json), a liveness probe (/healthz), the process expvar
// table (/debug/vars) fed by a periodic Registry snapshot publisher, and
// net/http/pprof (/debug/pprof/*) for profiling.
//
// The package is strictly opt-in: nothing is registered on the default
// serve mux and no goroutine exists until Serve is called, so binaries that
// do not pass -http pay nothing.
package obshttp

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"sunflow/internal/obs"
)

// DefaultPublishInterval is how often the expvar publisher refreshes its
// Registry snapshot when Options.PublishInterval is zero.
const DefaultPublishInterval = 5 * time.Second

// expvarName is the key the Registry snapshot is published under in
// /debug/vars.
const expvarName = "sunflow"

// expvar.Publish panics on duplicate names and offers no unpublish, so the
// snapshot slot is process-global: every Server stores into the same atomic
// cell and the expvar Func reads whichever snapshot was stored last.
var (
	expvarOnce sync.Once
	expvarSnap atomic.Value // obs.Snapshot
)

// publishSnapshot refreshes the process-global expvar snapshot.
func publishSnapshot(s obs.Snapshot) {
	expvarSnap.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish(expvarName, expvar.Func(func() any {
			v, _ := expvarSnap.Load().(obs.Snapshot)
			return v
		}))
	})
}

// Default http.Server timeouts. A long-running daemon must bound every
// client interaction or a single slow-loris connection holds a goroutine
// (and eventually a file descriptor table) forever; these defaults are
// generous enough for /debug/pprof/profile?seconds=30 yet finite.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 90 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// Options tunes Serve.
type Options struct {
	// PublishInterval is the period of the Registry→expvar publisher; zero
	// selects DefaultPublishInterval, negative disables the publisher (the
	// /metrics endpoints still read the live Registry on every request).
	PublishInterval time.Duration

	// ReadHeaderTimeout, ReadTimeout, WriteTimeout and IdleTimeout bound the
	// served connections; zero selects the package defaults above, negative
	// disables that bound (http.Server treats 0 as unbounded, so "unbounded"
	// must be asked for explicitly here).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// Ready, when non-nil, adds a /readyz probe: 200 "ok" while Ready returns
	// nil, 503 with the error text otherwise. Liveness (/healthz) stays
	// unconditional — a draining or recovering process is alive but not ready.
	Ready func() error

	// Routes mounts extra handlers onto the exposition mux, keyed by pattern
	// ("/v1/" etc.). Patterns registered here must not collide with the
	// built-in endpoints.
	Routes map[string]http.Handler
}

// timeout resolves one configured bound against its default.
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// Handler returns the exposition mux for the Registry: /metrics (Prometheus
// text), /metrics.json (Snapshot JSON), /healthz, /debug/vars (expvar) and
// /debug/pprof/*, plus /readyz and the extra routes configured in opts.
func Handler(reg *obs.Registry, opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap obs.Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		_, _ = w.Write(snap.JSON())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if ready := opts.Ready; ready != nil {
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
	}
	for pattern, h := range opts.Routes {
		mux.Handle(pattern, h)
	}
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	stop chan struct{}
	wg   sync.WaitGroup
}

// Serve binds addr (e.g. ":8080", "localhost:0") and serves Handler(reg,
// opts) in the background, refreshing the expvar snapshot on
// opts.PublishInterval until Close. The bind error is returned synchronously
// — a daemon with an unusable address must fail its startup, not log from a
// goroutine after reporting success. The returned Server reports the bound
// address via Addr. Connections are bounded by the Options timeouts
// (package defaults when zero), so a stalled client cannot pin a handler
// goroutine for the life of the process.
func Serve(addr string, reg *obs.Registry, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, opts),
			ReadHeaderTimeout: timeout(opts.ReadHeaderTimeout, DefaultReadHeaderTimeout),
			ReadTimeout:       timeout(opts.ReadTimeout, DefaultReadTimeout),
			WriteTimeout:      timeout(opts.WriteTimeout, DefaultWriteTimeout),
			IdleTimeout:       timeout(opts.IdleTimeout, DefaultIdleTimeout),
		},
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed is the normal Close path; anything else surfaces
		// on the next scrape as a refused connection, which is the failure
		// mode operators already watch for.
		_ = s.srv.Serve(ln)
	}()

	interval := opts.PublishInterval
	if interval == 0 {
		interval = DefaultPublishInterval
	}
	if interval > 0 && reg != nil {
		publishSnapshot(reg.Snapshot())
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					publishSnapshot(reg.Snapshot())
				case <-s.stop:
					// One final refresh so /debug/vars scraped between Close
					// and process exit sees the run's end state.
					publishSnapshot(reg.Snapshot())
					return
				}
			}
		}()
	}
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:43211").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the publisher and the HTTP server, dropping in-flight
// requests. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	close(s.stop)
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: the listener closes immediately,
// in-flight requests run to completion (bounded by ctx), and the expvar
// publisher takes its final snapshot. Safe on nil.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	close(s.stop)
	err := s.srv.Shutdown(ctx)
	s.wg.Wait()
	return err
}
