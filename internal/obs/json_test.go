package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestEventJSONRoundTrip checks encode→decode is the identity across every
// field shape the simulators emit, including the -1 identity sentinels and
// the span fields.
func TestEventJSONRoundTrip(t *testing.T) {
	cases := []Event{
		{T: 0, Kind: KindCoflowAdmit, Coflow: 7, Src: -1, Dst: -1, Bytes: 5e6},
		{T: 1.5, Kind: KindCircuitUp, Scope: "sunflow", Coflow: 7, Src: 2, Dst: 3, Bytes: 1e6, Dur: 0.01},
		{T: 2.25, Kind: KindCircuitDown, Coflow: 7, Src: 2, Dst: 3},
		{T: 3, Kind: KindWindowOpen, Coflow: -1, Src: -1, Dst: -1, Dur: 0.05},
		{T: 4, Kind: KindFlowFinish, Coflow: 0, Src: 0, Dst: 0, Bytes: 1e6},
		{Kind: KindSpan, Scope: "sunflow", Coflow: -1, Src: -1, Dst: -1,
			Name: "sched.pass", Span: 3, Parent: 1, Wall: 0.125, Dur: 0.002},
		{Kind: KindSpan, Coflow: -1, Src: -1, Dst: -1, Name: "intra",
			Span: 9, Wall: 1.5, Dur: 0.25, Attrs: map[string]string{"planner": "fast"}},
	}
	for _, want := range cases {
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal %+v: %v", want, err)
		}
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed the event:\n  in  %+v\n  out %+v\n  via %s", want, got, b)
		}
	}
}

// TestEventJSONOmitsSentinels checks -1 identity fields are not written.
func TestEventJSONOmitsSentinels(t *testing.T) {
	b, err := json.Marshal(Event{T: 1, Kind: KindWindowClose, Coflow: -1, Src: -1, Dst: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"coflow", "src", "dst", "bytes", "dur"} {
		if strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("sentinel field %q serialized: %s", key, b)
		}
	}
	// Zero ids are meaningful and must be written.
	b, err = json.Marshal(Event{T: 1, Kind: KindFlowStart, Coflow: 0, Src: 0, Dst: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"coflow", "src", "dst"} {
		if !strings.Contains(string(b), `"`+key+`":0`) {
			t.Errorf("zero-valued %q dropped: %s", key, b)
		}
	}
}

// TestEventJSONDecodeDefaults checks events decoded from lines missing the
// identity keys read -1, not 0 — the decode half of the documented contract.
func TestEventJSONDecodeDefaults(t *testing.T) {
	var ev Event
	if err := json.Unmarshal([]byte(`{"t":2.5,"kind":"window_open","dur":0.05}`), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Coflow != -1 || ev.Src != -1 || ev.Dst != -1 {
		t.Errorf("absent identity keys decoded to %d/%d/%d, want -1/-1/-1", ev.Coflow, ev.Src, ev.Dst)
	}
	if ev.T != 2.5 || ev.Kind != KindWindowOpen || ev.Dur != 0.05 {
		t.Errorf("present fields corrupted: %+v", ev)
	}
}

// TestTeeSink checks fan-out and the nil-collapsing contract.
func TestTeeSink(t *testing.T) {
	a, b := &SliceSink{}, &SliceSink{}
	tee := Tee(nil, a, nil, b)
	tee.Emit(Event{T: 1, Kind: KindCircuitUp, Coflow: 1, Src: 0, Dst: 0})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("tee delivered %d/%d events, want 1/1", len(a.Events()), len(b.Events()))
	}
	if got := Tee(nil, a); got != Sink(a) {
		t.Errorf("single-sink tee should collapse to the sink itself, got %T", got)
	}
	if Tee(nil, nil) != nil {
		t.Error("all-nil tee must return nil so tracing stays disabled")
	}
}
