// Package obs is the zero-dependency observability layer of the repository:
// typed counters, gauges, histograms and per-port vectors held in an atomic,
// concurrency-safe Registry, plus an optional structured event trace emitted
// through a pluggable Sink (see trace.go).
//
// The layer is designed to disappear when unused: every simulator and
// scheduler takes an optional *Observer, and a nil Observer costs the hot
// paths exactly one nil-check. Metric update methods are additionally safe on
// nil receivers so partially wired code never panics.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value. A nil Counter reads zero.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64 accumulated with a
// compare-and-swap loop, safe for concurrent use.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds x. Safe on a nil receiver (no-op).
func (f *FloatCounter) Add(x float64) {
	if f == nil || x == 0 {
		return
	}
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Load returns the current value. A nil FloatCounter reads zero.
func (f *FloatCounter) Load() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Gauge is a settable int64 that also remembers its high-water mark — used
// for instantaneous levels such as event-queue depth.
type Gauge struct{ v, high atomic.Int64 }

// Set records the current level and raises the high-water mark if needed.
// Safe on a nil receiver (no-op).
func (g *Gauge) Set(x int64) {
	if g == nil {
		return
	}
	g.v.Store(x)
	for {
		h := g.high.Load()
		if x <= h || g.high.CompareAndSwap(h, x) {
			return
		}
	}
}

// Load returns the last set level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high-water mark.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// histBuckets is the fixed bucket count of Histogram: power-of-two buckets
// centered so that values from nanoseconds to kiloseconds land in range.
const histBuckets = 64

// histOffset shifts the binary exponent so bucket 0 holds values below
// 2^-histOffset.
const histOffset = 40

// Histogram records a distribution of positive float64 observations in
// power-of-two buckets, with exact count, sum and max. All updates are
// atomic; Observe never allocates.
type Histogram struct {
	count   atomic.Int64
	sum     FloatCounter
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// histBucket maps a value to its bucket index.
func histBucket(x float64) int {
	if x <= 0 {
		return 0
	}
	exp := math.Ilogb(x) + histOffset
	if exp < 0 {
		return 0
	}
	if exp >= histBuckets {
		return histBuckets - 1
	}
	return exp
}

// histUpper returns the inclusive upper bound of bucket i.
func histUpper(i int) float64 {
	return math.Ldexp(1, i-histOffset+1)
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(x)
	h.buckets[histBucket(x)].Add(1)
	for {
		old := h.maxBits.Load()
		if x <= math.Float64frombits(old) {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) from the
// bucket boundaries; the answer is exact to within one power of two.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return math.Min(histUpper(i), h.Max())
		}
	}
	return h.Max()
}

// FloatVec is a growable vector of FloatCounters indexed by a small integer
// — per-port accumulators. Growth takes a write lock; established indices
// update lock-free after a read-locked lookup.
type FloatVec struct {
	mu sync.RWMutex
	vs []*FloatCounter
}

// Add adds x at index i, growing the vector as needed. Safe on a nil
// receiver (no-op); negative indices are ignored.
func (v *FloatVec) Add(i int, x float64) {
	if v == nil || i < 0 {
		return
	}
	v.mu.RLock()
	if i < len(v.vs) {
		c := v.vs[i]
		v.mu.RUnlock()
		c.Add(x)
		return
	}
	v.mu.RUnlock()
	v.mu.Lock()
	for len(v.vs) <= i {
		v.vs = append(v.vs, &FloatCounter{})
	}
	c := v.vs[i]
	v.mu.Unlock()
	c.Add(x)
}

// At returns the value at index i (zero when out of range).
func (v *FloatVec) At(i int) float64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if i < 0 || i >= len(v.vs) {
		return 0
	}
	return v.vs[i].Load()
}

// Len returns the current vector length.
func (v *FloatVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.vs)
}

// Sum returns the sum across all indices.
func (v *FloatVec) Sum() float64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	var s float64
	for _, c := range v.vs {
		s += c.Load()
	}
	return s
}

// Registry is a concurrency-safe, name-addressed set of metrics. Metric
// constructors are idempotent: asking twice for the same name returns the
// same metric, so scoped Observers sharing a Registry accumulate together.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	names   []string
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]any{}}
}

// register returns the metric under name, creating it with mk on first use,
// and panics if the name is already bound to a different metric type — a
// programming error.
func register[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	r.names = append(r.names, name)
	return t
}

// Counter returns the Counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	return register(r, name, func() *Counter { return &Counter{} })
}

// FloatCounter returns the FloatCounter registered under name.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	return register(r, name, func() *FloatCounter { return &FloatCounter{} })
}

// Gauge returns the Gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	return register(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the Histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	return register(r, name, func() *Histogram { return &Histogram{} })
}

// FloatVec returns the FloatVec registered under name.
func (r *Registry) FloatVec(name string) *FloatVec {
	return register(r, name, func() *FloatVec { return &FloatVec{} })
}

// Snapshot is a point-in-time JSON-marshalable export of a Registry.
type Snapshot map[string]any

// GaugeValue is a Gauge's exported form.
type GaugeValue struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// HistogramValue is a Histogram's exported form.
type HistogramValue struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

// VecValue is a FloatVec's exported form: per-index values summarized.
type VecValue struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot exports every registered metric. Metrics that have never been
// touched still appear, reading zero.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = r.metrics[n]
	}
	r.mu.Unlock()

	out := make(Snapshot, len(names))
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			out[name] = m.Load()
		case *FloatCounter:
			out[name] = m.Load()
		case *Gauge:
			out[name] = GaugeValue{Value: m.Load(), High: m.High()}
		case *Histogram:
			hv := HistogramValue{Count: m.Count(), Sum: m.Sum(), Max: m.Max()}
			if hv.Count > 0 {
				hv.Mean = hv.Sum / float64(hv.Count)
				hv.P50 = m.Quantile(0.50)
				hv.P95 = m.Quantile(0.95)
			}
			out[name] = hv
		case *FloatVec:
			vv := VecValue{Count: m.Len()}
			if vv.Count > 0 {
				vv.Min = math.Inf(1)
				for i := 0; i < vv.Count; i++ {
					x := m.At(i)
					vv.Sum += x
					vv.Min = math.Min(vv.Min, x)
					vv.Max = math.Max(vv.Max, x)
				}
				vv.Mean = vv.Sum / float64(vv.Count)
			}
			out[name] = vv
		}
	}
	return out
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// JSON renders the snapshot as indented JSON with sorted keys (the encoder
// sorts map keys).
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot values are plain numbers and structs; marshalling cannot
		// fail unless a NaN/Inf sneaks in, which we sanitize here.
		return []byte(fmt.Sprintf("{%q: %q}", "error", err.Error()))
	}
	return b
}
