package obs

import "math"

// merge folds another histogram's observations into h: counts, sums and
// buckets add, the max raises. Used by Registry.Merge.
func (h *Histogram) merge(from *Histogram) {
	if h == nil || from == nil {
		return
	}
	h.count.Add(from.count.Load())
	h.sum.Add(from.sum.Load())
	for i := range h.buckets {
		if n := from.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	m := from.Max()
	for {
		old := h.maxBits.Load()
		if m <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(m)) {
			return
		}
	}
}

// Merge folds every metric registered in from into the same-named metric of
// r, creating metrics r has not seen yet. Counters and float counters add,
// histograms merge bucket-by-bucket, per-port vectors add index-by-index, and
// gauges adopt from's last value while raising the high-water mark to cover
// from's peak. Metrics are folded in from's registration order, so merging
// the same registries in the same order always produces the same result —
// the property the sharded simulator relies on to keep metric snapshots
// deterministic across worker counts.
func (r *Registry) Merge(from *Registry) {
	if r == nil || from == nil {
		return
	}
	from.mu.Lock()
	names := append([]string(nil), from.names...)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = from.metrics[n]
	}
	from.mu.Unlock()

	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			r.Counter(name).Add(m.Load())
		case *FloatCounter:
			r.FloatCounter(name).Add(m.Load())
		case *Gauge:
			dst := r.Gauge(name)
			dst.Set(m.High())
			dst.Set(m.Load())
		case *Histogram:
			r.Histogram(name).merge(m)
		case *FloatVec:
			dst := r.FloatVec(name)
			for i := 0; i < m.Len(); i++ {
				dst.Add(i, m.At(i))
			}
		}
	}
}

// Detached returns an Observer carrying the same scope prefix as o over a
// fresh private Registry. When o records trace events, the detached observer
// records them into the returned SliceSink (nil otherwise). A concurrent
// subproblem — e.g. one port-disjoint shard of a simulation — runs against
// the detached observer, and the caller folds the instrumentation back
// afterwards in a deterministic order: Registry().Merge for the metrics, a
// replay of the SliceSink's events into o.Sink() for the trace.
func (o *Observer) Detached() (*Observer, *SliceSink) {
	if o == nil {
		return nil, nil
	}
	var buf *SliceSink
	var sink Sink
	if o.sink != nil {
		buf = &SliceSink{}
		sink = buf
	}
	return newScoped(NewRegistry(), sink, o.prefix), buf
}
