package obs

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// FormatSummaries renders the observer's root and scoped summaries as an
// aligned text table — the block cmd/repro and cmd/sunflow print under
// -metrics. Scopes (and the root) that recorded nothing are skipped.
func FormatSummaries(o *Observer) string {
	if o == nil {
		return ""
	}
	type row struct {
		name string
		s    Summary
	}
	var rows []row
	if s := o.Summary(); !s.zero() {
		rows = append(rows, row{"(root)", s})
	}
	for _, name := range o.ScopeNames() {
		if s := o.Scoped(name).Summary(); !s.zero() {
			rows = append(rows, row{name, s})
		}
	}
	if len(rows) == 0 {
		return "metrics: nothing recorded\n"
	}
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scope\tcircuits\tδ seconds\tduty\tbytes\tsched passes\tsched s\tplanner\treservations")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%s\t%s\t%d\t%.4f\t%s\t%d\n",
			r.name, r.s.CircuitSetups, r.s.SetupSeconds, formatDuty(r.s),
			formatBytes(r.s.BytesDelivered), r.s.SchedPasses, r.s.SchedSeconds,
			formatPlanner(r.s), r.s.Reservations)
	}
	w.Flush()
	return sb.String()
}

// zero reports whether nothing was recorded under this summary.
func (s Summary) zero() bool {
	return s == Summary{}
}

// formatDuty renders the duty cycle, or "-" for packet-switched scopes that
// never establish circuits.
func formatDuty(s Summary) string {
	if s.HoldSeconds <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", s.DutyCycle)
}

// formatPlanner renders which intra-Coflow planner path produced the passes
// — the trace stream is path-invariant by design, so this column (and the
// underlying counters) is the only record. "-" when no intra pass ran.
func formatPlanner(s Summary) string {
	switch {
	case s.IntraFastSeconds > 0 && s.IntraRefSeconds > 0:
		return fmt.Sprintf("mixed %.4f/%.4f", s.IntraFastSeconds, s.IntraRefSeconds)
	case s.IntraRefSeconds > 0:
		return fmt.Sprintf("ref %.4f", s.IntraRefSeconds)
	case s.IntraFastSeconds > 0:
		return fmt.Sprintf("fast %.4f", s.IntraFastSeconds)
	default:
		return "-"
	}
}

// formatBytes renders a byte count with a binary-free SI unit.
func formatBytes(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.2f TB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", b/1e6)
	case b > 0:
		return fmt.Sprintf("%.0f B", b)
	default:
		return "0"
	}
}
