// Package span provides lightweight hierarchical self-profiling for the
// schedulers, simulators and the matrix engine: wall-clock timed spans with
// parent links and per-span attributes, recorded through per-goroutine span
// stacks so the hot path takes no locks.
//
// A finished span fans out to up to three sinks, all optional:
//
//   - aggregation into an obs.Registry — every phase gets a Histogram named
//     "span.<name>" (scope-prefixed for scoped stacks), so per-phase count,
//     total and max export through /metrics and Snapshot for free;
//   - a KindSpan event in the obs trace stream (docs/TRACE.md), which the
//     replay linter checks and `sunflow-analyze profile` turns into a
//     flamegraph and per-phase table;
//   - an in-memory span tree retained on the Profiler for programmatic
//     analysis.
//
// Spans measure wall-clock time only; they never touch simulated time, and
// a nil *Profiler, *Stack or *Span is a no-op everywhere, so disabled
// profiling costs callers exactly one nil-check and zero allocations —
// the same contract as a nil *obs.Observer.
package span

import (
	"sync"
	"sync/atomic"
	"time"

	"sunflow/internal/obs"
)

// Options configures a Profiler. All fields are optional; a zero Options
// still yields a working Profiler whose spans go nowhere (useful only for
// the in-memory tree once Tree is set).
type Options struct {
	// Registry receives per-phase aggregation: a Histogram per span name
	// under "span.<name>" (or "<scope>.span.<name>" for scoped stacks).
	Registry *obs.Registry
	// Sink receives one obs.KindSpan event per finished span. Children are
	// emitted before their parents (a span finishes after its children).
	Sink obs.Sink
	// Tree retains finished root spans on the Profiler for Roots().
	Tree bool
	// Runtime, when non-nil, samples Go runtime health metrics (heap bytes,
	// goroutines, GC pauses) into Registry at root-span boundaries.
	Runtime *Sampler
}

// Profiler is the shared recording backend behind any number of Stacks.
// All methods are safe for concurrent use and safe on a nil receiver.
type Profiler struct {
	reg     *obs.Registry
	sink    obs.Sink
	tree    bool
	sampler *Sampler
	epoch   time.Time
	ids     atomic.Int64

	mu    sync.Mutex
	roots []*Span
}

// New returns a Profiler recording through the given sinks. The wall-clock
// epoch — the zero point of every span's Wall offset — is the moment of
// this call.
func New(opt Options) *Profiler {
	return &Profiler{
		reg:     opt.Registry,
		sink:    opt.Sink,
		tree:    opt.Tree,
		sampler: opt.Runtime,
		epoch:   time.Now(),
	}
}

// NewStack returns a span stack for one goroutine. A Stack is not safe for
// concurrent use — each worker goroutine must create its own — but any
// number of Stacks may record into the same Profiler concurrently. The
// scope, when non-empty, prefixes aggregate metric names and stamps the
// Scope field of emitted trace events, mirroring obs.Observer.Scoped.
// Safe on a nil Profiler (returns a nil Stack, which no-ops).
func (p *Profiler) NewStack(scope string) *Stack {
	if p == nil {
		return nil
	}
	return &Stack{p: p, scope: scope, hists: map[string]*obs.Histogram{}}
}

// Roots returns the finished root spans retained so far (Options.Tree).
// The slice is a snapshot; the spans themselves are no longer mutated once
// finished.
func (p *Profiler) Roots() []*Span {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Span(nil), p.roots...)
}

// Epoch returns the profiler's wall-clock zero point.
func (p *Profiler) Epoch() time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.epoch
}

// Stack is a per-goroutine stack of open spans. The current open span is
// the parent of the next Start, which is what builds the hierarchy without
// callers threading parent handles around.
type Stack struct {
	p     *Profiler
	scope string
	cur   *Span
	// hists caches the per-name aggregate histograms so repeated phases
	// skip the registry's mutex on the hot path.
	hists map[string]*obs.Histogram
}

// Span is one timed phase. The exported fields are final once the span is
// finished; Children is populated only when the Profiler retains trees.
type Span struct {
	// Name is the phase name ("sched.pass", "tms.sinkhorn", ...).
	Name string
	// ID is unique within the Profiler, never 0. ParentID is 0 for roots.
	ID, ParentID int64
	// Wall is the wall-clock start offset in seconds from the Profiler's
	// epoch; Dur is the wall-clock duration in seconds.
	Wall, Dur float64
	// Attrs carries optional annotations set with Attr.
	Attrs map[string]string
	// Children are the finished child spans, in finish order (which, under
	// stack discipline, is also chronological start order).
	Children []*Span

	st     *Stack
	parent *Span
	start  time.Time
}

// Start opens a span named name as a child of the stack's current open
// span (or as a root). Safe on a nil Stack (returns a nil Span).
func (st *Stack) Start(name string) *Span {
	if st == nil {
		return nil
	}
	now := time.Now()
	sp := &Span{
		Name:   name,
		ID:     st.p.ids.Add(1),
		Wall:   now.Sub(st.p.epoch).Seconds(),
		st:     st,
		parent: st.cur,
		start:  now,
	}
	if sp.parent != nil {
		sp.ParentID = sp.parent.ID
	}
	st.cur = sp
	return sp
}

// Attr annotates the span and returns it for chaining. Safe on a nil Span.
func (sp *Span) Attr(key, value string) *Span {
	if sp == nil {
		return nil
	}
	if sp.Attrs == nil {
		sp.Attrs = map[string]string{}
	}
	sp.Attrs[key] = value
	return sp
}

// Finish closes the span, measuring its duration from Start, and returns
// the duration in seconds. Safe on a nil or already-finished Span (no-op).
func (sp *Span) Finish() float64 {
	if sp == nil || sp.st == nil {
		return 0
	}
	return sp.finish(time.Since(sp.start).Seconds())
}

// FinishWith closes the span with a caller-measured duration. Call sites
// that already time a phase for an obs counter (sched.seconds and friends)
// pass the same measurement here, so aggregate span totals reconcile with
// the counters exactly rather than within clock jitter.
func (sp *Span) FinishWith(sec float64) float64 {
	if sp == nil || sp.st == nil {
		return 0
	}
	return sp.finish(sec)
}

func (sp *Span) finish(sec float64) float64 {
	if sec < 0 {
		sec = 0
	}
	sp.Dur = sec
	st := sp.st
	sp.st = nil // a second Finish is a no-op
	// Pop to the parent even if children were left open (forgotten Finish):
	// the stack recovers instead of corrupting later parentage.
	st.cur = sp.parent
	p := st.p
	if h := st.hist(sp.Name); h != nil {
		h.Observe(sec)
	}
	if p.sink != nil {
		p.sink.Emit(obs.Event{
			Kind: obs.KindSpan, Scope: st.scope, Coflow: -1, Src: -1, Dst: -1,
			Name: sp.Name, Span: sp.ID, Parent: sp.ParentID, Wall: sp.Wall,
			Dur: sec, Attrs: sp.Attrs,
		})
	}
	if sp.parent != nil {
		if p.tree {
			sp.parent.Children = append(sp.parent.Children, sp)
		}
	} else {
		if p.tree {
			p.mu.Lock()
			p.roots = append(p.roots, sp)
			p.mu.Unlock()
		}
		if p.sampler != nil {
			p.sampler.Sample(p.reg)
		}
	}
	return sec
}

// Self returns the span's self time: its duration minus its children's,
// clamped at zero. Meaningful only on tree-retained spans.
func (sp *Span) Self() float64 {
	if sp == nil {
		return 0
	}
	s := sp.Dur
	for _, c := range sp.Children {
		s -= c.Dur
	}
	if s < 0 {
		return 0
	}
	return s
}

// hist returns the aggregate histogram for a phase name, nil when the
// profiler has no registry.
func (st *Stack) hist(name string) *obs.Histogram {
	if st.p.reg == nil {
		return nil
	}
	h, ok := st.hists[name]
	if !ok {
		full := "span." + name
		if st.scope != "" {
			full = st.scope + ".span." + name
		}
		h = st.p.reg.Histogram(full)
		st.hists[name] = h
	}
	return h
}
