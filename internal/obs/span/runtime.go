package span

import (
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"sunflow/internal/obs"
)

// Runtime metric names exported into the Registry by Sampler.Sample.
const (
	NameHeapBytes      = "runtime.heap_bytes"       // live heap object bytes (gauge)
	NameGoroutines     = "runtime.goroutines"       // goroutine count (gauge)
	NameGCCycles       = "runtime.gc_cycles"        // completed GC cycles (gauge)
	NameGCPauseSeconds = "runtime.gc_pause_seconds" // cumulative GC stop-the-world pause (float counter)
)

// Sampler snapshots Go runtime health metrics — heap in use, goroutine
// count, GC cycles and cumulative GC pause — into an obs.Registry. The
// Profiler triggers it at root-span boundaries so long runs (nightly
// matrices, a future daemon) get a health trail without a separate
// collection loop; MinInterval throttles the actual runtime/metrics reads.
// Safe for concurrent use.
type Sampler struct {
	// MinInterval is the minimum wall time between two actual reads;
	// Sample calls inside the window return immediately. Zero selects
	// 100 ms.
	MinInterval time.Duration

	last atomic.Int64 // unix nanos of the last completed read

	mu        sync.Mutex
	samples   []metrics.Sample
	prevPause float64
}

// runtimeSampleNames are the runtime/metrics series the sampler reads.
// Unsupported names (older or newer toolchains) read as KindBad and are
// skipped, so the sampler degrades rather than breaks across Go versions.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
}

// Sample reads the runtime metrics into reg, rate-limited by MinInterval.
// Safe on a nil Sampler or nil registry (no-op).
func (s *Sampler) Sample(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	min := s.MinInterval
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	now := time.Now().UnixNano()
	last := s.last.Load()
	if now-last < int64(min) || !s.last.CompareAndSwap(last, now) {
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.samples == nil {
		s.samples = make([]metrics.Sample, len(runtimeSampleNames))
		for i, n := range runtimeSampleNames {
			s.samples[i].Name = n
		}
	}
	metrics.Read(s.samples)
	for _, sm := range s.samples {
		switch sm.Name {
		case "/memory/classes/heap/objects:bytes":
			if sm.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(NameHeapBytes).Set(int64(sm.Value.Uint64()))
			}
		case "/sched/goroutines:goroutines":
			if sm.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(NameGoroutines).Set(int64(sm.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if sm.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(NameGCCycles).Set(int64(sm.Value.Uint64()))
			}
		case "/sched/pauses/total/gc:seconds":
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				total := histogramTotal(sm.Value.Float64Histogram())
				if d := total - s.prevPause; d > 0 {
					reg.FloatCounter(NameGCPauseSeconds).Add(d)
					s.prevPause = total
				}
			}
		}
	}
}

// histogramTotal estimates the cumulative seconds represented by a
// runtime/metrics duration histogram: each bucket contributes its count
// times the bucket midpoint (runtime pause histograms expose counts, not a
// sum, so the total is exact only to bucket resolution — plenty for a
// health trail).
func histogramTotal(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		total += float64(n) * bucketMid(h.Buckets[i], h.Buckets[i+1])
	}
	return total
}

// bucketMid picks a representative value for a histogram bucket, handling
// the ±Inf boundary buckets.
func bucketMid(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
