package span

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sunflow/internal/obs"
)

func TestNilSafety(t *testing.T) {
	var p *Profiler
	st := p.NewStack("x")
	if st != nil {
		t.Fatalf("nil Profiler.NewStack = %v, want nil", st)
	}
	sp := st.Start("phase")
	if sp != nil {
		t.Fatalf("nil Stack.Start = %v, want nil", sp)
	}
	if got := sp.Attr("k", "v"); got != nil {
		t.Fatalf("nil Span.Attr = %v, want nil", got)
	}
	if d := sp.Finish(); d != 0 {
		t.Fatalf("nil Span.Finish = %v, want 0", d)
	}
	if d := sp.FinishWith(3); d != 0 {
		t.Fatalf("nil Span.FinishWith = %v, want 0", d)
	}
	if s := sp.Self(); s != 0 {
		t.Fatalf("nil Span.Self = %v, want 0", s)
	}
	if r := p.Roots(); r != nil {
		t.Fatalf("nil Profiler.Roots = %v, want nil", r)
	}
	if !p.Epoch().IsZero() {
		t.Fatalf("nil Profiler.Epoch = %v, want zero", p.Epoch())
	}
}

// Disabled profiling must cost callers nothing: the nil fast path through
// Start/Attr/Finish allocates zero bytes, matching the nil *obs.Observer
// contract the hot loops rely on.
func TestDisabledZeroAlloc(t *testing.T) {
	var st *Stack
	allocs := testing.AllocsPerRun(100, func() {
		sp := st.Start("sched.pass")
		sp.Attr("k", "v")
		sp.FinishWith(0.25)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v bytes/op, want 0", allocs)
	}
}

func TestTreeNesting(t *testing.T) {
	p := New(Options{Tree: true})
	st := p.NewStack("")

	a := st.Start("a")
	b := st.Start("b")
	b.Finish()
	c := st.Start("c")
	c.Finish()
	a.Finish()
	r2 := st.Start("r2")
	r2.Finish()

	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if roots[0].Name != "a" || roots[1].Name != "r2" {
		t.Fatalf("roots = %q, %q; want a, r2", roots[0].Name, roots[1].Name)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root a has %d children, want 2", len(roots[0].Children))
	}
	if roots[0].Children[0].Name != "b" || roots[0].Children[1].Name != "c" {
		t.Fatalf("children = %q, %q; want b, c", roots[0].Children[0].Name, roots[0].Children[1].Name)
	}
	for _, child := range roots[0].Children {
		if child.ParentID != roots[0].ID {
			t.Errorf("child %q ParentID = %d, want %d", child.Name, child.ParentID, roots[0].ID)
		}
	}
	ids := map[int64]string{}
	for _, sp := range []*Span{a, b, c, r2} {
		if sp.ID == 0 {
			t.Errorf("span %q has id 0", sp.Name)
		}
		if prev, dup := ids[sp.ID]; dup {
			t.Errorf("spans %q and %q share id %d", prev, sp.Name, sp.ID)
		}
		ids[sp.ID] = sp.Name
	}
	if a.ParentID != 0 || r2.ParentID != 0 {
		t.Errorf("root ParentIDs = %d, %d; want 0, 0", a.ParentID, r2.ParentID)
	}
}

func TestFinishWithAndDoubleFinish(t *testing.T) {
	p := New(Options{Tree: true})
	st := p.NewStack("")

	sp := st.Start("x")
	if d := sp.FinishWith(0.5); d != 0.5 {
		t.Fatalf("FinishWith(0.5) = %v, want 0.5", d)
	}
	if sp.Dur != 0.5 {
		t.Fatalf("Dur = %v, want 0.5", sp.Dur)
	}
	// A second finish must be a no-op: Dur keeps the first measurement and
	// no second root is retained.
	if d := sp.Finish(); d != 0 {
		t.Fatalf("second Finish = %v, want 0", d)
	}
	if sp.Dur != 0.5 {
		t.Fatalf("Dur after double finish = %v, want 0.5", sp.Dur)
	}
	if n := len(p.Roots()); n != 1 {
		t.Fatalf("%d roots after double finish, want 1", n)
	}

	neg := st.Start("y")
	if d := neg.FinishWith(-1); d != 0 {
		t.Fatalf("FinishWith(-1) = %v, want clamp to 0", d)
	}
}

func TestSelf(t *testing.T) {
	p := New(Options{Tree: true})
	st := p.NewStack("")
	a := st.Start("a")
	st.Start("b").FinishWith(0.3)
	st.Start("c").FinishWith(0.2)
	a.FinishWith(1.0)
	if got := a.Self(); got < 0.5-1e-12 || got > 0.5+1e-12 {
		t.Fatalf("Self = %v, want 0.5", got)
	}
	// Children exceeding the parent's own measurement clamp at zero rather
	// than going negative.
	d := st.Start("d")
	st.Start("e").FinishWith(2)
	d.FinishWith(1)
	if got := d.Self(); got != 0 {
		t.Fatalf("over-subscribed Self = %v, want 0", got)
	}
}

func TestRegistryAggregation(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Options{Registry: reg})

	st := p.NewStack("")
	st.Start("intra").FinishWith(0.25)
	st.Start("intra").FinishWith(0.75)

	scoped := p.NewStack("tms")
	scoped.Start("sinkhorn").FinishWith(0.5)

	h := reg.Histogram("span.intra")
	if h.Count() != 2 || h.Sum() != 1.0 {
		t.Fatalf("span.intra count=%d sum=%v, want 2, 1.0", h.Count(), h.Sum())
	}
	if h.Max() != 0.75 {
		t.Fatalf("span.intra max=%v, want 0.75", h.Max())
	}
	sh := reg.Histogram("tms.span.sinkhorn")
	if sh.Count() != 1 || sh.Sum() != 0.5 {
		t.Fatalf("tms.span.sinkhorn count=%d sum=%v, want 1, 0.5", sh.Count(), sh.Sum())
	}
}

func TestSinkEmission(t *testing.T) {
	var sink obs.SliceSink
	p := New(Options{Sink: &sink})
	st := p.NewStack("sunflow")

	parent := st.Start("sched.pass")
	child := st.Start("intra").Attr("planner", "fast")
	child.FinishWith(0.1)
	parent.FinishWith(0.4)

	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Children finish — and therefore emit — before their parents.
	if evs[0].Name != "intra" || evs[1].Name != "sched.pass" {
		t.Fatalf("emission order = %q, %q; want intra, sched.pass", evs[0].Name, evs[1].Name)
	}
	ce, pe := evs[0], evs[1]
	if ce.Kind != obs.KindSpan || pe.Kind != obs.KindSpan {
		t.Fatalf("kinds = %q, %q; want span", ce.Kind, pe.Kind)
	}
	if ce.Scope != "sunflow" || pe.Scope != "sunflow" {
		t.Fatalf("scopes = %q, %q; want sunflow", ce.Scope, pe.Scope)
	}
	if ce.T != 0 || ce.Coflow != -1 || ce.Src != -1 || ce.Dst != -1 {
		t.Fatalf("span event carries simulated-time fields: %+v", ce)
	}
	if ce.Parent != pe.Span || pe.Parent != 0 {
		t.Fatalf("parent links: child.Parent=%d parent.Span=%d parent.Parent=%d", ce.Parent, pe.Span, pe.Parent)
	}
	if ce.Span == 0 || pe.Span == 0 || ce.Span == pe.Span {
		t.Fatalf("span ids: child=%d parent=%d", ce.Span, pe.Span)
	}
	if ce.Dur != 0.1 || pe.Dur != 0.4 {
		t.Fatalf("durations: child=%v parent=%v", ce.Dur, pe.Dur)
	}
	if ce.Attrs["planner"] != "fast" {
		t.Fatalf("child attrs = %v, want planner=fast", ce.Attrs)
	}
	if ce.Wall < 0 || pe.Wall < 0 || ce.Wall < pe.Wall {
		t.Fatalf("wall offsets: child=%v parent=%v (child must start at or after parent)", ce.Wall, pe.Wall)
	}
}

// A forgotten Finish on a child must not corrupt later parentage: finishing
// the parent pops the stack past the open child, and the next Start is a
// fresh root.
func TestStackRecoversFromForgottenFinish(t *testing.T) {
	p := New(Options{Tree: true})
	st := p.NewStack("")

	a := st.Start("a")
	st.Start("leaked") // never finished
	a.Finish()
	b := st.Start("b")
	b.Finish()

	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (a and b)", len(roots))
	}
	if b.ParentID != 0 {
		t.Fatalf("b.ParentID = %d, want 0 (stack should have recovered)", b.ParentID)
	}
}

func TestWallMonotoneAgainstEpoch(t *testing.T) {
	p := New(Options{Tree: true})
	st := p.NewStack("")
	sp := st.Start("x")
	time.Sleep(time.Millisecond)
	sp.Finish()
	if sp.Wall < 0 {
		t.Fatalf("Wall = %v, want >= 0 (offsets are measured from the epoch)", sp.Wall)
	}
	if sp.Dur <= 0 {
		t.Fatalf("Dur = %v, want > 0 after a sleep", sp.Dur)
	}
}

// Many Stacks may record into one Profiler concurrently: ids stay unique,
// every span reaches the registry and the sink, and -race stays quiet.
func TestConcurrentStacks(t *testing.T) {
	reg := obs.NewRegistry()
	var sink obs.SliceSink
	p := New(Options{Registry: reg, Sink: &sink, Tree: true})

	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := p.NewStack(fmt.Sprintf("w%d", w))
			for i := 0; i < per; i++ {
				root := st.Start("job")
				st.Start("phase").FinishWith(0.001)
				root.FinishWith(0.002)
			}
		}(w)
	}
	wg.Wait()

	want := workers * per * 2
	if got := sink.Count(obs.KindSpan); got != want {
		t.Fatalf("sink saw %d span events, want %d", got, want)
	}
	if got := len(p.Roots()); got != workers*per {
		t.Fatalf("%d roots, want %d", got, workers*per)
	}
	seen := map[int64]bool{}
	for _, ev := range sink.Events() {
		if seen[ev.Span] {
			t.Fatalf("duplicate span id %d across concurrent stacks", ev.Span)
		}
		seen[ev.Span] = true
	}
	for w := 0; w < workers; w++ {
		h := reg.Histogram(fmt.Sprintf("w%d.span.job", w))
		if h.Count() != per {
			t.Fatalf("w%d.span.job count = %d, want %d", w, h.Count(), per)
		}
	}
}

func TestSamplerPublishesRuntimeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := &Sampler{MinInterval: time.Nanosecond}
	s.Sample(reg)
	if v := reg.Gauge(NameHeapBytes).Load(); v <= 0 {
		t.Fatalf("%s = %d, want > 0", NameHeapBytes, v)
	}
	if v := reg.Gauge(NameGoroutines).Load(); v <= 0 {
		t.Fatalf("%s = %d, want > 0", NameGoroutines, v)
	}
	// Nil receivers and registries are no-ops.
	var nilS *Sampler
	nilS.Sample(reg)
	s.Sample(nil)
}

func TestSamplerThrottle(t *testing.T) {
	reg := obs.NewRegistry()
	s := &Sampler{MinInterval: time.Hour}
	s.Sample(reg)
	first := reg.Gauge(NameGoroutines).Load()
	if first <= 0 {
		t.Fatalf("first sample did not publish")
	}
	// Inside the window the read is skipped entirely, so even a changed
	// runtime state leaves the gauges untouched.
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() { <-done }()
	}
	s.Sample(reg)
	if got := reg.Gauge(NameGoroutines).Load(); got != first {
		t.Fatalf("throttled sample updated goroutines: %d -> %d", first, got)
	}
	close(done)
}

// The profiler samples the runtime at root-span boundaries only.
func TestSamplerTriggersAtRootFinish(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Options{Registry: reg, Runtime: &Sampler{MinInterval: time.Nanosecond}})
	st := p.NewStack("")
	root := st.Start("job")
	st.Start("child").Finish()
	if v := reg.Gauge(NameGoroutines).Load(); v != 0 {
		t.Fatalf("child finish sampled the runtime (goroutines=%d), want root-only", v)
	}
	root.Finish()
	if v := reg.Gauge(NameGoroutines).Load(); v <= 0 {
		t.Fatalf("root finish did not sample the runtime")
	}
}
