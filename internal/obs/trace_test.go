package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJSONLSinkWritesOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := NewWith(NewRegistry(), sink)
	o.Emit(Event{T: 0, Kind: KindCoflowAdmit, Coflow: 7, Src: -1, Dst: -1})
	o.Scoped("sunflow").Emit(Event{T: 0.5, Kind: KindCircuitUp, Coflow: 7, Src: 2, Dst: 3, Bytes: 1e6, Dur: 0.01})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first, second Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if first.Kind != KindCoflowAdmit || first.Coflow != 7 || first.Src != -1 {
		t.Errorf("first = %+v", first)
	}
	if second.Kind != KindCircuitUp || second.Scope != "sunflow" || second.Dur != 0.01 {
		t.Errorf("second = %+v", second)
	}
}

func TestJSONLSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sink.Emit(Event{T: float64(i), Kind: KindFlowFinish, Coflow: i, Src: -1, Dst: -1})
			}
		}()
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("interleaved write produced invalid JSON: %v in %q", err, ln)
		}
	}
}

func TestSliceSinkCount(t *testing.T) {
	s := &SliceSink{}
	o := NewWith(NewRegistry(), s)
	if !o.TraceEnabled() {
		t.Fatal("observer with sink must report tracing enabled")
	}
	o.Emit(Event{Kind: KindCircuitUp})
	o.Emit(Event{Kind: KindCircuitUp})
	o.Emit(Event{Kind: KindCircuitDown})
	if s.Count(KindCircuitUp) != 2 || s.Count(KindCircuitDown) != 1 || s.Count(KindWindowOpen) != 0 {
		t.Errorf("counts wrong: %+v", s.Events())
	}
}

func TestFormatSummariesSkipsEmptyScopes(t *testing.T) {
	o := New()
	o.Scoped("sunflow").CircuitSetups.Add(4)
	o.Scoped("sunflow").SetupSeconds.Add(0.04)
	o.Scoped("sunflow").HoldSeconds.Add(0.4)
	o.Scoped("idle") // never touched
	out := FormatSummaries(o)
	if !strings.Contains(out, "sunflow") {
		t.Errorf("missing sunflow scope:\n%s", out)
	}
	if strings.Contains(out, "idle") {
		t.Errorf("empty scope should be skipped:\n%s", out)
	}
	if FormatSummaries(nil) != "" {
		t.Error("nil observer must format to empty string")
	}
}
