package bench

import (
	"sunflow/internal/obs"
)

// CIMetrics is the observability fingerprint CI attaches to its benchmark
// artifact: per-scheduler summaries from one fixed-seed small-configuration
// run of both simulators. The counter fields (circuit setups, reservations,
// coflows completed, byte totals) are deterministic in the seed, so two runs
// of the same code produce identical counts; the wall-time fields are
// informational only.
type CIMetrics struct {
	Config Config                 `json:"config"`
	Scopes map[string]obs.Summary `json:"scopes"`
}

// CIConfig is the fixed small configuration CI measures: big enough to
// exercise every scheduler, small enough to finish in seconds. Workers is
// pinned to 1 so pass counts never depend on the runner's core count.
func CIConfig() Config {
	return Config{Seed: 1, Ports: 24, Coflows: 40, MaxWidth: 8, Workers: 1}
}

// CollectCIMetrics replays the CI configuration through the inter-Coflow
// simulators (Sunflow on circuits, Varys and Aalo on packets) and the
// serialized intra-Coflow replay (Sunflow and Solstice) under one fresh
// observer, returning every scope's summary.
func CollectCIMetrics() (CIMetrics, error) {
	cfg := CIConfig()
	cfg.Obs = obs.New()
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	if _, err := runInter(cfg, cs, cfg.LinkBps); err != nil {
		return CIMetrics{}, err
	}
	if _, err := runIntra(cfg, cs, cfg.LinkBps, cfg.Delta, true); err != nil {
		return CIMetrics{}, err
	}

	out := CIMetrics{Config: cfg, Scopes: map[string]obs.Summary{}}
	for _, name := range cfg.Obs.ScopeNames() {
		out.Scopes[name] = cfg.Obs.Scoped(name).Summary()
	}
	return out, nil
}
