// Package bench is the experiment harness: one runner per table and figure
// of the Sunflow paper's evaluation (§5), producing the same rows and series
// the paper reports. Runners are deterministic in Config.Seed and scale down
// gracefully (fewer Coflows, narrower shuffles) for quick runs and Go
// benchmarks.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"sunflow/internal/coflow"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
	"sunflow/internal/trace"
	"sunflow/internal/workload"
)

// Gbps is one gigabit per second.
const Gbps = 1e9

// Config scopes an experiment run.
type Config struct {
	// Seed drives trace generation and perturbation.
	Seed int64
	// Ports is the fabric size. Zero selects the paper's 150.
	Ports int
	// Coflows is the workload size. Zero selects the paper's 526.
	Coflows int
	// MaxWidth caps shuffle fan-in/out in the generated trace. Zero selects
	// the generator default.
	MaxWidth int
	// Dist selects the workload distribution (trace.DistFacebook,
	// trace.DistGoogle, trace.DistIncast). Empty selects the Facebook
	// profile.
	Dist string
	// LinkBps is the default link bandwidth. Zero selects 1 Gbps (the
	// trace's original setting).
	LinkBps float64
	// Delta is the default reconfiguration delay. Zero selects 10 ms
	// (typical 3D-MEMS).
	Delta float64
	// Workers bounds experiment parallelism. Zero selects GOMAXPROCS;
	// negative values are clamped to 1 (serial).
	Workers int
	// Obs optionally observes the runs. Runners thread per-scheduler scopes
	// ("sunflow", "varys", "aalo", "solstice", "tms", "edmond") through the
	// simulators so one observer separates the schedulers' counters. Nil
	// disables instrumentation.
	Obs *obs.Observer `json:"-"`
	// Prof optionally records profiling spans. Runners create one span.Stack
	// per scheduler run (stacks are single-goroutine) scoped like Obs, so
	// span aggregates land beside the matching counters. Nil disables span
	// recording.
	Prof *span.Profiler `json:"-"`
}

// WithDefaults fills unset fields with the paper's settings.
func (c Config) WithDefaults() Config {
	if c.Ports == 0 {
		c.Ports = 150
	}
	if c.Coflows == 0 {
		c.Coflows = 526
	}
	if c.LinkBps == 0 {
		c.LinkBps = Gbps
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 0 {
		c.Workers = 1
	}
	return c
}

// Workload generates the evaluation workload: the Facebook-like trace with
// the ±5% size perturbation and 1 MB floor of §5.1 applied.
func (c Config) Workload() []*coflow.Coflow {
	c = c.WithDefaults()
	tr := trace.Generator{
		Ports:    c.Ports,
		Coflows:  c.Coflows,
		MaxWidth: c.MaxWidth,
		Seed:     c.Seed,
		Dist:     c.Dist,
	}.Trace()
	return workload.Perturb(tr.Coflows, 0.05, workload.DefaultFloorBytes, c.Seed+1)
}

// compact remaps a Coflow's ports onto dense index ranges, returning the
// remapped Coflow and the fabric size needed to carry it. Input and output
// sides of an optical switch port are independent (§2.1), so senders and
// receivers are remapped separately and the fabric only needs
// max(#senders, #receivers) ports. Intra-Coflow experiments run each Coflow
// alone, so dropping unused ports changes nothing but shrinks the matrices
// the decomposition baselines work on.
func compact(c *coflow.Coflow) (*coflow.Coflow, int) {
	src := map[int]int{}
	for i, p := range c.Senders() {
		src[p] = i
	}
	dst := map[int]int{}
	for i, p := range c.Receivers() {
		dst[p] = i
	}
	flows := make([]coflow.Flow, 0, len(c.Flows))
	for _, f := range c.Flows {
		if f.Bytes <= 0 {
			continue
		}
		flows = append(flows, coflow.Flow{Src: src[f.Src], Dst: dst[f.Dst], Bytes: f.Bytes})
	}
	n := len(src)
	if len(dst) > n {
		n = len(dst)
	}
	if n == 0 {
		n = 1
	}
	return coflow.New(c.ID, c.Arrival, flows), n
}

// ParallelEach runs fn over [0, n) on Config.Workers goroutines. It is the
// worker pool every sweep in this package runs on, exported so the
// experiment-matrix engine (internal/matrix) can execute its cells on the
// same pool.
func (c Config) ParallelEach(n int, fn func(i int)) {
	c.parallelEach(n, fn)
}

// Compact is the exported form of compact, for harnesses (internal/matrix)
// that replay single Coflows through the decomposition baselines.
func Compact(c *coflow.Coflow) (*coflow.Coflow, int) {
	return compact(c)
}

// parallelEach runs fn over [0, n) on Config.Workers goroutines.
func (c Config) parallelEach(n int, fn func(i int)) {
	c = c.WithDefaults()
	workers := c.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// parallelEachErr runs fn over [0, n) on Config.Workers goroutines and
// returns the error of the lowest index that failed, so the reported error
// is deterministic regardless of goroutine interleaving. All indices run
// even after a failure (runs are cheap and side-effect free).
func (c Config) parallelEachErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	c.parallelEach(n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// table renders rows of columns with aligned widths.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	all := append([][]string{header}, rows...)
	for _, row := range all {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for r, row := range all {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s", width[i]+2, cell)
		}
		sb.WriteString("\n")
		if r == 0 {
			for i := range header {
				sb.WriteString(strings.Repeat("-", width[i]) + "  ")
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// sortedIDs returns map keys in ascending order.
func sortedIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
