package bench

import (
	"fmt"
	"math"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/edmond"
	"sunflow/internal/fabric"
	"sunflow/internal/solstice"
	"sunflow/internal/stats"
	"sunflow/internal/tms"
	"sunflow/internal/workload"
)

// intraSample is one Coflow's outcome in a serialized intra-Coflow replay
// (§5.1: one Coflow in the fabric at a time, arrivals ignored).
type intraSample struct {
	Class     coflow.Class
	Flows     int
	PAvg      float64 // average processing time pavg (§5.3.2)
	TpL, TcL  float64
	SunCCT    float64
	SunSwitch int
	SolCCT    float64
	SolSwitch int
}

// runIntra replays every Coflow alone through Sunflow and (optionally)
// Solstice at the given bandwidth and delta.
func runIntra(cfg Config, cs []*coflow.Coflow, linkBps, delta float64, withSolstice bool) ([]intraSample, error) {
	cfg = cfg.WithDefaults()
	// The obs metrics are atomic, so the scoped observers are shared safely
	// by the parallel workers.
	sunObs := cfg.Obs.Scoped("sunflow")
	solObs := cfg.Obs.Scoped("solstice")
	out := make([]intraSample, len(cs))
	err := cfg.parallelEachErr(len(cs), func(i int) error {
		c, n := compact(cs[i])
		s := intraSample{
			Class: c.Classify(),
			Flows: c.NumFlows(),
			PAvg:  c.AvgProcTime(linkBps),
			TpL:   c.PacketLowerBound(linkBps),
			TcL:   c.CircuitLowerBound(linkBps, delta),
		}
		// Stacks are single-goroutine, so each parallel worker iteration
		// records through fresh ones (nil Prof makes them free no-ops).
		sched, err := core.IntraCoflow(core.NewPRT(n), c, core.Options{LinkBps: linkBps, Delta: delta, Obs: sunObs, Prof: cfg.Prof.NewStack("sunflow")})
		if err != nil {
			return fmt.Errorf("bench: sunflow on coflow %d: %w", c.ID, err)
		}
		s.SunCCT = sched.Finish
		s.SunSwitch = sched.SwitchingCount()
		if withSolstice {
			res, _, err := solstice.Run(c, n, solstice.Options{LinkBps: linkBps, Delta: delta, Obs: solObs, Prof: cfg.Prof.NewStack("solstice")}, fabric.NotAllStop)
			if err != nil {
				return fmt.Errorf("bench: solstice on coflow %d: %w", c.ID, err)
			}
			s.SolCCT = res.Finish
			s.SolSwitch = res.SwitchCount
		}
		out[i] = s
		return nil
	})
	return out, err
}

// Fig3Row is one bandwidth setting of Figure 3: the distribution of CCT/TcL
// for Sunflow and Solstice.
type Fig3Row struct {
	LinkBps                   float64
	SunAvg, SunP95, SunMax    float64
	SolAvg, SolP95, SolMax    float64
	SunWithinFactor2, Coflows int
	SolsticeSlowerThanSunflow int
}

// Fig3 reproduces Figure 3: intra-Coflow CCT against the circuit lower
// bound TcL for B ∈ {1, 10, 100} Gbps at δ = 10 ms, for Sunflow and
// Solstice.
func Fig3(cfg Config) ([]Fig3Row, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	var rows []Fig3Row
	for _, b := range []float64{Gbps, 10 * Gbps, 100 * Gbps} {
		samples, err := runIntra(cfg, cs, b, cfg.Delta, true)
		if err != nil {
			return rows, fmt.Errorf("bench: fig3 at B=%.0f: %w", b, err)
		}
		var sun, sol []float64
		row := Fig3Row{LinkBps: b, Coflows: len(samples)}
		for _, s := range samples {
			if s.TcL <= 0 {
				continue
			}
			rs, rl := s.SunCCT/s.TcL, s.SolCCT/s.TcL
			sun = append(sun, rs)
			sol = append(sol, rl)
			if rs < 2 {
				row.SunWithinFactor2++
			}
			if s.SolCCT > s.SunCCT+1e-9 {
				row.SolsticeSlowerThanSunflow++
			}
		}
		row.SunAvg, row.SunP95, row.SunMax = stats.Mean(sun), stats.Percentile(sun, 95), stats.Max(sun)
		row.SolAvg, row.SolP95, row.SolMax = stats.Mean(sol), stats.Percentile(sol, 95), stats.Max(sol)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig3 renders Figure 3 rows.
func FormatFig3(rows []Fig3Row) string {
	header := []string{"B", "Sunflow avg", "p95", "max", "Solstice avg", "p95", "max", "Sun<2x"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.0f Gbps", r.LinkBps/Gbps),
			fmt.Sprintf("%.2f", r.SunAvg), fmt.Sprintf("%.2f", r.SunP95), fmt.Sprintf("%.2f", r.SunMax),
			fmt.Sprintf("%.2f", r.SolAvg), fmt.Sprintf("%.2f", r.SolP95), fmt.Sprintf("%.2f", r.SolMax),
			fmt.Sprintf("%d/%d", r.SunWithinFactor2, r.Coflows),
		})
	}
	return "Figure 3 — intra-Coflow CCT / TcL (δ = 10 ms)\n" + table(header, out)
}

// Fig4Result summarizes Figure 4: CCT over both lower bounds for
// many-to-many Coflows.
type Fig4Result struct {
	M2MCoflows     int
	SunTcLAvg      float64
	SunTcLP95      float64
	SunTpLAvg      float64
	SunTpLP95      float64
	SolTcLAvg      float64
	SolTcLP95      float64
	SunUnderTcL2   float64 // fraction with CCT/TcL < 2
	SunUnderTpL4p5 float64 // fraction with CCT/TpL < 4.5
	SunTcLCDF      []stats.CDFPoint
	SolTcLCDF      []stats.CDFPoint
}

// Fig4 reproduces Figure 4: the distribution of CCT/TcL and CCT/TpL on
// many-to-many Coflows for Sunflow and Solstice at B = 1 Gbps, δ = 10 ms.
func Fig4(cfg Config) (Fig4Result, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	samples, err := runIntra(cfg, cs, cfg.LinkBps, cfg.Delta, true)
	if err != nil {
		return Fig4Result{}, fmt.Errorf("bench: fig4: %w", err)
	}
	var sunTcL, sunTpL, solTcL []float64
	for _, s := range samples {
		if s.Class != coflow.ManyToMany || s.TcL <= 0 || s.TpL <= 0 {
			continue
		}
		sunTcL = append(sunTcL, s.SunCCT/s.TcL)
		sunTpL = append(sunTpL, s.SunCCT/s.TpL)
		solTcL = append(solTcL, s.SolCCT/s.TcL)
	}
	return Fig4Result{
		M2MCoflows:     len(sunTcL),
		SunTcLAvg:      stats.Mean(sunTcL),
		SunTcLP95:      stats.Percentile(sunTcL, 95),
		SunTpLAvg:      stats.Mean(sunTpL),
		SunTpLP95:      stats.Percentile(sunTpL, 95),
		SolTcLAvg:      stats.Mean(solTcL),
		SolTcLP95:      stats.Percentile(solTcL, 95),
		SunUnderTcL2:   stats.FractionBelow(sunTcL, 2),
		SunUnderTpL4p5: stats.FractionBelow(sunTpL, 4.5),
		SunTcLCDF:      stats.CDF(sunTcL),
		SolTcLCDF:      stats.CDF(solTcL),
	}, nil
}

// Format renders the Figure 4 summary.
func (r Fig4Result) Format() string {
	return fmt.Sprintf(`Figure 4 — many-to-many Coflows (%d), B = 1 Gbps, δ = 10 ms
  Sunflow  CCT/TcL: avg %.2f  p95 %.2f   (fraction < 2:   %.3f)
  Sunflow  CCT/TpL: avg %.2f  p95 %.2f   (fraction < 4.5: %.3f)
  Solstice CCT/TcL: avg %.2f  p95 %.2f
`, r.M2MCoflows, r.SunTcLAvg, r.SunTcLP95, r.SunUnderTcL2,
		r.SunTpLAvg, r.SunTpLP95, r.SunUnderTpL4p5,
		r.SolTcLAvg, r.SolTcLP95)
}

// Fig5Result summarizes Figure 5: circuit switching counts normalized by
// the minimum necessary count (the number of subflows).
type Fig5Result struct {
	M2MCoflows       int
	SunAvg, SunMax   float64
	SolAvg, SolP95   float64
	SolMax           float64
	SolFlowsCorr     float64 // Pearson corr of Solstice normalized count vs |C|
	SunAlwaysMinimal bool
}

// Fig5 reproduces Figure 5: switching counts over the per-Coflow minimum
// for many-to-many Coflows.
func Fig5(cfg Config) (Fig5Result, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	samples, err := runIntra(cfg, cs, cfg.LinkBps, cfg.Delta, true)
	if err != nil {
		return Fig5Result{}, fmt.Errorf("bench: fig5: %w", err)
	}
	var sun, sol, flows []float64
	minimal := true
	for _, s := range samples {
		if s.Class != coflow.ManyToMany || s.Flows == 0 {
			continue
		}
		ns := float64(s.SunSwitch) / float64(s.Flows)
		nl := float64(s.SolSwitch) / float64(s.Flows)
		sun = append(sun, ns)
		sol = append(sol, nl)
		flows = append(flows, float64(s.Flows))
		if s.SunSwitch != s.Flows {
			minimal = false
		}
	}
	return Fig5Result{
		M2MCoflows:       len(sun),
		SunAvg:           stats.Mean(sun),
		SunMax:           stats.Max(sun),
		SolAvg:           stats.Mean(sol),
		SolP95:           stats.Percentile(sol, 95),
		SolMax:           stats.Max(sol),
		SolFlowsCorr:     stats.Pearson(sol, flows),
		SunAlwaysMinimal: minimal,
	}, nil
}

// Format renders the Figure 5 summary.
func (r Fig5Result) Format() string {
	return fmt.Sprintf(`Figure 5 — switching count / minimum (M2M Coflows, %d)
  Sunflow:  avg %.2f  max %.2f  (always minimal: %v)
  Solstice: avg %.2f  p95 %.2f  max %.2f
  corr(Solstice normalized count, |C|) = %.2f
`, r.M2MCoflows, r.SunAvg, r.SunMax, r.SunAlwaysMinimal,
		r.SolAvg, r.SolP95, r.SolMax, r.SolFlowsCorr)
}

// DeltaSweepRow is one δ setting of Figures 6 and 10: per-Coflow CCT
// normalized to the δ = 10 ms baseline.
type DeltaSweepRow struct {
	Delta   float64
	Avg     float64
	P95     float64
	Coflows int
}

// Fig6 reproduces Figure 6: intra-Coflow sensitivity to δ over
// {100 ms, 10 ms, 1 ms, 100 µs, 10 µs} at B = 1 Gbps, normalized per Coflow
// to its CCT at δ = 10 ms.
func Fig6(cfg Config) ([]DeltaSweepRow, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	deltas := []float64{0.1, 0.01, 0.001, 0.0001, 0.00001}
	base, err := runIntra(cfg, cs, cfg.LinkBps, 0.01, false)
	if err != nil {
		return nil, fmt.Errorf("bench: fig6 baseline: %w", err)
	}
	var rows []DeltaSweepRow
	for _, d := range deltas {
		var samples []intraSample
		if d == 0.01 {
			samples = base
		} else {
			samples, err = runIntra(cfg, cs, cfg.LinkBps, d, false)
			if err != nil {
				return rows, fmt.Errorf("bench: fig6 at δ=%g: %w", d, err)
			}
		}
		var norm []float64
		for i, s := range samples {
			if base[i].SunCCT > 0 {
				norm = append(norm, s.SunCCT/base[i].SunCCT)
			}
		}
		rows = append(rows, DeltaSweepRow{
			Delta: d, Avg: stats.Mean(norm), P95: stats.Percentile(norm, 95), Coflows: len(norm),
		})
	}
	return rows, nil
}

// FormatDeltaSweep renders a δ sweep (Figures 6 and 10).
func FormatDeltaSweep(title string, rows []DeltaSweepRow) string {
	header := []string{"delta", "avg", "p95"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			formatDelta(r.Delta), fmt.Sprintf("%.2f", r.Avg), fmt.Sprintf("%.2f", r.P95),
		})
	}
	return title + " (CCT normalized to δ = 10 ms)\n" + table(header, out)
}

func formatDelta(d float64) string {
	switch {
	case d >= 1e-3:
		return fmt.Sprintf("%.0fms", d*1e3)
	default:
		return fmt.Sprintf("%.0fus", d*1e6)
	}
}

// Fig7Result summarizes Figure 7: Sunflow CCT against the packet-switched
// lower bound, split into long and short Coflows.
type Fig7Result struct {
	LongCoflows      int
	LongBytesShare   float64
	LongAvg, LongP95 float64
	AllAvg, AllP95   float64
	MaxRatio         float64
	TheoreticalCap   float64 // 2(1+α) with the trace's α
	RankCorrelation  float64 // Spearman(pavg, CCT/TpL)
}

// Fig7 reproduces Figure 7: Sunflow CCT/TpL at B = 1 Gbps, δ = 10 ms. A
// Coflow is long when its average processing time exceeds 40·δ (§5.3.2).
func Fig7(cfg Config) (Fig7Result, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	samples, err := runIntra(cfg, cs, cfg.LinkBps, cfg.Delta, false)
	if err != nil {
		return Fig7Result{}, fmt.Errorf("bench: fig7: %w", err)
	}
	var all, long, pavg []float64
	var longBytes, totalBytes float64
	for i, s := range samples {
		if s.TpL <= 0 {
			continue
		}
		ratio := s.SunCCT / s.TpL
		all = append(all, ratio)
		pavg = append(pavg, s.PAvg)
		totalBytes += cs[i].TotalBytes()
		if s.PAvg > 40*cfg.Delta {
			long = append(long, ratio)
			longBytes += cs[i].TotalBytes()
		}
	}
	// α for the trace: 1 MB floor at 1 Gbps with δ = 10 ms gives 1.25, so
	// the theoretical cap is 2(1+1.25) = 4.5.
	alpha := cfg.Delta / (workload.DefaultFloorBytes * 8 / cfg.LinkBps)
	return Fig7Result{
		LongCoflows:     len(long),
		LongBytesShare:  longBytes / totalBytes,
		LongAvg:         stats.Mean(long),
		LongP95:         stats.Percentile(long, 95),
		AllAvg:          stats.Mean(all),
		AllP95:          stats.Percentile(all, 95),
		MaxRatio:        stats.Max(all),
		TheoreticalCap:  2 * (1 + alpha),
		RankCorrelation: stats.Spearman(pavg, all),
	}, nil
}

// Format renders the Figure 7 summary.
func (r Fig7Result) Format() string {
	return fmt.Sprintf(`Figure 7 — Sunflow CCT / TpL (B = 1 Gbps, δ = 10 ms)
  long Coflows (pavg > 40δ): %d, %.1f%% of bytes — avg %.2f  p95 %.2f
  all Coflows:                          avg %.2f  p95 %.2f  max %.2f (cap %.2f)
  rank corr(pavg, CCT/TpL) = %.2f
`, r.LongCoflows, 100*r.LongBytesShare, r.LongAvg, r.LongP95,
		r.AllAvg, r.AllP95, r.MaxRatio, r.TheoreticalCap, r.RankCorrelation)
}

// Table4Row is one class of Table 4.
type Table4Row struct {
	Class     coflow.Class
	CoflowPct float64
	BytesPct  float64
}

// Table4 reproduces Table 4: Coflows classified by sender-to-receiver
// ratio, with their Coflow and byte shares.
func Table4(cfg Config) []Table4Row {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	count := map[coflow.Class]int{}
	bytes := map[coflow.Class]float64{}
	var total float64
	for _, c := range cs {
		cl := c.Classify()
		count[cl]++
		bytes[cl] += c.TotalBytes()
		total += c.TotalBytes()
	}
	var rows []Table4Row
	for _, cl := range coflow.Classes {
		rows = append(rows, Table4Row{
			Class:     cl,
			CoflowPct: 100 * float64(count[cl]) / float64(len(cs)),
			BytesPct:  100 * bytes[cl] / total,
		})
	}
	return rows
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	header := []string{"Category", "Coflow%", "Bytes%"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Class.String(), fmt.Sprintf("%.1f", r.CoflowPct), fmt.Sprintf("%.3f", r.BytesPct),
		})
	}
	return "Table 4 — Coflows by sender-to-receiver ratio\n" + table(header, out)
}

// OrderingRow compares one reservation ordering against OrderedPort.
type OrderingRow struct {
	Order    core.Order
	AvgRatio float64
	P95Ratio float64
}

// OrderingSensitivity reproduces the §5.3.1 ordering experiment: per-Coflow
// CCT of Random and SortedDemand normalized by OrderedPort.
func OrderingSensitivity(cfg Config) ([]OrderingRow, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	run := func(order core.Order) ([]float64, error) {
		out := make([]float64, len(cs))
		err := cfg.parallelEachErr(len(cs), func(i int) error {
			c, n := compact(cs[i])
			sched, err := core.IntraCoflow(core.NewPRT(n), c, core.Options{
				LinkBps: cfg.LinkBps, Delta: cfg.Delta, Order: order, Seed: cfg.Seed,
			})
			if err != nil {
				return fmt.Errorf("bench: ordering %v on coflow %d: %w", order, c.ID, err)
			}
			out[i] = sched.Finish
			return nil
		})
		return out, err
	}
	base, err := run(core.OrderedPort)
	if err != nil {
		return nil, err
	}
	var rows []OrderingRow
	for _, order := range []core.Order{core.RandomOrder, core.SortedDemand} {
		ccts, err := run(order)
		if err != nil {
			return rows, err
		}
		var ratios []float64
		for i := range ccts {
			if base[i] > 0 {
				ratios = append(ratios, ccts[i]/base[i])
			}
		}
		rows = append(rows, OrderingRow{
			Order:    order,
			AvgRatio: stats.Mean(ratios),
			P95Ratio: stats.Percentile(ratios, 95),
		})
	}
	return rows, nil
}

// FormatOrdering renders the ordering sensitivity rows.
func FormatOrdering(rows []OrderingRow) string {
	header := []string{"ordering", "avg CCT ratio", "p95 CCT ratio"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Order.String(), fmt.Sprintf("%.3f", r.AvgRatio), fmt.Sprintf("%.3f", r.P95Ratio)})
	}
	return "§5.3.1 — reservation ordering vs OrderedPort\n" + table(header, out)
}

// BaselinesResult reproduces the §5.2 comparison: how much faster Solstice
// services a Coflow than TMS and Edmond.
type BaselinesResult struct {
	Coflows       int
	TMSOverSol    float64 // avg per-Coflow CCT ratio TMS/Solstice
	EdmondOverSol float64
	SunOverSol    float64
}

// Baselines compares Solstice, TMS and Edmond (and Sunflow) on a bounded
// sample of the trace: Coflows whose packet lower bound is below maxTpL
// seconds, capped at maxCoflows, to keep the slow baselines tractable.
func Baselines(cfg Config, maxCoflows int, maxTpL float64) (BaselinesResult, error) {
	cfg = cfg.WithDefaults()
	if maxCoflows == 0 {
		maxCoflows = 60
	}
	if maxTpL == 0 {
		maxTpL = 10
	}
	var sample []*coflow.Coflow
	for _, c := range cfg.Workload() {
		if c.NumFlows() > 1 && c.PacketLowerBound(cfg.LinkBps) < maxTpL {
			sample = append(sample, c)
		}
		if len(sample) >= maxCoflows {
			break
		}
	}
	type res struct{ sun, sol, tm, ed float64 }
	results := make([]res, len(sample))
	sunObs := cfg.Obs.Scoped("sunflow")
	solObs := cfg.Obs.Scoped("solstice")
	tmsObs := cfg.Obs.Scoped("tms")
	edObs := cfg.Obs.Scoped("edmond")
	perr := cfg.parallelEachErr(len(sample), func(i int) error {
		c, n := compact(sample[i])
		sun, err := core.IntraCoflow(core.NewPRT(n), c, core.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Obs: sunObs, Prof: cfg.Prof.NewStack("sunflow")})
		if err != nil {
			return fmt.Errorf("bench: baselines sunflow on coflow %d: %w", c.ID, err)
		}
		sol, _, err := solstice.Run(c, n, solstice.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Obs: solObs, Prof: cfg.Prof.NewStack("solstice")}, fabric.NotAllStop)
		if err != nil {
			return fmt.Errorf("bench: baselines solstice on coflow %d: %w", c.ID, err)
		}
		// TMS and Edmond drive fabrics that stop all circuits during a
		// reconfiguration (Mordia's ring, Helios' shared MEMS stage), so
		// they execute under the all-stop model they were designed for
		// (§3.1.1); Edmond's externally fixed slot is "on the order of
		// hundreds of milliseconds".
		tm, err := tms.Run(c, n, tms.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Obs: tmsObs, Prof: cfg.Prof.NewStack("tms")}, fabric.AllStop)
		if err != nil {
			return fmt.Errorf("bench: baselines tms on coflow %d: %w", c.ID, err)
		}
		ed, err := edmond.Run(c, n, edmond.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Slot: 0.3, Obs: edObs, Prof: cfg.Prof.NewStack("edmond")}, fabric.AllStop)
		if err != nil {
			return fmt.Errorf("bench: baselines edmond on coflow %d: %w", c.ID, err)
		}
		results[i] = res{sun: sun.Finish, sol: sol.Finish, tm: tm.Finish, ed: ed.Finish}
		return nil
	})
	if perr != nil {
		return BaselinesResult{}, perr
	}
	var tmsR, edR, sunR []float64
	for _, r := range results {
		if r.sol > 0 {
			tmsR = append(tmsR, r.tm/r.sol)
			edR = append(edR, r.ed/r.sol)
			sunR = append(sunR, r.sun/r.sol)
		}
	}
	return BaselinesResult{
		Coflows:       len(sample),
		TMSOverSol:    stats.Mean(tmsR),
		EdmondOverSol: stats.Mean(edR),
		SunOverSol:    stats.Mean(sunR),
	}, nil
}

// Format renders the baselines comparison.
func (r BaselinesResult) Format() string {
	return fmt.Sprintf(`§5.2 — circuit baselines on %d sampled Coflows (per-Coflow CCT ratio over Solstice)
  TMS/Solstice:     %.2f   (paper: Solstice > 2x faster than TMS)
  Edmond/Solstice:  %.2f   (paper: Solstice > 6x faster than Edmond)
  Sunflow/Solstice: %.2f
`, r.Coflows, r.TMSOverSol, r.EdmondOverSol, r.SunOverSol)
}

// AllStopResult quantifies the ablation of §4.1: executing the same
// Solstice schedules under the all-stop model instead of not-all-stop.
type AllStopResult struct {
	Coflows  int
	AvgRatio float64 // all-stop CCT / not-all-stop CCT
	P95Ratio float64
}

// AllStopAblation runs Solstice under both switch models.
func AllStopAblation(cfg Config) (AllStopResult, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	ratios := make([]float64, len(cs))
	err := cfg.parallelEachErr(len(cs), func(i int) error {
		c, n := compact(cs[i])
		opts := solstice.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta}
		nas, _, err := solstice.Run(c, n, opts, fabric.NotAllStop)
		if err != nil {
			return fmt.Errorf("bench: ablation not-all-stop on coflow %d: %w", c.ID, err)
		}
		as, _, err := solstice.Run(c, n, opts, fabric.AllStop)
		if err != nil {
			return fmt.Errorf("bench: ablation all-stop on coflow %d: %w", c.ID, err)
		}
		if nas.Finish > 0 {
			ratios[i] = as.Finish / nas.Finish
		} else {
			ratios[i] = 1
		}
		return nil
	})
	if err != nil {
		return AllStopResult{}, err
	}
	return AllStopResult{
		Coflows:  len(ratios),
		AvgRatio: stats.Mean(ratios),
		P95Ratio: stats.Percentile(ratios, 95),
	}, nil
}

// Format renders the all-stop ablation.
func (r AllStopResult) Format() string {
	return fmt.Sprintf(`Ablation — Solstice under all-stop vs not-all-stop (%d Coflows)
  all-stop CCT / not-all-stop CCT: avg %.3f  p95 %.3f
`, r.Coflows, r.AvgRatio, r.P95Ratio)
}

// maxSwitchRatio reports the worst Sunflow switching count over the minimum
// across samples; tests use it to confirm optimal switching.
func maxSwitchRatio(samples []intraSample) float64 {
	m := 0.0
	for _, s := range samples {
		if s.Flows > 0 {
			m = math.Max(m, float64(s.SunSwitch)/float64(s.Flows))
		}
	}
	return m
}
