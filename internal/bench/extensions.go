package bench

import (
	"fmt"
	"math"
	"sunflow/internal/fabric"
	"time"

	"sunflow/internal/core"
	"sunflow/internal/hybrid"
	"sunflow/internal/stats"
	"sunflow/internal/workload"
)

// ApproximationRow is one quantum setting of the §6 approximation ablation:
// rounding subflow processing times up to a multiple of the quantum prunes
// circuit-release events at the cost of holding circuits longer.
type ApproximationRow struct {
	// Quantum is the rounding granularity in seconds (0 = exact).
	Quantum float64
	// AvgCCTRatio is the average per-Coflow CCT over the exact schedule's.
	AvgCCTRatio float64
	// P95CCTRatio is the 95th percentile of the same ratio.
	P95CCTRatio float64
	// SchedulingTime is the total wall-clock time spent scheduling.
	SchedulingTime time.Duration
}

// Approximation sweeps the scheduling quantum over {0, δ/2, δ, 5δ} on the
// serialized workload.
func Approximation(cfg Config) ([]ApproximationRow, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()

	run := func(q float64) ([]float64, time.Duration, error) {
		ccts := make([]float64, len(cs))
		start := time.Now()
		err := cfg.parallelEachErr(len(cs), func(i int) error {
			c, n := compact(cs[i])
			sched, err := core.IntraCoflow(core.NewPRT(n), c, core.Options{
				LinkBps: cfg.LinkBps, Delta: cfg.Delta, Quantum: q,
			})
			if err != nil {
				return fmt.Errorf("bench: approximation q=%g on coflow %d: %w", q, c.ID, err)
			}
			ccts[i] = sched.Finish
			return nil
		})
		return ccts, time.Since(start), err
	}

	base, baseTime, err := run(0)
	if err != nil {
		return nil, err
	}
	rows := []ApproximationRow{{Quantum: 0, AvgCCTRatio: 1, P95CCTRatio: 1, SchedulingTime: baseTime}}
	for _, q := range []float64{cfg.Delta / 2, cfg.Delta, 5 * cfg.Delta} {
		ccts, dur, err := run(q)
		if err != nil {
			return rows, err
		}
		var ratios []float64
		for i := range ccts {
			if base[i] > 0 {
				ratios = append(ratios, ccts[i]/base[i])
			}
		}
		rows = append(rows, ApproximationRow{
			Quantum:        q,
			AvgCCTRatio:    stats.Mean(ratios),
			P95CCTRatio:    stats.Percentile(ratios, 95),
			SchedulingTime: dur,
		})
	}
	return rows, nil
}

// FormatApproximation renders the quantum sweep.
func FormatApproximation(rows []ApproximationRow) string {
	header := []string{"quantum", "avg CCT ratio", "p95 CCT ratio", "sched time"}
	var out [][]string
	for _, r := range rows {
		q := "exact"
		if r.Quantum > 0 {
			q = formatDelta(r.Quantum)
		}
		out = append(out, []string{
			q,
			fmt.Sprintf("%.3f", r.AvgCCTRatio),
			fmt.Sprintf("%.3f", r.P95CCTRatio),
			r.SchedulingTime.Round(time.Millisecond).String(),
		})
	}
	return "§6 — demand-rounding approximation (intra-Coflow, serialized workload)\n" + table(header, out)
}

// HybridRow is one threshold setting of the hybrid fabric experiment.
type HybridRow struct {
	// ThresholdBytes routes smaller flows to the packet network.
	ThresholdBytes float64
	// PacketShare is the fraction of bytes on the packet path.
	PacketShare float64
	// AvgCCT is the combined average CCT.
	AvgCCT float64
	// AvgCCTRatio normalizes against the pure-circuit fabric.
	AvgCCTRatio float64
}

// Hybrid sweeps the small-flow threshold of a REACToR-style hybrid fabric:
// the circuit switch keeps its full bandwidth while a packet network with
// packetFraction of the per-port bandwidth absorbs flows below the
// threshold. The workload is scaled to the given idleness first.
func Hybrid(cfg Config, packetFraction, idleness float64) ([]HybridRow, error) {
	cfg = cfg.WithDefaults()
	if packetFraction == 0 {
		packetFraction = 0.1
	}
	if idleness == 0 {
		idleness = 0.4
	}
	base := cfg.Workload()
	_, cs, err := workload.ScaleToIdleness(base, cfg.LinkBps, idleness)
	if err != nil {
		return nil, err
	}

	var totalBytes float64
	for _, c := range cs {
		totalBytes += c.TotalBytes()
	}

	var rows []HybridRow
	var pureAvg float64
	for _, threshold := range []float64{0, 1e6, 10e6, 100e6, math.Inf(1)} {
		res, err := hybrid.Run(cs, hybrid.Options{
			Ports:          cfg.Ports,
			CircuitBps:     cfg.LinkBps,
			PacketBps:      cfg.LinkBps * packetFraction,
			Delta:          cfg.Delta,
			ThresholdBytes: threshold,
			PacketAlloc:    fabric.PacedFairSharing{},
		})
		if err != nil {
			return rows, err
		}
		row := HybridRow{
			ThresholdBytes: threshold,
			PacketShare:    res.PacketBytes / totalBytes,
			AvgCCT:         res.AverageCCT(),
		}
		if threshold == 0 {
			pureAvg = row.AvgCCT
		}
		if pureAvg > 0 {
			row.AvgCCTRatio = row.AvgCCT / pureAvg
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHybrid renders the hybrid sweep.
func FormatHybrid(rows []HybridRow) string {
	header := []string{"threshold", "packet bytes", "avg CCT", "vs pure circuit"}
	var out [][]string
	for _, r := range rows {
		th := "pure circuit"
		if math.IsInf(r.ThresholdBytes, 1) {
			th = "pure packet"
		} else if r.ThresholdBytes > 0 {
			th = fmt.Sprintf("< %.0f MB", r.ThresholdBytes/1e6)
		}
		out = append(out, []string{
			th,
			fmt.Sprintf("%.2f%%", r.PacketShare*100),
			fmt.Sprintf("%.3fs", r.AvgCCT),
			fmt.Sprintf("%.3f", r.AvgCCTRatio),
		})
	}
	return "Extension — REACToR-style hybrid fabric (packet path at 10% bandwidth)\n" + table(header, out)
}
