package bench

import (
	"fmt"
	"math/rand"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/matching"
	"sunflow/internal/solstice"
	"sunflow/internal/tms"
)

// Table3Row is one fabric size of the Table 3 scheduler-cost comparison.
// The paper states asymptotic complexities — Edmond O(N³), TMS O(N⁴·⁵),
// Solstice O(N³log²N), Sunflow O(|C|²) — and this experiment measures the
// wall-clock scheduling (not execution) time of each on a dense Coflow that
// covers all N² circuits, so |C| = N².
type Table3Row struct {
	Ports    int
	Flows    int
	Sunflow  time.Duration
	Solstice time.Duration
	TMS      time.Duration
	Edmond   time.Duration // one maximum-weight matching, the per-slot cost
}

// Table3 measures scheduling cost on dense Coflows over growing fabrics.
func Table3(cfg Config, sizes []int) ([]Table3Row, error) {
	cfg = cfg.WithDefaults()
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []Table3Row
	for _, n := range sizes {
		var flows []coflow.Flow
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(64)) * 1e6})
			}
		}
		c := coflow.New(n, 0, flows)
		row := Table3Row{Ports: n, Flows: n * n}

		var err error
		row.Sunflow = timeIt(func() error {
			_, e := core.IntraCoflow(core.NewPRT(n), c, core.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta})
			return e
		}, &err)
		if err != nil {
			return rows, fmt.Errorf("bench: table3 sunflow on N=%d: %w", n, err)
		}
		row.Solstice = timeIt(func() error {
			_, _, e := solstice.Schedule(c, n, solstice.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta})
			return e
		}, &err)
		if err != nil {
			return rows, fmt.Errorf("bench: table3 solstice on N=%d: %w", n, err)
		}
		row.TMS = timeIt(func() error {
			_, e := tms.Schedule(c.DemandMatrix(n), tms.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta})
			return e
		}, &err)
		if err != nil {
			return rows, fmt.Errorf("bench: table3 tms on N=%d: %w", n, err)
		}
		row.Edmond = timeIt(func() error {
			matching.MaxWeightMatching(c.DemandMatrix(n))
			return nil
		}, &err)
		rows = append(rows, row)
	}
	return rows, nil
}

// timeIt returns fn's wall-clock duration, storing its error through errp.
func timeIt(fn func() error, errp *error) time.Duration {
	start := time.Now()
	*errp = fn()
	return time.Since(start)
}

// FormatTable3 renders the scheduler cost comparison.
func FormatTable3(rows []Table3Row) string {
	header := []string{"N", "|C|", "Sunflow", "Solstice", "TMS", "Edmond/slot"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Ports),
			fmt.Sprintf("%d", r.Flows),
			r.Sunflow.Round(time.Microsecond).String(),
			r.Solstice.Round(time.Microsecond).String(),
			r.TMS.Round(time.Microsecond).String(),
			r.Edmond.Round(time.Microsecond).String(),
		})
	}
	return "Table 3 — scheduling cost on dense Coflows (|C| = N²)\n" + table(header, out) +
		"paper complexities: Edmond O(N³), TMS O(N⁴·⁵), Solstice O(N³log²N), Sunflow O(|C|²)\n"
}
