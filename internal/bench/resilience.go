package bench

import (
	"fmt"

	"sunflow/internal/aalo"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/hybrid"
	"sunflow/internal/obs"
	"sunflow/internal/sim"
	"sunflow/internal/varys"
)

// ResilienceRow is one (scenario, scheduler) cell of the resilience
// experiment: the scheduler's average CCT under the injected faults,
// normalized by its own fault-free baseline.
type ResilienceRow struct {
	// Scenario names the fault setting ("fail=0.05" or "permanent").
	Scenario string
	// Scheduler is one of "sunflow", "hybrid", "varys", "aalo", "fair".
	Scheduler string
	// AvgCCT is the mean completion time of the Coflows that finished.
	AvgCCT float64
	// Inflation is AvgCCT over the scheduler's fault-free AvgCCT (1 at rate
	// zero by construction; 0 when the baseline is empty).
	Inflation float64
	// Completed and Stranded count Coflows that finished and flows that were
	// quarantined by permanent port failures.
	Completed int
	Stranded  int
	// Retries counts failed circuit-setup attempts (circuit schedulers only).
	Retries int64
}

// ResiliencePlan is the fault setting the sweep exercises at one failure
// rate: every setup attempt fails with probability rate, each link is
// degraded with probability rate, and each port suffers transient outages at
// rate/10 outages per second over the horizon. A rate of zero is the
// fault-free baseline (nil plan).
func ResiliencePlan(seed int64, rate, horizon float64) *fault.Plan {
	if rate <= 0 {
		return nil
	}
	return &fault.Plan{
		Seed:             seed,
		SetupFailProb:    rate,
		TransientRate:    rate / 10,
		MeanOutage:       0.2,
		Horizon:          horizon,
		DegradedLinkProb: rate,
	}
}

// resilienceScenario is one fault setting applied to all five schedulers.
type resilienceScenario struct {
	name string
	plan *fault.Plan
}

// Resilience measures CCT inflation under injected faults for five
// schedulers: Sunflow on circuits, the REACToR-style hybrid, and Varys, Aalo
// and per-flow fair sharing on packets. Each rate in rates (default
// {0, 0.02, 0.05, 0.1}) becomes one ResiliencePlan scenario; a final
// "permanent" scenario kills one port for good mid-run and reports the
// stranded flows. The workload is capped (≤40 ports, ≤80 Coflows) to keep
// the len(rates)+1 sweeps over five schedulers tractable.
func Resilience(cfg Config, rates []float64) ([]ResilienceRow, error) {
	cfg = cfg.WithDefaults()
	if len(rates) == 0 {
		rates = []float64{0, 0.02, 0.05, 0.1}
	}
	wl := Config{
		Seed:     cfg.Seed,
		Ports:    min(cfg.Ports, 40),
		Coflows:  min(cfg.Coflows, 80),
		MaxWidth: cfg.MaxWidth,
		LinkBps:  cfg.LinkBps,
		Delta:    cfg.Delta,
		Workers:  cfg.Workers,
	}.WithDefaults()
	cs := wl.Workload()

	// Transient outages must cover the whole run to matter; size the horizon
	// off the workload's arrival span.
	horizon := 10.0
	for _, c := range cs {
		if c.Arrival+10 > horizon {
			horizon = c.Arrival + 10
		}
	}

	scenarios := make([]resilienceScenario, 0, len(rates)+1)
	for _, r := range rates {
		scenarios = append(scenarios, resilienceScenario{
			name: fmt.Sprintf("fail=%.2f", r),
			plan: ResiliencePlan(cfg.Seed, r, horizon),
		})
	}
	// One port dies permanently a third into the arrival span: every flow
	// touching it after that is stranded and reported, not served.
	scenarios = append(scenarios, resilienceScenario{
		name: "permanent",
		plan: &fault.Plan{PortFailures: []fault.PortFailure{{Port: 1, At: horizon / 3}}},
	})

	root := cfg.Obs
	if root == nil {
		root = obs.New() // counters only; no trace sink
	}

	type runner struct {
		name string
		run  func(o *obs.Observer, plan *fault.Plan) (map[int]float64, *sim.PartialResult, error)
	}
	runners := []runner{
		{"sunflow", func(o *obs.Observer, plan *fault.Plan) (map[int]float64, *sim.PartialResult, error) {
			res, err := sim.RunCircuit(cs, sim.CircuitOptions{
				Ports: wl.Ports, LinkBps: wl.LinkBps, Delta: wl.Delta, Obs: o, Faults: plan,
			})
			return res.CCT, res.Partial, err
		}},
		{"hybrid", func(o *obs.Observer, plan *fault.Plan) (map[int]float64, *sim.PartialResult, error) {
			res, err := hybrid.Run(cs, hybrid.Options{
				Ports: wl.Ports, CircuitBps: wl.LinkBps, PacketBps: wl.LinkBps / 10,
				Delta: wl.Delta, ThresholdBytes: 10e6, Obs: o, Faults: plan,
			})
			return res.CCT, res.Partial, err
		}},
		{"varys", func(o *obs.Observer, plan *fault.Plan) (map[int]float64, *sim.PartialResult, error) {
			res, err := sim.RunPacketOpts(cs, sim.PacketOptions{
				Ports: wl.Ports, LinkBps: wl.LinkBps, Alloc: varys.Allocator{Obs: o}, Obs: o, Faults: plan,
			})
			return res.CCT, res.Partial, err
		}},
		{"aalo", func(o *obs.Observer, plan *fault.Plan) (map[int]float64, *sim.PartialResult, error) {
			res, err := sim.RunPacketOpts(cs, sim.PacketOptions{
				Ports: wl.Ports, LinkBps: wl.LinkBps, Alloc: aalo.Allocator{Obs: o}, Obs: o, Faults: plan,
			})
			return res.CCT, res.Partial, err
		}},
		{"fair", func(o *obs.Observer, plan *fault.Plan) (map[int]float64, *sim.PartialResult, error) {
			res, err := sim.RunPacketOpts(cs, sim.PacketOptions{
				Ports: wl.Ports, LinkBps: wl.LinkBps, Alloc: fabric.FairSharing{}, Obs: o, Faults: plan,
			})
			return res.CCT, res.Partial, err
		}},
	}

	baseline := map[string]float64{}
	var rows []ResilienceRow
	for _, sc := range scenarios {
		for _, rn := range runners {
			// One scope per cell keeps the trace events and fault counters of
			// every (scenario, scheduler) run separable.
			o := root.Scoped(fmt.Sprintf("%s@%s", rn.name, sc.name))
			retryCtr := o.CircuitRetries
			if rn.name == "hybrid" {
				// The hybrid runs its circuit partition under a "circuit"
				// sub-scope; the retries accumulate there.
				retryCtr = o.Scoped("circuit").CircuitRetries
			}
			retries0 := retryCtr.Load()
			cct, partial, err := rn.run(o, sc.plan)
			if err != nil {
				return rows, fmt.Errorf("bench: resilience %s under %s: %w", rn.name, sc.name, err)
			}
			var sum float64
			for _, v := range cct {
				sum += v
			}
			row := ResilienceRow{
				Scenario:  sc.name,
				Scheduler: rn.name,
				Completed: len(cct),
				Retries:   retryCtr.Load() - retries0,
			}
			if len(cct) > 0 {
				row.AvgCCT = sum / float64(len(cct))
			}
			if partial != nil {
				row.Stranded = len(partial.Stranded)
			}
			if sc.plan == nil {
				baseline[rn.name] = row.AvgCCT
			}
			if b := baseline[rn.name]; b > 0 {
				row.Inflation = row.AvgCCT / b
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatResilience renders the resilience sweep grouped by scenario.
func FormatResilience(rows []ResilienceRow) string {
	header := []string{"scenario", "scheduler", "avg CCT", "inflation", "completed", "stranded", "retries"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Scenario,
			r.Scheduler,
			fmt.Sprintf("%.3fs", r.AvgCCT),
			fmt.Sprintf("%.3f", r.Inflation),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Stranded),
			fmt.Sprintf("%d", r.Retries),
		})
	}
	return "Resilience — CCT inflation under injected faults (capped workload)\n" + table(header, out)
}
