package bench

import (
	"strings"
	"sync/atomic"
	"testing"

	"sunflow/internal/obs"
)

func TestNegativeWorkersClampedToSerial(t *testing.T) {
	cfg := Config{Workers: -3}.WithDefaults()
	if cfg.Workers != 1 {
		t.Fatalf("Workers = %d, want 1", cfg.Workers)
	}
	var ran atomic.Int64
	Config{Workers: -3}.parallelEach(10, func(i int) { ran.Add(1) })
	if ran.Load() != 10 {
		t.Fatalf("parallelEach ran %d of 10 items", ran.Load())
	}
}

func TestFig8AttachesObsSummaries(t *testing.T) {
	cfg := Config{Seed: 1, Ports: 16, Coflows: 20, MaxWidth: 5, Obs: obs.New()}
	rows, err := Fig8(cfg, []float64{Gbps}, []float64{0.40})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.SunObs.CircuitSetups == 0 || r.SunObs.SetupSeconds <= 0 {
		t.Fatalf("sunflow summary not attached: %+v", r.SunObs)
	}
	if r.SunObs.DutyCycle <= 0 || r.SunObs.DutyCycle >= 1 {
		t.Fatalf("duty cycle = %v, want in (0, 1)", r.SunObs.DutyCycle)
	}
	if r.VarysObs.SchedPasses == 0 || r.AaloObs.SchedPasses == 0 {
		t.Fatalf("packet summaries not attached: varys %+v aalo %+v", r.VarysObs, r.AaloObs)
	}
	// The packet schedulers establish no circuits.
	if r.VarysObs.CircuitSetups != 0 || r.AaloObs.CircuitSetups != 0 {
		t.Fatalf("packet scheduler counted circuits: varys %+v aalo %+v", r.VarysObs, r.AaloObs)
	}
	// All three served the same workload.
	if r.SunObs.CoflowsCompleted != r.VarysObs.CoflowsCompleted {
		t.Fatalf("completion counts differ: sun %d varys %d",
			r.SunObs.CoflowsCompleted, r.VarysObs.CoflowsCompleted)
	}
	// The trace-replayed duty cycle must equal the counter-derived one
	// exactly: same events, same accumulation order, same formula.
	if r.SunReplayDuty != r.SunObs.DutyCycle {
		t.Fatalf("replay duty %v != counter duty %v", r.SunReplayDuty, r.SunObs.DutyCycle)
	}
	if out := FormatFig8(rows); !strings.Contains(out, "Sun duty") {
		t.Fatalf("FormatFig8 missing the duty column with obs on:\n%s", out)
	}
}

func TestCollectCIMetricsDeterministicCounters(t *testing.T) {
	a, err := CollectCIMetrics()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectCIMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, scope := range []string{"sunflow", "varys", "aalo", "solstice"} {
		sa, oka := a.Scopes[scope]
		sb, okb := b.Scopes[scope]
		if !oka || !okb {
			t.Fatalf("scope %q missing (run1 %v, run2 %v); scopes %v", scope, oka, okb, a.Scopes)
		}
		if sa.CircuitSetups != sb.CircuitSetups ||
			sa.Reservations != sb.Reservations ||
			sa.CoflowsCompleted != sb.CoflowsCompleted ||
			sa.SchedPasses != sb.SchedPasses {
			t.Errorf("scope %q counters differ between runs:\n  %+v\n  %+v", scope, sa, sb)
		}
	}
	if a.Scopes["sunflow"].CircuitSetups == 0 {
		t.Error("sunflow scope recorded no circuit setups")
	}
}
