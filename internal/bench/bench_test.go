package bench

import (
	"strings"
	"testing"

	"sunflow/internal/core"
)

// smallCfg keeps harness tests fast while exercising every code path.
var smallCfg = Config{Seed: 42, Ports: 30, Coflows: 60, MaxWidth: 8}

func TestWorkloadDeterministic(t *testing.T) {
	a := smallCfg.Workload()
	b := smallCfg.Workload()
	if len(a) != len(b) {
		t.Fatal("workload size not deterministic")
	}
	for i := range a {
		if a[i].TotalBytes() != b[i].TotalBytes() {
			t.Fatalf("coflow %d differs", i)
		}
	}
}

func TestCompact(t *testing.T) {
	cs := smallCfg.Workload()
	for _, c := range cs[:20] {
		cc, n := compact(c)
		if err := cc.Validate(n); err != nil {
			t.Fatalf("compacted coflow invalid: %v", err)
		}
		if cc.NumFlows() != c.NumFlows() {
			t.Fatalf("compaction changed flow count")
		}
		if got, want := cc.TotalBytes(), c.TotalBytes(); got != want {
			t.Fatalf("compaction changed bytes: %v vs %v", got, want)
		}
		senders, receivers := len(c.Senders()), len(c.Receivers())
		want := senders
		if receivers > want {
			want = receivers
		}
		if n != want {
			t.Fatalf("compact fabric size %d, want %d", n, want)
		}
		// Lower bounds are invariant under port relabeling.
		if got, want := cc.PacketLowerBound(Gbps), c.PacketLowerBound(Gbps); got != want {
			t.Fatalf("TpL changed: %v vs %v", got, want)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := Fig3(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Lemma 1 must hold for every Coflow.
		if r.SunWithinFactor2 != r.Coflows {
			t.Fatalf("B=%v: only %d/%d within factor 2", r.LinkBps, r.SunWithinFactor2, r.Coflows)
		}
		if r.SunMax >= 2 {
			t.Fatalf("Sunflow max ratio %v >= 2", r.SunMax)
		}
		if r.SunAvg < 1-1e-9 || r.SolAvg < 1-1e-9 {
			t.Fatalf("ratios below 1: sun %v sol %v", r.SunAvg, r.SolAvg)
		}
	}
	// Solstice degrades as B grows (δ dominates); Sunflow stays near 1.
	if rows[2].SolAvg < rows[0].SolAvg {
		t.Fatalf("Solstice should worsen with B: %v -> %v", rows[0].SolAvg, rows[2].SolAvg)
	}
	if FormatFig3(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.M2MCoflows == 0 {
		t.Fatal("no M2M coflows in workload")
	}
	if r.SunUnderTcL2 != 1 {
		t.Fatalf("Sunflow fraction under 2 = %v, want 1 (Lemma 1)", r.SunUnderTcL2)
	}
	if r.SunUnderTpL4p5 != 1 {
		t.Fatalf("Sunflow fraction under 4.5 = %v, want 1 (Lemma 2 with α=1.25)", r.SunUnderTpL4p5)
	}
	if r.SolTcLAvg < r.SunTcLAvg {
		t.Fatalf("Solstice (%v) should not beat Sunflow (%v) on average", r.SolTcLAvg, r.SunTcLAvg)
	}
	if !strings.Contains(r.Format(), "Figure 4") {
		t.Fatal("format missing title")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SunAlwaysMinimal {
		t.Fatal("Sunflow switching must be minimal for intra scheduling")
	}
	if r.SunAvg != 1 {
		t.Fatalf("Sunflow normalized switching = %v, want 1", r.SunAvg)
	}
	if r.SolAvg <= 1 {
		t.Fatalf("Solstice normalized switching = %v, want > 1", r.SolAvg)
	}
	// The positive count-vs-|C| correlation (paper: 0.84) emerges at full
	// trace scale; at this reduced width the signal is too weak to assert a
	// sign, so only guard against a strong inverse relationship.
	if r.SolFlowsCorr < -0.5 {
		t.Fatalf("Solstice switching strongly anti-correlates with |C|: %v", r.SolFlowsCorr)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// δ = 10 ms row is the baseline: exactly 1.
	if rows[1].Avg != 1 || rows[1].P95 != 1 {
		t.Fatalf("baseline row = %+v", rows[1])
	}
	// Slower switch (100 ms) is worse; faster switches are monotonically
	// better with diminishing returns.
	if rows[0].Avg <= 1 {
		t.Fatalf("δ=100ms avg = %v, want > 1", rows[0].Avg)
	}
	if rows[2].Avg >= 1 {
		t.Fatalf("δ=1ms avg = %v, want < 1", rows[2].Avg)
	}
	if rows[3].Avg > rows[2].Avg+1e-9 || rows[4].Avg > rows[3].Avg+1e-9 {
		t.Fatalf("faster δ should not be slower: %v %v %v", rows[2].Avg, rows[3].Avg, rows[4].Avg)
	}
	// Marginal benefit below 100 µs is very small (< 2%).
	if rows[2].Avg-rows[4].Avg > 0.1 {
		t.Fatalf("benefit below 1ms too large: %v -> %v", rows[2].Avg, rows[4].Avg)
	}
	if FormatDeltaSweep("Figure 6", rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxRatio > r.TheoreticalCap {
		t.Fatalf("CCT/TpL %v exceeds cap %v", r.MaxRatio, r.TheoreticalCap)
	}
	if r.LongAvg > r.AllAvg {
		t.Fatalf("long coflows (%v) should be closer to TpL than average (%v)", r.LongAvg, r.AllAvg)
	}
	if r.RankCorrelation >= 0 {
		t.Fatalf("rank corr = %v, want negative (bigger pavg → smaller ratio)", r.RankCorrelation)
	}
	if r.LongBytesShare < 0.5 {
		t.Fatalf("long coflows carry %v of bytes, expected the majority", r.LongBytesShare)
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4(smallCfg)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var coflowPct, bytesPct float64
	for _, r := range rows {
		coflowPct += r.CoflowPct
		bytesPct += r.BytesPct
	}
	if coflowPct < 99.9 || coflowPct > 100.1 {
		t.Fatalf("coflow shares sum to %v", coflowPct)
	}
	if bytesPct < 99.9 || bytesPct > 100.1 {
		t.Fatalf("byte shares sum to %v", bytesPct)
	}
	if FormatTable4(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestOrderingSensitivityShape(t *testing.T) {
	rows, err := OrderingSensitivity(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// §5.3.1 found ±6%; allow a loose envelope on the small workload.
		if r.AvgRatio < 0.7 || r.AvgRatio > 1.3 {
			t.Fatalf("%v avg ratio %v outside envelope", r.Order, r.AvgRatio)
		}
	}
}

func TestBaselinesShape(t *testing.T) {
	r, err := Baselines(Config{Seed: 42, Ports: 20, Coflows: 40, MaxWidth: 5}, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coflows == 0 {
		t.Fatal("no coflows sampled")
	}
	if r.TMSOverSol < 1 {
		t.Fatalf("TMS/Solstice = %v, expected Solstice faster", r.TMSOverSol)
	}
	if r.EdmondOverSol < r.TMSOverSol {
		t.Fatalf("Edmond (%v) should be slower than TMS (%v)", r.EdmondOverSol, r.TMSOverSol)
	}
	if r.EdmondOverSol < 1 {
		t.Fatalf("Edmond/Solstice = %v, expected Solstice faster", r.EdmondOverSol)
	}
	if r.SunOverSol > 1 {
		t.Fatalf("Sunflow/Solstice = %v, expected Sunflow faster", r.SunOverSol)
	}
}

func TestAllStopAblationShape(t *testing.T) {
	r, err := AllStopAblation(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgRatio < 1-1e-9 {
		t.Fatalf("all-stop ratio = %v, must be >= 1", r.AvgRatio)
	}
}

func TestFig8SmallGrid(t *testing.T) {
	rows, err := Fig8(smallCfg, []float64{Gbps}, []float64{0.40, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SunAvgCCT <= 0 || r.VarysAvgCCT <= 0 || r.AaloAvgCCT <= 0 {
			t.Fatalf("degenerate averages: %+v", r)
		}
		// Circuit switching can never beat the packet schedulers by a large
		// factor, and at high idleness it must be slower.
		if r.SunOverVarys < 0.3 {
			t.Fatalf("implausible Sun/Varys = %v", r.SunOverVarys)
		}
	}
	// At near-empty load (95% idleness), Coflows run mostly alone and the
	// circuit δ penalty must show: Sunflow cannot beat Varys.
	if rows[1].SunOverVarys < 1 {
		t.Fatalf("Sun/Varys at 95%% idleness = %v, want >= 1", rows[1].SunOverVarys)
	}
	if FormatFig8(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig9Small(t *testing.T) {
	r, err := Fig9(smallCfg, 0.40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coflows == 0 {
		t.Fatal("no coflows compared")
	}
	// Short Coflows pay the δ penalty more than long ones. A sparse small
	// workload scaled up to the idleness target may leave one bucket empty
	// (reported as 0), in which case the comparison is vacuous.
	if r.ShortSunOverVarys > 0 && r.LongSunOverVarys > 0 &&
		r.ShortSunOverVarys < r.LongSunOverVarys {
		t.Fatalf("short ratio %v should exceed long ratio %v", r.ShortSunOverVarys, r.LongSunOverVarys)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestFig10Small(t *testing.T) {
	cfg := Config{Seed: 42, Ports: 20, Coflows: 30, MaxWidth: 6}
	rows, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Avg != 1 {
		t.Fatalf("baseline = %v", rows[1].Avg)
	}
	if rows[0].Avg <= rows[1].Avg {
		t.Fatalf("δ=100ms should be slower: %v", rows[0].Avg)
	}
}

func TestStarvationSmall(t *testing.T) {
	r, err := Starvation(Config{Seed: 1}, core.FairWindows{N: 4, T: 0.5, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.StarvedCCTWith >= r.StarvedCCTWithout {
		t.Fatalf("fair windows did not help: %v vs %v", r.StarvedCCTWith, r.StarvedCCTWithout)
	}
	// Fair windows reshape the schedule: usually a small average-CCT cost,
	// but the shared τ service can also help on small fabrics — only guard
	// against degenerate values.
	if r.OverheadAvgCCT < 0.5 || r.OverheadAvgCCT > 2 {
		t.Fatalf("overhead ratio = %v, expected near 1", r.OverheadAvgCCT)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestCombiningSmall(t *testing.T) {
	r, err := Combining(Config{Seed: 42, Ports: 20, Coflows: 40, MaxWidth: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups == 0 {
		t.Fatal("no groups")
	}
	// §4.2: combining may cost average CCT.
	if r.Ratio < 1-1e-9 {
		t.Fatalf("combined avg CCT ratio = %v, expected >= 1", r.Ratio)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(Config{Seed: 1}, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sunflow <= 0 || r.Solstice <= 0 || r.TMS <= 0 || r.Edmond <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
	if FormatTable3(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestApproximationShape(t *testing.T) {
	rows, err := Approximation(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AvgCCTRatio != 1 {
		t.Fatalf("exact baseline ratio = %v", rows[0].AvgCCTRatio)
	}
	for i := 1; i < len(rows); i++ {
		// Rounding demand up can only lengthen schedules.
		if rows[i].AvgCCTRatio < 1-1e-9 {
			t.Fatalf("quantum %v shortened schedules: %v", rows[i].Quantum, rows[i].AvgCCTRatio)
		}
		// Coarser quanta cost at least as much as finer ones.
		if rows[i].AvgCCTRatio < rows[i-1].AvgCCTRatio-1e-6 {
			t.Fatalf("non-monotone quantum cost: %v then %v", rows[i-1].AvgCCTRatio, rows[i].AvgCCTRatio)
		}
	}
	if FormatApproximation(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestHybridShape(t *testing.T) {
	rows, err := Hybrid(Config{Seed: 42, Ports: 20, Coflows: 40, MaxWidth: 6}, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PacketShare != 0 {
		t.Fatalf("pure circuit row carries packet bytes: %v", rows[0].PacketShare)
	}
	last := rows[len(rows)-1]
	if last.PacketShare < 0.999 {
		t.Fatalf("pure packet row carries only %v of bytes", last.PacketShare)
	}
	// Sending all bulk traffic over a 10%-bandwidth packet path must hurt.
	if last.AvgCCTRatio < 1 {
		t.Fatalf("pure 10%%-bandwidth packet fabric beat the circuit fabric: %v", last.AvgCCTRatio)
	}
	if FormatHybrid(rows) == "" {
		t.Fatal("empty format")
	}
}
