package bench

import (
	"fmt"

	"sunflow/internal/aalo"
	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/obs"
	"sunflow/internal/obs/replay"
	"sunflow/internal/sim"
	"sunflow/internal/stats"
	"sunflow/internal/varys"
	"sunflow/internal/workload"
)

// interRun holds the three schedulers' results on one workload setting,
// together with the observability deltas this run added to each scheduler's
// scope (zero summaries when Config.Obs is nil).
type interRun struct {
	Sunflow sim.Result
	Varys   sim.Result
	Aalo    sim.Result

	SunObs   obs.Summary
	VarysObs obs.Summary
	AaloObs  obs.Summary
	// SunReplayDuty is the Sunflow duty cycle reconstructed by replaying
	// this run's trace events — an end-to-end cross-check of the counters
	// (the two agree bit-exactly; see internal/obs/replay). Zero when
	// Config.Obs is nil.
	SunReplayDuty float64
}

// runInter replays the workload through Sunflow (circuit switched) and
// Varys and Aalo (packet switched) at the given bandwidth. With Config.Obs
// set, each scheduler runs under its own scope and the run's summary deltas
// are attached to the result (the scopes accumulate across runs).
func runInter(cfg Config, cs []*coflow.Coflow, linkBps float64) (interRun, error) {
	cfg = cfg.WithDefaults()
	sunObs := cfg.Obs.Scoped("sunflow")
	varysObs := cfg.Obs.Scoped("varys")
	aaloObs := cfg.Obs.Scoped("aalo")
	sunPrev, varysPrev, aaloPrev := sunObs.Summary(), varysObs.Summary(), aaloObs.Summary()

	// Tee this run's Sunflow events into a private buffer so the duty cycle
	// can be re-derived from the trace alone; the user's sink (if any) still
	// receives everything.
	var cellSink *obs.SliceSink
	if cfg.Obs != nil {
		cellSink = &obs.SliceSink{}
		sunObs = obs.NewWith(cfg.Obs.Registry(), obs.Tee(cfg.Obs.Sink(), cellSink)).Scoped("sunflow")
	}

	// One Stack per scheduler run: runInter runs them sequentially on this
	// goroutine, and per-scheduler scopes keep the span aggregates beside the
	// matching counters.
	sunProf := cfg.Prof.NewStack("sunflow")
	varysProf := cfg.Prof.NewStack("varys")
	aaloProf := cfg.Prof.NewStack("aalo")

	var out interRun
	var err error
	out.Sunflow, err = sim.RunCircuit(cs, sim.CircuitOptions{
		Ports:   cfg.Ports,
		LinkBps: linkBps,
		Delta:   cfg.Delta,
		Obs:     sunObs,
		Prof:    sunProf,
	})
	if err != nil {
		return out, fmt.Errorf("bench: sunflow inter: %w", err)
	}
	if cellSink != nil {
		if s := replay.Analyze(cellSink.Events()).Scope("sunflow"); s != nil {
			out.SunReplayDuty = s.DutyCycle
		}
	}
	out.Varys, err = sim.RunPacketOpts(cs, sim.PacketOptions{
		Ports: cfg.Ports, LinkBps: linkBps,
		Alloc: varys.Allocator{Obs: varysObs, Prof: varysProf},
		Obs:   varysObs, Prof: varysProf,
	})
	if err != nil {
		return out, fmt.Errorf("bench: varys: %w", err)
	}
	out.Aalo, err = sim.RunPacketOpts(cs, sim.PacketOptions{
		Ports: cfg.Ports, LinkBps: linkBps,
		Alloc: aalo.Allocator{Obs: aaloObs, Prof: aaloProf},
		Obs:   aaloObs, Prof: aaloProf,
	})
	if err != nil {
		return out, fmt.Errorf("bench: aalo: %w", err)
	}
	out.SunObs = sunObs.Summary().Sub(sunPrev)
	out.VarysObs = varysObs.Summary().Sub(varysPrev)
	out.AaloObs = aaloObs.Summary().Sub(aaloPrev)
	return out, nil
}

// Fig8Row is one (bandwidth, idleness) cell of Figure 8.
type Fig8Row struct {
	LinkBps     float64
	Idleness    float64
	ScaleFactor float64
	SunAvgCCT   float64
	VarysAvgCCT float64
	AaloAvgCCT  float64
	// SunOverVarys and SunOverAalo are the normalized average CCTs the
	// figure plots.
	SunOverVarys float64
	SunOverAalo  float64
	// SunObs, VarysObs and AaloObs carry this cell's observability deltas
	// when Config.Obs is set (zero otherwise).
	SunObs   obs.Summary
	VarysObs obs.Summary
	AaloObs  obs.Summary
	// SunReplayDuty is Sunflow's duty cycle re-derived from this cell's
	// trace by internal/obs/replay (zero when Config.Obs is nil).
	SunReplayDuty float64
}

// Fig8 reproduces Figure 8: Sunflow's average CCT normalized by Varys' and
// Aalo's, across bandwidths and network idleness settings. An idleness
// value of 0 selects the original (unscaled) workload, whose idleness grows
// with bandwidth as the paper's does (12% at 1 Gbps rising toward ~98% at
// 100 Gbps); positive values scale the byte sizes to reach that idleness at
// that bandwidth, preserving Coflow structure (§5.4).
func Fig8(cfg Config, bandwidths, idleness []float64) ([]Fig8Row, error) {
	cfg = cfg.WithDefaults()
	if len(bandwidths) == 0 {
		bandwidths = []float64{Gbps, 10 * Gbps, 100 * Gbps}
	}
	if len(idleness) == 0 {
		idleness = []float64{0, 0.20, 0.40}
	}
	base := cfg.Workload()
	var rows []Fig8Row
	for _, b := range bandwidths {
		for _, idle := range idleness {
			factor, scaled := 1.0, base
			if idle > 0 {
				var err error
				factor, scaled, err = workload.ScaleToIdleness(base, b, idle)
				if err != nil {
					return rows, fmt.Errorf("bench: idleness %.2f at %.0fG: %w", idle, b/Gbps, err)
				}
			} else {
				idle = workload.Idleness(base, b)
			}
			run, err := runInter(cfg, scaled, b)
			if err != nil {
				return rows, err
			}
			row := Fig8Row{
				LinkBps:       b,
				Idleness:      idle,
				ScaleFactor:   factor,
				SunAvgCCT:     run.Sunflow.AverageCCT(),
				VarysAvgCCT:   run.Varys.AverageCCT(),
				AaloAvgCCT:    run.Aalo.AverageCCT(),
				SunObs:        run.SunObs,
				VarysObs:      run.VarysObs,
				AaloObs:       run.AaloObs,
				SunReplayDuty: run.SunReplayDuty,
			}
			if row.VarysAvgCCT > 0 {
				row.SunOverVarys = row.SunAvgCCT / row.VarysAvgCCT
			}
			if row.AaloAvgCCT > 0 {
				row.SunOverAalo = row.SunAvgCCT / row.AaloAvgCCT
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFig8 renders the Figure 8 grid. The duty column (Sunflow's circuit
// duty cycle re-derived from the cell's trace) appears only when the rows
// were collected with observability on.
func FormatFig8(rows []Fig8Row) string {
	withDuty := false
	for _, r := range rows {
		if r.SunReplayDuty > 0 {
			withDuty = true
			break
		}
	}
	header := []string{"B", "idleness", "Sun avg CCT", "Varys avg", "Aalo avg", "Sun/Varys", "Sun/Aalo"}
	if withDuty {
		header = append(header, "Sun duty")
	}
	var out [][]string
	for _, r := range rows {
		row := []string{
			fmt.Sprintf("%.0f Gbps", r.LinkBps/Gbps),
			fmt.Sprintf("%.0f%%", r.Idleness*100),
			fmt.Sprintf("%.3fs", r.SunAvgCCT),
			fmt.Sprintf("%.3fs", r.VarysAvgCCT),
			fmt.Sprintf("%.3fs", r.AaloAvgCCT),
			fmt.Sprintf("%.2f", r.SunOverVarys),
			fmt.Sprintf("%.2f", r.SunOverAalo),
		}
		if withDuty {
			row = append(row, fmt.Sprintf("%.4f", r.SunReplayDuty))
		}
		out = append(out, row)
	}
	return "Figure 8 — inter-Coflow average CCT, Sunflow (OCS) vs Varys/Aalo (packet)\n" + table(header, out)
}

// Fig9Result summarizes Figure 9: per-Coflow CCT differences between
// Sunflow and the packet schedulers at the original traffic load.
type Fig9Result struct {
	Coflows int
	// Ratio metrics of §5.4's first comparison.
	SunOverVarysAvg float64
	SunOverVarysP95 float64
	SunOverAaloAvg  float64
	SunOverAaloP95  float64
	// Short/long split (long: pavg > 40δ).
	ShortSunOverVarys float64
	LongSunOverVarys  float64
	ShortSunOverAalo  float64
	LongSunOverAalo   float64
	// Fractions of Coflows Sunflow finishes no later than the baseline.
	FasterThanVarys float64
	FasterThanAalo  float64
}

// Fig9 reproduces Figure 9 (and the §5.4 CCT-ratio discussion): per-Coflow
// ΔCCT between Sunflow and Varys/Aalo on the workload scaled to the target
// idleness (the paper uses the original 12%).
func Fig9(cfg Config, idleness float64) (Fig9Result, error) {
	cfg = cfg.WithDefaults()
	if idleness == 0 {
		idleness = 0.12
	}
	base := cfg.Workload()
	_, scaled, err := workload.ScaleToIdleness(base, cfg.LinkBps, idleness)
	if err != nil {
		return Fig9Result{}, err
	}
	run, err := runInter(cfg, scaled, cfg.LinkBps)
	if err != nil {
		return Fig9Result{}, err
	}

	var rv, ra, rvShort, rvLong, raShort, raLong []float64
	fasterV, fasterA := 0, 0
	for _, c := range scaled {
		sun := run.Sunflow.CCT[c.ID]
		v := run.Varys.CCT[c.ID]
		a := run.Aalo.CCT[c.ID]
		if v <= 0 || a <= 0 {
			continue
		}
		long := c.AvgProcTime(cfg.LinkBps) > 40*cfg.Delta
		rv = append(rv, sun/v)
		ra = append(ra, sun/a)
		if long {
			rvLong = append(rvLong, sun/v)
			raLong = append(raLong, sun/a)
		} else {
			rvShort = append(rvShort, sun/v)
			raShort = append(raShort, sun/a)
		}
		if sun <= v+1e-9 {
			fasterV++
		}
		if sun <= a+1e-9 {
			fasterA++
		}
	}
	n := float64(len(rv))
	return Fig9Result{
		Coflows:           len(rv),
		SunOverVarysAvg:   stats.Mean(rv),
		SunOverVarysP95:   stats.Percentile(rv, 95),
		SunOverAaloAvg:    stats.Mean(ra),
		SunOverAaloP95:    stats.Percentile(ra, 95),
		ShortSunOverVarys: stats.Mean(rvShort),
		LongSunOverVarys:  stats.Mean(rvLong),
		ShortSunOverAalo:  stats.Mean(raShort),
		LongSunOverAalo:   stats.Mean(raLong),
		FasterThanVarys:   float64(fasterV) / n,
		FasterThanAalo:    float64(fasterA) / n,
	}, nil
}

// Format renders the Figure 9 summary.
func (r Fig9Result) Format() string {
	return fmt.Sprintf(`Figure 9 / §5.4 — per-Coflow CCT ratios at original load (%d Coflows)
  Sunflow/Varys: avg %.2f  p95 %.2f   (short %.2f, long %.2f; Sunflow ≤ Varys for %.0f%%)
  Sunflow/Aalo:  avg %.2f  p95 %.2f   (short %.2f, long %.2f; Sunflow ≤ Aalo  for %.0f%%)
`, r.Coflows,
		r.SunOverVarysAvg, r.SunOverVarysP95, r.ShortSunOverVarys, r.LongSunOverVarys, 100*r.FasterThanVarys,
		r.SunOverAaloAvg, r.SunOverAaloP95, r.ShortSunOverAalo, r.LongSunOverAalo, 100*r.FasterThanAalo)
}

// Fig10 reproduces Figure 10: inter-Coflow sensitivity to δ on the original
// workload, normalized per Coflow to δ = 10 ms.
func Fig10(cfg Config) ([]DeltaSweepRow, error) {
	cfg = cfg.WithDefaults()
	cs := cfg.Workload()
	deltas := []float64{0.1, 0.01, 0.001, 0.0001, 0.00001}

	runAt := func(d float64) (map[int]float64, error) {
		res, err := sim.RunCircuit(cs, sim.CircuitOptions{
			Ports: cfg.Ports, LinkBps: cfg.LinkBps, Delta: d,
		})
		if err != nil {
			return nil, err
		}
		return res.CCT, nil
	}
	base, err := runAt(0.01)
	if err != nil {
		return nil, err
	}
	var rows []DeltaSweepRow
	for _, d := range deltas {
		cct := base
		if d != 0.01 {
			if cct, err = runAt(d); err != nil {
				return rows, err
			}
		}
		var norm []float64
		for _, id := range sortedIDs(base) {
			if base[id] > 0 {
				norm = append(norm, cct[id]/base[id])
			}
		}
		rows = append(rows, DeltaSweepRow{Delta: d, Avg: stats.Mean(norm), P95: stats.Percentile(norm, 95), Coflows: len(norm)})
	}
	return rows, nil
}

// StarvationResult reports the §4.2 starvation-avoidance experiment.
type StarvationResult struct {
	// StarvedCCTWithout and StarvedCCTWith are the deprioritized Coflow's
	// CCT without and with fair windows.
	StarvedCCTWithout float64
	StarvedCCTWith    float64
	// GuaranteeBound is N·(T+τ), the period within which every Coflow is
	// guaranteed non-zero service.
	GuaranteeBound float64
	// OverheadAvgCCT is the ratio of the normal workload's average CCT with
	// fair windows enabled over disabled — the cost of the guarantee.
	OverheadAvgCCT float64
}

// Starvation demonstrates the starvation-avoidance design: an adversarial
// high-priority Coflow monopolizes a port pair while a deprioritized Coflow
// waits, with and without (T, τ) fair windows; then the overhead of the
// windows on a normal workload is measured. It runs at the full experiment
// scale (a 32 s hog at 1 Gbps, a 40-Coflow overhead workload); see
// StarvationSized for a parameterized variant.
func Starvation(cfg Config, fair core.FairWindows) (StarvationResult, error) {
	return StarvationSized(cfg, fair, 4e9, 40)
}

// StarvationSized is Starvation with the experiment scale exposed: hogBytes
// sets the monopolizing Coflow's transfer (the starved Coflow's wait scales
// with it) and overheadCoflows the size of the workload used to price the
// fair-window guarantee. The quick benchmark configuration runs a reduced
// scale; the slowbench build tag restores the full experiment.
func StarvationSized(cfg Config, fair core.FairWindows, hogBytes float64, overheadCoflows int) (StarvationResult, error) {
	cfg = cfg.WithDefaults()
	if fair.N == 0 {
		fair = core.FairWindows{N: 8, T: 1.0, Tau: 0.05}
	}
	if err := fair.Validate(cfg.Delta); err != nil {
		return StarvationResult{}, err
	}
	if hogBytes <= 0 {
		hogBytes = 4e9
	}
	if overheadCoflows <= 0 {
		overheadCoflows = 40
	}

	// Adversarial scenario on a small fabric.
	hog := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: hogBytes}})
	starved := coflow.New(2, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	policy := core.PriorityClasses{Class: map[int]int{1: 0, 2: 1}}
	small := sim.CircuitOptions{Ports: fair.N, LinkBps: cfg.LinkBps, Delta: cfg.Delta, Policy: policy}

	without, err := sim.RunCircuit([]*coflow.Coflow{hog, starved}, small)
	if err != nil {
		return StarvationResult{}, err
	}
	smallFair := small
	smallFair.Fair = &fair
	with, err := sim.RunCircuit([]*coflow.Coflow{hog, starved}, smallFair)
	if err != nil {
		return StarvationResult{}, err
	}

	// Overhead on a regular workload (reduced size keeps this tractable).
	wl := Config{Seed: cfg.Seed, Ports: fair.N, Coflows: overheadCoflows, MaxWidth: 6, LinkBps: cfg.LinkBps, Delta: cfg.Delta}
	cs := wl.Workload()
	normal, err := sim.RunCircuit(cs, sim.CircuitOptions{Ports: fair.N, LinkBps: cfg.LinkBps, Delta: cfg.Delta})
	if err != nil {
		return StarvationResult{}, err
	}
	withFair, err := sim.RunCircuit(cs, sim.CircuitOptions{
		Ports: fair.N, LinkBps: cfg.LinkBps, Delta: cfg.Delta, Fair: &fair,
	})
	if err != nil {
		return StarvationResult{}, err
	}

	res := StarvationResult{
		StarvedCCTWithout: without.CCT[2],
		StarvedCCTWith:    with.CCT[2],
		GuaranteeBound:    float64(fair.N) * (fair.T + fair.Tau),
	}
	if normal.AverageCCT() > 0 {
		res.OverheadAvgCCT = withFair.AverageCCT() / normal.AverageCCT()
	}
	return res, nil
}

// Format renders the starvation experiment.
func (r StarvationResult) Format() string {
	return fmt.Sprintf(`§4.2 — starvation avoidance with (T, τ) fair windows
  deprioritized Coflow CCT: %.2fs without windows → %.2fs with windows
  guarantee: non-zero service within every N(T+τ) = %.2fs
  overhead on a normal workload: avg CCT ×%.3f
`, r.StarvedCCTWithout, r.StarvedCCTWith, r.GuaranteeBound, r.OverheadAvgCCT)
}

// CombiningResult reports the §4.2 Coflow-combining ablation: serving
// same-priority Coflows combined as one versus individually.
type CombiningResult struct {
	Groups         int
	AvgCCTSolo     float64
	AvgCCTCombined float64
	Ratio          float64
}

// Combining compares serving batches of equal-priority Coflows individually
// (sorted by arrival) against combining each batch into a single Coflow, as
// §4.2 describes, using serialized scheduling of each batch.
func Combining(cfg Config, batch int) (CombiningResult, error) {
	cfg = cfg.WithDefaults()
	if batch == 0 {
		batch = 4
	}
	cs := cfg.Workload()
	var soloSum, combSum float64
	groups := 0
	for i := 0; i+batch <= len(cs) && groups < 40; i += batch {
		group := cs[i : i+batch]
		// Individually: schedule the batch through one PRT in arrival order.
		zeroed := make([]*coflow.Coflow, batch)
		for k, c := range group {
			zeroed[k] = c.Clone()
			zeroed[k].Arrival = 0
		}
		prt := core.NewPRT(cfg.Ports)
		scheds, err := core.InterCoflow(prt, zeroed, core.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta})
		if err != nil {
			return CombiningResult{}, err
		}
		for _, s := range scheds {
			soloSum += s.Finish
		}
		// Combined: one merged Coflow; every member's CCT is the combined
		// finish time.
		merged, err := coflow.Combine(1000000+i, zeroed)
		if err != nil {
			return CombiningResult{}, err
		}
		msched, err := core.IntraCoflow(core.NewPRT(cfg.Ports), merged, core.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta})
		if err != nil {
			return CombiningResult{}, err
		}
		combSum += float64(batch) * msched.Finish
		groups++
	}
	n := float64(groups * batch)
	res := CombiningResult{
		Groups:         groups,
		AvgCCTSolo:     soloSum / n,
		AvgCCTCombined: combSum / n,
	}
	if res.AvgCCTSolo > 0 {
		res.Ratio = res.AvgCCTCombined / res.AvgCCTSolo
	}
	return res, nil
}

// Format renders the combining ablation.
func (r CombiningResult) Format() string {
	return fmt.Sprintf(`§4.2 — combining same-priority Coflows (%d groups)
  avg CCT served individually: %.3fs
  avg CCT combined:            %.3fs  (×%.2f — combining costs average CCT)
`, r.Groups, r.AvgCCTSolo, r.AvgCCTCombined, r.Ratio)
}
