// Package sim contains the trace-driven flow-level discrete-event
// simulators of the Sunflow paper's evaluation (§5.1): a fluid simulator for
// the packet-switched fabric driven by a rate allocator (Varys, Aalo, plain
// fair sharing), and an online circuit-switched simulator that replans a
// Sunflow schedule on every Coflow arrival and completion, never preempting
// circuits already established.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// byteEps is the residual demand below which a flow counts as finished. One
// byte is negligible against the ≥ 1 MB flows of real workloads yet safely
// above the floating-point residue even of petabyte-scaled experiments.
const byteEps = 1.0

// timeEps absorbs floating-point residue in event times.
const timeEps = 1e-9

// ThresholdNotifier is implemented by rate allocators whose decisions change
// when a Coflow's attained service crosses a boundary (Aalo's queue
// demotions); the simulator inserts recomputation events at the crossings.
type ThresholdNotifier interface {
	// NextThreshold returns the attained-service level (bytes) at which the
	// allocation must be recomputed, or +Inf.
	NextThreshold(attained float64) float64
}

// CoflowEventPaced is implemented by rate allocators that recompute only on
// Coflow arrivals and completions, as Varys does (§5.4, §6 of the Sunflow
// paper): when a subflow finishes early, its bandwidth is left unused until
// the next Coflow-level rescheduling decision.
type CoflowEventPaced interface {
	// PacedByCoflowEvents reports whether rates freeze between Coflow
	// arrivals and completions.
	PacedByCoflowEvents() bool
}

// Result reports one simulation run.
type Result struct {
	// CCT maps Coflow id to its completion time minus its arrival time.
	CCT map[int]float64
	// Finish maps Coflow id to its absolute completion time.
	Finish map[int]float64
	// SwitchCount maps Coflow id to circuit establishments made on its
	// behalf (zero in packet-switched runs).
	SwitchCount map[int]int
	// Events is the number of simulator events processed.
	Events int
	// Partial records flows quarantined by permanent port failures; nil on a
	// fault-free (or fully routable) run. Quarantined Coflows appear here
	// instead of CCT/Finish.
	Partial *PartialResult
}

// AverageCCT returns the mean CCT across all Coflows.
func (r Result) AverageCCT() float64 {
	if len(r.CCT) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.CCT {
		sum += v
	}
	return sum / float64(len(r.CCT))
}

// ErrStalled is returned when live demand can make no progress.
var ErrStalled = errors.New("sim: no progress possible with live demand")

// maxEvents bounds any single simulation against runaway loops.
const maxEvents = 50_000_000

// flowState is one live flow's fluid state: rem is exact as of the owning
// coflowState's sync time; rate is fixed until the next recomputation.
type flowState struct {
	key     fabric.FlowKey
	rem     float64
	total   float64 // original demand, reported on flow_finish trace events
	rate    float64
	done    bool
	started bool // first positive rate seen; only tracked when tracing
}

// coflowState tracks one admitted, unfinished Coflow.
type coflowState struct {
	id       int
	arrival  float64
	flows    []*flowState
	liveN    int
	attained float64
	// stranded marks a Coflow that lost a flow to a permanent port failure;
	// it retires into the PartialResult, never into CCT.
	stranded bool
}

// pktEvent is a pending completion or threshold crossing.
type pktEvent struct {
	at   float64
	gen  int64
	seq  int64      // insertion order, the deterministic tie-break
	flow *flowState // nil for a threshold-crossing event
	cf   *coflowState
}

type pktHeap []pktEvent

func (h pktHeap) Len() int { return len(h) }
func (h pktHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].seq < h[b].seq
}
func (h pktHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *pktHeap) Push(x interface{}) { *h = append(*h, x.(pktEvent)) }
func (h *pktHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PacketOptions configures the packet-switched simulation.
type PacketOptions struct {
	// Ports is the fabric port count N.
	Ports int
	// LinkBps is the per-port bandwidth B in bits/s.
	LinkBps float64
	// Alloc is the rate allocator (Varys, Aalo, fair sharing).
	Alloc fabric.RateAllocator
	// Obs optionally records metrics and trace events.
	Obs *obs.Observer
	// Prof optionally records wall-clock profiling spans ("sim.run",
	// "sched.pass", "alloc") on the calling goroutine's span stack. Give
	// the allocator the same stack so its kernel spans nest under "alloc".
	Prof *span.Stack
	// Faults optionally injects port outages, degraded link rates and
	// straggler flows. Nil — or a plan whose IsZero reports true — leaves the
	// simulation bit-identical to the fault-free baseline. Circuit-setup
	// failures do not apply to a packet fabric.
	Faults *fault.Plan
}

// RunPacket simulates the Coflows on a packet-switched fabric with the given
// rate allocator. Rates are recomputed on every Coflow arrival and
// completion, on attained-service threshold crossings (ThresholdNotifier),
// and — unless the allocator declares itself CoflowEventPaced — on every
// flow completion; between recomputations flows progress fluidly at frozen
// rates, tracked lazily so each interval costs O(F) once rather than per
// event.
func RunPacket(coflows []*coflow.Coflow, ports int, linkBps float64, alloc fabric.RateAllocator) (Result, error) {
	return RunPacketOpts(coflows, PacketOptions{Ports: ports, LinkBps: linkBps, Alloc: alloc})
}

// RunPacketObs is RunPacket with an optional Observer recording metrics and
// trace events (nil behaves exactly like RunPacket).
func RunPacketObs(coflows []*coflow.Coflow, ports int, linkBps float64, alloc fabric.RateAllocator, o *obs.Observer) (Result, error) {
	return RunPacketOpts(coflows, PacketOptions{Ports: ports, LinkBps: linkBps, Alloc: alloc, Obs: o})
}

// RunPacketOpts is the fully-optioned packet simulation entry point.
func RunPacketOpts(coflows []*coflow.Coflow, opts PacketOptions) (Result, error) {
	rsp := opts.Prof.Start("sim.run").Attr("sim", "packet")
	defer rsp.Finish()
	ports, linkBps, alloc, o := opts.Ports, opts.LinkBps, opts.Alloc, opts.Obs
	res := Result{CCT: map[int]float64{}, Finish: map[int]float64{}, SwitchCount: map[int]int{}}
	if linkBps <= 0 {
		return res, fmt.Errorf("sim: link bandwidth must be positive, got %v", linkBps)
	}
	arrivalsOrder, _, err := prepare(coflows, ports)
	if err != nil {
		return res, err
	}
	fm, err := opts.Faults.Compile(ports)
	if err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	if o != nil {
		defer func() { o.SimEvents.Add(int64(res.Events)) }()
	}
	notifier, _ := alloc.(ThresholdNotifier)
	frozen := false
	if p, ok := alloc.(CoflowEventPaced); ok {
		frozen = p.PacedByCoflowEvents()
	}

	live := map[int]*coflowState{}
	next := 0
	var gen, seq int64
	var events pktHeap
	lastSync := 0.0

	// liveIDs snapshots the live coflow ids in ascending order. Every pass
	// over the live set — syncs, reaps, heap rebuilds, strands — walks this
	// instead of the map: map-order iteration would reorder simultaneous
	// completions in the trace and drift float accumulation between
	// otherwise identical runs.
	liveIDs := func() []int {
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return ids
	}

	t := 0.0
	if len(arrivalsOrder) > 0 {
		t = arrivalsOrder[0].Arrival
		lastSync = t
	}

	// portEvents emits port_down / port_up for every outage boundary in
	// (faultCursor, upTo].
	faultCursor := math.Inf(-1)
	portEvents := func(upTo float64) {
		for fm != nil {
			bt := fm.NextBoundary(faultCursor)
			if math.IsInf(bt, 1) || bt > upTo+timeEps {
				return
			}
			faultCursor = bt
			downs, ups := fm.BoundariesAt(bt)
			for _, og := range ups {
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: bt, Kind: obs.KindPortUp, Coflow: -1, Src: og.Port, Dst: -1})
				}
			}
			for _, og := range downs {
				if o != nil {
					o.PortDowns.Inc()
					if o.TraceEnabled() {
						dur := 0.0
						if !og.Permanent() {
							dur = og.End - og.Start
						}
						o.Emit(obs.Event{T: bt, Kind: obs.KindPortDown, Coflow: -1, Src: og.Port, Dst: -1, Dur: dur})
					}
				}
			}
		}
	}

	// strand quarantines every live flow whose port is permanently dead as of
	// now; a Coflow losing a flow retires into the PartialResult, not CCT.
	strand := func(now float64) {
		if fm == nil || !fm.AnyPermanent() {
			return
		}
		for _, id := range liveIDs() {
			cs := live[id]
			for _, f := range cs.flows {
				if f.done || f.rem <= byteEps {
					// An (almost) drained flow is a completion, not a strand;
					// the next recompute reaps it.
					continue
				}
				if !(fm.PermanentlyDown(f.key.Src, now) || fm.PermanentlyDown(f.key.Dst, now)) {
					continue
				}
				b := f.rem
				f.rem = 0
				f.done = true
				cs.liveN--
				cs.stranded = true
				if res.Partial == nil {
					res.Partial = &PartialResult{Finish: map[int]float64{}}
				}
				res.Partial.Stranded = append(res.Partial.Stranded, StrandedFlow{Coflow: id, Src: f.key.Src, Dst: f.key.Dst, Bytes: b, At: now})
				res.Partial.Bytes += b
				if o != nil {
					o.FlowsStranded.Inc()
					o.StrandedBytes.Add(b)
					if o.TraceEnabled() {
						o.Emit(obs.Event{T: now, Kind: obs.KindFlowStranded, Coflow: id, Src: f.key.Src, Dst: f.key.Dst, Bytes: b})
					}
				}
			}
			if cs.liveN == 0 {
				delete(live, id)
				res.Partial.Finish[id] = now
			}
		}
	}

	admit := func(now float64) bool {
		any := false
		for next < len(arrivalsOrder) && arrivalsOrder[next].Arrival <= now+timeEps {
			c := arrivalsOrder[next]
			next++
			cs := &coflowState{id: c.ID, arrival: c.Arrival}
			merged := map[fabric.FlowKey]float64{}
			for _, f := range c.Flows {
				if f.Bytes > 0 {
					merged[fabric.FlowKey{Src: f.Src, Dst: f.Dst}] += f.Bytes
				}
			}
			if len(merged) == 0 {
				res.CCT[c.ID] = 0
				res.Finish[c.ID] = c.Arrival
				continue
			}
			for k, b := range merged {
				cs.flows = append(cs.flows, &flowState{key: k, rem: b, total: b})
			}
			sort.Slice(cs.flows, func(a, b int) bool {
				if cs.flows[a].key.Src != cs.flows[b].key.Src {
					return cs.flows[a].key.Src < cs.flows[b].key.Src
				}
				return cs.flows[a].key.Dst < cs.flows[b].key.Dst
			})
			cs.liveN = len(cs.flows)
			live[c.ID] = cs
			any = true
			if o != nil {
				o.CoflowsAdmitted.Inc()
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: now, Kind: obs.KindCoflowAdmit, Coflow: c.ID, Src: -1, Dst: -1, Bytes: c.TotalBytes()})
				}
			}
		}
		return any
	}

	// sync brings every live flow's rem forward to time now.
	sync := func(now float64) {
		dt := now - lastSync
		if dt <= 0 {
			lastSync = now
			return
		}
		for _, id := range liveIDs() {
			cs := live[id]
			for _, f := range cs.flows {
				if f.done || f.rate <= 0 {
					continue
				}
				served := math.Min(f.rem, f.rate*dt/8)
				f.rem -= served
				cs.attained += served
				if o != nil {
					o.BytesDelivered.Add(served)
				}
			}
		}
		lastSync = now
	}

	// recompute reallocates rates at time now and rebuilds the event heap.
	recompute := func(now float64) {
		// One measurement feeds the counters and the span, so sched.pass
		// span totals reconcile with sched.seconds exactly.
		var psp *span.Span
		var passStart time.Time
		if o != nil || opts.Prof != nil {
			// Clock first, span second: the span stamps its start no earlier
			// than passStart, so its recorded interval covers its children
			// even when the goroutine is preempted between the two calls.
			passStart = time.Now()
			psp = opts.Prof.Start("sched.pass")
		}
		// Reap flows that a sync drove to completion exactly at an event
		// boundary (their own completion event was invalidated by the
		// generation bump); without this they would idle at zero demand.
		for _, id := range liveIDs() {
			cs := live[id]
			for _, f := range cs.flows {
				if !f.done && f.rem <= byteEps {
					f.rem = 0
					f.done = true
					cs.liveN--
					if o.TraceEnabled() {
						o.Emit(obs.Event{T: now, Kind: obs.KindFlowFinish, Coflow: id, Src: f.key.Src, Dst: f.key.Dst, Bytes: f.total})
					}
				}
			}
			if cs.liveN == 0 {
				delete(live, id)
				if cs.stranded {
					if res.Partial == nil {
						res.Partial = &PartialResult{Finish: map[int]float64{}}
					}
					res.Partial.Finish[id] = now
					continue
				}
				res.Finish[id] = now
				res.CCT[id] = now - cs.arrival
				if o != nil {
					o.CoflowsCompleted.Inc()
					if o.TraceEnabled() {
						o.Emit(obs.Event{T: now, Kind: obs.KindCoflowComplete, Coflow: id, Src: -1, Dst: -1, Dur: now - cs.arrival})
					}
				}
			}
		}

		remaining := make(map[int]map[fabric.FlowKey]float64, len(live))
		attained := make(map[int]float64, len(live))
		arrival := make(map[int]float64, len(live))
		for id, cs := range live {
			m := make(map[fabric.FlowKey]float64, cs.liveN)
			for _, f := range cs.flows {
				if !f.done {
					m[f.key] = f.rem
				}
			}
			remaining[id] = m
			attained[id] = cs.attained
			arrival[id] = cs.arrival
		}
		asp := opts.Prof.Start("alloc")
		rates := alloc.Allocate(remaining, attained, arrival, linkBps, ports)
		asp.Finish()

		gen++
		events = events[:0]
		for _, id := range liveIDs() {
			cs := live[id]
			var totalRate float64
			for _, f := range cs.flows {
				if f.done {
					continue
				}
				f.rate = rates[id][f.key]
				if fm != nil {
					if fm.Down(f.key.Src, now) || fm.Down(f.key.Dst, now) {
						// The port is in an outage: the flow pauses until the
						// boundary recompute restores it.
						f.rate = 0
					} else if fac := fm.RateFactor(id, f.key.Src, f.key.Dst); fac != 1 {
						f.rate *= fac
					}
				}
				totalRate += f.rate
				if f.rate > 0 {
					if !f.started && o.TraceEnabled() {
						f.started = true
						o.Emit(obs.Event{T: now, Kind: obs.KindFlowStart, Coflow: id, Src: f.key.Src, Dst: f.key.Dst})
					}
					fin := now + f.rem*8/f.rate
					seq++
					events = append(events, pktEvent{at: fin, gen: gen, seq: seq, flow: f, cf: cs})
				}
			}
			if notifier != nil && totalRate > 0 {
				if th := notifier.NextThreshold(cs.attained); !math.IsInf(th, 1) {
					cross := now + (th-cs.attained)*8/totalRate
					seq++
					events = append(events, pktEvent{at: cross, gen: gen, seq: seq, cf: cs})
				}
			}
		}
		heap.Init(&events)
		if o != nil || psp != nil {
			d := time.Since(passStart).Seconds()
			psp.FinishWith(d)
			if o != nil {
				o.SchedPasses.Inc()
				o.SchedSeconds.Add(d)
				o.SchedPassTime.Observe(d)
				o.QueueDepth.Set(int64(events.Len()))
			}
		}
	}

	if fm != nil {
		if o.TraceEnabled() {
			o.Emit(obs.Event{T: t, Kind: obs.KindFaultInject, Coflow: -1, Src: -1, Dst: -1})
		}
		portEvents(t)
	}
	admit(t)
	strand(t)
	recompute(t)

	for ev := 0; ; ev++ {
		if ev > maxEvents {
			return res, fmt.Errorf("sim: packet simulation exceeded %d events", maxEvents)
		}
		res.Events = ev

		if len(live) == 0 {
			if next >= len(arrivalsOrder) {
				return res, nil
			}
			t = arrivalsOrder[next].Arrival
			lastSync = t
			portEvents(t)
			admit(t)
			strand(t)
			recompute(t)
			continue
		}

		// Next event: heap top (current generation) or the next arrival.
		var nextEv *pktEvent
		for events.Len() > 0 {
			if events[0].gen != gen {
				heap.Pop(&events)
				continue
			}
			nextEv = &events[0]
			break
		}
		te := math.Inf(1)
		if nextEv != nil {
			te = nextEv.at
		}
		arrivalNext := math.Inf(1)
		if next < len(arrivalsOrder) {
			arrivalNext = arrivalsOrder[next].Arrival
		}
		if fm != nil {
			// A port-outage boundary changes which flows can progress; ties
			// with other events are processed boundary-first so the rate
			// recompute sees the new fabric state.
			if faultNext := fm.NextBoundary(t); !math.IsInf(faultNext, 1) && faultNext <= te && faultNext <= arrivalNext {
				t = faultNext
				sync(t)
				portEvents(t)
				strand(t)
				recompute(t)
				continue
			}
		}
		if arrivalNext <= te {
			if math.IsInf(arrivalNext, 1) {
				return res, fmt.Errorf("%w at t=%.6f (%d live coflows)", ErrStalled, t, len(live))
			}
			t = arrivalNext
			sync(t)
			admit(t)
			strand(t)
			recompute(t)
			continue
		}

		e := heap.Pop(&events).(pktEvent)
		t = e.at
		if e.flow == nil {
			// Threshold crossing: queue demotion changes the allocation.
			sync(t)
			recompute(t)
			continue
		}
		if e.flow.done {
			continue
		}
		// Flow completion at its frozen rate.
		served := e.flow.rem
		e.flow.rem = 0
		e.flow.done = true
		e.cf.attained += served
		e.cf.liveN--
		if o != nil {
			o.BytesDelivered.Add(served)
			if o.TraceEnabled() {
				o.Emit(obs.Event{T: t, Kind: obs.KindFlowFinish, Coflow: e.cf.id, Src: e.flow.key.Src, Dst: e.flow.key.Dst, Bytes: e.flow.total})
			}
		}
		if e.cf.liveN == 0 {
			delete(live, e.cf.id)
			if e.cf.stranded {
				if res.Partial == nil {
					res.Partial = &PartialResult{Finish: map[int]float64{}}
				}
				res.Partial.Finish[e.cf.id] = t
				sync(t)
				recompute(t)
				continue
			}
			res.Finish[e.cf.id] = t
			res.CCT[e.cf.id] = t - e.cf.arrival
			if o != nil {
				o.CoflowsCompleted.Inc()
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: t, Kind: obs.KindCoflowComplete, Coflow: e.cf.id, Src: -1, Dst: -1, Dur: t - e.cf.arrival})
				}
			}
			sync(t)
			recompute(t)
			continue
		}
		if !frozen {
			sync(t)
			recompute(t)
		}
	}
}

// prepare validates the Coflows and returns them sorted by arrival plus an
// id index.
func prepare(coflows []*coflow.Coflow, ports int) ([]*coflow.Coflow, map[int]*coflow.Coflow, error) {
	byID := make(map[int]*coflow.Coflow, len(coflows))
	order := append([]*coflow.Coflow(nil), coflows...)
	for _, c := range order {
		if err := c.Validate(ports); err != nil {
			return nil, nil, err
		}
		if _, dup := byID[c.ID]; dup {
			return nil, nil, fmt.Errorf("sim: duplicate coflow id %d", c.ID)
		}
		byID[c.ID] = c
	}
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Arrival != order[b].Arrival {
			return order[a].Arrival < order[b].Arrival
		}
		return order[a].ID < order[b].ID
	})
	return order, byID, nil
}
