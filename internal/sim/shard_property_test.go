package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
)

// groupedWorkload builds a workload guaranteed to split into (at least)
// groups port-disjoint components: group g's Coflows draw every port from
// [g·span, (g+1)·span). IDs and arrivals interleave across groups and the
// slice is shuffled, so component membership never correlates with input
// position.
func groupedWorkload(rng *rand.Rand, groups, perGroup, span, maxFlows int, horizon float64) []*coflow.Coflow {
	var cs []*coflow.Coflow
	id := 0
	for g := 0; g < groups; g++ {
		lo := g * span
		for k := 0; k < perGroup; k++ {
			c := randomCoflow(rng, span, maxFlows)
			for i := range c.Flows {
				c.Flows[i].Src += lo
				c.Flows[i].Dst += lo
			}
			c.ID = id
			c.Arrival = rng.Float64() * horizon
			id++
			cs = append(cs, c)
		}
	}
	rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
	return cs
}

// shardPlan is streamPlan over an arbitrary port count.
func shardPlan(seed int64, ports int) *fault.Plan {
	plan := &fault.Plan{
		Seed:          seed,
		SetupFailProb: 0.3,
		TransientRate: 0.1, MeanOutage: 0.2, Horizon: 10,
		DegradedLinkProb: 0.2,
		StragglerProb:    0.2,
	}
	if seed%3 == 0 {
		p := int((seed%int64(ports) + int64(ports)) % int64(ports))
		plan.PortFailures = []fault.PortFailure{{Port: p, At: 0.5}}
	}
	return plan
}

func mkFlow(id int, at float64, src, dst int) *coflow.Coflow {
	return coflow.New(id, at, []coflow.Flow{{Src: src, Dst: dst, Bytes: 1e6}})
}

func TestPartition(t *testing.T) {
	t.Run("disjoint_ports_split", func(t *testing.T) {
		cs := []*coflow.Coflow{mkFlow(0, 0, 0, 1), mkFlow(1, 0, 2, 3)}
		if got := Partition(cs, 4); len(got) != 2 {
			t.Fatalf("got %d components, want 2", len(got))
		}
	})
	t.Run("port_is_one_failure_domain", func(t *testing.T) {
		// 0→1 and 1→2 touch port 1 on opposite sides. Bandwidth-wise the
		// sides never contend, but an outage downs the whole port, so the
		// partition must keep both users together.
		cs := []*coflow.Coflow{mkFlow(0, 0, 0, 1), mkFlow(1, 0, 1, 2)}
		if got := Partition(cs, 4); len(got) != 1 {
			t.Fatalf("got %d components, want 1", len(got))
		}
	})
	t.Run("shared_input_port_merges", func(t *testing.T) {
		cs := []*coflow.Coflow{mkFlow(0, 0, 0, 1), mkFlow(1, 0, 0, 3)}
		if got := Partition(cs, 4); len(got) != 1 {
			t.Fatalf("got %d components, want 1", len(got))
		}
	})
	t.Run("shared_output_port_merges", func(t *testing.T) {
		cs := []*coflow.Coflow{mkFlow(0, 0, 0, 2), mkFlow(1, 0, 1, 2)}
		if got := Partition(cs, 4); len(got) != 1 {
			t.Fatalf("got %d components, want 1", len(got))
		}
	})
	t.Run("transitive_chain", func(t *testing.T) {
		// 0→1 and 2→1 share output 1; 2→3 shares input 2 with the second:
		// all three coalesce.
		cs := []*coflow.Coflow{mkFlow(0, 0, 0, 1), mkFlow(1, 0, 2, 1), mkFlow(2, 0, 2, 3)}
		if got := Partition(cs, 4); len(got) != 1 {
			t.Fatalf("got %d components, want 1", len(got))
		}
	})
	t.Run("zero_demand_singleton_and_order", func(t *testing.T) {
		empty := coflow.New(7, 0.5, nil)
		cs := []*coflow.Coflow{mkFlow(0, 0, 0, 1), empty, mkFlow(2, 0, 2, 3), mkFlow(3, 0, 1, 0)}
		got := Partition(cs, 4)
		// Components in first-appearance order: {0,3} (ports {0,1}), {7},
		// {2}; members in input order.
		if len(got) != 3 {
			t.Fatalf("got %d components, want 3", len(got))
		}
		ids := func(comp []*coflow.Coflow) []int {
			var out []int
			for _, c := range comp {
				out = append(out, c.ID)
			}
			return out
		}
		if !reflect.DeepEqual(ids(got[0]), []int{0, 3}) ||
			!reflect.DeepEqual(ids(got[1]), []int{7}) ||
			!reflect.DeepEqual(ids(got[2]), []int{2}) {
			t.Fatalf("components %v %v %v, want [0 3] [7] [2]", ids(got[0]), ids(got[1]), ids(got[2]))
		}
	})
	t.Run("random_components_cover_and_disjoint", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for it := 0; it < 50; it++ {
			cs := groupedWorkload(rng, 3, 3, 4, 4, 2)
			comps := Partition(cs, 12)
			total := 0
			for _, comp := range comps {
				total += len(comp)
			}
			if total != len(cs) {
				t.Fatalf("components cover %d coflows, want %d", total, len(cs))
			}
			for a := range comps {
				for b := a + 1; b < len(comps); b++ {
					ka, kb := componentPorts(comps[a], 12), componentPorts(comps[b], 12)
					for p := 0; p < 12; p++ {
						if ka(p) && kb(p) {
							t.Fatalf("components %d and %d share port %d", a, b, p)
						}
					}
				}
			}
		}
	})
}

// runSharded runs RunCircuitSharded with a traced observer and returns the
// result, trace and merged metric snapshot. Wall-clock metrics — scheduler
// pass timings measured with time.Since — are stripped from the snapshot:
// every other metric is a deterministic function of the simulation.
func runSharded(t *testing.T, cs []*coflow.Coflow, opts CircuitOptions, workers int) (Result, []obs.Event, obs.Snapshot) {
	t.Helper()
	sink := &obs.SliceSink{}
	opts.Obs = obs.NewWith(obs.NewRegistry(), sink)
	res, err := RunCircuitSharded(cs, opts, workers)
	if err != nil {
		t.Fatalf("sharded run (workers=%d) failed: %v", workers, err)
	}
	snap := opts.Obs.Registry().Snapshot()
	for _, name := range []string{
		obs.NameSchedSeconds, obs.NameSchedPassTime, obs.NameIntraSeconds,
		obs.NameIntraFastSeconds, obs.NameIntraRefSeconds,
	} {
		delete(snap, name)
	}
	return res, sink.Events(), snap
}

// TestQuickShardedDeterministicAcrossWorkers is the sharding determinism
// property: results, trace streams, merged metric snapshots and archive
// digests are bit-identical for every worker count, faults included.
func TestQuickShardedDeterministicAcrossWorkers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := groupedWorkload(rng, 3, 4, 4, 5, 2)
		if rng.Intn(3) == 0 {
			cs = append(cs, coflow.New(len(cs), rng.Float64()*2, nil))
		}
		opts := CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01}
		if seed%2 == 0 {
			opts.Faults = shardPlan(seed, 12)
		}

		base, baseEv, baseSnap := runSharded(t, cs, opts, 2)
		for _, workers := range []int{3, 8} {
			res, evs, snap := runSharded(t, cs, opts, workers)
			if !reflect.DeepEqual(base, res) {
				t.Logf("seed %d: results differ between workers=2 and workers=%d", seed, workers)
				return false
			}
			if !sameEvents(baseEv, evs) {
				t.Logf("seed %d: traces differ between workers=2 and workers=%d", seed, workers)
				return false
			}
			if !reflect.DeepEqual(baseSnap, snap) {
				t.Logf("seed %d: metric snapshots differ between workers=2 and workers=%d", seed, workers)
				return false
			}
		}

		digest := func(workers int) string {
			var d ArchiveDigest
			aopts := opts
			aopts.OnArchive = func(a Archived) { d.Add(a) }
			if _, err := RunCircuitSharded(cs, aopts, workers); err != nil {
				t.Logf("seed %d: archive sharded run failed: %v", seed, err)
				return ""
			}
			return d.Sum()
		}
		d2 := digest(2)
		if d2 == "" || d2 != digest(5) {
			t.Logf("seed %d: archive digests differ across worker counts", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShardedMatchesComponentRuns is the merge oracle: the sharded
// result must equal, map for map, what serial RunCircuit produces on each
// component in isolation (under the same port-restricted fault model) merged
// in component order.
func TestQuickShardedMatchesComponentRuns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := groupedWorkload(rng, 3, 3, 4, 4, 2)
		if rng.Intn(3) == 0 {
			cs = append(cs, coflow.New(len(cs), rng.Float64()*2, nil))
		}
		opts := CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01}
		if seed%2 == 0 {
			opts.Faults = shardPlan(seed, 12)
		}

		sharded, err := RunCircuitSharded(cs, opts, 4)
		if err != nil {
			t.Logf("seed %d: sharded run failed: %v", seed, err)
			return false
		}

		// Reproduce the runner's merge by hand: prepare order, partition,
		// per-component serial runs with port-restricted models.
		ordered := append([]*coflow.Coflow(nil), cs...)
		sort.SliceStable(ordered, func(a, b int) bool {
			if ordered[a].Arrival != ordered[b].Arrival {
				return ordered[a].Arrival < ordered[b].Arrival
			}
			return ordered[a].ID < ordered[b].ID
		})
		want := newResult()
		for _, comp := range Partition(ordered, opts.Ports) {
			if len(comp) == 1 && comp[0].TotalBytes() <= 0 {
				want.CCT[comp[0].ID] = 0
				want.Finish[comp[0].ID] = comp[0].Arrival
				continue
			}
			copts := opts
			fm, err := opts.Faults.Compile(opts.Ports)
			if err != nil {
				t.Logf("seed %d: compile failed: %v", seed, err)
				return false
			}
			fm.RestrictPorts(componentPorts(comp, opts.Ports))
			copts.faultModel = fm
			r, err := RunCircuit(comp, copts)
			if err != nil {
				t.Logf("seed %d: component run failed: %v", seed, err)
				return false
			}
			for id, v := range r.CCT {
				want.CCT[id] = v
			}
			for id, v := range r.Finish {
				want.Finish[id] = v
			}
			for id, v := range r.SwitchCount {
				want.SwitchCount[id] = v
			}
			want.Events += r.Events
			if p := r.Partial; p != nil {
				dst := resPartial(&want)
				dst.Stranded = append(dst.Stranded, p.Stranded...)
				dst.Bytes += p.Bytes
				for id, v := range p.Finish {
					dst.Finish[id] = v
				}
			}
		}
		if !reflect.DeepEqual(sharded, want) {
			t.Logf("seed %d: sharded result diverged from merged component runs", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShardedMatchesSerialUncontended is the vs-serial differential on
// workloads with one Coflow per component, where the serial whole-fabric
// schedule and the component-local schedules coincide up to floating-point
// credit-interval splits: completion times agree to tolerance and circuit
// establishment counts exactly. Two caveats bound the oracle (both spelled
// out in the RunCircuitSharded contract and docs/SCALE.md): with several
// live Coflows per component the serial loop can re-sort a component's queue
// at foreign components' events, and fault kinds that surface new
// schedulable demand mid-interval — setup-retry, degraded-link and straggler
// shortfalls — get replanned at the next event, which the denser serial mesh
// reaches earlier. Port outages perturb demand only at outage boundaries,
// which both meshes share, so the plan here injects transient and permanent
// outages only.
func TestQuickShardedMatchesSerialUncontended(t *testing.T) {
	outagePlan := func(seed int64) *fault.Plan {
		plan := &fault.Plan{
			Seed:          seed,
			TransientRate: 0.2, MeanOutage: 0.2, Horizon: 10,
		}
		if seed%3 == 0 {
			p := int((seed%12 + 12) % 12)
			plan.PortFailures = []fault.PortFailure{{Port: p, At: 0.5}}
		}
		return plan
	}
	approx := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := groupedWorkload(rng, 4, 1, 3, 5, 2)
		opts := CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01}
		if seed%2 == 0 {
			opts.Faults = outagePlan(seed)
		}

		serial, err := RunCircuit(cs, opts)
		if err != nil {
			t.Logf("seed %d: serial run failed: %v", seed, err)
			return false
		}
		sharded, err := RunCircuitSharded(cs, opts, 3)
		if err != nil {
			t.Logf("seed %d: sharded run failed: %v", seed, err)
			return false
		}

		if !reflect.DeepEqual(serial.SwitchCount, sharded.SwitchCount) {
			t.Logf("seed %d: switch counts diverged: %v vs %v", seed, serial.SwitchCount, sharded.SwitchCount)
			return false
		}
		cmpMap := func(name string, a, b map[int]float64) bool {
			if len(a) != len(b) {
				t.Logf("seed %d: %s cardinality %d vs %d", seed, name, len(a), len(b))
				return false
			}
			for id, v := range a {
				w, ok := b[id]
				if !ok || !approx(v, w) {
					t.Logf("seed %d: %s[%d] = %v vs %v", seed, name, id, v, w)
					return false
				}
			}
			return true
		}
		if !cmpMap("CCT", serial.CCT, sharded.CCT) || !cmpMap("Finish", serial.Finish, sharded.Finish) {
			return false
		}
		if (serial.Partial == nil) != (sharded.Partial == nil) {
			t.Logf("seed %d: partial presence diverged", seed)
			return false
		}
		if serial.Partial != nil {
			a, b := serial.Partial, sharded.Partial
			if !approx(a.Bytes, b.Bytes) || !cmpMap("Partial.Finish", a.Finish, b.Finish) {
				return false
			}
			if len(a.Stranded) != len(b.Stranded) {
				t.Logf("seed %d: stranded %d vs %d flows", seed, len(a.Stranded), len(b.Stranded))
				return false
			}
			sa := append([]StrandedFlow(nil), a.Stranded...)
			sb := append([]StrandedFlow(nil), b.Stranded...)
			sortStranded(sa)
			sortStranded(sb)
			for i := range sa {
				if sa[i].Coflow != sb[i].Coflow || sa[i].Src != sb[i].Src || sa[i].Dst != sb[i].Dst ||
					!approx(sa[i].At, sb[i].At) || !approx(sa[i].Bytes, sb[i].Bytes) {
					t.Logf("seed %d: stranded flow %d diverged: %+v vs %+v", seed, i, sa[i], sb[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSerialFallbacks: configurations the sharded runner cannot split
// must take the serial path and return bit-identical results.
func TestShardedSerialFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cs := groupedWorkload(rng, 3, 3, 4, 4, 2)

	cases := map[string]CircuitOptions{
		"fair_windows": {Ports: 12, LinkBps: gbps, Delta: 0.01,
			Fair: &core.FairWindows{N: 12, T: 1.0, Tau: 0.1}},
		"fail_first_setups": {Ports: 12, LinkBps: gbps, Delta: 0.01,
			Faults: &fault.Plan{Seed: 1, FailFirstSetups: 2}},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			want, err := RunCircuit(cs, opts)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			got, err := RunCircuitSharded(cs, opts, 4)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("fallback result differs from serial")
			}
		})
	}
	t.Run("single_worker", func(t *testing.T) {
		opts := CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01}
		want, err := RunCircuit(cs, opts)
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		got, err := RunCircuitSharded(cs, opts, 1)
		if err != nil {
			t.Fatalf("sharded: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("workers=1 result differs from serial")
		}
	})
	t.Run("single_component", func(t *testing.T) {
		// Random 5-port workloads almost surely collapse into one component.
		one := randomWorkload(rng, 6, 5, 6, 2)
		if n := len(Partition(one, 5)); n != 1 {
			t.Skipf("workload split into %d components", n)
		}
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01}
		want, err := RunCircuit(one, opts)
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		got, err := RunCircuitSharded(one, opts, 4)
		if err != nil {
			t.Fatalf("sharded: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("single-component result differs from serial")
		}
	})
}
