package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
)

// streamPlan builds a seeded fault plan mixing transient outages, setup
// failures, degraded links and stragglers; every third seed adds a permanent
// port failure so the stranded/Partial path is exercised too.
func streamPlan(seed int64) *fault.Plan {
	plan := &fault.Plan{
		Seed:          seed,
		SetupFailProb: 0.3,
		TransientRate: 0.1, MeanOutage: 0.2, Horizon: 10,
		DegradedLinkProb: 0.2,
		StragglerProb:    0.2,
	}
	if seed%3 == 0 {
		plan.PortFailures = []fault.PortFailure{{Port: int((seed%5 + 5) % 5), At: 0.5}}
	}
	return plan
}

// streamWorkload is randomWorkload plus an occasional zero-demand Coflow so
// the instant-retire admission path is covered.
func streamWorkload(rng *rand.Rand, n, ports, maxFlows int, horizon float64) []*coflow.Coflow {
	cs := randomWorkload(rng, n, ports, maxFlows, horizon)
	if rng.Intn(3) == 0 {
		cs = append(cs, coflow.New(n, rng.Float64()*horizon, nil))
	}
	return cs
}

// TestQuickSourceBitIdenticalToSlice is the streaming acceptance property:
// pulling the workload Coflow-by-Coflow through RunCircuitSource must leave
// results and the trace stream bit-identical to the retained RunCircuit
// path, fault plans included.
func TestQuickSourceBitIdenticalToSlice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := streamWorkload(rng, 6, 5, 6, 2)
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01}
		if seed%2 == 0 {
			opts.Faults = streamPlan(seed)
		}

		a, aEv := tracedCircuit(t, cs, opts)

		sink := &obs.SliceSink{}
		sopts := opts
		sopts.Obs = obs.NewWith(obs.NewRegistry(), sink)
		b, err := RunCircuitSource(SliceSource(cs), sopts)
		if err != nil {
			t.Logf("seed %d: source run failed: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(a, b) && sameEvents(aEv, sink.Events())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickArchiveMatchesRetained is the bounded-memory acceptance property:
// the compact records OnArchive mode retires must be reflect.DeepEqual-exact
// with what the retained full-memory path records in its Result maps, across
// seeded workloads with fault plans, and archive mode must not perturb the
// trace stream.
func TestQuickArchiveMatchesRetained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := streamWorkload(rng, 6, 5, 6, 2)
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01}
		if seed%2 == 0 {
			opts.Faults = streamPlan(seed)
		}

		retained, retEv := tracedCircuit(t, cs, opts)

		var recs []Archived
		sink := &obs.SliceSink{}
		aopts := opts
		aopts.Obs = obs.NewWith(obs.NewRegistry(), sink)
		aopts.OnArchive = func(a Archived) { recs = append(recs, a) }
		ares, err := RunCircuitSource(SliceSource(cs), aopts)
		if err != nil {
			t.Logf("seed %d: archive run failed: %v", seed, err)
			return false
		}
		if len(ares.CCT) != 0 || len(ares.Finish) != 0 || len(ares.SwitchCount) != 0 {
			t.Logf("seed %d: archive mode filled the Result maps", seed)
			return false
		}
		if ares.Events != retained.Events || !reflect.DeepEqual(ares.Partial, retained.Partial) {
			t.Logf("seed %d: events/partial diverged", seed)
			return false
		}
		if !sameEvents(retEv, sink.Events()) {
			t.Logf("seed %d: trace stream diverged", seed)
			return false
		}

		// Rebuild the Result maps from the archive records; they must be
		// exact. SwitchCount is compared over completed Coflows: the retained
		// map also counts establishments for Coflows that later stranded into
		// the PartialResult, which never archive.
		gotCCT := make(map[int]float64, len(recs))
		gotFinish := make(map[int]float64, len(recs))
		gotSwitch := map[int]int{}
		byID := map[int]*coflow.Coflow{}
		for _, c := range cs {
			byID[c.ID] = c
		}
		for _, a := range recs {
			if _, dup := gotCCT[a.ID]; dup {
				t.Logf("seed %d: coflow %d archived twice", seed, a.ID)
				return false
			}
			gotCCT[a.ID] = a.CCT
			gotFinish[a.ID] = a.Finish
			if a.Switches != 0 {
				gotSwitch[a.ID] = a.Switches
			}
			c := byID[a.ID]
			if c == nil || a.Arrival != c.Arrival {
				t.Logf("seed %d: record %d carries wrong arrival", seed, a.ID)
				return false
			}
			var want float64
			for _, fl := range c.Flows {
				if fl.Bytes > 0 {
					want += fl.Bytes
				}
			}
			if a.Bytes != want {
				t.Logf("seed %d: record %d bytes = %v, want %v", seed, a.ID, a.Bytes, want)
				return false
			}
		}
		if !reflect.DeepEqual(gotCCT, retained.CCT) || !reflect.DeepEqual(gotFinish, retained.Finish) {
			t.Logf("seed %d: archived CCT/Finish diverged from retained maps", seed)
			return false
		}
		if retained.Partial == nil {
			if !reflect.DeepEqual(gotSwitch, retained.SwitchCount) {
				t.Logf("seed %d: archived switch counts diverged", seed)
				return false
			}
		} else {
			for id := range retained.CCT {
				if gotSwitch[id] != retained.SwitchCount[id] {
					t.Logf("seed %d: coflow %d switches %d, want %d", seed, id, gotSwitch[id], retained.SwitchCount[id])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickArchiveDigestOrderIndependent: the digest is a set fingerprint —
// any permutation of the same records folds to the same sum, and any single
// bit of difference changes it.
func TestQuickArchiveDigestOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		recs := make([]Archived, n)
		for i := range recs {
			recs[i] = Archived{
				ID:       i,
				Arrival:  rng.Float64(),
				Finish:   rng.Float64() * 10,
				CCT:      rng.Float64(),
				Bytes:    rng.Float64() * 1e9,
				Switches: rng.Intn(50),
			}
		}
		var a ArchiveDigest
		for _, r := range recs {
			a.Add(r)
		}
		perm := rng.Perm(n)
		var b ArchiveDigest
		for _, i := range perm {
			b.Add(recs[i])
		}
		if a.Sum() != b.Sum() || a.Count() != n {
			return false
		}
		var c ArchiveDigest
		for i, r := range recs {
			if i == n/2 {
				r.Switches++
			}
			c.Add(r)
		}
		return c.Sum() != a.Sum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSourceRejectsBadStreams: invalid, out-of-order and duplicate Coflows
// surface as errors from the streamed path.
func TestSourceRejectsBadStreams(t *testing.T) {
	opts := CircuitOptions{Ports: 4, LinkBps: gbps, Delta: 0.01}
	mk := func(id int, at float64) *coflow.Coflow {
		return coflow.New(id, at, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 1e6}})
	}

	t.Run("out_of_order", func(t *testing.T) {
		src := &sliceSource{cs: []*coflow.Coflow{mk(1, 1.0), mk(2, 0.5)}}
		if _, err := RunCircuitSource(src, opts); err == nil {
			t.Fatal("out-of-order source must fail")
		}
	})
	t.Run("duplicate_id_same_arrival", func(t *testing.T) {
		src := &sliceSource{cs: []*coflow.Coflow{mk(1, 0.5), mk(1, 0.5)}}
		if _, err := RunCircuitSource(src, opts); err == nil {
			t.Fatal("duplicate id must fail")
		}
	})
	t.Run("duplicate_id_while_live", func(t *testing.T) {
		src := &sliceSource{cs: []*coflow.Coflow{mk(1, 0.0), mk(1, 1e-12)}}
		if _, err := RunCircuitSource(src, opts); err == nil {
			t.Fatal("duplicate live id must fail")
		}
	})
	t.Run("invalid_port", func(t *testing.T) {
		bad := coflow.New(1, 0, []coflow.Flow{{Src: 9, Dst: 1, Bytes: 1e6}})
		src := &sliceSource{cs: []*coflow.Coflow{bad}}
		if _, err := RunCircuitSource(src, opts); err == nil {
			t.Fatal("invalid coflow must fail")
		}
	})
}
