package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/obs/replay"
	"sunflow/internal/varys"
)

// tracedCircuit runs the circuit simulator with a buffering sink and returns
// the result plus the captured event stream.
func tracedCircuit(t *testing.T, cs []*coflow.Coflow, opts CircuitOptions) (Result, []obs.Event) {
	t.Helper()
	sink := &obs.SliceSink{}
	opts.Obs = obs.NewWith(obs.NewRegistry(), sink)
	res, err := RunCircuit(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, sink.Events()
}

func tracedPacket(t *testing.T, cs []*coflow.Coflow, opts PacketOptions) (Result, []obs.Event) {
	t.Helper()
	sink := &obs.SliceSink{}
	opts.Obs = obs.NewWith(obs.NewRegistry(), sink)
	res, err := RunPacketOpts(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, sink.Events()
}

func sameResult(a, b Result) bool {
	if len(a.CCT) != len(b.CCT) {
		return false
	}
	for id, v := range a.CCT {
		if b.CCT[id] != v {
			return false
		}
	}
	for id, v := range a.Finish {
		if b.Finish[id] != v {
			return false
		}
	}
	return true
}

func sameEvents(a, b []obs.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestQuickZeroPlanBitExact is the acceptance property: a present-but-zero
// FaultPlan must leave both simulators bit-identical to the fault-free
// baseline — same CCTs, same Finish instants, same trace event stream.
func TestQuickZeroPlanBitExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 6, 5, 6, 2)

		base, baseEv := tracedCircuit(t, cs, CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01})
		zero, zeroEv := tracedCircuit(t, cs, CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01, Faults: &fault.Plan{Seed: seed}})
		if !sameResult(base, zero) || !sameEvents(baseEv, zeroEv) || zero.Partial != nil {
			return false
		}

		pbase, pbaseEv := tracedPacket(t, cs, PacketOptions{Ports: 5, LinkBps: gbps, Alloc: varys.Allocator{}})
		pzero, pzeroEv := tracedPacket(t, cs, PacketOptions{Ports: 5, LinkBps: gbps, Alloc: varys.Allocator{}, Faults: &fault.Plan{Seed: seed}})
		return sameResult(pbase, pzero) && sameEvents(pbaseEv, pzeroEv) && pzero.Partial == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeededFaultsDeterministic: the same plan replayed on the same
// workload reproduces the run exactly, events included.
func TestQuickSeededFaultsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 6, 5, 6, 2)
		plan := &fault.Plan{
			Seed:          seed,
			SetupFailProb: 0.3,
			TransientRate: 0.1, MeanOutage: 0.2, Horizon: 10,
			DegradedLinkProb: 0.2,
			StragglerProb:    0.2,
		}
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01, Faults: plan}
		a, aEv := tracedCircuit(t, cs, opts)
		b, bEv := tracedCircuit(t, cs, opts)
		if !sameResult(a, b) || !sameEvents(aEv, bEv) {
			return false
		}
		popts := PacketOptions{Ports: 5, LinkBps: gbps, Alloc: varys.Allocator{}, Faults: plan}
		pa, paEv := tracedPacket(t, cs, popts)
		pb, pbEv := tracedPacket(t, cs, popts)
		return sameResult(pa, pb) && sameEvents(paEv, pbEv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCircuitRetryChargesDelta: two scripted setup failures on a one-flow
// workload cost exactly 5δ over the baseline CCT (δ+δ failed attempt,
// δ+2δ backoffs, δ success = 6δ total setup vs the baseline's 1δ), and the
// trace shows each retry with the per-attempt δ.
func TestCircuitRetryChargesDelta(t *testing.T) {
	const delta = 0.01
	cs := func() []*coflow.Coflow {
		c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 5e6}})
		return []*coflow.Coflow{c.Normalize()}
	}

	base, err := RunCircuit(cs(), CircuitOptions{Ports: 2, LinkBps: gbps, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	faulty, ev := tracedCircuit(t, cs(), CircuitOptions{
		Ports: 2, LinkBps: gbps, Delta: delta,
		Faults: &fault.Plan{FailFirstSetups: 2},
	})
	got, want := faulty.CCT[1]-base.CCT[1], 5*delta
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("retry overhead = %v, want 5δ = %v", got, want)
	}
	retries := 0
	for _, e := range ev {
		if e.Kind == obs.KindCircuitRetry {
			retries++
			if e.Dur != delta {
				t.Fatalf("retry event Dur = %v, want per-attempt δ %v", e.Dur, delta)
			}
		}
	}
	if retries != 2 {
		t.Fatalf("retry events = %d, want 2", retries)
	}
	if v := replay.Lint(ev); len(v) != 0 {
		t.Fatalf("retried trace has lint violations: %v", v)
	}
}

// TestPermanentFailureQuarantines: a port that dies forever strands the
// flows that need it into PartialResult, the rest of the workload completes,
// and the emitted trace stays lint-clean.
func TestPermanentFailureQuarantines(t *testing.T) {
	mk := func() []*coflow.Coflow {
		doomed := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 80e6}})
		fine := coflow.New(2, 0, []coflow.Flow{{Src: 2, Dst: 3, Bytes: 40e6}})
		return []*coflow.Coflow{doomed.Normalize(), fine.Normalize()}
	}
	plan := &fault.Plan{PortFailures: []fault.PortFailure{{Port: 1, At: 0.02}}}

	for name, run := range map[string]func() (Result, []obs.Event){
		"circuit": func() (Result, []obs.Event) {
			return tracedCircuit(t, mk(), CircuitOptions{Ports: 4, LinkBps: gbps, Delta: 0.01, Faults: plan})
		},
		"packet": func() (Result, []obs.Event) {
			return tracedPacket(t, mk(), PacketOptions{Ports: 4, LinkBps: gbps, Alloc: fabric.FairSharing{}, Faults: plan})
		},
	} {
		res, ev := run()
		if !res.Partial.Degraded() {
			t.Fatalf("%s: no PartialResult despite a dead port", name)
		}
		if _, ok := res.CCT[1]; ok {
			t.Fatalf("%s: quarantined coflow 1 still has a CCT", name)
		}
		if res.Partial.Bytes <= 0 {
			t.Fatalf("%s: stranded bytes = %v", name, res.Partial.Bytes)
		}
		for _, s := range res.Partial.Stranded {
			if s.Coflow != 1 {
				t.Fatalf("%s: stranded wrong coflow: %+v", name, s)
			}
		}
		if _, ok := res.CCT[2]; !ok {
			t.Fatalf("%s: unaffected coflow 2 did not complete", name)
		}
		stranded, downs := 0, 0
		for _, e := range ev {
			switch e.Kind {
			case obs.KindFlowStranded:
				stranded++
			case obs.KindPortDown:
				downs++
			}
		}
		if stranded == 0 || downs == 0 {
			t.Fatalf("%s: trace missing fault events (stranded=%d downs=%d)", name, stranded, downs)
		}
		if v := replay.Lint(ev); len(v) != 0 {
			t.Fatalf("%s: trace has lint violations: %v", name, v)
		}
	}
}

// TestQuickReferencePathBitExact is the sim-layer differential property for
// the event-driven scheduler fast path: across random workloads and seeded
// fault plans — setup failures, transient outages, degraded links,
// stragglers, permanent port deaths — a run planned by the fast path must be
// bit-identical to one planned by the scan-based reference, down to the
// trace event stream and the stranded-flow accounting. The trace being
// path-invariant is what lets obs.IntraFastSeconds/IntraRefSeconds be the
// only record of which planner ran.
func TestQuickReferencePathBitExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 6, 5, 6, 2)
		var plan *fault.Plan
		if rng.Intn(3) > 0 {
			plan = &fault.Plan{
				Seed:          seed,
				SetupFailProb: 0.3,
				TransientRate: 0.15, MeanOutage: 0.25, Horizon: 8,
				DegradedLinkProb: 0.25,
				StragglerProb:    0.25,
			}
		}
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01, Faults: plan}
		// Fair windows and permanent port deaths are mutually exclusive here:
		// a +Inf outage under a recurring blackout keeps the scheduler alive
		// forever (each window end is a finite next event, so ErrStalled — and
		// with it the quarantine path — never fires). Both planner paths share
		// that behavior, so the differential property draws one or the other.
		if plan != nil && rng.Intn(4) == 0 {
			plan.PortFailures = []fault.PortFailure{{Port: rng.Intn(5), At: rng.Float64() * 2}}
		} else if rng.Intn(3) == 0 {
			opts.Fair = &core.FairWindows{N: 5, T: 1, Tau: 0.05}
		}
		fast, fastEv := tracedCircuit(t, cs, opts)
		ref := opts
		ref.Reference = true
		want, wantEv := tracedCircuit(t, cs, ref)
		if !sameResult(fast, want) || !sameEvents(fastEv, wantEv) {
			t.Logf("seed %d: fast/reference divergence", seed)
			return false
		}
		if (fast.Partial == nil) != (want.Partial == nil) {
			return false
		}
		if fast.Partial != nil && len(fast.Partial.Stranded) != len(want.Partial.Stranded) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFaultyRunsLintClean: whatever a seeded fault plan does to a random
// workload, the emitted trace must satisfy every replay invariant, all CCTs
// stay finite, and every coflow lands in exactly one of CCT or Partial.
func TestQuickFaultyRunsLintClean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 5, 4, 5, 2)
		plan := &fault.Plan{
			Seed:          seed,
			SetupFailProb: 0.4,
			TransientRate: 0.2, MeanOutage: 0.3, Horizon: 8,
			DegradedLinkProb: 0.3,
			StragglerProb:    0.3,
		}
		res, ev := tracedCircuit(t, cs, CircuitOptions{Ports: 4, LinkBps: gbps, Delta: 0.01, Faults: plan})
		if len(replay.Lint(ev)) != 0 {
			return false
		}
		quarantined := map[int]bool{}
		if res.Partial != nil {
			for _, s := range res.Partial.Stranded {
				quarantined[s.Coflow] = true
			}
		}
		for _, c := range cs {
			cct, done := res.CCT[c.ID]
			if done == quarantined[c.ID] {
				return false // must be exactly one of completed / quarantined
			}
			if done && (math.IsNaN(cct) || math.IsInf(cct, 0) || cct < 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
