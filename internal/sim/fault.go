package sim

import (
	"math"
	"sort"

	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/obs"
)

// StrandedFlow is one flow quarantined because a permanent port failure left
// it unroutable.
type StrandedFlow struct {
	// Coflow, Src and Dst identify the flow.
	Coflow, Src, Dst int
	// Bytes is the demand still unserved when the flow was stranded.
	Bytes float64
	// At is the simulation time the flow was quarantined.
	At float64
}

// PartialResult reports the demand a faulty fabric could not serve. A run
// that strands flows still completes: every routable byte is delivered and
// every fully-routable Coflow gets a CCT, while quarantined Coflows are
// accounted here instead of aborting the simulation.
type PartialResult struct {
	// Stranded lists the quarantined flows in the order they were stranded.
	Stranded []StrandedFlow
	// Finish maps each partially-served Coflow to the instant its routable
	// demand drained. These ids never appear in Result.CCT.
	Finish map[int]float64
	// Bytes is the total demand stranded across all flows.
	Bytes float64
}

// Degraded reports whether any flow was stranded (nil-safe).
func (p *PartialResult) Degraded() bool { return p != nil && len(p.Stranded) > 0 }

// partial returns the result's PartialResult, allocating it on first use.
func (s *circuitState) partial() *PartialResult {
	if s.res.Partial == nil {
		s.res.Partial = &PartialResult{Finish: map[int]float64{}}
	}
	return s.res.Partial
}

// rateFactor returns the effective bandwidth multiplier for the reservation's
// flow: 1 on a fault-free run.
func (s *circuitState) rateFactor(r *core.Reservation) float64 {
	if s.faults == nil {
		return 1
	}
	return s.faults.RateFactor(r.CoflowID, r.In, r.Out)
}

// transmittedAt mirrors Reservation.TransmittedBy at an effective bandwidth
// that may be lower than the one the reservation was sized for: delivery
// clamps at the reservation end rather than at Bytes, so a degraded circuit
// releases its ports with demand unserved.
func transmittedAt(r *core.Reservation, t, bps float64) float64 {
	ts := r.TransmitStart()
	if t <= ts {
		return 0
	}
	if t > r.End {
		t = r.End
	}
	return math.Min(r.Bytes, (t-ts)*bps/8)
}

// resFutureBytes returns how many bytes the locked reservation will still
// deliver after now, at its effective (possibly degraded) rate.
func (s *circuitState) resFutureBytes(r *core.Reservation, now float64) float64 {
	if s.faults != nil {
		if f := s.faults.RateFactor(r.CoflowID, r.In, r.Out); f != 1 {
			bps := s.opts.LinkBps * f
			return transmittedAt(r, r.End, bps) - transmittedAt(r, now, bps)
		}
	}
	return r.Bytes - r.TransmittedBy(now, s.opts.LinkBps)
}

// establishFaulty consults the fault model at the instant a circuit pays its
// setup: failed attempts each re-pay δ (with exponential backoff, also in δ
// units), stretching the effective setup and shrinking the capacity the hold
// has left. It mutates the reservation in place before the establishment is
// counted, so counters and the circuit_up event see the stretched values. The
// returned offsets (from the hold start, one per failed attempt) let the
// caller emit circuit_retry events after the circuit_up that owns them.
func (s *circuitState) establishFaulty(r *core.Reservation) []float64 {
	out := s.faults.Setup(r.CoflowID, r.In, r.Out, r.End-r.Start, r.Setup)
	if out.Established && len(out.Retries) == 0 {
		return nil
	}
	extra := out.Setup - r.Setup
	bytes := r.Bytes - extra*s.opts.LinkBps/8
	if !out.Established || bytes < 0 {
		bytes = 0
	}
	if o := s.opts.Obs; o != nil {
		o.CircuitRetries.Add(int64(len(out.Retries)))
		o.RetrySeconds.Add(extra)
	}
	r.Setup = out.Setup
	r.Bytes = bytes
	return out.Retries
}

// syncFaults applies every outage boundary in (faultCursor, upTo]: port
// up/down events are emitted and circuits in flight across a failing port are
// truncated at the failure instant.
func (s *circuitState) syncFaults(upTo float64) {
	if s.faults == nil {
		return
	}
	for {
		bt := s.faults.NextBoundary(s.faultCursor)
		if math.IsInf(bt, 1) || bt > upTo+timeEps {
			return
		}
		s.faultCursor = bt
		s.applyFaultBoundary(bt)
	}
}

// applyFaultBoundary handles the outage edges coinciding with time bt.
func (s *circuitState) applyFaultBoundary(bt float64) {
	down, up := s.faults.BoundariesAt(bt)
	o := s.opts.Obs
	for _, og := range up {
		if o.TraceEnabled() {
			o.Emit(obs.Event{T: bt, Kind: obs.KindPortUp, Coflow: -1, Src: og.Port, Dst: -1})
		}
	}
	for _, og := range down {
		if o != nil {
			o.PortDowns.Inc()
			if o.TraceEnabled() {
				dur := 0.0
				if !og.Permanent() {
					dur = og.End - og.Start
				}
				o.Emit(obs.Event{T: bt, Kind: obs.KindPortDown, Coflow: -1, Src: og.Port, Dst: -1, Dur: dur})
			}
		}
		s.truncatePort(og.Port, bt)
	}
}

// truncatePort invalidates the in-flight portion of every established circuit
// touching a port that just failed: the circuit is released at bt, its
// undelivered capacity is returned to the replanner, and the counters are
// corrected for the hold time that will never happen.
func (s *circuitState) truncatePort(port int, bt float64) {
	o := s.opts.Obs
	for idx := range s.plan {
		r := &s.plan[idx]
		if r.In != port && r.Out != port {
			continue
		}
		// Only circuits already established and still holding past bt; the
		// replan following this boundary discards un-established ones.
		if r.Start >= bt-timeEps || r.End <= bt+timeEps {
			continue
		}
		bps := s.opts.LinkBps * s.rateFactor(r)
		delivered := transmittedAt(r, bt, bps)
		if o != nil {
			o.HoldSeconds.Add(bt - r.End)
			o.PlannedBytes.Add(delivered - r.Bytes)
			o.InBusySeconds.Add(r.In, bt-r.End)
			o.OutBusySeconds.Add(r.Out, bt-r.End)
			if o.TraceEnabled() {
				o.Emit(obs.Event{T: bt, Kind: obs.KindCircuitDown, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
			}
		}
		r.End = bt
		if delivered < r.Bytes {
			r.Bytes = delivered
		}
		if r.Setup > bt-r.Start {
			// The port died during reconfiguration: the truncated hold is
			// all setup and the circuit never carried a byte.
			if o != nil {
				o.SetupSeconds.Add((bt - r.Start) - r.Setup)
			}
			r.Setup = bt - r.Start
		}
	}
}

// quarantine strands every live flow whose source or destination port is
// permanently dead as of now. Iteration is sorted so trace output is
// deterministic.
func (s *circuitState) quarantine(now float64) {
	if s.faults == nil || !s.faults.AnyPermanent() {
		return
	}
	for _, id := range sortedLiveIDs(s.live) {
		s.strandFlows(s.live[id], now, func(k fabric.FlowKey) bool {
			return s.faults.PermanentlyDown(k.Src, now) || s.faults.PermanentlyDown(k.Dst, now)
		})
	}
}

// strandDoomed quarantines the Coflow's flows touching any port with a
// permanent failure anywhere on the horizon — the repair of last resort when
// a scheduling pass stalls against the degraded table. It reports whether
// anything was stranded (false means the stall has another cause).
func (s *circuitState) strandDoomed(lc *liveCoflow, now float64) bool {
	return s.strandFlows(lc, now, func(k fabric.FlowKey) bool {
		return !math.IsInf(s.faults.PermanentFrom(k.Src), 1) ||
			!math.IsInf(s.faults.PermanentFrom(k.Dst), 1)
	})
}

// strandFlows removes from the live Coflow every unfinished flow matching
// cond, recording each in the PartialResult.
func (s *circuitState) strandFlows(lc *liveCoflow, now float64, cond func(fabric.FlowKey) bool) bool {
	keys := make([]fabric.FlowKey, 0, len(lc.rem))
	for k := range lc.rem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Src != keys[b].Src {
			return keys[a].Src < keys[b].Src
		}
		return keys[a].Dst < keys[b].Dst
	})
	any := false
	for _, k := range keys {
		b := lc.rem[k]
		if b <= byteEps || !cond(k) {
			continue
		}
		any = true
		lc.stranded = true
		delete(lc.rem, k)
		delete(lc.base, k)
		p := s.partial()
		p.Stranded = append(p.Stranded, StrandedFlow{Coflow: lc.c.ID, Src: k.Src, Dst: k.Dst, Bytes: b, At: now})
		p.Bytes += b
		if o := s.opts.Obs; o != nil {
			o.FlowsStranded.Inc()
			o.StrandedBytes.Add(b)
			if o.TraceEnabled() {
				o.Emit(obs.Event{T: now, Kind: obs.KindFlowStranded, Coflow: lc.c.ID, Src: k.Src, Dst: k.Dst, Bytes: b})
			}
		}
	}
	return any
}

// sortedLiveIDs returns the live Coflow ids in ascending order.
func sortedLiveIDs(live map[int]*liveCoflow) []int {
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
