package sim

import (
	"math"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/obs"
	"sunflow/internal/trace"
	"sunflow/internal/varys"
)

// obsWorkload is a deterministic multi-Coflow workload exercising circuit
// reuse, replanning and queueing.
func obsWorkload() []*coflow.Coflow {
	return trace.Generator{Ports: 12, Coflows: 15, MaxWidth: 5, Seed: 7}.Trace().Coflows
}

func workloadBytes(cs []*coflow.Coflow) float64 {
	var sum float64
	for _, c := range cs {
		sum += c.TotalBytes()
	}
	return sum
}

func workloadFlows(cs []*coflow.Coflow) int {
	n := 0
	for _, c := range cs {
		n += c.NumFlows()
	}
	return n
}

// TestCircuitObsReconciles checks the observability layer against the
// circuit simulator's own ground truth: every byte of demand is counted
// delivered exactly once, every switch is one circuit_up event, and the
// Coflow/flow lifecycles balance.
func TestCircuitObsReconciles(t *testing.T) {
	cs := obsWorkload()
	sink := &obs.SliceSink{}
	o := obs.NewWith(obs.NewRegistry(), sink)
	res, err := RunCircuit(cs, CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01, Obs: o})
	if err != nil {
		t.Fatal(err)
	}

	want := workloadBytes(cs)
	if got := o.BytesDelivered.Load(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("BytesDelivered = %v, workload carries %v", got, want)
	}

	switches := 0
	for _, n := range res.SwitchCount {
		switches += n
	}
	if got := o.CircuitSetups.Load(); got != int64(switches) {
		t.Errorf("CircuitSetups = %d, simulator counted %d switches", got, switches)
	}
	if got := sink.Count(obs.KindCircuitUp); got != switches {
		t.Errorf("circuit_up events = %d, want %d", got, switches)
	}
	if got := sink.Count(obs.KindCircuitDown); got != switches {
		t.Errorf("circuit_down events = %d, want %d (every circuit must come down)", got, switches)
	}
	// Every establishment pays exactly δ.
	if got, wantSetup := o.SetupSeconds.Load(), 0.01*float64(switches); math.Abs(got-wantSetup) > 1e-9*float64(switches+1) {
		t.Errorf("SetupSeconds = %v, want δ·switches = %v", got, wantSetup)
	}

	n := int64(len(cs))
	if o.CoflowsAdmitted.Load() != n || o.CoflowsCompleted.Load() != n {
		t.Errorf("admitted %d completed %d, want %d each",
			o.CoflowsAdmitted.Load(), o.CoflowsCompleted.Load(), n)
	}
	if sink.Count(obs.KindCoflowAdmit) != len(cs) || sink.Count(obs.KindCoflowComplete) != len(cs) {
		t.Errorf("admit events %d complete events %d, want %d each",
			sink.Count(obs.KindCoflowAdmit), sink.Count(obs.KindCoflowComplete), len(cs))
	}

	flows := workloadFlows(cs)
	if sink.Count(obs.KindFlowStart) != flows || sink.Count(obs.KindFlowFinish) != flows {
		t.Errorf("flow_start %d flow_finish %d, want %d each",
			sink.Count(obs.KindFlowStart), sink.Count(obs.KindFlowFinish), flows)
	}
}

// TestPacketObsReconciles checks the same invariants on the packet
// simulator (no circuits there, only flow and Coflow lifecycle and bytes).
func TestPacketObsReconciles(t *testing.T) {
	cs := obsWorkload()
	sink := &obs.SliceSink{}
	o := obs.NewWith(obs.NewRegistry(), sink)
	_, err := RunPacketObs(cs, 12, gbps, varys.Allocator{}, o)
	if err != nil {
		t.Fatal(err)
	}

	want := workloadBytes(cs)
	if got := o.BytesDelivered.Load(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("BytesDelivered = %v, workload carries %v", got, want)
	}
	if o.CircuitSetups.Load() != 0 {
		t.Errorf("packet fabric counted %d circuit setups", o.CircuitSetups.Load())
	}
	n := int64(len(cs))
	if o.CoflowsAdmitted.Load() != n || o.CoflowsCompleted.Load() != n {
		t.Errorf("admitted %d completed %d, want %d each",
			o.CoflowsAdmitted.Load(), o.CoflowsCompleted.Load(), n)
	}
	flows := workloadFlows(cs)
	if sink.Count(obs.KindFlowStart) != flows || sink.Count(obs.KindFlowFinish) != flows {
		t.Errorf("flow_start %d flow_finish %d, want %d each",
			sink.Count(obs.KindFlowStart), sink.Count(obs.KindFlowFinish), flows)
	}
	if o.SchedPasses.Load() == 0 || o.SimEvents.Load() == 0 {
		t.Errorf("scheduler passes %d, sim events %d — expected both nonzero",
			o.SchedPasses.Load(), o.SimEvents.Load())
	}
}

// TestCircuitObsDisabledMatchesEnabled guards the zero-overhead contract's
// correctness half: instrumentation must not change simulation results.
func TestCircuitObsDisabledMatchesEnabled(t *testing.T) {
	cs := obsWorkload()
	plain, err := RunCircuit(cs, CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunCircuit(cs, CircuitOptions{Ports: 12, LinkBps: gbps, Delta: 0.01, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for id, cct := range plain.CCT {
		if observed.CCT[id] != cct {
			t.Errorf("coflow %d: CCT %v with obs, %v without", id, observed.CCT[id], cct)
		}
	}
	if plain.Events != observed.Events {
		t.Errorf("event counts differ: %d vs %d", plain.Events, observed.Events)
	}
}
