package sim

import (
	"fmt"
	"math"
	"sort"

	"sunflow/internal/coflow"
)

// Source streams Coflows into the circuit simulator in nondecreasing
// (Arrival, ID) order — the order prepare establishes for the in-memory
// path. Next returns the next Coflow, or (nil, nil) at end of stream. A
// Source is pulled lazily: the simulator holds at most one unadmitted
// Coflow, so a streaming Source keeps resident memory proportional to the
// number of concurrently live Coflows rather than the trace length.
type Source interface {
	Next() (*coflow.Coflow, error)
}

// sliceSource yields an already-validated, already-sorted slice — the
// adapter RunCircuit wraps around prepare's output. It performs no checks of
// its own, keeping the slice path bit-identical to the historical one.
type sliceSource struct {
	cs []*coflow.Coflow
	i  int
}

func (s *sliceSource) Next() (*coflow.Coflow, error) {
	if s.i >= len(s.cs) {
		return nil, nil
	}
	c := s.cs[s.i]
	s.i++
	return c, nil
}

// SliceSource returns a Source over an in-memory workload, copying and
// stable-sorting it by (Arrival, ID) so any slice can feed
// RunCircuitSource. Validation happens lazily inside the simulator, exactly
// as for any other Source.
func SliceSource(coflows []*coflow.Coflow) Source {
	order := append([]*coflow.Coflow(nil), coflows...)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Arrival != order[b].Arrival {
			return order[a].Arrival < order[b].Arrival
		}
		return order[a].ID < order[b].ID
	})
	return &sliceSource{cs: order}
}

// RunCircuitSource simulates a streamed workload on the Sunflow-scheduled
// optical circuit switch. It is the bounded-memory counterpart of
// RunCircuit: Coflows are pulled from src one at a time as simulated time
// reaches them, validated on admission, and — when Opts.OnArchive is set —
// retired into compact archive records instead of the Result maps, so
// resident state tracks the peak number of concurrent Coflows, not the
// trace length.
//
// src must yield Coflows in nondecreasing (Arrival, ID) order; out-of-order
// delivery and invalid Coflows surface as errors when simulated time reaches
// them, not upfront. Duplicate ids are detected while the first copy is
// still live or retained in the Result maps; in OnArchive mode a duplicate
// arriving after its twin retired is the caller's contract to prevent.
func RunCircuitSource(src Source, opts CircuitOptions) (Result, error) {
	return runCircuit(&checkedSource{src: src, ports: opts.Ports}, opts, true)
}

// checkedSource wraps an untrusted Source with the validation prepare does
// upfront on the slice path: per-Coflow Validate plus the (Arrival, ID)
// ordering contract. Equal-arrival duplicates violate the strict ID order
// and are caught here; other duplicates are caught at admission against the
// live set and retained results.
type checkedSource struct {
	src     Source
	ports   int
	started bool
	lastArr float64
	lastID  int
}

func (s *checkedSource) Next() (*coflow.Coflow, error) {
	c, err := s.src.Next()
	if err != nil || c == nil {
		return nil, err
	}
	if err := c.Validate(s.ports); err != nil {
		return nil, err
	}
	if math.IsNaN(c.Arrival) {
		return nil, fmt.Errorf("sim: coflow %d has NaN arrival", c.ID)
	}
	if s.started {
		if c.Arrival < s.lastArr || (c.Arrival == s.lastArr && c.ID <= s.lastID) {
			return nil, fmt.Errorf("sim: source out of order: coflow %d (arrival %v) after coflow %d (arrival %v)",
				c.ID, c.Arrival, s.lastID, s.lastArr)
		}
	}
	s.started = true
	s.lastArr, s.lastID = c.Arrival, c.ID
	return c, nil
}
