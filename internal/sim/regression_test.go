package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"sunflow/internal/fault"
)

// TestIncrementalDivergenceRegressionSeeds replays seeds that historically
// broke incremental/full bit-identity while the reuse certification was being
// developed, through the same differential check the quick property runs.
// quick.Check draws fresh seeds every run, so without pinning these would
// only be revisited by chance.
func TestIncrementalDivergenceRegressionSeeds(t *testing.T) {
	for _, seed := range []int64{-8752627050616001871, -2238236420052738943} {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 14, 5, 6, 1.0)
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01}
		full := opts
		full.FullReplan = true
		got, gotEv, _ := observedCircuit(t, cs, opts)
		want, wantEv, _ := observedCircuit(t, cs, full)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: results diverge between incremental and FullReplan", seed)
		}
		if !sameEvents(gotEv, wantEv) {
			t.Errorf("seed %d: trace streams diverge", seed)
		}
	}
}

// TestFaultPathLivenessRegression pins a workload that once wedged the event
// loop at a fixed instant: under a degraded link, the drift-free base
// remainder slipped a fraction of a byte below rem, so retire saw unserved
// demand while the scheduler saw none and the run spun until the event
// guard tripped. Fault runs no longer maintain a base (credit() documents
// why); this seed guards that gate.
func TestFaultPathLivenessRegression(t *testing.T) {
	seed := int64(7126918789108884147)
	rng := rand.New(rand.NewSource(seed))
	cs := randomWorkload(rng, 6, 5, 6, 2)
	plan := &fault.Plan{
		Seed:          seed,
		SetupFailProb: 0.3,
		TransientRate: 0.1, MeanOutage: 0.2, Horizon: 10,
		DegradedLinkProb: 0.2,
		StragglerProb:    0.2,
	}
	res, err := RunCircuit(cs, CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events > 100000 {
		t.Fatalf("run took %d events; the fault path is looping without progress", res.Events)
	}
}
