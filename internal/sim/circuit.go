package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// CircuitOptions configures the online circuit-switched simulation.
type CircuitOptions struct {
	// Ports is the switch port count N.
	Ports int
	// LinkBps is the per-port bandwidth B in bits/s.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// Policy orders live Coflows at each reschedule; nil selects
	// shortest-Coflow-first by the remaining packet-switched lower bound,
	// the policy of §5.4.
	Policy core.Policy
	// Order is the intra-Coflow reservation ordering.
	Order core.Order
	// Seed drives RandomOrder.
	Seed int64
	// Fair optionally enables the starvation-avoidance windows of §4.2.
	Fair *core.FairWindows
	// Reference plans with the scan-based reference scheduler loop instead
	// of the event-driven fast path (see core.Options.Reference). Results
	// and trace streams are bit-identical either way; the differential
	// property tests exercise this switch.
	Reference bool
	// Obs optionally records metrics and trace events. Nil disables all
	// instrumentation at the cost of one nil-check per site.
	Obs *obs.Observer
	// Prof optionally records wall-clock profiling spans ("sim.run",
	// "sim.credit", "sched.pass", "fault.repair" and the nested scheduler
	// phases) on the calling goroutine's span stack. Spans never touch
	// simulated time; nil disables profiling.
	Prof *span.Stack
	// Faults optionally injects port outages, circuit-setup failures and
	// degraded link rates. Nil — or a plan whose IsZero reports true — leaves
	// the simulation bit-identical to the fault-free baseline.
	Faults *fault.Plan
	// OnArchive, when non-nil, switches the simulator into bounded-memory
	// archive mode: each Coflow that completes is handed to the callback as a
	// compact Archived record and the Result maps (CCT, Finish, SwitchCount)
	// stay empty, so resident memory tracks the peak number of concurrent
	// Coflows instead of the trace length. Records arrive in retirement
	// order (finish instant, ties by id). Stranded Coflows still retire into
	// Result.Partial, never through the callback. The callback runs on the
	// simulation goroutine and must not retain the record's address.
	OnArchive func(Archived)

	// faultModel, when set, overrides the Faults plan with a pre-compiled —
	// and possibly port-restricted — model. Only the sharded runner sets it,
	// to give each port-disjoint component a private Model scoped to its own
	// ports (the Model's setup-attempt counters are mutable, so it can never
	// be shared across concurrently running components).
	faultModel *fault.Model
}

// ErrReplan wraps a scheduler failure during an online reschedule. It used to
// be a panic; now the simulator surfaces it to the caller together with the
// Coflow that could not be placed.
var ErrReplan = errors.New("sim: replan failed")

// RunCircuit simulates the Coflows on a Sunflow-scheduled optical circuit
// switch. Following §6, the schedule is recomputed only on Coflow arrivals
// and completions (and at fair-window boundaries when starvation avoidance
// is enabled): at each such instant, circuits already established keep their
// reservations — non-preemption — while reservations that have not yet
// begun are discarded and replanned against the remaining demand of all
// live Coflows in priority order.
func RunCircuit(coflows []*coflow.Coflow, opts CircuitOptions) (Result, error) {
	if err := checkCircuitOptions(opts); err != nil {
		return newResult(), err
	}
	arrivalsOrder, _, err := prepare(coflows, opts.Ports)
	if err != nil {
		return newResult(), err
	}
	return runCircuit(&sliceSource{cs: arrivalsOrder}, opts, false)
}

// checkCircuitOptions rejects unusable options before any simulation state is
// built, preserving the historical error precedence of RunCircuit (a bad link
// rate reports before a bad workload).
func checkCircuitOptions(opts CircuitOptions) error {
	if opts.LinkBps <= 0 {
		return fmt.Errorf("sim: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	if opts.Fair != nil {
		return opts.Fair.Validate(opts.Delta)
	}
	return nil
}

func newResult() Result {
	return Result{CCT: map[int]float64{}, Finish: map[int]float64{}, SwitchCount: map[int]int{}}
}

// runCircuit is the shared event loop behind RunCircuit (pre-validated slice,
// checkDups false) and RunCircuitSource (lazy validation, checkDups true).
// The loop holds at most one unadmitted Coflow from src at a time.
func runCircuit(src Source, opts CircuitOptions, checkDups bool) (Result, error) {
	sp := opts.Prof.Start("sim.run").Attr("sim", "circuit")
	defer sp.Finish()
	res := newResult()
	if err := checkCircuitOptions(opts); err != nil {
		return res, err
	}
	policy := opts.Policy
	if policy == nil {
		policy = core.ShortestFirst{LinkBps: opts.LinkBps}
	}
	fm := opts.faultModel
	if fm == nil {
		var err error
		fm, err = opts.Faults.Compile(opts.Ports)
		if err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
	}

	s := &circuitState{
		opts:        opts,
		policy:      policy,
		res:         &res,
		live:        map[int]*liveCoflow{},
		src:         src,
		checkDups:   checkDups,
		faults:      fm,
		faultCursor: math.Inf(-1),
		prt:         core.NewPRT(opts.Ports),
	}
	if o := opts.Obs; o != nil {
		defer func() { o.SimEvents.Add(int64(res.Events)) }()
	}

	t := 0.0
	c0, err := s.peek()
	if err != nil {
		return res, err
	}
	if c0 != nil {
		t = c0.Arrival
	}
	if fm != nil {
		if o := opts.Obs; o.TraceEnabled() {
			o.Emit(obs.Event{T: t, Kind: obs.KindFaultInject, Coflow: -1, Src: -1, Dst: -1})
		}
		s.syncFaults(t)
	}
	if err := s.admit(t); err != nil {
		return res, err
	}
	if fm != nil {
		s.quarantine(t)
		s.retire(t)
	}
	if err := s.replan(t); err != nil {
		return res, err
	}
	tPrev := t

	for ev := 0; ; ev++ {
		if ev > maxEvents {
			return res, fmt.Errorf("sim: circuit simulation exceeded %d events", maxEvents)
		}
		res.Events = ev

		if len(s.live) == 0 {
			nxt, err := s.peek()
			if err != nil {
				return res, err
			}
			if nxt == nil {
				s.closeTrace(tPrev)
				return res, nil
			}
			tPrev = nxt.Arrival
			if fm != nil {
				s.syncFaults(tPrev)
			}
			if err := s.admit(tPrev); err != nil {
				return res, err
			}
			if fm != nil {
				s.quarantine(tPrev)
				s.retire(tPrev)
			}
			if err := s.replan(tPrev); err != nil {
				return res, err
			}
			continue
		}

		// Next event: an arrival, a planned Coflow completion, a fair window
		// boundary (fair service is not part of the plan, so demand must be
		// re-credited and the plan refreshed there), or a port-outage edge.
		te := math.Inf(1)
		nxt, err := s.peek()
		if err != nil {
			return res, err
		}
		if nxt != nil {
			te = nxt.Arrival
		}
		for _, lc := range s.live {
			te = math.Min(te, lc.finish)
		}
		if opts.Fair != nil {
			te = math.Min(te, opts.Fair.NextEnd(tPrev))
		}
		if fm != nil {
			te = math.Min(te, fm.NextBoundary(tPrev))
		}
		if math.IsInf(te, 1) {
			return res, fmt.Errorf("%w at t=%.6f (%d live coflows)", ErrStalled, tPrev, len(s.live))
		}

		s.credit(tPrev, te)
		tPrev = te
		if fm != nil {
			s.syncFaults(te)
			s.quarantine(te)
		}
		s.retire(te)
		if err := s.admit(te); err != nil {
			return res, err
		}
		if fm != nil {
			s.quarantine(te)
			s.retire(te)
		}
		if err := s.replan(te); err != nil {
			return res, err
		}
	}
}

// liveCoflow tracks one admitted, unfinished Coflow.
type liveCoflow struct {
	c *coflow.Coflow
	// rem is the unserved demand per flow in bytes, including demand that
	// in-flight (locked) reservations will deliver.
	rem map[fabric.FlowKey]float64
	// finish is the planned completion time under the current plan.
	finish float64
	// flowFinish records actual flow completion instants.
	flowFinish map[fabric.FlowKey]float64
	// flowStarted marks flows whose first byte was carried; allocated only
	// when event tracing is on.
	flowStarted map[fabric.FlowKey]bool
	// demand keeps each flow's original demand so flow_finish events can
	// report the bytes the flow carried; allocated only when tracing is on.
	demand map[fabric.FlowKey]float64
	// stranded marks a Coflow that lost at least one flow to a permanent
	// port failure: it retires into the PartialResult, never into CCT.
	stranded bool
	// bytes is the Coflow's total positive demand at admission, reported in
	// the archive record when OnArchive mode is on.
	bytes float64
	// switches counts circuit establishments made on this Coflow's behalf —
	// the per-Coflow view of Result.SwitchCount, kept live so archive mode
	// can retire it without the map.
	switches int
}

// circuitState is the mutable simulation state.
type circuitState struct {
	opts   CircuitOptions
	policy core.Policy
	res    *Result
	live   map[int]*liveCoflow
	// src streams the not-yet-admitted workload in (Arrival, ID) order; next
	// is the single-Coflow lookahead and srcDone marks exhaustion. Holding
	// one record instead of the whole pending slice is what bounds resident
	// memory on streamed runs.
	src     Source
	next    *coflow.Coflow
	srcDone bool
	// checkDups enables admission-time duplicate-id detection on the
	// streamed path (the slice path already rejected duplicates in prepare).
	checkDups bool
	// plan holds all reservations not yet fully credited: circuits in
	// flight plus the planned future.
	plan []core.Reservation
	// faults is the compiled fault model; nil on a fault-free run, keeping
	// every fault branch behind one nil-check.
	faults *fault.Model
	// faultCursor is the last outage boundary already applied to the plan.
	faultCursor float64
	// prt is the reservation table rebuilt by every replan; reused across
	// passes (Reset keeps the grown per-port capacity) so replanning is
	// allocation-free on the timelines.
	prt *core.PRT
}

// peek returns the next unadmitted Coflow without consuming it, pulling at
// most one record from the source. Source errors (read failures, invalid or
// out-of-order Coflows on the streamed path) surface here, at the simulated
// instant the record is first needed.
func (s *circuitState) peek() (*coflow.Coflow, error) {
	if s.next == nil && !s.srcDone {
		c, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			s.srcDone = true
		} else {
			s.next = c
		}
	}
	return s.next, nil
}

// admit moves Coflows arriving at or before now into the live set.
func (s *circuitState) admit(now float64) error {
	for {
		c, err := s.peek()
		if err != nil {
			return err
		}
		if c == nil || c.Arrival > now+timeEps {
			return nil
		}
		s.next = nil
		if s.checkDups {
			// The ordered-source contract catches equal-arrival duplicates;
			// this catches a duplicate arriving while its twin is live or
			// already retained in the Result maps. In OnArchive mode a
			// duplicate arriving after its twin retired is the caller's
			// contract to prevent (nothing is retained to detect it against).
			_, inFinish := s.res.Finish[c.ID]
			_, inCCT := s.res.CCT[c.ID]
			if s.live[c.ID] != nil || inFinish || inCCT {
				return fmt.Errorf("sim: duplicate coflow id %d", c.ID)
			}
		}
		rem := make(map[fabric.FlowKey]float64, len(c.Flows))
		total := 0.0
		for _, f := range c.Flows {
			if f.Bytes > 0 {
				rem[fabric.FlowKey{Src: f.Src, Dst: f.Dst}] += f.Bytes
				total += f.Bytes
			}
		}
		if len(rem) == 0 {
			if cb := s.opts.OnArchive; cb != nil {
				cb(Archived{ID: c.ID, Arrival: c.Arrival, Finish: c.Arrival})
			} else {
				s.res.CCT[c.ID] = 0
				s.res.Finish[c.ID] = c.Arrival
			}
			continue
		}
		lc := &liveCoflow{
			c:          c,
			rem:        rem,
			finish:     math.Inf(1),
			flowFinish: make(map[fabric.FlowKey]float64, len(rem)),
			bytes:      total,
		}
		if o := s.opts.Obs; o != nil {
			o.CoflowsAdmitted.Inc()
			if o.TraceEnabled() {
				lc.flowStarted = make(map[fabric.FlowKey]bool, len(rem))
				lc.demand = make(map[fabric.FlowKey]float64, len(rem))
				for k, b := range rem {
					lc.demand[k] = b
				}
				o.Emit(obs.Event{T: now, Kind: obs.KindCoflowAdmit, Coflow: c.ID, Src: -1, Dst: -1, Bytes: c.TotalBytes()})
			}
		}
		s.live[c.ID] = lc
	}
}

// credit applies all transmission occurring in [from, to): planned circuit
// reservations plus shared service in fair windows. It also counts circuit
// establishments whose setup begins in the interval.
func (s *circuitState) credit(from, to float64) {
	if to <= from {
		return
	}
	csp := s.opts.Prof.Start("sim.credit")
	defer csp.Finish()
	// Reservations in start order so sequential reservations of one flow
	// are credited in the order they deliver.
	sort.Slice(s.plan, func(a, b int) bool { return s.plan[a].Start < s.plan[b].Start })
	o := s.opts.Obs
	for idx := range s.plan {
		r := &s.plan[idx]
		lc := s.live[r.CoflowID]
		if r.Start >= from-timeEps && r.Start < to-timeEps {
			if s.opts.OnArchive == nil {
				s.res.SwitchCount[r.CoflowID]++
			}
			if lc != nil {
				lc.switches++
			}
			var retries []float64
			delta := r.Setup
			if s.faults != nil {
				retries = s.establishFaulty(r)
			}
			if o != nil {
				o.CircuitSetups.Inc()
				o.SetupSeconds.Add(r.Setup)
				o.HoldSeconds.Add(r.End - r.Start)
				o.PlannedBytes.Add(r.Bytes)
				o.InBusySeconds.Add(r.In, r.End-r.Start)
				o.OutBusySeconds.Add(r.Out, r.End-r.Start)
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: r.Start, Kind: obs.KindCircuitUp, Coflow: r.CoflowID, Src: r.In, Dst: r.Out, Bytes: r.Bytes, Dur: r.Setup})
					// Retries follow the circuit_up that owns them so replay
					// sees an open circuit; Dur carries the per-attempt δ.
					for _, off := range retries {
						o.Emit(obs.Event{T: r.Start + off, Kind: obs.KindCircuitRetry, Coflow: r.CoflowID, Src: r.In, Dst: r.Out, Dur: delta})
					}
				}
			}
		}
		if o.TraceEnabled() && r.End > from+timeEps && r.End <= to+timeEps {
			o.Emit(obs.Event{T: r.End, Kind: obs.KindCircuitDown, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
		}
		if lc == nil {
			continue
		}
		bps := s.opts.LinkBps
		var d float64
		if factor := s.rateFactor(r); factor != 1 {
			// Degraded link or straggler flow: the circuit carries data at a
			// reduced rate and may release its ports before the planned Bytes
			// are through; the shortfall is replanned.
			bps *= factor
			d = transmittedAt(r, to, bps) - transmittedAt(r, from, bps)
		} else {
			d = r.TransmittedBy(to, bps) - r.TransmittedBy(from, bps)
		}
		if d <= 0 {
			continue
		}
		key := fabric.FlowKey{Src: r.In, Dst: r.Out}
		rem := lc.rem[key]
		if rem <= 0 {
			continue
		}
		if o != nil {
			o.BytesDelivered.Add(math.Min(rem, d))
		}
		if lc.flowStarted != nil && !lc.flowStarted[key] {
			lc.flowStarted[key] = true
			o.Emit(obs.Event{T: math.Max(from, r.TransmitStart()), Kind: obs.KindFlowStart, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
		}
		if rem <= d+byteEps {
			// The flow drains inside this reservation; solve for the
			// instant.
			deliveryStart := math.Max(from, r.TransmitStart())
			finish := deliveryStart + rem*8/bps
			lc.rem[key] = 0
			if _, done := lc.flowFinish[key]; !done {
				lc.flowFinish[key] = finish
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: finish, Kind: obs.KindFlowFinish, Coflow: r.CoflowID, Src: r.In, Dst: r.Out, Bytes: lc.demand[key]})
				}
			}
		} else {
			lc.rem[key] = rem - d
		}
	}

	if s.opts.Fair != nil {
		s.creditFairWindows(from, to)
	}
}

// creditFairWindows applies the shared round-robin service of §4.2 within
// [from, to): during each τ window, circuit [i, A_k(i)] serves the remaining
// demand of all live Coflows on that port pair with equal instantaneous
// shares.
func (s *circuitState) creditFairWindows(from, to float64) {
	o := s.opts.Obs
	for _, w := range s.opts.Fair.WindowsIn(from, to) {
		if o.TraceEnabled() {
			// Windows can straddle several credit intervals; emit each
			// boundary only in the interval containing it.
			if w.Start >= from-timeEps && w.Start < to-timeEps {
				o.Emit(obs.Event{T: w.Start, Kind: obs.KindWindowOpen, Coflow: -1, Src: -1, Dst: -1, Dur: w.End - w.Start})
			}
			if w.End > from+timeEps && w.End <= to+timeEps {
				o.Emit(obs.Event{T: w.End, Kind: obs.KindWindowClose, Coflow: -1, Src: -1, Dst: -1})
			}
		}
		txStart := w.Start + s.opts.Delta
		segStart := math.Max(from, txStart)
		segEnd := math.Min(to, w.End)
		if segEnd <= segStart {
			continue
		}
		seconds := segEnd - segStart
		for i, j := range w.Assign {
			key := fabric.FlowKey{Src: i, Dst: j}
			var ids []int
			var rems []float64
			for id, lc := range s.live {
				if b := lc.rem[key]; b > byteEps {
					ids = append(ids, id)
					rems = append(rems, b)
				}
			}
			if len(ids) == 0 {
				continue
			}
			sort.Sort(&idRemSorter{ids: ids, rems: rems})
			served := core.ShareCircuit(rems, seconds, s.opts.LinkBps)
			for idx, id := range ids {
				lc := s.live[id]
				if o != nil {
					o.BytesDelivered.Add(math.Min(lc.rem[key], served[idx]))
				}
				if lc.flowStarted != nil && served[idx] > 0 && !lc.flowStarted[key] {
					lc.flowStarted[key] = true
					o.Emit(obs.Event{T: segStart, Kind: obs.KindFlowStart, Coflow: id, Src: i, Dst: j})
				}
				nr := lc.rem[key] - served[idx]
				if nr <= byteEps {
					lc.rem[key] = 0
					if _, done := lc.flowFinish[key]; !done {
						// Exact drain instants inside a shared window are
						// not tracked; the window end bounds the error by τ.
						lc.flowFinish[key] = segEnd
						if o.TraceEnabled() {
							o.Emit(obs.Event{T: segEnd, Kind: obs.KindFlowFinish, Coflow: id, Src: i, Dst: j, Bytes: lc.demand[key]})
						}
					}
				} else {
					lc.rem[key] = nr
				}
			}
		}
	}
}

// idRemSorter keeps (ids, rems) pairs in deterministic order.
type idRemSorter struct {
	ids  []int
	rems []float64
}

func (s *idRemSorter) Len() int           { return len(s.ids) }
func (s *idRemSorter) Less(a, b int) bool { return s.ids[a] < s.ids[b] }
func (s *idRemSorter) Swap(a, b int) {
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
	s.rems[a], s.rems[b] = s.rems[b], s.rems[a]
}

// closeTrace emits circuit_down for circuits still holding their ports when
// the simulation ends. Non-preemption commits an established circuit through
// its reservation end, so when fair windows (or plan overlap) drain the last
// demand early the port is still held past the final event; the trace must
// close those circuits or every consumer would see an unmatched circuit_up.
// The down is stamped at the reservation end — the instant the port is
// actually released — matching the HoldSeconds the counters accrued at setup.
func (s *circuitState) closeTrace(now float64) {
	o := s.opts.Obs
	if !o.TraceEnabled() {
		return
	}
	for _, r := range s.plan {
		if r.Start < now-timeEps && r.End > now+timeEps {
			o.Emit(obs.Event{T: r.End, Kind: obs.KindCircuitDown, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
		}
	}
}

// retire records Coflows whose demand has fully drained. Coflows are visited
// in id order, not map order: two Coflows finishing at the same instant must
// emit their completion events in the same order on every run, or traces stop
// being reproducible.
func (s *circuitState) retire(now float64) {
	ids := make([]int, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		lc := s.live[id]
		done := true
		for _, b := range lc.rem {
			if b > byteEps {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		// The Coflow finished at its latest recorded flow finish, which can
		// precede the event instant now.
		finish := 0.0
		for _, f := range lc.flowFinish {
			finish = math.Max(finish, f)
		}
		if finish == 0 {
			finish = now
		}
		if lc.stranded {
			// Quarantined Coflow: its routable demand has drained but
			// stranded flows never will. It leaves the fabric without a CCT;
			// the PartialResult records what it could not deliver.
			s.partial().Finish[id] = finish
			delete(s.live, id)
			continue
		}
		if cb := s.opts.OnArchive; cb != nil {
			cb(Archived{
				ID:       id,
				Arrival:  lc.c.Arrival,
				Finish:   finish,
				CCT:      finish - lc.c.Arrival,
				Bytes:    lc.bytes,
				Switches: lc.switches,
			})
		} else {
			s.res.Finish[id] = finish
			s.res.CCT[id] = finish - lc.c.Arrival
		}
		delete(s.live, id)
		if o := s.opts.Obs; o != nil {
			o.CoflowsCompleted.Inc()
			if o.TraceEnabled() {
				o.Emit(obs.Event{T: finish, Kind: obs.KindCoflowComplete, Coflow: id, Src: -1, Dst: -1, Dur: finish - lc.c.Arrival})
			}
		}
	}
}

// replan rebuilds the circuit plan at time now. On a fault-free run a
// scheduler failure is a plan inconsistency surfaced as ErrReplan (this used
// to panic). Under faults, a stall means permanent outages left a Coflow
// unroutable: its doomed flows are quarantined and the pass retried, so every
// solvable workload still completes.
func (s *circuitState) replan(now float64) error {
	for {
		id, err := s.replanOnce(now)
		if err == nil {
			return nil
		}
		if s.faults != nil && errors.Is(err, core.ErrStalled) {
			if lc := s.live[id]; lc != nil && s.strandDoomed(lc, now) {
				// Fully stranded Coflows must leave the live set before the
				// retry or they would stall it again.
				s.retire(now)
				continue
			}
		}
		return fmt.Errorf("%w: coflow %d at t=%.6f: %w", ErrReplan, id, now, err)
	}
}

// replanOnce is one scheduling pass: in-flight reservations are kept
// (non-preemption), everything else is rescheduled with IntraCoflow in policy
// order against the remaining demand. It returns the Coflow that could not be
// placed alongside the error.
func (s *circuitState) replanOnce(now float64) (id int, err error) {
	o := s.opts.Obs
	if o != nil || s.opts.Prof != nil {
		// One measurement feeds the counters and the span: the span tree's
		// sched.pass totals sum to sched.seconds exactly. A failed pass
		// (stall under faults) closes its span but, as before, leaves the
		// pass counters untouched — the retry after quarantine counts.
		// Clock before span: the span's start stamp then lands no earlier
		// than passStart, so the recorded interval covers its children even
		// when the goroutine is preempted between the two calls.
		passStart := time.Now()
		psp := s.opts.Prof.Start("sched.pass")
		defer func() {
			if err != nil {
				psp.Attr("outcome", "stalled").Finish()
				return
			}
			d := time.Since(passStart).Seconds()
			psp.FinishWith(d)
			if o == nil {
				return
			}
			o.SchedPasses.Inc()
			o.SchedSeconds.Add(d)
			o.SchedPassTime.Observe(d)
			o.QueueDepth.Set(int64(len(s.plan)))
		}()
	}
	// Keep only circuits already established and still holding their ports.
	locked := make([]core.Reservation, 0, len(s.plan))
	for _, r := range s.plan {
		if r.Start < now-timeEps && r.End > now+timeEps {
			locked = append(locked, r)
		}
	}

	prt := s.prt
	prt.Reset()
	if s.opts.Fair != nil {
		prt.SetBlackout(*s.opts.Fair)
	}
	if s.faults == nil {
		prt.Preload(locked)
	} else {
		// Repair path: re-seed the degraded table defensively — a locked
		// circuit that no longer fits is invalidated rather than crashing the
		// run — then block every port interval a fault keeps down.
		fsp := s.opts.Prof.Start("fault.repair")
		kept := locked[:0]
		for _, r := range locked {
			if prt.TryReserve(r) == nil {
				kept = append(kept, r)
			}
		}
		locked = kept
		for port := 0; port < s.opts.Ports; port++ {
			for _, og := range s.faults.Outages(port) {
				if og.End > now+timeEps {
					prt.Block(port, math.Max(og.Start, now), og.End)
				}
			}
		}
		fsp.Finish()
	}

	lockedFuture := map[int]map[fabric.FlowKey]float64{}
	for i := range locked {
		r := &locked[i]
		if s.live[r.CoflowID] != nil {
			m := lockedFuture[r.CoflowID]
			if m == nil {
				m = map[fabric.FlowKey]float64{}
				lockedFuture[r.CoflowID] = m
			}
			m[fabric.FlowKey{Src: r.In, Dst: r.Out}] += s.resFutureBytes(r, now)
		}
	}

	// Priority-sort the live Coflows on their full remaining demand.
	tmps := make([]*coflow.Coflow, 0, len(s.live))
	for _, lc := range s.live {
		tmps = append(tmps, remainderCoflow(lc, nil))
	}
	ordered := s.policy.Sort(tmps)

	s.plan = locked
	for _, tmp := range ordered {
		lc := s.live[tmp.ID]
		toSchedule := remainderCoflow(lc, lockedFuture[tmp.ID])
		sched, err := core.IntraCoflow(prt, toSchedule, core.Options{
			LinkBps:   s.opts.LinkBps,
			Delta:     s.opts.Delta,
			Start:     math.Max(now, lc.c.Arrival),
			Order:     s.opts.Order,
			Seed:      s.opts.Seed,
			Reference: s.opts.Reference,
			Obs:       s.opts.Obs,
			Prof:      s.opts.Prof,
		})
		if err != nil {
			return tmp.ID, err
		}
		finish := sched.Finish
		for _, r := range locked {
			if r.CoflowID == tmp.ID && r.End > finish {
				finish = r.End
			}
		}
		lc.finish = finish
		s.plan = append(s.plan, sched.Reservations...)
	}
	return 0, nil
}

// remainderCoflow builds a temporary Coflow from a live Coflow's remaining
// demand, optionally excluding demand that locked reservations will serve.
func remainderCoflow(lc *liveCoflow, exclude map[fabric.FlowKey]float64) *coflow.Coflow {
	flows := make([]coflow.Flow, 0, len(lc.rem))
	for k, b := range lc.rem {
		if exclude != nil {
			b -= exclude[k]
		}
		if b > byteEps {
			flows = append(flows, coflow.Flow{Src: k.Src, Dst: k.Dst, Bytes: b})
		}
	}
	sort.Slice(flows, func(a, b int) bool {
		if flows[a].Src != flows[b].Src {
			return flows[a].Src < flows[b].Src
		}
		return flows[a].Dst < flows[b].Dst
	})
	return &coflow.Coflow{ID: lc.c.ID, Arrival: lc.c.Arrival, Flows: flows}
}
