package sim

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// CircuitOptions configures the online circuit-switched simulation.
type CircuitOptions struct {
	// Ports is the switch port count N.
	Ports int
	// LinkBps is the per-port bandwidth B in bits/s.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// Policy orders live Coflows at each reschedule; nil selects
	// shortest-Coflow-first by the remaining packet-switched lower bound,
	// the policy of §5.4.
	Policy core.Policy
	// Order is the intra-Coflow reservation ordering.
	Order core.Order
	// Seed drives RandomOrder.
	Seed int64
	// Fair optionally enables the starvation-avoidance windows of §4.2.
	Fair *core.FairWindows
	// Reference plans with the scan-based reference scheduler loop instead
	// of the event-driven fast path (see core.Options.Reference). Results
	// and trace streams are bit-identical either way; the differential
	// property tests exercise this switch. Reference also forces FullReplan:
	// the reference pass is the retained full-rebuild oracle.
	Reference bool
	// FullReplan disables dirty-prefix schedule reuse: every scheduling pass
	// rebuilds the whole plan by running IntraCoflow for every live Coflow,
	// as the pre-incremental simulator did. Results, traces and archive
	// digests are bit-identical either way (see DESIGN.md §7); the
	// differential property tests and the scale-smoke digest gate exercise
	// this switch. The environment variable SUNFLOW_FULL_REPLAN=1 forces it
	// process-wide. Fault plans force it implicitly: outage repair rebuilds
	// the degraded table from scratch each pass.
	FullReplan bool
	// Obs optionally records metrics and trace events. Nil disables all
	// instrumentation at the cost of one nil-check per site.
	Obs *obs.Observer
	// Prof optionally records wall-clock profiling spans ("sim.run",
	// "sim.credit", "sched.pass", "fault.repair" and the nested scheduler
	// phases) on the calling goroutine's span stack. Spans never touch
	// simulated time; nil disables profiling.
	Prof *span.Stack
	// Faults optionally injects port outages, circuit-setup failures and
	// degraded link rates. Nil — or a plan whose IsZero reports true — leaves
	// the simulation bit-identical to the fault-free baseline.
	Faults *fault.Plan
	// OnArchive, when non-nil, switches the simulator into bounded-memory
	// archive mode: each Coflow that completes is handed to the callback as a
	// compact Archived record and the Result maps (CCT, Finish, SwitchCount)
	// stay empty, so resident memory tracks the peak number of concurrent
	// Coflows instead of the trace length. Records arrive in retirement
	// order (finish instant, ties by id). Stranded Coflows still retire into
	// Result.Partial, never through the callback. The callback runs on the
	// simulation goroutine and must not retain the record's address.
	OnArchive func(Archived)

	// faultModel, when set, overrides the Faults plan with a pre-compiled —
	// and possibly port-restricted — model. Only the sharded runner sets it,
	// to give each port-disjoint component a private Model scoped to its own
	// ports (the Model's setup-attempt counters are mutable, so it can never
	// be shared across concurrently running components).
	faultModel *fault.Model
}

// ErrReplan wraps a scheduler failure during an online reschedule. It used to
// be a panic; now the simulator surfaces it to the caller together with the
// Coflow that could not be placed.
var ErrReplan = errors.New("sim: replan failed")

// RunCircuit simulates the Coflows on a Sunflow-scheduled optical circuit
// switch. Following §6, the schedule is recomputed only on Coflow arrivals
// and completions (and at fair-window boundaries when starvation avoidance
// is enabled): at each such instant, circuits already established keep their
// reservations — non-preemption — while reservations that have not yet
// begun are discarded and replanned against the remaining demand of all
// live Coflows in priority order.
func RunCircuit(coflows []*coflow.Coflow, opts CircuitOptions) (Result, error) {
	if err := checkCircuitOptions(opts); err != nil {
		return newResult(), err
	}
	arrivalsOrder, _, err := prepare(coflows, opts.Ports)
	if err != nil {
		return newResult(), err
	}
	return runCircuit(&sliceSource{cs: arrivalsOrder}, opts, false)
}

// checkCircuitOptions rejects unusable options before any simulation state is
// built, preserving the historical error precedence of RunCircuit (a bad link
// rate reports before a bad workload).
func checkCircuitOptions(opts CircuitOptions) error {
	if opts.LinkBps <= 0 {
		return fmt.Errorf("sim: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	if opts.Fair != nil {
		return opts.Fair.Validate(opts.Delta)
	}
	return nil
}

func newResult() Result {
	return Result{CCT: map[int]float64{}, Finish: map[int]float64{}, SwitchCount: map[int]int{}}
}

// runCircuit is the shared event loop behind RunCircuit (pre-validated slice,
// checkDups false) and RunCircuitSource (lazy validation, checkDups true).
// The loop holds at most one unadmitted Coflow from src at a time.
func runCircuit(src Source, opts CircuitOptions, checkDups bool) (Result, error) {
	sp := opts.Prof.Start("sim.run").Attr("sim", "circuit")
	defer sp.Finish()
	res := newResult()
	if err := checkCircuitOptions(opts); err != nil {
		return res, err
	}
	policy := opts.Policy
	if policy == nil {
		policy = core.ShortestFirst{LinkBps: opts.LinkBps}
	}
	fm := opts.faultModel
	if fm == nil {
		var err error
		fm, err = opts.Faults.Compile(opts.Ports)
		if err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
	}

	s := &circuitState{
		opts:        opts,
		policy:      policy,
		res:         &res,
		live:        map[int]*liveCoflow{},
		src:         src,
		checkDups:   checkDups,
		faults:      fm,
		faultCursor: math.Inf(-1),
		prt:         core.NewPRT(opts.Ports),
		incremental: fm == nil && !opts.Reference && !opts.FullReplan &&
			os.Getenv("SUNFLOW_FULL_REPLAN") == "",
	}
	if o := opts.Obs; o != nil {
		defer func() { o.SimEvents.Add(int64(res.Events)) }()
	}

	t := 0.0
	c0, err := s.peek()
	if err != nil {
		return res, err
	}
	if c0 != nil {
		t = c0.Arrival
	}
	if fm != nil {
		if o := opts.Obs; o.TraceEnabled() {
			o.Emit(obs.Event{T: t, Kind: obs.KindFaultInject, Coflow: -1, Src: -1, Dst: -1})
		}
		s.syncFaults(t)
	}
	if err := s.admit(t); err != nil {
		return res, err
	}
	if fm != nil {
		s.quarantine(t)
		s.retire(t)
	}
	if err := s.replan(t); err != nil {
		return res, err
	}
	tPrev := t

	for ev := 0; ; ev++ {
		if ev > maxEvents {
			return res, fmt.Errorf("sim: circuit simulation exceeded %d events", maxEvents)
		}
		res.Events = ev

		if len(s.live) == 0 {
			nxt, err := s.peek()
			if err != nil {
				return res, err
			}
			if nxt == nil {
				s.closeTrace(tPrev)
				return res, nil
			}
			tPrev = nxt.Arrival
			if fm != nil {
				s.syncFaults(tPrev)
			}
			if err := s.admit(tPrev); err != nil {
				return res, err
			}
			if fm != nil {
				s.quarantine(tPrev)
				s.retire(tPrev)
			}
			if err := s.replan(tPrev); err != nil {
				return res, err
			}
			continue
		}

		// Next event: an arrival, a planned Coflow completion, a fair window
		// boundary (fair service is not part of the plan, so demand must be
		// re-credited and the plan refreshed there), or a port-outage edge.
		te := math.Inf(1)
		nxt, err := s.peek()
		if err != nil {
			return res, err
		}
		if nxt != nil {
			te = nxt.Arrival
		}
		for _, lc := range s.live {
			te = math.Min(te, lc.finish)
		}
		if opts.Fair != nil {
			te = math.Min(te, opts.Fair.NextEnd(tPrev))
		}
		if fm != nil {
			te = math.Min(te, fm.NextBoundary(tPrev))
		}
		if math.IsInf(te, 1) {
			return res, fmt.Errorf("%w at t=%.6f (%d live coflows)", ErrStalled, tPrev, len(s.live))
		}

		s.credit(tPrev, te)
		tPrev = te
		if fm != nil {
			s.syncFaults(te)
			s.quarantine(te)
		}
		s.retire(te)
		if err := s.admit(te); err != nil {
			return res, err
		}
		if fm != nil {
			s.quarantine(te)
			s.retire(te)
		}
		if err := s.replan(te); err != nil {
			return res, err
		}
	}
}

// liveCoflow tracks one admitted, unfinished Coflow.
type liveCoflow struct {
	c *coflow.Coflow
	// rem is the unserved demand per flow in bytes, including demand that
	// in-flight (locked) reservations will deliver. Credited continuously as
	// circuits carry bytes, it drives the priority key, completion detection
	// and stranded-byte accounting.
	rem map[fabric.FlowKey]float64
	// base is the scheduler's view of the same demand, kept drift-free: it
	// ignores in-flight delivery and is debited exactly once per circuit, by
	// the full bytes the circuit carries, at the pass after the circuit ends.
	// Between establishment boundaries base is bit-stable while rem drifts
	// with every credit window, so the incremental replanner fingerprints
	// scheduler inputs derived from base (DESIGN.md §7). nil until the first
	// in-flight byte is credited — until then it is bit-identical to rem and
	// rem stands in for it. Fault runs never allocate base: degraded-rate
	// delivery would make the exact folding drift from rem, and the two
	// views could then disagree about whether a residual flow still needs
	// scheduling (credit() has the full story).
	base map[fabric.FlowKey]float64
	// finish is the planned completion time under the current plan.
	finish float64
	// flowFinish records actual flow completion instants.
	flowFinish map[fabric.FlowKey]float64
	// flowStarted marks flows whose first byte was carried; allocated only
	// when event tracing is on.
	flowStarted map[fabric.FlowKey]bool
	// demand keeps each flow's original demand so flow_finish events can
	// report the bytes the flow carried; allocated only when tracing is on.
	demand map[fabric.FlowKey]float64
	// stranded marks a Coflow that lost at least one flow to a permanent
	// port failure: it retires into the PartialResult, never into CCT.
	stranded bool
	// bytes is the Coflow's total positive demand at admission, reported in
	// the archive record when OnArchive mode is on.
	bytes float64
	// switches counts circuit establishments made on this Coflow's behalf —
	// the per-Coflow view of Result.SwitchCount, kept live so archive mode
	// can retire it without the map.
	switches int
	// keys holds rem's flow keys in (Src, Dst) order, built once at
	// admission. Stranding deletes rem entries without touching keys, so
	// readers skip keys absent from the map instead of re-sorting per pass.
	keys []fabric.FlowKey
}

// circuitState is the mutable simulation state.
type circuitState struct {
	opts   CircuitOptions
	policy core.Policy
	res    *Result
	live   map[int]*liveCoflow
	// src streams the not-yet-admitted workload in (Arrival, ID) order; next
	// is the single-Coflow lookahead and srcDone marks exhaustion. Holding
	// one record instead of the whole pending slice is what bounds resident
	// memory on streamed runs.
	src     Source
	next    *coflow.Coflow
	srcDone bool
	// checkDups enables admission-time duplicate-id detection on the
	// streamed path (the slice path already rejected duplicates in prepare).
	checkDups bool
	// plan holds all reservations not yet fully credited: circuits in
	// flight plus the planned future.
	plan []core.Reservation
	// faults is the compiled fault model; nil on a fault-free run, keeping
	// every fault branch behind one nil-check.
	faults *fault.Model
	// faultCursor is the last outage boundary already applied to the plan.
	faultCursor float64
	// prt is the reservation table rebuilt by every replan; reused across
	// passes (Reset keeps the grown per-port capacity) so replanning is
	// allocation-free on the timelines.
	prt *core.PRT
	// incremental enables dirty-prefix schedule reuse across passes. It is
	// false when a fault plan, Reference, FullReplan or SUNFLOW_FULL_REPLAN
	// forces the retained full-rebuild pass (DESIGN.md §7).
	incremental bool
	// cache holds the previous successful pass's per-Coflow outcomes in
	// policy order; empty while incremental is off.
	cache []planCacheEntry
	// scratch pools the per-pass allocations of replanOnce.
	scratch replanScratch
}

// planCacheEntry records one Coflow's outcome in the previous scheduling
// pass at its policy-order position. The entry is clean at the same position
// of the next pass — its reservations replayed via PRT.BulkAdd instead of
// re-running IntraCoflow — when the Coflow id and its exclusion-adjusted
// remainder (the exact IntraCoflow input, flows fully served by locked
// circuits dropped) are bit-identical and no cached reservation starts
// before (or within timeEps of) the new pass instant.
type planCacheEntry struct {
	id int
	// flows is the IntraCoflow input the schedule was computed from:
	// remaining demand minus locked-reservation exclusions, in (Src, Dst)
	// order. Compared exactly — a one-ulp drift in any term re-runs the
	// scheduler, keeping reuse bit-identical by construction.
	flows []coflow.Flow
	// res is the cached IntraCoflow output; owned by the entry (the plan
	// holds copies).
	res []core.Reservation
	// minStart and maxEnd are res's extremes (+Inf/-Inf when empty).
	minStart, maxEnd float64
	// ctx is the port context the schedule was computed against: the busy
	// intervals visible on the input flows' ports when IntraCoflow ran,
	// snapshotted just before the run and trimmed to horizon. The intra
	// search is a pure function of its input flows, its start instant and
	// this context, so a bit-exact match certifies the cached output.
	ctx []core.PortSpan
	// horizon bounds the table range the cached search could have consulted:
	// maxEnd + δ + 2·timeEps (-Inf for an empty schedule). Occupancy at or
	// beyond it cannot influence the search — every window it probes starts
	// at a placement or rejection instant below maxEnd and extends at most
	// δ plus the eps tolerances.
	horizon float64
}

// replanScratch pools the buffers replanOnce previously allocated per pass,
// making a steady-state replan allocation-free outside IntraCoflow itself.
type replanScratch struct {
	// lockedFuture maps Coflow id -> flow key -> full planned bytes of its
	// in-flight circuits. Subtracted from the drift-free base remainder (not
	// from rem) it yields the demand still unplanned — the pairing keeps the
	// scheduler input bit-stable while a circuit holds, since neither side
	// moves with delivery. Inner maps recycle through exclPool.
	lockedFuture map[int]map[fabric.FlowKey]float64
	exclPool     []map[fabric.FlowKey]float64
	// tmps holds reusable remainder-Coflow headers, one per live Coflow; the
	// header doubles as the IntraCoflow input when the Coflow has no locked
	// exclusions (the remainders are then identical).
	tmps []*coflow.Coflow
	// order and key are the policy SortInto scratch.
	order []*coflow.Coflow
	key   map[int]float64
	// sched is the remainder-with-exclusions scratch Coflow.
	sched *coflow.Coflow
	// nextCache accumulates this pass's cache entries, swapped into
	// circuitState.cache on success.
	nextCache []planCacheEntry
	// cacheIdx maps Coflow id to its index in circuitState.cache, rebuilt
	// each incremental pass.
	cacheIdx map[int]int
	// spans is the pre-run port-context snapshot buffer; ins and outs hold
	// the sorted unique ports of the flows being certified or snapshotted.
	spans     []core.PortSpan
	ins, outs []int
}

// peek returns the next unadmitted Coflow without consuming it, pulling at
// most one record from the source. Source errors (read failures, invalid or
// out-of-order Coflows on the streamed path) surface here, at the simulated
// instant the record is first needed.
func (s *circuitState) peek() (*coflow.Coflow, error) {
	if s.next == nil && !s.srcDone {
		c, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			s.srcDone = true
		} else {
			s.next = c
		}
	}
	return s.next, nil
}

// admit moves Coflows arriving at or before now into the live set.
func (s *circuitState) admit(now float64) error {
	for {
		c, err := s.peek()
		if err != nil {
			return err
		}
		if c == nil || c.Arrival > now+timeEps {
			return nil
		}
		s.next = nil
		if s.checkDups {
			// The ordered-source contract catches equal-arrival duplicates;
			// this catches a duplicate arriving while its twin is live or
			// already retained in the Result maps. In OnArchive mode a
			// duplicate arriving after its twin retired is the caller's
			// contract to prevent (nothing is retained to detect it against).
			_, inFinish := s.res.Finish[c.ID]
			_, inCCT := s.res.CCT[c.ID]
			if s.live[c.ID] != nil || inFinish || inCCT {
				return fmt.Errorf("sim: duplicate coflow id %d", c.ID)
			}
		}
		rem := make(map[fabric.FlowKey]float64, len(c.Flows))
		total := 0.0
		for _, f := range c.Flows {
			if f.Bytes > 0 {
				rem[fabric.FlowKey{Src: f.Src, Dst: f.Dst}] += f.Bytes
				total += f.Bytes
			}
		}
		if len(rem) == 0 {
			if cb := s.opts.OnArchive; cb != nil {
				cb(Archived{ID: c.ID, Arrival: c.Arrival, Finish: c.Arrival})
			} else {
				s.res.CCT[c.ID] = 0
				s.res.Finish[c.ID] = c.Arrival
			}
			continue
		}
		keys := make([]fabric.FlowKey, 0, len(rem))
		for k := range rem {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].Src != keys[b].Src {
				return keys[a].Src < keys[b].Src
			}
			return keys[a].Dst < keys[b].Dst
		})
		lc := &liveCoflow{
			c:          c,
			rem:        rem,
			keys:       keys,
			finish:     math.Inf(1),
			flowFinish: make(map[fabric.FlowKey]float64, len(rem)),
			bytes:      total,
		}
		if o := s.opts.Obs; o != nil {
			o.CoflowsAdmitted.Inc()
			if o.TraceEnabled() {
				lc.flowStarted = make(map[fabric.FlowKey]bool, len(rem))
				lc.demand = make(map[fabric.FlowKey]float64, len(rem))
				for k, b := range rem {
					lc.demand[k] = b
				}
				o.Emit(obs.Event{T: now, Kind: obs.KindCoflowAdmit, Coflow: c.ID, Src: -1, Dst: -1, Bytes: c.TotalBytes()})
			}
		}
		s.live[c.ID] = lc
	}
}

// credit applies all transmission occurring in [from, to): planned circuit
// reservations plus shared service in fair windows. It also counts circuit
// establishments whose setup begins in the interval.
func (s *circuitState) credit(from, to float64) {
	if to <= from {
		return
	}
	csp := s.opts.Prof.Start("sim.credit")
	defer csp.Finish()
	// Reservations in start order so sequential reservations of one flow
	// are credited in the order they deliver.
	sort.Slice(s.plan, func(a, b int) bool { return s.plan[a].Start < s.plan[b].Start })
	o := s.opts.Obs
	for idx := range s.plan {
		r := &s.plan[idx]
		lc := s.live[r.CoflowID]
		if r.Start >= from-timeEps && r.Start < to-timeEps {
			if s.opts.OnArchive == nil {
				s.res.SwitchCount[r.CoflowID]++
			}
			if lc != nil {
				lc.switches++
			}
			var retries []float64
			delta := r.Setup
			if s.faults != nil {
				retries = s.establishFaulty(r)
			}
			if o != nil {
				o.CircuitSetups.Inc()
				o.SetupSeconds.Add(r.Setup)
				o.HoldSeconds.Add(r.End - r.Start)
				o.PlannedBytes.Add(r.Bytes)
				o.InBusySeconds.Add(r.In, r.End-r.Start)
				o.OutBusySeconds.Add(r.Out, r.End-r.Start)
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: r.Start, Kind: obs.KindCircuitUp, Coflow: r.CoflowID, Src: r.In, Dst: r.Out, Bytes: r.Bytes, Dur: r.Setup})
					// Retries follow the circuit_up that owns them so replay
					// sees an open circuit; Dur carries the per-attempt δ.
					for _, off := range retries {
						o.Emit(obs.Event{T: r.Start + off, Kind: obs.KindCircuitRetry, Coflow: r.CoflowID, Src: r.In, Dst: r.Out, Dur: delta})
					}
				}
			}
		}
		if o.TraceEnabled() && r.End > from+timeEps && r.End <= to+timeEps {
			o.Emit(obs.Event{T: r.End, Kind: obs.KindCircuitDown, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
		}
		if lc == nil {
			continue
		}
		bps := s.opts.LinkBps
		var d float64
		if factor := s.rateFactor(r); factor != 1 {
			// Degraded link or straggler flow: the circuit carries data at a
			// reduced rate and may release its ports before the planned Bytes
			// are through; the shortfall is replanned.
			bps *= factor
			d = transmittedAt(r, to, bps) - transmittedAt(r, from, bps)
		} else {
			d = r.TransmittedBy(to, bps) - r.TransmittedBy(from, bps)
		}
		if d <= 0 {
			continue
		}
		key := fabric.FlowKey{Src: r.In, Dst: r.Out}
		rem := lc.rem[key]
		if rem <= 0 {
			continue
		}
		if lc.base == nil && s.faults == nil {
			// First in-flight byte for this Coflow: snapshot the pristine
			// demand before rem starts drifting away from it. Fault runs
			// never build a base: degraded-rate delivery makes the exact
			// planned-bytes folding drift from rem by real fractions of a
			// byte, and the two views can then disagree about whether a
			// flow's residual is worth scheduling — rem above byteEps with
			// base below it wedges the event loop at a fixed instant.
			// Incremental reuse (the only consumer of base) is disabled
			// under faults anyway, so the scheduler reads rem instead.
			lc.base = make(map[fabric.FlowKey]float64, len(lc.rem))
			for k, v := range lc.rem {
				lc.base[k] = v
			}
		}
		if o != nil {
			o.BytesDelivered.Add(math.Min(rem, d))
		}
		if lc.flowStarted != nil && !lc.flowStarted[key] {
			lc.flowStarted[key] = true
			o.Emit(obs.Event{T: math.Max(from, r.TransmitStart()), Kind: obs.KindFlowStart, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
		}
		if rem <= d+byteEps {
			// The flow drains inside this reservation; solve for the
			// instant.
			deliveryStart := math.Max(from, r.TransmitStart())
			finish := deliveryStart + rem*8/bps
			lc.rem[key] = 0
			if _, done := lc.flowFinish[key]; !done {
				lc.flowFinish[key] = finish
				if o.TraceEnabled() {
					o.Emit(obs.Event{T: finish, Kind: obs.KindFlowFinish, Coflow: r.CoflowID, Src: r.In, Dst: r.Out, Bytes: lc.demand[key]})
				}
			}
		} else {
			lc.rem[key] = rem - d
		}
	}

	if s.opts.Fair != nil {
		s.creditFairWindows(from, to)
	}
}

// creditFairWindows applies the shared round-robin service of §4.2 within
// [from, to): during each τ window, circuit [i, A_k(i)] serves the remaining
// demand of all live Coflows on that port pair with equal instantaneous
// shares.
func (s *circuitState) creditFairWindows(from, to float64) {
	o := s.opts.Obs
	for _, w := range s.opts.Fair.WindowsIn(from, to) {
		if o.TraceEnabled() {
			// Windows can straddle several credit intervals; emit each
			// boundary only in the interval containing it.
			if w.Start >= from-timeEps && w.Start < to-timeEps {
				o.Emit(obs.Event{T: w.Start, Kind: obs.KindWindowOpen, Coflow: -1, Src: -1, Dst: -1, Dur: w.End - w.Start})
			}
			if w.End > from+timeEps && w.End <= to+timeEps {
				o.Emit(obs.Event{T: w.End, Kind: obs.KindWindowClose, Coflow: -1, Src: -1, Dst: -1})
			}
		}
		txStart := w.Start + s.opts.Delta
		segStart := math.Max(from, txStart)
		segEnd := math.Min(to, w.End)
		if segEnd <= segStart {
			continue
		}
		seconds := segEnd - segStart
		for i, j := range w.Assign {
			key := fabric.FlowKey{Src: i, Dst: j}
			var ids []int
			var rems []float64
			for id, lc := range s.live {
				if b := lc.rem[key]; b > byteEps {
					ids = append(ids, id)
					rems = append(rems, b)
				}
			}
			if len(ids) == 0 {
				continue
			}
			sort.Sort(&idRemSorter{ids: ids, rems: rems})
			served := core.ShareCircuit(rems, seconds, s.opts.LinkBps)
			for idx, id := range ids {
				lc := s.live[id]
				if o != nil {
					o.BytesDelivered.Add(math.Min(lc.rem[key], served[idx]))
				}
				if lc.flowStarted != nil && served[idx] > 0 && !lc.flowStarted[key] {
					lc.flowStarted[key] = true
					o.Emit(obs.Event{T: segStart, Kind: obs.KindFlowStart, Coflow: id, Src: i, Dst: j})
				}
				if lc.base != nil {
					// Window delivery is real delivery: the scheduler's
					// drift-free remainder must not re-plan the shared bytes.
					lc.base[key] -= served[idx]
				}
				nr := lc.rem[key] - served[idx]
				if nr <= byteEps {
					lc.rem[key] = 0
					if _, done := lc.flowFinish[key]; !done {
						// Exact drain instants inside a shared window are
						// not tracked; the window end bounds the error by τ.
						lc.flowFinish[key] = segEnd
						if o.TraceEnabled() {
							o.Emit(obs.Event{T: segEnd, Kind: obs.KindFlowFinish, Coflow: id, Src: i, Dst: j, Bytes: lc.demand[key]})
						}
					}
				} else {
					lc.rem[key] = nr
				}
			}
		}
	}
}

// idRemSorter keeps (ids, rems) pairs in deterministic order.
type idRemSorter struct {
	ids  []int
	rems []float64
}

func (s *idRemSorter) Len() int           { return len(s.ids) }
func (s *idRemSorter) Less(a, b int) bool { return s.ids[a] < s.ids[b] }
func (s *idRemSorter) Swap(a, b int) {
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
	s.rems[a], s.rems[b] = s.rems[b], s.rems[a]
}

// closeTrace emits circuit_down for circuits still holding their ports when
// the simulation ends. Non-preemption commits an established circuit through
// its reservation end, so when fair windows (or plan overlap) drain the last
// demand early the port is still held past the final event; the trace must
// close those circuits or every consumer would see an unmatched circuit_up.
// The down is stamped at the reservation end — the instant the port is
// actually released — matching the HoldSeconds the counters accrued at setup.
func (s *circuitState) closeTrace(now float64) {
	o := s.opts.Obs
	if !o.TraceEnabled() {
		return
	}
	for _, r := range s.plan {
		if r.Start < now-timeEps && r.End > now+timeEps {
			o.Emit(obs.Event{T: r.End, Kind: obs.KindCircuitDown, Coflow: r.CoflowID, Src: r.In, Dst: r.Out})
		}
	}
}

// retire records Coflows whose demand has fully drained. Coflows are visited
// in id order, not map order: two Coflows finishing at the same instant must
// emit their completion events in the same order on every run, or traces stop
// being reproducible.
func (s *circuitState) retire(now float64) {
	ids := make([]int, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		lc := s.live[id]
		done := true
		for _, b := range lc.rem {
			if b > byteEps {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		// The Coflow finished at its latest recorded flow finish, which can
		// precede the event instant now.
		finish := 0.0
		for _, f := range lc.flowFinish {
			finish = math.Max(finish, f)
		}
		if finish == 0 {
			finish = now
		}
		if lc.stranded {
			// Quarantined Coflow: its routable demand has drained but
			// stranded flows never will. It leaves the fabric without a CCT;
			// the PartialResult records what it could not deliver.
			s.partial().Finish[id] = finish
			delete(s.live, id)
			continue
		}
		if cb := s.opts.OnArchive; cb != nil {
			cb(Archived{
				ID:       id,
				Arrival:  lc.c.Arrival,
				Finish:   finish,
				CCT:      finish - lc.c.Arrival,
				Bytes:    lc.bytes,
				Switches: lc.switches,
			})
		} else {
			s.res.Finish[id] = finish
			s.res.CCT[id] = finish - lc.c.Arrival
		}
		delete(s.live, id)
		if o := s.opts.Obs; o != nil {
			o.CoflowsCompleted.Inc()
			if o.TraceEnabled() {
				o.Emit(obs.Event{T: finish, Kind: obs.KindCoflowComplete, Coflow: id, Src: -1, Dst: -1, Dur: finish - lc.c.Arrival})
			}
		}
	}
}

// replan rebuilds the circuit plan at time now. On a fault-free run a
// scheduler failure is a plan inconsistency surfaced as ErrReplan (this used
// to panic). Under faults, a stall means permanent outages left a Coflow
// unroutable: its doomed flows are quarantined and the pass retried, so every
// solvable workload still completes.
func (s *circuitState) replan(now float64) error {
	for {
		id, err := s.replanOnce(now)
		if err == nil {
			return nil
		}
		if s.faults != nil && errors.Is(err, core.ErrStalled) {
			if lc := s.live[id]; lc != nil && s.strandDoomed(lc, now) {
				// Fully stranded Coflows must leave the live set before the
				// retry or they would stall it again.
				s.retire(now)
				continue
			}
		}
		return fmt.Errorf("%w: coflow %d at t=%.6f: %w", ErrReplan, id, now, err)
	}
}

// replanOnce is one scheduling pass: in-flight reservations are kept
// (non-preemption), everything else is rescheduled with IntraCoflow in policy
// order against the remaining demand. It returns the Coflow that could not be
// placed alongside the error.
func (s *circuitState) replanOnce(now float64) (id int, err error) {
	o := s.opts.Obs
	if o != nil || s.opts.Prof != nil {
		// One measurement feeds the counters and the span: the span tree's
		// sched.pass totals sum to sched.seconds exactly. A failed pass
		// (stall under faults) closes its span but, as before, leaves the
		// pass counters untouched — the retry after quarantine counts.
		// Clock before span: the span's start stamp then lands no earlier
		// than passStart, so the recorded interval covers its children even
		// when the goroutine is preempted between the two calls.
		passStart := time.Now()
		psp := s.opts.Prof.Start("sched.pass")
		defer func() {
			if err != nil {
				psp.Attr("outcome", "stalled").Finish()
				return
			}
			d := time.Since(passStart).Seconds()
			psp.FinishWith(d)
			if o == nil {
				return
			}
			o.SchedPasses.Inc()
			o.SchedSeconds.Add(d)
			o.SchedPassTime.Observe(d)
			o.QueueDepth.Set(int64(len(s.plan)))
		}()
	}
	// Keep only circuits already established and still holding their ports.
	// The filter runs in place: locked is a subsequence of plan and the pass
	// rebuilds plan from it below, so no per-pass copy is needed. A circuit
	// that ended since the last pass leaves the plan here, and its full
	// planned bytes are folded into the drift-free base remainder in the same
	// breath — one exact subtraction per circuit, mirroring the bytes credit
	// streamed into rem across many windows.
	locked := s.plan[:0]
	for _, r := range s.plan {
		if r.Start >= now-timeEps {
			continue // never established; the pass replans its demand
		}
		if r.End > now+timeEps {
			locked = append(locked, r)
			continue
		}
		if lc := s.live[r.CoflowID]; lc != nil && lc.base != nil {
			// base exists only on fault-free runs, where the circuit carried
			// exactly its planned Bytes.
			lc.base[fabric.FlowKey{Src: r.In, Dst: r.Out}] -= r.Bytes
		}
	}

	prt := s.prt
	prt.Reset()
	if s.opts.Fair != nil {
		prt.SetBlackout(*s.opts.Fair)
	}
	if s.faults != nil {
		// Repair path: re-seed the degraded table defensively — a locked
		// circuit that no longer fits is invalidated rather than crashing the
		// run — then block every port interval a fault keeps down. (The
		// fault-free locked preload happens further down, after the clean
		// prefix is known, so the incremental path can bulk-load both in one
		// go.)
		fsp := s.opts.Prof.Start("fault.repair")
		kept := locked[:0]
		for _, r := range locked {
			if prt.TryReserve(r) == nil {
				kept = append(kept, r)
			}
		}
		locked = kept
		for port := 0; port < s.opts.Ports; port++ {
			for _, og := range s.faults.Outages(port) {
				if og.End > now+timeEps {
					prt.Block(port, math.Max(og.Start, now), og.End)
				}
			}
		}
		fsp.Finish()
	}

	sc := &s.scratch
	lockedFuture := sc.takeLockedFuture()
	for i := range locked {
		r := &locked[i]
		if s.live[r.CoflowID] != nil {
			m := lockedFuture[r.CoflowID]
			if m == nil {
				m = sc.takeExcl()
				lockedFuture[r.CoflowID] = m
			}
			// Against the drift-free base the exclusion is the circuit's full
			// planned bytes (base ignores in-flight delivery). Fault runs
			// have no base — the scheduler reads rem, which already reflects
			// delivery, so only the bytes the circuit will still carry (at
			// its possibly degraded rate) are excluded.
			if s.faults != nil {
				m[fabric.FlowKey{Src: r.In, Dst: r.Out}] += s.resFutureBytes(r, now)
			} else {
				m[fabric.FlowKey{Src: r.In, Dst: r.Out}] += r.Bytes
			}
		}
	}

	// Priority-sort the live Coflows on their full remaining demand. The
	// remainder headers are pooled; each also serves as the IntraCoflow input
	// below when its Coflow has no locked exclusions.
	for len(sc.tmps) < len(s.live) {
		sc.tmps = append(sc.tmps, &coflow.Coflow{})
	}
	n := 0
	for _, lc := range s.live {
		remainderInto(sc.tmps[n], lc)
		n++
	}
	tmps := sc.tmps[:n]
	var ordered []*coflow.Coflow
	if ss, ok := s.policy.(core.ScratchSorter); ok {
		if sc.key == nil {
			sc.key = make(map[int]float64, len(tmps))
		}
		sc.order = ss.SortInto(tmps, sc.order, sc.key)
		ordered = sc.order
	} else {
		ordered = s.policy.Sort(tmps)
	}

	if s.incremental {
		s.compactCache()
		sc.nextCache = sc.nextCache[:0]
		if sc.cacheIdx == nil {
			sc.cacheIdx = map[int]int{}
		} else {
			clear(sc.cacheIdx)
		}
		for i := range s.cache {
			sc.cacheIdx[s.cache[i].id] = i
		}
	}
	id, err = s.schedulePass(now, ordered, locked, s.incremental)
	if err == errBulkFallback {
		// The replayed reservations did not fit the table: the reuse checks
		// missed an invalidation. Rebuild the pass from scratch and drop the
		// cache — defense in depth, the differential suites never reach here.
		prt.Reset()
		if s.opts.Fair != nil {
			prt.SetBlackout(*s.opts.Fair)
		}
		sc.nextCache = sc.nextCache[:0]
		for i := range s.cache {
			s.cache[i] = planCacheEntry{}
		}
		s.cache = s.cache[:0]
		return s.schedulePass(now, ordered, locked, false)
	}
	if err == nil && s.incremental {
		// Swap the rebuilt cache in; stale entries are zeroed so the old
		// backing array does not pin retired schedules for the GC.
		old := s.cache
		s.cache = sc.nextCache
		for i := range old {
			old[i] = planCacheEntry{}
		}
		sc.nextCache = old[:0]
	}
	return id, err
}

// errBulkFallback signals that replayed cached reservations conflicted with
// the table — the reuse checks missed an invalidation — and the pass must be
// redone as a full rebuild.
var errBulkFallback = errors.New("sim: cached schedule replay conflicted")

// schedulePass rebuilds the plan for one scheduling pass: every live Coflow,
// in ordered priority order, either replays its cached schedule (reuse mode,
// when provably bit-identical to what IntraCoflow would produce — DESIGN.md
// §7) or runs IntraCoflow against the table built so far. The caller has
// Reset the table (with blackout and fault blocks applied); locked circuits
// are seeded here — bulk-loaded up front in reuse mode, Preloaded otherwise
// (the fault path seeded them already).
//
// Reuse certification rests on the intra search being a pure function of
// three things: its input flows, its start instant, and the busy intervals
// visible on the flows' ports below the search horizon. The input flows are
// compared bit-exactly (flowsEqual); the start instant only matters through
// the table because the cached search placed nothing before max(now,
// arrival) — the minStart guard pins that; and the port context is compared
// bit-exactly against the snapshot taken when the cached schedule was
// computed (SpansMatch), trimmed on both sides to intervals still visible
// from the current pass start. Expired intervals drop out of both views
// symmetrically and provably never influenced decisions at or after now, so
// a match means the search would walk the same release events, probe the
// same windows and compute the same floats — additions, removals and ulp
// drifts on the entry's ports all surface as snapshot mismatches, with no
// monotonicity reasoning needed.
func (s *circuitState) schedulePass(now float64, ordered []*coflow.Coflow, locked []core.Reservation, reuse bool) (int, error) {
	o := s.opts.Obs
	prt := s.prt
	sc := &s.scratch
	skips := int64(0)
	if reuse {
		prt.BulkAdd(locked)
		if err := prt.FinishBulk(); err != nil {
			return 0, errBulkFallback
		}
	} else if s.faults == nil {
		prt.Preload(locked)
	}
	s.plan = locked
	for _, tmp := range ordered {
		lc := s.live[tmp.ID]
		var e *planCacheEntry
		if reuse {
			if k, ok := sc.cacheIdx[tmp.ID]; ok {
				e = &s.cache[k]
			}
		}
		if e != nil && s.reusable(e, tmp, lc, now) {
			for i := range e.res {
				if err := prt.TryReserve(e.res[i]); err != nil {
					return 0, errBulkFallback
				}
			}
			// The cached schedule is bit-identical to what IntraCoflow would
			// recompute; only the planned finish needs refreshing — its base
			// is the pass start, which moved since the cached pass.
			finish := math.Max(now, lc.c.Arrival)
			if e.maxEnd > finish {
				finish = e.maxEnd
			}
			for _, r := range locked {
				if r.CoflowID == tmp.ID && r.End > finish {
					finish = r.End
				}
			}
			lc.finish = finish
			s.plan = append(s.plan, e.res...)
			sc.nextCache = append(sc.nextCache, *e)
			skips++
			continue
		}
		// Dirty: snapshot the port context the search is about to see, then
		// run the scheduler. The snapshot must precede the run — IntraCoflow's
		// own placements are part of its output, not its input.
		toSchedule := s.schedInput(tmp, lc)
		start := math.Max(now, lc.c.Arrival)
		if reuse {
			sc.ins, sc.outs = flowPorts(toSchedule.Flows, sc.ins, sc.outs)
			sc.spans = prt.SpansOn(start, math.Inf(1), sc.ins, sc.outs, sc.spans[:0])
		}
		sched, err := core.IntraCoflow(prt, toSchedule, core.Options{
			LinkBps:   s.opts.LinkBps,
			Delta:     s.opts.Delta,
			Start:     start,
			Order:     s.opts.Order,
			Seed:      s.opts.Seed,
			Reference: s.opts.Reference,
			Obs:       s.opts.Obs,
			Prof:      s.opts.Prof,
		})
		if err != nil {
			return tmp.ID, err
		}
		finish := sched.Finish
		for _, r := range locked {
			if r.CoflowID == tmp.ID && r.End > finish {
				finish = r.End
			}
		}
		lc.finish = finish
		s.plan = append(s.plan, sched.Reservations...)
		if reuse {
			ne := newCacheEntry(tmp.ID, toSchedule.Flows, sched.Reservations)
			ne.horizon = ne.maxEnd + s.opts.Delta + 2*timeEps
			for _, sp := range sc.spans {
				if sp.Start < ne.horizon {
					ne.ctx = append(ne.ctx, sp)
				}
			}
			sc.nextCache = append(sc.nextCache, ne)
		}
	}
	if o != nil {
		o.IntraSkipped.Add(skips)
	}
	return 0, nil
}

// compactCache drops cache entries for Coflows that have left the fabric.
// A retired Coflow's still-future occupancy vanishing from the table is
// caught by the snapshot comparison of any entry that was placed around it,
// so no bookkeeping is needed here.
func (s *circuitState) compactCache() {
	out := s.cache[:0]
	for i := range s.cache {
		if s.live[s.cache[i].id] != nil {
			out = append(out, s.cache[i])
		}
	}
	for i := len(out); i < len(s.cache); i++ {
		s.cache[i] = planCacheEntry{}
	}
	s.cache = out
}

// reusable reports whether the cached entry can be replayed for the Coflow
// this pass: its input flows are bit-identical; none of its placements have
// started or fall in the (now, now+timeEps] fuzz band — placements there
// were made against commitments the eps-tolerant comparisons could now round
// the other way; and the busy intervals currently visible on its ports below
// its horizon match the cached snapshot bit for bit.
func (s *circuitState) reusable(e *planCacheEntry, tmp *coflow.Coflow, lc *liveCoflow, now float64) bool {
	if lc == nil {
		return false
	}
	if e.minStart < now || (e.minStart > now && e.minStart <= now+timeEps) {
		return false
	}
	if !flowsEqual(e.flows, s.schedInput(tmp, lc).Flows) {
		return false
	}
	sc := &s.scratch
	sc.ins, sc.outs = flowPorts(e.flows, sc.ins, sc.outs)
	return s.prt.SpansMatch(e.ctx, math.Max(now, lc.c.Arrival), e.horizon, sc.ins, sc.outs)
}

// flowPorts fills ins and outs with the sorted unique source and destination
// ports of the flows, reusing the given backing slices. Flows arrive in
// (Src, Dst) order, so sources dedupe in place; destinations need a sort.
func flowPorts(flows []coflow.Flow, ins, outs []int) ([]int, []int) {
	ins, outs = ins[:0], outs[:0]
	for i := range flows {
		if n := len(ins); n == 0 || ins[n-1] != flows[i].Src {
			ins = append(ins, flows[i].Src)
		}
		outs = append(outs, flows[i].Dst)
	}
	sort.Ints(outs)
	w := 0
	for i, d := range outs {
		if i == 0 || d != outs[w-1] {
			outs[w] = d
			w++
		}
	}
	return ins, outs[:w]
}

// flowsEqual compares two flow slices exactly — Flow is comparable, so this
// is a bit-exact test of the scheduler input.
func flowsEqual(a, b []coflow.Flow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newCacheEntry snapshots one dirty-position outcome. The input flows are
// copied because the pooled remainder buffer they sit in recycles next pass;
// the reservations slice is owned by the schedule just computed (the plan
// keeps its own copies).
func newCacheEntry(id int, flows []coflow.Flow, res []core.Reservation) planCacheEntry {
	e := planCacheEntry{
		id:       id,
		flows:    append([]coflow.Flow(nil), flows...),
		res:      res,
		minStart: math.Inf(1),
		maxEnd:   math.Inf(-1),
	}
	for i := range res {
		if res[i].Start < e.minStart {
			e.minStart = res[i].Start
		}
		if res[i].End > e.maxEnd {
			e.maxEnd = res[i].End
		}
	}
	return e
}

// takeLockedFuture returns the pooled outer exclusion map, emptied, with the
// inner maps recycled into the pool.
func (sc *replanScratch) takeLockedFuture() map[int]map[fabric.FlowKey]float64 {
	if sc.lockedFuture == nil {
		sc.lockedFuture = map[int]map[fabric.FlowKey]float64{}
		return sc.lockedFuture
	}
	for id, m := range sc.lockedFuture {
		clear(m)
		sc.exclPool = append(sc.exclPool, m)
		delete(sc.lockedFuture, id)
	}
	return sc.lockedFuture
}

// takeExcl returns an empty inner exclusion map, pooled when available.
func (sc *replanScratch) takeExcl() map[fabric.FlowKey]float64 {
	if n := len(sc.exclPool); n > 0 {
		m := sc.exclPool[n-1]
		sc.exclPool = sc.exclPool[:n-1]
		return m
	}
	return map[fabric.FlowKey]float64{}
}

// remainderInto rebuilds tmp as the live Coflow's remaining demand from the
// continuously-credited rem — the priority-key view.
func remainderInto(tmp *coflow.Coflow, lc *liveCoflow) *coflow.Coflow {
	return remainderFrom(tmp, lc, lc.rem, nil)
}

// remainderFrom rebuilds tmp as the Coflow's remaining demand read from src,
// optionally excluding demand that locked reservations will serve. Flows
// come out in (Src, Dst) order without sorting: lc.keys was sorted once at
// admission and keys stranded out of the map are skipped on read.
func remainderFrom(tmp *coflow.Coflow, lc *liveCoflow, src, exclude map[fabric.FlowKey]float64) *coflow.Coflow {
	tmp.ID, tmp.Arrival = lc.c.ID, lc.c.Arrival
	flows := tmp.Flows[:0]
	for _, k := range lc.keys {
		b, ok := src[k]
		if !ok {
			continue
		}
		if exclude != nil {
			b -= exclude[k]
		}
		if b > byteEps {
			flows = append(flows, coflow.Flow{Src: k.Src, Dst: k.Dst, Bytes: b})
		}
	}
	tmp.Flows = flows
	return tmp
}

// schedInput builds the IntraCoflow input for the Coflow this pass: the
// drift-free base remainder minus the full planned bytes of its in-flight
// circuits. A Coflow that never carried a byte and holds no circuits keeps
// its pooled priority-sort header — rem and base are still bit-identical
// there, so the remainders are too.
func (s *circuitState) schedInput(tmp *coflow.Coflow, lc *liveCoflow) *coflow.Coflow {
	excl := s.scratch.lockedFuture[lc.c.ID]
	if lc.base == nil && excl == nil {
		return tmp
	}
	if s.scratch.sched == nil {
		s.scratch.sched = &coflow.Coflow{}
	}
	src := lc.rem
	if lc.base != nil {
		src = lc.base
	}
	return remainderFrom(s.scratch.sched, lc, src, excl)
}
