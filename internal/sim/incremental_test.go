package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/trace"
)

// observedCircuit runs RunCircuit with a fresh observer and trace sink,
// returning the observer so tests can read scheduler-cost counters.
func observedCircuit(t *testing.T, cs []*coflow.Coflow, opts CircuitOptions) (Result, []obs.Event, *obs.Observer) {
	t.Helper()
	sink := &obs.SliceSink{}
	o := obs.NewWith(obs.NewRegistry(), sink)
	opts.Obs = o
	res, err := RunCircuit(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, sink.Events(), o
}

// TestQuickIncrementalBitExact is the differential property the incremental
// replanner stands on: across arrival-dense random workloads — with fair
// windows, seeded fault plans, or the reference intra path mixed in — a run
// with dirty-prefix schedule reuse must be bit-identical to one with
// FullReplan forced, down to the full Result and the trace event stream.
func TestQuickIncrementalBitExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// A short horizon relative to total demand keeps many Coflows live at
		// once, so replans have deep priority orders to reuse.
		cs := randomWorkload(rng, 14, 5, 6, 1.0)
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01}
		switch rng.Intn(5) {
		case 0:
			opts.Fair = &core.FairWindows{N: 5, T: 1, Tau: 0.05}
		case 1:
			// Fault plans force the full rebuild on both sides; the case
			// guards the gate, not the reuse.
			opts.Faults = &fault.Plan{
				Seed:          seed,
				SetupFailProb: 0.3,
				TransientRate: 0.15, MeanOutage: 0.25, Horizon: 8,
				DegradedLinkProb: 0.25,
				StragglerProb:    0.25,
			}
		case 2:
			opts.Faults = &fault.Plan{Seed: seed} // zero plan: fault machinery on, no faults
		case 3:
			opts.Reference = true
		}
		full := opts
		full.FullReplan = true
		got, gotEv, _ := observedCircuit(t, cs, opts)
		want, wantEv, _ := observedCircuit(t, cs, full)
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: results diverge", seed)
			return false
		}
		if !sameEvents(gotEv, wantEv) {
			t.Logf("seed %d: trace streams diverge", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntraSkippedReconciles pins sched.intra_skipped to ground truth:
// on any fault-free workload, the incremental run's IntraPasses plus
// IntraSkipped must equal the IntraPasses of a FullReplan run over the same
// schedule passes, and a FullReplan run must never skip.
func TestQuickIntraSkippedReconciles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 16, 5, 6, 1.0)
		opts := CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01}
		if rng.Intn(3) == 0 {
			opts.Fair = &core.FairWindows{N: 5, T: 1, Tau: 0.05}
		}
		full := opts
		full.FullReplan = true
		_, _, oi := observedCircuit(t, cs, opts)
		_, _, of := observedCircuit(t, cs, full)
		if of.IntraSkipped.Load() != 0 {
			t.Logf("seed %d: FullReplan run skipped %d intra passes", seed, of.IntraSkipped.Load())
			return false
		}
		if oi.SchedPasses.Load() != of.SchedPasses.Load() {
			t.Logf("seed %d: sched passes diverge: %d vs %d", seed, oi.SchedPasses.Load(), of.SchedPasses.Load())
			return false
		}
		if oi.IntraPasses.Load()+oi.IntraSkipped.Load() != of.IntraPasses.Load() {
			t.Logf("seed %d: intra %d + skipped %d != full intra %d", seed,
				oi.IntraPasses.Load(), oi.IntraSkipped.Load(), of.IntraPasses.Load())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalSkipsDominateDenseWorkload guards the optimization's point:
// on an arrival-dense trace the cache must absorb at least two thirds of the
// would-be intra invocations (the ≥3× reduction the benchmark measures). The
// fabric is port-sparse — many ports, narrow Coflows, the datacenter shape
// the paper targets — so most Coflows' port contexts survive a pass intact.
func TestIncrementalSkipsDominateDenseWorkload(t *testing.T) {
	tr := trace.Generator{Ports: 48, Coflows: 200, HorizonSec: 5, MaxWidth: 4, Seed: 1}.Trace()
	_, _, o := observedCircuit(t, tr.Coflows, CircuitOptions{Ports: tr.Ports, LinkBps: gbps, Delta: 0.01})
	ran, skipped := o.IntraPasses.Load(), o.IntraSkipped.Load()
	if skipped < 2*ran {
		t.Fatalf("intra passes run %d, skipped %d: want skips >= 2x runs on a dense workload", ran, skipped)
	}
}

// TestShardedIncrementalBitExact: sharded execution must be invariant to both
// the worker count and the incremental/full-replan toggle, and identical to
// the serial runner.
func TestShardedIncrementalBitExact(t *testing.T) {
	tr := trace.Generator{Ports: 16, Coflows: 80, HorizonSec: 30, MaxWidth: 4, Seed: 3}.Trace()
	opts := CircuitOptions{Ports: tr.Ports, LinkBps: gbps, Delta: 0.01}
	base, err := RunCircuit(tr.Coflows, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		for _, fullReplan := range []bool{false, true} {
			o := opts
			o.FullReplan = fullReplan
			res, err := RunCircuitSharded(tr.Coflows, o, workers)
			if err != nil {
				t.Fatalf("workers=%d full=%v: %v", workers, fullReplan, err)
			}
			if !reflect.DeepEqual(res, base) {
				t.Fatalf("workers=%d full=%v: sharded result diverges from serial", workers, fullReplan)
			}
		}
	}
}
