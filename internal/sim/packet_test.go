package sim

import (
	"math"
	"math/rand"
	"testing"

	"sunflow/internal/aalo"
	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/varys"
)

const gbps = 1e9

func TestPacketSingleCoflowMatchesLowerBound(t *testing.T) {
	// One Coflow alone under Varys finishes exactly at TpL (MADD is optimal
	// for a single Coflow).
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 2e6},
		{Src: 0, Dst: 1, Bytes: 1e6},
		{Src: 1, Dst: 1, Bytes: 1e6},
	})
	res, err := RunPacket([]*coflow.Coflow{c}, 2, gbps, varys.Allocator{})
	if err != nil {
		t.Fatal(err)
	}
	tpl := c.PacketLowerBound(gbps)
	if math.Abs(res.CCT[1]-tpl) > 1e-6 {
		t.Fatalf("CCT = %v, want TpL = %v", res.CCT[1], tpl)
	}
}

func TestPacketArrivalsRespected(t *testing.T) {
	c := coflow.New(1, 2.5, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	res, err := RunPacket([]*coflow.Coflow{c}, 1, gbps, fabric.FairSharing{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Finish[1]-(2.5+0.008)) > 1e-6 {
		t.Fatalf("Finish = %v, want 2.508", res.Finish[1])
	}
	if math.Abs(res.CCT[1]-0.008) > 1e-6 {
		t.Fatalf("CCT = %v, want 0.008", res.CCT[1])
	}
}

func TestPacketEmptyCoflowCompletesInstantly(t *testing.T) {
	c := coflow.New(1, 1, nil)
	res, err := RunPacket([]*coflow.Coflow{c}, 1, gbps, fabric.FairSharing{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CCT[1] != 0 {
		t.Fatalf("CCT = %v, want 0", res.CCT[1])
	}
}

func TestPacketSequentialNonOverlapping(t *testing.T) {
	// Two Coflows with disjoint active periods do not affect each other.
	c1 := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	c2 := coflow.New(2, 10, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	res, err := RunPacket([]*coflow.Coflow{c1, c2}, 1, gbps, varys.Allocator{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CCT[1]-0.008) > 1e-6 || math.Abs(res.CCT[2]-0.008) > 1e-6 {
		t.Fatalf("CCTs = %v", res.CCT)
	}
}

func TestPacketVarysSCFBeatsFairForSmall(t *testing.T) {
	// A tiny Coflow contending with a huge one: Varys serves the tiny one
	// first, so its CCT is near its solo time.
	big := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1000e6}})
	small := coflow.New(2, 0, []coflow.Flow{{Src: 1, Dst: 0, Bytes: 1e6}})
	res, err := RunPacket([]*coflow.Coflow{big, small}, 2, gbps, varys.Allocator{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CCT[2] > 0.01 {
		t.Fatalf("small coflow CCT = %v under SEBF, want ≈ 0.008", res.CCT[2])
	}
	// The big one finishes after both demands drain through out.0.
	if want := (1001e6) * 8 / gbps; math.Abs(res.CCT[1]-want) > 1e-3 {
		t.Fatalf("big coflow CCT = %v, want %v", res.CCT[1], want)
	}
}

func TestPacketAaloThresholdDemotion(t *testing.T) {
	// A long Coflow is demoted after 10 MB attained service; a later short
	// Coflow then overtakes it on the shared port.
	long := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 100e6}})
	short := coflow.New(2, 0.2, []coflow.Flow{{Src: 1, Dst: 0, Bytes: 5e6}})
	res, err := RunPacket([]*coflow.Coflow{long, short}, 2, gbps, aalo.Allocator{})
	if err != nil {
		t.Fatal(err)
	}
	// By 0.2 s the long Coflow has sent 25 MB > 10 MB (queue 1); the short
	// one (queue 0) takes the port and finishes in ≈ 40 ms.
	if res.CCT[2] > 0.05 {
		t.Fatalf("short coflow CCT = %v, want ≈ 0.04 (D-CLAS demotion failed)", res.CCT[2])
	}
	// Long coflow: 100 MB total, delayed by the 5 MB intruder.
	if want := 0.8 + 0.04; math.Abs(res.CCT[1]-want) > 1e-3 {
		t.Fatalf("long coflow CCT = %v, want %v", res.CCT[1], want)
	}
}

func TestPacketConservation(t *testing.T) {
	// Total weighted completion sanity: all Coflows finish, none before
	// their solo lower bound.
	rng := rand.New(rand.NewSource(6))
	var cs []*coflow.Coflow
	for id := 0; id < 20; id++ {
		c := randomCoflow(rng, 6, 8)
		c.ID = id
		c.Arrival = rng.Float64() * 2
		cs = append(cs, c)
	}
	for _, alloc := range []fabric.RateAllocator{varys.Allocator{}, aalo.Allocator{}, fabric.FairSharing{}} {
		res, err := RunPacket(cs, 6, gbps, alloc)
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		if len(res.CCT) != len(cs) {
			t.Fatalf("%s: %d of %d coflows finished", alloc.Name(), len(res.CCT), len(cs))
		}
		for _, c := range cs {
			if res.CCT[c.ID] < c.PacketLowerBound(gbps)-1e-6 {
				t.Fatalf("%s: coflow %d beat its lower bound: %v < %v",
					alloc.Name(), c.ID, res.CCT[c.ID], c.PacketLowerBound(gbps))
			}
		}
	}
}

func TestPacketDuplicateIDRejected(t *testing.T) {
	a := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1}})
	b := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1}})
	if _, err := RunPacket([]*coflow.Coflow{a, b}, 1, gbps, fabric.FairSharing{}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

func TestPacketValidatesBandwidth(t *testing.T) {
	if _, err := RunPacket(nil, 1, 0, fabric.FairSharing{}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

// randomCoflow builds a random Coflow with distinct port pairs.
func randomCoflow(rng *rand.Rand, ports, maxFlows int) *coflow.Coflow {
	n := 1 + rng.Intn(maxFlows)
	used := map[[2]int]bool{}
	var flows []coflow.Flow
	for len(flows) < n {
		i, j := rng.Intn(ports), rng.Intn(ports)
		if used[[2]int{i, j}] {
			continue
		}
		used[[2]int{i, j}] = true
		flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(100)) * 1e6})
	}
	return coflow.New(rng.Int(), 0, flows)
}
