package sim

import (
	"fmt"
	"sort"
	"sync"

	"sunflow/internal/coflow"
	"sunflow/internal/obs"
)

// Partition splits a workload into the connected components of its
// port-contention graph: two Coflows land in the same component exactly when
// a chain of shared switch ports links them, a port counting as shared
// whenever either Coflow sends or receives on it. The input and output sides
// of a port are independent bandwidth resources on an optical switch (§2.1),
// but the fault model treats the port as one failure domain — an outage downs
// both sides at once — so the partition conflates the sides too: components
// then never co-own a port in any role, each port's outages belong to exactly
// one component, and component simulations are fully independent.
// Components are returned in order of their first Coflow in the input slice
// and preserve the input order of their members; a Coflow with no positive
// demand touches no ports and forms a singleton component.
func Partition(coflows []*coflow.Coflow, ports int) [][]*coflow.Coflow {
	parent := make([]int, ports)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	for _, c := range coflows {
		anchor := -1
		for _, f := range c.Flows {
			if f.Bytes <= 0 {
				continue
			}
			if anchor < 0 {
				anchor = f.Src
			}
			union(anchor, f.Src)
			union(anchor, f.Dst)
		}
	}

	byRoot := map[int]int{}
	var comps [][]*coflow.Coflow
	for _, c := range coflows {
		anchor := -1
		for _, f := range c.Flows {
			if f.Bytes > 0 {
				anchor = f.Src
				break
			}
		}
		if anchor < 0 {
			comps = append(comps, []*coflow.Coflow{c})
			continue
		}
		root := find(anchor)
		idx, ok := byRoot[root]
		if !ok {
			idx = len(comps)
			byRoot[root] = idx
			comps = append(comps, nil)
		}
		comps[idx] = append(comps[idx], c)
	}
	return comps
}

// componentPorts returns which ports a component touches in either role,
// as a lookup usable with fault.Model.RestrictPorts.
func componentPorts(comp []*coflow.Coflow, ports int) func(int) bool {
	used := make([]bool, ports)
	for _, c := range comp {
		for _, f := range c.Flows {
			if f.Bytes > 0 {
				used[f.Src] = true
				used[f.Dst] = true
			}
		}
	}
	return func(p int) bool { return p >= 0 && p < ports && used[p] }
}

// RunCircuitSharded simulates the workload like RunCircuit but splits it
// into port-disjoint connected components (Partition) and runs independent
// components concurrently on up to workers goroutines. Results merge
// deterministically in component order — the output is bit-identical across
// worker counts — and each component gets private, deterministically merged
// instrumentation: metric registries fold in component order
// (obs.Registry.Merge) and trace streams concatenate in component order, so
// a traced sharded run is reproducible even though its event interleaving
// differs from the serial run's.
//
// Within one component the simulation is exactly RunCircuit on that
// component's Coflows. Against the serial whole-fabric run the results agree
// to floating-point precision whenever at most one Coflow per component is
// live at a time, but can differ for real under heavy intra-component
// contention: the serial loop replans every live Coflow at every global
// event, so a foreign component's arrival or completion can re-sort a
// component's queue after an in-flight Coflow's shrinking remainder overtook
// a queued one — a replan instant the component-local run does not have.
// Both schedules are valid Sunflow schedules; see docs/SCALE.md for the full
// determinism contract. Result.Events is the sum over component loops and
// the PartialResult's stranded flows appear in component order, not global
// quarantine order.
//
// Some configurations fall back to the serial path, which is always correct:
// fewer than two workers or components, starvation-avoidance fair windows
// (fair service is defined over the whole fabric's window assignment), and
// fault plans with a FailFirstSetups budget (the budget is a global
// first-K-attempts counter, inherently order-dependent).
func RunCircuitSharded(coflows []*coflow.Coflow, opts CircuitOptions, workers int) (Result, error) {
	if err := checkCircuitOptions(opts); err != nil {
		return newResult(), err
	}
	arrivalsOrder, _, err := prepare(coflows, opts.Ports)
	if err != nil {
		return newResult(), err
	}
	serial := func() (Result, error) {
		return runCircuit(&sliceSource{cs: arrivalsOrder}, opts, false)
	}
	if workers <= 1 || opts.Fair != nil || (opts.Faults != nil && opts.Faults.FailFirstSetups > 0) {
		return serial()
	}

	comps := Partition(arrivalsOrder, opts.Ports)
	var real [][]*coflow.Coflow
	var trivial []*coflow.Coflow
	for _, comp := range comps {
		if len(comp) == 1 && comp[0].TotalBytes() <= 0 {
			trivial = append(trivial, comp[0])
			continue
		}
		real = append(real, comp)
	}
	if len(real) <= 1 {
		return serial()
	}
	if workers > len(real) {
		workers = len(real)
	}

	sp := opts.Prof.Start("sim.run").Attr("sim", "circuit-sharded")
	defer sp.Finish()

	// The archive callback must not run concurrently: callers fold records
	// into digests or writers that are not goroutine-safe.
	onArchive := opts.OnArchive
	if onArchive != nil {
		var mu sync.Mutex
		cb := opts.OnArchive
		onArchive = func(a Archived) {
			mu.Lock()
			cb(a)
			mu.Unlock()
		}
	}

	type shardOut struct {
		res Result
		err error
		reg *obs.Registry
		evs []obs.Event
	}
	outs := make([]shardOut, len(real))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				comp := real[i]
				copts := opts
				copts.Prof = nil
				copts.OnArchive = onArchive
				var sink *obs.SliceSink
				copts.Obs, sink = opts.Obs.Detached()
				fm, err := opts.Faults.Compile(opts.Ports)
				if err != nil {
					outs[i] = shardOut{err: fmt.Errorf("sim: %w", err)}
					continue
				}
				fm.RestrictPorts(componentPorts(comp, opts.Ports))
				copts.faultModel = fm
				r, err := runCircuit(&sliceSource{cs: comp}, copts, false)
				outs[i] = shardOut{res: r, err: err, reg: copts.Obs.Registry()}
				if sink != nil {
					outs[i].evs = sink.Events()
				}
			}
		}()
	}
	for i := range real {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	res := newResult()
	for i := range outs {
		if outs[i].err != nil {
			return res, outs[i].err
		}
	}

	// Zero-demand Coflows retire at admission with no events or circuits, as
	// the serial admit would record them; archive them (or record them) first
	// so their order is fixed before any component merges.
	for _, c := range trivial {
		if onArchive != nil {
			onArchive(Archived{ID: c.ID, Arrival: c.Arrival, Finish: c.Arrival})
		} else {
			res.CCT[c.ID] = 0
			res.Finish[c.ID] = c.Arrival
		}
	}

	for i := range outs {
		out := &outs[i]
		for id, v := range out.res.CCT {
			res.CCT[id] = v
		}
		for id, v := range out.res.Finish {
			res.Finish[id] = v
		}
		for id, v := range out.res.SwitchCount {
			res.SwitchCount[id] = v
		}
		res.Events += out.res.Events
		if p := out.res.Partial; p != nil {
			dst := resPartial(&res)
			dst.Stranded = append(dst.Stranded, p.Stranded...)
			dst.Bytes += p.Bytes
			for id, v := range p.Finish {
				dst.Finish[id] = v
			}
		}
	}

	if opts.Obs != nil {
		reg := opts.Obs.Registry()
		for i := range outs {
			reg.Merge(outs[i].reg)
		}
		if sink := opts.Obs.Sink(); sink != nil {
			for i := range outs {
				for _, ev := range outs[i].evs {
					sink.Emit(ev)
				}
			}
		}
	}
	return res, nil
}

// resPartial mirrors circuitState.partial for the merged result.
func resPartial(res *Result) *PartialResult {
	if res.Partial == nil {
		res.Partial = &PartialResult{Finish: map[int]float64{}}
	}
	return res.Partial
}

// sortStranded orders stranded flows by (At, Coflow, Src, Dst) — the
// canonical order differential tests compare sharded and serial partial
// results in, since the two paths discover strandings in different orders.
func sortStranded(s []StrandedFlow) {
	sort.Slice(s, func(a, b int) bool {
		if s[a].At != s[b].At {
			return s[a].At < s[b].At
		}
		if s[a].Coflow != s[b].Coflow {
			return s[a].Coflow < s[b].Coflow
		}
		if s[a].Src != s[b].Src {
			return s[a].Src < s[b].Src
		}
		return s[a].Dst < s[b].Dst
	})
}
