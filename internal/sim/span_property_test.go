package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
	"sunflow/internal/trace"
	"sunflow/internal/varys"
)

// nonSpan strips KindSpan events, leaving the deterministic simulated-time
// stream the digests cover.
func nonSpan(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind != obs.KindSpan {
			out = append(out, ev)
		}
	}
	return out
}

// TestQuickSpansDontPerturbCircuit guards the profiler's correctness half of
// the zero-overhead contract, seed by seed: enabling spans must change
// neither the simulation result nor the simulated-time event stream — only
// append wall-clock span events to it.
func TestQuickSpansDontPerturbCircuit(t *testing.T) {
	f := func(seed uint8) bool {
		cs := trace.Generator{Ports: 10, Coflows: 8, MaxWidth: 4, Seed: int64(seed) + 1}.Trace().Coflows
		plainSink := &obs.SliceSink{}
		plain, err := RunCircuit(cs, CircuitOptions{
			Ports: 10, LinkBps: gbps, Delta: 0.01,
			Obs: obs.NewWith(obs.NewRegistry(), plainSink),
		})
		if err != nil {
			t.Fatal(err)
		}
		profSink := &obs.SliceSink{}
		p := span.New(span.Options{Registry: obs.NewRegistry(), Sink: profSink, Tree: true})
		profiled, err := RunCircuit(cs, CircuitOptions{
			Ports: 10, LinkBps: gbps, Delta: 0.01,
			Obs:  obs.NewWith(obs.NewRegistry(), profSink),
			Prof: p.NewStack(""),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, profiled) {
			t.Errorf("seed %d: results differ with spans enabled", seed)
			return false
		}
		if !reflect.DeepEqual(plainSink.Events(), nonSpan(profSink.Events())) {
			t.Errorf("seed %d: non-span event streams differ", seed)
			return false
		}
		if profSink.Count(obs.KindSpan) == 0 {
			t.Errorf("seed %d: no span events recorded", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpansDontPerturbPacket is the packet-fabric side of the same
// contract, with the allocator's kernel spans nested under the simulator's.
func TestQuickSpansDontPerturbPacket(t *testing.T) {
	f := func(seed uint8) bool {
		cs := trace.Generator{Ports: 10, Coflows: 8, MaxWidth: 4, Seed: int64(seed) + 1}.Trace().Coflows
		plainSink := &obs.SliceSink{}
		plainObs := obs.NewWith(obs.NewRegistry(), plainSink)
		plain, err := RunPacketOpts(cs, PacketOptions{
			Ports: 10, LinkBps: gbps,
			Alloc: varys.Allocator{Obs: plainObs},
			Obs:   plainObs,
		})
		if err != nil {
			t.Fatal(err)
		}
		profSink := &obs.SliceSink{}
		profObs := obs.NewWith(obs.NewRegistry(), profSink)
		p := span.New(span.Options{Registry: obs.NewRegistry(), Sink: profSink})
		st := p.NewStack("")
		profiled, err := RunPacketOpts(cs, PacketOptions{
			Ports: 10, LinkBps: gbps,
			Alloc: varys.Allocator{Obs: profObs, Prof: st},
			Obs:   profObs, Prof: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, profiled) {
			t.Errorf("seed %d: results differ with spans enabled", seed)
			return false
		}
		if !reflect.DeepEqual(plainSink.Events(), nonSpan(profSink.Events())) {
			t.Errorf("seed %d: non-span event streams differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSpanTotalsReconcileWithCounters pins the FinishWith contract: one
// measurement feeds both the sched.seconds counter and the sched.pass spans,
// so the aggregate span histogram agrees with the counter bit for bit, not
// within clock jitter.
func TestSpanTotalsReconcileWithCounters(t *testing.T) {
	cs := obsWorkload()
	reg := obs.NewRegistry()
	o := obs.NewWith(reg, nil)
	p := span.New(span.Options{Registry: reg})
	if _, err := RunCircuit(cs, CircuitOptions{
		Ports: 12, LinkBps: gbps, Delta: 0.01, Obs: o, Prof: p.NewStack(""),
	}); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("span.sched.pass")
	if h.Count() != o.SchedPasses.Load() {
		t.Errorf("span.sched.pass count = %d, sched.passes = %d", h.Count(), o.SchedPasses.Load())
	}
	if h.Sum() != o.SchedSeconds.Load() {
		t.Errorf("span.sched.pass sum = %v, sched.seconds = %v (must be exactly equal)",
			h.Sum(), o.SchedSeconds.Load())
	}
	if h.Count() == 0 {
		t.Fatalf("no sched.pass spans recorded")
	}
}

// TestSpanTreeCoversSimRun checks the recorded hierarchy end to end on a
// real run: one sim.run root whose descendants include every sched.pass, and
// whose per-phase self times telescope back to the root's duration.
func TestSpanTreeCoversSimRun(t *testing.T) {
	cs := obsWorkload()
	p := span.New(span.Options{Tree: true})
	if _, err := RunCircuit(cs, CircuitOptions{
		Ports: 12, LinkBps: gbps, Delta: 0.01, Prof: p.NewStack(""),
	}); err != nil {
		t.Fatal(err)
	}
	roots := p.Roots()
	if len(roots) != 1 || roots[0].Name != "sim.run" {
		t.Fatalf("roots = %+v, want one sim.run", roots)
	}
	root := roots[0]
	passes, selfSum := 0, 0.0
	var walk func(*span.Span)
	walk = func(sp *span.Span) {
		selfSum += sp.Self()
		if sp.Name == "sched.pass" {
			passes++
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(root)
	if passes == 0 {
		t.Fatalf("no sched.pass spans under sim.run")
	}
	// Self() clamps at zero, so the telescoped sum can only meet or exceed
	// the root duration; the slack is clock jitter, not unaccounted time.
	if selfSum < root.Dur-1e-9 {
		t.Errorf("Σ self = %v under root duration %v", selfSum, root.Dur)
	}
}
