package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Archived is the compact record a retired Coflow leaves behind when the
// simulator runs in archive mode (CircuitOptions.OnArchive). It carries
// exactly what the Result maps would have recorded — completion time, CCT
// and circuit establishments — plus the demand the Coflow delivered, in a
// fixed-size struct so a 10⁶-coflow run can stream records to disk (or fold
// them into a digest) instead of holding three growing maps. Stranded
// Coflows never archive: they retire into Result.Partial as always.
type Archived struct {
	// ID is the Coflow id.
	ID int
	// Arrival is the Coflow's arrival time in seconds.
	Arrival float64
	// Finish is the absolute completion time (Result.Finish).
	Finish float64
	// CCT is Finish − Arrival (Result.CCT).
	CCT float64
	// Bytes is the total demand the Coflow carried.
	Bytes float64
	// Switches is the number of circuit establishments made on the Coflow's
	// behalf (Result.SwitchCount).
	Switches int
}

// ArchiveDigest folds Archived records into an order-independent fingerprint:
// each record hashes to SHA-256 of its canonical binary encoding and the
// digest XORs the per-record hashes together. Two runs archived the same
// Coflows with bit-identical results if and only if their digests and counts
// match, regardless of retirement order — which is what lets the sharded
// runner and the scale smoke test compare runs without retaining records.
//
// The zero value is ready to use. Not safe for concurrent use.
type ArchiveDigest struct {
	acc [sha256.Size]byte
	n   int
}

// Add folds one record into the digest.
func (d *ArchiveDigest) Add(a Archived) {
	var buf [48]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(int64(a.ID)))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(a.Arrival))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(a.Finish))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(a.CCT))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(a.Bytes))
	binary.LittleEndian.PutUint64(buf[40:], uint64(int64(a.Switches)))
	h := sha256.Sum256(buf[:])
	for i := range d.acc {
		d.acc[i] ^= h[i]
	}
	d.n++
}

// Count returns the number of records folded in.
func (d *ArchiveDigest) Count() int { return d.n }

// Sum returns the digest as "<count>:<hex>". Two digests compare equal
// exactly when the same multiset of records was folded into each (up to
// SHA-256 collisions and XOR-cancelling duplicates, neither of which occurs
// for the unique-id record streams the simulator produces).
func (d *ArchiveDigest) Sum() string {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(int64(d.n)))
	return hex.EncodeToString(n[:]) + ":" + hex.EncodeToString(d.acc[:])
}
