package sim

import (
	"math"
	"math/rand"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
)

var circOpts = CircuitOptions{Ports: 6, LinkBps: gbps, Delta: 0.01}

func TestCircuitSingleCoflow(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{c}, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CCT[1]-0.018) > 1e-6 {
		t.Fatalf("CCT = %v, want 0.018", res.CCT[1])
	}
	if res.SwitchCount[1] != 1 {
		t.Fatalf("SwitchCount = %d, want 1", res.SwitchCount[1])
	}
}

func TestCircuitMatchesIntraScheduleWhenAlone(t *testing.T) {
	// With one Coflow in the system, the online simulation reproduces the
	// offline IntraCoflow schedule exactly.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		c := randomCoflow(rng, 6, 12)
		c.ID = 1
		prt := core.NewPRT(6)
		sched, err := core.IntraCoflow(prt, c, core.Options{LinkBps: gbps, Delta: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCircuit([]*coflow.Coflow{c}, circOpts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.CCT[1]-sched.Finish) > 1e-6 {
			t.Fatalf("online CCT %v != offline %v", res.CCT[1], sched.Finish)
		}
		if res.SwitchCount[1] != sched.SwitchingCount() {
			t.Fatalf("online switches %d != offline %d", res.SwitchCount[1], sched.SwitchingCount())
		}
	}
}

func TestCircuitSequentialCoflows(t *testing.T) {
	// Non-overlapping Coflows each get their solo CCT.
	c1 := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	c2 := coflow.New(2, 5, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{c1, c2}, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CCT[1]-0.018) > 1e-6 || math.Abs(res.CCT[2]-0.018) > 1e-6 {
		t.Fatalf("CCTs = %v", res.CCT)
	}
}

func TestCircuitShortCoflowPriority(t *testing.T) {
	// SCF: a short Coflow arriving while a long one transmits on another
	// port pair is not delayed.
	long := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 500e6}})
	short := coflow.New(2, 0.1, []coflow.Flow{{Src: 1, Dst: 1, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{long, short}, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CCT[2]-0.018) > 1e-6 {
		t.Fatalf("disjoint short CCT = %v, want 0.018", res.CCT[2])
	}
}

func TestCircuitNonPreemption(t *testing.T) {
	// A circuit in flight is never torn down: a short Coflow arriving for
	// the same ports must wait for the long transfer to finish.
	long := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 100e6}}) // busy until 0.81
	short := coflow.New(2, 0.1, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{long, short}, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CCT[1]-0.81) > 1e-6 {
		t.Fatalf("long CCT = %v, want 0.81 (preempted?)", res.CCT[1])
	}
	// Short waits until 0.81, then δ+0.008.
	if want := 0.81 - 0.1 + 0.018; math.Abs(res.CCT[2]-want) > 1e-6 {
		t.Fatalf("short CCT = %v, want %v", res.CCT[2], want)
	}
}

func TestCircuitPriorityInversionOnFuture(t *testing.T) {
	// A short Coflow arrives while a long one is transmitting on its port:
	// the long Coflow's *future* reservations must yield (they are
	// replanned), but the in-flight circuit is kept.
	long := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 100e6},
		{Src: 0, Dst: 1, Bytes: 100e6},
	})
	short := coflow.New(2, 0.1, []coflow.Flow{{Src: 0, Dst: 2, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{long, short}, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	// in.0 serves (0,0) until 0.81 (locked), then the short Coflow (higher
	// priority under SCF) gets in.0 before the long one's second flow.
	if want := 0.81 + 0.018 - 0.1; math.Abs(res.CCT[2]-want) > 1e-6 {
		t.Fatalf("short CCT = %v, want %v", res.CCT[2], want)
	}
	if want := 0.81 + 0.018 + 0.81; math.Abs(res.CCT[1]-want) > 1e-6 {
		t.Fatalf("long CCT = %v, want %v", res.CCT[1], want)
	}
}

func TestCircuitAllCoflowsFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var cs []*coflow.Coflow
	for id := 0; id < 30; id++ {
		c := randomCoflow(rng, 6, 10)
		c.ID = id
		c.Arrival = rng.Float64() * 3
		cs = append(cs, c)
	}
	res, err := RunCircuit(cs, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CCT) != len(cs) {
		t.Fatalf("%d of %d coflows finished", len(res.CCT), len(cs))
	}
	for _, c := range cs {
		// No Coflow beats its circuit lower bound.
		if res.CCT[c.ID] < c.CircuitLowerBound(gbps, 0.01)-1e-6 {
			t.Fatalf("coflow %d CCT %v below TcL %v", c.ID, res.CCT[c.ID], c.CircuitLowerBound(gbps, 0.01))
		}
	}
}

func TestCircuitSwitchCountAtLeastFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	var cs []*coflow.Coflow
	for id := 0; id < 10; id++ {
		c := randomCoflow(rng, 6, 8)
		c.ID = id
		c.Arrival = rng.Float64()
		cs = append(cs, c)
	}
	res, err := RunCircuit(cs, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if res.SwitchCount[c.ID] < c.NumFlows() {
			t.Fatalf("coflow %d: %d switches for %d flows", c.ID, res.SwitchCount[c.ID], c.NumFlows())
		}
	}
}

func TestCircuitWithFairWindows(t *testing.T) {
	// Starvation avoidance: a permanently deprioritized Coflow still makes
	// progress through the fair windows.
	fair := &core.FairWindows{N: 3, T: 0.5, Tau: 0.05}
	opts := CircuitOptions{Ports: 3, LinkBps: gbps, Delta: 0.01, Fair: fair,
		// Keep the big Coflow always first: a policy that starves by id.
		Policy: core.PriorityClasses{Class: map[int]int{1: 0, 2: 1}},
	}
	// Coflow 1 hogs port pair (0,0) effectively forever relative to the
	// horizon; Coflow 2 wants the same pair.
	hog := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1000e6}})
	starved := coflow.New(2, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{hog, starved}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CCT) != 2 {
		t.Fatalf("only %d coflows finished", len(res.CCT))
	}
	// Without fair windows the starved Coflow would wait the full 8+ s
	// transfer; with them it finishes within a few N·(T+τ) rounds.
	noFair, err := RunCircuit([]*coflow.Coflow{hog, starved},
		CircuitOptions{Ports: 3, LinkBps: gbps, Delta: 0.01,
			Policy: core.PriorityClasses{Class: map[int]int{1: 0, 2: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CCT[2] >= noFair.CCT[2] {
		t.Fatalf("fair windows did not help: %v vs %v", res.CCT[2], noFair.CCT[2])
	}
	if res.CCT[2] > 4*3*(0.5+0.05) {
		t.Fatalf("starved coflow took %v, want service within a few N(T+τ) rounds", res.CCT[2])
	}
}

func TestCircuitValidates(t *testing.T) {
	if _, err := RunCircuit(nil, CircuitOptions{Ports: 1, LinkBps: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad := &core.FairWindows{N: 2, T: 0.001, Tau: 0.1}
	if _, err := RunCircuit(nil, CircuitOptions{Ports: 2, LinkBps: gbps, Delta: 0.01, Fair: bad}); err == nil {
		t.Fatal("invalid fair windows accepted")
	}
}

func TestCircuitEmptyWorkload(t *testing.T) {
	res, err := RunCircuit(nil, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CCT) != 0 {
		t.Fatalf("CCT = %v", res.CCT)
	}
}
