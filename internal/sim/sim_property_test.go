package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/varys"
)

// randomWorkload builds a workload of random Coflows with random arrivals.
func randomWorkload(rng *rand.Rand, n, ports, maxFlows int, horizon float64) []*coflow.Coflow {
	var cs []*coflow.Coflow
	for id := 0; id < n; id++ {
		c := randomCoflow(rng, ports, maxFlows)
		c.ID = id
		c.Arrival = rng.Float64() * horizon
		cs = append(cs, c)
	}
	return cs
}

func TestQuickCircuitWithinHalfOfSoloSchedule(t *testing.T) {
	// Property: an online CCT can occasionally beat the greedy solo
	// schedule (shortened reservations reshuffle a Coflow's internal order
	// — a classic scheduling anomaly), but never by more than 2×: solo is
	// within 2·TcL by Lemma 1 and the online CCT is at least TcL.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 6, 5, 6, 2)
		res, err := RunCircuit(cs, CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01})
		if err != nil {
			return false
		}
		for _, c := range cs {
			solo, err := core.IntraCoflow(core.NewPRT(5), c, core.Options{LinkBps: gbps, Delta: 0.01})
			if err != nil {
				return false
			}
			if res.CCT[c.ID] < solo.CCT(0)/2-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCircuitRespectsLowerBounds(t *testing.T) {
	// Property: no Coflow ever beats its circuit-switched lower bound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 8, 6, 8, 3)
		res, err := RunCircuit(cs, CircuitOptions{Ports: 6, LinkBps: gbps, Delta: 0.01})
		if err != nil {
			return false
		}
		if len(res.CCT) != len(cs) {
			return false
		}
		for _, c := range cs {
			if res.CCT[c.ID] < c.CircuitLowerBound(gbps, 0.01)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPacketRespectsLowerBounds(t *testing.T) {
	// Property: Varys and fair sharing never beat TpL, and everything
	// finishes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 8, 6, 8, 3)
		for _, alloc := range []fabric.RateAllocator{varys.Allocator{}, fabric.FairSharing{}} {
			res, err := RunPacket(cs, 6, gbps, alloc)
			if err != nil || len(res.CCT) != len(cs) {
				return false
			}
			for _, c := range cs {
				if res.CCT[c.ID] < c.PacketLowerBound(gbps)-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCircuitDeterminism(t *testing.T) {
	// Property: two runs of the same workload agree exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng, 6, 5, 6, 2)
		a, err := RunCircuit(cs, CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01})
		if err != nil {
			return false
		}
		b, err := RunCircuit(cs, CircuitOptions{Ports: 5, LinkBps: gbps, Delta: 0.01})
		if err != nil {
			return false
		}
		for id, v := range a.CCT {
			if b.CCT[id] != v || a.SwitchCount[id] != b.SwitchCount[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitFIFOOrderUnderFIFOPolicy(t *testing.T) {
	// Under FIFO, two same-shape Coflows on the same ports complete in
	// arrival order.
	a := coflow.New(1, 0.0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 10e6}})
	b := coflow.New(2, 0.001, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 10e6}})
	res, err := RunCircuit([]*coflow.Coflow{b, a}, CircuitOptions{
		Ports: 1, LinkBps: gbps, Delta: 0.01, Policy: core.FIFO{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[1] >= res.Finish[2] {
		t.Fatalf("FIFO violated: first arrival finished at %v, second at %v", res.Finish[1], res.Finish[2])
	}
}

func TestPacketFrozenRatesWasteBandwidth(t *testing.T) {
	// The §5.4 Varys inefficiency: one Coflow with a short and a long flow
	// on different ports. MADD finishes them together, so freezing changes
	// nothing for a lone Coflow; but with backfill giving the short flow
	// extra rate, it finishes early and its bandwidth idles until the
	// Coflow completes. Verify the long flow's finish defines the CCT and
	// no rate is reassigned mid-Coflow (CCT equals the MADD bottleneck).
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 10e6},
		{Src: 1, Dst: 1, Bytes: 80e6},
	})
	res, err := RunPacket([]*coflow.Coflow{c}, 2, gbps, varys.Allocator{})
	if err != nil {
		t.Fatal(err)
	}
	// Both flows ride separate ports: backfill gives both full rate; CCT is
	// the long flow's 0.64 s.
	if math.Abs(res.CCT[1]-0.64) > 1e-6 {
		t.Fatalf("CCT = %v, want 0.64", res.CCT[1])
	}
}

func TestCircuitLockedReservationServesExactBytes(t *testing.T) {
	// A replan mid-flight must neither lose nor duplicate bytes: total
	// switching equals the minimal establishments when no shortening is
	// needed, and the Coflow still finishes exactly on its solo schedule.
	long := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 100e6}})
	// Arrivals that trigger replans but use disjoint ports.
	noise1 := coflow.New(2, 0.1, []coflow.Flow{{Src: 1, Dst: 1, Bytes: 1e6}})
	noise2 := coflow.New(3, 0.3, []coflow.Flow{{Src: 2, Dst: 2, Bytes: 1e6}})
	res, err := RunCircuit([]*coflow.Coflow{long, noise1, noise2}, circOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CCT[1]-0.81) > 1e-6 {
		t.Fatalf("long CCT = %v, want 0.81 (replans disturbed a locked circuit)", res.CCT[1])
	}
	if res.SwitchCount[1] != 1 {
		t.Fatalf("long coflow switches = %d, want 1", res.SwitchCount[1])
	}
}
