package tms

import (
	"math/rand"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
)

const gbps = 1e9

var opts = Options{LinkBps: gbps, Delta: 0.01}

func randomCoflow(rng *rand.Rand, ports, maxFlows int) *coflow.Coflow {
	n := 1 + rng.Intn(maxFlows)
	used := map[[2]int]bool{}
	var flows []coflow.Flow
	for len(flows) < n {
		i, j := rng.Intn(ports), rng.Intn(ports)
		if used[[2]int{i, j}] {
			continue
		}
		used[[2]int{i, j}] = true
		flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(100)) * 1e6})
	}
	return coflow.New(rng.Int(), 0, flows)
}

func TestScheduleProducesValidAssignments(t *testing.T) {
	demand := [][]float64{
		{10e6, 5e6, 0},
		{0, 8e6, 2e6},
		{3e6, 0, 6e6},
	}
	asg, err := Schedule(demand, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) == 0 {
		t.Fatal("no assignments")
	}
	// Durations descend (longest configurations first) and are positive.
	for i := 1; i < len(asg); i++ {
		if asg[i].Duration > asg[i-1].Duration+1e-12 {
			t.Fatalf("durations not descending: %v then %v", asg[i-1].Duration, asg[i].Duration)
		}
	}
	for _, a := range asg {
		if a.Duration < 0 {
			t.Fatalf("negative duration %v", a.Duration)
		}
	}
}

func TestScheduleEmptyDemand(t *testing.T) {
	asg, err := Schedule([][]float64{{0, 0}, {0, 0}}, opts)
	if err != nil || asg != nil {
		t.Fatalf("empty demand: %v, %v", asg, err)
	}
}

func TestScheduleRejectsBadBandwidth(t *testing.T) {
	if _, err := Schedule([][]float64{{1}}, Options{}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestRunDrainsCoflow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 4
		c := randomCoflow(rng, n, 8)
		res, err := Run(c, n, opts, fabric.NotAllStop)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Unserved > 1e-3 {
			t.Fatalf("unserved %v", res.Unserved)
		}
		if res.Finish <= 0 {
			t.Fatalf("Finish = %v", res.Finish)
		}
	}
}

func TestRunSlowerThanLowerBound(t *testing.T) {
	// Sanity: TMS can never beat the circuit lower bound.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		c := randomCoflow(rng, 4, 8)
		res, err := Run(c, 4, opts, fabric.NotAllStop)
		if err != nil {
			t.Fatal(err)
		}
		if res.Finish < c.PacketLowerBound(gbps)-1e-9 {
			t.Fatalf("TMS finish %v below TpL %v", res.Finish, c.PacketLowerBound(gbps))
		}
	}
}

func TestRunValidates(t *testing.T) {
	bad := coflow.New(1, 0, []coflow.Flow{{Src: 9, Dst: 0, Bytes: 1}})
	if _, err := Run(bad, 2, opts, fabric.NotAllStop); err == nil {
		t.Fatal("invalid coflow accepted")
	}
}

func TestMinSlotFiltersTinyTerms(t *testing.T) {
	demand := [][]float64{
		{100e6, 1e6},
		{1e6, 100e6},
	}
	o := opts
	o.MinSlot = 1 // drop terms shorter than δ
	asg, err := Schedule(demand, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range asg {
		if a.Duration < o.MinSlot*o.Delta {
			t.Fatalf("term of %v survived MinSlot filter", a.Duration)
		}
	}
}
