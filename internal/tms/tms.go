// Package tms implements the Traffic Matrix Scheduling (TMS) circuit
// scheduler used by Mordia (Porter et al., SIGCOMM 2013) and studied as a
// baseline in the Sunflow paper (§3.1.1): the demand matrix is scaled toward
// a doubly stochastic matrix with Sinkhorn iteration and decomposed with the
// classic Birkhoff–von Neumann algorithm into permutation assignments whose
// durations are proportional to the decomposition weights.
//
// Because the Sinkhorn scaling changes the ratios between entries, a single
// decomposition round generally leaves residual real demand; as the Sunflow
// paper notes, "the pre-processing step may heavily modify the original
// demand matrix, such that the scheduled circuits may poorly serve the
// original requested demand." Run therefore reapplies TMS to the residual
// until the Coflow drains, which is how a TMS-controlled fabric services
// persistent demand in practice.
package tms

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sunflow/internal/bvn"
	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// Options configures the scheduler.
type Options struct {
	// LinkBps is the link bandwidth B in bits/s.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// MinSlot drops decomposition terms whose duration is below this
	// fraction of δ (they would be pure switching overhead). Zero keeps all
	// terms.
	MinSlot float64
	// MaxRounds bounds the drain loop in Run; zero means a generous default.
	MaxRounds int
	// Obs optionally records scheduling metrics (one pass per drain round)
	// and, via the executor, circuit and delivery counters. Nil disables
	// instrumentation.
	Obs *obs.Observer
	// Prof optionally records profiling spans: each drain round becomes a
	// "sched.pass" span with "tms.sinkhorn" and "tms.bvn" children, and the
	// execution a "fabric.execute" span. Nil disables span recording.
	Prof *span.Stack
}

// sched is the reusable state of one TMS scheduling pass: the
// processing-time matrix arena plus the bvn.Decomposer running the Sinkhorn
// and BvN kernels without per-call matrix clones. Borrowed from a pool so
// the drain loop in Run (up to 64 rounds per Coflow) reuses one.
type sched struct {
	dec  bvn.Decomposer
	work []float64
	p    [][]float64
}

func (sc *sched) resize(n int) {
	if cap(sc.work) < n*n {
		sc.work = make([]float64, n*n)
		sc.p = make([][]float64, n)
	}
	sc.p = sc.p[:n]
	for i := 0; i < n; i++ {
		sc.p[i] = sc.work[i*n : (i+1)*n : (i+1)*n]
	}
}

var schedPool = sync.Pool{New: func() any { return new(sched) }}

// Schedule computes one TMS round for the demand matrix (bytes): Sinkhorn
// scaling followed by BvN decomposition, both on pooled zero-alloc kernels
// bit-identical to the dense bvn references. The returned assignments
// together span the demand's maximum line processing time; terms are emitted
// in descending weight so the longest configurations run first, as TMS
// prescribes.
func Schedule(demand [][]float64, opts Options) ([]fabric.Assignment, error) {
	if opts.LinkBps <= 0 {
		return nil, fmt.Errorf("tms: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	sc := schedPool.Get().(*sched)
	defer schedPool.Put(sc)
	n := len(demand)
	sc.resize(n)
	p := sc.p
	for i := range demand {
		for j := range demand[i] {
			p[i][j] = demand[i][j] * 8 / opts.LinkBps
		}
	}
	totalTime := sc.dec.MaxLineSum(p)
	if totalTime <= 0 {
		return nil, nil
	}

	// A doubly stochastic scaling only exists when the positive entries
	// support a perfect matching; real demand matrices are often too sparse
	// for that, so TMS fills zero entries with a small noise floor — more
	// of the "heavy modification" of the original demand that §3.1.1 calls
	// out. The resulting micro-assignments carry dummy demand the fabric
	// simply idles through.
	floor := totalTime / float64(n*n) * 1e-2
	for i := range p {
		for j := range p[i] {
			if p[i][j] <= 0 {
				p[i][j] = floor
			}
		}
	}

	ssp := opts.Prof.Start("tms.sinkhorn")
	ds, err := sc.dec.Sinkhorn(p, 1e-6, 10000)
	ssp.Finish()
	if err != nil {
		return nil, fmt.Errorf("tms: %w", err)
	}
	bsp := opts.Prof.Start("tms.bvn")
	perms, err := sc.dec.Decompose(ds)
	bsp.Finish()
	if err != nil {
		return nil, fmt.Errorf("tms: %w", err)
	}
	sort.SliceStable(perms, func(a, b int) bool { return perms[a].Weight > perms[b].Weight })

	var out []fabric.Assignment
	for _, perm := range perms {
		dur := perm.Weight * totalTime
		if opts.MinSlot > 0 && dur < opts.MinSlot*opts.Delta {
			continue
		}
		out = append(out, fabric.Assignment{Match: perm.Match, Duration: dur})
	}
	return out, nil
}

// Run drains the Coflow by repeatedly scheduling a TMS round on the residual
// demand and executing it on the fabric, concatenating the rounds on one
// timeline. It returns the combined execution result.
func Run(c *coflow.Coflow, n int, opts Options, model fabric.Model) (fabric.ExecResult, error) {
	if err := c.Validate(n); err != nil {
		return fabric.ExecResult{}, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64
	}

	rem := c.DemandMatrix(n)
	combined := fabric.ExecResult{FlowFinish: make(map[fabric.FlowKey]float64)}
	t := 0.0
	for round := 0; round < maxRounds; round++ {
		if remaining(rem) <= 1e-6 {
			combined.Unserved = 0
			return combined, nil
		}
		passStart := time.Now()
		psp := opts.Prof.Start("sched.pass")
		asg, err := Schedule(rem, opts)
		elapsed := time.Since(passStart).Seconds()
		psp.FinishWith(elapsed)
		if o := opts.Obs; o != nil {
			o.SchedPasses.Inc()
			o.SchedSeconds.Add(elapsed)
			o.SchedPassTime.Observe(elapsed)
			o.Reservations.Add(int64(len(asg)))
		}
		if err != nil {
			return combined, err
		}
		if len(asg) == 0 {
			break
		}
		esp := opts.Prof.Start("fabric.execute")
		res, err := fabric.ExecuteObs(rem, asg, opts.LinkBps, opts.Delta, t, model, opts.Obs)
		esp.Finish()
		if err != nil {
			return combined, err
		}
		combined.SwitchCount += res.SwitchCount
		for k, f := range res.FlowFinish {
			combined.FlowFinish[k] = f
			if f > combined.Finish {
				combined.Finish = f
			}
		}
		t = res.End
		combined.End = res.End
	}
	combined.Unserved = remaining(rem)
	return combined, nil
}

func remaining(rem [][]float64) float64 {
	var left float64
	for i := range rem {
		for j := range rem[i] {
			left += rem[i][j]
		}
	}
	return left
}
