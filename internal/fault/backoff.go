package fault

// domBackoff keeps Backoff jitter draws independent of the other fault
// hash domains.
const domBackoff uint64 = 0x6261_636b // "back"

// Backoff is a deterministic exponential retry-delay schedule, exported so
// long-running consumers (the sunflowd daemon's replan retry loop) share the
// exact machinery the fault model uses for circuit-setup retries.
//
// Delay i is Base·Factor^i, clamped to Cap, then deterministically jittered
// downward by up to Jitter of its value using the same counter-based hashing
// as the rest of the package: the schedule is a pure function of the struct's
// fields, so two processes configured identically retry on identical
// schedules — the property the daemon's crash-recovery test relies on.
//
// The zero value yields all-zero delays (retry immediately); Model.Setup uses
// {Base: δ, Factor: 2} and is bit-identical to the historical inline δ, 2δ,
// 4δ, … doubling because powers of two are exact in floating point.
type Backoff struct {
	// Base is the delay before the first retry, in the caller's time unit
	// (seconds of simulated time for Model.Setup, wall-clock seconds for the
	// daemon). Zero, negative or NaN bases all collapse to zero delays.
	Base float64
	// Factor is the per-attempt growth multiplier. Anything below 1
	// (including the zero value, NaN and negatives) selects the default 2, so
	// a schedule can never shrink between attempts.
	Factor float64
	// Cap bounds every delay when positive; the schedule saturates at Cap
	// instead of growing without bound (or overflowing to +Inf). Zero or
	// negative disables the bound.
	Cap float64
	// Jitter in [0, 1) shaves a deterministic pseudo-random fraction of up to
	// Jitter off each delay, de-synchronizing retry herds without giving up
	// reproducibility. Zero (and any out-of-range value) disables jitter.
	Jitter float64
	// Seed drives the jitter hashing; schedules differing only in Seed jitter
	// independently.
	Seed int64
}

// Delay returns the pause before retry attempt (0-based). It is a pure
// function of the receiver and attempt: repeated calls, and calls from
// different Backoff values with equal fields, return bit-identical results.
func (b Backoff) Delay(attempt int) float64 {
	if !(b.Base > 0) { // catches zero, negative and NaN in one comparison
		return 0
	}
	factor := b.Factor
	if !(factor >= 1) {
		factor = 2
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Cap > 0 && d >= b.Cap {
			break
		}
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if j := b.Jitter; j > 0 && j < 1 {
		h := splitmix64(splitmix64(uint64(b.Seed)^domBackoff) ^ uint64(attempt))
		u := float64(h>>11) / (1 << 53)
		d *= 1 - j*u
	}
	return d
}

// Schedule returns the first n retry delays, Delay(0) through Delay(n-1).
func (b Backoff) Schedule(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = b.Delay(i)
	}
	return out
}

// Total returns the sum of the first n retry delays — how long a caller
// retrying n times spends waiting in total (math.Inf(1) if the uncapped
// schedule overflows).
func (b Backoff) Total(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += b.Delay(i)
	}
	return t
}
