package fault

import (
	"math"
	"reflect"
	"testing"
)

// restrictPlan compiles twice so one model can be restricted and compared
// against its untouched twin (compilation is deterministic in the seed).
func restrictPlan(t *testing.T) (full, restricted *Model) {
	t.Helper()
	plan := &Plan{
		Seed:          7,
		TransientRate: 1.5, MeanOutage: 0.3, Horizon: 8,
		PortFailures:     []PortFailure{{Port: 2, At: 0.5}, {Port: 5, At: 0.3}},
		SetupFailProb:    0.4,
		DegradedLinkProb: 0.3,
		StragglerProb:    0.3,
	}
	var err error
	if full, err = plan.Compile(6); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if restricted, err = plan.Compile(6); err != nil {
		t.Fatalf("compile: %v", err)
	}
	return full, restricted
}

func TestRestrictPorts(t *testing.T) {
	full, m := restrictPlan(t)
	kept := func(p int) bool { return p < 3 }
	m.RestrictPorts(kept)

	for p := 0; p < 6; p++ {
		if kept(p) {
			if !reflect.DeepEqual(m.Outages(p), full.Outages(p)) {
				t.Errorf("port %d: outages changed by restriction", p)
			}
			if m.PermanentFrom(p) != full.PermanentFrom(p) {
				t.Errorf("port %d: permanent-from changed by restriction", p)
			}
			continue
		}
		if len(m.Outages(p)) != 0 {
			t.Errorf("dropped port %d still has %d outages", p, len(m.Outages(p)))
		}
		if !math.IsInf(m.PermanentFrom(p), 1) {
			t.Errorf("dropped port %d still permanently fails at %v", p, m.PermanentFrom(p))
		}
		for _, at := range []float64{0, 0.4, 1, 5, 100} {
			if m.Down(p, at) {
				t.Errorf("dropped port %d reports down at t=%v", p, at)
			}
		}
	}

	// Port 2's permanent failure is kept, so the model stays permanent.
	if !m.AnyPermanent() {
		t.Error("restriction to {0,1,2} lost the permanent failure on port 2")
	}

	// The boundary walk must visit exactly the kept ports' outage edges.
	want := map[float64]bool{}
	for p := 0; p < 3; p++ {
		for _, o := range full.Outages(p) {
			want[o.Start] = true
			if !o.Permanent() {
				want[o.End] = true
			}
		}
	}
	got := map[float64]bool{}
	for b := m.NextBoundary(math.Inf(-1)); !math.IsInf(b, 1); b = m.NextBoundary(b) {
		got[b] = true
		down, up := m.BoundariesAt(b)
		for _, o := range append(down, up...) {
			if !kept(o.Port) {
				t.Errorf("boundary %v reports dropped port %d", b, o.Port)
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("boundary walk visited %d instants, want %d", len(got), len(want))
	}

	// Per-pair draws on kept ports are untouched: rate factors and setup
	// outcome sequences (the attempts counter is per coflow and pair) match
	// the unrestricted model draw for draw.
	for cid := 0; cid < 4; cid++ {
		for src := 0; src < 3; src++ {
			for dst := 0; dst < 3; dst++ {
				if m.RateFactor(cid, src, dst) != full.RateFactor(cid, src, dst) {
					t.Fatalf("rate factor diverged for coflow %d pair (%d,%d)", cid, src, dst)
				}
				for i := 0; i < 3; i++ {
					a := m.Setup(cid, src, dst, 0.5, 0.01)
					b := full.Setup(cid, src, dst, 0.5, 0.01)
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("setup draw %d diverged for coflow %d pair (%d,%d): %+v vs %+v", i, cid, src, dst, a, b)
					}
				}
			}
		}
	}
}

func TestRestrictPortsDropAllAndNil(t *testing.T) {
	_, m := restrictPlan(t)
	m.RestrictPorts(func(int) bool { return false })
	if m.AnyPermanent() {
		t.Error("empty restriction kept a permanent failure")
	}
	if b := m.NextBoundary(math.Inf(-1)); !math.IsInf(b, 1) {
		t.Errorf("empty restriction kept boundary %v", b)
	}
	var nilModel *Model
	nilModel.RestrictPorts(func(int) bool { return true }) // must not panic
}
