package fault

import (
	"math"
	"strings"
	"testing"
)

func TestZeroPlanCompilesNil(t *testing.T) {
	var nilPlan *Plan
	for _, p := range []*Plan{nil, {}, {Seed: 99}} {
		m, err := p.Compile(4)
		if err != nil || m != nil {
			t.Fatalf("zero plan %+v compiled to (%v, %v), want (nil, nil)", p, m, err)
		}
	}
	if !nilPlan.IsZero() {
		t.Fatal("nil plan not zero")
	}
	// Every query on a nil model must be the no-fault answer.
	var m *Model
	if m.Down(0, 1) || m.PermanentlyDown(0, 1) || m.AnyPermanent() {
		t.Fatal("nil model reports faults")
	}
	if !math.IsInf(m.NextBoundary(0), 1) || !math.IsInf(m.PermanentFrom(0), 1) {
		t.Fatal("nil model has boundaries")
	}
	if m.RateFactor(1, 2, 3) != 1 {
		t.Fatal("nil model degrades rates")
	}
	if out := m.Setup(1, 2, 3, 1.0, 0.01); !out.Established || out.Setup != 0.01 || len(out.Retries) != 0 {
		t.Fatalf("nil model faulted a setup: %+v", out)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := map[string]*Plan{
		"negative port":    {PortFailures: []PortFailure{{Port: -1, At: 1}}},
		"nan start":        {PortFailures: []PortFailure{{Port: 0, At: math.NaN()}}},
		"negative start":   {PortFailures: []PortFailure{{Port: 0, At: -1}}},
		"nan duration":     {PortFailures: []PortFailure{{Port: 0, At: 1, Duration: math.NaN()}}},
		"negative rate":    {TransientRate: -1},
		"rate no outage":   {TransientRate: 1, Horizon: 10},
		"rate no horizon":  {TransientRate: 1, MeanOutage: 0.1},
		"setup prob 1":     {SetupFailProb: 1},
		"setup prob neg":   {SetupFailProb: -0.1},
		"neg retries":      {MaxRetries: -1, SetupFailProb: 0.1},
		"neg fail first":   {FailFirstSetups: -1},
		"degraded prob":    {DegradedLinkProb: 1.5},
		"degraded factor":  {DegradedLinkProb: 0.1, DegradedFactor: 2},
		"straggler prob":   {StragglerProb: math.NaN()},
		"straggler factor": {StragglerProb: 0.1, StragglerFactor: -0.5},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	good := &Plan{Seed: 3, SetupFailProb: 0.2, PortFailures: []PortFailure{{Port: 1, At: 5, Duration: 2}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestCompileRejectsOutOfRangePort(t *testing.T) {
	p := &Plan{PortFailures: []PortFailure{{Port: 4, At: 1}}}
	if _, err := p.Compile(4); err == nil {
		t.Fatal("port 4 on a 4-port fabric accepted")
	}
	if _, err := p.Compile(0); err == nil {
		t.Fatal("zero-port fabric accepted")
	}
}

func TestOutageMergeAndQueries(t *testing.T) {
	p := &Plan{PortFailures: []PortFailure{
		{Port: 0, At: 1, Duration: 2},   // [1,3)
		{Port: 0, At: 2.5, Duration: 1}, // overlaps -> [1,3.5)
		{Port: 0, At: 10},               // permanent from 10
		{Port: 1, At: 5, Duration: 1},
	}}
	m, err := p.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Outages(0); len(got) != 2 || got[0].Start != 1 || got[0].End != 3.5 || !got[1].Permanent() {
		t.Fatalf("merged outages = %+v", got)
	}
	if !m.Down(0, 2) || m.Down(0, 4) || !m.Down(0, 11) || m.Down(2, 2) {
		t.Fatal("Down answers wrong")
	}
	if m.PermanentlyDown(0, 9) || !m.PermanentlyDown(0, 10) || m.PermanentlyDown(1, 100) {
		t.Fatal("PermanentlyDown answers wrong")
	}
	if !m.AnyPermanent() || m.PermanentFrom(0) != 10 || !math.IsInf(m.PermanentFrom(1), 1) {
		t.Fatal("permanent bookkeeping wrong")
	}
	// Boundaries: 1, 3.5, 5, 6, 10 — strictly-after semantics.
	want := []float64{1, 3.5, 5, 6, 10}
	at := math.Inf(-1)
	for _, w := range want {
		got := m.NextBoundary(at)
		if got != w {
			t.Fatalf("NextBoundary(%v) = %v, want %v", at, got, w)
		}
		at = got
	}
	if !math.IsInf(m.NextBoundary(at), 1) {
		t.Fatal("boundaries did not end")
	}
	down, up := m.BoundariesAt(3.5)
	if len(down) != 0 || len(up) != 1 || up[0].Port != 0 {
		t.Fatalf("BoundariesAt(3.5) = %v %v", down, up)
	}
	down, _ = m.BoundariesAt(10)
	if len(down) != 1 || !down[0].Permanent() {
		t.Fatalf("BoundariesAt(10) down = %v", down)
	}
}

func TestTransientOutagesDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, TransientRate: 0.5, MeanOutage: 0.3, Horizon: 20}
	a, err := p.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Compile(6)
	total := 0
	for port := 0; port < 6; port++ {
		oa, ob := a.Outages(port), b.Outages(port)
		if len(oa) != len(ob) {
			t.Fatalf("port %d outage count differs", port)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("port %d outage %d differs: %+v vs %+v", port, i, oa[i], ob[i])
			}
			if oa[i].Start >= p.Horizon {
				t.Fatalf("outage starts past horizon: %+v", oa[i])
			}
		}
		total += len(oa)
	}
	if total == 0 {
		t.Fatal("no transient outages at rate 0.5 over 20s x 6 ports")
	}
	other, _ := (&Plan{Seed: 8, TransientRate: 0.5, MeanOutage: 0.3, Horizon: 20}).Compile(6)
	same := true
	for port := 0; port < 6; port++ {
		ao, oo := a.Outages(port), other.Outages(port)
		if len(ao) != len(oo) {
			same = false
			break
		}
		for i := range ao {
			if ao[i] != oo[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical outages")
	}
}

func TestRateFactorDeterministicAndBounded(t *testing.T) {
	p := &Plan{Seed: 5, DegradedLinkProb: 0.5, DegradedFactor: 0.25, StragglerProb: 0.5, StragglerFactor: 0.5}
	m, err := p.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := p.Compile(8)
	seen := map[float64]int{}
	for c := 0; c < 4; c++ {
		for s := 0; s < 8; s++ {
			for d := 0; d < 8; d++ {
				f := m.RateFactor(c, s, d)
				if f != m2.RateFactor(c, s, d) {
					t.Fatal("rate factor not deterministic")
				}
				if f <= 0 || f > 1 {
					t.Fatalf("rate factor %v outside (0,1]", f)
				}
				seen[f]++
			}
		}
	}
	// With both draws at 0.5 all four products must appear: 1, 0.25, 0.5, 0.125.
	for _, want := range []float64{1, 0.25, 0.5, 0.125} {
		if seen[want] == 0 {
			t.Fatalf("factor %v never drawn: %v", want, seen)
		}
	}
}

// TestSetupRetryAccounting pins the δ arithmetic: each failed attempt pays δ,
// then backs off δ·2ⁱ. Two scripted failures then success cost
// δ + δ + δ + 2δ + δ = 6δ.
func TestSetupRetryAccounting(t *testing.T) {
	p := &Plan{FailFirstSetups: 2}
	m, err := p.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	const delta = 0.01
	out := m.Setup(1, 0, 1, 10, delta)
	if !out.Established {
		t.Fatalf("setup with room did not establish: %+v", out)
	}
	if math.Abs(out.Setup-6*delta) > 1e-12 {
		t.Fatalf("setup = %v, want 6δ = %v", out.Setup, 6*delta)
	}
	if len(out.Retries) != 2 || math.Abs(out.Retries[0]-delta) > 1e-12 || math.Abs(out.Retries[1]-3*delta) > 1e-12 {
		t.Fatalf("retries = %v, want [δ, 3δ]", out.Retries)
	}
	// The budget drained: the next setup succeeds first try.
	if out := m.Setup(1, 0, 1, 10, delta); out.Setup != delta || len(out.Retries) != 0 {
		t.Fatalf("budget did not drain: %+v", out)
	}
}

func TestSetupRunsOutOfRoom(t *testing.T) {
	m, err := (&Plan{FailFirstSetups: 100}).Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	const delta = 0.01
	// Slot fits the first attempt only: it fails, and the backoff leaves no
	// room for a second, so the hold is all setup and nothing establishes.
	out := m.Setup(1, 0, 1, 2.5*delta, delta)
	if out.Established {
		t.Fatalf("established inside a hopeless slot: %+v", out)
	}
	if out.Setup != 2.5*delta {
		t.Fatalf("setup = %v, want the whole slot", out.Setup)
	}
	if len(out.Retries) != 1 {
		t.Fatalf("retries = %v, want one", out.Retries)
	}
}

func TestSetupBoundedByMaxRetries(t *testing.T) {
	m, err := (&Plan{FailFirstSetups: 100, MaxRetries: 2}).Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Setup(1, 0, 1, 1000, 0.01)
	if out.Established {
		t.Fatal("established despite an endless failure budget")
	}
	if len(out.Retries) != 3 { // initial attempt + 2 retries, all failed
		t.Fatalf("retries = %v, want 3 failed attempts", out.Retries)
	}
	if out.Setup != 1000 {
		t.Fatalf("setup = %v, want the whole slot", out.Setup)
	}
}

func TestDecodePlan(t *testing.T) {
	p, err := DecodePlan(strings.NewReader(`{"seed": 3, "setup_fail_prob": 0.1, "port_failures": [{"port": 2, "at": 5, "duration": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || p.SetupFailProb != 0.1 || len(p.PortFailures) != 1 {
		t.Fatalf("decoded %+v", p)
	}
	if _, err := DecodePlan(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodePlan(strings.NewReader(`{"setup_fail_prob": 1.0}`)); err == nil {
		t.Fatal("invalid probability accepted")
	}
	if _, err := DecodePlan(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// FuzzDecodePlan drives arbitrary bytes through the JSON plan decoder. The
// decoder must never panic, and any plan it accepts must compile on a small
// fabric without panicking (port-range errors are fine).
func FuzzDecodePlan(f *testing.F) {
	f.Add(`{"seed": 3, "setup_fail_prob": 0.1}`)
	f.Add(`{"port_failures": [{"port": 2, "at": 5, "duration": 1}]}`)
	f.Add(`{"transient_rate": 0.5, "mean_outage": 0.3, "horizon": 20}`)
	f.Add(`{"degraded_link_prob": 0.2, "straggler_prob": 0.1}`)
	f.Add(`{"setup_fail_prob": 1e309}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, in string) {
		p, err := DecodePlan(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted a plan Validate rejects: %v", err)
		}
		if _, err := p.Compile(8); err != nil {
			// Only port range can fail once Validate has passed.
			if len(p.PortFailures) == 0 {
				t.Fatalf("compile of accepted plan failed: %v", err)
			}
		}
	})
}
