package fault

import (
	"math"
	"testing"
)

// TestBackoffDefaultsDoubling pins the default schedule to the exact δ·2^i
// doubling Model.Setup historically inlined: powers of two are exact in
// floating point, so equality here is bit-for-bit.
func TestBackoffDefaultsDoubling(t *testing.T) {
	b := Backoff{Base: 0.01}
	for i := 0; i < 20; i++ {
		want := math.Ldexp(0.01, i)
		if got := b.Delay(i); got != want {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestBackoffDegenerateBase: zero, negative and NaN bases all collapse to
// zero delays rather than producing negative or NaN waits.
func TestBackoffDegenerateBase(t *testing.T) {
	for _, base := range []float64{0, -1, -1e-9, math.NaN(), math.Inf(-1)} {
		b := Backoff{Base: base, Factor: 2, Cap: 10, Jitter: 0.5, Seed: 7}
		for i := 0; i < 5; i++ {
			if got := b.Delay(i); got != 0 {
				t.Fatalf("base %v: Delay(%d) = %v, want 0", base, i, got)
			}
		}
		if got := b.Total(8); got != 0 {
			t.Fatalf("base %v: Total = %v, want 0", base, got)
		}
	}
}

// TestBackoffDegenerateFactor: factors below 1 (including zero and NaN)
// select the default 2 so the schedule never shrinks.
func TestBackoffDegenerateFactor(t *testing.T) {
	for _, f := range []float64{0, 0.5, -3, math.NaN()} {
		b := Backoff{Base: 1, Factor: f}
		if got := b.Delay(3); got != 8 {
			t.Fatalf("factor %v: Delay(3) = %v, want 8", f, got)
		}
	}
}

// TestBackoffCapSaturation: with a cap the schedule clamps and stays clamped,
// and even absurd attempt counts terminate without overflowing to +Inf.
func TestBackoffCapSaturation(t *testing.T) {
	b := Backoff{Base: 1, Factor: 2, Cap: 10}
	want := []float64{1, 2, 4, 8, 10, 10, 10}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := b.Delay(1 << 20); got != 10 {
		t.Fatalf("huge attempt: Delay = %v, want cap 10", got)
	}
	// Uncapped schedules can overflow; the cap is the documented guard.
	unb := Backoff{Base: 1}
	if got := unb.Delay(2000); !math.IsInf(got, 1) {
		t.Fatalf("uncapped Delay(2000) = %v, want +Inf (documents the cap's purpose)", got)
	}
	if got := b.Delay(2000); got != 10 {
		t.Fatalf("capped Delay(2000) = %v, want 10", got)
	}
}

// TestBackoffJitterDeterminism: the jittered schedule is a pure function of
// the struct fields — identical across calls and across equal values — while
// distinct seeds diverge and every delay stays inside [d·(1-j), d].
func TestBackoffJitterDeterminism(t *testing.T) {
	a := Backoff{Base: 0.5, Factor: 2, Cap: 64, Jitter: 0.3, Seed: 42}
	b := Backoff{Base: 0.5, Factor: 2, Cap: 64, Jitter: 0.3, Seed: 42}
	c := Backoff{Base: 0.5, Factor: 2, Cap: 64, Jitter: 0.3, Seed: 43}
	plain := Backoff{Base: 0.5, Factor: 2, Cap: 64}
	diverged := false
	for i := 0; i < 32; i++ {
		d1, d2 := a.Delay(i), b.Delay(i)
		if d1 != d2 {
			t.Fatalf("equal Backoffs disagree at attempt %d: %v vs %v", i, d1, d2)
		}
		if again := a.Delay(i); again != d1 {
			t.Fatalf("Delay(%d) not stable across calls: %v vs %v", i, d1, again)
		}
		base := plain.Delay(i)
		if d1 > base || d1 < base*(1-0.3) {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", i, d1, base*0.7, base)
		}
		if c.Delay(i) != d1 {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("distinct seeds produced identical jittered schedules")
	}
}

// TestBackoffScheduleMatchesDelay: Schedule is just the Delay prefix, and
// out-of-range jitter values disable jitter instead of corrupting delays.
func TestBackoffScheduleMatchesDelay(t *testing.T) {
	b := Backoff{Base: 2, Factor: 3, Cap: 100, Jitter: 1.5, Seed: 9}
	sched := b.Schedule(6)
	if len(sched) != 6 {
		t.Fatalf("Schedule(6) returned %d delays", len(sched))
	}
	for i, d := range sched {
		if d != b.Delay(i) {
			t.Fatalf("Schedule[%d] = %v, Delay = %v", i, d, b.Delay(i))
		}
	}
	// Jitter 1.5 is out of range and must act like no jitter.
	want := []float64{2, 6, 18, 54, 100, 100}
	for i, w := range want {
		if sched[i] != w {
			t.Fatalf("Schedule[%d] = %v, want %v (out-of-range jitter must be inert)", i, sched[i], w)
		}
	}
	if got := b.Schedule(0); got != nil {
		t.Fatalf("Schedule(0) = %v, want nil", got)
	}
	if got := b.Total(3); got != 26 {
		t.Fatalf("Total(3) = %v, want 26", got)
	}
}

// TestSetupUsesBackoffSchedule pins Model.Setup's retry spacing to the
// exported Backoff: with FailFirstSetups forcing failures, the gap between
// consecutive retry offsets must be δ (the re-paid setup) plus Delay(i).
func TestSetupUsesBackoffSchedule(t *testing.T) {
	p := &Plan{FailFirstSetups: 3, MaxRetries: 5}
	m, err := p.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	const delta = 0.01
	out := m.Setup(1, 0, 1, 1000, delta)
	if !out.Established || len(out.Retries) != 3 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	bo := Backoff{Base: delta, Factor: 2}
	off := 0.0
	for i, r := range out.Retries {
		off += delta
		if r != off {
			t.Fatalf("retry %d finished at %v, want %v", i, r, off)
		}
		off += bo.Delay(i)
	}
	if want := off + delta; out.Setup != want {
		t.Fatalf("effective setup %v, want %v", out.Setup, want)
	}
}
