// Package fault is a deterministic, seedable fault model for the
// simulators: transient and permanent port failures, circuit-setup failures
// with bounded retry and exponential backoff in units of δ, degraded
// per-link rates, and straggler flows.
//
// A Plan is pure configuration (JSON-decodable); Compile turns it into a
// Model answering point queries. All randomness derives from the plan's seed
// through counter-based hashing, so a compiled Model is a pure function of
// (plan, ports): two simulations of the same workload under the same plan
// see identical fault sequences, and a zero Plan changes nothing at all —
// the simulators skip every fault code path when Plan.IsZero reports true.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// timeEps absorbs floating-point residue in boundary comparisons, matching
// the simulators' event-time epsilon.
const timeEps = 1e-9

// PortFailure is one scripted outage of a switch port. Both the input and
// the output side of the port go dark for the duration.
type PortFailure struct {
	// Port is the failed port index.
	Port int `json:"port"`
	// At is the failure instant in simulation seconds.
	At float64 `json:"at"`
	// Duration is the outage length in seconds. Zero or negative means the
	// failure is permanent: the port never comes back.
	Duration float64 `json:"duration,omitempty"`
}

// Permanent reports whether the failure never heals.
func (f PortFailure) Permanent() bool {
	return f.Duration <= 0 || math.IsInf(f.Duration, 1)
}

// Plan configures fault injection for one simulation run. The zero value
// injects nothing.
type Plan struct {
	// Seed drives every probabilistic draw in the plan. Plans differing only
	// in Seed produce independent fault sequences.
	Seed int64 `json:"seed,omitempty"`

	// PortFailures are scripted outages, transient or permanent.
	PortFailures []PortFailure `json:"port_failures,omitempty"`

	// TransientRate adds random transient outages: each port independently
	// fails at this rate (outages per second of simulated time) over
	// [0, Horizon), each outage lasting an exponential time with mean
	// MeanOutage seconds. Horizon and MeanOutage must be positive when the
	// rate is.
	TransientRate float64 `json:"transient_rate,omitempty"`
	MeanOutage    float64 `json:"mean_outage,omitempty"`
	Horizon       float64 `json:"horizon,omitempty"`

	// SetupFailProb is the probability that one circuit-setup attempt fails,
	// drawn independently per attempt. Must be in [0, 1): at 1 no circuit
	// could ever establish and the simulation would not terminate. A failed
	// attempt still pays δ, then backs off exponentially in units of δ
	// (δ, 2δ, 4δ, …) before retrying, up to MaxRetries retries within the
	// reservation's hold.
	SetupFailProb float64 `json:"setup_fail_prob,omitempty"`
	// FailFirstSetups deterministically fails the first K setup attempts of
	// the run before any probabilistic draw — precise fault placement for
	// tests and demos.
	FailFirstSetups int `json:"fail_first_setups,omitempty"`
	// MaxRetries bounds retries per reservation. Zero selects the default 3.
	MaxRetries int `json:"max_retries,omitempty"`

	// DegradedLinkProb marks each (src, dst) port pair degraded with this
	// probability; a degraded link transmits at DegradedFactor of the link
	// rate (default 0.5) for the whole run.
	DegradedLinkProb float64 `json:"degraded_link_prob,omitempty"`
	DegradedFactor   float64 `json:"degraded_factor,omitempty"`

	// StragglerProb marks each (coflow, src, dst) flow a straggler with this
	// probability; a straggler transmits at StragglerFactor of its allotted
	// rate (default 0.5).
	StragglerProb   float64 `json:"straggler_prob,omitempty"`
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
}

// IsZero reports whether the plan injects no faults at all. Seed alone does
// not make a plan nonzero.
func (p *Plan) IsZero() bool {
	return p == nil ||
		(len(p.PortFailures) == 0 && p.TransientRate == 0 &&
			p.SetupFailProb == 0 && p.FailFirstSetups == 0 &&
			p.DegradedLinkProb == 0 && p.StragglerProb == 0)
}

// Validate checks the plan's parameters for range and NaN errors.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	bad := func(format string, args ...any) error {
		return fmt.Errorf("fault: "+format, args...)
	}
	prob := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return bad("%s must be in [0,1], got %v", name, v)
		}
		return nil
	}
	for i, f := range p.PortFailures {
		if f.Port < 0 {
			return bad("port failure %d names negative port %d", i, f.Port)
		}
		if math.IsNaN(f.At) || math.IsInf(f.At, 0) || f.At < 0 {
			return bad("port failure %d has invalid start %v", i, f.At)
		}
		if math.IsNaN(f.Duration) {
			return bad("port failure %d has NaN duration", i)
		}
	}
	if math.IsNaN(p.TransientRate) || p.TransientRate < 0 || math.IsInf(p.TransientRate, 1) {
		return bad("transient rate must be finite and non-negative, got %v", p.TransientRate)
	}
	if p.TransientRate > 0 {
		if math.IsNaN(p.MeanOutage) || p.MeanOutage <= 0 || math.IsInf(p.MeanOutage, 1) {
			return bad("mean outage must be positive and finite with a transient rate, got %v", p.MeanOutage)
		}
		if math.IsNaN(p.Horizon) || p.Horizon <= 0 || math.IsInf(p.Horizon, 1) {
			return bad("horizon must be positive and finite with a transient rate, got %v", p.Horizon)
		}
	}
	if math.IsNaN(p.SetupFailProb) || p.SetupFailProb < 0 || p.SetupFailProb >= 1 {
		return bad("setup failure probability must be in [0,1), got %v", p.SetupFailProb)
	}
	if p.FailFirstSetups < 0 {
		return bad("fail_first_setups must be non-negative, got %d", p.FailFirstSetups)
	}
	if p.MaxRetries < 0 {
		return bad("max_retries must be non-negative, got %d", p.MaxRetries)
	}
	if err := prob("degraded link probability", p.DegradedLinkProb); err != nil {
		return err
	}
	if err := prob("straggler probability", p.StragglerProb); err != nil {
		return err
	}
	factor := func(name string, v float64) error {
		if v != 0 && (math.IsNaN(v) || v <= 0 || v > 1) {
			return bad("%s must be in (0,1], got %v", name, v)
		}
		return nil
	}
	if err := factor("degraded factor", p.DegradedFactor); err != nil {
		return err
	}
	return factor("straggler factor", p.StragglerFactor)
}

// DecodePlan reads a JSON plan, rejecting unknown fields, and validates it.
func DecodePlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Outage is one merged downtime interval on a port. End is +Inf for a
// permanent failure.
type Outage struct {
	Port       int
	Start, End float64
}

// Permanent reports whether the outage never ends.
func (o Outage) Permanent() bool { return math.IsInf(o.End, 1) }

// SetupOutcome describes how one reservation's circuit establishment played
// out under the fault model.
type SetupOutcome struct {
	// Established reports whether the circuit eventually came up inside its
	// hold. When false the reservation holds its ports for the whole slot
	// without ever transmitting.
	Established bool
	// Setup is the effective reconfiguration time: the offset from the hold
	// start at which transmission begins (slot length when never
	// established). It always covers every retried δ plus backoff.
	Setup float64
	// Retries holds the offset from the hold start at which each failed
	// attempt finished paying its δ.
	Retries []float64
}

// Model is a compiled Plan bound to a fabric size. It is a deterministic
// function of the plan except for the per-pair setup-attempt counters, which
// advance as the owning simulation queries Setup — use one Model per run and
// do not share it across goroutines.
type Model struct {
	plan       Plan
	outages    [][]Outage // per port, sorted by start, non-overlapping
	boundaries []float64  // distinct finite outage starts/ends, sorted
	permFrom   []float64  // per port, earliest permanent-outage start (+Inf if none)
	maxRetries int
	degFactor  float64
	strFactor  float64

	attempts   map[attemptKey]uint64
	failBudget int
	anyPerm    bool
}

type attemptKey struct{ coflow, src, dst int }

// Compile validates the plan against the fabric size and builds the model.
// A nil or zero plan compiles to a nil model, which every query treats as
// "no faults".
func (p *Plan) Compile(ports int) (*Model, error) {
	if p.IsZero() {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ports <= 0 {
		return nil, fmt.Errorf("fault: fabric must have at least one port, got %d", ports)
	}
	m := &Model{
		plan:       *p,
		outages:    make([][]Outage, ports),
		permFrom:   make([]float64, ports),
		maxRetries: p.MaxRetries,
		degFactor:  p.DegradedFactor,
		strFactor:  p.StragglerFactor,
		attempts:   map[attemptKey]uint64{},
		failBudget: p.FailFirstSetups,
	}
	if m.maxRetries == 0 {
		m.maxRetries = 3
	}
	if m.degFactor == 0 {
		m.degFactor = 0.5
	}
	if m.strFactor == 0 {
		m.strFactor = 0.5
	}
	for i := range m.permFrom {
		m.permFrom[i] = math.Inf(1)
	}

	raw := make([][]Outage, ports)
	for _, f := range p.PortFailures {
		if f.Port >= ports {
			return nil, fmt.Errorf("fault: port failure names port %d outside [0,%d)", f.Port, ports)
		}
		end := math.Inf(1)
		if !f.Permanent() {
			end = f.At + f.Duration
		}
		raw[f.Port] = append(raw[f.Port], Outage{Port: f.Port, Start: f.At, End: end})
	}
	if p.TransientRate > 0 {
		for port := 0; port < ports; port++ {
			rng := rand.New(rand.NewSource(int64(m.hash(domTransient, uint64(port)))))
			t := rng.ExpFloat64() / p.TransientRate
			for t < p.Horizon {
				dur := rng.ExpFloat64() * p.MeanOutage
				if dur < timeEps {
					dur = timeEps
				}
				raw[port] = append(raw[port], Outage{Port: port, Start: t, End: t + dur})
				t += dur + rng.ExpFloat64()/p.TransientRate
			}
		}
	}

	seen := map[float64]bool{}
	for port, os := range raw {
		merged := mergeOutages(os)
		m.outages[port] = merged
		for _, o := range merged {
			if o.Permanent() {
				m.anyPerm = true
				m.permFrom[port] = o.Start
			}
			if !seen[o.Start] {
				seen[o.Start] = true
				m.boundaries = append(m.boundaries, o.Start)
			}
			if !o.Permanent() && !seen[o.End] {
				seen[o.End] = true
				m.boundaries = append(m.boundaries, o.End)
			}
		}
	}
	sort.Float64s(m.boundaries)
	return m, nil
}

// mergeOutages sorts and merges overlapping or touching outages; a permanent
// outage swallows everything after its start.
func mergeOutages(os []Outage) []Outage {
	if len(os) == 0 {
		return nil
	}
	sort.Slice(os, func(a, b int) bool { return os[a].Start < os[b].Start })
	out := os[:1]
	for _, o := range os[1:] {
		last := &out[len(out)-1]
		if o.Start <= last.End+timeEps {
			if o.End > last.End {
				last.End = o.End
			}
			continue
		}
		out = append(out, o)
	}
	return append([]Outage(nil), out...)
}

// Outages returns the merged downtime intervals of one port.
func (m *Model) Outages(port int) []Outage {
	if m == nil {
		return nil
	}
	return m.outages[port]
}

// Ports returns the fabric size the model was compiled for (0 on nil).
func (m *Model) Ports() int {
	if m == nil {
		return 0
	}
	return len(m.outages)
}

// Down reports whether the port is inside an outage at time t.
func (m *Model) Down(port int, t float64) bool {
	if m == nil {
		return false
	}
	for _, o := range m.outages[port] {
		if o.Start > t+timeEps {
			return false
		}
		if o.End > t+timeEps {
			return true
		}
	}
	return false
}

// PermanentlyDown reports whether the port is dead forever as of time t.
func (m *Model) PermanentlyDown(port int, t float64) bool {
	return m != nil && m.permFrom[port] <= t+timeEps
}

// PermanentFrom returns the earliest permanent-outage start on the port, or
// +Inf when the port never dies for good.
func (m *Model) PermanentFrom(port int) float64 {
	if m == nil {
		return math.Inf(1)
	}
	return m.permFrom[port]
}

// AnyPermanent reports whether any port eventually fails permanently.
func (m *Model) AnyPermanent() bool { return m != nil && m.anyPerm }

// NextBoundary returns the first finite outage start or end strictly after
// t, or +Inf. Simulators fold this into their next-event times so every
// outage edge is processed.
func (m *Model) NextBoundary(t float64) float64 {
	if m == nil {
		return math.Inf(1)
	}
	i := sort.Search(len(m.boundaries), func(k int) bool { return m.boundaries[k] > t+timeEps })
	if i == len(m.boundaries) {
		return math.Inf(1)
	}
	return m.boundaries[i]
}

// BoundariesAt returns the ports whose outage starts (down) or ends (up)
// coincide with time t, each side sorted ascending.
func (m *Model) BoundariesAt(t float64) (down, up []Outage) {
	if m == nil {
		return nil, nil
	}
	for port := range m.outages {
		for _, o := range m.outages[port] {
			if math.Abs(o.Start-t) <= timeEps {
				down = append(down, o)
			}
			if !o.Permanent() && math.Abs(o.End-t) <= timeEps {
				up = append(up, o)
			}
		}
	}
	return down, up
}

// RestrictPorts drops every outage on ports for which keep reports false and
// rebuilds the boundary index, leaving per-port draws on the kept ports
// untouched (outages, setup failures, degraded links and stragglers are all
// counter-hashed per port or per pair, never globally). The sharded simulator
// uses this to scope one compiled Model to a port-disjoint component: the
// component then sees exactly the outage boundaries of its own ports, so
// port_down events and counters are emitted once across the fleet instead of
// once per component. Safe on nil (no-op).
func (m *Model) RestrictPorts(keep func(port int) bool) {
	if m == nil {
		return
	}
	m.anyPerm = false
	m.boundaries = m.boundaries[:0]
	seen := map[float64]bool{}
	for port := range m.outages {
		if !keep(port) {
			m.outages[port] = nil
			m.permFrom[port] = math.Inf(1)
			continue
		}
		for _, o := range m.outages[port] {
			if o.Permanent() {
				m.anyPerm = true
			}
			if !seen[o.Start] {
				seen[o.Start] = true
				m.boundaries = append(m.boundaries, o.Start)
			}
			if !o.Permanent() && !seen[o.End] {
				seen[o.End] = true
				m.boundaries = append(m.boundaries, o.End)
			}
		}
	}
	sort.Float64s(m.boundaries)
}

// RateFactor returns the rate multiplier for a flow of the Coflow on the
// (src, dst) pair: the product of the link's degradation factor and the
// flow's straggler factor, 1 when neither applies. The factor is constant
// over the whole run.
func (m *Model) RateFactor(coflowID, src, dst int) float64 {
	if m == nil {
		return 1
	}
	f := 1.0
	if p := m.plan.DegradedLinkProb; p > 0 && m.u01(domLink, uint64(src), uint64(dst)) < p {
		f *= m.degFactor
	}
	if p := m.plan.StragglerProb; p > 0 && m.u01(domStraggler, uint64(coflowID), uint64(src), uint64(dst)) < p {
		f *= m.strFactor
	}
	return f
}

// Setup resolves one reservation's circuit establishment: slot is the
// reservation's full hold length, delta the planned setup δ. Each attempt
// fails independently with the plan's probability (after the deterministic
// fail-first budget drains); a failed attempt pays δ and backs off δ·2ⁱ
// before the next. Attempt draws consume a per-(coflow, src, dst) counter,
// so outcomes depend only on how many attempts that pair made before — not
// on wall-clock or scheduling order noise.
func (m *Model) Setup(coflowID, src, dst int, slot, delta float64) SetupOutcome {
	if m == nil || (m.plan.SetupFailProb == 0 && m.failBudget <= 0) {
		return SetupOutcome{Established: true, Setup: delta}
	}
	off := 0.0
	// Backoff{Base: δ, Factor: 2} reproduces the historical inline doubling
	// (δ, 2δ, 4δ, …) bit-for-bit; the shared type exists so the daemon's
	// replan retries run on the same machinery.
	bo := Backoff{Base: delta, Factor: 2}
	var retries []float64
	for attempt := 0; ; attempt++ {
		if off+delta > slot+timeEps {
			// No room for another attempt: the ports stay held but the
			// circuit never carries a byte.
			return SetupOutcome{Setup: slot, Retries: retries}
		}
		if !m.attemptFails(coflowID, src, dst) {
			return SetupOutcome{Established: true, Setup: off + delta, Retries: retries}
		}
		off += delta
		retries = append(retries, off)
		if attempt >= m.maxRetries {
			return SetupOutcome{Setup: slot, Retries: retries}
		}
		off += bo.Delay(attempt)
	}
}

func (m *Model) attemptFails(coflowID, src, dst int) bool {
	if m.failBudget > 0 {
		m.failBudget--
		return true
	}
	p := m.plan.SetupFailProb
	if p <= 0 {
		return false
	}
	k := attemptKey{coflowID, src, dst}
	n := m.attempts[k]
	m.attempts[k] = n + 1
	return m.u01(domSetup, uint64(coflowID), uint64(src), uint64(dst), n) < p
}

// Hash domains keep the independent random streams from colliding.
const (
	domTransient uint64 = 0x7472_616e // "tran"
	domSetup     uint64 = 0x7365_7475 // "setu"
	domLink      uint64 = 0x6c69_6e6b // "link"
	domStraggler uint64 = 0x7374_7261 // "stra"
)

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (m *Model) hash(domain uint64, vs ...uint64) uint64 {
	h := splitmix64(uint64(m.plan.Seed) ^ domain)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// u01 maps a hash to a uniform float64 in [0, 1).
func (m *Model) u01(domain uint64, vs ...uint64) float64 {
	return float64(m.hash(domain, vs...)>>11) / (1 << 53)
}
