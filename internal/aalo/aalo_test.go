package aalo

import (
	"math"
	"testing"

	"sunflow/internal/fabric"
)

const gbps = 1e9

func key(s, d int) fabric.FlowKey { return fabric.FlowKey{Src: s, Dst: d} }

func TestQueueOfDefaults(t *testing.T) {
	var a Allocator
	cases := []struct {
		attained float64
		want     int
	}{
		{0, 0},
		{9e6, 0},
		{10e6, 1},
		{99e6, 1},
		{100e6, 2},
		{1e9, 3},
		{1e30, 9}, // last queue
	}
	for _, tc := range cases {
		if got := a.QueueOf(tc.attained); got != tc.want {
			t.Fatalf("QueueOf(%v) = %d, want %d", tc.attained, got, tc.want)
		}
	}
}

func TestNextThreshold(t *testing.T) {
	var a Allocator
	if got := a.NextThreshold(0); got != 10e6 {
		t.Fatalf("NextThreshold(0) = %v", got)
	}
	if got := a.NextThreshold(10e6); got != 100e6 {
		t.Fatalf("NextThreshold(10e6) = %v", got)
	}
	if got := a.NextThreshold(1e30); !math.IsInf(got, 1) {
		t.Fatalf("NextThreshold(last queue) = %v", got)
	}
}

func TestCustomConfig(t *testing.T) {
	a := Allocator{FirstThreshold: 1e6, Multiplier: 2, NumQueues: 3}
	if got := a.QueueOf(1.5e6); got != 1 {
		t.Fatalf("QueueOf custom = %d, want 1", got)
	}
	if got := a.QueueOf(5e6); got != 2 {
		t.Fatalf("QueueOf custom tail = %d, want 2", got)
	}
}

func TestYoungCoflowHasPriority(t *testing.T) {
	// Coflow 2 has attained far more service: Coflow 1 (least attained)
	// owns the contended port.
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 50e6},
		2: {key(1, 0): 50e6},
	}
	attained := map[int]float64{1: 0, 2: 500e6}
	arrival := map[int]float64{1: 5, 2: 0}
	rates := (Allocator{}).Allocate(remaining, attained, arrival, gbps, 2)
	if got := rates[1][key(0, 0)]; math.Abs(got-gbps) > 1 {
		t.Fatalf("young coflow rate = %v, want B", got)
	}
	if got := rates[2][key(1, 0)]; got > 1 {
		t.Fatalf("old coflow rate = %v, want 0", got)
	}
}

func TestFIFOWithinQueue(t *testing.T) {
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 50e6},
		2: {key(1, 0): 50e6},
	}
	attained := map[int]float64{1: 0, 2: 0}
	arrival := map[int]float64{1: 3, 2: 1}
	rates := (Allocator{}).Allocate(remaining, attained, arrival, gbps, 2)
	if got := rates[2][key(1, 0)]; math.Abs(got-gbps) > 1 {
		t.Fatalf("earlier coflow rate = %v, want B", got)
	}
}

func TestEvenSplitWithinCoflow(t *testing.T) {
	// Aalo does not know flow sizes: a 1 MB and a 99 MB flow from one port
	// get equal rates — the large-Coflow inefficiency of §5.4.
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 1e6, key(0, 1): 99e6},
	}
	rates := (Allocator{}).Allocate(remaining, map[int]float64{1: 0}, map[int]float64{1: 0}, gbps, 2)
	r0, r1 := rates[1][key(0, 0)], rates[1][key(0, 1)]
	if math.Abs(r0-r1) > 1 {
		t.Fatalf("rates %v and %v should be equal regardless of size", r0, r1)
	}
}

func TestWorkConservationAcrossQueues(t *testing.T) {
	// The high-priority coflow cannot use in.1; the demoted one can.
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 10e6},
		2: {key(1, 1): 10e6},
	}
	attained := map[int]float64{1: 0, 2: 1e9}
	rates := (Allocator{}).Allocate(remaining, attained, map[int]float64{1: 0, 2: 0}, gbps, 2)
	if got := rates[2][key(1, 1)]; math.Abs(got-gbps) > 1 {
		t.Fatalf("demoted coflow should still get idle capacity, got %v", got)
	}
}

func TestAllocatorName(t *testing.T) {
	if (Allocator{}).Name() != "aalo" {
		t.Fatal("allocator must identify as aalo")
	}
}
