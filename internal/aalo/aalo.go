// Package aalo implements the Aalo Coflow scheduler (Chowdhury and Stoica,
// SIGCOMM 2015) for a packet-switched fabric: Discretized Coflow-aware
// Least-Attained Service (D-CLAS). Coflows are assigned to priority queues
// by the total bytes they have already sent — exponentially spaced
// thresholds — with FIFO order within a queue and no knowledge of flow
// sizes. Because Aalo cannot size-balance a Coflow's subflows, it shares
// bandwidth evenly among them, which delays the longest subflow and
// lengthens the CCT of large Coflows (the effect discussed in §5.4 of the
// Sunflow paper).
package aalo

import (
	"math"
	"sort"
	"time"

	"sunflow/internal/fabric"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// Allocator computes Aalo D-CLAS rates; it implements fabric.RateAllocator
// and the sim package's ThresholdNotifier (queue demotions must trigger a
// rate recomputation). The zero value selects the paper defaults.
type Allocator struct {
	// FirstThreshold is the attained-service boundary of the highest
	// priority queue, in bytes. Zero selects Aalo's default of 10 MB.
	FirstThreshold float64
	// Multiplier is the exponential spacing factor between queue
	// thresholds. Zero selects Aalo's default of 10.
	Multiplier float64
	// NumQueues is K, the number of priority queues (the last queue is
	// unbounded). Zero selects Aalo's default of 10.
	NumQueues int
	// Obs optionally records allocator-level metrics: each Allocate call
	// counts one intra pass with its wall time. The driving simulator
	// accounts sim-level pass counters separately, so the two never double
	// count. Nil disables instrumentation.
	Obs *obs.Observer
	// Prof optionally records profiling spans ("aalo.allocate" with a
	// "maxmin" child covering the per-Coflow fair-sharing sweep). Give it
	// the same stack as the driving simulator so the spans nest under its
	// "alloc" phase.
	Prof *span.Stack
}

// defaults fills in the Aalo paper's configuration.
func (a Allocator) defaults() Allocator {
	if a.FirstThreshold == 0 {
		a.FirstThreshold = 10e6
	}
	if a.Multiplier == 0 {
		a.Multiplier = 10
	}
	if a.NumQueues == 0 {
		a.NumQueues = 10
	}
	return a
}

// Name implements fabric.RateAllocator.
func (Allocator) Name() string { return "aalo" }

// PacedByCoflowEvents reports that Aalo's allocation is refreshed on Coflow
// arrivals, completions and queue crossings rather than per packet: its
// daemons coordinate loosely on fixed intervals, so bandwidth freed by a
// subflow finishing mid-interval is not reassigned instantly.
func (Allocator) PacedByCoflowEvents() bool { return true }

// boundaryEpsBytes treats attained service within one byte of a queue
// threshold as having crossed it. Without the slack, a fluid simulation
// advancing exactly to a threshold can stall just below it and re-schedule
// ever-smaller crossing events.
const boundaryEpsBytes = 1.0

// QueueOf returns the D-CLAS queue index for a Coflow that has attained the
// given service in bytes: queue q covers attained service in
// [FirstThreshold·Multiplier^(q-1), FirstThreshold·Multiplier^q).
func (a Allocator) QueueOf(attained float64) int {
	a = a.defaults()
	bound := a.FirstThreshold
	for q := 0; q < a.NumQueues-1; q++ {
		if attained < bound-boundaryEpsBytes {
			return q
		}
		bound *= a.Multiplier
	}
	return a.NumQueues - 1
}

// NextThreshold returns the attained-service level at which the Coflow will
// next change queue, or +Inf from the last queue. The simulator uses it to
// schedule demotion events.
func (a Allocator) NextThreshold(attained float64) float64 {
	a = a.defaults()
	bound := a.FirstThreshold
	for q := 0; q < a.NumQueues-1; q++ {
		if attained < bound-boundaryEpsBytes {
			return bound
		}
		bound *= a.Multiplier
	}
	return math.Inf(1)
}

// Allocate implements fabric.RateAllocator: strict priority across queues
// (lower attained service first), FIFO by arrival within a queue, and
// max-min fair sharing among the flows of the Coflow being served — evenly,
// since Aalo does not know flow sizes. Residual bandwidth cascades to lower
// priority Coflows, keeping the allocation work-conserving.
func (a Allocator) Allocate(remaining map[int]map[fabric.FlowKey]float64, attained map[int]float64, arrival map[int]float64, linkBps float64, ports int) map[int]map[fabric.FlowKey]float64 {
	if o := a.Obs; o != nil || a.Prof != nil {
		passStart := time.Now()
		sp := a.Prof.Start("aalo.allocate")
		defer func() {
			sec := time.Since(passStart).Seconds()
			sp.FinishWith(sec)
			if o != nil {
				o.IntraPasses.Inc()
				o.IntraSeconds.Add(sec)
			}
		}()
	}
	a = a.defaults()

	ids := make([]int, 0, len(remaining))
	for id := range remaining {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(x, y int) bool {
		qx, qy := a.QueueOf(attained[ids[x]]), a.QueueOf(attained[ids[y]]) // lower queue first
		if qx != qy {
			return qx < qy
		}
		if arrival[ids[x]] != arrival[ids[y]] {
			return arrival[ids[x]] < arrival[ids[y]]
		}
		return ids[x] < ids[y]
	})

	availIn := make([]float64, ports)
	availOut := make([]float64, ports)
	for i := 0; i < ports; i++ {
		availIn[i] = linkBps
		availOut[i] = linkBps
	}

	msp := a.Prof.Start("maxmin")
	out := make(map[int]map[fabric.FlowKey]float64, len(ids))
	for _, id := range ids {
		flows := make([]fabric.FlowKey, 0, len(remaining[id]))
		for k, b := range remaining[id] {
			if b > 0 {
				flows = append(flows, k)
			}
		}
		sort.Slice(flows, func(x, y int) bool {
			if flows[x].Src != flows[y].Src {
				return flows[x].Src < flows[y].Src
			}
			return flows[x].Dst < flows[y].Dst
		})
		rates := fabric.MaxMinFair(flows, availIn, availOut)
		m := make(map[fabric.FlowKey]float64, len(flows))
		for i, k := range flows {
			m[k] = rates[i]
		}
		out[id] = m
	}
	msp.Finish()
	return out
}
