// Package stats provides the summary statistics the paper's evaluation
// reports: means, percentiles, CDFs, and the Pearson and Spearman (rank)
// correlation coefficients used for the switching-count and CCT/TpL
// observations of §5.3.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Summary bundles the statistics the paper quotes for a metric.
type Summary struct {
	N    int
	Avg  float64
	P50  float64
	P95  float64
	Min_ float64
	Max_ float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Avg:  Mean(xs),
		P50:  Percentile(xs, 50),
		P95:  Percentile(xs, 95),
		Min_: Min(xs),
		Max_: Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d avg=%.3f p50=%.3f p95=%.3f min=%.3f max=%.3f",
		s.N, s.Avg, s.P50, s.P95, s.Min_, s.Max_)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF of xs as sorted points (F is the fraction of
// samples ≤ X).
func CDF(xs []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, F: float64(i+1) / float64(len(s))}
	}
	return out
}

// FractionBelow returns the fraction of samples strictly below limit.
func FractionBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Pearson returns the Pearson linear correlation coefficient of the paired
// samples, or 0 when undefined (mismatched, short, or constant inputs).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient of the paired
// samples (the "rank correlation" of §5.3.2), handling ties with average
// ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) of xs.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Histogram counts samples into equal-width bins over [lo, hi); samples
// outside the range clamp to the edge bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}
