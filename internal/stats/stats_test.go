package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("p50(nil) = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Avg != 3 || s.Min_ != 1 || s.Max_ != 5 || s.P50 != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestCDFAndFractionBelow(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 || pts[0].X != 1 || pts[2].F != 1 {
		t.Fatalf("CDF = %v", pts)
	}
	if got := FractionBelow([]float64{1, 2, 3, 4}, 3); got != 0.5 {
		t.Fatalf("FractionBelow = %v", got)
	}
	if got := FractionBelow(nil, 1); got != 0 {
		t.Fatalf("FractionBelow(nil) = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Pearson constant = %v", got)
	}
	if got := Pearson(xs, []float64{1}); got != 0 {
		t.Fatalf("Pearson mismatched = %v", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone relationship gives rank correlation 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	ys := []float64{1, 1, 2, 2}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman with ties = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.5, 1.5, 2.5, 99}, 0, 3, 3)
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("Histogram = %v", counts)
	}
	if got := Histogram(nil, 0, 0, 0); len(got) != 0 {
		t.Fatalf("Histogram degenerate = %v", got)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		p := rng.Float64() * 100
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpearmanBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		r := Spearman(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
