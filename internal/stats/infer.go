package stats

// Inference machinery for replicated experiments: sample standard deviation,
// Student-t and percentile-bootstrap confidence intervals, and speedup-ratio
// intervals. The experiment-matrix runner (internal/matrix) aggregates every
// cell's replications through these estimators; everything is deterministic
// in its inputs (the bootstrap takes an explicit seed) so matrix cells digest
// identically across runs.

import (
	"math"
	"math/rand"
	"sort"
)

// Variance returns the unbiased sample variance (n−1 denominator), or 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Stddev returns the sample standard deviation, or 0 for fewer than two
// samples.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Interval is a two-sided confidence interval for a mean (or a mean ratio).
type Interval struct {
	N          int     `json:"n"`
	Mean       float64 `json:"mean"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Confidence float64 `json:"confidence"`
}

// Degenerate reports whether the interval carries no width information:
// fewer than two samples, or a constant sample.
func (iv Interval) Degenerate() bool {
	return iv.N < 2 || iv.Lo == iv.Hi
}

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool {
	return iv.Lo <= x && x <= iv.Hi
}

// TInterval returns the two-sided Student-t confidence interval for the mean
// of xs at the given confidence level (e.g. 0.95). With fewer than two
// samples the interval collapses to the mean; the bench harness treats that
// as "no width information", not as certainty.
func TInterval(xs []float64, confidence float64) Interval {
	iv := Interval{N: len(xs), Mean: Mean(xs), Confidence: confidence}
	iv.Lo, iv.Hi = iv.Mean, iv.Mean
	if len(xs) < 2 || confidence <= 0 || confidence >= 1 {
		return iv
	}
	se := Stddev(xs) / math.Sqrt(float64(len(xs)))
	if se == 0 {
		return iv
	}
	t := TQuantile(0.5+confidence/2, len(xs)-1)
	iv.Lo = iv.Mean - t*se
	iv.Hi = iv.Mean + t*se
	return iv
}

// BootstrapMeanCI returns the percentile-bootstrap confidence interval for
// the mean of xs: resamples draws with replacement, each of size len(xs),
// and the (1±confidence)/2 percentiles of the resampled means. The seed
// makes the interval a pure function of its arguments. resamples ≤ 0 selects
// 1000.
func BootstrapMeanCI(xs []float64, confidence float64, resamples int, seed int64) Interval {
	iv := Interval{N: len(xs), Mean: Mean(xs), Confidence: confidence}
	iv.Lo, iv.Hi = iv.Mean, iv.Mean
	if len(xs) < 2 || confidence <= 0 || confidence >= 1 {
		return iv
	}
	if resamples <= 0 {
		resamples = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	iv.Lo = Percentile(means, 100*alpha)
	iv.Hi = Percentile(means, 100*(1-alpha))
	return iv
}

// PairedRatios returns the elementwise ratios a[i]/b[i], skipping pairs
// whose denominator is not positive. It is the paired-by-seed speedup sample
// the matrix runner feeds back into TInterval/BootstrapMeanCI: replications
// of two schedulers on the same seed share a workload, so the per-seed ratio
// cancels workload noise that independent resampling would keep.
func PairedRatios(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if b[i] > 0 {
			out = append(out, a[i]/b[i])
		}
	}
	return out
}

// TQuantile returns the p-quantile (inverse CDF) of Student's t distribution
// with df degrees of freedom, by bisection on TCDF. p must be in (0, 1); df
// must be ≥ 1. Accuracy is ~1e-10, far below what any confidence interval
// notices.
func TQuantile(p float64, df int) float64 {
	if df < 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	case p < 0.5:
		return -TQuantile(1-p, df)
	}
	// Expand the bracket until it contains the quantile, then bisect. The
	// CDF is monotone, so this cannot miss.
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p && hi < 1e18 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns P(T ≤ t) for Student's t distribution with df degrees of
// freedom, via the regularized incomplete beta function.
func TCDF(t float64, df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := float64(df) / (float64(df) + t*t)
	p := 0.5 * regIncBeta(float64(df)/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the standard continued-fraction expansion (Lentz's method), using the
// symmetry relation to keep the fraction in its fast-converging regime.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	front := math.Exp(lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lgamma is math.Lgamma without the sign return (all our arguments are
// positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
