package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTQuantileAgainstTables pins TQuantile to the classic two-sided t-table
// values (97.5th and 95th percentiles) that every statistics text prints.
func TestTQuantileAgainstTables(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 2, 4.3027},
		{0.975, 5, 2.5706},
		{0.975, 10, 2.2281},
		{0.975, 30, 2.0423},
		{0.975, 120, 1.9799},
		{0.95, 1, 6.3138},
		{0.95, 5, 2.0150},
		{0.95, 10, 1.8125},
		{0.95, 30, 1.6973},
		{0.995, 10, 3.1693},
		{0.90, 20, 1.3253},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("TQuantile(%v, %d) = %.4f, want %.4f", c.p, c.df, got, c.want)
		}
		// Symmetry: the lower-tail quantile is the negation.
		if lo := TQuantile(1-c.p, c.df); math.Abs(lo+got) > 1e-9 {
			t.Errorf("TQuantile(%v, %d) = %.6f, want -TQuantile(%v) = %.6f", 1-c.p, c.df, lo, c.p, -got)
		}
	}
}

func TestTQuantileEdges(t *testing.T) {
	if got := TQuantile(0.5, 7); got != 0 {
		t.Errorf("median of t must be 0, got %v", got)
	}
	if !math.IsInf(TQuantile(1, 3), 1) || !math.IsInf(TQuantile(0, 3), -1) {
		t.Error("p=0/1 must map to ∓Inf")
	}
	if !math.IsNaN(TQuantile(0.9, 0)) {
		t.Error("df=0 must be NaN")
	}
	// Large df approaches the normal quantile 1.95996.
	if got := TQuantile(0.975, 100000); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("TQuantile(0.975, 1e5) = %v, want ≈1.95996", got)
	}
}

func TestTCDFRoundTrip(t *testing.T) {
	for _, df := range []int{1, 2, 5, 17, 60} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.77, 0.975, 0.999} {
			q := TQuantile(p, df)
			if back := TCDF(q, df); math.Abs(back-p) > 1e-8 {
				t.Errorf("TCDF(TQuantile(%v, %d)) = %v", p, df, back)
			}
		}
	}
}

func TestTIntervalKnownSample(t *testing.T) {
	// n=5, mean 30, stddev sqrt(250)=15.811; t(0.975, 4)=2.7764.
	xs := []float64{10, 20, 30, 40, 50}
	iv := TInterval(xs, 0.95)
	half := 2.7764 * math.Sqrt(250) / math.Sqrt(5)
	if math.Abs(iv.Mean-30) > 1e-12 {
		t.Errorf("mean = %v", iv.Mean)
	}
	if math.Abs(iv.Lo-(30-half)) > 1e-3 || math.Abs(iv.Hi-(30+half)) > 1e-3 {
		t.Errorf("interval [%v, %v], want 30 ∓ %v", iv.Lo, iv.Hi, half)
	}
	if iv.Degenerate() {
		t.Error("five distinct samples must give a non-degenerate interval")
	}
}

func TestIntervalDegenerateSamples(t *testing.T) {
	for name, xs := range map[string][]float64{
		"empty":    nil,
		"single":   {3.5},
		"constant": {2, 2, 2, 2},
	} {
		for _, iv := range []Interval{
			TInterval(xs, 0.95),
			BootstrapMeanCI(xs, 0.95, 200, 1),
		} {
			if iv.Lo != iv.Mean || iv.Hi != iv.Mean {
				t.Errorf("%s: interval must collapse to the mean, got [%v, %v] around %v", name, iv.Lo, iv.Hi, iv.Mean)
			}
			if !iv.Degenerate() {
				t.Errorf("%s: must report degenerate", name)
			}
			if iv.N != len(xs) {
				t.Errorf("%s: N = %d", name, iv.N)
			}
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5, 7}
	a := BootstrapMeanCI(xs, 0.95, 500, 42)
	b := BootstrapMeanCI(xs, 0.95, 500, 42)
	if a != b {
		t.Errorf("same seed must reproduce: %+v vs %+v", a, b)
	}
	c := BootstrapMeanCI(xs, 0.95, 500, 43)
	if a == c {
		t.Error("different seeds should perturb the interval")
	}
}

// TestBootstrapCoverage checks empirical coverage on synthetic normal and
// exponential samples: a 90% bootstrap CI should contain the true mean
// roughly 90% of the time. Coverage is checked loosely (≥ 75%) over 200
// fixed-seed trials — the point is catching gross construction errors
// (swapped percentiles, off-by-one alphas), not certifying the estimator.
func TestBootstrapCoverage(t *testing.T) {
	const trials = 200
	draw := map[string]func(r *rand.Rand) (float64, float64){
		"normal":      func(r *rand.Rand) (float64, float64) { return 5 + 2*r.NormFloat64(), 5 },
		"exponential": func(r *rand.Rand) (float64, float64) { return r.ExpFloat64() * 3, 3 },
	}
	for name, gen := range draw {
		rng := rand.New(rand.NewSource(7))
		hit := 0
		for trial := 0; trial < trials; trial++ {
			xs := make([]float64, 30)
			var mean float64
			for i := range xs {
				xs[i], mean = gen(rng)
			}
			iv := BootstrapMeanCI(xs, 0.90, 400, int64(trial))
			if iv.Contains(mean) {
				hit++
			}
		}
		if cov := float64(hit) / trials; cov < 0.75 {
			t.Errorf("%s: 90%% bootstrap CI covered the true mean only %.0f%% of the time", name, 100*cov)
		}
	}
}

// TestTIntervalCoverage mirrors the bootstrap coverage check for the
// Student-t interval, where n=10 normal samples make the t correction
// matter.
func TestTIntervalCoverage(t *testing.T) {
	const trials = 300
	rng := rand.New(rand.NewSource(11))
	hit := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = 10 + 3*rng.NormFloat64()
		}
		if TInterval(xs, 0.95).Contains(10) {
			hit++
		}
	}
	if cov := float64(hit) / trials; cov < 0.88 || cov > 1 {
		t.Errorf("95%% t-interval coverage = %.1f%%", 100*cov)
	}
}

// TestIntervalProperties quick.Checks the structural invariants every
// interval must satisfy on arbitrary samples.
func TestIntervalProperties(t *testing.T) {
	prop := func(raw []float64, seed int64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		tIv := TInterval(xs, 0.95)
		bIv := BootstrapMeanCI(xs, 0.95, 100, seed)
		mean := Mean(xs)
		if !(tIv.Lo <= mean+1e-9 && mean-1e-9 <= tIv.Hi) {
			return false
		}
		if !(bIv.Lo <= bIv.Hi) {
			return false
		}
		// Bootstrap resamples cannot leave the sample's range.
		if len(xs) > 0 && (bIv.Lo < Min(xs)-1e-9 || bIv.Hi > Max(xs)+1e-9) {
			return false
		}
		return Stddev(xs) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPairedRatios(t *testing.T) {
	got := PairedRatios([]float64{2, 9, 4, 6}, []float64{1, 3, 0, 2})
	want := []float64{2, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ratio[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := PairedRatios(nil, nil); len(out) != 0 {
		t.Errorf("empty inputs must give no ratios, got %v", out)
	}
	// Mismatched lengths truncate to the shorter side.
	if out := PairedRatios([]float64{4, 4, 4}, []float64{2}); len(out) != 1 || out[0] != 2 {
		t.Errorf("truncation: got %v", out)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := Stddev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", s)
	}
	if Variance([]float64{42}) != 0 || Variance(nil) != 0 {
		t.Error("degenerate variance must be 0")
	}
}
