package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PortEvent is one entry of a sending machine's circuit program: the §6
// deployment sketch has the per-host agent receive its row of the PRT and
// transmit at line rate whenever its circuit is up.
type PortEvent struct {
	// Peer is the output port the circuit connects to.
	Peer int
	// CoflowID identifies whose traffic the agent should send.
	CoflowID int
	// SetupAt is when the switch starts configuring the circuit.
	SetupAt float64
	// TransmitAt is when the circuit is up and the host may send.
	TransmitAt float64
	// ReleaseAt is when the circuit is torn down.
	ReleaseAt float64
	// Bytes is how much the host should send during the window.
	Bytes float64
}

// PortProgram extracts the input port's reservation row from a set of
// schedules, ordered by time — what a Sunflow controller would push to the
// sending machine's agent (§6).
func PortProgram(in int, scheds ...*Schedule) []PortEvent {
	var events []PortEvent
	for _, s := range scheds {
		for _, r := range s.Reservations {
			if r.In != in {
				continue
			}
			events = append(events, PortEvent{
				Peer:       r.Out,
				CoflowID:   r.CoflowID,
				SetupAt:    r.Start,
				TransmitAt: r.TransmitStart(),
				ReleaseAt:  r.End,
				Bytes:      r.Bytes,
			})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].SetupAt < events[b].SetupAt })
	return events
}

// Gantt renders the schedules' input-port timelines as fixed-width text, one
// row per input port, mirroring Figure 1c: '#' marks reconfiguration, digits
// (the output port modulo 10) mark transmission, '.' marks idle time.
//
// width is the number of character cells; the time axis spans [start, end)
// of the union of all reservations. Rendering is lossy for reservations
// shorter than a cell — they claim at least one cell, later marks win.
func Gantt(width int, scheds ...*Schedule) string {
	var all []Reservation
	for _, s := range scheds {
		all = append(all, s.Reservations...)
	}
	if len(all) == 0 || width <= 0 {
		return ""
	}
	start, end := math.Inf(1), math.Inf(-1)
	maxIn := 0
	for _, r := range all {
		start = math.Min(start, r.Start)
		end = math.Max(end, r.End)
		if r.In > maxIn {
			maxIn = r.In
		}
	}
	if end <= start {
		return ""
	}
	scale := float64(width) / (end - start)
	cell := func(t float64) int {
		c := int((t - start) * scale)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	rows := make([][]byte, maxIn+1)
	used := make([]bool, maxIn+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Start < all[b].Start })
	for _, r := range all {
		used[r.In] = true
		lo, hi := cell(r.Start), cell(r.End-1e-12)
		txLo := cell(r.TransmitStart())
		mark := byte('0' + r.Out%10)
		for c := lo; c <= hi; c++ {
			if c < txLo {
				rows[r.In][c] = '#'
			} else {
				rows[r.In][c] = mark
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time %.3fs .. %.3fs ('#' setup, digit = out port mod 10)\n", start, end)
	for i, row := range rows {
		if !used[i] {
			continue
		}
		fmt.Fprintf(&sb, "in.%-3d |%s|\n", i, row)
	}
	return sb.String()
}
