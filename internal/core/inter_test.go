package core

import (
	"math"
	"math/rand"
	"testing"

	"sunflow/internal/coflow"
)

func TestShortestFirstOrdering(t *testing.T) {
	small := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	big := coflow.New(2, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 100e6}})
	got := ShortestFirst{LinkBps: gbps}.Sort([]*coflow.Coflow{big, small})
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("SCF order = [%d %d]", got[0].ID, got[1].ID)
	}
	// Input slice untouched.
	if big.ID != 2 {
		t.Fatal("Sort mutated input")
	}
}

func TestFIFOOrdering(t *testing.T) {
	a := coflow.New(1, 5, nil)
	b := coflow.New(2, 3, nil)
	got := FIFO{}.Sort([]*coflow.Coflow{a, b})
	if got[0].ID != 2 {
		t.Fatalf("FIFO order wrong: %d first", got[0].ID)
	}
}

func TestPriorityClasses(t *testing.T) {
	a := coflow.New(1, 0, nil)
	b := coflow.New(2, 1, nil)
	c := coflow.New(3, 2, nil)
	p := PriorityClasses{Class: map[int]int{3: 0, 1: 5}, DefaultClass: 2}
	got := p.Sort([]*coflow.Coflow{a, b, c})
	if got[0].ID != 3 || got[1].ID != 2 || got[2].ID != 1 {
		t.Fatalf("priority order = [%d %d %d]", got[0].ID, got[1].ID, got[2].ID)
	}
}

func TestInterHighPriorityUnblocked(t *testing.T) {
	// The first Coflow in the order must finish exactly as if it were
	// alone: Sunflow never lets lower priority Coflows block it.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		c1 := randomCoflow(rng, 6, 10)
		c1.ID = 1
		c2 := randomCoflow(rng, 6, 10)
		c2.ID = 2

		solo := mustIntra(t, c1, 6, testOpts)

		prt := NewPRT(6)
		scheds, err := InterCoflow(prt, []*coflow.Coflow{c1, c2}, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(scheds[0].Finish-solo.Finish) > 1e-9 {
			t.Fatalf("high priority coflow delayed: inter %v vs solo %v", scheds[0].Finish, solo.Finish)
		}
	}
}

func TestInterLowPriorityShortenedReservation(t *testing.T) {
	// Figure 2: C2's reservation on a port C1 needs later is shortened so
	// as not to block C1.
	// C1: flows (0,0) then (1,0) — the second must wait for out.0, giving
	// in.1 a future commitment.
	c1 := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 5e6},
		{Src: 1, Dst: 0, Bytes: 5e6},
	})
	// C2 wants a long transfer on in.1 → out.1, overlapping C1's future
	// reservation on in.1.
	c2 := coflow.New(2, 0, []coflow.Flow{{Src: 1, Dst: 1, Bytes: 50e6}})

	prt := NewPRT(2)
	scheds, err := InterCoflow(prt, []*coflow.Coflow{c1, c2}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds[1].Reservations) < 2 {
		t.Fatalf("C2 should be split around C1's reservation, got %+v", scheds[1].Reservations)
	}
	// C1's second flow must start exactly at its release time (0.01+0.04).
	c1res := scheds[0].Reservations
	if math.Abs(c1res[1].Start-0.05) > 1e-9 {
		t.Fatalf("C1 second reservation start = %v, want 0.05", c1res[1].Start)
	}
	// C2's first slice must end before C1 needs in.1.
	if scheds[1].Reservations[0].End > c1res[1].Start+1e-9 {
		t.Fatalf("C2 blocks C1: %v > %v", scheds[1].Reservations[0].End, c1res[1].Start)
	}
}

func TestInterRespectsArrivalTimes(t *testing.T) {
	c1 := coflow.New(1, 1.0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	prt := NewPRT(1)
	scheds, err := InterCoflow(prt, []*coflow.Coflow{c1}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if scheds[0].Reservations[0].Start < 1.0 {
		t.Fatalf("scheduled before arrival: %v", scheds[0].Reservations[0].Start)
	}
	if got := scheds[0].CCT(c1.Arrival); math.Abs(got-0.018) > 1e-9 {
		t.Fatalf("CCT = %v, want 0.018", got)
	}
}

func TestInterTotalServiceConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		var cs []*coflow.Coflow
		var total float64
		for id := 0; id < 5; id++ {
			c := randomCoflow(rng, 5, 8)
			c.ID = id
			cs = append(cs, c)
			total += c.TotalBytes()
		}
		prt := NewPRT(5)
		scheds, err := InterCoflow(prt, ShortestFirst{LinkBps: gbps}.Sort(cs), testOpts)
		if err != nil {
			t.Fatal(err)
		}
		var served float64
		for _, s := range scheds {
			for _, r := range s.Reservations {
				served += r.Bytes
			}
		}
		if math.Abs(served-total) > 1e-3 {
			t.Fatalf("served %v of %v", served, total)
		}
	}
}
