package core

import (
	"testing"

	"sunflow/internal/obs"
	"sunflow/internal/trace"
)

// TestIntraObsReservationsMatchPRT reconciles the observability counters
// with the scheduler's ground truth: the Reservations counter must equal
// both the schedule's reservation list and the circuits actually placed in
// the Port Reservation Table.
func TestIntraObsReservationsMatchPRT(t *testing.T) {
	tr := trace.Generator{Ports: 10, Coflows: 8, MaxWidth: 4, Seed: 11}.Trace()
	prt := NewPRT(tr.Ports)
	o := obs.New()
	opts := Options{LinkBps: gbps, Delta: 0.01, Obs: o}

	total := 0
	for _, c := range tr.Coflows {
		sched, err := IntraCoflow(prt, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		total += len(sched.Reservations)
	}

	if got := o.Reservations.Load(); got != int64(total) {
		t.Errorf("Reservations counter = %d, schedules hold %d reservations", got, total)
	}
	if got := prt.Len(); got != total {
		t.Errorf("PRT holds %d reservations, schedules hold %d", got, total)
	}
	if got := o.IntraPasses.Load(); got != int64(len(tr.Coflows)) {
		t.Errorf("IntraPasses = %d, scheduled %d Coflows", got, len(tr.Coflows))
	}
	if o.IntraSeconds.Load() <= 0 {
		t.Errorf("IntraSeconds = %v, want > 0", o.IntraSeconds.Load())
	}
}
