package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
)

const gbps = 1e9

var testOpts = Options{LinkBps: gbps, Delta: 0.01}

// mustIntra schedules on a fresh PRT and fails the test on error.
func mustIntra(t *testing.T, c *coflow.Coflow, n int, opts Options) *Schedule {
	t.Helper()
	prt := NewPRT(n)
	s, err := IntraCoflow(prt, c, opts)
	if err != nil {
		t.Fatalf("IntraCoflow: %v", err)
	}
	return s
}

// servedBytes sums reservation payloads per flow.
func servedBytes(s *Schedule) map[[2]int]float64 {
	out := map[[2]int]float64{}
	for _, r := range s.Reservations {
		out[[2]int{r.In, r.Out}] += r.Bytes
	}
	return out
}

func TestIntraSingleFlow(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 1e6}})
	s := mustIntra(t, c, 2, testOpts)
	if len(s.Reservations) != 1 {
		t.Fatalf("reservations = %d, want 1", len(s.Reservations))
	}
	// CCT = δ + p = 10ms + 8ms.
	if want := 0.018; math.Abs(s.Finish-want) > 1e-9 {
		t.Fatalf("Finish = %v, want %v", s.Finish, want)
	}
	if got := s.CCT(0); math.Abs(got-0.018) > 1e-9 {
		t.Fatalf("CCT = %v", got)
	}
	if f, ok := s.FlowFinish[[2]int{0, 1}]; !ok || math.Abs(f-0.018) > 1e-9 {
		t.Fatalf("FlowFinish = %v", s.FlowFinish)
	}
}

func TestIntraEmptyCoflow(t *testing.T) {
	c := coflow.New(1, 0, nil)
	s := mustIntra(t, c, 2, testOpts)
	if len(s.Reservations) != 0 || s.Finish != s.Start {
		t.Fatalf("empty coflow schedule: %+v", s)
	}
}

func TestIntraOptionsValidation(t *testing.T) {
	prt := NewPRT(2)
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 1}})
	if _, err := IntraCoflow(prt, c, Options{LinkBps: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := IntraCoflow(prt, c, Options{LinkBps: 1, Delta: -1}); err == nil {
		t.Fatal("negative delta accepted")
	}
	bad := coflow.New(1, 0, []coflow.Flow{{Src: 5, Dst: 1, Bytes: 1}})
	if _, err := IntraCoflow(prt, bad, testOpts); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestIntraOneToManyOptimal(t *testing.T) {
	// One sender, three receivers: circuits are scheduled back to back on
	// in.0, so CCT equals TcL exactly (§5.3.1).
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 1, Bytes: 1e6},
		{Src: 0, Dst: 2, Bytes: 2e6},
		{Src: 0, Dst: 3, Bytes: 3e6},
	})
	s := mustIntra(t, c, 4, testOpts)
	tcl := c.CircuitLowerBound(gbps, testOpts.Delta)
	if math.Abs(s.Finish-tcl) > 1e-9 {
		t.Fatalf("O2M CCT = %v, want TcL = %v", s.Finish, tcl)
	}
	if s.SwitchingCount() != 3 {
		t.Fatalf("switching count = %d, want 3", s.SwitchingCount())
	}
}

func TestIntraManyToOneOptimal(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 1, Dst: 0, Bytes: 1e6},
		{Src: 2, Dst: 0, Bytes: 2e6},
		{Src: 3, Dst: 0, Bytes: 5e6},
	})
	s := mustIntra(t, c, 4, testOpts)
	tcl := c.CircuitLowerBound(gbps, testOpts.Delta)
	if math.Abs(s.Finish-tcl) > 1e-9 {
		t.Fatalf("M2O CCT = %v, want TcL = %v", s.Finish, tcl)
	}
}

func TestIntraDisjointFlowsRunInParallel(t *testing.T) {
	// Two flows on disjoint port pairs start simultaneously — the
	// interleaving the not-all-stop model allows (Figure 1c).
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 4e6},
		{Src: 1, Dst: 1, Bytes: 4e6},
	})
	s := mustIntra(t, c, 2, testOpts)
	if len(s.Reservations) != 2 {
		t.Fatalf("reservations = %d", len(s.Reservations))
	}
	for _, r := range s.Reservations {
		if r.Start != 0 {
			t.Fatalf("reservation did not start immediately: %+v", r)
		}
	}
	if want := 0.01 + 0.032; math.Abs(s.Finish-want) > 1e-9 {
		t.Fatalf("Finish = %v, want %v", s.Finish, want)
	}
}

func TestIntraServesAllDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		c := randomCoflow(rng, 6, 14)
		s := mustIntra(t, c, 6, testOpts)
		served := servedBytes(s)
		for _, f := range c.Flows {
			got := served[[2]int{f.Src, f.Dst}]
			if math.Abs(got-f.Bytes) > 1e-3 {
				t.Fatalf("flow %d->%d served %v of %v", f.Src, f.Dst, got, f.Bytes)
			}
		}
	}
}

func TestIntraSwitchingCountIsMinimal(t *testing.T) {
	// On an empty PRT no reservation is ever shortened, so the switching
	// count equals |C| — the optimal count of Figure 5.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		c := randomCoflow(rng, 8, 20)
		s := mustIntra(t, c, 8, testOpts)
		if s.SwitchingCount() != c.NumFlows() {
			t.Fatalf("switching = %d, |C| = %d", s.SwitchingCount(), c.NumFlows())
		}
	}
}

func TestIntraLemma1FactorOfTwo(t *testing.T) {
	// TS ≤ 2·TcL for any B, δ, Coflow and ordering (Lemma 1).
	rng := rand.New(rand.NewSource(99))
	orders := []Order{OrderedPort, RandomOrder, SortedDemand}
	for trial := 0; trial < 300; trial++ {
		c := randomCoflow(rng, 10, 30)
		opts := Options{
			LinkBps: []float64{1e9, 1e10, 1e11}[rng.Intn(3)],
			Delta:   []float64{1e-5, 1e-3, 1e-2, 1e-1}[rng.Intn(4)],
			Order:   orders[rng.Intn(len(orders))],
			Seed:    rng.Int63(),
		}
		s := mustIntra(t, c, 10, opts)
		tcl := c.CircuitLowerBound(opts.LinkBps, opts.Delta)
		if s.Finish > 2*tcl+1e-9 {
			t.Fatalf("Lemma 1 violated: TS=%v > 2·TcL=%v (δ=%v, B=%v, order=%v)",
				s.Finish, 2*tcl, opts.Delta, opts.LinkBps, opts.Order)
		}
	}
}

func TestIntraLemma2Bound(t *testing.T) {
	// TS ≤ 2(1+α)·TpL (Lemma 2).
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		c := randomCoflow(rng, 8, 20)
		s := mustIntra(t, c, 8, testOpts)
		alpha := c.Alpha(testOpts.LinkBps, testOpts.Delta)
		tpl := c.PacketLowerBound(testOpts.LinkBps)
		if s.Finish > 2*(1+alpha)*tpl+1e-9 {
			t.Fatalf("Lemma 2 violated: TS=%v > %v", s.Finish, 2*(1+alpha)*tpl)
		}
	}
}

func TestIntraPortConstraintNeverViolated(t *testing.T) {
	// PRT.Reserve panics on any overlap, so a run to completion proves the
	// port constraint held; this test exercises dense demand where every
	// port pair is loaded.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 5
		var flows []coflow.Flow
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(20)) * 1e6})
			}
		}
		c := coflow.New(trial, 0, flows)
		s := mustIntra(t, c, n, testOpts)
		if s.SwitchingCount() != n*n {
			t.Fatalf("dense coflow switching = %d, want %d", s.SwitchingCount(), n*n)
		}
	}
}

func TestIntraOrderingInsensitivity(t *testing.T) {
	// §5.3.1: orderings differ by only a few percent. Verify the bound
	// holds and results differ by at most 2x (a loose sanity envelope on a
	// single random Coflow).
	rng := rand.New(rand.NewSource(42))
	c := randomCoflow(rng, 10, 40)
	base := mustIntra(t, c, 10, Options{LinkBps: gbps, Delta: 0.01, Order: OrderedPort})
	for _, o := range []Order{RandomOrder, SortedDemand} {
		s := mustIntra(t, c, 10, Options{LinkBps: gbps, Delta: 0.01, Order: o, Seed: 1})
		ratio := s.Finish / base.Finish
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("ordering %v ratio %v out of envelope", o, ratio)
		}
	}
}

func TestIntraRandomOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randomCoflow(rng, 8, 20)
	o := Options{LinkBps: gbps, Delta: 0.01, Order: RandomOrder, Seed: 321}
	a := mustIntra(t, c, 8, o)
	b := mustIntra(t, c, 8, o)
	if a.Finish != b.Finish || len(a.Reservations) != len(b.Reservations) {
		t.Fatal("RandomOrder with equal seeds must be deterministic")
	}
}

func TestIntraAroundPreloadedReservation(t *testing.T) {
	// A pre-seeded commitment on in.0 at [0.05, 0.1) shortens the flow's
	// reservation (inter-Coflow mechanics, Figure 2): the flow wants
	// δ+0.08 = 0.09s but only 0.05s is available, so it is split.
	prt := NewPRT(2)
	prt.Preload([]Reservation{{CoflowID: 99, In: 0, Out: 1, Start: 0.05, End: 0.10, Setup: 0.01, Bytes: 0.04 * gbps / 8}})
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 10e6}}) // p = 80ms
	s, err := IntraCoflow(prt, c, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reservations) != 2 {
		t.Fatalf("want a split reservation, got %+v", s.Reservations)
	}
	first := s.Reservations[0]
	if first.Start != 0 || math.Abs(first.End-0.05) > 1e-9 {
		t.Fatalf("first reservation = %+v, want [0, 0.05)", first)
	}
	second := s.Reservations[1]
	if second.Start < 0.10-1e-9 {
		t.Fatalf("second reservation starts at %v inside the preloaded slot", second.Start)
	}
	// Total payload must equal the demand; the second reservation pays a
	// second δ.
	total := first.Bytes + second.Bytes
	if math.Abs(total-10e6) > 1e-3 {
		t.Fatalf("served %v of 10e6", total)
	}
}

func TestIntraGapShorterThanDeltaIsSkipped(t *testing.T) {
	// A free gap of only δ/2 before a commitment cannot host a circuit; the
	// flow must wait for the release.
	prt := NewPRT(2)
	prt.Preload([]Reservation{{CoflowID: 99, In: 0, Out: 1, Start: 0.005, End: 0.10}})
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	s, err := IntraCoflow(prt, c, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reservations) != 1 {
		t.Fatalf("reservations = %+v", s.Reservations)
	}
	if s.Reservations[0].Start < 0.10-1e-9 {
		t.Fatalf("reservation start %v should wait for the release at 0.10", s.Reservations[0].Start)
	}
}

func TestQuickIntraLemma1(t *testing.T) {
	// Property form of Lemma 1 over the full randomized space.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCoflow(rng, 6, 15)
		delta := math.Pow(10, -1-4*rng.Float64()) // 1e-5 .. 1e-1
		opts := Options{LinkBps: gbps, Delta: delta, Order: RandomOrder, Seed: seed}
		prt := NewPRT(6)
		s, err := IntraCoflow(prt, c, opts)
		if err != nil {
			return false
		}
		return s.Finish <= 2*c.CircuitLowerBound(gbps, delta)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomCoflow builds a random Coflow with distinct port pairs.
func randomCoflow(rng *rand.Rand, ports, maxFlows int) *coflow.Coflow {
	n := 1 + rng.Intn(maxFlows)
	used := map[[2]int]bool{}
	var flows []coflow.Flow
	for len(flows) < n {
		i, j := rng.Intn(ports), rng.Intn(ports)
		if used[[2]int{i, j}] {
			continue
		}
		used[[2]int{i, j}] = true
		flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(100)) * 1e6})
	}
	return coflow.New(rng.Int(), 0, flows)
}
