package core

import (
	"math"
	"testing"

	"sunflow/internal/coflow"
)

func testWindows() FairWindows {
	return FairWindows{N: 4, T: 1.0, Tau: 0.1}
}

func TestFairWindowsValidate(t *testing.T) {
	fw := testWindows()
	if err := fw.Validate(0.01); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (FairWindows{N: 4, T: 1, Tau: 0.005}).Validate(0.01); err == nil {
		t.Fatal("τ ≤ δ accepted")
	}
	if err := (FairWindows{N: 4, T: 0.05, Tau: 0.1}).Validate(0.01); err == nil {
		t.Fatal("T ≤ τ accepted")
	}
	if err := (FairWindows{N: 0, T: 1, Tau: 0.1}).Validate(0.01); err == nil {
		t.Fatal("zero ports accepted")
	}
}

func TestFairWindowsGeometry(t *testing.T) {
	fw := testWindows() // period 1.1, windows at [1.0,1.1), [2.1,2.2), ...
	if fw.Covers(0.5) {
		t.Fatal("0.5 should be normal time")
	}
	if !fw.Covers(1.05) {
		t.Fatal("1.05 should be inside the first window")
	}
	if fw.Covers(1.15) {
		t.Fatal("1.15 should be past the first window")
	}
	if got := fw.NextStart(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("NextStart(0) = %v", got)
	}
	if got := fw.NextStart(1.0); math.Abs(got-2.1) > 1e-9 {
		t.Fatalf("NextStart(1.0) = %v (start is not after itself)", got)
	}
	if got := fw.NextEnd(1.05); math.Abs(got-1.1) > 1e-9 {
		t.Fatalf("NextEnd(1.05) = %v", got)
	}
	if got := fw.NextEnd(1.2); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("NextEnd(1.2) = %v", got)
	}
}

func TestFairWindowsAssignmentsCoverAllCircuits(t *testing.T) {
	fw := testWindows()
	seen := map[[2]int]bool{}
	for k := 0; k < fw.N; k++ {
		a := fw.Assignment(k)
		used := map[int]bool{}
		for i, j := range a {
			if used[j] {
				t.Fatalf("assignment %d reuses output %d", k, j)
			}
			used[j] = true
			seen[[2]int{i, j}] = true
		}
	}
	if len(seen) != fw.N*fw.N {
		t.Fatalf("Φ covers %d circuits, want %d", len(seen), fw.N*fw.N)
	}
	// Assignment indices wrap modulo N.
	a0, aN := fw.Assignment(0), fw.Assignment(fw.N)
	for i := range a0 {
		if a0[i] != aN[i] {
			t.Fatal("Assignment should wrap modulo N")
		}
	}
}

func TestFairWindowsWindowsIn(t *testing.T) {
	fw := testWindows()
	ws := fw.WindowsIn(0, 3.5)
	if len(ws) != 3 {
		t.Fatalf("WindowsIn(0,3.5) = %d windows, want 3", len(ws))
	}
	if math.Abs(ws[0].Start-1.0) > 1e-9 || math.Abs(ws[1].Start-2.1) > 1e-9 {
		t.Fatalf("window starts %v %v", ws[0].Start, ws[1].Start)
	}
	// Partial overlap at the left edge is returned too.
	ws = fw.WindowsIn(1.05, 1.2)
	if len(ws) != 1 {
		t.Fatalf("partial overlap missed: %v", ws)
	}
}

func TestIntraCoflowAvoidsBlackout(t *testing.T) {
	fw := FairWindows{N: 2, T: 0.1, Tau: 0.05}
	if err := fw.Validate(0.01); err != nil {
		t.Fatal(err)
	}
	prt := NewPRT(2)
	prt.SetBlackout(fw)
	// 30 MB = 240 ms of transmission: must be split around the windows at
	// [0.1, 0.15), [0.25, 0.30), ...
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 30e6}})
	s, err := IntraCoflow(prt, c, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Reservations {
		for _, w := range fw.WindowsIn(r.Start, r.End) {
			if w.Start < r.End-1e-9 && w.End > r.Start+1e-9 {
				t.Fatalf("reservation [%v,%v) intrudes into window [%v,%v)", r.Start, r.End, w.Start, w.End)
			}
		}
	}
	var total float64
	for _, r := range s.Reservations {
		total += r.Bytes
	}
	if math.Abs(total-30e6) > 1e-3 {
		t.Fatalf("served %v of 30e6", total)
	}
}

func TestShareCircuitWaterFill(t *testing.T) {
	const bps = 1e9
	// Capacity for 3 MB total (24 ms at 1 Gbps), three flows of 1, 2, 4 MB.
	served := ShareCircuit([]float64{1e6, 2e6, 4e6}, 0.024, bps)
	// Equal instantaneous shares: all get 1 MB; flow 0 finishes. The
	// remaining 0 MB of capacity is split... total = 3 MB: phase 1 brings
	// everyone to 1 MB (3 MB used), done.
	if math.Abs(served[0]-1e6) > 1 || math.Abs(served[1]-1e6) > 1 || math.Abs(served[2]-1e6) > 1 {
		t.Fatalf("served = %v", served)
	}
}

func TestShareCircuitDrainsWhenCapacityAmple(t *testing.T) {
	const bps = 1e9
	served := ShareCircuit([]float64{1e6, 2e6}, 1.0, bps) // 125 MB capacity
	if served[0] != 1e6 || served[1] != 2e6 {
		t.Fatalf("served = %v, want full drain", served)
	}
}

func TestShareCircuitConservation(t *testing.T) {
	const bps = 1e9
	rem := []float64{3e6, 1e6, 7e6, 2e6}
	served := ShareCircuit(rem, 0.05, bps) // 6.25 MB capacity < 13 MB demand
	var sum float64
	for i, s := range served {
		if s < 0 || s > rem[i]+1e-9 {
			t.Fatalf("served[%d] = %v out of range (rem %v)", i, s, rem[i])
		}
		sum += s
	}
	if math.Abs(sum-6.25e6) > 1 {
		t.Fatalf("total served %v != capacity 6.25e6", sum)
	}
	// Smaller flows never get less than larger ones.
	if served[1] > served[0]+1e-9 && rem[1] < rem[0] {
		t.Fatal("water-fill order violated")
	}
}

func TestShareCircuitEdgeCases(t *testing.T) {
	if got := ShareCircuit(nil, 1, 1e9); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	got := ShareCircuit([]float64{5}, 0, 1e9)
	if got[0] != 0 {
		t.Fatalf("zero duration served %v", got[0])
	}
}
