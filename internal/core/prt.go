// Package core implements Sunflow, the circuit scheduling algorithm of
// Huang, Sun and Ng (CoNEXT 2016): non-preemptive intra-Coflow circuit
// reservation over a Port Reservation Table (PRT), priority-ordered
// inter-Coflow scheduling, and the (T, τ) starvation-avoidance windows of
// §4.2.
//
// The switch follows the not-all-stop model of §2.1: an input (output) port
// carries at most one circuit at a time, each circuit establishment costs a
// fixed delay δ during which only the two ports involved are stopped, and a
// circuit transmits at the full link rate B once established.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// timeEps absorbs floating-point residue when comparing schedule times.
const timeEps = 1e-9

// Reservation is one circuit held on the port pair [In, Out] during
// [Start, End). The first Setup seconds configure the circuit; the remainder
// transmits at the link rate. A reservation is the unit of switching: each
// reservation costs exactly one circuit establishment.
type Reservation struct {
	// CoflowID is the Coflow the reservation serves.
	CoflowID int
	// In and Out are the input and output port of the circuit.
	In, Out int
	// Start and End delimit the half-open interval during which both ports
	// are held.
	Start, End float64
	// Setup is the circuit reconfiguration delay paid at the start of the
	// reservation (δ).
	Setup float64
	// Bytes is the demand served by the reservation:
	// (End-Start-Setup) · B/8.
	Bytes float64
}

// TransmitStart returns the instant the circuit begins carrying data.
func (r Reservation) TransmitStart() float64 { return r.Start + r.Setup }

// TransmittedBy returns how many of the reservation's Bytes have been
// delivered by time t at link bandwidth linkBps.
func (r Reservation) TransmittedBy(t, linkBps float64) float64 {
	if t <= r.TransmitStart() {
		return 0
	}
	if t >= r.End {
		return r.Bytes
	}
	return math.Min(r.Bytes, (t-r.TransmitStart())*linkBps/8)
}

// interval is one busy period on a single port's timeline.
type interval struct {
	start, end float64
	peer       int // the port on the other side of the circuit
}

// timeline is a sorted list of non-overlapping busy intervals on one port.
type timeline struct {
	iv []interval
}

// searchAfter returns the index of the first interval with start > t.
func (tl *timeline) searchAfter(t float64) int {
	return sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].start > t })
}

// freeAt reports whether the port is free at time t, i.e. no interval
// contains t.
func (tl *timeline) freeAt(t float64) bool {
	i := tl.searchAfter(t)
	// The candidate containing interval is the one before index i.
	return i == 0 || tl.iv[i-1].end <= t+timeEps
}

// nextStart returns the start of the earliest interval beginning after t, or
// +Inf when the port has no later commitment.
func (tl *timeline) nextStart(t float64) float64 {
	i := tl.searchAfter(t)
	if i == len(tl.iv) {
		return math.Inf(1)
	}
	return tl.iv[i].start
}

// insert adds the interval [start, end) and reports whether it was free of
// overlap. Insertion keeps the timeline sorted.
func (tl *timeline) insert(start, end float64, peer int) bool {
	i := tl.searchAfter(start)
	if i > 0 && tl.iv[i-1].end > start+timeEps {
		return false
	}
	if i < len(tl.iv) && tl.iv[i].start < end-timeEps {
		return false
	}
	tl.iv = append(tl.iv, interval{})
	copy(tl.iv[i+1:], tl.iv[i:])
	tl.iv[i] = interval{start: start, end: end, peer: peer}
	return true
}

// remove deletes the interval starting exactly at start, if present.
func (tl *timeline) remove(start float64) {
	for i, iv := range tl.iv {
		if iv.start == start {
			tl.iv = append(tl.iv[:i], tl.iv[i+1:]...)
			return
		}
	}
}

// block fills the free gaps of [start, end) with busy intervals (peer -1),
// leaving existing intervals untouched.
func (tl *timeline) block(start, end float64) {
	if end <= start {
		return
	}
	cur := start
	var gaps []interval
	i := sort.Search(len(tl.iv), func(k int) bool { return tl.iv[k].end > start+timeEps })
	for ; i < len(tl.iv) && tl.iv[i].start < end-timeEps; i++ {
		if tl.iv[i].start > cur+timeEps {
			gaps = append(gaps, interval{start: cur, end: math.Min(tl.iv[i].start, end), peer: -1})
		}
		cur = math.Max(cur, tl.iv[i].end)
	}
	if cur < end-timeEps {
		gaps = append(gaps, interval{start: cur, end: end, peer: -1})
	}
	for _, g := range gaps {
		tl.insert(g.start, g.end, g.peer)
	}
}

// endsAfter appends to dst the end times of all intervals ending after t.
func (tl *timeline) endsAfter(t float64, dst []float64) []float64 {
	for _, iv := range tl.iv {
		if iv.end > t+timeEps {
			dst = append(dst, iv.end)
		}
	}
	return dst
}

// Blackout describes recurring periods during which ports may not accept
// normal reservations — used by the starvation-avoidance fair windows of
// §4.2, which dedicate τ-long slices of every (T+τ) interval to a fixed
// round-robin assignment shared by all Coflows.
type Blackout interface {
	// Covers reports whether normal reservations are forbidden at time t.
	Covers(t float64) bool
	// NextStart returns the start of the first blackout beginning after t,
	// or +Inf.
	NextStart(t float64) float64
	// NextEnd returns the end of the first blackout ending after t, or +Inf.
	NextEnd(t float64) float64
}

// PRT is the Port Reservation Table of Algorithm 1: per-port timelines of
// circuit reservations for the input and output side of an N-port optical
// switch. The zero value is unusable; construct with NewPRT.
type PRT struct {
	n        int
	in, out  []timeline
	blackout Blackout
	count    int
}

// NewPRT returns an empty PRT for an n-port switch.
func NewPRT(n int) *PRT {
	return &PRT{n: n, in: make([]timeline, n), out: make([]timeline, n)}
}

// Ports returns the switch port count N.
func (p *PRT) Ports() int { return p.n }

// Len returns the number of reservations recorded.
func (p *PRT) Len() int { return p.count }

// SetBlackout installs recurring no-reservation windows (nil disables).
func (p *PRT) SetBlackout(b Blackout) { p.blackout = b }

// FreeAt reports whether both in.i and out.j are free at time t and t is not
// inside a blackout window.
func (p *PRT) FreeAt(i, j int, t float64) bool {
	if p.blackout != nil && p.blackout.Covers(t) {
		return false
	}
	return p.in[i].freeAt(t) && p.out[j].freeAt(t)
}

// NextCommitment returns tm, the earliest next reservation start on in.i or
// out.j after t — the bound that shortens reservations at the inter-Coflow
// level (Algorithm 1, line 16) — also accounting for the next blackout
// window.
func (p *PRT) NextCommitment(i, j int, t float64) float64 {
	tm := math.Min(p.in[i].nextStart(t), p.out[j].nextStart(t))
	if p.blackout != nil {
		tm = math.Min(tm, p.blackout.NextStart(t))
	}
	return tm
}

// ErrDoubleBooked reports a reservation overlapping an existing one on a
// port timeline.
var ErrDoubleBooked = errors.New("core: port double-booked")

// ErrEmptyReservation reports a reservation with a non-positive interval.
var ErrEmptyReservation = errors.New("core: empty reservation")

// TryReserve records the reservation on both port timelines, or returns a
// typed error (ErrEmptyReservation, ErrDoubleBooked) leaving the table
// unchanged. The fault repair path uses it to preload in-flight circuits
// into a degraded table where a conflict is an expected outcome, not a
// programming error.
func (p *PRT) TryReserve(r Reservation) error {
	if r.End <= r.Start {
		return fmt.Errorf("%w: %+v", ErrEmptyReservation, r)
	}
	if !p.in[r.In].insert(r.Start, r.End, r.Out) {
		return fmt.Errorf("%w: input port %d at [%.9f,%.9f)", ErrDoubleBooked, r.In, r.Start, r.End)
	}
	if !p.out[r.Out].insert(r.Start, r.End, r.In) {
		// Roll the input side back so a failed TryReserve is a no-op.
		p.in[r.In].remove(r.Start)
		return fmt.Errorf("%w: output port %d at [%.9f,%.9f)", ErrDoubleBooked, r.Out, r.Start, r.End)
	}
	p.count++
	return nil
}

// Reserve records the reservation on both port timelines. It panics if the
// interval overlaps an existing reservation on either port, which would mean
// the scheduler violated the port constraint — a programming error. Callers
// that can legitimately collide use TryReserve.
func (p *PRT) Reserve(r Reservation) {
	if err := p.TryReserve(r); err != nil {
		panic(err.Error())
	}
}

// Block marks [start, end) unusable on both sides of the port — a fault
// outage. End may be +Inf for a permanent failure. Portions of the window
// already covered by existing intervals are skipped, so blocking composes
// with reservations preloaded first (an established circuit spanning a
// future outage edge is truncated by the simulator at the edge, not here).
func (p *PRT) Block(port int, start, end float64) {
	p.in[port].block(start, end)
	p.out[port].block(start, end)
}

// Preload seeds the PRT with reservations that must not be preempted —
// circuits already established when an online reschedule happens.
func (p *PRT) Preload(rs []Reservation) {
	for _, r := range rs {
		p.Reserve(r)
	}
}

// ReleasesAfter appends to dst the end times, strictly after t, of existing
// reservations touching any of the given input and output ports. The intra
// scheduler advances through these instants (Algorithm 1, line 10).
func (p *PRT) ReleasesAfter(t float64, ins, outs []int, dst []float64) []float64 {
	for _, i := range ins {
		dst = p.in[i].endsAfter(t, dst)
	}
	for _, j := range outs {
		dst = p.out[j].endsAfter(t, dst)
	}
	return dst
}

// busyTime sums reserved time on input port i within [from, to) — used by
// tests and utilization accounting.
func (p *PRT) busyTime(i int, from, to float64) float64 {
	var sum float64
	for _, iv := range p.in[i].iv {
		lo, hi := math.Max(iv.start, from), math.Min(iv.end, to)
		if hi > lo {
			sum += hi - lo
		}
	}
	return sum
}
