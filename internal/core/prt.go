// Package core implements Sunflow, the circuit scheduling algorithm of
// Huang, Sun and Ng (CoNEXT 2016): non-preemptive intra-Coflow circuit
// reservation over a Port Reservation Table (PRT), priority-ordered
// inter-Coflow scheduling, and the (T, τ) starvation-avoidance windows of
// §4.2.
//
// The switch follows the not-all-stop model of §2.1: an input (output) port
// carries at most one circuit at a time, each circuit establishment costs a
// fixed delay δ during which only the two ports involved are stopped, and a
// circuit transmits at the full link rate B once established.
package core

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// timeEps absorbs floating-point residue when comparing schedule times.
const timeEps = 1e-9

// Reservation is one circuit held on the port pair [In, Out] during
// [Start, End). The first Setup seconds configure the circuit; the remainder
// transmits at the full link rate. A reservation is the unit of switching: each
// reservation costs exactly one circuit establishment.
type Reservation struct {
	// CoflowID is the Coflow the reservation serves.
	CoflowID int
	// In and Out are the input and output port of the circuit.
	In, Out int
	// Start and End delimit the half-open interval during which both ports
	// are held.
	Start, End float64
	// Setup is the circuit reconfiguration delay paid at the start of the
	// reservation (δ).
	Setup float64
	// Bytes is the demand served by the reservation:
	// (End-Start-Setup) · B/8.
	Bytes float64
}

// TransmitStart returns the instant the circuit begins carrying data.
func (r Reservation) TransmitStart() float64 { return r.Start + r.Setup }

// TransmittedBy returns how many of the reservation's Bytes have been
// delivered by time t at link bandwidth linkBps.
func (r Reservation) TransmittedBy(t, linkBps float64) float64 {
	if t <= r.TransmitStart() {
		return 0
	}
	if t >= r.End {
		return r.Bytes
	}
	return math.Min(r.Bytes, (t-r.TransmitStart())*linkBps/8)
}

// interval is one busy period on a single port's timeline.
type interval struct {
	start, end float64
	peer       int // the port on the other side of the circuit
}

// timeline holds the sorted non-overlapping busy intervals of one port, split
// at the compaction horizon into a small live window and a cold archive.
//
// Invariant: old ++ iv is the full timeline in ascending start order. Every
// archived interval starts before every live one (an interval whose end is at
// or below the horizon cannot start after one whose end is above it without
// overlapping), so the hot queries — freeAt, nextStart, insert — bind against
// the live window and consult the archive only when the query time precedes
// the whole window. Because sorted non-overlapping intervals are also sorted
// by end, binary search is valid on ends as well as starts in both halves.
//
// oldBusy summarises the archive (len(old) intervals, oldBusy busy seconds)
// so utilization accounting over a range covering the archive is O(1); the
// archived intervals themselves are kept so every query — a busyTime slice, a
// fault Block straddling the horizon, a rollback remove — stays exact.
type timeline struct {
	iv      []interval // live window: intervals ending after the horizon
	old     []interval // archive: retired intervals, ascending start
	oldBusy float64    // total busy seconds archived in old
}

// searchAfter returns the index of the first live interval with start > t.
func (tl *timeline) searchAfter(t float64) int {
	return sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].start > t })
}

// searchOldAfter returns the index of the first archived interval with
// start > t.
func (tl *timeline) searchOldAfter(t float64) int {
	return sort.Search(len(tl.old), func(i int) bool { return tl.old[i].start > t })
}

// freeAt reports whether the port is free at time t, i.e. no interval
// contains t.
func (tl *timeline) freeAt(t float64) bool {
	i := tl.searchAfter(t)
	if i > 0 {
		// The candidate containing interval is the one before index i; any
		// archived interval ends at or before this one's start.
		return tl.iv[i-1].end <= t+timeEps
	}
	// t precedes the live window: the candidate is in the archive.
	if k := tl.searchOldAfter(t); k > 0 {
		return tl.old[k-1].end <= t+timeEps
	}
	return true
}

// nextStart returns the start of the earliest interval beginning after t, or
// +Inf when the port has no later commitment.
func (tl *timeline) nextStart(t float64) float64 {
	// Archived intervals all start before live ones, so if any archived start
	// lies after t it is the answer.
	if n := len(tl.old); n > 0 && tl.old[n-1].start > t {
		return tl.old[tl.searchOldAfter(t)].start
	}
	i := tl.searchAfter(t)
	if i == len(tl.iv) {
		return math.Inf(1)
	}
	return tl.iv[i].start
}

// insert adds the interval [start, end) and reports whether it was free of
// overlap. Insertion keeps both halves sorted: an interval sorting before an
// archived one is spliced into the archive so the old-before-live start order
// is preserved.
func (tl *timeline) insert(start, end float64, peer int) bool {
	if no := len(tl.old); no > 0 && tl.old[no-1].start > start {
		k := tl.searchOldAfter(start)
		if k > 0 && tl.old[k-1].end > start+timeEps {
			return false
		}
		// The successor old[k] exists (old[no-1].start > start) and already
		// precedes every live interval, so clearing it clears the window too.
		if tl.old[k].start < end-timeEps {
			return false
		}
		tl.old = append(tl.old, interval{})
		copy(tl.old[k+1:], tl.old[k:])
		tl.old[k] = interval{start: start, end: end, peer: peer}
		tl.oldBusy += end - start
		return true
	}
	i := tl.searchAfter(start)
	if i > 0 {
		if tl.iv[i-1].end > start+timeEps {
			return false
		}
	} else if no := len(tl.old); no > 0 && tl.old[no-1].end > start+timeEps {
		return false
	}
	if i < len(tl.iv) && tl.iv[i].start < end-timeEps {
		return false
	}
	tl.iv = append(tl.iv, interval{})
	copy(tl.iv[i+1:], tl.iv[i:])
	tl.iv[i] = interval{start: start, end: end, peer: peer}
	return true
}

// canInsert reports whether insert would accept [start, end), without
// mutating the timeline.
func (tl *timeline) canInsert(start, end float64) bool {
	if no := len(tl.old); no > 0 && tl.old[no-1].start > start {
		k := tl.searchOldAfter(start)
		if k > 0 && tl.old[k-1].end > start+timeEps {
			return false
		}
		return tl.old[k].start >= end-timeEps
	}
	i := tl.searchAfter(start)
	if i > 0 {
		if tl.iv[i-1].end > start+timeEps {
			return false
		}
	} else if no := len(tl.old); no > 0 && tl.old[no-1].end > start+timeEps {
		return false
	}
	return i == len(tl.iv) || tl.iv[i].start >= end-timeEps
}

// findStart locates the interval starting within timeEps of start, by binary
// search.
func findStart(ivs []interval, start float64) (int, bool) {
	i := sort.Search(len(ivs), func(k int) bool { return ivs[k].start > start+timeEps })
	if i > 0 && math.Abs(ivs[i-1].start-start) <= timeEps {
		return i - 1, true
	}
	return 0, false
}

// remove deletes the interval starting at start (within timeEps), if present.
// The live window is tried first — rollback of a just-inserted reservation is
// the hot case — then the archive.
func (tl *timeline) remove(start float64) {
	if i, ok := findStart(tl.iv, start); ok {
		tl.iv = append(tl.iv[:i], tl.iv[i+1:]...)
		return
	}
	if i, ok := findStart(tl.old, start); ok {
		tl.oldBusy -= tl.old[i].end - tl.old[i].start
		tl.old = append(tl.old[:i], tl.old[i+1:]...)
	}
}

// block fills the free gaps of [start, end) with busy intervals (peer -1),
// leaving existing intervals untouched. The walk runs over the archive then
// the live window — the merged ascending order — so windows straddling the
// compaction horizon compose exactly as on an uncompacted timeline.
func (tl *timeline) block(start, end float64) {
	if end <= start {
		return
	}
	cur := start
	var gaps []interval
	k := sort.Search(len(tl.old), func(i int) bool { return tl.old[i].end > start+timeEps })
	for ; k < len(tl.old) && tl.old[k].start < end-timeEps; k++ {
		if tl.old[k].start > cur+timeEps {
			gaps = append(gaps, interval{start: cur, end: math.Min(tl.old[k].start, end), peer: -1})
		}
		cur = math.Max(cur, tl.old[k].end)
	}
	k = sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].end > start+timeEps })
	for ; k < len(tl.iv) && tl.iv[k].start < end-timeEps; k++ {
		if tl.iv[k].start > cur+timeEps {
			gaps = append(gaps, interval{start: cur, end: math.Min(tl.iv[k].start, end), peer: -1})
		}
		cur = math.Max(cur, tl.iv[k].end)
	}
	if cur < end-timeEps {
		gaps = append(gaps, interval{start: cur, end: end, peer: -1})
	}
	for _, g := range gaps {
		tl.insert(g.start, g.end, g.peer)
	}
}

// endsAfter appends to dst the end times of all intervals ending after t.
// Sorted starts plus non-overlap make ends sorted too, so the suffix of each
// half is found by binary search.
func (tl *timeline) endsAfter(t float64, dst []float64) []float64 {
	k := sort.Search(len(tl.old), func(i int) bool { return tl.old[i].end > t+timeEps })
	for _, v := range tl.old[k:] {
		dst = append(dst, v.end)
	}
	k = sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].end > t+timeEps })
	for _, v := range tl.iv[k:] {
		dst = append(dst, v.end)
	}
	return dst
}

// busy sums reserved time within [from, to), using the archive summary when
// the range covers the whole archive.
func (tl *timeline) busy(from, to float64) float64 {
	var sum float64
	if n := len(tl.old); n > 0 {
		if from <= tl.old[0].start && to >= tl.old[n-1].end {
			sum += tl.oldBusy
		} else {
			k := sort.Search(n, func(i int) bool { return tl.old[i].end > from })
			for ; k < n && tl.old[k].start < to; k++ {
				lo, hi := math.Max(tl.old[k].start, from), math.Min(tl.old[k].end, to)
				if hi > lo {
					sum += hi - lo
				}
			}
		}
	}
	k := sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].end > from })
	for ; k < len(tl.iv) && tl.iv[k].start < to; k++ {
		lo, hi := math.Max(tl.iv[k].start, from), math.Min(tl.iv[k].end, to)
		if hi > lo {
			sum += hi - lo
		}
	}
	return sum
}

// compact retires the live intervals ending at or before h into the archive.
func (tl *timeline) compact(h float64) {
	k := sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].end > h })
	if k == 0 {
		return
	}
	for _, v := range tl.iv[:k] {
		tl.oldBusy += v.end - v.start
	}
	tl.old = append(tl.old, tl.iv[:k]...)
	n := copy(tl.iv, tl.iv[k:])
	tl.iv = tl.iv[:n]
}

// grow reserves capacity for n more live intervals, so a scheduling pass that
// knows its demand can avoid repeated append growth.
func (tl *timeline) grow(n int) {
	tl.iv = slices.Grow(tl.iv, n)
}

// reset empties the timeline, keeping capacity for reuse.
func (tl *timeline) reset() {
	tl.iv = tl.iv[:0]
	tl.old = tl.old[:0]
	tl.oldBusy = 0
}

// Blackout describes recurring periods during which ports may not accept
// normal reservations — used by the starvation-avoidance fair windows of
// §4.2, which dedicate τ-long slices of every (T+τ) interval to a fixed
// round-robin assignment shared by all Coflows.
type Blackout interface {
	// Covers reports whether normal reservations are forbidden at time t.
	Covers(t float64) bool
	// NextStart returns the start of the first blackout beginning after t,
	// or +Inf.
	NextStart(t float64) float64
	// NextEnd returns the end of the first blackout ending after t, or +Inf.
	NextEnd(t float64) float64
}

// PRT is the Port Reservation Table of Algorithm 1: per-port timelines of
// circuit reservations for the input and output side of an N-port optical
// switch. The zero value is unusable; construct with NewPRT.
type PRT struct {
	n        int
	in, out  []timeline
	blackout Blackout
	count    int
	horizon  float64
	// bulk counts reservations appended by BulkAdd but not yet committed by
	// FinishBulk.
	bulk int
}

// NewPRT returns an empty PRT for an n-port switch.
func NewPRT(n int) *PRT {
	return &PRT{n: n, in: make([]timeline, n), out: make([]timeline, n), horizon: math.Inf(-1)}
}

// Ports returns the switch port count N.
func (p *PRT) Ports() int { return p.n }

// Len returns the number of reservations recorded.
func (p *PRT) Len() int { return p.count }

// SetBlackout installs recurring no-reservation windows (nil disables).
func (p *PRT) SetBlackout(b Blackout) { p.blackout = b }

// Reset empties the table for reuse, keeping the per-port capacity already
// grown — an online simulator replanning hundreds of times avoids
// reallocating every timeline each pass.
func (p *PRT) Reset() {
	for i := range p.in {
		p.in[i].reset()
		p.out[i].reset()
	}
	p.blackout = nil
	p.count = 0
	p.bulk = 0
	p.horizon = math.Inf(-1)
}

// CompactBefore retires, on every port timeline, the intervals ending at or
// before t into the per-port archive. The horizon only advances: calls with
// t at or below the current horizon are no-ops. Compaction never changes any
// query's answer — archived intervals still back freeAt, Block, busyTime and
// remove on the cold side — it only keeps the live windows the hot queries
// bind against small. InterCoflow drives it with the schedule cursor.
func (p *PRT) CompactBefore(t float64) {
	if t <= p.horizon || math.IsInf(t, 1) {
		return
	}
	p.horizon = t
	for i := range p.in {
		p.in[i].compact(t)
		p.out[i].compact(t)
	}
}

// Horizon returns the current compaction horizon, -Inf before any
// compaction.
func (p *PRT) Horizon() float64 { return p.horizon }

// Compacted reports the archive size: how many intervals have been retired
// across all port timelines and their total busy seconds.
func (p *PRT) Compacted() (intervals int, busySeconds float64) {
	for i := range p.in {
		intervals += len(p.in[i].old) + len(p.out[i].old)
		busySeconds += p.in[i].oldBusy + p.out[i].oldBusy
	}
	return intervals, busySeconds
}

// FreeAt reports whether both in.i and out.j are free at time t and t is not
// inside a blackout window.
func (p *PRT) FreeAt(i, j int, t float64) bool {
	if p.blackout != nil && p.blackout.Covers(t) {
		return false
	}
	return p.in[i].freeAt(t) && p.out[j].freeAt(t)
}

// NextCommitment returns tm, the earliest next reservation start on in.i or
// out.j after t — the bound that shortens reservations at the inter-Coflow
// level (Algorithm 1, line 16) — also accounting for the next blackout
// window.
func (p *PRT) NextCommitment(i, j int, t float64) float64 {
	tm := math.Min(p.in[i].nextStart(t), p.out[j].nextStart(t))
	if p.blackout != nil {
		tm = math.Min(tm, p.blackout.NextStart(t))
	}
	return tm
}

// ErrDoubleBooked reports a reservation overlapping an existing one on a
// port timeline.
var ErrDoubleBooked = errors.New("core: port double-booked")

// ErrEmptyReservation reports a reservation with a non-positive interval.
var ErrEmptyReservation = errors.New("core: empty reservation")

// TryReserve records the reservation on both port timelines, or returns a
// typed error (ErrEmptyReservation, ErrDoubleBooked) leaving the table
// unchanged. The fault repair path uses it to preload in-flight circuits
// into a degraded table where a conflict is an expected outcome, not a
// programming error.
func (p *PRT) TryReserve(r Reservation) error {
	if r.End <= r.Start {
		return fmt.Errorf("%w: %+v", ErrEmptyReservation, r)
	}
	if !p.in[r.In].insert(r.Start, r.End, r.Out) {
		return fmt.Errorf("%w: input port %d at [%.9f,%.9f)", ErrDoubleBooked, r.In, r.Start, r.End)
	}
	if !p.out[r.Out].insert(r.Start, r.End, r.In) {
		// Roll the input side back so a failed TryReserve is a no-op.
		p.in[r.In].remove(r.Start)
		return fmt.Errorf("%w: output port %d at [%.9f,%.9f)", ErrDoubleBooked, r.Out, r.Start, r.End)
	}
	p.count++
	return nil
}

// CanReserve reports whether TryReserve would accept the reservation, without
// mutating the table. The incremental replanner probes a cached schedule's
// placements against the current table before replaying them.
func (p *PRT) CanReserve(r Reservation) bool {
	if r.End <= r.Start {
		return false
	}
	return p.in[r.In].canInsert(r.Start, r.End) && p.out[r.Out].canInsert(r.Start, r.End)
}

// Reserve records the reservation on both port timelines. It panics if the
// interval overlaps an existing reservation on either port, which would mean
// the scheduler violated the port constraint — a programming error. Callers
// that can legitimately collide use TryReserve.
func (p *PRT) Reserve(r Reservation) {
	if err := p.TryReserve(r); err != nil {
		panic(err.Error())
	}
}

// Block marks [start, end) unusable on both sides of the port — a fault
// outage. End may be +Inf for a permanent failure. Portions of the window
// already covered by existing intervals are skipped, so blocking composes
// with reservations preloaded first (an established circuit spanning a
// future outage edge is truncated by the simulator at the edge, not here).
func (p *PRT) Block(port int, start, end float64) {
	p.in[port].block(start, end)
	p.out[port].block(start, end)
}

// Preload seeds the PRT with reservations that must not be preempted —
// circuits already established when an online reschedule happens.
func (p *PRT) Preload(rs []Reservation) {
	for _, r := range rs {
		p.Reserve(r)
	}
}

// BulkAdd appends reservations to the port timelines without searching for
// their sorted position — the fast path an incremental replan uses to re-seed
// a freshly Reset table with the locked set plus a clean prefix of cached
// schedules, known conflict-free from the previous pass. Between BulkAdd and
// FinishBulk the timeline invariants are suspended and every query is
// undefined; FinishBulk restores them. Only valid on a table with no archived
// intervals (any fresh Reset qualifies).
func (p *PRT) BulkAdd(rs []Reservation) {
	for i := range rs {
		r := &rs[i]
		p.in[r.In].iv = append(p.in[r.In].iv, interval{start: r.Start, end: r.End, peer: r.Out})
		p.out[r.Out].iv = append(p.out[r.Out].iv, interval{start: r.Start, end: r.End, peer: r.In})
	}
	p.bulk += len(rs)
}

// FinishBulk restores the timeline invariants after one or more BulkAdd
// calls: each touched timeline is re-sorted (skipped when the appends arrived
// already ordered) and verified non-overlapping under the same timeEps
// tolerance insert applies. On error (ErrEmptyReservation, ErrDoubleBooked,
// or a compacted timeline) the table state is unspecified and the caller must
// Reset before reusing it — the incremental replanner falls back to a full
// rebuild there.
func (p *PRT) FinishBulk() error {
	added := p.bulk
	p.bulk = 0
	for i := range p.in {
		if err := p.in[i].finishBulk("input", i); err != nil {
			return err
		}
		if err := p.out[i].finishBulk("output", i); err != nil {
			return err
		}
	}
	p.count += added
	return nil
}

// finishBulk re-establishes one timeline's sorted non-overlap invariant.
func (tl *timeline) finishBulk(side string, port int) error {
	if len(tl.old) != 0 {
		return fmt.Errorf("core: bulk load on compacted %s port %d timeline", side, port)
	}
	iv := tl.iv
	if !slices.IsSortedFunc(iv, func(a, b interval) int { return cmp.Compare(a.start, b.start) }) {
		slices.SortFunc(iv, func(a, b interval) int { return cmp.Compare(a.start, b.start) })
	}
	for k := range iv {
		if iv[k].end <= iv[k].start {
			return fmt.Errorf("%w: %s port %d at [%.9f,%.9f)", ErrEmptyReservation, side, port, iv[k].start, iv[k].end)
		}
		if k > 0 && iv[k-1].end > iv[k].start+timeEps {
			return fmt.Errorf("%w: %s port %d at [%.9f,%.9f)", ErrDoubleBooked, side, port, iv[k].start, iv[k].end)
		}
	}
	return nil
}

// PortSpan is one busy interval on a port timeline as reported by SpansOn —
// the unit of the incremental replanner's context snapshots. Spans compare
// exactly: two snapshots are interchangeable only when every float matches
// bit for bit.
type PortSpan struct {
	Start, End float64
	Port       int32
	// Out distinguishes the output-side timeline from the input side.
	Out bool
}

// SpansOn appends to dst the busy intervals visible to an intra search
// starting at t over the given input and output timelines: every interval
// ending strictly after t and starting before horizon, in (side, port,
// start) order. Callers pass the port lists sorted so the order is
// canonical.
func (p *PRT) SpansOn(t, horizon float64, ins, outs []int, dst []PortSpan) []PortSpan {
	for _, i := range ins {
		dst = p.in[i].spansOn(t, horizon, int32(i), false, dst)
	}
	for _, j := range outs {
		dst = p.out[j].spansOn(t, horizon, int32(j), true, dst)
	}
	return dst
}

// spansOn appends the timeline's intervals with end > t and start < horizon.
// The archive precedes the live window in start order, so the concatenated
// walk is sorted.
func (tl *timeline) spansOn(t, horizon float64, port int32, out bool, dst []PortSpan) []PortSpan {
	k := sort.Search(len(tl.old), func(i int) bool { return tl.old[i].end > t })
	for _, v := range tl.old[k:] {
		if v.start >= horizon {
			break
		}
		dst = append(dst, PortSpan{Start: v.start, End: v.end, Port: port, Out: out})
	}
	k = sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].end > t })
	for _, v := range tl.iv[k:] {
		if v.start >= horizon {
			break
		}
		dst = append(dst, PortSpan{Start: v.start, End: v.end, Port: port, Out: out})
	}
	return dst
}

// SpansMatch reports whether the table's visible context — what SpansOn(t,
// horizon, ins, outs) would return — is bit-identical to the cached snapshot
// trimmed to the same visibility threshold (spans whose end is at or before
// t expired out of both views symmetrically). It streams the comparison
// without materializing the current snapshot.
func (p *PRT) SpansMatch(spans []PortSpan, t, horizon float64, ins, outs []int) bool {
	for _, i := range ins {
		var ok bool
		if spans, ok = p.in[i].matchSpans(spans, t, horizon, int32(i), false); !ok {
			return false
		}
	}
	for _, j := range outs {
		var ok bool
		if spans, ok = p.out[j].matchSpans(spans, t, horizon, int32(j), true); !ok {
			return false
		}
	}
	// Any trailing unmatched cached spans mean occupancy vanished.
	for _, sp := range spans {
		if sp.End > t {
			return false
		}
	}
	return true
}

// matchSpans consumes the cached snapshot's prefix belonging to this
// timeline, comparing it against the current intervals. It returns the
// remaining snapshot and whether the prefix matched.
func (tl *timeline) matchSpans(spans []PortSpan, t, horizon float64, port int32, out bool) ([]PortSpan, bool) {
	next := func() (PortSpan, bool) {
		for len(spans) > 0 {
			sp := spans[0]
			if sp.Port != port || sp.Out != out {
				return PortSpan{}, false
			}
			spans = spans[1:]
			if sp.End > t {
				return sp, true
			}
		}
		return PortSpan{}, false
	}
	match := func(v interval) bool {
		sp, ok := next()
		return ok && sp.Start == v.start && sp.End == v.end
	}
	k := sort.Search(len(tl.old), func(i int) bool { return tl.old[i].end > t })
	for _, v := range tl.old[k:] {
		if v.start >= horizon {
			break
		}
		if !match(v) {
			return spans, false
		}
	}
	k = sort.Search(len(tl.iv), func(i int) bool { return tl.iv[i].end > t })
	for _, v := range tl.iv[k:] {
		if v.start >= horizon {
			break
		}
		if !match(v) {
			return spans, false
		}
	}
	// The snapshot must hold nothing more for this timeline.
	if sp, ok := next(); ok {
		_ = sp
		return spans, false
	}
	return spans, true
}

// ReleasesAfter appends to dst the end times, strictly after t, of existing
// reservations touching any of the given input and output ports. The intra
// scheduler advances through these instants (Algorithm 1, line 10).
func (p *PRT) ReleasesAfter(t float64, ins, outs []int, dst []float64) []float64 {
	for _, i := range ins {
		dst = p.in[i].endsAfter(t, dst)
	}
	for _, j := range outs {
		dst = p.out[j].endsAfter(t, dst)
	}
	return dst
}

// busyTime sums reserved time on input port i within [from, to) — used by
// tests and utilization accounting.
func (p *PRT) busyTime(i int, from, to float64) float64 {
	return p.in[i].busy(from, to)
}
