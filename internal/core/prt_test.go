package core

import (
	"math"
	"testing"
)

func TestTimelineInsertAndQueries(t *testing.T) {
	var tl timeline
	if !tl.insert(1, 2, 0) || !tl.insert(3, 4, 0) || !tl.insert(2, 3, 0) {
		t.Fatal("non-overlapping inserts rejected")
	}
	if tl.insert(3.5, 5, 0) {
		t.Fatal("overlapping insert accepted")
	}
	if tl.insert(0.5, 1.5, 0) {
		t.Fatal("overlapping insert accepted")
	}
	if !tl.freeAt(0.5) || tl.freeAt(1.5) || tl.freeAt(3) {
		t.Fatal("freeAt wrong")
	}
	// End of an interval is free (half-open).
	if !tl.freeAt(4) {
		t.Fatal("freeAt(end) should be free")
	}
	if got := tl.nextStart(0); got != 1 {
		t.Fatalf("nextStart(0) = %v", got)
	}
	if got := tl.nextStart(1); got != 2 {
		t.Fatalf("nextStart(1) = %v", got)
	}
	if got := tl.nextStart(4); !math.IsInf(got, 1) {
		t.Fatalf("nextStart(4) = %v", got)
	}
	ends := tl.endsAfter(2.5, nil)
	if len(ends) != 2 || ends[0] != 3 || ends[1] != 4 {
		t.Fatalf("endsAfter = %v", ends)
	}
}

func TestPRTReserveAndPortConstraint(t *testing.T) {
	p := NewPRT(3)
	r := Reservation{CoflowID: 1, In: 0, Out: 1, Start: 0, End: 1, Setup: 0.1, Bytes: 100}
	p.Reserve(r)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.FreeAt(0, 2, 0.5) {
		t.Fatal("input port 0 should be busy")
	}
	if p.FreeAt(2, 1, 0.5) {
		t.Fatal("output port 1 should be busy")
	}
	if !p.FreeAt(2, 2, 0.5) {
		t.Fatal("unrelated ports should be free")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double-booking must panic")
		}
	}()
	p.Reserve(Reservation{CoflowID: 2, In: 0, Out: 2, Start: 0.5, End: 0.7})
}

func TestPRTNextCommitment(t *testing.T) {
	p := NewPRT(2)
	p.Reserve(Reservation{In: 0, Out: 0, Start: 5, End: 6})
	p.Reserve(Reservation{In: 1, Out: 1, Start: 3, End: 4})
	// tm is the earliest next reservation on either port: in.0 commits at 5,
	// out.1 at 3.
	if got := p.NextCommitment(0, 1, 0); got != 3 {
		t.Fatalf("NextCommitment(0,1) = %v, want 3", got)
	}
	if got := p.NextCommitment(0, 0, 0); got != 5 {
		t.Fatalf("NextCommitment(0,0) = %v, want 5", got)
	}
	if got := p.NextCommitment(1, 0, 0); got != 3 {
		t.Fatalf("NextCommitment(1,0) = %v, want 3", got)
	}
	if got := p.NextCommitment(0, 1, 6); !math.IsInf(got, 1) {
		t.Fatalf("NextCommitment past all = %v", got)
	}
}

func TestReservationTransmittedBy(t *testing.T) {
	const bps = 1e9
	r := Reservation{Start: 1, End: 1 + 0.01 + 0.008, Setup: 0.01, Bytes: 1e6}
	if got := r.TransmittedBy(1.005, bps); got != 0 {
		t.Fatalf("during setup: %v", got)
	}
	if got := r.TransmittedBy(1.014, bps); math.Abs(got-0.5e6) > 1 {
		t.Fatalf("halfway: %v", got)
	}
	if got := r.TransmittedBy(10, bps); got != 1e6 {
		t.Fatalf("after end: %v", got)
	}
}

func TestPRTReleasesAfter(t *testing.T) {
	p := NewPRT(3)
	p.Reserve(Reservation{In: 0, Out: 1, Start: 0, End: 2})
	p.Reserve(Reservation{In: 1, Out: 2, Start: 1, End: 3})
	got := p.ReleasesAfter(0.5, []int{0, 1}, []int{1, 2}, nil)
	// in.0 end 2, in.1 end 3, out.1 end 2, out.2 end 3 — duplicates fine.
	if len(got) != 4 {
		t.Fatalf("ReleasesAfter = %v", got)
	}
}

func TestPRTBusyTime(t *testing.T) {
	p := NewPRT(2)
	p.Reserve(Reservation{In: 0, Out: 1, Start: 1, End: 3})
	if got := p.busyTime(0, 0, 10); got != 2 {
		t.Fatalf("busyTime = %v", got)
	}
	if got := p.busyTime(0, 2, 10); got != 1 {
		t.Fatalf("busyTime clipped = %v", got)
	}
	if got := p.busyTime(1, 0, 10); got != 0 {
		t.Fatalf("busyTime idle port = %v", got)
	}
}
