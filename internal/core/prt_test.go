package core

import (
	"math"
	"testing"
)

func TestTimelineInsertAndQueries(t *testing.T) {
	var tl timeline
	if !tl.insert(1, 2, 0) || !tl.insert(3, 4, 0) || !tl.insert(2, 3, 0) {
		t.Fatal("non-overlapping inserts rejected")
	}
	if tl.insert(3.5, 5, 0) {
		t.Fatal("overlapping insert accepted")
	}
	if tl.insert(0.5, 1.5, 0) {
		t.Fatal("overlapping insert accepted")
	}
	if !tl.freeAt(0.5) || tl.freeAt(1.5) || tl.freeAt(3) {
		t.Fatal("freeAt wrong")
	}
	// End of an interval is free (half-open).
	if !tl.freeAt(4) {
		t.Fatal("freeAt(end) should be free")
	}
	if got := tl.nextStart(0); got != 1 {
		t.Fatalf("nextStart(0) = %v", got)
	}
	if got := tl.nextStart(1); got != 2 {
		t.Fatalf("nextStart(1) = %v", got)
	}
	if got := tl.nextStart(4); !math.IsInf(got, 1) {
		t.Fatalf("nextStart(4) = %v", got)
	}
	ends := tl.endsAfter(2.5, nil)
	if len(ends) != 2 || ends[0] != 3 || ends[1] != 4 {
		t.Fatalf("endsAfter = %v", ends)
	}
}

func TestPRTReserveAndPortConstraint(t *testing.T) {
	p := NewPRT(3)
	r := Reservation{CoflowID: 1, In: 0, Out: 1, Start: 0, End: 1, Setup: 0.1, Bytes: 100}
	p.Reserve(r)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.FreeAt(0, 2, 0.5) {
		t.Fatal("input port 0 should be busy")
	}
	if p.FreeAt(2, 1, 0.5) {
		t.Fatal("output port 1 should be busy")
	}
	if !p.FreeAt(2, 2, 0.5) {
		t.Fatal("unrelated ports should be free")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double-booking must panic")
		}
	}()
	p.Reserve(Reservation{CoflowID: 2, In: 0, Out: 2, Start: 0.5, End: 0.7})
}

func TestPRTNextCommitment(t *testing.T) {
	p := NewPRT(2)
	p.Reserve(Reservation{In: 0, Out: 0, Start: 5, End: 6})
	p.Reserve(Reservation{In: 1, Out: 1, Start: 3, End: 4})
	// tm is the earliest next reservation on either port: in.0 commits at 5,
	// out.1 at 3.
	if got := p.NextCommitment(0, 1, 0); got != 3 {
		t.Fatalf("NextCommitment(0,1) = %v, want 3", got)
	}
	if got := p.NextCommitment(0, 0, 0); got != 5 {
		t.Fatalf("NextCommitment(0,0) = %v, want 5", got)
	}
	if got := p.NextCommitment(1, 0, 0); got != 3 {
		t.Fatalf("NextCommitment(1,0) = %v, want 3", got)
	}
	if got := p.NextCommitment(0, 1, 6); !math.IsInf(got, 1) {
		t.Fatalf("NextCommitment past all = %v", got)
	}
}

func TestReservationTransmittedBy(t *testing.T) {
	const bps = 1e9
	r := Reservation{Start: 1, End: 1 + 0.01 + 0.008, Setup: 0.01, Bytes: 1e6}
	if got := r.TransmittedBy(1.005, bps); got != 0 {
		t.Fatalf("during setup: %v", got)
	}
	if got := r.TransmittedBy(1.014, bps); math.Abs(got-0.5e6) > 1 {
		t.Fatalf("halfway: %v", got)
	}
	if got := r.TransmittedBy(10, bps); got != 1e6 {
		t.Fatalf("after end: %v", got)
	}
}

func TestPRTReleasesAfter(t *testing.T) {
	p := NewPRT(3)
	p.Reserve(Reservation{In: 0, Out: 1, Start: 0, End: 2})
	p.Reserve(Reservation{In: 1, Out: 2, Start: 1, End: 3})
	got := p.ReleasesAfter(0.5, []int{0, 1}, []int{1, 2}, nil)
	// in.0 end 2, in.1 end 3, out.1 end 2, out.2 end 3 — duplicates fine.
	if len(got) != 4 {
		t.Fatalf("ReleasesAfter = %v", got)
	}
}

// TestPRTBlockStraddlesHorizon: a fault outage window that straddles the
// compaction horizon must compose with archived reservations exactly as it
// would on an uncompacted table — same gap fills, same truncation against
// preloaded circuits, same answers afterwards.
func TestPRTBlockStraddlesHorizon(t *testing.T) {
	build := func() *PRT {
		p := NewPRT(2)
		p.Preload([]Reservation{
			{CoflowID: 1, In: 0, Out: 1, Start: 0.5, End: 1.0, Setup: 0.01},
			{CoflowID: 2, In: 0, Out: 1, Start: 1.5, End: 2.0, Setup: 0.01},
			{CoflowID: 3, In: 0, Out: 1, Start: 3.0, End: 3.5, Setup: 0.01},
		})
		return p
	}
	compacted, plain := build(), build()
	compacted.CompactBefore(2.25)
	if n, busy := compacted.Compacted(); n != 4 || math.Abs(busy-2.0) > 1e-12 {
		t.Fatalf("Compacted() = %d, %v; want 4 intervals, 2.0s", n, busy)
	}

	// The outage [0.75, 3.25) begins inside an archived reservation, spans the
	// horizon at 2.25, and ends inside a live one.
	for _, p := range []*PRT{compacted, plain} {
		p.Block(0, 0.75, 3.25)
		p.Block(1, 0.75, 3.25)
	}
	if !samePRT(compacted, plain) {
		t.Fatalf("block across horizon diverges:\ncompacted in0: %+v %+v\nplain in0: %+v",
			compacted.in[0].old, compacted.in[0].iv, plain.in[0].iv)
	}
	for _, tt := range []float64{0, 0.6, 1.2, 2.24, 2.26, 3.2, 3.6} {
		if a, b := compacted.FreeAt(0, 1, tt), plain.FreeAt(0, 1, tt); a != b {
			t.Fatalf("FreeAt(%v) diverges: compacted=%v plain=%v", tt, a, b)
		}
		if a, b := compacted.NextCommitment(0, 1, tt), plain.NextCommitment(0, 1, tt); a != b {
			t.Fatalf("NextCommitment(%v) diverges: %v vs %v", tt, a, b)
		}
		if a, b := compacted.busyTime(0, 0, tt+0.1), plain.busyTime(0, 0, tt+0.1); math.Abs(a-b) > 1e-12 {
			t.Fatalf("busyTime(0,0,%v) diverges: %v vs %v", tt+0.1, a, b)
		}
	}
	// The gap fills landed where an uncompacted walk would put them: the free
	// gaps [1.0,1.5) and [2.0,3.0) filled, reservations untouched, so the
	// whole [0.5,3.5) span is busy.
	wantBusy := plain.busyTime(0, 0, 4)
	if got := compacted.busyTime(0, 0, 4); math.Abs(got-wantBusy) > 1e-12 {
		t.Fatalf("total busy = %v, want %v", got, wantBusy)
	}
	if wantBusy != 3.0 {
		t.Fatalf("blocked table busy = %v, want 3.0 ([0.5,3.5) fully covered)", wantBusy)
	}
}

// TestPRTCompactionBookkeeping pins the horizon semantics: monotone advance,
// +Inf rejected, Reset rewinds, and TryReserve rollback still works when the
// insert landed in the archive.
func TestPRTCompactionBookkeeping(t *testing.T) {
	p := NewPRT(1)
	if !math.IsInf(p.Horizon(), -1) {
		t.Fatalf("fresh horizon = %v", p.Horizon())
	}
	p.Reserve(Reservation{In: 0, Out: 0, Start: 0, End: 1})
	p.Reserve(Reservation{In: 0, Out: 0, Start: 1.4, End: 1.5})
	p.Reserve(Reservation{In: 0, Out: 0, Start: 2, End: 3})
	p.CompactBefore(1.5)
	if p.Horizon() != 1.5 {
		t.Fatalf("horizon = %v", p.Horizon())
	}
	p.CompactBefore(1.0) // regression must be a no-op
	if p.Horizon() != 1.5 {
		t.Fatalf("horizon moved backwards: %v", p.Horizon())
	}
	p.CompactBefore(math.Inf(1)) // +Inf would retire the whole live window
	if p.Horizon() != 1.5 {
		t.Fatalf("+Inf advanced the horizon: %v", p.Horizon())
	}
	if n, busy := p.Compacted(); n != 4 || math.Abs(busy-2.2) > 1e-12 {
		t.Fatalf("Compacted() = %d, %v; want 4 intervals, 2.2s", n, busy)
	}

	// A rollback whose input-side insert landed in the archive — the insert
	// point precedes the last archived start — must remove it from the
	// archive, restoring oldBusy. Occupy the output side directly so the
	// second half of TryReserve fails.
	if !p.out[0].insert(1.05, 1.35, -1) {
		t.Fatal("scaffolding insert rejected")
	}
	wantN, wantBusy := p.Compacted()
	if err := p.TryReserve(Reservation{In: 0, Out: 0, Start: 1.1, End: 1.3}); err == nil {
		t.Fatal("reservation over an occupied output accepted")
	}
	if n, busy := p.Compacted(); n != wantN || busy != wantBusy {
		t.Fatalf("rollback leaked into archive: Compacted() = %d, %v; want %d, %v", n, busy, wantN, wantBusy)
	}
	if !p.in[0].freeAt(1.2) {
		t.Fatal("rolled-back input slot should be free")
	}

	p.Reset()
	if !math.IsInf(p.Horizon(), -1) || p.Len() != 0 {
		t.Fatalf("Reset left horizon=%v len=%d", p.Horizon(), p.Len())
	}
	if n, busy := p.Compacted(); n != 0 || busy != 0 {
		t.Fatalf("Reset left archive: %d, %v", n, busy)
	}
}

func TestPRTBusyTime(t *testing.T) {
	p := NewPRT(2)
	p.Reserve(Reservation{In: 0, Out: 1, Start: 1, End: 3})
	if got := p.busyTime(0, 0, 10); got != 2 {
		t.Fatalf("busyTime = %v", got)
	}
	if got := p.busyTime(0, 2, 10); got != 1 {
		t.Fatalf("busyTime clipped = %v", got)
	}
	if got := p.busyTime(1, 0, 10); got != 0 {
		t.Fatalf("busyTime idle port = %v", got)
	}
}
