package core

import (
	"math"
	"sort"

	"sunflow/internal/coflow"
)

// A Policy orders Coflows by scheduling priority: earlier Coflows in the
// returned slice are scheduled first by InterCoflow and therefore are never
// blocked by later ones. Sunflow leaves the policy to the operator (§4.2);
// this package ships the policies used in the paper's evaluation.
type Policy interface {
	// Sort returns the Coflows in priority order (most important first)
	// without modifying the input slice.
	Sort(cs []*coflow.Coflow) []*coflow.Coflow
	// Name identifies the policy in reports.
	Name() string
}

// ScratchSorter is implemented by policies that can sort into caller-owned
// scratch, avoiding the per-call output slice and key-map allocations of
// Sort. The online replanners type-assert for it on their per-event hot
// path; the ordering must be bit-identical to Sort's.
type ScratchSorter interface {
	// SortInto returns cs in priority order, reusing out (reset to length
	// zero) and key (cleared) as scratch. The returned slice aliases out's
	// backing array; the input is not modified.
	SortInto(cs, out []*coflow.Coflow, key map[int]float64) []*coflow.Coflow
}

// ShortestFirst orders Coflows by ascending packet-switched lower bound TpL
// — the shortest-Coflow-first policy of §4.2 and §5.4, breaking ties by
// arrival time then id for determinism.
type ShortestFirst struct {
	// LinkBps is the bandwidth TpL is computed against.
	LinkBps float64
}

// Sort implements Policy.
func (p ShortestFirst) Sort(cs []*coflow.Coflow) []*coflow.Coflow {
	return p.SortInto(cs, make([]*coflow.Coflow, 0, len(cs)), make(map[int]float64, len(cs)))
}

// SortInto implements ScratchSorter: identical ordering to Sort, with the
// output slice and the TpL key map supplied by the caller.
func (p ShortestFirst) SortInto(cs, out []*coflow.Coflow, key map[int]float64) []*coflow.Coflow {
	out = append(out[:0], cs...)
	clear(key)
	for _, c := range out {
		key[c.ID] = c.PacketLowerBound(p.LinkBps)
	}
	sort.SliceStable(out, func(a, b int) bool {
		ka, kb := key[out[a].ID], key[out[b].ID]
		if ka != kb {
			return ka < kb
		}
		if out[a].Arrival != out[b].Arrival {
			return out[a].Arrival < out[b].Arrival
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Name implements Policy.
func (ShortestFirst) Name() string { return "shortest-coflow-first" }

// FIFO orders Coflows by arrival time (first-come first-served).
type FIFO struct{}

// Sort implements Policy.
func (FIFO) Sort(cs []*coflow.Coflow) []*coflow.Coflow {
	out := append([]*coflow.Coflow(nil), cs...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Arrival != out[b].Arrival {
			return out[a].Arrival < out[b].Arrival
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// PriorityClasses orders Coflows by an operator-assigned class (lower class
// value = more important), breaking ties with a secondary policy. It models
// the privileged-versus-regular and multi-stage-job scenarios of §4.2.
type PriorityClasses struct {
	// Class maps Coflow id to its class; unmapped Coflows get class
	// DefaultClass.
	Class map[int]int
	// DefaultClass is the class of unmapped Coflows.
	DefaultClass int
	// Within breaks ties inside a class; nil means FIFO.
	Within Policy
}

// Sort implements Policy.
func (p PriorityClasses) Sort(cs []*coflow.Coflow) []*coflow.Coflow {
	within := p.Within
	if within == nil {
		within = FIFO{}
	}
	out := within.Sort(cs)
	class := func(c *coflow.Coflow) int {
		if cl, ok := p.Class[c.ID]; ok {
			return cl
		}
		return p.DefaultClass
	}
	sort.SliceStable(out, func(a, b int) bool { return class(out[a]) < class(out[b]) })
	return out
}

// Name implements Policy.
func (PriorityClasses) Name() string { return "priority-classes" }

// InterCoflow schedules multiple Coflows in the given priority order over a
// fresh (or pre-seeded) PRT, applying IntraCoflow to each in turn
// (Algorithm 1, InterCoflow). Because every Coflow's reservations are
// fitted around those of the Coflows before it, more prioritized Coflows
// complete without being blocked by less prioritized ones; lower-priority
// reservations are shortened where needed (Figure 2).
//
// Each Coflow's scheduling starts at max(opts.Start, its arrival time).
// Returned schedules parallel the input order.
//
// As the pass advances, the PRT is compacted up to the earliest scheduling
// start of the Coflows still to place (a suffix minimum): intervals the
// remaining passes can only ever see as "already ended" retire into the
// per-port archives, keeping the live windows the hot queries walk small on
// long workloads. Compaction is exact — see PRT.CompactBefore — so the
// schedules are unchanged by it.
func InterCoflow(prt *PRT, ordered []*coflow.Coflow, opts Options) ([]*Schedule, error) {
	sp := opts.Prof.Start("inter")
	defer sp.Finish()
	// starts[k] = min over c in ordered[k:] of that Coflow's scheduling start.
	starts := make([]float64, len(ordered)+1)
	starts[len(ordered)] = math.Inf(1)
	for k := len(ordered) - 1; k >= 0; k-- {
		starts[k] = math.Min(starts[k+1], math.Max(opts.Start, ordered[k].Arrival))
	}
	scheds := make([]*Schedule, 0, len(ordered))
	for k, c := range ordered {
		csp := opts.Prof.Start("prt.compact")
		prt.CompactBefore(starts[k])
		csp.Finish()
		co := opts
		co.Start = math.Max(opts.Start, c.Arrival)
		s, err := IntraCoflow(prt, c, co)
		if err != nil {
			return scheds, err
		}
		scheds = append(scheds, s)
	}
	return scheds, nil
}
