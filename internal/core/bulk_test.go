package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bulkLoad runs the two-phase bulk API over one reservation set.
func bulkLoad(p *PRT, rs []Reservation) error {
	p.BulkAdd(rs)
	return p.FinishBulk()
}

// randomDisjointPlan builds a conflict-free reservation set by scheduling a
// random Coflow-like demand through IntraCoflow — the same way the replanner
// produces the sets it bulk-loads.
func randomDisjointPlan(t *testing.T, rng *rand.Rand, ports int) []Reservation {
	t.Helper()
	prt := NewPRT(ports)
	var out []Reservation
	for c := 0; c < 3; c++ {
		cf := randomCoflow(rng, ports, 6)
		cf.ID = c
		s, err := IntraCoflow(prt, cf, Options{LinkBps: 1e9, Delta: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s.Reservations...)
	}
	return out
}

// TestQuickBulkLoadEquivalentToPreload: a table seeded through
// BulkAdd/FinishBulk must answer every query exactly like one seeded through
// Preload — same FreeAt, NextCommitment and Len — whether the input arrives
// sorted or shuffled.
func TestQuickBulkLoadEquivalentToPreload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ports := 3 + rng.Intn(4)
		rs := randomDisjointPlan(t, rng, ports)

		ref := NewPRT(ports)
		ref.Preload(rs)

		shuffled := append([]Reservation(nil), rs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		bulk := NewPRT(ports)
		if err := bulkLoad(bulk, shuffled); err != nil {
			t.Logf("seed %d: bulk load of a conflict-free plan failed: %v", seed, err)
			return false
		}

		if bulk.Len() != ref.Len() {
			return false
		}
		for probe := 0; probe < 50; probe++ {
			i, j := rng.Intn(ports), rng.Intn(ports)
			at := rng.Float64() * 2
			if bulk.FreeAt(i, j, at) != ref.FreeAt(i, j, at) {
				t.Logf("seed %d: FreeAt(%d,%d,%v) diverges", seed, i, j, at)
				return false
			}
			if bulk.NextCommitment(i, j, at) != ref.NextCommitment(i, j, at) {
				t.Logf("seed %d: NextCommitment(%d,%d,%v) diverges", seed, i, j, at)
				return false
			}
		}
		// The bulk-loaded table must accept exactly the follow-on schedule
		// the preloaded one accepts.
		cf := randomCoflow(rng, ports, 5)
		cf.ID = 99
		sb, errB := IntraCoflow(bulk, cf, Options{LinkBps: 1e9, Delta: 0.01})
		sr, errR := IntraCoflow(ref, cf, Options{LinkBps: 1e9, Delta: 0.01})
		if (errB == nil) != (errR == nil) {
			return false
		}
		if errB == nil && len(sb.Reservations) != len(sr.Reservations) {
			return false
		}
		if errB == nil {
			for k := range sb.Reservations {
				if sb.Reservations[k] != sr.Reservations[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkAddSplitAcrossCalls(t *testing.T) {
	rs := []Reservation{
		{CoflowID: 1, In: 0, Out: 1, Start: 0, End: 1, Setup: 0.01, Bytes: 1e6},
		{CoflowID: 2, In: 0, Out: 1, Start: 1, End: 2, Setup: 0.01, Bytes: 1e6},
		{CoflowID: 3, In: 1, Out: 0, Start: 0.5, End: 1.5, Setup: 0.01, Bytes: 1e6},
	}
	p := NewPRT(2)
	p.BulkAdd(rs[:1])
	p.BulkAdd(rs[1:])
	if err := p.FinishBulk(); err != nil {
		t.Fatalf("FinishBulk: %v", err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	if p.FreeAt(0, 1, 0.5) {
		t.Fatal("port pair reported free inside a bulk-loaded reservation")
	}
}

func TestFinishBulkRejectsOverlap(t *testing.T) {
	p := NewPRT(2)
	p.BulkAdd([]Reservation{
		{CoflowID: 1, In: 0, Out: 1, Start: 0, End: 1},
		{CoflowID: 2, In: 0, Out: 1, Start: 0.5, End: 1.5},
	})
	if err := p.FinishBulk(); !errors.Is(err, ErrDoubleBooked) {
		t.Fatalf("overlapping bulk load: got %v, want ErrDoubleBooked", err)
	}
}

func TestFinishBulkRejectsEmptyReservation(t *testing.T) {
	p := NewPRT(2)
	p.BulkAdd([]Reservation{{CoflowID: 1, In: 0, Out: 1, Start: 1, End: 1}})
	if err := p.FinishBulk(); !errors.Is(err, ErrEmptyReservation) {
		t.Fatalf("empty bulk reservation: got %v, want ErrEmptyReservation", err)
	}
}

func TestFinishBulkRejectsCompactedTimeline(t *testing.T) {
	p := NewPRT(2)
	p.Preload([]Reservation{{CoflowID: 1, In: 0, Out: 1, Start: 0, End: 1}})
	p.CompactBefore(2)
	if old, _ := p.Compacted(); old == 0 {
		t.Fatal("CompactBefore archived nothing; test premise broken")
	}
	p.BulkAdd([]Reservation{{CoflowID: 2, In: 0, Out: 1, Start: 3, End: 4}})
	if err := p.FinishBulk(); err == nil {
		t.Fatal("bulk load on a compacted timeline must error")
	}
	// Reset restores the table for normal use, as the fallback contract
	// requires.
	p.Reset()
	if err := bulkLoad(p, []Reservation{{CoflowID: 2, In: 0, Out: 1, Start: 3, End: 4}}); err != nil {
		t.Fatalf("bulk load after Reset: %v", err)
	}
	if p.Len() != 1 {
		t.Fatalf("Len after reset+bulk = %d, want 1", p.Len())
	}
}

func TestFinishBulkToleratesEpsAbutment(t *testing.T) {
	// Insert tolerates a timeEps overlap between adjacent reservations;
	// FinishBulk must apply the same tolerance or valid cached schedules
	// would spuriously fail to reload.
	p := NewPRT(2)
	if err := bulkLoad(p, []Reservation{
		{CoflowID: 1, In: 0, Out: 1, Start: 0, End: 1 + timeEps/2},
		{CoflowID: 2, In: 0, Out: 1, Start: 1, End: 2},
	}); err != nil {
		t.Fatalf("eps-abutting bulk load: %v", err)
	}
	if p.NextCommitment(0, 1, math.Inf(-1)) != 0 {
		t.Fatal("NextCommitment lost the first bulk interval")
	}
}
