package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
)

// This file is the differential harness for the event-driven fast path: every
// property drives the fast and the scan-based reference implementations over
// the same inputs and requires bit-identical results — reflect.DeepEqual on
// whole Schedule structs (reservation sequences, FlowFinish maps, Finish
// instants) and on the merged port timelines left behind. Determinism is
// load-bearing for the fault subsystem's reproducibility guarantees, so exact
// equality, not approximate equality, is the bar.

// quickCount is the iteration floor the acceptance criteria require for the
// seeded differential properties.
const quickCount = 200

// prtScenario deterministically prepares one PRT for the given seed:
// preloaded reservations, optional blackout windows, optional fault-style
// Block calls (including permanent +Inf outages), and optional compaction.
// Called twice per trial, it yields two independently built but identical
// tables.
func prtScenario(rng *rand.Rand, ports int) *PRT {
	prt := NewPRT(ports)
	blackout := rng.Intn(2) == 0
	if blackout {
		fw := FairWindows{N: ports, T: 0.5 + rng.Float64(), Tau: 0.01 + 0.05*rng.Float64()}
		prt.SetBlackout(fw)
	}
	// Preloads: short reservations scattered over the near future, placed
	// with TryReserve so colliding draws are simply skipped.
	for k, n := 0, rng.Intn(6); k < n; k++ {
		start := rng.Float64() * 2
		_ = prt.TryReserve(Reservation{
			CoflowID: -100 - k,
			In:       rng.Intn(ports),
			Out:      rng.Intn(ports),
			Start:    start,
			End:      start + 0.05 + rng.Float64()*0.5,
			Setup:    0.01,
		})
	}
	// Fault-style outage blocks, occasionally permanent. A permanent block
	// under a recurring blackout would make the scheduler loop forever on a
	// doomed demand (each window end is a finite "next event", so the stall
	// check never fires — in both implementations), so +Inf outages are only
	// drawn on blackout-free tables, where they surface as ErrStalled.
	for k, n := 0, rng.Intn(3); k < n; k++ {
		start := rng.Float64() * 2
		end := start + 0.1 + rng.Float64()
		if !blackout && rng.Intn(8) == 0 {
			end = math.Inf(1)
		}
		prt.Block(rng.Intn(ports), start, end)
	}
	return prt
}

func randomOptions(rng *rand.Rand) Options {
	opts := Options{
		LinkBps: gbps,
		Delta:   []float64{0, 0.001, 0.01}[rng.Intn(3)],
		Start:   rng.Float64() * 2,
		Order:   Order(rng.Intn(3)),
		Seed:    rng.Int63(),
	}
	if rng.Intn(4) == 0 {
		opts.Quantum = 0.001 + 0.01*rng.Float64()
	}
	return opts
}

// mergedIntervals flattens a timeline's archive and live window into one
// list, so equality checks see through compaction.
func mergedIntervals(tl *timeline) []interval {
	out := make([]interval, 0, len(tl.old)+len(tl.iv))
	out = append(out, tl.old...)
	out = append(out, tl.iv...)
	return out
}

// samePRT reports whether two tables hold identical reservations, bit for
// bit, regardless of how each has been compacted.
func samePRT(a, b *PRT) bool {
	if a.n != b.n || a.count != b.count {
		return false
	}
	for i := 0; i < a.n; i++ {
		if !reflect.DeepEqual(mergedIntervals(&a.in[i]), mergedIntervals(&b.in[i])) {
			return false
		}
		if !reflect.DeepEqual(mergedIntervals(&a.out[i]), mergedIntervals(&b.out[i])) {
			return false
		}
	}
	return true
}

// sameSchedule is bit-exact equality of schedules. reflect.DeepEqual covers
// the reservation slice, the FlowFinish map and every float field.
func sameSchedule(a, b *Schedule) bool { return reflect.DeepEqual(a, b) }

// TestQuickFastMatchesReferenceIntra is the core acceptance property: over
// random Coflows, preloads, blackouts and fault-degraded tables, the
// event-driven fast path and the scan-based reference produce bit-identical
// Schedules and leave bit-identical PRTs behind.
func TestQuickFastMatchesReferenceIntra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ports := 3 + rng.Intn(8)
		c := randomCoflow(rng, ports, 2*ports)
		opts := randomOptions(rng)

		build := rand.New(rand.NewSource(seed + 1))
		fastPRT := prtScenario(rand.New(rand.NewSource(build.Int63())), ports)
		build = rand.New(rand.NewSource(seed + 1))
		refPRT := prtScenario(rand.New(rand.NewSource(build.Int63())), ports)

		fast, fastErr := IntraCoflow(fastPRT, c, opts)
		refOpts := opts
		refOpts.Reference = true
		ref, refErr := IntraCoflow(refPRT, c, refOpts)

		if (fastErr == nil) != (refErr == nil) {
			t.Logf("seed %d: error divergence fast=%v ref=%v", seed, fastErr, refErr)
			return false
		}
		if fastErr != nil {
			return fastErr.Error() == refErr.Error()
		}
		if !sameSchedule(fast, ref) {
			t.Logf("seed %d: schedules diverge\nfast: %+v\nref:  %+v", seed, fast, ref)
			return false
		}
		if !samePRT(fastPRT, refPRT) {
			t.Logf("seed %d: PRTs diverge", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFastMatchesReferenceInter runs whole inter-Coflow passes — the
// shared-PRT regime where Coflows shorten each other's reservations and the
// horizon compaction kicks in — and requires every schedule in the pass to
// match bit for bit.
func TestQuickFastMatchesReferenceInter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ports := 4 + rng.Intn(6)
		var cs []*coflow.Coflow
		for k, n := 0, 2+rng.Intn(6); k < n; k++ {
			c := randomCoflow(rng, ports, ports)
			c.ID = k
			c.Arrival = rng.Float64() * 3
			cs = append(cs, c)
		}
		opts := randomOptions(rng)
		ordered := ShortestFirst{LinkBps: opts.LinkBps}.Sort(cs)

		fastPRT, refPRT := NewPRT(ports), NewPRT(ports)
		fast, fastErr := InterCoflow(fastPRT, ordered, opts)
		refOpts := opts
		refOpts.Reference = true
		ref, refErr := InterCoflow(refPRT, ordered, refOpts)

		if (fastErr == nil) != (refErr == nil) || len(fast) != len(ref) {
			return false
		}
		for i := range fast {
			if !sameSchedule(fast[i], ref[i]) {
				t.Logf("seed %d: schedule %d diverges", seed, i)
				return false
			}
		}
		return samePRT(fastPRT, refPRT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCompactionIsExact pins the tentpole invariant down directly:
// an InterCoflow pass over a compacting PRT equals, bit for bit, the
// pre-compaction semantics — an uncompacted PRT driven Coflow by Coflow —
// and utilization accounting over any slice is unchanged.
func TestQuickCompactionIsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ports := 4 + rng.Intn(6)
		var cs []*coflow.Coflow
		for k, n := 0, 3+rng.Intn(6); k < n; k++ {
			c := randomCoflow(rng, ports, ports)
			c.ID = k
			c.Arrival = rng.Float64() * 5
			cs = append(cs, c)
		}
		opts := randomOptions(rng)
		ordered := FIFO{}.Sort(cs)

		compacted := NewPRT(ports)
		got, err1 := InterCoflow(compacted, ordered, opts)

		plain := NewPRT(ports)
		var want []*Schedule
		var err2 error
		for _, c := range ordered {
			co := opts
			co.Start = math.Max(opts.Start, c.Arrival)
			var s *Schedule
			if s, err2 = IntraCoflow(plain, c, co); err2 != nil {
				break
			}
			want = append(want, s)
		}

		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !sameSchedule(got[i], want[i]) {
				return false
			}
		}
		if !samePRT(compacted, plain) {
			return false
		}
		// busyTime over random slices must agree despite the archives.
		for k := 0; k < 10; k++ {
			i := rng.Intn(ports)
			from := rng.Float64() * 10
			to := from + rng.Float64()*10
			if compacted.busyTime(i, from, to) != plain.busyTime(i, from, to) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemoveTolerance: satellite guarantee for timeline.remove — a
// TryReserve rollback must remove the input-side interval it just inserted
// even when the caller's start differs by float residue, and must never
// remove a neighbour further than timeEps away.
func TestQuickRemoveTolerance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl timeline
		starts := make([]float64, 0, 8)
		for k := 0; k < 8; k++ {
			s := float64(k) + rng.Float64()*0.5
			if tl.insert(s, s+0.2, 0) {
				starts = append(starts, s)
			}
		}
		// Sometimes compact a prefix into the archive, so removal is
		// exercised on both halves.
		if rng.Intn(2) == 0 {
			tl.compact(float64(rng.Intn(9)))
		}
		pick := starts[rng.Intn(len(starts))]
		// Perturb within eps: removal must still find the interval.
		tl.remove(pick + (rng.Float64()*2-1)*0.9e-9)
		if got := len(tl.iv) + len(tl.old); got != len(starts)-1 {
			t.Logf("seed %d: remove missed, %d intervals left of %d", seed, got, len(starts))
			return false
		}
		for _, iv := range mergedIntervals(&tl) {
			if math.Abs(iv.start-pick) <= timeEps {
				return false // removed the wrong one
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}
