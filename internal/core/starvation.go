package core

import (
	"fmt"
	"math"
	"sort"
)

// FairWindows implements the starvation-avoidance design of §4.2: time is
// divided into recurring intervals of length T+τ. The first T seconds of
// each interval belong to normal (priority-ordered) Sunflow scheduling; the
// trailing τ seconds run one fixed assignment A_k from a round-robin list
// Φ = {A_1,…,A_N} whose union covers all N² circuits, so every Coflow
// receives non-zero service within every N·(T+τ) period regardless of
// priority.
//
// FairWindows implements Blackout: installed on a PRT it prevents normal
// reservations from intruding into the τ windows.
type FairWindows struct {
	// N is the switch port count; it is also the number of assignments in Φ.
	N int
	// T is the length of the normal scheduling interval; must satisfy T ≫ τ.
	T float64
	// Tau is the fair-window length τ; must exceed the reconfiguration
	// delay δ so a window can carry data.
	Tau float64
	// Offset shifts the phase of the first window (the first fair window is
	// [Offset+T, Offset+T+Tau)). Usually zero.
	Offset float64
}

// Validate reports an error for parameters violating T ≫ τ > δ (checked as
// T > τ > delta).
func (fw FairWindows) Validate(delta float64) error {
	if fw.N <= 0 {
		return fmt.Errorf("core: fair windows need a positive port count, got %d", fw.N)
	}
	if !(fw.Tau > delta) {
		return fmt.Errorf("core: fair window τ=%v must exceed δ=%v", fw.Tau, delta)
	}
	if !(fw.T > fw.Tau) {
		return fmt.Errorf("core: fair windows require T=%v > τ=%v", fw.T, fw.Tau)
	}
	return nil
}

// period returns T+τ.
func (fw FairWindows) period() float64 { return fw.T + fw.Tau }

// indexAt returns the index k of the (T+τ)-interval containing t.
func (fw FairWindows) indexAt(t float64) int {
	return int(math.Floor((t - fw.Offset) / fw.period()))
}

// Covers reports whether t lies inside a fair (τ) window.
func (fw FairWindows) Covers(t float64) bool {
	k := fw.indexAt(t)
	ws := fw.Offset + float64(k)*fw.period() + fw.T
	return t >= ws-timeEps && t < ws+fw.Tau-timeEps
}

// NextStart returns the start of the first fair window beginning after t.
func (fw FairWindows) NextStart(t float64) float64 {
	k := fw.indexAt(t)
	ws := fw.Offset + float64(k)*fw.period() + fw.T
	if ws > t+timeEps {
		return ws
	}
	return ws + fw.period()
}

// NextEnd returns the end of the first fair window ending after t.
func (fw FairWindows) NextEnd(t float64) float64 {
	k := fw.indexAt(t)
	we := fw.Offset + float64(k)*fw.period() + fw.T + fw.Tau
	if we > t+timeEps {
		return we
	}
	return we + fw.period()
}

// Window is one concrete fair window with its fixed assignment.
type Window struct {
	// Index is the window's sequence number k (0-based).
	Index int
	// Start and End delimit the τ interval.
	Start, End float64
	// Assign is the fixed assignment A_(k mod N): input port i connects to
	// output port Assign[i].
	Assign []int
}

// Assignment returns A_k of the round-robin list Φ: input port i is
// connected to output port (i+k) mod N, so Φ's N assignments cover all N²
// circuits.
func (fw FairWindows) Assignment(k int) []int {
	a := make([]int, fw.N)
	shift := ((k % fw.N) + fw.N) % fw.N
	for i := range a {
		a[i] = (i + shift) % fw.N
	}
	return a
}

// WindowsIn returns the fair windows overlapping [from, to), in order.
func (fw FairWindows) WindowsIn(from, to float64) []Window {
	var out []Window
	k := fw.indexAt(from)
	if k < 0 {
		k = 0
	}
	for {
		ws := fw.Offset + float64(k)*fw.period() + fw.T
		we := ws + fw.Tau
		if ws >= to {
			return out
		}
		if we > from {
			out = append(out, Window{Index: k, Start: ws, End: we, Assign: fw.Assignment(k)})
		}
		k++
	}
}

// ShareCircuit computes the bytes served to each of the remaining demands
// when they share one circuit for the given transmit duration at linkBps
// with equal instantaneous rates (§4.2: "subflows from all Coflows share the
// link bandwidth B on the circuit"). The returned slice parallels remaining.
func ShareCircuit(remaining []float64, seconds, linkBps float64) []float64 {
	out := make([]float64, len(remaining))
	if seconds <= 0 || len(remaining) == 0 {
		return out
	}
	capBytes := seconds * linkBps / 8

	// Water-fill: with equal rates, flows finish in ascending order of
	// remaining demand; every active flow has received the same amount when
	// one finishes.
	idx := make([]int, len(remaining))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return remaining[idx[a]] < remaining[idx[b]] })

	level := 0.0
	for pos, id := range idx {
		active := float64(len(idx) - pos)
		r := remaining[id]
		phase := (r - level) * active
		if phase <= capBytes {
			capBytes -= phase
			level = r
			out[id] = r
			continue
		}
		level += capBytes / active
		for _, rest := range idx[pos:] {
			out[rest] = level
		}
		break
	}
	return out
}
