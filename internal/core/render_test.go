package core

import (
	"strings"
	"testing"

	"sunflow/internal/coflow"
)

func renderSchedule(t *testing.T) *Schedule {
	t.Helper()
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 1, Bytes: 4e6},
		{Src: 0, Dst: 2, Bytes: 2e6},
		{Src: 1, Dst: 2, Bytes: 2e6},
	})
	return mustIntra(t, c, 3, testOpts)
}

func TestPortProgram(t *testing.T) {
	s := renderSchedule(t)
	prog := PortProgram(0, s)
	if len(prog) != 2 {
		t.Fatalf("in.0 program has %d events, want 2", len(prog))
	}
	// Events are time ordered and carry setup/transmit/release structure.
	for i, e := range prog {
		if e.TransmitAt <= e.SetupAt || e.ReleaseAt <= e.TransmitAt {
			t.Fatalf("event %d has inverted times: %+v", i, e)
		}
		if e.CoflowID != 1 {
			t.Fatalf("event %d coflow = %d", i, e.CoflowID)
		}
		if i > 0 && prog[i].SetupAt < prog[i-1].ReleaseAt-1e-9 {
			t.Fatalf("events overlap: %+v then %+v", prog[i-1], prog[i])
		}
	}
	if got := PortProgram(2, s); len(got) != 0 {
		t.Fatalf("in.2 should have no circuits, got %v", got)
	}
}

func TestGantt(t *testing.T) {
	s := renderSchedule(t)
	g := Gantt(60, s)
	if g == "" {
		t.Fatal("empty gantt")
	}
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// Header plus two used input ports.
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[0], "setup") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(g, "#") {
		t.Fatal("no setup cells rendered")
	}
	if !strings.Contains(g, "1") || !strings.Contains(g, "2") {
		t.Fatal("output-port digits missing")
	}
	// Unused rows are dropped.
	if strings.Contains(g, "in.2") {
		t.Fatal("idle port rendered")
	}
}

func TestGanttDegenerate(t *testing.T) {
	if Gantt(0) != "" {
		t.Fatal("no schedules should render empty")
	}
	empty := &Schedule{}
	if Gantt(40, empty) != "" {
		t.Fatal("empty schedule should render empty")
	}
}

func TestQuantumRoundsDemandUp(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}}) // 8 ms
	opts := testOpts
	opts.Quantum = 0.005 // round to 10 ms
	s := mustIntra(t, c, 1, opts)
	// CCT = δ + ceil(8/5)·5 ms = 10 + 10 ms.
	if want := 0.02; s.Finish < want-1e-9 || s.Finish > want+1e-9 {
		t.Fatalf("quantized CCT = %v, want %v", s.Finish, want)
	}
	// Quantization can only lengthen the schedule.
	exact := mustIntra(t, c, 1, testOpts)
	if s.Finish < exact.Finish {
		t.Fatalf("quantized %v beat exact %v", s.Finish, exact.Finish)
	}
}

func TestQuantumValidation(t *testing.T) {
	opts := testOpts
	opts.Quantum = -1
	prt := NewPRT(1)
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1}})
	if _, err := IntraCoflow(prt, c, opts); err == nil {
		t.Fatal("negative quantum accepted")
	}
}

func TestQuantumKeepsLemma1OnQuantizedBound(t *testing.T) {
	// With rounded sizes the factor-2 guarantee holds against the bound of
	// the rounded Coflow.
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 3e6},
		{Src: 0, Dst: 1, Bytes: 5e6},
		{Src: 1, Dst: 1, Bytes: 7e6},
	})
	opts := testOpts
	opts.Quantum = 0.016
	s := mustIntra(t, c, 2, opts)
	rounded := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 4e6},
		{Src: 0, Dst: 1, Bytes: 6e6},
		{Src: 1, Dst: 1, Bytes: 8e6},
	})
	if s.Finish > 2*rounded.CircuitLowerBound(gbps, opts.Delta)+1e-9 {
		t.Fatalf("quantized schedule violates Lemma 1 on the rounded demand")
	}
}
