package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/obs"
)

// Order selects the order in which Algorithm 1 considers the flows of a
// Coflow when making reservations. Lemma 1 holds for any ordering; §5.3.1
// shows performance is insensitive to the choice.
type Order int

const (
	// OrderedPort considers flows sorted by (src, dst) port label — the
	// paper's default.
	OrderedPort Order = iota
	// RandomOrder shuffles the flows with the Options seed.
	RandomOrder
	// SortedDemand considers larger flows first.
	SortedDemand
)

// String names the ordering as in §5.3.1.
func (o Order) String() string {
	switch o {
	case OrderedPort:
		return "OrderedPort"
	case RandomOrder:
		return "Random"
	case SortedDemand:
		return "SortedDemand"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Options configures the Sunflow scheduler.
type Options struct {
	// LinkBps is the per-port link bandwidth B in bits per second.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// Start is the time scheduling begins (t0 in Figure 1c).
	Start float64
	// Order is the reservation ordering; see Order.
	Order Order
	// Seed drives RandomOrder shuffling.
	Seed int64
	// Quantum, when positive, rounds each flow's processing time up to a
	// multiple of this many seconds before scheduling — the approximation
	// §6 sketches to prune the circuit-release-event loop and cut scheduler
	// latency. Circuits are held for the rounded time, so CCT can only
	// grow; the ablation benchmarks quantify the trade.
	Quantum float64
	// Obs optionally records planning metrics (intra passes, reservations
	// made, reservations shortened by later commitments). Nil disables
	// instrumentation.
	Obs *obs.Observer
}

// Validate reports an error for non-physical parameters.
func (o Options) Validate() error {
	if o.LinkBps <= 0 {
		return fmt.Errorf("core: link bandwidth must be positive, got %v", o.LinkBps)
	}
	if o.Delta < 0 {
		return fmt.Errorf("core: reconfiguration delay must be non-negative, got %v", o.Delta)
	}
	if o.Quantum < 0 {
		return fmt.Errorf("core: quantum must be non-negative, got %v", o.Quantum)
	}
	return nil
}

// Schedule is the outcome of scheduling one Coflow: the circuit reservations
// made on its behalf and the resulting timing. Each reservation is one
// circuit establishment, so len(Reservations) is the switching count of
// Figure 5.
type Schedule struct {
	CoflowID int
	// Reservations lists the circuits reserved, in creation order.
	Reservations []Reservation
	// Start is the time scheduling began for this Coflow.
	Start float64
	// Finish is the time the last reservation releases its ports; the CCT
	// relative to Start is Finish-Start.
	Finish float64
	// FlowFinish maps each (src, dst) flow to the time its demand drains.
	FlowFinish map[[2]int]float64
}

// CCT returns the Coflow completion time measured from the given arrival.
func (s *Schedule) CCT(arrival float64) float64 { return s.Finish - arrival }

// SwitchingCount returns the number of circuit establishments scheduled.
func (s *Schedule) SwitchingCount() int { return len(s.Reservations) }

// ErrStalled is returned when the scheduler cannot advance — it indicates a
// PRT whose pre-loaded reservations or blackout windows permanently block a
// port pair with remaining demand.
var ErrStalled = errors.New("core: scheduler stalled with unfinished demand")

// demand is one pending flow with its remaining processing time.
type demand struct {
	i, j int
	p    float64
}

// releaseHeap is a min-heap of circuit release times.
type releaseHeap []float64

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(a, b int) bool  { return h[a] < h[b] }
func (h releaseHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// IntraCoflow runs the non-preemptive intra-Coflow scheduler of Algorithm 1
// for Coflow c over the shared Port Reservation Table prt, starting at
// opts.Start. Reservations already in the PRT are never preempted; the
// Coflow's circuits are fitted around them (this is how InterCoflow
// prioritizes earlier Coflows). The PRT is updated in place and the Coflow's
// schedule is returned.
//
// Each flow with processing time p(i,j) = d(i,j)·8/B desires one reservation
// of length δ+p; when a port pair has a later commitment closer than that,
// the reservation is shortened and the remainder of the flow is reserved
// again later — paying another δ, exactly as MakeReservation prescribes.
func IntraCoflow(prt *PRT, c *coflow.Coflow, opts Options) (*Schedule, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(prt.Ports()); err != nil {
		return nil, err
	}
	if o := opts.Obs; o != nil {
		passStart := time.Now()
		defer func() {
			o.IntraPasses.Inc()
			o.IntraSeconds.Add(time.Since(passStart).Seconds())
		}()
	}

	pending := make([]demand, 0, len(c.Flows))
	for _, f := range c.Flows {
		if f.Bytes <= 0 {
			continue
		}
		p := f.ProcTime(opts.LinkBps)
		if opts.Quantum > 0 {
			p = math.Ceil(p/opts.Quantum) * opts.Quantum
		}
		pending = append(pending, demand{i: f.Src, j: f.Dst, p: p})
	}
	orderDemands(pending, opts)

	sched := &Schedule{
		CoflowID:   c.ID,
		Start:      opts.Start,
		Finish:     opts.Start,
		FlowFinish: make(map[[2]int]float64, len(pending)),
	}
	if len(pending) == 0 {
		return sched, nil
	}

	// Seed the release-time heap with existing commitments on the ports this
	// Coflow touches, so the time cursor can advance past them.
	ins, outs := portSets(pending)
	releases := releaseHeap(prt.ReleasesAfter(opts.Start, ins, outs, nil))
	heap.Init(&releases)

	t := opts.Start
	for len(pending) > 0 {
		for idx := range pending {
			d := &pending[idx]
			if d.p <= timeEps || !prt.FreeAt(d.i, d.j, t) {
				continue
			}
			tm := prt.NextCommitment(d.i, d.j, t)
			lm := tm - t
			ld := opts.Delta + d.p
			// A slot shorter than δ (or exactly δ, which would carry no
			// data) is useless: leave the ports free for another Coflow.
			if lm <= opts.Delta+timeEps {
				continue
			}
			l := math.Min(lm, ld)
			r := Reservation{
				CoflowID: c.ID,
				In:       d.i,
				Out:      d.j,
				Start:    t,
				End:      t + l,
				Setup:    opts.Delta,
				Bytes:    (l - opts.Delta) * opts.LinkBps / 8,
			}
			prt.Reserve(r)
			sched.Reservations = append(sched.Reservations, r)
			if o := opts.Obs; o != nil {
				o.Reservations.Inc()
				if l < ld-timeEps {
					// The slot was cut short by a later commitment: the
					// flow's remainder will pay another δ.
					o.ResShortened.Inc()
				}
			}
			heap.Push(&releases, r.End)
			d.p -= l - opts.Delta // remaining demand: ld - l
			if d.p <= timeEps {
				d.p = 0
				sched.FlowFinish[[2]int{d.i, d.j}] = r.End
			}
			if r.End > sched.Finish {
				sched.Finish = r.End
			}
		}

		// Drop satisfied demands; residues at the arithmetic noise floor
		// count as satisfied, matching the skip threshold above, or they
		// would linger unschedulable forever.
		live := pending[:0]
		for _, d := range pending {
			if d.p > timeEps {
				live = append(live, d)
			}
		}
		pending = live
		if len(pending) == 0 {
			break
		}

		// Advance to the next circuit release time (Algorithm 1, line 10);
		// the end of a blackout window also frees ports.
		next := prt.nextBlackoutEnd(t)
		for releases.Len() > 0 {
			top := releases[0]
			if top <= t+timeEps {
				heap.Pop(&releases)
				continue
			}
			next = math.Min(next, top)
			break
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("%w: %d flows blocked at t=%.6f for %v", ErrStalled, len(pending), t, c)
		}
		t = next
	}
	return sched, nil
}

// nextBlackoutEnd returns the end of the first blackout window after t, or
// +Inf when no blackout is installed.
func (p *PRT) nextBlackoutEnd(t float64) float64 {
	if p.blackout == nil {
		return math.Inf(1)
	}
	return p.blackout.NextEnd(t)
}

// orderDemands arranges the pending demands per the configured ordering.
func orderDemands(pending []demand, opts Options) {
	switch opts.Order {
	case OrderedPort:
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].i != pending[b].i {
				return pending[a].i < pending[b].i
			}
			return pending[a].j < pending[b].j
		})
	case SortedDemand:
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].p != pending[b].p {
				return pending[a].p > pending[b].p
			}
			if pending[a].i != pending[b].i {
				return pending[a].i < pending[b].i
			}
			return pending[a].j < pending[b].j
		})
	case RandomOrder:
		// Sort first so shuffling is deterministic regardless of input order.
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].i != pending[b].i {
				return pending[a].i < pending[b].i
			}
			return pending[a].j < pending[b].j
		})
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(pending), func(a, b int) {
			pending[a], pending[b] = pending[b], pending[a]
		})
	}
}

// portSets returns the distinct input and output ports of the demands.
func portSets(pending []demand) (ins, outs []int) {
	inSet := make(map[int]bool)
	outSet := make(map[int]bool)
	for _, d := range pending {
		inSet[d.i] = true
		outSet[d.j] = true
	}
	for i := range inSet {
		ins = append(ins, i)
	}
	for j := range outSet {
		outs = append(outs, j)
	}
	sort.Ints(ins)
	sort.Ints(outs)
	return ins, outs
}
