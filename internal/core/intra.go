package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// Order selects the order in which Algorithm 1 considers the flows of a
// Coflow when making reservations. Lemma 1 holds for any ordering; §5.3.1
// shows performance is insensitive to the choice.
type Order int

const (
	// OrderedPort considers flows sorted by (src, dst) port label — the
	// paper's default.
	OrderedPort Order = iota
	// RandomOrder shuffles the flows with the Options seed.
	RandomOrder
	// SortedDemand considers larger flows first.
	SortedDemand
)

// String names the ordering as in §5.3.1.
func (o Order) String() string {
	switch o {
	case OrderedPort:
		return "OrderedPort"
	case RandomOrder:
		return "Random"
	case SortedDemand:
		return "SortedDemand"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Options configures the Sunflow scheduler.
type Options struct {
	// LinkBps is the per-port link bandwidth B in bits per second.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// Start is the time scheduling begins (t0 in Figure 1c).
	Start float64
	// Order is the reservation ordering; see Order.
	Order Order
	// Seed drives RandomOrder shuffling.
	Seed int64
	// Quantum, when positive, rounds each flow's processing time up to a
	// multiple of this many seconds before scheduling — the approximation
	// §6 sketches to prune the circuit-release-event loop and cut scheduler
	// latency. Circuits are held for the rounded time, so CCT can only
	// grow; the ablation benchmarks quantify the trade.
	Quantum float64
	// Reference selects the straightforward scan-based scheduler loop over
	// the event-driven fast path. Both produce bit-identical schedules —
	// the differential property tests enforce it — so Reference exists as
	// the oracle for those tests and as a debugging aid, not as a
	// semantically different mode. See DESIGN.md, "Scheduler complexity &
	// performance".
	Reference bool
	// Obs optionally records planning metrics (intra passes, reservations
	// made, reservations shortened by later commitments). Nil disables
	// instrumentation.
	Obs *obs.Observer
	// Prof optionally records profiling spans ("inter", "intra",
	// "prt.compact") on the calling goroutine's span stack. Nil disables
	// profiling at the cost of one nil-check.
	Prof *span.Stack
}

// Validate reports an error for non-physical parameters.
func (o Options) Validate() error {
	if o.LinkBps <= 0 {
		return fmt.Errorf("core: link bandwidth must be positive, got %v", o.LinkBps)
	}
	if o.Delta < 0 {
		return fmt.Errorf("core: reconfiguration delay must be non-negative, got %v", o.Delta)
	}
	if o.Quantum < 0 {
		return fmt.Errorf("core: quantum must be non-negative, got %v", o.Quantum)
	}
	return nil
}

// Schedule is the outcome of scheduling one Coflow: the circuit reservations
// made on its behalf and the resulting timing. Each reservation is one
// circuit establishment, so len(Reservations) is the switching count of
// Figure 5.
type Schedule struct {
	CoflowID int
	// Reservations lists the circuits reserved, in creation order.
	Reservations []Reservation
	// Start is the time scheduling began for this Coflow.
	Start float64
	// Finish is the time the last reservation releases its ports; the CCT
	// relative to Start is Finish-Start.
	Finish float64
	// FlowFinish maps each (src, dst) flow to the time its demand drains.
	FlowFinish map[[2]int]float64
}

// CCT returns the Coflow completion time measured from the given arrival.
func (s *Schedule) CCT(arrival float64) float64 { return s.Finish - arrival }

// SwitchingCount returns the number of circuit establishments scheduled.
func (s *Schedule) SwitchingCount() int { return len(s.Reservations) }

// ErrStalled is returned when the scheduler cannot advance — it indicates a
// PRT whose pre-loaded reservations or blackout windows permanently block a
// port pair with remaining demand.
var ErrStalled = errors.New("core: scheduler stalled with unfinished demand")

// demand is one pending flow with its remaining processing time.
type demand struct {
	i, j int
	p    float64
}

// releaseHeap is a min-heap of circuit release times (reference path).
type releaseHeap []float64

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(a, b int) bool  { return h[a] < h[b] }
func (h releaseHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// covered reports whether the heap already holds an entry u within
// [t-timeEps, t]. The scheduler's round at u drains every release up to
// u+timeEps, t included, so pushing t again would be redundant. The check is
// deliberately one-sided: a new release below an existing entry must still
// be pushed — the round cursor advances to the minimum of an eps-cluster,
// and dropping a smaller value would shift round times by float residue.
func (h releaseHeap) covered(t float64) bool {
	for _, v := range h {
		if t-timeEps <= v && v <= t {
			return true
		}
	}
	return false
}

// IntraCoflow runs the non-preemptive intra-Coflow scheduler of Algorithm 1
// for Coflow c over the shared Port Reservation Table prt, starting at
// opts.Start. Reservations already in the PRT are never preempted; the
// Coflow's circuits are fitted around them (this is how InterCoflow
// prioritizes earlier Coflows). The PRT is updated in place and the Coflow's
// schedule is returned.
//
// Each flow with processing time p(i,j) = d(i,j)·8/B desires one reservation
// of length δ+p; when a port pair has a later commitment closer than that,
// the reservation is shortened and the remainder of the flow is reserved
// again later — paying another δ, exactly as MakeReservation prescribes.
//
// Two interchangeable loop implementations exist: the event-driven fast path
// (default) re-examines only the demands touching a freed port at each
// release, and the scan-based reference path (Options.Reference) re-examines
// every pending demand. They produce bit-identical schedules; the property
// tests in differential_test.go hold them to that.
func IntraCoflow(prt *PRT, c *coflow.Coflow, opts Options) (*Schedule, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(prt.Ports()); err != nil {
		return nil, err
	}
	if o := opts.Obs; o != nil || opts.Prof != nil {
		// One measurement feeds both the counters and the span, so the
		// span tree's intra totals reconcile with sched.intra_seconds
		// exactly rather than within clock jitter.
		// Clock before span: the span's start stamp then lands no earlier
		// than passStart, so the recorded interval covers its children even
		// when the goroutine is preempted between the two calls.
		passStart := time.Now()
		sp := opts.Prof.Start("intra")
		if opts.Reference {
			sp.Attr("planner", "ref")
		} else {
			sp.Attr("planner", "fast")
		}
		defer func() {
			sec := time.Since(passStart).Seconds()
			sp.FinishWith(sec)
			if o == nil {
				return
			}
			o.IntraPasses.Inc()
			o.IntraSeconds.Add(sec)
			if opts.Reference {
				o.IntraRefSeconds.Add(sec)
			} else {
				o.IntraFastSeconds.Add(sec)
			}
		}()
	}
	if opts.Reference {
		return intraScan(prt, c, opts)
	}
	return intraFast(prt, c, opts)
}

// buildPending converts the Coflow's positive-demand flows into scheduler
// demands, appending to dst, and orders them per opts.
func buildPending(dst []demand, c *coflow.Coflow, opts Options) []demand {
	for _, f := range c.Flows {
		if f.Bytes <= 0 {
			continue
		}
		p := f.ProcTime(opts.LinkBps)
		if opts.Quantum > 0 {
			p = math.Ceil(p/opts.Quantum) * opts.Quantum
		}
		dst = append(dst, demand{i: f.Src, j: f.Dst, p: p})
	}
	orderDemands(dst, opts)
	return dst
}

// newSchedule allocates the Schedule shell both paths fill in.
func newSchedule(c *coflow.Coflow, opts Options, nPending int) *Schedule {
	return &Schedule{
		CoflowID:   c.ID,
		Start:      opts.Start,
		Finish:     opts.Start,
		FlowFinish: make(map[[2]int]float64, nPending),
	}
}

// intraScan is the reference implementation of the Algorithm 1 loop: every
// round re-examines all pending demands in order. O(F) per round, kept as
// the differential-testing oracle for the event-driven path.
func intraScan(prt *PRT, c *coflow.Coflow, opts Options) (*Schedule, error) {
	pending := buildPending(make([]demand, 0, len(c.Flows)), c, opts)
	sched := newSchedule(c, opts, len(pending))
	if len(pending) == 0 {
		return sched, nil
	}

	// Seed the release-time heap with existing commitments on the ports this
	// Coflow touches, so the time cursor can advance past them.
	ins, outs := portSets(pending)
	releases := releaseHeap(prt.ReleasesAfter(opts.Start, ins, outs, nil))
	heap.Init(&releases)

	t := opts.Start
	for len(pending) > 0 {
		for idx := range pending {
			d := &pending[idx]
			if d.p <= timeEps || !prt.FreeAt(d.i, d.j, t) {
				continue
			}
			tm := prt.NextCommitment(d.i, d.j, t)
			lm := tm - t
			ld := opts.Delta + d.p
			// A slot shorter than δ (or exactly δ, which would carry no
			// data) is useless: leave the ports free for another Coflow.
			if lm <= opts.Delta+timeEps {
				continue
			}
			l := math.Min(lm, ld)
			r := Reservation{
				CoflowID: c.ID,
				In:       d.i,
				Out:      d.j,
				Start:    t,
				End:      t + l,
				Setup:    opts.Delta,
				Bytes:    (l - opts.Delta) * opts.LinkBps / 8,
			}
			prt.Reserve(r)
			sched.Reservations = append(sched.Reservations, r)
			if o := opts.Obs; o != nil {
				o.Reservations.Inc()
				if l < ld-timeEps {
					// The slot was cut short by a later commitment: the
					// flow's remainder will pay another δ.
					o.ResShortened.Inc()
				}
			}
			if !releases.covered(r.End) {
				heap.Push(&releases, r.End)
			}
			d.p -= l - opts.Delta // remaining demand: ld - l
			if d.p <= timeEps {
				d.p = 0
				sched.FlowFinish[[2]int{d.i, d.j}] = r.End
			}
			if r.End > sched.Finish {
				sched.Finish = r.End
			}
		}

		// Drop satisfied demands; residues at the arithmetic noise floor
		// count as satisfied, matching the skip threshold above, or they
		// would linger unschedulable forever.
		live := pending[:0]
		for _, d := range pending {
			if d.p > timeEps {
				live = append(live, d)
			}
		}
		pending = live
		if len(pending) == 0 {
			break
		}

		// Advance to the next circuit release time (Algorithm 1, line 10);
		// the end of a blackout window also frees ports. Entries at or
		// before the cursor belong to rounds already run: drain them all in
		// one pass, then peek the first live one.
		for releases.Len() > 0 && releases[0] <= t+timeEps {
			heap.Pop(&releases)
		}
		next := prt.nextBlackoutEnd(t)
		if releases.Len() > 0 && releases[0] < next {
			next = releases[0]
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("%w: %d flows blocked at t=%.6f for %v", ErrStalled, len(pending), t, c)
		}
		t = next
	}
	return sched, nil
}

// portEvent is a circuit release instant on the fast path's event heap: at
// time t the input port in and/or output port out become free. Negative port
// values mean "no port on this side" (events seeded from a single timeline).
type portEvent struct {
	t       float64
	in, out int32
}

// evPush adds e to the min-heap ev (ordered by t alone: all events at one
// instant are drained together before any demand is examined, so tie order
// is irrelevant).
func evPush(ev *[]portEvent, e portEvent) {
	h := append(*ev, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].t <= h[i].t {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*ev = h
}

// evPop removes and returns the earliest event.
func evPop(ev *[]portEvent) portEvent {
	h := *ev
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l].t < h[min].t {
			min = l
		}
		if r < n && h[r].t < h[min].t {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	*ev = h
	return top
}

// intraScratch is the reusable working set of one fast-path scheduling pass.
// Pooling it makes IntraCoflow near-zero-alloc per pass in the inter-Coflow
// driver, which calls it once per live Coflow per replan.
type intraScratch struct {
	pending []demand
	byIn    [][]int32 // pending-demand indices per input port
	byOut   [][]int32 // pending-demand indices per output port
	events  []portEvent
	cand    []int32
	woken   []bool
	ends    []float64
}

var scratchPool = sync.Pool{New: func() any { return new(intraScratch) }}

// intraFast is the event-driven implementation of the Algorithm 1 loop.
// Pending demands are indexed by input and output port; a circuit release
// wakes only the demands touching the freed ports, and woken demands are
// examined in the same demand order as the reference scan. A demand that was
// unschedulable at one round — port busy, gap to the next commitment at most
// δ, blackout — stays unschedulable until one of its ports releases or a
// blackout window ends, so waking that (super)set reproduces the reference
// path's reservation sequence exactly.
func intraFast(prt *PRT, c *coflow.Coflow, opts Options) (*Schedule, error) {
	s := scratchPool.Get().(*intraScratch)
	defer scratchPool.Put(s)

	pending := buildPending(s.pending[:0], c, opts)
	s.pending = pending
	sched := newSchedule(c, opts, len(pending))
	if len(pending) == 0 {
		return sched, nil
	}
	sched.Reservations = make([]Reservation, 0, len(pending))

	n := prt.n
	if cap(s.byIn) < n {
		s.byIn = make([][]int32, n)
		s.byOut = make([][]int32, n)
	}
	byIn, byOut := s.byIn[:n], s.byOut[:n]
	for p := 0; p < n; p++ {
		byIn[p] = byIn[p][:0]
		byOut[p] = byOut[p][:0]
	}
	// Index live demands by port. A demand already at the noise floor is
	// dropped up front — the reference scan never reserves for it and
	// records no finish — so remaining counts exactly the schedulable work.
	remaining := 0
	for di := range pending {
		if pending[di].p <= timeEps {
			continue
		}
		remaining++
		byIn[pending[di].i] = append(byIn[pending[di].i], int32(di))
		byOut[pending[di].j] = append(byOut[pending[di].j], int32(di))
	}
	if remaining == 0 {
		return sched, nil
	}

	// Seed the event heap with existing commitments on the touched ports and
	// pre-grow their timelines for the reservations this pass will insert.
	events := s.events[:0]
	for p := 0; p < n; p++ {
		if len(byIn[p]) > 0 {
			tl := &prt.in[p]
			tl.grow(2*len(byIn[p]) + 2)
			s.ends = tl.endsAfter(opts.Start, s.ends[:0])
			for _, e := range s.ends {
				evPush(&events, portEvent{t: e, in: int32(p), out: -1})
			}
		}
		if len(byOut[p]) > 0 {
			tl := &prt.out[p]
			tl.grow(2*len(byOut[p]) + 2)
			s.ends = tl.endsAfter(opts.Start, s.ends[:0])
			for _, e := range s.ends {
				evPush(&events, portEvent{t: e, in: -1, out: int32(p)})
			}
		}
	}

	if cap(s.woken) < len(pending) {
		s.woken = make([]bool, len(pending))
	}
	woken := s.woken[:len(pending)]
	clear(woken)
	cand := s.cand[:0]

	t := opts.Start
	wakeAll := true // the first round examines every demand
	for {
		if wakeAll {
			for di := range pending {
				remaining = examine(prt, c, &opts, sched, &pending[di], &events, t, remaining)
			}
		} else {
			for _, di := range cand {
				woken[di] = false
				remaining = examine(prt, c, &opts, sched, &pending[di], &events, t, remaining)
			}
		}
		if remaining == 0 {
			break
		}

		// Advance to the next circuit release or blackout end, as the
		// reference does; then wake the demands that instant can unblock.
		blk := prt.nextBlackoutEnd(t)
		next := blk
		if len(events) > 0 && events[0].t < next {
			next = events[0].t
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("%w: %d flows blocked at t=%.6f for %v", ErrStalled, remaining, t, c)
		}
		t = next
		// A blackout end frees every port at once: all demands may have
		// become schedulable, so this round examines them all.
		wakeAll = blk <= t+timeEps
		cand = cand[:0]
		for len(events) > 0 && events[0].t <= t+timeEps {
			e := evPop(&events)
			if wakeAll {
				continue
			}
			if e.in >= 0 {
				for _, di := range byIn[e.in] {
					if !woken[di] && pending[di].p > timeEps {
						woken[di] = true
						cand = append(cand, di)
					}
				}
			}
			if e.out >= 0 {
				for _, di := range byOut[e.out] {
					if !woken[di] && pending[di].p > timeEps {
						woken[di] = true
						cand = append(cand, di)
					}
				}
			}
		}
		if !wakeAll {
			// The reference examines demands in slice order; restore it.
			slices.Sort(cand)
		}
	}
	s.cand, s.events = cand, events[:0]
	return sched, nil
}

// examine is one demand visit of the Algorithm 1 loop at round instant t:
// reserve the longest admissible slot if the ports are free, mirroring
// intraScan's inner loop statement for statement. It returns the updated
// count of unfinished demands.
func examine(prt *PRT, c *coflow.Coflow, opts *Options, sched *Schedule, d *demand, events *[]portEvent, t float64, remaining int) int {
	if d.p <= timeEps || !prt.FreeAt(d.i, d.j, t) {
		return remaining
	}
	tm := prt.NextCommitment(d.i, d.j, t)
	lm := tm - t
	ld := opts.Delta + d.p
	// A slot shorter than δ (or exactly δ, which would carry no data) is
	// useless: leave the ports free for another Coflow.
	if lm <= opts.Delta+timeEps {
		return remaining
	}
	l := math.Min(lm, ld)
	r := Reservation{
		CoflowID: c.ID,
		In:       d.i,
		Out:      d.j,
		Start:    t,
		End:      t + l,
		Setup:    opts.Delta,
		Bytes:    (l - opts.Delta) * opts.LinkBps / 8,
	}
	prt.Reserve(r)
	sched.Reservations = append(sched.Reservations, r)
	if o := opts.Obs; o != nil {
		o.Reservations.Inc()
		if l < ld-timeEps {
			// The slot was cut short by a later commitment: the flow's
			// remainder will pay another δ.
			o.ResShortened.Inc()
		}
	}
	// The release frees both ports; one event wakes the demands on either
	// side. Reservations carry data (l > δ+eps), so r.End is strictly after
	// this round and per-port release instants never collide.
	evPush(events, portEvent{t: r.End, in: int32(d.i), out: int32(d.j)})
	d.p -= l - opts.Delta // remaining demand: ld - l
	if d.p <= timeEps {
		d.p = 0
		sched.FlowFinish[[2]int{d.i, d.j}] = r.End
		remaining--
	}
	if r.End > sched.Finish {
		sched.Finish = r.End
	}
	return remaining
}

// nextBlackoutEnd returns the end of the first blackout window after t, or
// +Inf when no blackout is installed.
func (p *PRT) nextBlackoutEnd(t float64) float64 {
	if p.blackout == nil {
		return math.Inf(1)
	}
	return p.blackout.NextEnd(t)
}

// orderDemands arranges the pending demands per the configured ordering.
func orderDemands(pending []demand, opts Options) {
	switch opts.Order {
	case OrderedPort:
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].i != pending[b].i {
				return pending[a].i < pending[b].i
			}
			return pending[a].j < pending[b].j
		})
	case SortedDemand:
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].p != pending[b].p {
				return pending[a].p > pending[b].p
			}
			if pending[a].i != pending[b].i {
				return pending[a].i < pending[b].i
			}
			return pending[a].j < pending[b].j
		})
	case RandomOrder:
		// Sort first so shuffling is deterministic regardless of input order.
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].i != pending[b].i {
				return pending[a].i < pending[b].i
			}
			return pending[a].j < pending[b].j
		})
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(pending), func(a, b int) {
			pending[a], pending[b] = pending[b], pending[a]
		})
	}
}

// portSets returns the distinct input and output ports of the demands.
func portSets(pending []demand) (ins, outs []int) {
	inSet := make(map[int]bool)
	outSet := make(map[int]bool)
	for _, d := range pending {
		inSet[d.i] = true
		outSet[d.j] = true
	}
	for i := range inSet {
		ins = append(ins, i)
	}
	for j := range outSet {
		outs = append(outs, j)
	}
	sort.Ints(ins)
	sort.Ints(outs)
	return ins, outs
}
