package bvn_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/bench"
	"sunflow/internal/bvn"
)

// Differential harness for the Decomposer fast paths: stuffing, Sinkhorn
// scaling and BvN decomposition must equal the dense package-level
// references bit for bit — reflect.DeepEqual on whole matrices and
// permutation sequences — over random matrices and over demand matrices
// derived from the Facebook-trace workload generator.

const quickCount = 200

func randomMatrix(rng *rand.Rand, n int, density float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if rng.Float64() < density {
				m[i][j] = rng.Float64() * 10
			}
		}
	}
	return m
}

// facebookMatrices converts a slice of trace-derived Coflows into
// processing-time demand matrices on a small fabric, the shape the
// schedulers feed this package.
func facebookMatrices(ports, count int) [][][]float64 {
	cs := bench.Config{Seed: 7, Ports: ports, Coflows: count, MaxWidth: 8}.Workload()
	out := make([][][]float64, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.DemandMatrix(ports))
	}
	return out
}

// drawMatrix picks either a random matrix or a Facebook-trace demand matrix
// for the given seed, so every property below covers both populations.
func drawMatrix(rng *rand.Rand, pool [][][]float64) [][]float64 {
	if rng.Intn(3) == 0 {
		m := pool[rng.Intn(len(pool))]
		// Scale bytes down to processing-time magnitudes as the schedulers do.
		c := bvn.Clone(m)
		for i := range c {
			for j := range c[i] {
				c[i][j] *= 8 / 1e9
			}
		}
		return c
	}
	n := 1 + rng.Intn(12)
	return randomMatrix(rng, n, []float64{0.15, 0.5, 0.9}[rng.Intn(3)])
}

func TestQuickDecomposerStuffBitIdentical(t *testing.T) {
	pool := facebookMatrices(16, 40)
	d := bvn.NewDecomposer(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := drawMatrix(rng, pool)
		refS, refAdded := bvn.Stuff(m)
		fastS, fastAdded := d.Stuff(m)
		if fastAdded != refAdded || !reflect.DeepEqual(fastS, refS) {
			t.Logf("seed %d: stuffed matrices diverge (added %v vs %v)", seed, fastAdded, refAdded)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecomposerSinkhornBitIdentical(t *testing.T) {
	pool := facebookMatrices(16, 40)
	d := bvn.NewDecomposer(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := drawMatrix(rng, pool)
		maxIter := []int{1, 5, 2000}[rng.Intn(3)]
		tol := []float64{1e-6, 1e-3}[rng.Intn(2)]
		refS, refErr := bvn.Sinkhorn(m, tol, maxIter)
		fastS, fastErr := d.Sinkhorn(m, tol, maxIter)
		if (refErr == nil) != (fastErr == nil) {
			t.Logf("seed %d: error divergence ref=%v fast=%v", seed, refErr, fastErr)
			return false
		}
		if refErr != nil {
			return refErr.Error() == fastErr.Error()
		}
		if !reflect.DeepEqual(fastS, refS) {
			t.Logf("seed %d: scaled matrices diverge", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecomposerDecomposeBitIdentical(t *testing.T) {
	pool := facebookMatrices(16, 40)
	d := bvn.NewDecomposer(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := drawMatrix(rng, pool)
		// Decompose wants equal line sums; stuff first (as every caller
		// does), occasionally skipping it to exercise the error path.
		if rng.Intn(8) != 0 {
			m, _ = bvn.Stuff(m)
		}
		refPerms, refErr := bvn.Decompose(m)
		fastPerms, fastErr := d.Decompose(m)
		if (refErr == nil) != (fastErr == nil) {
			t.Logf("seed %d: error divergence ref=%v fast=%v", seed, refErr, fastErr)
			return false
		}
		if refErr != nil {
			return refErr.Error() == fastErr.Error()
		}
		if !reflect.DeepEqual(fastPerms, refPerms) {
			t.Logf("seed %d: decompositions diverge (%d vs %d perms)", seed, len(fastPerms), len(refPerms))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposerReuseAcrossSizes: one Decomposer serving matrices of varying
// size back to back (the TMS drain-loop pattern) stays bit-identical — the
// arenas and index lists must not leak state between calls.
func TestDecomposerReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := bvn.NewDecomposer(2)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		m := randomMatrix(rng, n, 0.6)
		stuffedRef, addedRef := bvn.Stuff(m)
		stuffedFast, addedFast := d.Stuff(m)
		if addedFast != addedRef || !reflect.DeepEqual(stuffedFast, stuffedRef) {
			t.Fatalf("trial %d: stuff diverged at n=%d", trial, n)
		}
		refPerms, refErr := bvn.Decompose(stuffedRef)
		fastPerms, fastErr := d.Decompose(stuffedRef)
		if (refErr == nil) != (fastErr == nil) || !reflect.DeepEqual(fastPerms, refPerms) {
			t.Fatalf("trial %d: decompose diverged at n=%d", trial, n)
		}
	}
}

// --- Sinkhorn stuffing edge cases (satellite) ---

func sinkhornLineSumsWithin(t *testing.T, s [][]float64, tol float64) {
	t.Helper()
	for i, sum := range bvn.RowSums(s) {
		if sum < 1-tol || sum > 1+tol {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	for j, sum := range bvn.ColSums(s) {
		if sum < 1-tol || sum > 1+tol {
			t.Errorf("col %d sums to %v", j, sum)
		}
	}
}

func TestDecomposerSinkhornZeroDemand(t *testing.T) {
	d := bvn.NewDecomposer(4)
	m := make([][]float64, 4)
	for i := range m {
		m[i] = make([]float64, 4)
	}
	s, err := d.Sinkhorn(m, 1e-9, 4)
	if err != nil {
		t.Fatalf("zero-demand matrix did not converge: %v", err)
	}
	sinkhornLineSumsWithin(t, s, 1e-9)
	ref, refErr := bvn.Sinkhorn(m, 1e-9, 4)
	if refErr != nil || !reflect.DeepEqual(s, ref) {
		t.Fatal("zero-demand matrix diverges from reference")
	}
}

func TestDecomposerSinkhornSingleEntry(t *testing.T) {
	d := bvn.NewDecomposer(3)
	// The empty-line fill gives this matrix a slow (sublinear) Sinkhorn
	// rate, so the tolerance is the one TMS-scale callers would use.
	m := [][]float64{{0, 0, 0}, {0, 5, 0}, {0, 0, 0}}
	s, err := d.Sinkhorn(m, 1e-3, 2000)
	if err != nil {
		t.Fatalf("single-entry matrix did not converge: %v", err)
	}
	sinkhornLineSumsWithin(t, s, 1e-2)
	ref, refErr := bvn.Sinkhorn(m, 1e-3, 2000)
	if refErr != nil || !reflect.DeepEqual(s, ref) {
		t.Fatal("single-entry matrix diverges from reference")
	}
}

func TestDecomposerSinkhornDoublyStochasticOnePass(t *testing.T) {
	d := bvn.NewDecomposer(4)
	// Exact doubly stochastic inputs: a permutation matrix and a uniform
	// matrix whose line sums are exactly 1.0 in binary floating point.
	cases := [][][]float64{
		{{0, 1, 0, 0}, {1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}},
		{{0.25, 0.25, 0.25, 0.25}, {0.25, 0.25, 0.25, 0.25}, {0.25, 0.25, 0.25, 0.25}, {0.25, 0.25, 0.25, 0.25}},
	}
	for ci, m := range cases {
		// maxIter=1: the input must converge within a single pass.
		s, err := d.Sinkhorn(m, 1e-12, 1)
		if err != nil {
			t.Fatalf("case %d: doubly stochastic input needed more than one pass: %v", ci, err)
		}
		if !reflect.DeepEqual(s, m) {
			t.Errorf("case %d: one pass over a doubly stochastic matrix changed it", ci)
		}
	}
}

func TestDecomposerSinkhornNoMatrixAllocs(t *testing.T) {
	d := bvn.NewDecomposer(8)
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 8, 0.7)
	if _, err := d.Sinkhorn(m, 1e-6, 5000); err != nil {
		t.Skipf("fixture did not converge: %v", err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if _, err := d.Sinkhorn(m, 1e-6, 5000); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Decomposer.Sinkhorn allocates %.1f/op, want 0", avg)
	}
}
