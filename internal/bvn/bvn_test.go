package bvn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, n int, density float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if rng.Float64() < density {
				m[i][j] = float64(1 + rng.Intn(100))
			}
		}
	}
	return m
}

func TestStuffEqualizesLineSums(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		m := randomMatrix(rng, n, 0.5)
		s, added := Stuff(m)
		target := MaxLineSum(m)
		for i, sum := range RowSums(s) {
			if math.Abs(sum-target) > 1e-6 {
				t.Fatalf("row %d sum %v != target %v", i, sum, target)
			}
		}
		for j, sum := range ColSums(s) {
			if math.Abs(sum-target) > 1e-6 {
				t.Fatalf("col %d sum %v != target %v", j, sum, target)
			}
		}
		// Added dummy equals the difference between n·target and the
		// original mass.
		var orig float64
		for _, row := range m {
			for _, v := range row {
				orig += v
			}
		}
		if math.Abs(added-(float64(n)*target-orig)) > 1e-6 {
			t.Fatalf("added %v inconsistent", added)
		}
		// Stuffing only adds.
		for i := range m {
			for j := range m[i] {
				if s[i][j] < m[i][j]-1e-12 {
					t.Fatalf("stuffing removed demand at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestStuffEmptyMatrix(t *testing.T) {
	m := [][]float64{{0, 0}, {0, 0}}
	s, added := Stuff(m)
	if added != 0 {
		t.Fatalf("added = %v, want 0", added)
	}
	if MaxLineSum(s) != 0 {
		t.Fatalf("stuffed empty matrix is non-empty")
	}
}

func TestSinkhornConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		m := randomMatrix(rng, n, 0.9)
		s, err := Sinkhorn(m, 1e-6, 2000)
		if err != nil {
			t.Fatalf("Sinkhorn: %v", err)
		}
		for _, sum := range RowSums(s) {
			if math.Abs(sum-1) > 1e-5 {
				t.Fatalf("row sum %v != 1", sum)
			}
		}
		for _, sum := range ColSums(s) {
			if math.Abs(sum-1) > 1e-5 {
				t.Fatalf("col sum %v != 1", sum)
			}
		}
	}
}

func TestSinkhornHandlesEmptyLines(t *testing.T) {
	// Row 1 and column 0 are empty; Sinkhorn must still converge via the
	// virtual uniform entries.
	m := [][]float64{
		{0, 5, 3},
		{0, 0, 0},
		{0, 2, 1},
	}
	// Patterns whose doubly stochastic scaling lies on the support boundary
	// converge slowly; a loose tolerance is enough to show the virtual
	// entries make the iteration well defined.
	if _, err := Sinkhorn(m, 1e-3, 5000); err != nil {
		t.Fatalf("Sinkhorn with empty lines: %v", err)
	}
}

func TestSinkhornNoConvergePattern(t *testing.T) {
	// A single off-diagonal support in a 2x2 matrix (permutation-free
	// pattern) cannot be scaled doubly stochastic.
	m := [][]float64{
		{1, 1},
		{0, 1},
	}
	// This pattern actually admits scaling only in the limit; expect either
	// convergence failure or a near-converged result — the call must not
	// hang or panic.
	_, err := Sinkhorn(m, 1e-12, 50)
	if err == nil {
		t.Skip("converged within tolerance; acceptable")
	}
}

func TestDecomposeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		m := randomMatrix(rng, n, 0.6)
		s, _ := Stuff(m)
		perms, err := Decompose(s)
		if err != nil {
			t.Fatalf("Decompose: %v", err)
		}
		// Rebuild and compare.
		re := make([][]float64, n)
		for i := range re {
			re[i] = make([]float64, n)
		}
		var wsum float64
		for _, p := range perms {
			wsum += p.Weight
			for i, j := range p.Match {
				re[i][j] += p.Weight
			}
		}
		if target := MaxLineSum(m); math.Abs(wsum-target) > 1e-6*(1+target) {
			t.Fatalf("weights sum %v != line sum %v", wsum, target)
		}
		for i := range s {
			for j := range s[i] {
				if math.Abs(re[i][j]-s[i][j]) > 1e-6*(1+s[i][j]) {
					t.Fatalf("reconstruction (%d,%d): %v != %v", i, j, re[i][j], s[i][j])
				}
			}
		}
	}
}

func TestDecomposeRejectsUnstuffed(t *testing.T) {
	m := [][]float64{
		{1, 0},
		{0, 0},
	}
	if _, err := Decompose(m); err == nil {
		t.Fatal("Decompose should fail on unequal line sums")
	}
}

func TestDecomposeEmpty(t *testing.T) {
	perms, err := Decompose([][]float64{{0, 0}, {0, 0}})
	if err != nil || len(perms) != 0 {
		t.Fatalf("Decompose(empty) = %v, %v", perms, err)
	}
}

func TestQuickStuffThenDecompose(t *testing.T) {
	// Property: any non-negative matrix can be stuffed and decomposed, and
	// the permutation count stays within the BvN bound of (n-1)²+1 terms.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := randomMatrix(rng, n, rng.Float64())
		s, _ := Stuff(m)
		perms, err := Decompose(s)
		if err != nil {
			return false
		}
		return len(perms) <= (n-1)*(n-1)+1+n // slack for float-split terms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := [][]float64{{1, 2}, {3, 4}}
	c := Clone(m)
	c[0][0] = 99
	if m[0][0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}
