package bvn

import (
	"fmt"
	"math"

	"sunflow/internal/matching"
)

// Decomposer is the reusable fast path of this package. It owns two arena
// matrices, CSR-style nonzero index lists, per-row maxima and a
// matching.Scratch, so that stuffing, Sinkhorn scaling and BvN decomposition
// run without per-call matrix allocations and without O(N²) sweeps where the
// nonzero structure is sparse. Every method is bit-identical to its dense
// package-level reference (Stuff, Sinkhorn, Decompose) — the skipped entries
// are exact zeros, which contribute nothing to IEEE sums and are unchanged
// by scaling, and the matching extraction order is identical — which the
// differential suite pins with seeded quick.Check runs.
//
// A Decomposer is not safe for concurrent use; give each goroutine its own.
type Decomposer struct {
	n            int
	work1, work2 []float64
	rows1, rows2 [][]float64
	scratch      matching.Scratch
	match        []int
	rowMax       []float64
	sumBuf       []float64 // n entries, row or column sums
	slackR       []float64
	slackC       []float64
	// CSR nonzero structure: nzr holds column indices row by row with
	// rowStart offsets; nzc holds row indices column by column.
	nzr, nzc           []int32
	rowStart, colStart []int32
	colCur             []int32
}

// NewDecomposer returns a Decomposer sized for n×n matrices; it grows
// automatically if handed larger ones.
func NewDecomposer(n int) *Decomposer {
	d := &Decomposer{}
	d.resize(n)
	return d
}

func (d *Decomposer) resize(n int) {
	if cap(d.work1) < n*n {
		d.work1 = make([]float64, n*n)
		d.work2 = make([]float64, n*n)
		d.rows1 = make([][]float64, n)
		d.rows2 = make([][]float64, n)
		d.rowMax = make([]float64, n)
		d.sumBuf = make([]float64, n)
		d.slackR = make([]float64, n)
		d.slackC = make([]float64, n)
		d.rowStart = make([]int32, n+1)
		d.colStart = make([]int32, n+1)
		d.nzr = make([]int32, 0, n*n)
		d.nzc = make([]int32, 0, n*n)
	}
	if d.n != n {
		d.rows1 = d.rows1[:n]
		d.rows2 = d.rows2[:n]
		for i := 0; i < n; i++ {
			d.rows1[i] = d.work1[i*n : (i+1)*n : (i+1)*n]
			d.rows2[i] = d.work2[i*n : (i+1)*n : (i+1)*n]
		}
		d.rowMax = d.rowMax[:n]
		d.sumBuf = d.sumBuf[:n]
		d.slackR = d.slackR[:n]
		d.slackC = d.slackC[:n]
		d.rowStart = d.rowStart[:n+1]
		d.colStart = d.colStart[:n+1]
		d.n = n
	}
}

// copyInto copies m into the given arena rows (already sized n).
func copyInto(dst [][]float64, m [][]float64) {
	for i, row := range m {
		copy(dst[i], row)
	}
}

// maxLineSumInto is MaxLineSum with the sum buffer reused; identical
// accumulation and comparison order.
func (d *Decomposer) maxLineSumInto(m [][]float64) float64 {
	n := len(m)
	var max float64
	for _, row := range m {
		var s float64
		for _, v := range row {
			s += v
		}
		max = math.Max(max, s)
	}
	col := d.sumBuf[:n]
	for j := range col {
		col[j] = 0
	}
	for _, row := range m {
		for j, v := range row {
			col[j] += v
		}
	}
	for _, s := range col {
		max = math.Max(max, s)
	}
	return max
}

// MaxLineSum is the zero-alloc form of the package-level MaxLineSum,
// identical accumulation and comparison order.
func (d *Decomposer) MaxLineSum(m [][]float64) float64 {
	if len(m) > d.n {
		d.resize(len(m))
	}
	return d.maxLineSumInto(m)
}

// Stuff is the zero-alloc form of the package-level Stuff: it writes the
// stuffed matrix into an internal arena (valid until the next Stuff or
// Sinkhorn call on this Decomposer) and returns it with the dummy demand
// added. Callers may mutate the returned matrix freely — Solstice's slicer
// peels it in place.
func (d *Decomposer) Stuff(m [][]float64) ([][]float64, float64) {
	n := len(m)
	d.resize(n)
	s := d.rows1
	copyInto(s, m)
	target := d.maxLineSumInto(s)
	rowSlack, colSlack := d.slackR, d.slackC
	for i, row := range s {
		var sum float64
		for _, v := range row {
			sum += v
		}
		rowSlack[i] = target - sum
	}
	col := d.sumBuf[:n]
	for j := range col {
		col[j] = 0
	}
	for _, row := range s {
		for j, v := range row {
			col[j] += v
		}
	}
	for j, sum := range col {
		colSlack[j] = target - sum
	}
	var added float64
	i, j := 0, 0
	for i < n && j < n {
		if rowSlack[i] <= Eps {
			i++
			continue
		}
		if colSlack[j] <= Eps {
			j++
			continue
		}
		dd := math.Min(rowSlack[i], colSlack[j])
		s[i][j] += dd
		rowSlack[i] -= dd
		colSlack[j] -= dd
		added += dd
	}
	return s, added
}

// buildCSR records the nonzero structure of the arena matrix s: column
// indices per row (ascending) and row indices per column (ascending).
// Exact zeros are the only entries skipped, so sums over the lists equal
// dense sums bit for bit (x + 0.0 == x for the non-negative values here).
func (d *Decomposer) buildCSR(s [][]float64) {
	n := len(s)
	d.nzr = d.nzr[:0]
	d.nzc = d.nzc[:0]
	for i, row := range s {
		d.rowStart[i] = int32(len(d.nzr))
		for j, v := range row {
			if v > 0 {
				d.nzr = append(d.nzr, int32(j))
			}
		}
	}
	d.rowStart[n] = int32(len(d.nzr))
	// Column lists: count then fill keeps ascending row order per column.
	for j := 0; j <= n; j++ {
		d.colStart[j] = 0
	}
	for _, row := range s {
		for j, v := range row {
			if v > 0 {
				d.colStart[j+1]++
			}
		}
	}
	for j := 0; j < n; j++ {
		d.colStart[j+1] += d.colStart[j]
	}
	need := int(d.colStart[n])
	if cap(d.nzc) < need {
		d.nzc = make([]int32, need)
	} else {
		d.nzc = d.nzc[:need]
	}
	if cap(d.colCur) < n {
		d.colCur = make([]int32, n)
	}
	d.colCur = d.colCur[:n]
	copy(d.colCur, d.colStart[:n])
	for i, row := range s {
		for j, v := range row {
			if v > 0 {
				d.nzc[d.colCur[j]] = int32(i)
				d.colCur[j]++
			}
		}
	}
}

func (d *Decomposer) rowNZ(i int) []int32 { return d.nzr[d.rowStart[i]:d.rowStart[i+1]] }
func (d *Decomposer) colNZ(j int) []int32 { return d.nzc[d.colStart[j]:d.colStart[j+1]] }

// Sinkhorn is the zero-alloc, sparsity-aware form of the package-level
// Sinkhorn. The scaled matrix lives in an internal arena valid until the
// next Stuff or Sinkhorn call. The iteration sweeps only the nonzero
// entries, whose pattern Sinkhorn scaling preserves, so a sparse matrix
// costs O(nnz) per pass instead of O(N²); results are bit-identical to the
// reference.
func (d *Decomposer) Sinkhorn(m [][]float64, tol float64, maxIter int) ([][]float64, error) {
	n := len(m)
	d.resize(n)
	s := d.rows1
	copyInto(s, m)
	// Empty-line handling, identical to the reference: virtual uniform
	// entries make the scaling defined.
	for i := 0; i < n; i++ {
		empty := true
		for j := 0; j < n; j++ {
			if s[i][j] > 0 {
				empty = false
				break
			}
		}
		if empty {
			for j := 0; j < n; j++ {
				s[i][j] = 1.0 / float64(n)
			}
		}
	}
	for j := 0; j < n; j++ {
		empty := true
		for i := 0; i < n; i++ {
			if s[i][j] > 0 {
				empty = false
				break
			}
		}
		if empty {
			for i := 0; i < n; i++ {
				s[i][j] += 1.0 / float64(n)
			}
		}
	}
	d.buildCSR(s)
	var dev float64
	for iter := 0; iter < maxIter; iter++ {
		for i := 0; i < n; i++ {
			row := s[i]
			var sum float64
			for _, j := range d.rowNZ(i) {
				sum += row[j]
			}
			if sum <= 0 {
				continue
			}
			for _, j := range d.rowNZ(i) {
				row[j] /= sum
			}
		}
		for j := 0; j < n; j++ {
			var sum float64
			for _, i := range d.colNZ(j) {
				sum += s[i][j]
			}
			if sum <= 0 {
				continue
			}
			for _, i := range d.colNZ(j) {
				s[i][j] /= sum
			}
		}
		dev = 0
		for i := 0; i < n; i++ {
			row := s[i]
			var sum float64
			for _, j := range d.rowNZ(i) {
				sum += row[j]
			}
			dev = math.Max(dev, math.Abs(sum-1))
		}
		for j := 0; j < n; j++ {
			var sum float64
			for _, i := range d.colNZ(j) {
				sum += s[i][j]
			}
			dev = math.Max(dev, math.Abs(sum-1))
		}
		if dev <= tol {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (deviation %.3g)", ErrNoConverge, maxIter, dev)
}

// Decompose is the fast Birkhoff–von Neumann decomposition: the matrix is
// peeled in an internal arena, the positive-entry adjacency lives in the
// scratch bitset and is updated edge by edge as entries hit zero (instead of
// being rebuilt O(N²) per round), and per-row maxima make the termination
// check O(N). The extracted permutations are bit-identical to the
// package-level Decompose. m is not modified.
func (d *Decomposer) Decompose(m [][]float64) ([]Permutation, error) {
	n := len(m)
	d.resize(n)
	w := d.rows2
	copyInto(w, m)
	residueTol := 1e-5 * (1 + d.maxLineSumInto(m))
	// The adjacency and the row maxima diverge below Eps: entries in
	// (0, Eps) are never matched but still count toward maxEntry, exactly as
	// in the reference.
	d.scratch.AdjacencyAbove(m, Eps)
	for i, row := range w {
		var mx float64
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		d.rowMax[i] = mx
	}
	var perms []Permutation
	for iter := 0; iter <= n*n+1; iter++ {
		var gm float64
		for _, v := range d.rowMax[:n] {
			if v > gm {
				gm = v
			}
		}
		if gm <= Eps {
			return perms, nil
		}
		var size int
		d.match, size = d.scratch.MaxMatching(d.match)
		if size < n {
			if gm <= residueTol {
				return perms, nil
			}
			return nil, ErrNotDecomposable
		}
		weight := math.Inf(1)
		for i, j := range d.match {
			if w[i][j] < weight {
				weight = w[i][j]
			}
		}
		for i, j := range d.match {
			old := w[i][j]
			w[i][j] -= weight
			if w[i][j] < Eps {
				w[i][j] = 0
				d.scratch.ClearEdge(i, j)
			}
			if old == d.rowMax[i] {
				var mx float64
				for _, v := range w[i] {
					if v > mx {
						mx = v
					}
				}
				d.rowMax[i] = mx
			}
		}
		perms = append(perms, Permutation{Match: append([]int(nil), d.match...), Weight: weight})
	}
	return nil, fmt.Errorf("bvn: decomposition exceeded %d iterations", n*n+1)
}
