// Package bvn implements the matrix machinery behind the preemptive circuit
// schedulers studied in the Sunflow paper: additive stuffing of a demand
// matrix to equal row/column sums, Sinkhorn scaling toward a doubly
// stochastic matrix, and the Birkhoff–von Neumann (BvN) decomposition of a
// stuffed matrix into weighted permutation matrices.
//
// TMS (Mordia, SIGCOMM'13) scales the demand matrix and BvN-decomposes it;
// Solstice (CoNEXT'15) stuffs the matrix and extracts permutations with a
// threshold-halving variant of the same idea. Both are built from this
// package plus package matching.
//
// The package-level functions in this file are the dense reference kernels:
// they clone their inputs and sweep full matrices. The schedulers run on
// Decomposer (decomposer.go), which reuses arena matrices, nonzero index
// lists and a matching scratch across calls; the differential suite proves
// the two bit-identical (DESIGN.md §8).
package bvn

import (
	"errors"
	"fmt"
	"math"

	"sunflow/internal/matching"
)

// Eps is the absolute tolerance below which matrix entries are treated as
// zero during decomposition, guarding against floating-point residue.
const Eps = 1e-9

// Permutation is one term of a BvN decomposition: a (possibly partial)
// one-to-one assignment of input ports to output ports, active with the
// given weight. Match[i] is the output port assigned to input port i, or -1.
type Permutation struct {
	Match  []int
	Weight float64
}

// RowSums returns the per-row sums of m.
func RowSums(m [][]float64) []float64 {
	sums := make([]float64, len(m))
	for i, row := range m {
		for _, v := range row {
			sums[i] += v
		}
	}
	return sums
}

// ColSums returns the per-column sums of m.
func ColSums(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	sums := make([]float64, len(m[0]))
	for _, row := range m {
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// MaxLineSum returns the largest row or column sum of m — the quantity the
// packet-switched lower bound TpL is built from, and the target line sum for
// stuffing.
func MaxLineSum(m [][]float64) float64 {
	var max float64
	for _, s := range RowSums(m) {
		max = math.Max(max, s)
	}
	for _, s := range ColSums(m) {
		max = math.Max(max, s)
	}
	return max
}

// Clone returns a deep copy of m.
func Clone(m [][]float64) [][]float64 {
	c := make([][]float64, len(m))
	for i, row := range m {
		c[i] = append([]float64(nil), row...)
	}
	return c
}

// Stuff returns a copy of the non-negative n×n matrix m with dummy demand
// added so that every row and column sums to MaxLineSum(m). The second
// return value is the total dummy demand added. Stuffing is the
// pre-processing step shared by TMS and Solstice; the dummy demand is what
// later causes the spurious "idle circuit" assignments discussed in §3.1.1.
func Stuff(m [][]float64) ([][]float64, float64) {
	n := len(m)
	s := Clone(m)
	target := MaxLineSum(s)
	rowSlack := make([]float64, n)
	colSlack := make([]float64, n)
	for i, sum := range RowSums(s) {
		rowSlack[i] = target - sum
	}
	for j, sum := range ColSums(s) {
		colSlack[j] = target - sum
	}
	var added float64
	// Total row slack equals total column slack, so a greedy two-pointer
	// sweep stuffs the matrix exactly.
	i, j := 0, 0
	for i < n && j < n {
		if rowSlack[i] <= Eps {
			i++
			continue
		}
		if colSlack[j] <= Eps {
			j++
			continue
		}
		d := math.Min(rowSlack[i], colSlack[j])
		s[i][j] += d
		rowSlack[i] -= d
		colSlack[j] -= d
		added += d
	}
	return s, added
}

// ErrNoConverge is returned by Sinkhorn when the iteration fails to reach the
// requested tolerance (for example because the matrix's zero pattern admits
// no doubly stochastic scaling).
var ErrNoConverge = errors.New("bvn: sinkhorn iteration did not converge")

// Sinkhorn scales the non-negative matrix m by alternately normalizing rows
// and columns until every line sum is within tol of 1, returning the scaled
// matrix. The zero pattern of m is preserved. It fails with ErrNoConverge
// after maxIter sweeps. This is the TMS pre-processing step; note that unlike
// Stuff it multiplies entries, which is why TMS "may heavily modify the
// original demand matrix" (§3.1.1).
func Sinkhorn(m [][]float64, tol float64, maxIter int) ([][]float64, error) {
	n := len(m)
	s := Clone(m)
	// Rows or columns with no demand at all can never reach sum 1; give them
	// a uniform virtual entry so the scaling is defined, mirroring TMS's
	// handling of empty lines.
	for i := 0; i < n; i++ {
		empty := true
		for j := 0; j < n; j++ {
			if s[i][j] > 0 {
				empty = false
				break
			}
		}
		if empty {
			for j := 0; j < n; j++ {
				s[i][j] = 1.0 / float64(n)
			}
		}
	}
	for j := 0; j < n; j++ {
		empty := true
		for i := 0; i < n; i++ {
			if s[i][j] > 0 {
				empty = false
				break
			}
		}
		if empty {
			for i := 0; i < n; i++ {
				s[i][j] += 1.0 / float64(n)
			}
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		for i, sum := range RowSums(s) {
			if sum <= 0 {
				continue
			}
			for j := range s[i] {
				s[i][j] /= sum
			}
		}
		for j, sum := range ColSums(s) {
			if sum <= 0 {
				continue
			}
			for i := range s {
				s[i][j] /= sum
			}
		}
		if maxDeviation(s) <= tol {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (deviation %.3g)", ErrNoConverge, maxIter, maxDeviation(s))
}

func maxDeviation(m [][]float64) float64 {
	var dev float64
	for _, s := range RowSums(m) {
		dev = math.Max(dev, math.Abs(s-1))
	}
	for _, s := range ColSums(m) {
		dev = math.Max(dev, math.Abs(s-1))
	}
	return dev
}

// ErrNotDecomposable is returned by Decompose when no perfect matching
// exists on the positive entries of a non-empty matrix, meaning the input
// was not stuffed to equal line sums.
var ErrNotDecomposable = errors.New("bvn: matrix is not decomposable (unequal line sums?)")

// Decompose performs the Birkhoff–von Neumann decomposition of the stuffed
// matrix m: it repeatedly extracts a perfect matching over the positive
// entries, weighted by the minimum matched entry, until the matrix is empty.
// The weights sum to MaxLineSum(m). m is not modified.
//
// Inputs whose line sums are only approximately equal (e.g. a Sinkhorn
// result at finite tolerance) decompose up to a residue of one part in 10⁵
// of the line sum; larger imbalance returns ErrNotDecomposable.
func Decompose(m [][]float64) ([]Permutation, error) {
	n := len(m)
	w := Clone(m)
	residueTol := 1e-5 * (1 + MaxLineSum(m))
	var perms []Permutation
	// Each extraction zeroes at least one entry, so at most n² iterations.
	for iter := 0; iter <= n*n+1; iter++ {
		if maxEntry(w) <= Eps {
			return perms, nil
		}
		match := matching.PerfectMatchingAbove(w, Eps)
		if match == nil {
			if maxEntry(w) <= residueTol {
				return perms, nil
			}
			return nil, ErrNotDecomposable
		}
		weight := math.Inf(1)
		for i, j := range match {
			if w[i][j] < weight {
				weight = w[i][j]
			}
		}
		for i, j := range match {
			w[i][j] -= weight
			if w[i][j] < Eps {
				w[i][j] = 0
			}
		}
		perms = append(perms, Permutation{Match: append([]int(nil), match...), Weight: weight})
	}
	return nil, fmt.Errorf("bvn: decomposition exceeded %d iterations", n*n+1)
}

func maxEntry(m [][]float64) float64 {
	var max float64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}
