package coflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const gbps = 1e9

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestFlowProcTime(t *testing.T) {
	// 1 MB at 1 Gbps is 8 ms — the unit convention the paper's α = 1.25
	// depends on.
	f := Flow{Src: 0, Dst: 1, Bytes: 1e6}
	if got := f.ProcTime(gbps); !almostEq(got, 0.008) {
		t.Fatalf("ProcTime(1MB @1Gbps) = %v, want 0.008", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name  string
		flows []Flow
		ports int
		ok    bool
	}{
		{"valid", []Flow{{0, 1, 10}, {1, 0, 5}}, 2, true},
		{"src out of range", []Flow{{2, 1, 10}}, 2, false},
		{"dst out of range", []Flow{{0, 2, 10}}, 2, false},
		{"negative src", []Flow{{-1, 0, 10}}, 2, false},
		{"negative size", []Flow{{0, 1, -1}}, 2, false},
		{"nan size", []Flow{{0, 1, math.NaN()}}, 2, false},
		{"inf size", []Flow{{0, 1, math.Inf(1)}}, 2, false},
		{"duplicate pair", []Flow{{0, 1, 1}, {0, 1, 2}}, 2, false},
		{"empty", nil, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(1, 0, tc.flows)
			err := c.Validate(tc.ports)
			if (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestNormalizeMergesAndSorts(t *testing.T) {
	c := New(7, 1.5, []Flow{
		{2, 3, 5},
		{0, 1, 10},
		{2, 3, 7},
		{1, 1, 0}, // dropped
	})
	n := c.Normalize()
	if n.ID != 7 || n.Arrival != 1.5 {
		t.Fatalf("Normalize lost identity: %+v", n)
	}
	want := []Flow{{0, 1, 10}, {2, 3, 12}}
	if len(n.Flows) != len(want) {
		t.Fatalf("Normalize flows = %v, want %v", n.Flows, want)
	}
	for i := range want {
		if n.Flows[i] != want[i] {
			t.Fatalf("Normalize flows[%d] = %v, want %v", i, n.Flows[i], want[i])
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name  string
		flows []Flow
		want  Class
	}{
		{"o2o", []Flow{{0, 1, 1}}, OneToOne},
		{"o2m", []Flow{{0, 1, 1}, {0, 2, 1}}, OneToMany},
		{"m2o", []Flow{{0, 5, 1}, {1, 5, 1}}, ManyToOne},
		{"m2m", []Flow{{0, 2, 1}, {1, 3, 1}}, ManyToMany},
		{"empty is o2o", nil, OneToOne},
		{"zero flows ignored", []Flow{{0, 1, 1}, {3, 4, 0}}, OneToOne},
		{"self loop", []Flow{{0, 0, 1}}, OneToOne},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := New(0, 0, tc.flows).Classify(); got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{OneToOne: "O2O", OneToMany: "O2M", ManyToOne: "M2O", ManyToMany: "M2M"}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Class(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestPacketLowerBound(t *testing.T) {
	// Equation 2: max over port loads. 2x2 demand: in.0 sends 3 MB, in.1
	// sends 1; out.0 receives 2, out.1 receives 2. Max is 3 MB.
	c := New(0, 0, []Flow{
		{0, 0, 2e6}, {0, 1, 1e6}, {1, 1, 1e6},
	})
	want := 3e6 * 8 / gbps
	if got := c.PacketLowerBound(gbps); !almostEq(got, want) {
		t.Fatalf("TpL = %v, want %v", got, want)
	}
}

func TestCircuitLowerBound(t *testing.T) {
	// Equation 4: each flow adds δ to both its ports. in.0 has two flows:
	// t = (16ms + δ) + (8ms + δ).
	delta := 0.01
	c := New(0, 0, []Flow{
		{0, 0, 2e6}, {0, 1, 1e6}, {1, 1, 1e6},
	})
	want := (2e6*8/gbps + delta) + (1e6*8/gbps + delta)
	if got := c.CircuitLowerBound(gbps, delta); !almostEq(got, want) {
		t.Fatalf("TcL = %v, want %v", got, want)
	}
}

func TestCircuitBoundAtLeastPacketBound(t *testing.T) {
	// TcL ≥ TpL always (δ ≥ 0 adds per-flow overhead).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		c := randomCoflow(rng, 8, 12)
		tpl := c.PacketLowerBound(gbps)
		tcl := c.CircuitLowerBound(gbps, 0.01)
		if tcl < tpl-1e-12 {
			t.Fatalf("TcL=%v < TpL=%v for %v", tcl, tpl, c)
		}
		if zero := c.CircuitLowerBound(gbps, 0); !almostEq(zero, tpl) && zero < tpl-1e-12 {
			t.Fatalf("TcL(δ=0)=%v < TpL=%v", zero, tpl)
		}
	}
}

func TestAlpha(t *testing.T) {
	// 1 MB minimum flow at 1 Gbps, δ = 10 ms → α = 1.25, the trace's bound.
	c := New(0, 0, []Flow{{0, 0, 1e6}, {1, 1, 5e6}})
	if got := c.Alpha(gbps, 0.01); !almostEq(got, 1.25) {
		t.Fatalf("Alpha = %v, want 1.25", got)
	}
	empty := New(0, 0, nil)
	if got := empty.Alpha(gbps, 0.01); !math.IsInf(got, 1) {
		t.Fatalf("Alpha(empty) = %v, want +Inf", got)
	}
}

func TestDemandMatrixAndPortSums(t *testing.T) {
	c := New(0, 0, []Flow{{0, 1, 3}, {2, 1, 4}})
	d := c.DemandMatrix(3)
	if d[0][1] != 3 || d[2][1] != 4 || d[1][1] != 0 {
		t.Fatalf("DemandMatrix = %v", d)
	}
	in, out := c.PortSums()
	if in[0] != 3 || in[2] != 4 || out[1] != 7 {
		t.Fatalf("PortSums = %v %v", in, out)
	}
}

func TestCombine(t *testing.T) {
	a := New(1, 5, []Flow{{0, 1, 10}})
	b := New(2, 3, []Flow{{0, 1, 5}, {1, 0, 2}})
	comb, err := Combine(9, []*Coflow{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if comb.ID != 9 || comb.Arrival != 3 {
		t.Fatalf("Combine identity = %+v", comb)
	}
	if comb.TotalBytes() != 17 || comb.NumFlows() != 2 {
		t.Fatalf("Combine content: %v", comb)
	}
	if _, err := Combine(1, nil); err == nil {
		t.Fatal("Combine(nil) should fail")
	}
}

func TestAvgProcTimeAndMisc(t *testing.T) {
	c := New(0, 0, []Flow{{0, 0, 1e6}, {1, 1, 3e6}})
	want := (0.008 + 0.024) / 2
	if got := c.AvgProcTime(gbps); !almostEq(got, want) {
		t.Fatalf("AvgProcTime = %v, want %v", got, want)
	}
	if c.MinFlowBytes() != 1e6 {
		t.Fatalf("MinFlowBytes = %v", c.MinFlowBytes())
	}
	if c.MaxPort() != 2 {
		t.Fatalf("MaxPort = %d", c.MaxPort())
	}
	if New(0, 0, nil).MaxPort() != 0 {
		t.Fatal("MaxPort(empty) should be 0")
	}
}

func TestSendersReceivers(t *testing.T) {
	c := New(0, 0, []Flow{{3, 1, 1}, {0, 1, 1}, {3, 2, 1}})
	s, r := c.Senders(), c.Receivers()
	if len(s) != 2 || s[0] != 0 || s[1] != 3 {
		t.Fatalf("Senders = %v", s)
	}
	if len(r) != 2 || r[0] != 1 || r[1] != 2 {
		t.Fatalf("Receivers = %v", r)
	}
}

// randomCoflow builds a random Coflow with distinct port pairs.
func randomCoflow(rng *rand.Rand, ports, maxFlows int) *Coflow {
	n := 1 + rng.Intn(maxFlows)
	used := map[[2]int]bool{}
	var flows []Flow
	for len(flows) < n {
		i, j := rng.Intn(ports), rng.Intn(ports)
		if used[[2]int{i, j}] {
			continue
		}
		used[[2]int{i, j}] = true
		flows = append(flows, Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(100)) * 1e6})
	}
	return New(rng.Int(), 0, flows)
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	// Property: Normalize is idempotent and preserves total bytes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCoflow(rng, 10, 20)
		n1 := c.Normalize()
		n2 := n1.Normalize()
		if !almostEq(n1.TotalBytes(), c.TotalBytes()) {
			return false
		}
		if len(n1.Flows) != len(n2.Flows) {
			return false
		}
		for i := range n1.Flows {
			if n1.Flows[i] != n2.Flows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundsScaleWithBandwidth(t *testing.T) {
	// Property: TpL scales inversely with bandwidth; TcL(δ=0) == TpL.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCoflow(rng, 6, 10)
		t1 := c.PacketLowerBound(gbps)
		t10 := c.PacketLowerBound(10 * gbps)
		if !almostEq(t1, 10*t10) {
			return false
		}
		return almostEq(c.CircuitLowerBound(gbps, 0), t1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
