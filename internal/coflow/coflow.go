// Package coflow defines the Coflow traffic model used throughout the
// repository: collections of flows that share a common performance goal,
// following Chowdhury and Stoica's Coflow abstraction and the formulation in
// the Sunflow paper (§2.2).
//
// A Coflow is a set of flows, each moving a number of bytes from an input
// port to an output port of a single non-blocking N-port switch. The package
// provides the demand-matrix view used by matrix-decomposition schedulers,
// the sender/receiver classification of Table 4 (one-to-one, one-to-many,
// many-to-one, many-to-many), and the theoretical completion-time lower
// bounds TpL and TcL of §2.4.
package coflow

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Flow is a single point-to-point transfer inside a Coflow: Bytes bytes from
// input port Src to output port Dst. Ports are zero-based indices into the
// fabric.
type Flow struct {
	Src   int
	Dst   int
	Bytes float64
}

// ProcTime returns the data processing time p(i,j) = d(i,j)/B required on the
// circuit [Src, Dst], in seconds, for link bandwidth linkBps in bits per
// second (Equation 1 of the paper).
func (f Flow) ProcTime(linkBps float64) float64 {
	return f.Bytes * 8 / linkBps
}

// Coflow is a collection of flows that share one performance objective. The
// scheduling goal at the intra-Coflow level is to minimize the Coflow
// Completion Time (CCT): the time from Arrival until the last flow finishes.
type Coflow struct {
	// ID identifies the Coflow within a trace. IDs are not required to be
	// dense but must be unique within a workload.
	ID int
	// Arrival is the Coflow arrival time in seconds from the start of the
	// trace. Serialized (intra-Coflow) experiments ignore it.
	Arrival float64
	// Flows lists the member flows. Flows with zero bytes are permitted in
	// the slice but are ignored by all schedulers and bounds.
	Flows []Flow
}

// Class is the sender-to-receiver ratio category of a Coflow (Table 4).
type Class int

// Coflow classes in the order reported by the paper.
const (
	OneToOne Class = iota
	OneToMany
	ManyToOne
	ManyToMany
)

// String returns the abbreviation used in the paper's Table 4.
func (c Class) String() string {
	switch c {
	case OneToOne:
		return "O2O"
	case OneToMany:
		return "O2M"
	case ManyToOne:
		return "M2O"
	case ManyToMany:
		return "M2M"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all classes in presentation order.
var Classes = []Class{OneToOne, OneToMany, ManyToOne, ManyToMany}

// New returns a Coflow with the given id, arrival time and flows. Flows are
// copied, so the caller may reuse the slice.
func New(id int, arrival float64, flows []Flow) *Coflow {
	c := &Coflow{ID: id, Arrival: arrival, Flows: make([]Flow, len(flows))}
	copy(c.Flows, flows)
	return c
}

// Validate reports an error if any flow has a negative size or a port outside
// [0, numPorts), or if two flows share the same (Src, Dst) pair. Schedulers
// assume at most one flow per port pair; merge duplicates with Normalize
// first if needed.
func (c *Coflow) Validate(numPorts int) error {
	seen := make(map[[2]int]bool, len(c.Flows))
	for _, f := range c.Flows {
		if f.Src < 0 || f.Src >= numPorts {
			return fmt.Errorf("coflow %d: src port %d out of range [0,%d)", c.ID, f.Src, numPorts)
		}
		if f.Dst < 0 || f.Dst >= numPorts {
			return fmt.Errorf("coflow %d: dst port %d out of range [0,%d)", c.ID, f.Dst, numPorts)
		}
		if f.Bytes < 0 || math.IsNaN(f.Bytes) || math.IsInf(f.Bytes, 0) {
			return fmt.Errorf("coflow %d: flow %d->%d has invalid size %v", c.ID, f.Src, f.Dst, f.Bytes)
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			return fmt.Errorf("coflow %d: duplicate flow for port pair %d->%d", c.ID, f.Src, f.Dst)
		}
		seen[key] = true
	}
	return nil
}

// Normalize returns a copy of the Coflow with zero-byte flows dropped and
// flows on the same (Src, Dst) pair merged by summing their sizes. Flows are
// sorted by (Src, Dst) so the result is canonical.
func (c *Coflow) Normalize() *Coflow {
	merged := make(map[[2]int]float64)
	for _, f := range c.Flows {
		if f.Bytes > 0 {
			merged[[2]int{f.Src, f.Dst}] += f.Bytes
		}
	}
	flows := make([]Flow, 0, len(merged))
	for k, b := range merged {
		flows = append(flows, Flow{Src: k[0], Dst: k[1], Bytes: b})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	return &Coflow{ID: c.ID, Arrival: c.Arrival, Flows: flows}
}

// Clone returns a deep copy of the Coflow.
func (c *Coflow) Clone() *Coflow {
	return New(c.ID, c.Arrival, c.Flows)
}

// NumFlows returns |C|, the number of flows with non-zero demand.
func (c *Coflow) NumFlows() int {
	n := 0
	for _, f := range c.Flows {
		if f.Bytes > 0 {
			n++
		}
	}
	return n
}

// TotalBytes returns the sum of all flow sizes in bytes.
func (c *Coflow) TotalBytes() float64 {
	var sum float64
	for _, f := range c.Flows {
		sum += f.Bytes
	}
	return sum
}

// MinFlowBytes returns the smallest non-zero flow size, or 0 if the Coflow
// has no demand. It is the denominator of α in Lemma 2.
func (c *Coflow) MinFlowBytes() float64 {
	min := math.Inf(1)
	for _, f := range c.Flows {
		if f.Bytes > 0 && f.Bytes < min {
			min = f.Bytes
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Senders returns the sorted distinct input ports with non-zero demand.
func (c *Coflow) Senders() []int {
	return c.distinctPorts(func(f Flow) int { return f.Src })
}

// Receivers returns the sorted distinct output ports with non-zero demand.
func (c *Coflow) Receivers() []int {
	return c.distinctPorts(func(f Flow) int { return f.Dst })
}

func (c *Coflow) distinctPorts(sel func(Flow) int) []int {
	set := make(map[int]bool)
	for _, f := range c.Flows {
		if f.Bytes > 0 {
			set[sel(f)] = true
		}
	}
	ports := make([]int, 0, len(set))
	for p := range set {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports
}

// Classify returns the Coflow's sender-to-receiver ratio class, as in
// Table 4 of the paper. A Coflow with no demand classifies as OneToOne.
func (c *Coflow) Classify() Class {
	ns, nr := len(c.Senders()), len(c.Receivers())
	switch {
	case ns <= 1 && nr <= 1:
		return OneToOne
	case ns <= 1:
		return OneToMany
	case nr <= 1:
		return ManyToOne
	default:
		return ManyToMany
	}
}

// AvgProcTime returns pavg = Σ p(i,j) / |C|, the average data processing time
// over the Coflow's non-zero flows at link bandwidth linkBps (§5.3.2). It is
// 0 for a Coflow with no demand.
func (c *Coflow) AvgProcTime(linkBps float64) float64 {
	var sum float64
	n := 0
	for _, f := range c.Flows {
		if f.Bytes > 0 {
			sum += f.ProcTime(linkBps)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Alpha returns α = δ / min(d(i,j)/B), the ratio of the circuit
// reconfiguration delay to the shortest flow's processing time (Lemma 2).
// It returns +Inf for a Coflow with no demand.
func (c *Coflow) Alpha(linkBps, delta float64) float64 {
	min := c.MinFlowBytes()
	if min == 0 {
		return math.Inf(1)
	}
	return delta / (min * 8 / linkBps)
}

// DemandMatrix returns the dense n×n demand matrix D in bytes, with rows as
// input ports and columns as output ports. Matrix-decomposition schedulers
// (Solstice, TMS, Edmond) consume this view.
func (c *Coflow) DemandMatrix(n int) [][]float64 {
	d := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range d {
		d[i], buf = buf[:n:n], buf[n:]
	}
	for _, f := range c.Flows {
		d[f.Src][f.Dst] += f.Bytes
	}
	return d
}

// PortSums returns per-input-port and per-output-port byte totals for all
// flows, keyed by port index. Only ports with non-zero demand appear.
func (c *Coflow) PortSums() (in, out map[int]float64) {
	in = make(map[int]float64)
	out = make(map[int]float64)
	for _, f := range c.Flows {
		if f.Bytes > 0 {
			in[f.Src] += f.Bytes
			out[f.Dst] += f.Bytes
		}
	}
	return in, out
}

// PacketLowerBound returns TpL, the CCT lower bound in a packet-switched
// network (Equation 2): the maximum over all ports of the total processing
// time the port must serve.
func (c *Coflow) PacketLowerBound(linkBps float64) float64 {
	in, out := c.PortSums()
	var maxBytes float64
	for _, b := range in {
		maxBytes = math.Max(maxBytes, b)
	}
	for _, b := range out {
		maxBytes = math.Max(maxBytes, b)
	}
	return maxBytes * 8 / linkBps
}

// CircuitLowerBound returns TcL, the CCT lower bound in a circuit-switched
// network under the not-all-stop model (Equations 3 and 4): every flow pays
// at least one reconfiguration delay delta on each of its two ports.
func (c *Coflow) CircuitLowerBound(linkBps, delta float64) float64 {
	inT := make(map[int]float64)
	outT := make(map[int]float64)
	for _, f := range c.Flows {
		if f.Bytes <= 0 {
			continue
		}
		t := f.ProcTime(linkBps) + delta
		inT[f.Src] += t
		outT[f.Dst] += t
	}
	var max float64
	for _, t := range inT {
		max = math.Max(max, t)
	}
	for _, t := range outT {
		max = math.Max(max, t)
	}
	return max
}

// ErrEmpty is returned by Combine when no Coflows are supplied.
var ErrEmpty = errors.New("coflow: no coflows to combine")

// Combine merges several Coflows into a single Coflow with the given id, as
// in the same-priority combining option of §4.2. The combined arrival time is
// the earliest member arrival; flows on the same port pair are merged.
func Combine(id int, coflows []*Coflow) (*Coflow, error) {
	if len(coflows) == 0 {
		return nil, ErrEmpty
	}
	arrival := math.Inf(1)
	var flows []Flow
	for _, c := range coflows {
		arrival = math.Min(arrival, c.Arrival)
		flows = append(flows, c.Flows...)
	}
	combined := &Coflow{ID: id, Arrival: arrival, Flows: flows}
	return combined.Normalize(), nil
}

// MaxPort returns the highest port index referenced by the Coflow plus one,
// i.e. the minimum fabric size able to carry it. A Coflow with no flows needs
// zero ports.
func (c *Coflow) MaxPort() int {
	max := -1
	for _, f := range c.Flows {
		if f.Src > max {
			max = f.Src
		}
		if f.Dst > max {
			max = f.Dst
		}
	}
	return max + 1
}

// String summarizes the Coflow for logs and error messages.
func (c *Coflow) String() string {
	return fmt.Sprintf("coflow %d: %d flows, %.0f bytes, %s, arrival %.3fs",
		c.ID, c.NumFlows(), c.TotalBytes(), c.Classify(), c.Arrival)
}
