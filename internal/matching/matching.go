// Package matching provides the bipartite matching algorithms the circuit
// schedulers are built on: Hopcroft–Karp maximum-cardinality matching (used
// by the Birkhoff–von Neumann decomposition and by Solstice to extract
// perfect matchings from thresholded demand matrices) and the Hungarian
// algorithm for maximum-weight matchings (used by the Edmond baseline, which
// the literature names after Edmonds' matching algorithm even though on a
// bipartite switch fabric the Hungarian method computes the same matching).
//
// Graphs are bipartite with n left vertices (input ports) and n right
// vertices (output ports); a matching is reported as a slice match of length
// n where match[i] is the right vertex matched to left vertex i, or -1.
//
// The package functions in this file are the dense reference kernels: they
// allocate their working state per call and scan the full matrix. The hot
// paths live on Scratch (scratch.go) — bitset adjacency, reusable buffers,
// warm-startable matchings — and are proven bit-identical to these
// references by the seeded differential suite (differential_test.go), per
// DESIGN.md §8.
package matching

// unmatched marks a vertex with no partner.
const unmatched = -1

// HopcroftKarp computes a maximum-cardinality matching of the bipartite graph
// with n left and n right vertices and the given adjacency lists (adj[i]
// lists the right vertices adjacent to left vertex i). It returns the
// left-to-right matching and its size. Runs in O(E·√V).
func HopcroftKarp(n int, adj [][]int) (match []int, size int) {
	matchL := make([]int, n)
	matchR := make([]int, n)
	for i := range matchL {
		matchL[i] = unmatched
		matchR[i] = unmatched
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)

	const inf = int(^uint(0) >> 1)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < n; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < n; u++ {
			if matchL[u] == unmatched && dfs(u) {
				size++
			}
		}
	}
	return matchL, size
}

// PerfectMatchingAbove returns a perfect matching of the n×n matrix using
// only entries with value >= threshold, or nil if no such perfect matching
// exists. It is the matching primitive of Solstice's BigSlice step and of the
// BvN decomposition (where threshold is any positive value selecting the
// non-zero entries).
func PerfectMatchingAbove(m [][]float64, threshold float64) []int {
	n := len(m)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m[i][j] >= threshold && m[i][j] > 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	match, size := HopcroftKarp(n, adj)
	if size < n {
		return nil
	}
	return match
}

// MaxWeightMatching computes a maximum-weight matching of the complete
// bipartite graph whose edge weights are w[i][j] >= 0, using the Hungarian
// algorithm in O(n³). Zero-weight edges are treated as absent: the returned
// matching never pairs a left vertex with a right vertex of zero weight
// (such vertices are reported unmatched, -1), so the result is a
// maximum-weight matching rather than a maximum-weight perfect matching.
// This is the one-assignment-at-a-time primitive of the Edmond scheduler.
func MaxWeightMatching(w [][]float64) []int {
	n := len(w)
	if n == 0 {
		return nil
	}
	// Hungarian algorithm on the cost matrix c = maxW - w would force a
	// perfect matching; instead solve max-weight assignment directly with
	// potentials over weights, then strip zero-weight pairs.
	match := hungarianMax(w)
	for i, j := range match {
		if j >= 0 && w[i][j] <= 0 {
			match[i] = unmatched
		}
	}
	return match
}

// hungarianMax solves the maximum-weight perfect assignment for the n×n
// weight matrix using the potentials ("shortest augmenting path") form of
// the Hungarian algorithm, by minimizing cost c[i][j] = -w[i][j].
func hungarianMax(w [][]float64) []int {
	n := len(w)
	const infIdx = 0
	inf := func() float64 { return 1e300 }

	// 1-based arrays per the classical formulation. minv and used are reset,
	// not reallocated, per assigned row: the augmentation loop runs n times
	// and the old per-row allocations dominated the Hungarian's profile.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j]: left vertex assigned to right j (0 = none)
	way := make([]int, n+1)
	minv := make([]float64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf()
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf()
			j1 := infIdx
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := -w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	match := make([]int, n)
	for i := range match {
		match[i] = unmatched
	}
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			match[p[j]-1] = j - 1
		}
	}
	return match
}

// MatchingWeight sums w[i][match[i]] over matched pairs.
func MatchingWeight(w [][]float64, match []int) float64 {
	var sum float64
	for i, j := range match {
		if j >= 0 {
			sum += w[i][j]
		}
	}
	return sum
}

// IsMatching reports whether match (left-to-right, -1 for unmatched) pairs
// each right vertex at most once. Out-of-range right vertices (>= len(match))
// also fail: on an n-port fabric there are only n output ports.
func IsMatching(match []int) bool {
	seen := make([]bool, len(match))
	for _, j := range match {
		if j < 0 {
			continue
		}
		if j >= len(match) || seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}
