package matching

import "math/bits"

// Scratch is the reusable state of the fast matching kernels. Callers
// allocate one per scheduler (or borrow one from a pool), point it at a
// demand matrix via the adjacency setters, and invoke the matching methods
// repeatedly; no per-call heap allocation happens once the buffers have grown
// to the working size. The adjacency is a bitset: row i holds one bit per
// right vertex, so the Hopcroft–Karp frontier scans are word-parallel (a
// 64-entry row chunk is skipped in one compare when empty) and edge updates
// between successive matchings are O(1) — the property the Birkhoff–von
// Neumann peeling and Solstice's threshold descent exploit, since both carve
// near-identical residual matrices round after round.
//
// The zero value is ready to use; Reset sizes it.
type Scratch struct {
	n     int
	words int
	adj   []uint64 // n rows × words, bit j of row i set iff edge (i, j)

	matchL, matchR []int
	dist           []int
	queue          []int
	colw           []uint64 // column-coverage buffer for FullSupport

	// Hungarian buffers (1-based, lazily sized to n+1).
	hu, hv, hminv []float64
	hp, hway      []int
	hused         []bool
}

const hkInf = int(^uint(0) >> 1)

// Reset sizes the scratch for an n×n bipartite graph and clears the
// adjacency. Matchings carried by the scratch (for MaxMatchingWarm) are
// preserved when n is unchanged and invalidated otherwise.
func (s *Scratch) Reset(n int) {
	words := (n + 63) / 64
	if cap(s.adj) < n*words {
		s.adj = make([]uint64, n*words)
	}
	s.adj = s.adj[:n*words]
	for i := range s.adj {
		s.adj[i] = 0
	}
	if cap(s.matchL) < n {
		s.matchL = make([]int, n)
		s.matchR = make([]int, n)
		s.dist = make([]int, n)
		s.queue = make([]int, 0, n)
	}
	if s.n != n {
		s.matchL = s.matchL[:n]
		s.matchR = s.matchR[:n]
		for i := 0; i < n; i++ {
			s.matchL[i] = unmatched
			s.matchR[i] = unmatched
		}
	}
	s.dist = s.dist[:n]
	s.n = n
	s.words = words
}

// NewScratch returns a Scratch sized for n ports.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.Reset(n)
	return s
}

// N reports the current graph size.
func (s *Scratch) N() int { return s.n }

// SetEdge adds the edge (i, j).
func (s *Scratch) SetEdge(i, j int) { s.adj[i*s.words+j>>6] |= 1 << (uint(j) & 63) }

// ClearEdge removes the edge (i, j).
func (s *Scratch) ClearEdge(i, j int) { s.adj[i*s.words+j>>6] &^= 1 << (uint(j) & 63) }

// HasEdge reports whether the edge (i, j) is present.
func (s *Scratch) HasEdge(i, j int) bool {
	return s.adj[i*s.words+j>>6]&(1<<(uint(j)&63)) != 0
}

// AdjacencyAbove resets the scratch to len(m) vertices and installs an edge
// for every entry with m[i][j] >= threshold and m[i][j] > 0 — the same edge
// set PerfectMatchingAbove builds as adjacency lists.
func (s *Scratch) AdjacencyAbove(m [][]float64, threshold float64) {
	s.Reset(len(m))
	for i, row := range m {
		base := i * s.words
		for j, v := range row {
			if v >= threshold && v > 0 {
				s.adj[base+j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
}

// AdjacencyGreater resets the scratch to len(m) vertices and installs an
// edge for every entry strictly greater than tol — the edge set of
// Solstice's residue-draining maximal matching.
func (s *Scratch) AdjacencyGreater(m [][]float64, tol float64) {
	s.Reset(len(m))
	for i, row := range m {
		base := i * s.words
		for j, v := range row {
			if v > tol {
				s.adj[base+j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
}

// FullSupport reports whether every left vertex has at least one edge and
// every right vertex is covered by some edge — a necessary (not sufficient)
// condition for a perfect matching. Callers probing a descending sequence of
// thresholds use it to skip the Hopcroft–Karp run entirely when the
// adjacency is visibly deficient; when it returns false, MaxMatching is
// guaranteed to return size < n.
func (s *Scratch) FullSupport() bool {
	if cap(s.colw) < s.words {
		s.colw = make([]uint64, s.words)
	}
	s.colw = s.colw[:s.words]
	for w := range s.colw {
		s.colw[w] = 0
	}
	for i := 0; i < s.n; i++ {
		row := s.adj[i*s.words : (i+1)*s.words]
		var any uint64
		for w, word := range row {
			any |= word
			s.colw[w] |= word
		}
		if any == 0 {
			return false
		}
	}
	for j := 0; j < s.n; j += 64 {
		want := ^uint64(0)
		if rem := s.n - j; rem < 64 {
			want = 1<<uint(rem) - 1
		}
		if s.colw[j>>6]&want != want {
			return false
		}
	}
	return true
}

// MaxMatching computes a maximum-cardinality matching over the current
// adjacency from a cold start. It scans left vertices and neighbours in
// ascending order, exactly like HopcroftKarp over ascending adjacency lists,
// so the two produce bit-identical matchings (the differential suite pins
// this). The matching is written into dst (grown as needed) and returned
// with its size; dst aliases scratch-internal state only until the next call.
func (s *Scratch) MaxMatching(dst []int) ([]int, int) {
	for i := 0; i < s.n; i++ {
		s.matchL[i] = unmatched
		s.matchR[i] = unmatched
	}
	size := s.greedySeed()
	if size < s.n {
		size += s.augment()
	}
	return s.exportMatch(dst), size
}

// greedySeed runs the first Hopcroft–Karp phase of a cold start directly:
// with every left vertex free, the phase's shortest augmenting paths all
// have length one, and the BFS labeling plus layered DFS reduce to matching
// each left vertex, in ascending order, to its first still-free neighbour.
// The resulting matching is bit-identical to running the full phase; only
// the full-graph BFS is skipped.
func (s *Scratch) greedySeed() int {
	added := 0
	if s.words == 1 {
		// Single-word rows (n <= 64): the common fabric sizes. Dropping the
		// word loop keeps the whole seed in registers.
		matchL, matchR := s.matchL, s.matchR
		for u := 0; u < s.n; u++ {
			for word := s.adj[u]; word != 0; word &= word - 1 {
				v := bits.TrailingZeros64(word)
				if matchR[v] == unmatched {
					matchL[u] = v
					matchR[v] = u
					added++
					break
				}
			}
		}
		return added
	}
	for u := 0; u < s.n; u++ {
		row := s.adj[u*s.words : (u+1)*s.words]
	seek:
		for wi, word := range row {
			for word != 0 {
				v := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if s.matchR[v] == unmatched {
					s.matchL[u] = v
					s.matchR[v] = u
					added++
					break seek
				}
			}
		}
	}
	return added
}

// MaxMatchingWarm is MaxMatching warm-started from the matching left behind
// by the previous MaxMatching/MaxMatchingWarm call on this scratch: pairs
// whose edge is still present are kept and only the difference is augmented.
// When successive calls see near-identical edge sets — the BvN peeling and
// Solstice slicing regime — most pairs survive and the Hopcroft–Karp phases
// touch only a few augmenting paths. The result is a maximum matching of the
// same size as a cold start, but not necessarily the same pairing, so warm
// starts are reserved for callers that accept any maximum matching.
func (s *Scratch) MaxMatchingWarm(dst []int) ([]int, int) {
	size := 0
	for i := 0; i < s.n; i++ {
		if v := s.matchL[i]; v != unmatched {
			if s.HasEdge(i, v) && s.matchR[v] == i {
				size++
			} else {
				s.matchL[i] = unmatched
			}
		}
	}
	// Sweep right-side stubs whose partner was dropped (or that point at a
	// vertex now matched elsewhere after a size change).
	for j := 0; j < s.n; j++ {
		if u := s.matchR[j]; u != unmatched && s.matchL[u] != j {
			s.matchR[j] = unmatched
		}
	}
	size += s.augment()
	return s.exportMatch(dst), size
}

// augment runs Hopcroft–Karp BFS/DFS phases until no augmenting path exists,
// returning the number of augmentations performed.
func (s *Scratch) augment() int {
	added := 0
	for s.bfs() {
		for u := 0; u < s.n; u++ {
			if s.matchL[u] == unmatched && s.dfs(u) {
				added++
			}
		}
	}
	return added
}

func (s *Scratch) exportMatch(dst []int) []int {
	if cap(dst) < s.n {
		dst = make([]int, s.n)
	}
	dst = dst[:s.n]
	copy(dst, s.matchL)
	return dst
}

func (s *Scratch) bfs() bool {
	q := s.queue[:0]
	dist, matchL, matchR := s.dist, s.matchL, s.matchR
	for u := 0; u < s.n; u++ {
		if matchL[u] == unmatched {
			dist[u] = 0
			q = append(q, u)
		} else {
			dist[u] = hkInf
		}
	}
	found := false
	if s.words == 1 {
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			du := dist[u]
			for word := s.adj[u]; word != 0; word &= word - 1 {
				w := matchR[bits.TrailingZeros64(word)]
				if w == unmatched {
					found = true
				} else if dist[w] == hkInf {
					dist[w] = du + 1
					q = append(q, w)
				}
			}
		}
		s.queue = q
		return found
	}
	for qi := 0; qi < len(q); qi++ {
		u := q[qi]
		du := dist[u]
		row := s.adj[u*s.words : (u+1)*s.words]
		for wi, word := range row {
			for word != 0 {
				v := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == hkInf {
					dist[w] = du + 1
					q = append(q, w)
				}
			}
		}
	}
	s.queue = q
	return found
}

func (s *Scratch) dfs(u int) bool {
	if s.words == 1 {
		return s.dfs1(u)
	}
	du := s.dist[u]
	row := s.adj[u*s.words : (u+1)*s.words]
	for wi, word := range row {
		for word != 0 {
			v := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			w := s.matchR[v]
			if w == unmatched || (s.dist[w] == du+1 && s.dfs(w)) {
				s.matchL[u] = v
				s.matchR[v] = u
				return true
			}
		}
	}
	s.dist[u] = hkInf
	return false
}

// dfs1 is dfs for single-word adjacency rows, visiting the same neighbours in
// the same ascending order.
func (s *Scratch) dfs1(u int) bool {
	du := s.dist[u]
	for word := s.adj[u]; word != 0; word &= word - 1 {
		v := bits.TrailingZeros64(word)
		w := s.matchR[v]
		if w == unmatched || (s.dist[w] == du+1 && s.dfs1(w)) {
			s.matchL[u] = v
			s.matchR[v] = u
			return true
		}
	}
	s.dist[u] = hkInf
	return false
}

// PerfectMatchingAboveInto is the zero-alloc form of PerfectMatchingAbove:
// it installs the thresholded adjacency and returns a perfect matching in
// dst, or nil when none exists. The result is bit-identical to the dense
// reference.
func (s *Scratch) PerfectMatchingAboveInto(m [][]float64, threshold float64, dst []int) []int {
	s.AdjacencyAbove(m, threshold)
	dst, size := s.MaxMatching(dst)
	if size < len(m) {
		return nil
	}
	return dst
}

// MaxWeightMatchingInto is MaxWeightMatching with every working buffer drawn
// from the scratch; only dst (grown as needed) is written. Bit-identical to
// the reference: the shortest-augmenting-path Hungarian iteration below is
// the same statement sequence with the allocations hoisted.
func (s *Scratch) MaxWeightMatchingInto(w [][]float64, dst []int) []int {
	n := len(w)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	s.sizeHungarian(n)
	u, v, minv := s.hu, s.hv, s.hminv
	p, way, used := s.hp, s.hway, s.hused
	for j := 0; j <= n; j++ {
		u[j], v[j] = 0, 0
		p[j], way[j] = 0, 0
	}
	const inf = 1e300
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			row := w[i0-1]
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := -row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	for i := range dst {
		dst[i] = unmatched
	}
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			dst[p[j]-1] = j - 1
		}
	}
	// Strip zero-weight pairs, as MaxWeightMatching documents.
	for i, j := range dst {
		if j >= 0 && w[i][j] <= 0 {
			dst[i] = unmatched
		}
	}
	return dst
}

func (s *Scratch) sizeHungarian(n int) {
	if cap(s.hu) < n+1 {
		s.hu = make([]float64, n+1)
		s.hv = make([]float64, n+1)
		s.hminv = make([]float64, n+1)
		s.hp = make([]int, n+1)
		s.hway = make([]int, n+1)
		s.hused = make([]bool, n+1)
	}
	s.hu = s.hu[:n+1]
	s.hv = s.hv[:n+1]
	s.hminv = s.hminv[:n+1]
	s.hp = s.hp[:n+1]
	s.hway = s.hway[:n+1]
	s.hused = s.hused[:n+1]
}
