package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHopcroftKarpPerfect(t *testing.T) {
	// Complete bipartite graph has a perfect matching.
	n := 5
	adj := make([][]int, n)
	for i := range adj {
		for j := 0; j < n; j++ {
			adj[i] = append(adj[i], j)
		}
	}
	match, size := HopcroftKarp(n, adj)
	if size != n {
		t.Fatalf("size = %d, want %d", size, n)
	}
	if !IsMatching(match) {
		t.Fatalf("not a matching: %v", match)
	}
}

func TestHopcroftKarpPartial(t *testing.T) {
	// Two left vertices contend for the same single right vertex.
	adj := [][]int{{0}, {0}, {1}}
	match, size := HopcroftKarp(3, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	if !IsMatching(match) {
		t.Fatalf("not a matching: %v", match)
	}
}

func TestHopcroftKarpAugments(t *testing.T) {
	// Requires an augmenting path: greedy left-to-right would match 0-0 and
	// strand vertex 1.
	adj := [][]int{{0, 1}, {0}}
	_, size := HopcroftKarp(2, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2 (augmenting path missed)", size)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	match, size := HopcroftKarp(3, make([][]int, 3))
	if size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
	for _, m := range match {
		if m != -1 {
			t.Fatalf("unexpected match %v", match)
		}
	}
}

func TestPerfectMatchingAbove(t *testing.T) {
	m := [][]float64{
		{5, 1},
		{1, 5},
	}
	if got := PerfectMatchingAbove(m, 2); got == nil || got[0] != 0 || got[1] != 1 {
		t.Fatalf("threshold 2: got %v, want identity", got)
	}
	if got := PerfectMatchingAbove(m, 10); got != nil {
		t.Fatalf("threshold 10: got %v, want nil", got)
	}
	// Zero entries are never used, even with threshold 0.
	z := [][]float64{{0, 1}, {0, 1}}
	if got := PerfectMatchingAbove(z, 0); got != nil {
		t.Fatalf("zero columns: got %v, want nil", got)
	}
}

func TestMaxWeightMatchingSimple(t *testing.T) {
	w := [][]float64{
		{10, 2},
		{2, 10},
	}
	match := MaxWeightMatching(w)
	if MatchingWeight(w, match) != 20 {
		t.Fatalf("weight = %v, want 20 (match %v)", MatchingWeight(w, match), match)
	}
}

func TestMaxWeightMatchingPrefersTotal(t *testing.T) {
	// Greedy would take 10 at (0,0) for a total of 10+1=11; optimum is
	// 9+9=18.
	w := [][]float64{
		{10, 9},
		{9, 1},
	}
	match := MaxWeightMatching(w)
	if got := MatchingWeight(w, match); got != 18 {
		t.Fatalf("weight = %v, want 18 (match %v)", got, match)
	}
}

func TestMaxWeightMatchingSkipsZeros(t *testing.T) {
	w := [][]float64{
		{5, 0},
		{0, 0},
	}
	match := MaxWeightMatching(w)
	if match[0] != 0 {
		t.Fatalf("match[0] = %d, want 0", match[0])
	}
	if match[1] != -1 {
		t.Fatalf("match[1] = %d, want -1 (zero-weight edge used)", match[1])
	}
}

func TestMaxWeightMatchingEmpty(t *testing.T) {
	if got := MaxWeightMatching(nil); got != nil {
		t.Fatalf("MaxWeightMatching(nil) = %v", got)
	}
}

// bruteForceMax computes the optimum assignment weight by enumerating
// permutations (small n only).
func bruteForceMax(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 0.0
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var sum float64
			for i, j := range perm {
				sum += w[i][j]
			}
			if sum > best {
				best = sum
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestQuickMaxWeightMatchesBruteForce(t *testing.T) {
	// Property: the Hungarian result equals brute force on random matrices
	// up to 6x6.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(50))
			}
		}
		match := MaxWeightMatching(w)
		if !IsMatching(match) {
			return false
		}
		got := MatchingWeight(w, match)
		want := bruteForceMax(w)
		return got >= want-1e-9 && got <= want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHopcroftKarpMaximal(t *testing.T) {
	// Property: HK produces a valid matching and no single edge can extend
	// it (maximality is implied by maximum cardinality).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		adj := make([][]int, n)
		for i := range adj {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		match, size := HopcroftKarp(n, adj)
		if !IsMatching(match) {
			return false
		}
		got := 0
		for _, m := range match {
			if m >= 0 {
				got++
			}
		}
		if got != size {
			return false
		}
		// No free left vertex may have a free right neighbour.
		matchedR := map[int]bool{}
		for _, m := range match {
			if m >= 0 {
				matchedR[m] = true
			}
		}
		for i, m := range match {
			if m >= 0 {
				continue
			}
			for _, j := range adj[i] {
				if !matchedR[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
