package matching

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Differential harness for the Scratch kernels: every property drives the
// bitset/zero-alloc fast path and the dense reference over the same inputs
// and requires bit-identical results. The matching kernels feed the BvN
// decomposition and the Solstice slicer, whose own differential suites
// assume matching-level exactness, so the bar here is reflect.DeepEqual,
// not size equality.

// quickCount mirrors internal/core's differential iteration floor.
const quickCount = 200

// randomMatrix draws an n×n non-negative matrix with the given density of
// positive entries.
func randomMatrix(rng *rand.Rand, n int, density float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if rng.Float64() < density {
				m[i][j] = rng.Float64() * 100
			}
		}
	}
	return m
}

// adjacencyAbove builds the reference adjacency lists (ascending neighbour
// order) for entries >= threshold, as PerfectMatchingAbove does.
func adjacencyAbove(m [][]float64, threshold float64) [][]int {
	n := len(m)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m[i][j] >= threshold && m[i][j] > 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// TestQuickScratchMatchesHopcroftKarp: a cold Scratch.MaxMatching over the
// bitset adjacency equals HopcroftKarp over ascending adjacency lists, match
// slice and size, bit for bit.
func TestQuickScratchMatchesHopcroftKarp(t *testing.T) {
	s := &Scratch{}
	var dst []int
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		m := randomMatrix(rng, n, []float64{0.05, 0.2, 0.5, 0.95}[rng.Intn(4)])
		threshold := rng.Float64() * 50

		refMatch, refSize := HopcroftKarp(n, adjacencyAbove(m, threshold))
		s.AdjacencyAbove(m, threshold)
		var size int
		dst, size = s.MaxMatching(dst)

		if size != refSize || !reflect.DeepEqual(dst, refMatch) {
			t.Logf("seed %d: fast %v (%d) != ref %v (%d)", seed, dst, size, refMatch, refSize)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPerfectMatchingAboveInto: the scratch form of the Solstice/BvN
// matching primitive agrees with the dense reference, including on the
// nil (no perfect matching) side.
func TestQuickPerfectMatchingAboveInto(t *testing.T) {
	s := &Scratch{}
	var dst []int
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		m := randomMatrix(rng, n, 0.3+0.7*rng.Float64())
		threshold := rng.Float64() * 20

		ref := PerfectMatchingAbove(m, threshold)
		got := s.PerfectMatchingAboveInto(m, threshold, dst)
		if got != nil {
			dst = got
		}
		if (ref == nil) != (got == nil) {
			return false
		}
		return ref == nil || reflect.DeepEqual(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWarmMatchingIsMaximum: warm starts may legitimately pick a
// different maximum matching, so the property is size equality with the cold
// reference plus structural validity — over a peeling sequence of shrinking
// edge sets, the regime warm starts exist for.
func TestQuickWarmMatchingIsMaximum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		m := randomMatrix(rng, n, 0.4+0.6*rng.Float64())
		s := NewScratch(n)
		s.AdjacencyAbove(m, 0)
		var dst []int
		dst, _ = s.MaxMatching(dst)
		for round := 0; round < 6; round++ {
			// Peel a few random edges, as a decomposition round would.
			for k := 0; k < 1+rng.Intn(3); k++ {
				i, j := rng.Intn(n), rng.Intn(n)
				m[i][j] = 0
				s.ClearEdge(i, j)
			}
			var size int
			dst, size = s.MaxMatchingWarm(dst)
			_, refSize := HopcroftKarp(n, adjacencyAbove(m, 0))
			if size != refSize {
				t.Logf("seed %d round %d: warm size %d != cold %d", seed, round, size, refSize)
				return false
			}
			if !IsMatching(dst) {
				return false
			}
			matched := 0
			for i, j := range dst {
				if j < 0 {
					continue
				}
				matched++
				if m[i][j] <= 0 {
					t.Logf("seed %d: warm matching uses removed edge (%d,%d)", seed, i, j)
					return false
				}
			}
			if matched != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScratchHungarianMatchesReference: the zero-alloc Hungarian equals
// the dense reference bit for bit — same potentials walk, same matching,
// same zero-weight stripping.
func TestQuickScratchHungarianMatchesReference(t *testing.T) {
	s := &Scratch{}
	var dst []int
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		w := randomMatrix(rng, n, []float64{0.1, 0.5, 1.0}[rng.Intn(3)])

		ref := MaxWeightMatching(w)
		dst = s.MaxWeightMatchingInto(w, dst)
		if !reflect.DeepEqual(dst, ref) {
			t.Logf("seed %d: fast %v != ref %v", seed, dst, ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchZeroAlloc pins the point of the Scratch: once warm, repeated
// matchings over same-sized inputs do not allocate.
func TestScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 32
	m := randomMatrix(rng, n, 0.4)
	w := randomMatrix(rng, n, 0.8)
	s := NewScratch(n)
	dst := make([]int, n)
	if avg := testing.AllocsPerRun(50, func() {
		s.AdjacencyAbove(m, 0)
		dst, _ = s.MaxMatching(dst)
	}); avg != 0 {
		t.Errorf("MaxMatching allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		dst = s.MaxWeightMatchingInto(w, dst)
	}); avg != 0 {
		t.Errorf("MaxWeightMatchingInto allocates %.1f/op, want 0", avg)
	}
}

func TestIsMatchingTable(t *testing.T) {
	cases := []struct {
		name  string
		match []int
		want  bool
	}{
		{"empty", nil, true},
		{"all unmatched", []int{-1, -1}, true},
		{"valid perm", []int{2, 0, 1}, true},
		{"duplicate", []int{1, 1, -1}, false},
		{"out of range", []int{0, 3, 1}, false},
		{"negative treated unmatched", []int{-1, 0, -1}, true},
	}
	for _, tc := range cases {
		if got := IsMatching(tc.match); got != tc.want {
			t.Errorf("%s: IsMatching(%v) = %v, want %v", tc.name, tc.match, got, tc.want)
		}
	}
}
