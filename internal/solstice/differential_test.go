package solstice_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/bench"
	"sunflow/internal/coflow"
	"sunflow/internal/solstice"
)

// Differential harness: the pooled fast path (Schedule on a Stuffer) must
// reproduce ScheduleReference bit for bit — assignments, stats and errors —
// over random Coflows and over Facebook-trace-derived workloads.

const quickCount = 200

func randomCoflow(rng *rand.Rand, ports int) *coflow.Coflow {
	nf := 1 + rng.Intn(3*ports)
	c := &coflow.Coflow{ID: 1}
	for f := 0; f < nf; f++ {
		c.Flows = append(c.Flows, coflow.Flow{
			Src:   rng.Intn(ports),
			Dst:   rng.Intn(ports),
			Bytes: float64(1+rng.Intn(1<<20)) * 1024,
		})
	}
	return c
}

func facebookCoflows(ports, count int) []*coflow.Coflow {
	return bench.Config{Seed: 11, Ports: ports, Coflows: count, MaxWidth: 8}.Workload()
}

func TestQuickScheduleMatchesReference(t *testing.T) {
	pool := facebookCoflows(16, 40)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ports := 2 + rng.Intn(15)
		var c *coflow.Coflow
		if rng.Intn(3) == 0 {
			c = pool[rng.Intn(len(pool))]
			ports = 16
		} else {
			c = randomCoflow(rng, ports)
		}
		opts := solstice.Options{
			LinkBps: []float64{1e9, 1e10}[rng.Intn(2)],
			Delta:   []float64{0.01, 0.001, 0}[rng.Intn(3)],
		}
		refAsg, refStats, refErr := solstice.ScheduleReference(c, ports, opts)
		fastAsg, fastStats, fastErr := solstice.Schedule(c, ports, opts)
		if (refErr == nil) != (fastErr == nil) {
			t.Logf("seed %d: error divergence ref=%v fast=%v", seed, refErr, fastErr)
			return false
		}
		if refErr != nil {
			return refErr.Error() == fastErr.Error()
		}
		if fastStats != refStats {
			t.Logf("seed %d: stats diverge %+v vs %+v", seed, fastStats, refStats)
			return false
		}
		if !reflect.DeepEqual(fastAsg, refAsg) {
			t.Logf("seed %d: assignments diverge (%d vs %d)", seed, len(fastAsg), len(refAsg))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount}); err != nil {
		t.Fatal(err)
	}
}

// TestStufferReuse: one Stuffer scheduling many Coflows of varying port
// counts back to back must not leak state between calls.
func TestStufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := solstice.NewStuffer(2)
	opts := solstice.Options{LinkBps: 1e9, Delta: 0.01}
	for trial := 0; trial < 60; trial++ {
		ports := 1 + rng.Intn(12)
		c := randomCoflow(rng, ports)
		refAsg, refStats, refErr := solstice.ScheduleReference(c, ports, opts)
		fastAsg, fastStats, fastErr := st.Schedule(c, ports, opts)
		if (refErr == nil) != (fastErr == nil) || fastStats != refStats || !reflect.DeepEqual(fastAsg, refAsg) {
			t.Fatalf("trial %d (ports=%d): fast path diverged from reference", trial, ports)
		}
	}
}

// TestScheduleErrorPaths pins the validation errors on both implementations.
func TestScheduleErrorPaths(t *testing.T) {
	c := &coflow.Coflow{ID: 1, Flows: []coflow.Flow{{Src: 0, Dst: 1, Bytes: 1}}}
	if _, _, err := solstice.Schedule(c, 0, solstice.Options{LinkBps: 1e9}); err == nil {
		t.Error("want error for zero ports")
	}
	if _, _, err := solstice.Schedule(c, 4, solstice.Options{}); err == nil {
		t.Error("want error for zero bandwidth")
	}
	bad := &coflow.Coflow{ID: 1, Flows: []coflow.Flow{{Src: 9, Dst: 1, Bytes: 1}}}
	if _, _, err := solstice.Schedule(bad, 4, solstice.Options{LinkBps: 1e9}); err == nil {
		t.Error("want error for out-of-range flow")
	}
}
