// Package solstice implements the Solstice circuit scheduler (Liu et al.,
// CoNEXT 2015), the strongest preemptive baseline in the Sunflow paper's
// intra-Coflow evaluation (§5.2). Solstice stuffs the demand matrix to equal
// line sums (QuickStuff) and then extracts perfect matchings of "long"
// entries with a threshold-halving loop (BigSlice), producing a sequence of
// circuit assignments whose durations shrink geometrically.
//
// Schedule runs on a pooled Stuffer — reusable arena matrices, bitset
// matching scratch and incrementally maintained row maxima — and is proven
// bit-identical to ScheduleReference, the retained dense implementation, by
// the seeded differential suite (DESIGN.md §8).
package solstice

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"sunflow/internal/bvn"
	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/matching"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// Options configures the scheduler.
type Options struct {
	// LinkBps is the link bandwidth B in bits/s.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds. Solstice uses
	// it to size the quantization slot (δ/10) so slices below the switching
	// timescale are never scheduled; the executor charges the actual δ per
	// reconfiguration.
	Delta float64
	// Obs optionally records scheduling metrics (pass counts, wall time,
	// assignments produced) and, via the executor, circuit and delivery
	// counters. Nil disables instrumentation.
	Obs *obs.Observer
	// Prof optionally records profiling spans: Run wraps the schedule in
	// "sched.pass" and the fabric execution in "fabric.execute"; Schedule
	// records "solstice.stuff" (QuickStuff) and "solstice.slice" (BigSlice)
	// children. Nil disables span recording.
	Prof *span.Stack
}

// Stats reports details of one scheduling run.
type Stats struct {
	// Assignments is the number of configurations produced.
	Assignments int
	// StuffedBytes is the dummy demand added by QuickStuff.
	StuffedBytes float64
	// TotalDuration is the sum of assignment durations (transmission time,
	// excluding reconfiguration).
	TotalDuration float64
}

// ErrTooSmall is returned for an empty port count.
var ErrTooSmall = errors.New("solstice: need at least one port")

// Stuffer holds the reusable scheduling state of one Solstice instance: the
// processing-time matrix arena, the bvn stuffing arena, the bitset matching
// scratch and the previous assignment (Solstice's own warm start — a
// matching still feasible at the current threshold is extended rather than
// recomputed). The scratch's adjacency is maintained incrementally: peeling
// clears the edges of entries that fall below the active threshold, so a
// full O(N²) rebuild happens only when the threshold itself changes.
// Allocate one per scheduler goroutine and reuse it across Coflows; Schedule
// borrows one from a package pool.
type Stuffer struct {
	dec     bvn.Decomposer
	scratch matching.Scratch
	pwork   []float64
	p       [][]float64
	match   []int
	prev    []int
	prevOK  bool
	adjMode int8    // which edge set the scratch currently holds
	adjR    float64 // threshold of the adjacency when adjMode == adjThreshold
}

const (
	adjNone      int8 = iota // scratch adjacency is stale
	adjThreshold             // edges are entries >= adjR (threshold phase)
	adjResidue               // edges are entries > tol (residue phase)
)

// NewStuffer returns a Stuffer sized for n ports; it grows on demand.
func NewStuffer(n int) *Stuffer {
	st := &Stuffer{}
	st.resize(n)
	return st
}

func (st *Stuffer) resize(n int) {
	if cap(st.pwork) < n*n {
		st.pwork = make([]float64, n*n)
		st.p = make([][]float64, n)
		st.match = make([]int, n)
		st.prev = make([]int, n)
	}
	st.p = st.p[:n]
	for i := 0; i < n; i++ {
		st.p[i] = st.pwork[i*n : (i+1)*n : (i+1)*n]
	}
	st.match = st.match[:n]
	st.prev = st.prev[:n]
}

var stufferPool = sync.Pool{New: func() any { return new(Stuffer) }}

// Schedule computes Solstice's assignment sequence for one Coflow demand on
// an n-port switch using a Stuffer borrowed from a package pool. Durations
// are in seconds of transmission time; the executor in package fabric adds δ
// per changed circuit.
func Schedule(c *coflow.Coflow, n int, opts Options) ([]fabric.Assignment, Stats, error) {
	st := stufferPool.Get().(*Stuffer)
	defer stufferPool.Put(st)
	return st.Schedule(c, n, opts)
}

// Schedule is the fast scheduling path over this Stuffer's reusable state.
// It is bit-identical to ScheduleReference.
func (st *Stuffer) Schedule(c *coflow.Coflow, n int, opts Options) ([]fabric.Assignment, Stats, error) {
	var stats Stats
	if n <= 0 {
		return nil, stats, ErrTooSmall
	}
	if opts.LinkBps <= 0 {
		return nil, stats, fmt.Errorf("solstice: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	if err := c.Validate(n); err != nil {
		return nil, stats, err
	}
	st.resize(n)

	// Accumulate demand bytes straight into the arena and scale to
	// processing time with the reference's exact operation order
	// (DemandMatrix accumulation, then *8 and /B per entry).
	p := st.p
	for i := range p {
		row := p[i]
		for j := range row {
			row[j] = 0
		}
	}
	for _, f := range c.Flows {
		p[f.Src][f.Dst] += f.Bytes
	}
	for i := range p {
		for j := range p[i] {
			p[i][j] = p[i][j] * 8 / opts.LinkBps
		}
	}

	// Quantize demand up to slot multiples before stuffing — see
	// ScheduleReference for the rationale.
	minPos := math.Inf(1)
	for i := range p {
		for j := range p[i] {
			if v := p[i][j]; v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	slot := math.Min(opts.Delta/10, minPos/2)
	if slot > 0 && !math.IsInf(slot, 1) {
		for i := range p {
			for j := range p[i] {
				if p[i][j] > 0 {
					p[i][j] = math.Ceil(p[i][j]/slot) * slot
				}
			}
		}
	} else {
		slot = 0
	}

	ssp := opts.Prof.Start("solstice.stuff")
	stuffed, added := st.dec.Stuff(p)
	ssp.Finish()
	stats.StuffedBytes = added * opts.LinkBps / 8

	bsp := opts.Prof.Start("solstice.slice")
	asg, err := st.bigSlice(stuffed, slot)
	bsp.Finish()
	if err != nil {
		return nil, stats, err
	}
	stats.Assignments = len(asg)
	for _, a := range asg {
		stats.TotalDuration += a.Duration
	}
	return asg, stats, nil
}

// bigSlice is the fast BigSlice decomposition: it peels the stuffed matrix
// in place (the matrix is the Stuffer's own arena), replaces the reference's
// per-round O(N²) maxEntry sweep with a count of entries above tol (the loop
// only needs to know whether any remain — maxEntry(w) > tol ⟺ the count is
// positive), and maintains the scratch's adjacency bitset edge by edge while
// peeling, so the O(N²) rebuild happens only when the threshold halves. The
// previous matching is extended whenever still feasible, exactly as in the
// reference.
func (st *Stuffer) bigSlice(w [][]float64, slot float64) ([]fabric.Assignment, error) {
	n := len(w)
	tol := 1e-11 * (1 + st.dec.MaxLineSum(w))
	// One dense sweep: the starting threshold needs the true maximum, the
	// loop needs the population above tol.
	var max float64
	pos := 0
	for _, row := range w {
		for _, v := range row {
			if v > max {
				max = v
			}
			if v > tol {
				pos++
			}
		}
	}
	if max <= tol {
		return nil, nil
	}
	var r float64
	if slot > 0 {
		r = slot * math.Pow(2, math.Ceil(math.Log2(max/slot)))
	} else {
		r = math.Pow(2, math.Ceil(math.Log2(max)))
	}

	var out []fabric.Assignment
	st.prevOK = false
	st.adjMode = adjNone
	guard := 0
	for pos > 0 {
		guard++
		if guard > 64*n*n+4096 {
			return nil, fmt.Errorf("solstice: decomposition failed to converge (n=%d)", n)
		}
		if r > tol && (slot == 0 || r >= slot-tol) {
			var match []int
			if st.prevOK && feasibleAt(w, st.prev, r) {
				match = st.prev
			} else {
				if st.adjMode != adjThreshold || st.adjR != r {
					st.scratch.AdjacencyAbove(w, r)
					st.adjMode, st.adjR = adjThreshold, r
				}
				// An empty row or uncovered column already rules out a
				// perfect matching; skip the Hopcroft–Karp run (which would
				// return size < n) and halve immediately.
				if st.scratch.FullSupport() {
					var size int
					st.match, size = st.scratch.MaxMatching(st.match)
					if size == n {
						match = st.match
					}
				}
			}
			if match == nil {
				r /= 2
				continue
			}
			pos -= st.peel(w, match, r, tol)
			out = append(out, fabric.Assignment{Match: append([]int(nil), match...), Duration: r})
			copy(st.prev, match)
			st.prevOK = true
			continue
		}
		// Imbalanced residue: drain whatever maximal matching the positive
		// entries admit, sized by its smallest member.
		if st.adjMode != adjResidue {
			st.scratch.AdjacencyGreater(w, tol)
			st.adjMode = adjResidue
		}
		var size int
		st.match, size = st.scratch.MaxMatching(st.match)
		if size == 0 {
			break
		}
		match := st.match
		dur := math.Inf(1)
		for i, j := range match {
			if j >= 0 && w[i][j] > tol && w[i][j] < dur {
				dur = w[i][j]
			}
		}
		if math.IsInf(dur, 1) {
			break
		}
		pos -= st.peelPartial(w, match, dur, tol)
		out = append(out, fabric.Assignment{Match: append([]int(nil), match...), Duration: dur})
		st.prevOK = false
	}
	return out, nil
}

// peel subtracts r from every matched entry, zeroes residue below tol,
// clears the adjacency edges of entries that fell below the adjacency's
// threshold, and returns how many entries left the above-tol population.
// Matched entries were at least r > tol before the subtraction.
func (st *Stuffer) peel(w [][]float64, match []int, r, tol float64) int {
	dropped := 0
	for i, j := range match {
		v := w[i][j] - r
		if v < tol {
			v = 0
		}
		w[i][j] = v
		if !(v > tol) {
			dropped++
		}
		// The adjacency tracks threshold st.adjR (which can lag r when the
		// previous matching was reused without a rebuild); values only
		// decrease, so edges only disappear.
		if v < st.adjR {
			st.scratch.ClearEdge(i, j)
		}
	}
	return dropped
}

// peelPartial is peel for a partial residue matching (unmatched rows
// untouched, adjacency maintained against the strict > tol edge set).
func (st *Stuffer) peelPartial(w [][]float64, match []int, dur, tol float64) int {
	dropped := 0
	for i, j := range match {
		if j < 0 {
			continue
		}
		v := w[i][j] - dur
		if v < tol {
			v = 0
		}
		w[i][j] = v
		if !(v > tol) {
			dropped++
			st.scratch.ClearEdge(i, j)
		}
	}
	return dropped
}

// ScheduleReference is the retained dense implementation — per-call matrix
// clones, adjacency lists rebuilt per matching, O(N²) maxEntry sweeps. It is
// the oracle of the differential suite and a debugging fallback.
func ScheduleReference(c *coflow.Coflow, n int, opts Options) ([]fabric.Assignment, Stats, error) {
	var st Stats
	if n <= 0 {
		return nil, st, ErrTooSmall
	}
	if opts.LinkBps <= 0 {
		return nil, st, fmt.Errorf("solstice: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	if err := c.Validate(n); err != nil {
		return nil, st, err
	}

	// Work in processing-time units (seconds), as the decomposition's slot
	// durations are times.
	d := c.DemandMatrix(n)
	p := make([][]float64, n)
	for i := range d {
		p[i] = make([]float64, n)
		for j := range d[i] {
			p[i][j] = d[i][j] * 8 / opts.LinkBps
		}
	}

	// Quantize demand up to slot multiples before stuffing, as Solstice
	// does: with every entry a multiple of the slot, the power-of-two
	// threshold descent slices each entry along its binary digits and
	// terminates at r = slot, instead of fragmenting remainders into
	// ever-smaller slices that each pay δ. The slot tracks the smaller of
	// the switching timescale and the demand quantum, so fast links with
	// tiny flows still slice at the granularity of their demand. The
	// over-allocation (< one slot per flow) simply idles on the circuit.
	minPos := math.Inf(1)
	for i := range p {
		for j := range p[i] {
			if v := p[i][j]; v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	slot := math.Min(opts.Delta/10, minPos/2)
	if slot > 0 && !math.IsInf(slot, 1) {
		for i := range p {
			for j := range p[i] {
				if p[i][j] > 0 {
					p[i][j] = math.Ceil(p[i][j]/slot) * slot
				}
			}
		}
	} else {
		slot = 0
	}

	stuffed, added := bvn.Stuff(p)
	st.StuffedBytes = added * opts.LinkBps / 8

	asg, err := bigSliceReference(stuffed, slot)
	if err != nil {
		return nil, st, err
	}
	st.Assignments = len(asg)
	for _, a := range asg {
		st.TotalDuration += a.Duration
	}
	return asg, st, nil
}

// bigSliceReference decomposes the stuffed processing-time matrix into
// assignments with Solstice's BigSlice strategy: the slice length r starts
// at the smallest power of two covering the biggest entry and halves
// whenever no perfect matching exists over entries of at least r; a found
// matching is scheduled for exactly r seconds. Long slices therefore come
// first, and a demand entry is generally split across several slices at
// different r — the source of Solstice's extra circuit establishments
// (Figure 5 of the Sunflow paper).
//
// When the previous matching is still feasible at the current threshold it
// is reused, so consecutive identical assignments merge into one continuous
// circuit at execution time. This keeps single-row and single-column
// Coflows near the behaviour §5.3.1 describes (effectively one flow per
// assignment) without changing the dense-Coflow characteristics.
// Floating-point residue from the stuffing is swept up by a final
// maximal-matching phase sized by the smallest matched entry.
func bigSliceReference(m [][]float64, slot float64) ([]fabric.Assignment, error) {
	n := len(m)
	w := bvn.Clone(m)
	max := maxEntry(w)
	// Residue below tol (relative to the schedule's scale) is noise from
	// stuffing arithmetic, not demand.
	tol := 1e-11 * (1 + bvn.MaxLineSum(m))
	if max <= tol {
		return nil, nil
	}
	// Slice lengths are powers of two in slot units, so quantized entries
	// are carved exactly along their binary digits and the descent stops at
	// one slot.
	var r float64
	if slot > 0 {
		r = slot * math.Pow(2, math.Ceil(math.Log2(max/slot)))
	} else {
		r = math.Pow(2, math.Ceil(math.Log2(max)))
	}

	var out []fabric.Assignment
	var prev []int
	guard := 0
	for maxEntry(w) > tol {
		guard++
		if guard > 64*n*n+4096 {
			return nil, fmt.Errorf("solstice: decomposition failed to converge (n=%d)", n)
		}
		if r > tol && (slot == 0 || r >= slot-tol) {
			match := prev
			if !feasibleAt(w, match, r) {
				match = matching.PerfectMatchingAbove(w, r)
			}
			if match == nil {
				r /= 2
				continue
			}
			for i, j := range match {
				w[i][j] -= r
				if w[i][j] < tol {
					w[i][j] = 0
				}
			}
			out = append(out, fabric.Assignment{Match: append([]int(nil), match...), Duration: r})
			prev = match
			continue
		}
		// Imbalanced residue: a perfect matching may no longer exist; drain
		// whatever maximal matching the positive entries admit, sized by its
		// smallest member.
		match := maximalMatchingAbove(w, tol)
		if match == nil {
			break
		}
		dur := math.Inf(1)
		for i, j := range match {
			if j >= 0 && w[i][j] > tol && w[i][j] < dur {
				dur = w[i][j]
			}
		}
		if math.IsInf(dur, 1) {
			break
		}
		for i, j := range match {
			if j < 0 {
				continue
			}
			w[i][j] -= dur
			if w[i][j] < tol {
				w[i][j] = 0
			}
		}
		out = append(out, fabric.Assignment{Match: append([]int(nil), match...), Duration: dur})
		prev = nil
	}
	return out, nil
}

// feasibleAt reports whether every circuit of match still has at least r
// demand, i.e. the previous assignment can simply be extended.
func feasibleAt(w [][]float64, match []int, r float64) bool {
	if match == nil {
		return false
	}
	for i, j := range match {
		if j < 0 || w[i][j] < r {
			return false
		}
	}
	return true
}

// maximalMatchingAbove returns a maximum-cardinality matching over entries
// greater than tol, or nil when none exist. Unlike PerfectMatchingAbove it
// accepts partial matchings.
func maximalMatchingAbove(w [][]float64, tol float64) []int {
	n := len(w)
	adj := make([][]int, n)
	any := false
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w[i][j] > tol {
				adj[i] = append(adj[i], j)
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	match, size := matching.HopcroftKarp(n, adj)
	if size == 0 {
		return nil
	}
	return match
}

func maxEntry(m [][]float64) float64 {
	var max float64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Run schedules the Coflow and executes the result on the fabric, returning
// the execution outcome. It is the one-call entry point used by the
// intra-Coflow experiments.
func Run(c *coflow.Coflow, n int, opts Options, model fabric.Model) (fabric.ExecResult, Stats, error) {
	passStart := time.Now()
	psp := opts.Prof.Start("sched.pass")
	asg, st, err := Schedule(c, n, opts)
	elapsed := time.Since(passStart).Seconds()
	psp.FinishWith(elapsed)
	if o := opts.Obs; o != nil {
		o.SchedPasses.Inc()
		o.SchedSeconds.Add(elapsed)
		o.SchedPassTime.Observe(elapsed)
		o.Reservations.Add(int64(st.Assignments))
	}
	if err != nil {
		return fabric.ExecResult{}, st, err
	}
	esp := opts.Prof.Start("fabric.execute")
	res, err := fabric.ExecuteObs(c.DemandMatrix(n), asg, opts.LinkBps, opts.Delta, 0, model, opts.Obs)
	esp.Finish()
	return res, st, err
}
