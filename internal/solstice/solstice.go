// Package solstice implements the Solstice circuit scheduler (Liu et al.,
// CoNEXT 2015), the strongest preemptive baseline in the Sunflow paper's
// intra-Coflow evaluation (§5.2). Solstice stuffs the demand matrix to equal
// line sums (QuickStuff) and then extracts perfect matchings of "long"
// entries with a threshold-halving loop (BigSlice), producing a sequence of
// circuit assignments whose durations shrink geometrically.
package solstice

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sunflow/internal/bvn"
	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/matching"
	"sunflow/internal/obs"
)

// Options configures the scheduler.
type Options struct {
	// LinkBps is the link bandwidth B in bits/s.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds. Solstice uses
	// it to size the quantization slot (δ/10) so slices below the switching
	// timescale are never scheduled; the executor charges the actual δ per
	// reconfiguration.
	Delta float64
	// Obs optionally records scheduling metrics (pass counts, wall time,
	// assignments produced) and, via the executor, circuit and delivery
	// counters. Nil disables instrumentation.
	Obs *obs.Observer
}

// Stats reports details of one scheduling run.
type Stats struct {
	// Assignments is the number of configurations produced.
	Assignments int
	// StuffedBytes is the dummy demand added by QuickStuff.
	StuffedBytes float64
	// TotalDuration is the sum of assignment durations (transmission time,
	// excluding reconfiguration).
	TotalDuration float64
}

// ErrTooSmall is returned for an empty port count.
var ErrTooSmall = errors.New("solstice: need at least one port")

// Schedule computes Solstice's assignment sequence for one Coflow demand on
// an n-port switch. Durations are in seconds of transmission time; the
// executor in package fabric adds δ per changed circuit.
func Schedule(c *coflow.Coflow, n int, opts Options) ([]fabric.Assignment, Stats, error) {
	var st Stats
	if n <= 0 {
		return nil, st, ErrTooSmall
	}
	if opts.LinkBps <= 0 {
		return nil, st, fmt.Errorf("solstice: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	if err := c.Validate(n); err != nil {
		return nil, st, err
	}

	// Work in processing-time units (seconds), as the decomposition's slot
	// durations are times.
	d := c.DemandMatrix(n)
	p := make([][]float64, n)
	for i := range d {
		p[i] = make([]float64, n)
		for j := range d[i] {
			p[i][j] = d[i][j] * 8 / opts.LinkBps
		}
	}

	// Quantize demand up to slot multiples before stuffing, as Solstice
	// does: with every entry a multiple of the slot, the power-of-two
	// threshold descent slices each entry along its binary digits and
	// terminates at r = slot, instead of fragmenting remainders into
	// ever-smaller slices that each pay δ. The slot tracks the smaller of
	// the switching timescale and the demand quantum, so fast links with
	// tiny flows still slice at the granularity of their demand. The
	// over-allocation (< one slot per flow) simply idles on the circuit.
	minPos := math.Inf(1)
	for i := range p {
		for j := range p[i] {
			if v := p[i][j]; v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	slot := math.Min(opts.Delta/10, minPos/2)
	if slot > 0 && !math.IsInf(slot, 1) {
		for i := range p {
			for j := range p[i] {
				if p[i][j] > 0 {
					p[i][j] = math.Ceil(p[i][j]/slot) * slot
				}
			}
		}
	} else {
		slot = 0
	}

	stuffed, added := bvn.Stuff(p)
	st.StuffedBytes = added * opts.LinkBps / 8

	asg, err := bigSlice(stuffed, slot)
	if err != nil {
		return nil, st, err
	}
	st.Assignments = len(asg)
	for _, a := range asg {
		st.TotalDuration += a.Duration
	}
	return asg, st, nil
}

// bigSlice decomposes the stuffed processing-time matrix into assignments
// with Solstice's BigSlice strategy: the slice length r starts at the
// smallest power of two covering the biggest entry and halves whenever no
// perfect matching exists over entries of at least r; a found matching is
// scheduled for exactly r seconds. Long slices therefore come first, and a
// demand entry is generally split across several slices at different r —
// the source of Solstice's extra circuit establishments (Figure 5 of the
// Sunflow paper).
//
// When the previous matching is still feasible at the current threshold it
// is reused, so consecutive identical assignments merge into one continuous
// circuit at execution time. This keeps single-row and single-column
// Coflows near the behaviour §5.3.1 describes (effectively one flow per
// assignment) without changing the dense-Coflow characteristics.
// Floating-point residue from the stuffing is swept up by a final
// maximal-matching phase sized by the smallest matched entry.
func bigSlice(m [][]float64, slot float64) ([]fabric.Assignment, error) {
	n := len(m)
	w := bvn.Clone(m)
	max := maxEntry(w)
	// Residue below tol (relative to the schedule's scale) is noise from
	// stuffing arithmetic, not demand.
	tol := 1e-11 * (1 + bvn.MaxLineSum(m))
	if max <= tol {
		return nil, nil
	}
	// Slice lengths are powers of two in slot units, so quantized entries
	// are carved exactly along their binary digits and the descent stops at
	// one slot.
	var r float64
	if slot > 0 {
		r = slot * math.Pow(2, math.Ceil(math.Log2(max/slot)))
	} else {
		r = math.Pow(2, math.Ceil(math.Log2(max)))
	}

	var out []fabric.Assignment
	var prev []int
	guard := 0
	for maxEntry(w) > tol {
		guard++
		if guard > 64*n*n+4096 {
			return nil, fmt.Errorf("solstice: decomposition failed to converge (n=%d)", n)
		}
		if r > tol && (slot == 0 || r >= slot-tol) {
			match := prev
			if !feasibleAt(w, match, r) {
				match = matching.PerfectMatchingAbove(w, r)
			}
			if match == nil {
				r /= 2
				continue
			}
			for i, j := range match {
				w[i][j] -= r
				if w[i][j] < tol {
					w[i][j] = 0
				}
			}
			out = append(out, fabric.Assignment{Match: append([]int(nil), match...), Duration: r})
			prev = match
			continue
		}
		// Imbalanced residue: a perfect matching may no longer exist; drain
		// whatever maximal matching the positive entries admit, sized by its
		// smallest member.
		match := maximalMatchingAbove(w, tol)
		if match == nil {
			break
		}
		dur := math.Inf(1)
		for i, j := range match {
			if j >= 0 && w[i][j] > tol && w[i][j] < dur {
				dur = w[i][j]
			}
		}
		if math.IsInf(dur, 1) {
			break
		}
		for i, j := range match {
			if j < 0 {
				continue
			}
			w[i][j] -= dur
			if w[i][j] < tol {
				w[i][j] = 0
			}
		}
		out = append(out, fabric.Assignment{Match: append([]int(nil), match...), Duration: dur})
		prev = nil
	}
	return out, nil
}

// feasibleAt reports whether every circuit of match still has at least r
// demand, i.e. the previous assignment can simply be extended.
func feasibleAt(w [][]float64, match []int, r float64) bool {
	if match == nil {
		return false
	}
	for i, j := range match {
		if j < 0 || w[i][j] < r {
			return false
		}
	}
	return true
}

// maximalMatchingAbove returns a maximum-cardinality matching over entries
// greater than tol, or nil when none exist. Unlike PerfectMatchingAbove it
// accepts partial matchings.
func maximalMatchingAbove(w [][]float64, tol float64) []int {
	n := len(w)
	adj := make([][]int, n)
	any := false
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w[i][j] > tol {
				adj[i] = append(adj[i], j)
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	match, size := matching.HopcroftKarp(n, adj)
	if size == 0 {
		return nil
	}
	return match
}

func maxEntry(m [][]float64) float64 {
	var max float64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Run schedules the Coflow and executes the result on the fabric, returning
// the execution outcome. It is the one-call entry point used by the
// intra-Coflow experiments.
func Run(c *coflow.Coflow, n int, opts Options, model fabric.Model) (fabric.ExecResult, Stats, error) {
	passStart := time.Now()
	asg, st, err := Schedule(c, n, opts)
	if o := opts.Obs; o != nil {
		elapsed := time.Since(passStart).Seconds()
		o.SchedPasses.Inc()
		o.SchedSeconds.Add(elapsed)
		o.SchedPassTime.Observe(elapsed)
		o.Reservations.Add(int64(st.Assignments))
	}
	if err != nil {
		return fabric.ExecResult{}, st, err
	}
	res, err := fabric.ExecuteObs(c.DemandMatrix(n), asg, opts.LinkBps, opts.Delta, 0, model, opts.Obs)
	return res, st, err
}
