package solstice

import (
	"math"
	"math/rand"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
)

const gbps = 1e9

var opts = Options{LinkBps: gbps, Delta: 0.01}

func randomCoflow(rng *rand.Rand, ports, maxFlows int) *coflow.Coflow {
	n := 1 + rng.Intn(maxFlows)
	used := map[[2]int]bool{}
	var flows []coflow.Flow
	for len(flows) < n {
		i, j := rng.Intn(ports), rng.Intn(ports)
		if used[[2]int{i, j}] {
			continue
		}
		used[[2]int{i, j}] = true
		flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(100)) * 1e6})
	}
	return coflow.New(rng.Int(), 0, flows)
}

func TestScheduleCoversDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(5)
		c := randomCoflow(rng, n, 3*n)
		res, _, err := Run(c, n, opts, fabric.NotAllStop)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Unserved > 1e-3 {
			t.Fatalf("unserved demand %v", res.Unserved)
		}
		if len(res.FlowFinish) != c.NumFlows() {
			t.Fatalf("%d flows finished of %d", len(res.FlowFinish), c.NumFlows())
		}
	}
}

func TestScheduleValidatesInput(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 1, Bytes: 1e6}})
	if _, _, err := Schedule(c, 0, opts); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, _, err := Schedule(c, 2, Options{LinkBps: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad := coflow.New(1, 0, []coflow.Flow{{Src: 9, Dst: 1, Bytes: 1}})
	if _, _, err := Schedule(bad, 2, opts); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestScheduleEmptyCoflow(t *testing.T) {
	c := coflow.New(1, 0, nil)
	asg, st, err := Schedule(c, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 0 || st.Assignments != 0 {
		t.Fatalf("empty coflow produced %d assignments", len(asg))
	}
}

func TestScheduleDurationsCoverLineSums(t *testing.T) {
	// Total assignment duration must equal the stuffed matrix line sum,
	// which is at least the busiest port's processing time.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 4
		c := randomCoflow(rng, n, 10)
		_, st, err := Schedule(c, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st.TotalDuration < c.PacketLowerBound(gbps)-1e-9 {
			t.Fatalf("durations %v below TpL %v", st.TotalDuration, c.PacketLowerBound(gbps))
		}
	}
}

func TestSolsticeSwitchesMoreThanSunflowMinimum(t *testing.T) {
	// The crux of Figure 5: Solstice's establishment count generally
	// exceeds |C| for dense many-to-many Coflows.
	rng := rand.New(rand.NewSource(5))
	exceeds := 0
	trials := 20
	for trial := 0; trial < trials; trial++ {
		n := 6
		var flows []coflow.Flow
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(50)) * 1e6})
				}
			}
		}
		c := coflow.New(trial, 0, flows)
		res, _, err := Run(c, n, opts, fabric.NotAllStop)
		if err != nil {
			t.Fatal(err)
		}
		if res.SwitchCount > c.NumFlows() {
			exceeds++
		}
	}
	if exceeds < trials/2 {
		t.Fatalf("Solstice exceeded the minimal switching count in only %d/%d trials", exceeds, trials)
	}
}

func TestOneFlowPerAssignmentForSingleRow(t *testing.T) {
	// For a one-to-many Coflow, Solstice effectively serves one flow per
	// assignment and lands near the circuit lower bound (§5.3.1); the
	// power-of-two slicing leaves a small scheduling-order dependent gap.
	// On a fabric sized to the Coflow (as the experiment harness compacts
	// it): one sender, two receivers.
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 3e6},
		{Src: 0, Dst: 1, Bytes: 5e6},
	})
	res, _, err := Run(c, 2, opts, fabric.NotAllStop)
	if err != nil {
		t.Fatal(err)
	}
	tcl := c.CircuitLowerBound(gbps, opts.Delta)
	if res.Finish > 1.3*tcl+1e-9 {
		t.Fatalf("O2M Solstice CCT %v > 1.3·TcL %v", res.Finish, tcl)
	}
}

func TestNotAllStopNoSlowerThanAllStop(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 5
		c := randomCoflow(rng, n, 12)
		nas, _, err := Run(c, n, opts, fabric.NotAllStop)
		if err != nil {
			t.Fatal(err)
		}
		as, _, err := Run(c, n, opts, fabric.AllStop)
		if err != nil {
			t.Fatal(err)
		}
		if nas.Finish > as.Finish+1e-9 {
			t.Fatalf("not-all-stop (%v) slower than all-stop (%v)", nas.Finish, as.Finish)
		}
	}
}

func TestStuffedBytesReported(t *testing.T) {
	// A skewed matrix needs stuffing; the stat must reflect it.
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 10e6},
		{Src: 1, Dst: 0, Bytes: 1e6},
	})
	_, st, err := Schedule(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.StuffedBytes <= 0 {
		t.Fatalf("StuffedBytes = %v, want > 0", st.StuffedBytes)
	}
	// Line-sum target is 11 MB (col 0); total mass must reach 2·11 from 11,
	// so 11 MB of dummy demand is added.
	if math.Abs(st.StuffedBytes-11e6) > 1e3 {
		t.Fatalf("StuffedBytes = %v, want 11e6", st.StuffedBytes)
	}
}
