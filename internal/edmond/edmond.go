// Package edmond implements the "Edmond" circuit scheduling baseline used by
// Helios and c-Through and studied in the Sunflow paper (§3.1.1): at each
// round, a maximum-weight matching of the remaining demand matrix (computed
// with Edmonds-style matching — on a bipartite fabric, the Hungarian
// algorithm) forms one circuit assignment, held for an externally fixed
// duration, typically hundreds of milliseconds. The assignment rarely covers
// all of any specific Coflow's demand, which is why the paper finds it slow
// for Coflows.
package edmond

import (
	"fmt"
	"sync"
	"time"

	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/matching"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// Options configures the scheduler.
type Options struct {
	// LinkBps is the link bandwidth B in bits/s.
	LinkBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// Slot is the externally fixed assignment duration in seconds (the
	// paper: "typically fixed and on the order of hundreds of
	// milliseconds"). Zero selects the default of 100 ms.
	Slot float64
	// MaxRounds bounds the drain loop; zero means a generous default
	// derived from the demand.
	MaxRounds int
	// Obs optionally records scheduling metrics and, via the executor,
	// circuit and delivery counters. Nil disables instrumentation.
	Obs *obs.Observer
	// Prof optionally records profiling spans: Run wraps the schedule in
	// "sched.pass" with one "edmond.match" child per max-weight matching
	// round, and the execution in "fabric.execute". Nil disables span
	// recording.
	Prof *span.Stack
}

// DefaultSlot is the assignment duration used when Options.Slot is zero.
const DefaultSlot = 0.1

var scratchPool = sync.Pool{New: func() any { return new(matching.Scratch) }}

// Schedule produces the assignment sequence that drains the Coflow: one
// maximum-weight matching of the remaining demand per fixed-length slot.
func Schedule(c *coflow.Coflow, n int, opts Options) ([]fabric.Assignment, error) {
	if err := c.Validate(n); err != nil {
		return nil, err
	}
	if opts.LinkBps <= 0 {
		return nil, fmt.Errorf("edmond: link bandwidth must be positive, got %v", opts.LinkBps)
	}
	slot := opts.Slot
	if slot == 0 {
		slot = DefaultSlot
	}
	if slot <= 0 {
		return nil, fmt.Errorf("edmond: slot must be positive, got %v", opts.Slot)
	}

	rem := c.DemandMatrix(n)
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		// Each slot drains at least one slot's worth of the bottleneck
		// circuit, so the loop is bounded; the default merely guards
		// against pathological inputs.
		maxRounds = 16*len(c.Flows) + int(c.TotalBytes()*8/(opts.LinkBps*slot)) + 64
	}

	scr := scratchPool.Get().(*matching.Scratch)
	defer scratchPool.Put(scr)
	var schedule []fabric.Assignment
	t := 0.0
	for round := 0; round < maxRounds; round++ {
		if total(rem) <= 1e-6 {
			return schedule, nil
		}
		// Each assignment retains its match slice, so only the Hungarian
		// working buffers come from the pooled scratch.
		msp := opts.Prof.Start("edmond.match")
		match := scr.MaxWeightMatchingInto(rem, nil)
		msp.Finish()
		asg := fabric.Assignment{Match: match, Duration: slot}
		// Advance the residual demand by simulating this slot in isolation;
		// the final timing is established by one Execute over the whole
		// sequence so that circuits surviving consecutive slots are not
		// charged spurious reconfigurations.
		if _, err := fabric.Execute(rem, []fabric.Assignment{asg}, opts.LinkBps, opts.Delta, t, fabric.NotAllStop); err != nil {
			return nil, err
		}
		schedule = append(schedule, asg)
		t += opts.Delta + slot
	}
	return schedule, fmt.Errorf("edmond: demand did not drain within %d slots (%.0f bytes left)", maxRounds, total(rem))
}

// Run schedules the Coflow and executes the sequence on the fabric.
func Run(c *coflow.Coflow, n int, opts Options, model fabric.Model) (fabric.ExecResult, error) {
	passStart := time.Now()
	psp := opts.Prof.Start("sched.pass")
	schedule, err := Schedule(c, n, opts)
	elapsed := time.Since(passStart).Seconds()
	psp.FinishWith(elapsed)
	if o := opts.Obs; o != nil {
		o.SchedPasses.Inc()
		o.SchedSeconds.Add(elapsed)
		o.SchedPassTime.Observe(elapsed)
		o.Reservations.Add(int64(len(schedule)))
	}
	if err != nil {
		return fabric.ExecResult{}, err
	}
	esp := opts.Prof.Start("fabric.execute")
	res, err := fabric.ExecuteObs(c.DemandMatrix(n), schedule, opts.LinkBps, opts.Delta, 0, model, opts.Obs)
	esp.Finish()
	return res, err
}

func total(rem [][]float64) float64 {
	var sum float64
	for i := range rem {
		for j := range rem[i] {
			sum += rem[i][j]
		}
	}
	return sum
}
