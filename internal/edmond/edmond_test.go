package edmond

import (
	"math/rand"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
)

const gbps = 1e9

var opts = Options{LinkBps: gbps, Delta: 0.01, Slot: 0.1}

func randomCoflow(rng *rand.Rand, ports, maxFlows int) *coflow.Coflow {
	n := 1 + rng.Intn(maxFlows)
	used := map[[2]int]bool{}
	var flows []coflow.Flow
	for len(flows) < n {
		i, j := rng.Intn(ports), rng.Intn(ports)
		if used[[2]int{i, j}] {
			continue
		}
		used[[2]int{i, j}] = true
		flows = append(flows, coflow.Flow{Src: i, Dst: j, Bytes: float64(1+rng.Intn(100)) * 1e6})
	}
	return coflow.New(rng.Int(), 0, flows)
}

func TestRunDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		c := randomCoflow(rng, 5, 10)
		res, err := Run(c, 5, opts, fabric.NotAllStop)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Unserved > 1e-3 {
			t.Fatalf("unserved %v", res.Unserved)
		}
		if len(res.FlowFinish) != c.NumFlows() {
			t.Fatalf("finished %d of %d flows", len(res.FlowFinish), c.NumFlows())
		}
	}
}

func TestFixedSlotGranularity(t *testing.T) {
	// A single 1 MB flow (8 ms) still occupies a full 100 ms slot plus δ in
	// the schedule — the head-of-line cost the paper attributes to Edmond.
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	schedule, err := Schedule(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(schedule) != 1 {
		t.Fatalf("assignments = %d, want 1", len(schedule))
	}
	if schedule[0].Duration != opts.Slot {
		t.Fatalf("duration = %v, want the fixed slot %v", schedule[0].Duration, opts.Slot)
	}
}

func TestDefaultSlotApplied(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	schedule, err := Schedule(c, 1, Options{LinkBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if schedule[0].Duration != DefaultSlot {
		t.Fatalf("duration = %v, want %v", schedule[0].Duration, DefaultSlot)
	}
}

func TestValidation(t *testing.T) {
	c := coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	if _, err := Schedule(c, 1, Options{LinkBps: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := Schedule(c, 1, Options{LinkBps: gbps, Slot: -1}); err == nil {
		t.Fatal("negative slot accepted")
	}
	bad := coflow.New(1, 0, []coflow.Flow{{Src: 5, Dst: 0, Bytes: 1}})
	if _, err := Schedule(bad, 2, opts); err == nil {
		t.Fatal("invalid coflow accepted")
	}
}

func TestMatchingMaximizesService(t *testing.T) {
	// Two disjoint heavy flows must be scheduled in the same slot.
	c := coflow.New(1, 0, []coflow.Flow{
		{Src: 0, Dst: 0, Bytes: 10e6},
		{Src: 1, Dst: 1, Bytes: 10e6},
	})
	schedule, err := Schedule(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := schedule[0].Match
	if first[0] != 0 || first[1] != 1 {
		t.Fatalf("first slot match = %v, want both circuits", first)
	}
}
