// Package varys implements the Varys Coflow scheduler (Chowdhury, Zhong and
// Stoica, SIGCOMM 2014) for a packet-switched fabric: Smallest Effective
// Bottleneck First (SEBF) ordering across Coflows, Minimum Allocation for
// Desired Duration (MADD) rate assignment within a Coflow, and opportunistic
// backfilling of residual bandwidth. Varys is the clairvoyant state-of-the-
// art baseline of the Sunflow paper's inter-Coflow evaluation (§5.4).
package varys

import (
	"math"
	"sort"
	"time"

	"sunflow/internal/fabric"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
)

// Allocator computes Varys rates; it implements fabric.RateAllocator. The
// zero value is ready to use.
type Allocator struct {
	// Obs optionally records allocator-level metrics: each Allocate call
	// counts one intra pass with its wall time. The driving simulator
	// accounts sim-level pass counters separately, so the two never double
	// count. Nil disables instrumentation.
	Obs *obs.Observer
	// Prof optionally records profiling spans ("varys.allocate" with
	// "varys.sebf" and "varys.madd" children). Give it the same stack as
	// the driving simulator so the spans nest under its "alloc" phase.
	Prof *span.Stack
}

// Name implements fabric.RateAllocator.
func (Allocator) Name() string { return "varys" }

// PacedByCoflowEvents reports that Varys reschedules only on Coflow arrivals
// and completions: a subflow finishing early leaves its bandwidth unused
// until the next such event, the inefficiency §5.4 of the Sunflow paper
// observes for large Coflows.
func (Allocator) PacedByCoflowEvents() bool { return true }

// Allocate implements fabric.RateAllocator.
//
// Coflows are ordered by their effective bottleneck (the completion time the
// remaining demand would need on an empty fabric); each in turn receives
// MADD rates sized so all its flows finish together at the Coflow's
// bottleneck time given the bandwidth still available, and leftover port
// bandwidth is finally backfilled greedily. The backfill is per flow, which
// is why subflows of one Coflow may finish at different times — the
// inefficiency §5.4 observes for large Coflows.
func (a Allocator) Allocate(remaining map[int]map[fabric.FlowKey]float64, attained map[int]float64, arrival map[int]float64, linkBps float64, ports int) map[int]map[fabric.FlowKey]float64 {
	if o := a.Obs; o != nil || a.Prof != nil {
		passStart := time.Now()
		sp := a.Prof.Start("varys.allocate")
		defer func() {
			sec := time.Since(passStart).Seconds()
			sp.FinishWith(sec)
			if o != nil {
				o.IntraPasses.Inc()
				o.IntraSeconds.Add(sec)
			}
		}()
	}
	// One sort per Coflow per pass; sortSEBF, madd and the work-conservation
	// sweep all walk the same slice.
	ssp := a.Prof.Start("varys.sebf")
	keys := make(map[int][]fabric.FlowKey, len(remaining))
	for id, flows := range remaining {
		keys[id] = fabric.SortedKeys(flows)
	}
	ids := sortSEBF(remaining, keys, arrival, linkBps, ports)
	ssp.Finish()

	availIn := make([]float64, ports)
	availOut := make([]float64, ports)
	for i := 0; i < ports; i++ {
		availIn[i] = linkBps
		availOut[i] = linkBps
	}

	msp := a.Prof.Start("varys.madd")
	out := make(map[int]map[fabric.FlowKey]float64, len(ids))
	for _, id := range ids {
		out[id] = madd(remaining[id], keys[id], availIn, availOut)
	}
	msp.Finish()

	// Work conservation: hand leftover bandwidth to flows in priority order.
	for _, id := range ids {
		for _, k := range keys[id] {
			if remaining[id][k] <= 0 {
				continue
			}
			extra := math.Min(availIn[k.Src], availOut[k.Dst])
			if extra <= 0 {
				continue
			}
			out[id][k] += extra
			availIn[k.Src] -= extra
			availOut[k.Dst] -= extra
		}
	}
	return out
}

// Bottleneck returns Γ, the effective bottleneck completion time of the
// remaining flows over an otherwise empty fabric — the SEBF key.
func Bottleneck(flows map[fabric.FlowKey]float64, linkBps float64, ports int) float64 {
	return bottleneckKeys(fabric.SortedKeys(flows), flows, linkBps, ports)
}

func bottleneckKeys(keys []fabric.FlowKey, flows map[fabric.FlowKey]float64, linkBps float64, ports int) float64 {
	in, outLoads := fabric.PortLoadsKeys(keys, flows, ports)
	var maxBytes float64
	for _, b := range in {
		maxBytes = math.Max(maxBytes, b)
	}
	for _, b := range outLoads {
		maxBytes = math.Max(maxBytes, b)
	}
	return maxBytes * 8 / linkBps
}

// sortSEBF orders Coflow ids by ascending effective bottleneck, breaking
// ties by arrival then id.
func sortSEBF(remaining map[int]map[fabric.FlowKey]float64, keys map[int][]fabric.FlowKey, arrival map[int]float64, linkBps float64, ports int) []int {
	ids := make([]int, 0, len(remaining))
	for id := range remaining {
		ids = append(ids, id)
	}
	key := make(map[int]float64, len(ids))
	for _, id := range ids {
		key[id] = bottleneckKeys(keys[id], remaining[id], linkBps, ports)
	}
	sort.Slice(ids, func(a, b int) bool {
		if key[ids[a]] != key[ids[b]] {
			return key[ids[a]] < key[ids[b]]
		}
		if arrival[ids[a]] != arrival[ids[b]] {
			return arrival[ids[a]] < arrival[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// madd assigns each flow the minimum rate that finishes it exactly at the
// Coflow's bottleneck completion time under the currently available
// bandwidth, and subtracts the rates from availability. A Coflow blocked on
// a fully consumed port receives zero rates.
func madd(flows map[fabric.FlowKey]float64, keys []fabric.FlowKey, availIn, availOut []float64) map[fabric.FlowKey]float64 {
	rates := make(map[fabric.FlowKey]float64, len(flows))

	// keys is the sorted flow order; walking it keeps the float accumulation
	// (and the availability spending below) byte-for-byte reproducible.
	inLoad := make(map[int]float64)
	outLoad := make(map[int]float64)
	for _, k := range keys {
		if b := flows[k]; b > 0 {
			inLoad[k.Src] += b
			outLoad[k.Dst] += b
		}
	}

	// Γ under current availability: the most loaded port relative to what
	// it can still offer.
	gamma := 0.0
	blocked := false
	for p, b := range inLoad {
		if availIn[p] <= 0 {
			blocked = true
			break
		}
		gamma = math.Max(gamma, b*8/availIn[p])
	}
	if !blocked {
		for p, b := range outLoad {
			if availOut[p] <= 0 {
				blocked = true
				break
			}
			gamma = math.Max(gamma, b*8/availOut[p])
		}
	}
	if blocked || gamma <= 0 {
		for k := range flows {
			rates[k] = 0
		}
		return rates
	}

	for _, k := range keys {
		b := flows[k]
		if b <= 0 {
			rates[k] = 0
			continue
		}
		r := b * 8 / gamma
		rates[k] = r
		availIn[k.Src] -= r
		availOut[k.Dst] -= r
		if availIn[k.Src] < 0 {
			availIn[k.Src] = 0
		}
		if availOut[k.Dst] < 0 {
			availOut[k.Dst] = 0
		}
	}
	return rates
}
