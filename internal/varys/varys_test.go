package varys

import (
	"math"
	"testing"

	"sunflow/internal/fabric"
)

const gbps = 1e9

func key(s, d int) fabric.FlowKey { return fabric.FlowKey{Src: s, Dst: d} }

func TestBottleneck(t *testing.T) {
	flows := map[fabric.FlowKey]float64{
		key(0, 0): 2e6,
		key(0, 1): 1e6,
		key(1, 1): 1e6,
	}
	// in.0 carries 3 MB → 24 ms.
	if got := Bottleneck(flows, gbps, 2); math.Abs(got-0.024) > 1e-9 {
		t.Fatalf("Bottleneck = %v, want 0.024", got)
	}
}

func TestMADDEqualFinish(t *testing.T) {
	// A single Coflow gets MADD rates: each flow finishes exactly at Γ, so
	// rates are proportional to sizes.
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 2e6, key(0, 1): 1e6},
	}
	rates := (Allocator{}).Allocate(remaining, nil, map[int]float64{1: 0}, gbps, 2)
	r00 := rates[1][key(0, 0)]
	r01 := rates[1][key(0, 1)]
	// Before backfill the ratio is 2:1; backfill adds the leftover out.1
	// headroom to (0,1)?? No: in.0 is saturated by MADD (Γ = port time of
	// in.0), so backfill finds no in.0 headroom. Rates stay 2:1 and sum B.
	if math.Abs(r00/r01-2) > 1e-6 {
		t.Fatalf("MADD ratio = %v, want 2", r00/r01)
	}
	if math.Abs(r00+r01-gbps) > 1 {
		t.Fatalf("in.0 total = %v, want B", r00+r01)
	}
}

func TestSEBFPriority(t *testing.T) {
	// Small and large Coflows share one port: the small one gets its full
	// MADD demand first.
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 90e6},
		2: {key(0, 0): 0, key(1, 0): 10e6}, // smaller bottleneck, different src, same dst
	}
	delete(remaining[2], key(0, 0))
	rates := (Allocator{}).Allocate(remaining, nil, map[int]float64{1: 0, 2: 0}, gbps, 2)
	// Coflow 2 (bottleneck 80 ms) beats Coflow 1 (720 ms): out.0 must first
	// serve Coflow 2 at full rate.
	if got := rates[2][key(1, 0)]; math.Abs(got-gbps) > 1 {
		t.Fatalf("small coflow rate = %v, want full B", got)
	}
	if got := rates[1][key(0, 0)]; got > 1 {
		t.Fatalf("large coflow rate = %v, want 0 (blocked on out.0)", got)
	}
}

func TestBackfillUsesResidualBandwidth(t *testing.T) {
	// Coflow 1's MADD saturates out.0 only partially because its own
	// bottleneck is in.0; leftover capacity on other ports goes to Coflow 2
	// even though it is lower priority.
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 10e6},
		2: {key(1, 1): 100e6},
	}
	rates := (Allocator{}).Allocate(remaining, nil, map[int]float64{1: 0, 2: 0}, gbps, 2)
	if got := rates[2][key(1, 1)]; math.Abs(got-gbps) > 1 {
		t.Fatalf("disjoint coflow rate = %v, want full B", got)
	}
}

func TestPortCapacityRespected(t *testing.T) {
	remaining := map[int]map[fabric.FlowKey]float64{
		1: {key(0, 0): 5e6, key(0, 1): 5e6},
		2: {key(0, 0): 7e6},
		3: {key(1, 0): 9e6, key(1, 1): 2e6},
	}
	arr := map[int]float64{1: 0, 2: 1, 3: 2}
	rates := (Allocator{}).Allocate(remaining, nil, arr, gbps, 2)
	inSum := map[int]float64{}
	outSum := map[int]float64{}
	for id, fr := range rates {
		for k, r := range fr {
			if r < 0 {
				t.Fatalf("negative rate for %d/%v", id, k)
			}
			inSum[k.Src] += r
			outSum[k.Dst] += r
		}
	}
	for p, s := range inSum {
		if s > gbps*(1+1e-9) {
			t.Fatalf("in.%d oversubscribed: %v", p, s)
		}
	}
	for p, s := range outSum {
		if s > gbps*(1+1e-9) {
			t.Fatalf("out.%d oversubscribed: %v", p, s)
		}
	}
}

func TestAllocatorName(t *testing.T) {
	if (Allocator{}).Name() != "varys" {
		t.Fatal("allocator must identify as varys")
	}
}
