package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sunflow/internal/coflow"
)

const sample = `3 2
1 0 2 0 1 1 2:4
2 1500 1 2 2 0:2 1:6
`

func TestParseJobs(t *testing.T) {
	ports, jobs, err := ParseJobs(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if ports != 3 || len(jobs) != 2 {
		t.Fatalf("ports=%d jobs=%d", ports, len(jobs))
	}
	j := jobs[0]
	if j.ID != 1 || j.ArrivalMillis != 0 || len(j.Mappers) != 2 || len(j.Reducers) != 1 {
		t.Fatalf("job 0 = %+v", j)
	}
	if j.Reducers[0] != 2 || j.ReducerMB[0] != 4 {
		t.Fatalf("job 0 reducers = %v %v", j.Reducers, j.ReducerMB)
	}
}

func TestJobCoflowSplitsEvenly(t *testing.T) {
	j := Job{ID: 1, ArrivalMillis: 2000, Mappers: []int{0, 1}, Reducers: []int{2}, ReducerMB: []float64{4}}
	c := j.Coflow()
	if c.Arrival != 2.0 {
		t.Fatalf("arrival = %v", c.Arrival)
	}
	if c.NumFlows() != 2 {
		t.Fatalf("flows = %v", c.Flows)
	}
	for _, f := range c.Flows {
		if f.Dst != 2 || math.Abs(f.Bytes-2e6) > 1 {
			t.Fatalf("flow = %+v, want 2 MB to port 2", f)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x 2\n",
		"job mismatch":   "3 5\n1 0 1 0 1 1:1\n",
		"truncated":      "3 1\n1 0 2 0\n",
		"bad reducer":    "3 1\n1 0 1 0 1 1-4\n",
		"port range":     "3 1\n1 0 1 7 1 1:4\n",
		"zero mappers":   "3 1\n1 0 0 1 1:4\n",
		"trailing junk":  "3 1\n1 0 1 0 1 1:4 junk\n",
		"negative size":  "3 1\n1 0 1 0 1 1:-4\n",
		"bad job count":  "3 x\n",
		"bad port count": "0 1\n1 0 1 0 1 1:4\n",
		"nan size":       "3 1\n1 0 1 0 1 1:NaN\n",
		"inf size":       "3 1\n1 0 1 0 1 1:Inf\n",
		"neg arrival":    "3 1\n1 -5 1 0 1 1:4\n",
		"neg mapper":     "3 1\n1 0 1 -2 1 1:4\n",
		"neg reducer":    "3 1\n1 0 1 0 1 -1:4\n",
		"dup mapper":     "3 1\n1 0 2 0 0 1 1:4\n",
		"dup reducer":    "3 1\n1 0 1 0 2 1:4 1:2\n",
		"dup job id":     "3 2\n1 0 1 0 1 1:4\n1 10 1 0 1 2:4\n",
	}
	for name, in := range cases {
		if _, _, err := ParseJobs(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

// TestParseKeepsCrossSideLoops pins the deliberate permissiveness: the same
// port acting as mapper and reducer is a real circuit (input and output sides
// of an optical port are independent), not a parse error.
func TestParseKeepsCrossSideLoops(t *testing.T) {
	ports, jobs, err := ParseJobs(strings.NewReader("3 1\n1 0 1 0 1 0:4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ports != 3 || len(jobs) != 1 {
		t.Fatalf("ports=%d jobs=%d", ports, len(jobs))
	}
	c := jobs[0].Coflow()
	if c.NumFlows() != 1 || c.Flows[0].Src != 0 || c.Flows[0].Dst != 0 {
		t.Fatalf("flows = %+v", c.Flows)
	}
}

func TestParseOneBased(t *testing.T) {
	// Ports numbered 1..3 on a 3-port fabric: shifted to 0..2.
	in := "3 1\n1 0 2 1 3 1 2:4\n"
	ports, jobs, err := ParseJobs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ports != 3 {
		t.Fatalf("ports = %d", ports)
	}
	if jobs[0].Mappers[0] != 0 || jobs[0].Mappers[1] != 2 || jobs[0].Reducers[0] != 1 {
		t.Fatalf("one-based shift failed: %+v", jobs[0])
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	_, jobs, err := ParseJobs(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJobs(&buf, 3, jobs); err != nil {
		t.Fatal(err)
	}
	ports2, jobs2, err := ParseJobs(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if ports2 != 3 || len(jobs2) != len(jobs) {
		t.Fatalf("round trip lost jobs")
	}
	for i := range jobs {
		if jobs2[i].ID != jobs[i].ID || jobs2[i].ArrivalMillis != jobs[i].ArrivalMillis {
			t.Fatalf("job %d identity changed", i)
		}
		if len(jobs2[i].Mappers) != len(jobs[i].Mappers) || jobs2[i].ReducerMB[0] != jobs[i].ReducerMB[0] {
			t.Fatalf("job %d content changed", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g := Generator{Seed: 7, Coflows: 50}
	a := g.Trace()
	b := g.Trace()
	if len(a.Coflows) != len(b.Coflows) {
		t.Fatal("non-deterministic coflow count")
	}
	for i := range a.Coflows {
		if a.Coflows[i].TotalBytes() != b.Coflows[i].TotalBytes() || a.Coflows[i].Arrival != b.Coflows[i].Arrival {
			t.Fatalf("coflow %d differs between runs", i)
		}
	}
	other := Generator{Seed: 8, Coflows: 50}.Trace()
	same := true
	for i := range a.Coflows {
		if a.Coflows[i].TotalBytes() != other.Coflows[i].TotalBytes() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratorStatistics(t *testing.T) {
	tr := Generator{Seed: 1}.Trace()
	if tr.Ports != 150 {
		t.Fatalf("ports = %d, want 150", tr.Ports)
	}
	if len(tr.Coflows) != 526 {
		t.Fatalf("coflows = %d, want 526", len(tr.Coflows))
	}

	// Category mix within a few points of Table 4.
	count := map[coflow.Class]int{}
	bytesBy := map[coflow.Class]float64{}
	var total float64
	minBytes := math.Inf(1)
	for _, c := range tr.Coflows {
		cl := c.Classify()
		count[cl]++
		bytesBy[cl] += c.TotalBytes()
		total += c.TotalBytes()
		if c.Arrival < 0 || c.Arrival > 3600 {
			t.Fatalf("arrival %v outside horizon", c.Arrival)
		}
		if err := c.Validate(150); err != nil {
			t.Fatal(err)
		}
		for _, f := range c.Flows {
			if f.Bytes < minBytes {
				minBytes = f.Bytes
			}
		}
	}
	n := float64(len(tr.Coflows))
	wantShare := map[coflow.Class]float64{
		coflow.OneToOne: 0.234, coflow.OneToMany: 0.099,
		coflow.ManyToOne: 0.401, coflow.ManyToMany: 0.266,
	}
	for cl, want := range wantShare {
		got := float64(count[cl]) / n
		if math.Abs(got-want) > 0.07 {
			t.Fatalf("%v share = %.3f, want ≈ %.3f", cl, got, want)
		}
	}
	// Many-to-many carries the overwhelming byte share (paper: 99.943%).
	if share := bytesBy[coflow.ManyToMany] / total; share < 0.99 {
		t.Fatalf("M2M byte share = %.4f, want > 0.99", share)
	}
	// 1 MB floor before perturbation.
	if minBytes < 1e6-1 {
		t.Fatalf("min flow bytes = %v, want >= 1 MB", minBytes)
	}
}

func TestGeneratorRoundTripThroughFormat(t *testing.T) {
	g := Generator{Seed: 3, Coflows: 40}
	ports, jobs := g.Jobs()
	var buf bytes.Buffer
	if err := WriteJobs(&buf, ports, jobs); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Trace()
	if len(tr.Coflows) != len(want.Coflows) {
		t.Fatalf("coflow count changed: %d vs %d", len(tr.Coflows), len(want.Coflows))
	}
	for i := range tr.Coflows {
		if math.Abs(tr.Coflows[i].TotalBytes()-want.Coflows[i].TotalBytes()) > 1 {
			t.Fatalf("coflow %d bytes changed through format", i)
		}
	}
}
