package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sunflow/internal/coflow"
)

// Base selects how a Scanner interprets the port numbers of a benchmark file.
type Base int

const (
	// AutoBase reproduces ParseJobs' whole-file detection: a file that
	// mentions port numPorts is treated as 1-based and shifted down. Because
	// the decision depends on every record, the Scanner makes a validation
	// pass over the input first, so AutoBase requires an io.ReadSeeker.
	AutoBase Base = iota
	// ZeroBased trusts the ports as written, enabling single-pass streaming
	// from non-seekable inputs (pipes, generators).
	ZeroBased
	// OneBased shifts every port down by one, single-pass.
	OneBased
)

// Scanner streams a benchmark-format workload one Job at a time, so a
// million-Coflow trace never has to be resident as a whole: the only O(jobs)
// state is the duplicate-id set (and that, too, is dropped in AutoBase mode,
// which already validated ids in its first pass). In AutoBase mode the
// Scanner accepts exactly the files ParseJobs accepts and reports its errors
// verbatim, just surfaced per record rather than per file; the explicit-base
// modes check ids and port ranges as records stream by.
//
// Usage follows bufio.Scanner:
//
//	sc, err := NewScanner(f, AutoBase)
//	for sc.Next() {
//	    j := sc.Job()
//	    ...
//	}
//	err = sc.Err()
type Scanner struct {
	sc        *bufio.Scanner
	ports     int
	numJobs   int
	shift     bool
	validated bool
	seen      map[int]bool
	job       Job
	err       error
	line      int
	n         int
	done      bool
}

// NewScanner reads the header and prepares to stream jobs from r. In
// AutoBase mode r must be an io.ReadSeeker: the whole input is validated —
// exactly as ParseJobs would, including duplicate-id and job-count checks —
// to settle the port base, then rewound for streaming.
func NewScanner(r io.Reader, base Base) (*Scanner, error) {
	s := &Scanner{shift: base == OneBased}
	if base == AutoBase {
		rs, ok := r.(io.ReadSeeker)
		if !ok {
			return nil, fmt.Errorf("trace: auto-base scanning needs an io.ReadSeeker; use ZeroBased or OneBased for pipes")
		}
		oneBased, err := detectBase(rs)
		if err != nil {
			return nil, err
		}
		if _, err := rs.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		s.shift = oneBased
		s.validated = true
	}
	s.sc = newLineScanner(r)
	ports, numJobs, err := readHeader(s.sc)
	if err != nil {
		return nil, err
	}
	s.ports, s.numJobs = ports, numJobs
	s.line = 1
	if !s.validated {
		s.seen = map[int]bool{}
	}
	return s, nil
}

func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return sc
}

// readHeader parses the "<ports> <jobs>" line.
func readHeader(sc *bufio.Scanner) (ports, numJobs int, err error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, 0, fmt.Errorf("trace: %w", err)
		}
		return 0, 0, fmt.Errorf("trace: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return 0, 0, fmt.Errorf("trace: header must be \"<ports> <jobs>\", got %q", sc.Text())
	}
	ports, err = strconv.Atoi(header[0])
	if err != nil || ports <= 0 {
		return 0, 0, fmt.Errorf("trace: bad port count %q", header[0])
	}
	numJobs, err = strconv.Atoi(header[1])
	if err != nil || numJobs < 0 {
		return 0, 0, fmt.Errorf("trace: bad job count %q", header[1])
	}
	return ports, numJobs, nil
}

// detectBase replicates ParseJobs' record loop — line parsing, duplicate-id
// and job-count checks, base detection — without retaining the jobs. After a
// nil return, a second pass can stream records and the only error left to
// discover is a port-range violation, which surfaces at the offending job in
// the same order ParseJobs would report it.
func detectBase(r io.Reader) (oneBased bool, err error) {
	sc := newLineScanner(r)
	ports, numJobs, err := readHeader(sc)
	if err != nil {
		return false, err
	}
	line := 1
	n := 0
	seen := map[int]bool{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		j, usedMax, err := parseJobLine(text, ports)
		if err != nil {
			return false, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if seen[j.ID] {
			return false, fmt.Errorf("trace: line %d: duplicate job id %d", line, j.ID)
		}
		seen[j.ID] = true
		if usedMax == ports {
			oneBased = true
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("trace: %w", err)
	}
	if n != numJobs {
		return false, fmt.Errorf("trace: header promised %d jobs, found %d", numJobs, n)
	}
	return oneBased, nil
}

// Ports returns the fabric size from the header.
func (s *Scanner) Ports() int { return s.ports }

// NumJobs returns the job count the header promises.
func (s *Scanner) NumJobs() int { return s.numJobs }

// Next advances to the next job record. It returns false at the end of the
// input or on the first error; Err tells the two apart.
func (s *Scanner) Next() bool {
	if s.err != nil || s.done {
		return false
	}
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" {
			continue
		}
		j, _, err := parseJobLine(text, s.ports)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: %w", s.line, err)
			return false
		}
		if s.seen != nil {
			if s.seen[j.ID] {
				s.err = fmt.Errorf("trace: line %d: duplicate job id %d", s.line, j.ID)
				return false
			}
			s.seen[j.ID] = true
		}
		if s.shift {
			for k := range j.Mappers {
				j.Mappers[k]--
			}
			for k := range j.Reducers {
				j.Reducers[k]--
			}
		}
		for _, p := range j.Mappers {
			if p < 0 || p >= s.ports {
				s.err = fmt.Errorf("trace: job %d references port %d outside [0,%d)", j.ID, p, s.ports)
				return false
			}
		}
		for _, p := range j.Reducers {
			if p < 0 || p >= s.ports {
				s.err = fmt.Errorf("trace: job %d references port %d outside [0,%d)", j.ID, p, s.ports)
				return false
			}
		}
		s.n++
		s.job = j
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("trace: %w", err)
		return false
	}
	s.done = true
	if s.n != s.numJobs {
		s.err = fmt.Errorf("trace: header promised %d jobs, found %d", s.numJobs, s.n)
	}
	return false
}

// Job returns the record the last successful Next parsed. The returned Job's
// slices are owned by the caller; the Scanner does not reuse them.
func (s *Scanner) Job() Job { return s.job }

// Err returns the first error encountered, nil at a clean end of input.
func (s *Scanner) Err() error { return s.err }

// CoflowSource adapts a Scanner into a streaming Coflow source compatible
// with sim.Source: Next returns one expanded Coflow per job in file order,
// (nil, nil) at the end. The simulator additionally requires the stream to
// be ordered by (arrival, id) — true of generated traces, and of the
// Facebook benchmark file — and rejects it otherwise.
type CoflowSource struct {
	s *Scanner
}

// Coflows returns a streaming view of the remaining jobs as Coflows.
func (s *Scanner) Coflows() *CoflowSource { return &CoflowSource{s: s} }

// Next yields the next job as a Coflow, (nil, nil) at end of input.
func (c *CoflowSource) Next() (*coflow.Coflow, error) {
	if c.s.Next() {
		return c.s.Job().Coflow(), nil
	}
	if err := c.s.Err(); err != nil {
		return nil, err
	}
	return nil, nil
}
