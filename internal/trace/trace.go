// Package trace reads, writes and synthesizes Coflow workloads in the
// coflow-benchmark text format used by the Facebook Hive/MapReduce trace the
// Sunflow paper evaluates on (github.com/coflow/coflow-benchmark):
//
//	<numPorts> <numJobs>
//	<jobID> <arrivalMillis> <numMappers> <m...> <numReducers> <r:sizeMB...>
//
// Each job is a shuffle Coflow: every mapper port sends to every reducer
// port, and a reducer's total received size is split evenly across the
// mappers. Because the original trace is not redistributable, the package
// also provides a deterministic generator calibrated to the trace statistics
// the paper reports (Table 4 category mix, ≥500 Coflows on a 150-port fabric
// over one hour, MB-rounded sizes with a heavy many-to-many tail).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"sunflow/internal/coflow"
)

// MB is one megabyte in bytes, the size unit of the benchmark format.
const MB = 1e6

// Job is one MapReduce shuffle in benchmark form.
type Job struct {
	// ID is the job identifier.
	ID int
	// ArrivalMillis is the arrival time in milliseconds.
	ArrivalMillis int64
	// Mappers and Reducers list the ports of the senders and receivers.
	Mappers  []int
	Reducers []int
	// ReducerMB[k] is the total megabytes received by Reducers[k].
	ReducerMB []float64
}

// Coflow expands the job into a Coflow: each reducer's bytes are divided
// evenly across the mappers, the convention of the coflow-benchmark tools.
func (j Job) Coflow() *coflow.Coflow {
	flows := make([]coflow.Flow, 0, len(j.Mappers)*len(j.Reducers))
	nm := float64(len(j.Mappers))
	for _, m := range j.Mappers {
		for k, r := range j.Reducers {
			flows = append(flows, coflow.Flow{
				Src:   m,
				Dst:   r,
				Bytes: j.ReducerMB[k] * MB / nm,
			})
		}
	}
	c := coflow.New(j.ID, float64(j.ArrivalMillis)/1000, flows)
	return c.Normalize()
}

// Trace is a Coflow workload over an N-port fabric.
type Trace struct {
	Ports   int
	Coflows []*coflow.Coflow
}

// ParseJobs reads a benchmark file into jobs. Port numbers are accepted
// either 0-based or 1-based; a 1-based file (one that mentions port
// numPorts) is shifted down.
func ParseJobs(r io.Reader) (ports int, jobs []Job, err error) {
	sc := newLineScanner(r)
	ports, numJobs, err := readHeader(sc)
	if err != nil {
		return 0, nil, err
	}

	oneBased := false
	line := 1
	seenID := map[int]bool{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		j, usedMax, err := parseJobLine(text, ports)
		if err != nil {
			return 0, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if seenID[j.ID] {
			return 0, nil, fmt.Errorf("trace: line %d: duplicate job id %d", line, j.ID)
		}
		seenID[j.ID] = true
		if usedMax == ports {
			oneBased = true
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("trace: %w", err)
	}
	if len(jobs) != numJobs {
		return 0, nil, fmt.Errorf("trace: header promised %d jobs, found %d", numJobs, len(jobs))
	}
	if oneBased {
		for i := range jobs {
			for k := range jobs[i].Mappers {
				jobs[i].Mappers[k]--
			}
			for k := range jobs[i].Reducers {
				jobs[i].Reducers[k]--
			}
		}
	}
	for _, j := range jobs {
		for _, p := range append(append([]int(nil), j.Mappers...), j.Reducers...) {
			if p < 0 || p >= ports {
				return 0, nil, fmt.Errorf("trace: job %d references port %d outside [0,%d)", j.ID, p, ports)
			}
		}
	}
	return ports, jobs, nil
}

// parseJobLine parses one job record and reports the largest port mentioned.
func parseJobLine(text string, ports int) (Job, int, error) {
	f := strings.Fields(text)
	var j Job
	pos := 0
	next := func() (string, error) {
		if pos >= len(f) {
			return "", fmt.Errorf("truncated record")
		}
		s := f[pos]
		pos++
		return s, nil
	}
	intField := func() (int, error) {
		s, err := next()
		if err != nil {
			return 0, err
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", s)
		}
		return v, nil
	}

	var err error
	if j.ID, err = intField(); err != nil {
		return j, 0, err
	}
	arr, err := intField()
	if err != nil {
		return j, 0, err
	}
	if arr < 0 {
		return j, 0, fmt.Errorf("job %d arrives at negative time %d ms", j.ID, arr)
	}
	j.ArrivalMillis = int64(arr)

	nm, err := intField()
	if err != nil {
		return j, 0, err
	}
	if nm <= 0 {
		return j, 0, fmt.Errorf("job %d has %d mappers", j.ID, nm)
	}
	usedMax := 0
	// Duplicate ports within a side would expand into duplicate flow keys
	// (double-counted demand), so each side must be distinct. A port may
	// still appear on both sides: the input and output sides of an optical
	// switch port are independent (§2.1), so a mapper sending to a reducer
	// on its own port is a real circuit, not a degenerate self-loop.
	seenM := make(map[int]bool, nm)
	for i := 0; i < nm; i++ {
		m, err := intField()
		if err != nil {
			return j, 0, err
		}
		if m < 0 {
			return j, 0, fmt.Errorf("job %d names negative mapper port %d", j.ID, m)
		}
		if seenM[m] {
			return j, 0, fmt.Errorf("job %d lists mapper port %d twice", j.ID, m)
		}
		seenM[m] = true
		if m > usedMax {
			usedMax = m
		}
		j.Mappers = append(j.Mappers, m)
	}

	nr, err := intField()
	if err != nil {
		return j, 0, err
	}
	if nr <= 0 {
		return j, 0, fmt.Errorf("job %d has %d reducers", j.ID, nr)
	}
	seenR := make(map[int]bool, nr)
	for i := 0; i < nr; i++ {
		s, err := next()
		if err != nil {
			return j, 0, err
		}
		parts := strings.SplitN(s, ":", 2)
		if len(parts) != 2 {
			return j, 0, fmt.Errorf("bad reducer field %q (want port:sizeMB)", s)
		}
		r, err := strconv.Atoi(parts[0])
		if err != nil {
			return j, 0, fmt.Errorf("bad reducer port %q", parts[0])
		}
		if r < 0 {
			return j, 0, fmt.Errorf("job %d names negative reducer port %d", j.ID, r)
		}
		if seenR[r] {
			return j, 0, fmt.Errorf("job %d lists reducer port %d twice", j.ID, r)
		}
		seenR[r] = true
		mb, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || mb < 0 || math.IsNaN(mb) || math.IsInf(mb, 0) {
			return j, 0, fmt.Errorf("bad reducer size %q", parts[1])
		}
		if r > usedMax {
			usedMax = r
		}
		j.Reducers = append(j.Reducers, r)
		j.ReducerMB = append(j.ReducerMB, mb)
	}
	if pos != len(f) {
		return j, 0, fmt.Errorf("job %d has %d trailing fields", j.ID, len(f)-pos)
	}
	return j, usedMax, nil
}

// WriteJobs renders jobs in benchmark format.
func WriteJobs(w io.Writer, ports int, jobs []Job) error {
	jw, err := NewJobWriter(w, ports, len(jobs))
	if err != nil {
		return err
	}
	for _, j := range jobs {
		if err := jw.Write(j); err != nil {
			return err
		}
	}
	return jw.Flush()
}

// JobWriter streams jobs to a benchmark-format file one record at a time, so
// writing a million-Coflow trace needs no job slice: pair it with
// Generator.Stream and resident memory stays constant in the trace length.
// The output is byte-identical to WriteJobs on the same records.
type JobWriter struct {
	bw       *bufio.Writer
	promised int
	written  int
}

// NewJobWriter writes the header and returns a writer for exactly numJobs
// records.
func NewJobWriter(w io.Writer, ports, numJobs int) (*JobWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", ports, numJobs); err != nil {
		return nil, err
	}
	return &JobWriter{bw: bw, promised: numJobs}, nil
}

// Write appends one job record.
func (jw *JobWriter) Write(j Job) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %d %d", j.ID, j.ArrivalMillis, len(j.Mappers))
	for _, m := range j.Mappers {
		fmt.Fprintf(&sb, " %d", m)
	}
	fmt.Fprintf(&sb, " %d", len(j.Reducers))
	for k, r := range j.Reducers {
		fmt.Fprintf(&sb, " %d:%s", r, strconv.FormatFloat(j.ReducerMB[k], 'f', -1, 64))
	}
	if _, err := fmt.Fprintln(jw.bw, sb.String()); err != nil {
		return err
	}
	jw.written++
	return nil
}

// Flush completes the file, failing if the record count does not match the
// header (the resulting file would be rejected by ParseJobs).
func (jw *JobWriter) Flush() error {
	if jw.written != jw.promised {
		return fmt.Errorf("trace: header promised %d jobs, wrote %d", jw.promised, jw.written)
	}
	return jw.bw.Flush()
}

// Parse reads a benchmark file into a Trace.
func Parse(r io.Reader) (*Trace, error) {
	ports, jobs, err := ParseJobs(r)
	if err != nil {
		return nil, err
	}
	return JobsToTrace(ports, jobs), nil
}

// JobsToTrace expands jobs into Coflows sorted by arrival.
func JobsToTrace(ports int, jobs []Job) *Trace {
	tr := &Trace{Ports: ports}
	for _, j := range jobs {
		tr.Coflows = append(tr.Coflows, j.Coflow())
	}
	sort.SliceStable(tr.Coflows, func(a, b int) bool {
		if tr.Coflows[a].Arrival != tr.Coflows[b].Arrival {
			return tr.Coflows[a].Arrival < tr.Coflows[b].Arrival
		}
		return tr.Coflows[a].ID < tr.Coflows[b].ID
	})
	return tr
}
