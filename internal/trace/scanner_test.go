package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
)

// drainScanner pulls every job out of a Scanner, mirroring ParseJobs' result
// shape.
func drainScanner(r io.Reader, base Base) (ports int, jobs []Job, err error) {
	sc, err := NewScanner(r, base)
	if err != nil {
		return 0, nil, err
	}
	for sc.Next() {
		jobs = append(jobs, sc.Job())
	}
	return sc.Ports(), jobs, sc.Err()
}

// TestQuickScannerMatchesParseJobs streams generated workloads — zero-based
// as written and shifted up into one-based form — through the AutoBase
// Scanner and demands the exact jobs ParseJobs produces.
func TestQuickScannerMatchesParseJobs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Generator{
			Ports:      2 + rng.Intn(12),
			Coflows:    1 + rng.Intn(40),
			HorizonSec: 1 + 10*rng.Float64(),
			Seed:       rng.Int63(),
			MaxWidth:   2 + rng.Intn(6),
		}
		ports, jobs := g.Jobs()
		var buf bytes.Buffer
		if err := WriteJobs(&buf, ports, jobs); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		text := buf.String()
		if rng.Intn(2) == 0 {
			text = shiftUp(t, ports, jobs)
		}

		wantPorts, wantJobs, wantErr := ParseJobs(strings.NewReader(text))
		gotPorts, gotJobs, gotErr := drainScanner(strings.NewReader(text), AutoBase)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: ParseJobs err %v, Scanner err %v", seed, wantErr, gotErr)
		}
		if wantErr != nil {
			return wantErr.Error() == gotErr.Error()
		}
		if gotPorts != wantPorts || !reflect.DeepEqual(gotJobs, wantJobs) {
			t.Fatalf("seed %d: scanner diverged from ParseJobs", seed)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// shiftUp rewrites a workload one-based, forcing a job onto port numPorts so
// base detection has something to find.
func shiftUp(t *testing.T, ports int, jobs []Job) string {
	t.Helper()
	up := make([]Job, len(jobs))
	for i, j := range jobs {
		up[i] = j
		up[i].Mappers = append([]int(nil), j.Mappers...)
		up[i].Reducers = append([]int(nil), j.Reducers...)
		for k := range up[i].Mappers {
			up[i].Mappers[k]++
		}
		for k := range up[i].Reducers {
			up[i].Reducers[k]++
		}
	}
	// Pin one record to the top port so usedMax == ports on some line.
	up[0].Mappers[0] = ports
	var buf bytes.Buffer
	if err := WriteJobs(&buf, ports, up); err != nil {
		t.Fatalf("write shifted: %v", err)
	}
	return buf.String()
}

func TestScannerExplicitBases(t *testing.T) {
	oneBased := "3 2\n1 0 2 1 2 1 3:4\n2 1500 1 3 2 1:2 2:6\n"

	t.Run("one_based_shifts", func(t *testing.T) {
		_, jobs, err := drainScanner(strings.NewReader(oneBased), OneBased)
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := ParseJobs(strings.NewReader(oneBased))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(jobs, want) {
			t.Fatalf("OneBased scan %+v, ParseJobs %+v", jobs, want)
		}
	})

	t.Run("zero_based_rejects_top_port", func(t *testing.T) {
		_, _, err := drainScanner(strings.NewReader(oneBased), ZeroBased)
		if err == nil || !strings.Contains(err.Error(), "outside [0,3)") {
			t.Fatalf("ZeroBased accepted port 3 on a 3-port fabric: %v", err)
		}
	})

	t.Run("zero_based_accepts_sample", func(t *testing.T) {
		ports, jobs, err := drainScanner(strings.NewReader(sample), ZeroBased)
		if err != nil {
			t.Fatal(err)
		}
		_, want, _ := ParseJobs(strings.NewReader(sample))
		if ports != 3 || !reflect.DeepEqual(jobs, want) {
			t.Fatalf("ZeroBased scan diverged: %+v", jobs)
		}
	})

	t.Run("explicit_base_catches_duplicates", func(t *testing.T) {
		dup := "3 2\n1 0 1 0 1 1:4\n1 10 1 0 1 2:4\n"
		_, _, err := drainScanner(strings.NewReader(dup), ZeroBased)
		if err == nil || !strings.Contains(err.Error(), "duplicate job id 1") {
			t.Fatalf("duplicate id not caught: %v", err)
		}
	})

	t.Run("explicit_base_checks_count", func(t *testing.T) {
		short := "3 2\n1 0 1 0 1 1:4\n"
		_, _, err := drainScanner(strings.NewReader(short), ZeroBased)
		if err == nil || !strings.Contains(err.Error(), "promised 2 jobs, found 1") {
			t.Fatalf("count mismatch not caught: %v", err)
		}
	})
}

// nonSeeker hides the Seek method of an underlying reader, modeling a pipe.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestScannerAutoBaseNeedsSeeker(t *testing.T) {
	_, err := NewScanner(nonSeeker{strings.NewReader(sample)}, AutoBase)
	if err == nil || !strings.Contains(err.Error(), "io.ReadSeeker") {
		t.Fatalf("AutoBase on a pipe: %v", err)
	}
	// The same input streams fine when the base is declared.
	_, jobs, err := drainScanner(nonSeeker{strings.NewReader(sample)}, ZeroBased)
	if err != nil || len(jobs) != 2 {
		t.Fatalf("ZeroBased on a pipe: jobs=%d err=%v", len(jobs), err)
	}
}

func TestCoflowSourceMatchesParse(t *testing.T) {
	want, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(strings.NewReader(sample), AutoBase)
	if err != nil {
		t.Fatal(err)
	}
	src := sc.Coflows()
	var got []*coflow.Coflow
	for {
		c, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		got = append(got, c)
	}
	if !reflect.DeepEqual(got, want.Coflows) {
		t.Fatalf("streamed coflows diverge from Parse: %+v vs %+v", got, want.Coflows)
	}
}

func TestCoflowSourceSurfacesErrors(t *testing.T) {
	bad := "3 2\n1 0 1 0 1 1:4\n"
	sc, err := NewScanner(strings.NewReader(bad), ZeroBased)
	if err != nil {
		t.Fatal(err)
	}
	src := sc.Coflows()
	for {
		c, err := src.Next()
		if err != nil {
			if !strings.Contains(err.Error(), "promised 2 jobs") {
				t.Fatalf("wrong error: %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("stream ended cleanly on a truncated file")
		}
	}
}

// TestQuickStreamMatchesJobs checks Generator.Stream is bit-identical to
// Generator.Jobs across random configurations.
func TestQuickStreamMatchesJobs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Generator{
			Ports:      1 + rng.Intn(40),
			Coflows:    1 + rng.Intn(200),
			HorizonSec: 0.1 + 100*rng.Float64(),
			Seed:       rng.Int63(),
			MaxWidth:   2 + rng.Intn(20),
			Dist:       KnownDists[rng.Intn(len(KnownDists))],
		}
		ports, want := g.Jobs()
		st := g.Stream()
		if st.Ports() != ports || st.Len() != len(want) {
			t.Fatalf("seed %d: stream header %d/%d, jobs %d/%d", seed, st.Ports(), st.Len(), ports, len(want))
		}
		got := make([]Job, 0, st.Len())
		for {
			j, ok := st.Next()
			if !ok {
				break
			}
			got = append(got, j)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if i >= len(got) || !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("seed %d: job %d diverged:\n  stream %+v\n  jobs   %+v", seed, i, got[min(i, len(got)-1)], want[i])
				}
			}
			t.Fatalf("seed %d: stream yielded %d jobs, want %d", seed, len(got), len(want))
		}
		// Exhausted streams stay exhausted.
		if _, ok := st.Next(); ok {
			t.Fatalf("seed %d: stream yielded past its length", seed)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDefaultsMatchJobs covers the zero-value configuration, whose
// defaults are filled inside both paths.
func TestStreamDefaultsMatchJobs(t *testing.T) {
	g := Generator{Seed: 42, Coflows: 60, Ports: 30}
	_, want := g.Jobs()
	st := g.Stream()
	for i := range want {
		j, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, len(want))
		}
		if !reflect.DeepEqual(j, want[i]) {
			t.Fatalf("job %d diverged", i)
		}
	}
}

// TestGenSourceStreamsOrdered drains the generator's Coflow source and checks
// the (arrival, id) ordering the simulator requires.
func TestGenSourceStreamsOrdered(t *testing.T) {
	g := Generator{Seed: 9, Coflows: 80, Ports: 20}
	src := g.Stream().Coflows()
	prevArrival, prevID := -1.0, -1
	n := 0
	for {
		c, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		if c.Arrival < prevArrival || (c.Arrival == prevArrival && c.ID <= prevID) {
			t.Fatalf("coflow %d at %v out of order after %d at %v", c.ID, c.Arrival, prevID, prevArrival)
		}
		prevArrival, prevID = c.Arrival, c.ID
		n++
	}
	if n != 80 {
		t.Fatalf("streamed %d coflows, want 80", n)
	}
}

func TestJobWriterCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	jw, err := NewJobWriter(&buf, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Write(Job{ID: 1, Mappers: []int{0}, Reducers: []int{1}, ReducerMB: []float64{4}}); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err == nil || !strings.Contains(err.Error(), "promised 2 jobs, wrote 1") {
		t.Fatalf("short flush: %v", err)
	}
}

// TestJobWriterStreamsRoundTrip writes a generated workload record by record
// and parses it back, confirming the streamed file is exactly what WriteJobs
// would have produced.
func TestJobWriterStreamsRoundTrip(t *testing.T) {
	g := Generator{Seed: 5, Coflows: 50, Ports: 25}
	ports, jobs := g.Jobs()

	var whole bytes.Buffer
	if err := WriteJobs(&whole, ports, jobs); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	jw, err := NewJobWriter(&streamed, ports, g.Coflows)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stream()
	for {
		j, ok := st.Next()
		if !ok {
			break
		}
		if err := jw.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), whole.Bytes()) {
		t.Fatal("streamed bytes differ from WriteJobs")
	}
}

// FuzzScannerMatchesParseJobs feeds arbitrary bytes to both the whole-file
// parser and the AutoBase Scanner: they must accept the same inputs, produce
// the same jobs, and report the same first error.
func FuzzScannerMatchesParseJobs(f *testing.F) {
	f.Add(sample)
	f.Add("3 1\n1 0 1 0 1 0:4\n")
	f.Add("3 1\n1 0 2 1 3 1 2:4\n")               // one-based
	f.Add("3 1\n1 0 1 0 1 1:NaN\n")               // NaN size
	f.Add("3 2\n1 0 1 0 1 1:4\n1 10 1 0 1 2:4\n") // duplicate id
	f.Add("3 1\n1 0 1 5 1 1:4\n")                 // port out of range
	f.Add("2 3\n1 0 1 0 1 1:1\n")                 // count mismatch
	f.Fuzz(func(t *testing.T, in string) {
		wantPorts, wantJobs, wantErr := ParseJobs(strings.NewReader(in))
		gotPorts, gotJobs, gotErr := drainScanner(strings.NewReader(in), AutoBase)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("ParseJobs err %v, Scanner err %v", wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("errors diverge:\n  ParseJobs: %v\n  Scanner:   %v", wantErr, gotErr)
			}
			return
		}
		if gotPorts != wantPorts {
			t.Fatalf("ports %d vs %d", gotPorts, wantPorts)
		}
		if len(gotJobs) != len(wantJobs) || (len(wantJobs) > 0 && !reflect.DeepEqual(gotJobs, wantJobs)) {
			t.Fatalf("jobs diverge: %d vs %d records", len(gotJobs), len(wantJobs))
		}
	})
}
