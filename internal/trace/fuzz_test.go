package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseJobs drives arbitrary bytes through the benchmark-format parser.
// The parser must never panic, and any input it accepts must be well-formed
// enough to survive a write/parse round trip with ports in range.
func FuzzParseJobs(f *testing.F) {
	f.Add(sample)
	f.Add("3 1\n1 0 1 0 1 0:4\n")
	f.Add("3 1\n1 0 2 1 3 1 2:4\n")               // one-based
	f.Add("3 1\n1 0 1 0 1 1:NaN\n")               // NaN size
	f.Add("3 2\n1 0 1 0 1 1:4\n1 10 1 0 1 2:4\n") // duplicate id
	f.Add("2 1\n1 0 1 0 1 1:1e308\n")             // huge size
	f.Add("150 1\n9 3600000 2 0 1 2 2:0.5 3:12.25\n")
	f.Fuzz(func(t *testing.T, in string) {
		ports, jobs, err := ParseJobs(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, j := range jobs {
			for _, p := range append(append([]int(nil), j.Mappers...), j.Reducers...) {
				if p < 0 || p >= ports {
					t.Fatalf("accepted job %d with port %d outside [0,%d)", j.ID, p, ports)
				}
			}
			if j.ArrivalMillis < 0 {
				t.Fatalf("accepted job %d with negative arrival %d", j.ID, j.ArrivalMillis)
			}
			// Expansion must be safe on accepted input.
			j.Coflow()
		}
		var buf bytes.Buffer
		if err := WriteJobs(&buf, ports, jobs); err != nil {
			t.Fatalf("write accepted jobs: %v", err)
		}
		if _, _, err := ParseJobs(&buf); err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
	})
}
