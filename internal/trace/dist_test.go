package trace

import (
	"reflect"
	"testing"
)

// TestDistProfilesProduceValidWorkloads drains every distribution through
// the format round trip and checks structural invariants.
func TestDistProfilesProduceValidWorkloads(t *testing.T) {
	for _, dist := range KnownDists {
		t.Run(dist, func(t *testing.T) {
			g := Generator{Seed: 11, Coflows: 300, Ports: 40, MaxWidth: 12, Dist: dist}
			ports, jobs := g.Jobs()
			if len(jobs) != 300 {
				t.Fatalf("generated %d jobs", len(jobs))
			}
			for _, j := range jobs {
				if len(j.Mappers) == 0 || len(j.Reducers) == 0 || len(j.ReducerMB) != len(j.Reducers) {
					t.Fatalf("job %d malformed: %+v", j.ID, j)
				}
				for _, p := range append(append([]int(nil), j.Mappers...), j.Reducers...) {
					if p < 0 || p >= ports {
						t.Fatalf("job %d references port %d outside [0,%d)", j.ID, p, ports)
					}
				}
				for _, mb := range j.ReducerMB {
					if mb < 1 {
						t.Fatalf("job %d has reducer size %v below the 1 MB floor", j.ID, mb)
					}
				}
			}
			// Deterministic in the seed.
			_, again := g.Jobs()
			if !reflect.DeepEqual(jobs, again) {
				t.Fatal("generation not deterministic")
			}
			// Streaming is bit-identical for every distribution.
			st := g.Stream()
			for i := range jobs {
				j, ok := st.Next()
				if !ok || !reflect.DeepEqual(j, jobs[i]) {
					t.Fatalf("stream diverged at job %d", i)
				}
			}
		})
	}
}

// TestDistProfilesDiffer guards against the dispatch silently collapsing to
// one profile: identical seeds must yield different workloads per
// distribution.
func TestDistProfilesDiffer(t *testing.T) {
	base := Generator{Seed: 3, Coflows: 50, Ports: 30}
	_, fb := base.Jobs()
	for _, dist := range []string{DistGoogle, DistIncast} {
		g := base
		g.Dist = dist
		_, jobs := g.Jobs()
		if reflect.DeepEqual(fb, jobs) {
			t.Fatalf("%s workload identical to facebook", dist)
		}
	}
}

// TestIncastShapes checks the incast profile actually produces fan-ins and
// square meshes.
func TestIncastShapes(t *testing.T) {
	g := Generator{Seed: 7, Coflows: 400, Ports: 64, MaxWidth: 16, Dist: DistIncast}
	_, jobs := g.Jobs()
	var incast, allToAll int
	for _, j := range jobs {
		if len(j.Mappers) >= 4 && len(j.Reducers) == 1 {
			incast++
		}
		if len(j.Mappers) == len(j.Reducers) && len(j.Mappers) >= 2 {
			allToAll++
		}
	}
	if incast < 100 {
		t.Errorf("only %d/400 incast jobs", incast)
	}
	if allToAll < 50 {
		t.Errorf("only %d/400 all-to-all jobs", allToAll)
	}
}

func TestValidDist(t *testing.T) {
	for _, name := range append([]string{""}, KnownDists...) {
		if !ValidDist(name) {
			t.Errorf("ValidDist(%q) = false", name)
		}
	}
	if ValidDist("uniform") {
		t.Error("ValidDist accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown Dist did not panic")
		}
	}()
	Generator{Dist: "uniform"}.Jobs()
}
