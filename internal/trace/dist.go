package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Workload distributions the Generator can synthesize. The Facebook profile
// is the paper's evaluation workload; the other two add the scenario
// diversity ROADMAP item 4 asks for at 10⁵–10⁶-Coflow scale.
const (
	// DistFacebook is the default: the Facebook Hive/MapReduce trace
	// statistics of §5.1 and Table 4.
	DistFacebook = "facebook"
	// DistGoogle is a Google-cluster-derived mixture: the coflow literature
	// characterizes Google RPC/analytics traffic as dominated by small
	// latency-bound transfers with log-normal shuffle widths and a thin
	// population of very wide batch jobs carrying most bytes.
	DistGoogle = "google"
	// DistIncast is an incast/all-to-all-heavy profile: aggregation fan-ins
	// (many mappers into one reducer) and square all-to-all exchanges, the
	// two structures that stress a circuit fabric's ports hardest per byte.
	DistIncast = "incast"
)

// KnownDists lists the accepted Generator.Dist values.
var KnownDists = []string{DistFacebook, DistGoogle, DistIncast}

// ValidDist reports whether name is a distribution the Generator knows;
// the empty string selects the default (Facebook) profile.
func ValidDist(name string) bool {
	if name == "" {
		return true
	}
	for _, d := range KnownDists {
		if name == d {
			return true
		}
	}
	return false
}

// genGoogleJob draws one job from the Google-style mixture: 55% small RPC
// transfers, 30% log-normal-width shuffles, 15% wide batch jobs with a
// Pareto byte tail.
func (g Generator) genGoogleJob(rng *rand.Rand, id int, arrivalMillis int64) Job {
	j := Job{ID: id, ArrivalMillis: arrivalMillis}
	u := rng.Float64()
	switch {
	case u < 0.55: // RPC-like: one flow, a few MB
		j.Mappers = g.pickPorts(rng, 1)
		j.Reducers = g.pickPorts(rng, 1)
		j.ReducerMB = []float64{math.Max(1, math.Round(math.Exp(rng.NormFloat64()*0.8)))}
	case u < 0.85: // shuffle: log-normal fan on both sides
		nm := logNormalWidth(rng, 1.1, 0.9, g.MaxWidth)
		nr := logNormalWidth(rng, 1.1, 0.9, g.MaxWidth)
		j.Mappers = g.pickPorts(rng, nm)
		j.Reducers = g.pickPorts(rng, nr)
		nm = len(j.Mappers)
		j.ReducerMB = make([]float64, len(j.Reducers))
		for k := range j.ReducerMB {
			mb := math.Exp(rng.NormFloat64()*1.2 + 2.5)
			j.ReducerMB[k] = math.Max(float64(nm), math.Round(mb))
		}
	default: // batch: wide, heavy Pareto tail carries most bytes
		nm := logNormalWidth(rng, 2.3, 0.6, g.MaxWidth)
		nr := logNormalWidth(rng, 2.3, 0.6, g.MaxWidth)
		j.Mappers = g.pickPorts(rng, nm)
		j.Reducers = g.pickPorts(rng, nr)
		nm, nr = len(j.Mappers), len(j.Reducers)
		totalMB := math.Min(pareto(rng, 1.2, 1000), 1e6)
		base := totalMB / float64(nr)
		j.ReducerMB = make([]float64, nr)
		for k := range j.ReducerMB {
			skew := math.Exp(rng.NormFloat64() * 0.5)
			j.ReducerMB[k] = math.Max(math.Round(base*skew), float64(nm))
		}
	}
	return j
}

// genIncastJob draws one job from the incast/all-to-all-heavy profile: 50%
// aggregation fan-ins, 30% square all-to-all exchanges, 20% small
// point-to-point control flows.
func (g Generator) genIncastJob(rng *rand.Rand, id int, arrivalMillis int64) Job {
	j := Job{ID: id, ArrivalMillis: arrivalMillis}
	u := rng.Float64()
	switch {
	case u < 0.5: // incast: many senders converge on one receiver
		nm := clampWidth(4+rng.Intn(g.MaxWidth), g.MaxWidth)
		j.Mappers = g.pickPorts(rng, nm)
		j.Reducers = g.pickPorts(rng, 1)
		nm = len(j.Mappers)
		// Per-sender contribution is modest; the receiver port is the
		// bottleneck by construction.
		per := math.Max(1, math.Round(math.Min(pareto(rng, 1.5, 2), 500)))
		j.ReducerMB = []float64{per * float64(nm)}
	case u < 0.8: // all-to-all: k×k full mesh, near-uniform sizes
		k := clampWidth(2+rng.Intn(max(1, g.MaxWidth-1)), g.MaxWidth)
		j.Mappers = g.pickPorts(rng, k)
		j.Reducers = g.pickPorts(rng, k)
		k = len(j.Mappers)
		j.ReducerMB = make([]float64, len(j.Reducers))
		per := math.Max(1, math.Round(math.Min(pareto(rng, 1.4, 4), 1000)))
		for i := range j.ReducerMB {
			j.ReducerMB[i] = per * float64(k)
		}
	default: // control: single small flow
		j.Mappers = g.pickPorts(rng, 1)
		j.Reducers = g.pickPorts(rng, 1)
		j.ReducerMB = []float64{smallMB(rng)}
	}
	return j
}

// logNormalWidth draws ⌈exp(N(mu, sigma))⌉ clamped to [1, maxWidth].
func logNormalWidth(rng *rand.Rand, mu, sigma float64, maxWidth int) int {
	w := int(math.Ceil(math.Exp(rng.NormFloat64()*sigma + mu)))
	if w > maxWidth {
		w = maxWidth
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mustDist panics on a distribution name the generator does not know;
// front ends validate with ValidDist before constructing a Generator.
func mustDist(name string) {
	if !ValidDist(name) {
		panic(fmt.Sprintf("trace: unknown workload distribution %q (want one of %v)", name, KnownDists))
	}
}
