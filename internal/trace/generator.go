package trace

import (
	"math"
	"math/rand"
	"sort"

	"sunflow/internal/coflow"
)

// Generator synthesizes a Facebook-like Coflow workload matching the
// statistics the Sunflow paper reports for its (non-redistributable) trace:
// ≥500 Coflows on a 150-port fabric over one hour, the Table 4 category mix
// (O2O 23.4%, O2M 9.9%, M2O 40.1%, M2M 26.6% of Coflows, with many-to-many
// Coflows carrying ≈99.9% of the bytes), MB-rounded flow sizes with a 1 MB
// floor, and a heavy tail of large shuffles. Generation is fully
// deterministic for a given configuration.
type Generator struct {
	// Ports is the fabric size. Zero selects 150 (the trace's fabric).
	Ports int
	// Coflows is the number of Coflows. Zero selects 526.
	Coflows int
	// HorizonSec is the arrival span in seconds. Zero selects one hour.
	HorizonSec float64
	// Seed drives all randomness.
	Seed int64
	// MaxWidth caps the mapper and reducer counts of many-to-many shuffles.
	// Zero selects 40.
	MaxWidth int
	// Dist selects the workload distribution: DistFacebook (the default),
	// DistGoogle, or DistIncast. Jobs and Stream panic on any other value;
	// front ends should validate with ValidDist first.
	Dist string
}

// withDefaults fills unset fields with the paper's workload parameters.
func (g Generator) withDefaults() Generator {
	if g.Ports == 0 {
		g.Ports = 150
	}
	if g.Coflows == 0 {
		g.Coflows = 526
	}
	if g.HorizonSec == 0 {
		g.HorizonSec = 3600
	}
	if g.MaxWidth == 0 {
		g.MaxWidth = 60
	}
	if g.Dist == "" {
		g.Dist = DistFacebook
	}
	mustDist(g.Dist)
	return g
}

// Category mix of Table 4.
var categoryShare = []struct {
	class string
	share float64
}{
	{"O2O", 0.234},
	{"O2M", 0.099},
	{"M2O", 0.401},
	{"M2M", 0.266},
}

// Jobs generates the workload in benchmark form.
func (g Generator) Jobs() (int, []Job) {
	g = g.withDefaults()
	rng := rand.New(rand.NewSource(g.Seed))

	// Exponential inter-arrivals filling the horizon.
	arrivals := make([]float64, g.Coflows)
	mean := g.HorizonSec / float64(g.Coflows)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() * mean
		arrivals[i] = t
	}
	// Normalize so the last arrival lands inside the horizon.
	scale := g.HorizonSec / (t + mean)
	for i := range arrivals {
		arrivals[i] *= scale
	}

	jobs := make([]Job, 0, g.Coflows)
	for i := 0; i < g.Coflows; i++ {
		jobs = append(jobs, g.genJob(rng, i, int64(arrivals[i]*1000)))
	}
	return g.Ports, jobs
}

// genJob draws one job's category and shape from the configured
// distribution. Jobs and Stream both call it with their rng positioned
// identically, which is what keeps the streamed workload bit-identical to the
// materialized one regardless of distribution.
func (g Generator) genJob(rng *rand.Rand, id int, arrivalMillis int64) Job {
	switch g.Dist {
	case DistGoogle:
		return g.genGoogleJob(rng, id, arrivalMillis)
	case DistIncast:
		return g.genIncastJob(rng, id, arrivalMillis)
	}
	return g.genFacebookJob(rng, id, arrivalMillis)
}

// genFacebookJob draws one job from the paper's Table 4 category mix.
func (g Generator) genFacebookJob(rng *rand.Rand, id int, arrivalMillis int64) Job {
	class := pickClass(rng)
	j := Job{ID: id, ArrivalMillis: arrivalMillis}
	switch class {
	case "O2O":
		j.Mappers = g.pickPorts(rng, 1)
		j.Reducers = g.pickPorts(rng, 1)
		j.ReducerMB = []float64{smallMB(rng)}
	case "O2M":
		j.Mappers = g.pickPorts(rng, 1)
		nr := 2 + rng.Intn(9)
		j.Reducers = g.pickPorts(rng, nr)
		j.ReducerMB = repeatMB(rng, nr)
	case "M2O":
		nm := 2 + rng.Intn(9)
		j.Mappers = g.pickPorts(rng, nm)
		j.Reducers = g.pickPorts(rng, 1)
		// Each mapper contributes ≥1 MB, so the reducer total scales
		// with the fan-in.
		j.ReducerMB = []float64{math.Max(float64(nm), smallMB(rng)*float64(nm))}
	case "M2M":
		// Two-mode volume mixture: most shuffles are modest, a heavy
		// tail of giants carries nearly all bytes (as in the trace,
		// where M2M byte share is 99.94% but most M2M Coflows are
		// small). Fan-in/out grows with volume — big jobs run many
		// tasks — which keeps individual subflows modest: the real
		// trace's multi-hundred-second port loads come from many flows
		// per port, not monster flows.
		var totalMB float64
		if rng.Float64() < 0.7 {
			totalMB = math.Min(pareto(rng, 1.3, 10), 2000)
		} else {
			totalMB = math.Min(pareto(rng, 1.05, 20000), 2e6)
		}
		width := int(math.Round(math.Sqrt(totalMB/50) * (0.7 + 0.7*rng.Float64())))
		nm := clampWidth(width, g.MaxWidth)
		nr := clampWidth(int(float64(width)*(0.7+0.7*rng.Float64())), g.MaxWidth)
		j.Mappers = g.pickPorts(rng, nm)
		j.Reducers = g.pickPorts(rng, nr)
		nm, nr = len(j.Mappers), len(j.Reducers)
		j.ReducerMB = make([]float64, nr)
		base := totalMB / float64(nr)
		for k := range j.ReducerMB {
			// Log-normal partition skew: real shuffles are far from
			// uniform across reducers, which is what fragments the
			// decomposition-based schedulers.
			skew := math.Exp(rng.NormFloat64() * 0.8)
			if skew < 0.15 {
				skew = 0.15
			}
			if skew > 6 {
				skew = 6
			}
			mb := base * skew
			// Round to MB with a floor of one MB per mapper so every
			// subflow is ≥ 1 MB after the even split.
			mb = math.Max(math.Round(mb), float64(nm))
			j.ReducerMB[k] = mb
		}
	}
	// Round small-category sizes to whole MB as the trace does.
	if class != "M2M" {
		for k := range j.ReducerMB {
			j.ReducerMB[k] = math.Max(1, math.Round(j.ReducerMB[k]))
		}
	}
	return j
}

// Trace generates the workload as Coflows.
func (g Generator) Trace() *Trace {
	ports, jobs := g.Jobs()
	return JobsToTrace(ports, jobs)
}

// JobStream yields the generator's workload one Job at a time, bit-identical
// to Jobs but with O(1) resident memory. Jobs must normalize arrivals by the
// full span before emitting the first job, so the stream burns one rng through
// every inter-arrival draw up front to learn the scale — that same rng, now
// positioned exactly where Jobs' rng sits after the arrival loop, then serves
// the per-job shape draws, while a second identically seeded rng replays the
// arrival draws lazily.
type JobStream struct {
	g      Generator
	arrRng *rand.Rand
	jobRng *rand.Rand
	scale  float64
	mean   float64
	t      float64
	i      int
}

// Stream returns a streaming view of the same workload Jobs materializes.
func (g Generator) Stream() *JobStream {
	g = g.withDefaults()
	jobRng := rand.New(rand.NewSource(g.Seed))
	mean := g.HorizonSec / float64(g.Coflows)
	t := 0.0
	for i := 0; i < g.Coflows; i++ {
		t += jobRng.ExpFloat64() * mean
	}
	scale := g.HorizonSec / (t + mean)
	return &JobStream{
		g:      g,
		arrRng: rand.New(rand.NewSource(g.Seed)),
		jobRng: jobRng,
		scale:  scale,
		mean:   mean,
	}
}

// Ports returns the fabric size.
func (s *JobStream) Ports() int { return s.g.Ports }

// Len returns the total number of jobs the stream yields.
func (s *JobStream) Len() int { return s.g.Coflows }

// Next yields the next job, false once the workload is exhausted.
func (s *JobStream) Next() (Job, bool) {
	if s.i >= s.g.Coflows {
		return Job{}, false
	}
	s.t += s.arrRng.ExpFloat64() * s.mean
	// (t*scale)*1000, in this association order, matches Jobs' arithmetic
	// bit for bit.
	j := s.g.genJob(s.jobRng, s.i, int64(s.t*s.scale*1000))
	s.i++
	return j, true
}

// Coflows adapts the stream into a sim.Source-compatible Coflow source.
// Generated arrivals are nondecreasing and ids ascend, so the stream already
// satisfies the simulator's ordering requirement.
func (s *JobStream) Coflows() *GenSource { return &GenSource{s: s} }

// GenSource yields the stream's jobs as Coflows, (nil, nil) at the end.
type GenSource struct {
	s *JobStream
}

// Next yields the next generated Coflow, (nil, nil) once exhausted.
func (g *GenSource) Next() (*coflow.Coflow, error) {
	j, ok := g.s.Next()
	if !ok {
		return nil, nil
	}
	return j.Coflow(), nil
}

// pickClass draws a category per the Table 4 mix.
func pickClass(rng *rand.Rand) string {
	u := rng.Float64()
	acc := 0.0
	for _, cs := range categoryShare {
		acc += cs.share
		if u < acc {
			return cs.class
		}
	}
	return "M2M"
}

// pickPorts draws k distinct ports, clamping k to the fabric size so small
// fabrics stay valid.
func (g Generator) pickPorts(rng *rand.Rand, k int) []int {
	if k > g.Ports {
		k = g.Ports
	}
	perm := rng.Perm(g.Ports)[:k]
	sort.Ints(perm)
	return perm
}

// clampWidth bounds a shuffle fan to [2, maxWidth].
func clampWidth(w, maxWidth int) int {
	if w > maxWidth {
		w = maxWidth
	}
	if w < 2 {
		w = 2
	}
	return w
}

// smallMB draws the size of a non-shuffle flow: mostly 1 MB, occasionally a
// few MB, matching the tiny byte share of the small categories.
func smallMB(rng *rand.Rand) float64 {
	if rng.Float64() < 0.95 {
		return 1
	}
	return 1 + float64(rng.Intn(3))
}

// repeatMB draws n small sizes.
func repeatMB(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = smallMB(rng)
	}
	return out
}

// pareto draws from a Pareto distribution with shape alpha and scale xm.
func pareto(rng *rand.Rand, alpha, xm float64) float64 {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}
