package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Generator synthesizes a Facebook-like Coflow workload matching the
// statistics the Sunflow paper reports for its (non-redistributable) trace:
// ≥500 Coflows on a 150-port fabric over one hour, the Table 4 category mix
// (O2O 23.4%, O2M 9.9%, M2O 40.1%, M2M 26.6% of Coflows, with many-to-many
// Coflows carrying ≈99.9% of the bytes), MB-rounded flow sizes with a 1 MB
// floor, and a heavy tail of large shuffles. Generation is fully
// deterministic for a given configuration.
type Generator struct {
	// Ports is the fabric size. Zero selects 150 (the trace's fabric).
	Ports int
	// Coflows is the number of Coflows. Zero selects 526.
	Coflows int
	// HorizonSec is the arrival span in seconds. Zero selects one hour.
	HorizonSec float64
	// Seed drives all randomness.
	Seed int64
	// MaxWidth caps the mapper and reducer counts of many-to-many shuffles.
	// Zero selects 40.
	MaxWidth int
}

// withDefaults fills unset fields with the paper's workload parameters.
func (g Generator) withDefaults() Generator {
	if g.Ports == 0 {
		g.Ports = 150
	}
	if g.Coflows == 0 {
		g.Coflows = 526
	}
	if g.HorizonSec == 0 {
		g.HorizonSec = 3600
	}
	if g.MaxWidth == 0 {
		g.MaxWidth = 60
	}
	return g
}

// Category mix of Table 4.
var categoryShare = []struct {
	class string
	share float64
}{
	{"O2O", 0.234},
	{"O2M", 0.099},
	{"M2O", 0.401},
	{"M2M", 0.266},
}

// Jobs generates the workload in benchmark form.
func (g Generator) Jobs() (int, []Job) {
	g = g.withDefaults()
	rng := rand.New(rand.NewSource(g.Seed))

	// Exponential inter-arrivals filling the horizon.
	arrivals := make([]float64, g.Coflows)
	mean := g.HorizonSec / float64(g.Coflows)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() * mean
		arrivals[i] = t
	}
	// Normalize so the last arrival lands inside the horizon.
	scale := g.HorizonSec / (t + mean)
	for i := range arrivals {
		arrivals[i] *= scale
	}

	jobs := make([]Job, 0, g.Coflows)
	for i := 0; i < g.Coflows; i++ {
		class := pickClass(rng)
		j := Job{ID: i, ArrivalMillis: int64(arrivals[i] * 1000)}
		switch class {
		case "O2O":
			j.Mappers = g.pickPorts(rng, 1)
			j.Reducers = g.pickPorts(rng, 1)
			j.ReducerMB = []float64{smallMB(rng)}
		case "O2M":
			j.Mappers = g.pickPorts(rng, 1)
			nr := 2 + rng.Intn(9)
			j.Reducers = g.pickPorts(rng, nr)
			j.ReducerMB = repeatMB(rng, nr)
		case "M2O":
			nm := 2 + rng.Intn(9)
			j.Mappers = g.pickPorts(rng, nm)
			j.Reducers = g.pickPorts(rng, 1)
			// Each mapper contributes ≥1 MB, so the reducer total scales
			// with the fan-in.
			j.ReducerMB = []float64{math.Max(float64(nm), smallMB(rng)*float64(nm))}
		case "M2M":
			// Two-mode volume mixture: most shuffles are modest, a heavy
			// tail of giants carries nearly all bytes (as in the trace,
			// where M2M byte share is 99.94% but most M2M Coflows are
			// small). Fan-in/out grows with volume — big jobs run many
			// tasks — which keeps individual subflows modest: the real
			// trace's multi-hundred-second port loads come from many flows
			// per port, not monster flows.
			var totalMB float64
			if rng.Float64() < 0.7 {
				totalMB = math.Min(pareto(rng, 1.3, 10), 2000)
			} else {
				totalMB = math.Min(pareto(rng, 1.05, 20000), 2e6)
			}
			width := int(math.Round(math.Sqrt(totalMB/50) * (0.7 + 0.7*rng.Float64())))
			nm := clampWidth(width, g.MaxWidth)
			nr := clampWidth(int(float64(width)*(0.7+0.7*rng.Float64())), g.MaxWidth)
			j.Mappers = g.pickPorts(rng, nm)
			j.Reducers = g.pickPorts(rng, nr)
			nm, nr = len(j.Mappers), len(j.Reducers)
			j.ReducerMB = make([]float64, nr)
			base := totalMB / float64(nr)
			for k := range j.ReducerMB {
				// Log-normal partition skew: real shuffles are far from
				// uniform across reducers, which is what fragments the
				// decomposition-based schedulers.
				skew := math.Exp(rng.NormFloat64() * 0.8)
				if skew < 0.15 {
					skew = 0.15
				}
				if skew > 6 {
					skew = 6
				}
				mb := base * skew
				// Round to MB with a floor of one MB per mapper so every
				// subflow is ≥ 1 MB after the even split.
				mb = math.Max(math.Round(mb), float64(nm))
				j.ReducerMB[k] = mb
			}
		}
		// Round small-category sizes to whole MB as the trace does.
		if class != "M2M" {
			for k := range j.ReducerMB {
				j.ReducerMB[k] = math.Max(1, math.Round(j.ReducerMB[k]))
			}
		}
		jobs = append(jobs, j)
	}
	return g.Ports, jobs
}

// Trace generates the workload as Coflows.
func (g Generator) Trace() *Trace {
	ports, jobs := g.Jobs()
	return JobsToTrace(ports, jobs)
}

// pickClass draws a category per the Table 4 mix.
func pickClass(rng *rand.Rand) string {
	u := rng.Float64()
	acc := 0.0
	for _, cs := range categoryShare {
		acc += cs.share
		if u < acc {
			return cs.class
		}
	}
	return "M2M"
}

// pickPorts draws k distinct ports, clamping k to the fabric size so small
// fabrics stay valid.
func (g Generator) pickPorts(rng *rand.Rand, k int) []int {
	if k > g.Ports {
		k = g.Ports
	}
	perm := rng.Perm(g.Ports)[:k]
	sort.Ints(perm)
	return perm
}

// clampWidth bounds a shuffle fan to [2, maxWidth].
func clampWidth(w, maxWidth int) int {
	if w > maxWidth {
		w = maxWidth
	}
	if w < 2 {
		w = 2
	}
	return w
}

// smallMB draws the size of a non-shuffle flow: mostly 1 MB, occasionally a
// few MB, matching the tiny byte share of the small categories.
func smallMB(rng *rand.Rand) float64 {
	if rng.Float64() < 0.95 {
		return 1
	}
	return 1 + float64(rng.Intn(3))
}

// repeatMB draws n small sizes.
func repeatMB(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = smallMB(rng)
	}
	return out
}

// pareto draws from a Pareto distribution with shape alpha and scale xm.
func pareto(rng *rand.Rand, alpha, xm float64) float64 {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}
