package daemon

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/obs"
	"sunflow/internal/sim"
	"sunflow/internal/trace"
)

// streamTrace feeds a trace through an Engine as the daemon would: one
// register event per Coflow in arrival order, then advances until the live
// set drains. It fails the test on any rejection.
func streamTrace(t *testing.T, e *Engine, coflows []*coflow.Coflow) {
	t.Helper()
	for _, c := range coflows {
		flows := make([]FlowSpec, 0, len(c.Flows))
		for _, f := range c.Flows {
			flows = append(flows, FlowSpec{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes})
		}
		if _, err := e.Apply(Event{Kind: KindRegister, At: c.Arrival, Coflow: c.ID, Flows: flows}); err != nil {
			t.Fatalf("register coflow %d: %v", c.ID, err)
		}
	}
	drain(t, e)
}

// drain advances the engine until every live Coflow completes.
func drain(t *testing.T, e *Engine) {
	t.Helper()
	for i := 0; e.LiveCount() > 0; i++ {
		if i > 1000 {
			t.Fatalf("engine did not drain: %d live at t=%v", e.LiveCount(), e.Now())
		}
		next := math.Inf(1)
		for _, ls := range e.Live() {
			next = math.Min(next, ls.PlannedFinish)
		}
		if math.IsInf(next, 1) {
			t.Fatalf("no planned finish for %d live coflows", e.LiveCount())
		}
		if _, err := e.Apply(Event{Kind: KindAdvance, At: next + 1}); err != nil {
			t.Fatalf("advance to %v: %v", next, err)
		}
	}
}

// TestEngineMatchesSimulator is the equivalence property the daemon's
// correctness stands on: streaming a workload's arrivals through the Engine —
// register events at each arrival instant, then advancing time — produces
// per-Coflow completion times and switch counts bit-identical to replaying
// the same workload through sim.RunCircuit.
func TestEngineMatchesSimulator(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			tr := trace.Generator{Ports: 12, Coflows: 30, HorizonSec: 40, MaxWidth: 6, Seed: seed}.Trace()
			cfg := EngineConfig{Ports: tr.Ports, LinkBps: 1e9, Delta: 0.01}

			ref, err := sim.RunCircuit(tr.Coflows, sim.CircuitOptions{
				Ports: tr.Ports, LinkBps: cfg.LinkBps, Delta: cfg.Delta,
			})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}

			e, err := NewEngine(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			streamTrace(t, e, tr.Coflows)

			got := e.Completions()
			if len(got) != len(ref.CCT) {
				t.Fatalf("completions: engine %d, sim %d", len(got), len(ref.CCT))
			}
			for id, want := range ref.CCT {
				c, ok := got[id]
				if !ok {
					t.Fatalf("coflow %d missing from engine completions", id)
				}
				if c.CCT != want {
					t.Errorf("coflow %d: CCT engine %v, sim %v", id, c.CCT, want)
				}
				if c.Finish != ref.Finish[id] {
					t.Errorf("coflow %d: finish engine %v, sim %v", id, c.Finish, ref.Finish[id])
				}
				if c.Switches != ref.SwitchCount[id] {
					t.Errorf("coflow %d: switches engine %d, sim %d", id, c.Switches, ref.SwitchCount[id])
				}
			}
		})
	}
}

// TestEngineObserverDoesNotAffectState pins the determinism boundary: running
// with metrics enabled must yield the same digest as running without.
func TestEngineObserverDoesNotAffectState(t *testing.T) {
	tr := trace.Generator{Ports: 8, Coflows: 12, HorizonSec: 10, MaxWidth: 4, Seed: 7}.Trace()
	cfg := EngineConfig{Ports: tr.Ports, LinkBps: 1e9, Delta: 0.01}

	bare, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamTrace(t, bare, tr.Coflows)

	observed, err := NewEngine(cfg, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	streamTrace(t, observed, tr.Coflows)

	if bare.Digest() != observed.Digest() {
		t.Fatalf("observer changed engine state: %s vs %s", bare.Digest(), observed.Digest())
	}
}

// TestEngineDigestDeterminism: same events, same digest; different events,
// different digest.
func TestEngineDigestDeterminism(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	mk := func(bytes float64) string {
		e, err := NewEngine(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(Event{Kind: KindRegister, At: 1, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: bytes}}}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(Event{Kind: KindAdvance, At: 100}); err != nil {
			t.Fatal(err)
		}
		return e.Digest()
	}
	if mk(1e6) != mk(1e6) {
		t.Error("identical event sequences produced different digests")
	}
	if mk(1e6) == mk(2e6) {
		t.Error("different event sequences produced identical digests")
	}
}

// TestEngineRegisterIdempotent: an exact duplicate registration is accepted
// as a no-op (client retry of an acked request); a conflicting one is
// rejected and leaves completions unchanged.
func TestEngineRegisterIdempotent(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: KindRegister, At: 0, Coflow: 3, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}
	if applied, err := e.Apply(ev); err != nil || !applied {
		t.Fatalf("first register: applied=%v err=%v", applied, err)
	}
	if applied, err := e.Apply(ev); err != nil || applied {
		t.Fatalf("duplicate register: applied=%v err=%v (want no-op)", applied, err)
	}
	conflict := ev
	conflict.Flows = []FlowSpec{{Src: 0, Dst: 1, Bytes: 5e6}}
	if _, err := e.Apply(conflict); !errors.Is(err, ErrDuplicateCoflow) {
		t.Fatalf("conflicting register: err=%v, want ErrDuplicateCoflow", err)
	}
	drain(t, e)
	if c, ok := e.Completion(3); !ok || c.CCT <= 0 {
		t.Fatalf("coflow 3 completion = %+v, ok=%v", c, ok)
	}
}

// TestEngineCompletedRegisterIdempotencyChecksSpec: re-registering a finished
// id is idempotent only for a byte-identical registration; different flows or
// priority at the same arrival time must reject, exactly like the live-set
// path, instead of being silently acked as a duplicate.
func TestEngineCompletedRegisterIdempotencyChecksSpec(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}
	if _, err := e.Apply(ev); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	if _, ok := e.Completion(1); !ok {
		t.Fatal("coflow 1 did not complete")
	}
	if applied, err := e.Apply(ev); err != nil || applied {
		t.Fatalf("identical re-register after completion: applied=%v err=%v (want no-op)", applied, err)
	}
	diffFlows := ev
	diffFlows.Flows = []FlowSpec{{Src: 0, Dst: 1, Bytes: 7e6}}
	if _, err := e.Apply(diffFlows); !errors.Is(err, ErrDuplicateCoflow) {
		t.Fatalf("re-register with different flows: err=%v, want ErrDuplicateCoflow", err)
	}
	diffPrio := ev
	diffPrio.Priority = 5
	if _, err := e.Apply(diffPrio); !errors.Is(err, ErrDuplicateCoflow) {
		t.Fatalf("re-register with different priority: err=%v, want ErrDuplicateCoflow", err)
	}
}

// TestEngineRejectsBadEvents: validation failures reject deterministically
// and leave the live set untouched.
func TestEngineRejectsBadEvents(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{Kind: "bogus", At: 0},
		{Kind: KindRegister, At: math.NaN(), Coflow: 1},
		{Kind: KindRegister, At: -1, Coflow: 1},
		{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 9, Dst: 0, Bytes: 1}}},
		{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: math.Inf(1)}}},
		{Kind: KindFault, At: 0, Port: -1},
		{Kind: KindComplete, At: 0, Coflow: 42},
	}
	for _, ev := range bad {
		if _, err := e.Apply(ev); err == nil {
			t.Errorf("event %+v: accepted, want rejection", ev)
		}
	}
	if e.LiveCount() != 0 || e.DoneCount() != 0 {
		t.Fatalf("rejections mutated state: live=%d done=%d", e.LiveCount(), e.DoneCount())
	}
}

// TestEnginePriorityOverride: a higher-priority Coflow is scheduled ahead of
// an equal-length rival registered at the same instant, completing first even
// though shortest-first alone would favor the rival's lower id.
func TestEnginePriorityOverride(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both Coflows demand the same port pair, so they serialize; priority
	// decides who goes first.
	for _, ev := range []Event{
		{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e8}}},
		{Kind: KindRegister, At: 0, Coflow: 2, Priority: 10, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e8}}},
	} {
		if _, err := e.Apply(ev); err != nil {
			t.Fatalf("register %d: %v", ev.Coflow, err)
		}
	}
	drain(t, e)
	c1, _ := e.Completion(1)
	c2, _ := e.Completion(2)
	if !(c2.Finish < c1.Finish) {
		t.Fatalf("priority override ignored: prio finish %v, default finish %v", c2.Finish, c1.Finish)
	}
}

// TestEngineForcedComplete: an external complete event retires a live Coflow
// immediately and frees its planned capacity.
func TestEngineForcedComplete(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e9}}}); err != nil {
		t.Fatal(err)
	}
	if applied, err := e.Apply(Event{Kind: KindComplete, At: 0.5, Coflow: 1}); err != nil || !applied {
		t.Fatalf("complete: applied=%v err=%v", applied, err)
	}
	c, ok := e.Completion(1)
	if !ok || !c.Forced || c.Finish != 0.5 {
		t.Fatalf("forced completion = %+v, ok=%v", c, ok)
	}
	// Completing again is idempotent.
	if applied, err := e.Apply(Event{Kind: KindComplete, At: 0.7, Coflow: 1}); err != nil || applied {
		t.Fatalf("re-complete: applied=%v err=%v (want no-op)", applied, err)
	}
}

// TestEngineFaultTransient: a transient outage on the serving port delays the
// victim Coflow but it still completes; a fault on an unused port is a no-op
// for the schedule.
func TestEngineFaultTransient(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	run := func(faultPort int) Completion {
		e, err := NewEngine(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e9}}}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(Event{Kind: KindFault, At: 0.1, Port: faultPort, Duration: 2}); err != nil {
			t.Fatal(err)
		}
		drain(t, e)
		c, ok := e.Completion(1)
		if !ok {
			t.Fatal("coflow 1 never completed")
		}
		return c
	}
	clean := run(3)   // port 3 carries nothing
	delayed := run(0) // port 0 is the source
	if delayed.Finish <= clean.Finish {
		t.Fatalf("outage did not delay completion: faulty %v, clean %v", delayed.Finish, clean.Finish)
	}
	if delayed.Stranded {
		t.Fatal("transient outage stranded the coflow")
	}
}

// TestEngineFaultPermanent: a permanent outage strands the flows touching the
// dead port; the Coflow still retires (stranded) and routable demand drains.
func TestEngineFaultPermanent(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{
		{Src: 0, Dst: 1, Bytes: 1e8},
		{Src: 2, Dst: 3, Bytes: 1e8},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(Event{Kind: KindFault, At: 0.0001, Port: 3, Duration: 0}); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	c, ok := e.Completion(1)
	if !ok {
		t.Fatal("coflow 1 never retired")
	}
	if !c.Stranded || c.Bytes <= 0 {
		t.Fatalf("permanent outage not recorded: %+v", c)
	}
}

// TestEngineLateEventAppliesAtCurrentClock: logical time never goes
// backwards — an event stamped before the Engine clock applies "late" at the
// clock, with its At still counting as the arrival.
func TestEngineLateEventAppliesAtCurrentClock(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(Event{Kind: KindAdvance, At: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(Event{Kind: KindRegister, At: 3, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Fatalf("clock moved backwards: now=%v", e.Now())
	}
	drain(t, e)
	c, _ := e.Completion(1)
	if c.Arrival != 3 {
		t.Fatalf("arrival = %v, want the event's At (3)", c.Arrival)
	}
	if c.Finish < 10 {
		t.Fatalf("finish %v precedes the clock the Coflow was admitted at", c.Finish)
	}
	if c.CCT != c.Finish-3 {
		t.Fatalf("CCT %v inconsistent with arrival 3, finish %v", c.CCT, c.Finish)
	}
}
