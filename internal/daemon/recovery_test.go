package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sunflow/internal/trace"
)

// buildWorkload derives a deterministic event sequence from a seed: trace
// registrations in arrival order with advances, transient faults and forced
// completions interleaved.
func buildWorkload(seed int64) []Event {
	tr := trace.Generator{Ports: 8, Coflows: 10, HorizonSec: 8, MaxWidth: 4, Seed: seed}.Trace()
	rng := rand.New(rand.NewSource(seed * 7919))
	var evs []Event
	for i, c := range tr.Coflows {
		flows := make([]FlowSpec, 0, len(c.Flows))
		for _, f := range c.Flows {
			flows = append(flows, FlowSpec{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes})
		}
		evs = append(evs, Event{Kind: KindRegister, At: c.Arrival, Coflow: c.ID, Priority: rng.Intn(3), Flows: flows})
		switch rng.Intn(5) {
		case 0:
			evs = append(evs, Event{Kind: KindAdvance, At: c.Arrival + rng.Float64()})
		case 1:
			evs = append(evs, Event{Kind: KindFault, At: c.Arrival + 0.1, Port: rng.Intn(tr.Ports), Duration: 0.5 + rng.Float64()})
		case 2:
			if i > 0 {
				evs = append(evs, Event{Kind: KindComplete, At: c.Arrival + 0.05, Coflow: tr.Coflows[rng.Intn(i)].ID})
			}
		}
	}
	evs = append(evs, Event{Kind: KindAdvance, At: 1e4})
	return evs
}

// fingerprint captures everything the recovery property compares.
type fingerprint struct {
	digest string
	seq    uint64
	done   map[int]Completion
	now    float64
}

func fp(s *Store) fingerprint {
	return fingerprint{
		digest: s.Engine().Digest(),
		seq:    s.LastSeq(),
		done:   s.Engine().Completions(),
		now:    s.Engine().Now(),
	}
}

// acceptAll feeds events through the store, checkpointing after event number
// checkpointAt (0 disables). Apply rejections are tolerated — workloads can
// legitimately force-complete an already-done Coflow — as long as both the
// reference and recovered runs see the same ones.
func acceptAll(t *testing.T, s *Store, evs []Event, checkpointAt int) {
	t.Helper()
	for i, ev := range evs {
		if _, _, err := s.Accept(ev); err != nil && !errors.Is(err, ErrUnknownCoflow) {
			t.Fatalf("accept event %d (%+v): %v", i, ev, err)
		}
		if checkpointAt > 0 && i+1 == checkpointAt {
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after event %d: %v", i, err)
			}
		}
	}
}

// TestRecoveryBitIdentical is the headline crash-safety property, run over 50
// seeded workloads: killing the daemon after any prefix of accepted events —
// optionally with a checkpoint somewhere in the prefix and a torn partial
// record at the WAL tail — then restarting and streaming the rest produces an
// Engine bit-identical (schedule digest, completions, sequence, clock) to one
// that never crashed.
func TestRecoveryBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			evs := buildWorkload(seed)
			cfg := EngineConfig{Ports: 8, LinkBps: 1e9, Delta: 0.01}
			rng := rand.New(rand.NewSource(seed))
			kill := 1 + rng.Intn(len(evs)-1)
			checkpointAt := 0
			if rng.Intn(2) == 0 {
				checkpointAt = 1 + rng.Intn(kill)
			}

			ref, err := Open(t.TempDir(), cfg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			acceptAll(t, ref, evs, 0)

			dir := t.TempDir()
			crash, err := Open(dir, cfg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			acceptAll(t, crash, evs[:kill], checkpointAt)
			// kill -9: no checkpoint, no graceful close. Appends are fsynced,
			// so dropping the handle loses nothing acknowledged.
			crash.Close()
			if rng.Intn(2) == 0 {
				// Torn tail: the crash interrupted an append mid-record.
				f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte("deadbeef {\"kind\":\"regi")); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			rec, err := Open(dir, cfg, nil, nil)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer rec.Close()
			if want := kill - int(boolToInt(checkpointAt > 0))*checkpointAt; rec.Recovered() != want {
				t.Fatalf("recovered %d events, want %d (kill=%d checkpoint=%d)", rec.Recovered(), want, kill, checkpointAt)
			}
			acceptAll(t, rec, evs[kill:], 0)

			got, want := fp(rec), fp(ref)
			if got.digest != want.digest {
				t.Errorf("digest diverged after recovery: %s vs %s", got.digest, want.digest)
			}
			if got.seq != want.seq {
				t.Errorf("sequence diverged: %d vs %d", got.seq, want.seq)
			}
			if got.now != want.now {
				t.Errorf("clock diverged: %v vs %v", got.now, want.now)
			}
			if !reflect.DeepEqual(got.done, want.done) {
				t.Errorf("completions diverged:\n got %+v\nwant %+v", got.done, want.done)
			}
		})
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestSnapshotRoundTrip: State → restore → State is byte-stable mid-run,
// while live Coflows, a plan, outages and completions all exist.
func TestSnapshotRoundTrip(t *testing.T) {
	evs := buildWorkload(3)
	cfg := EngineConfig{Ports: 8, LinkBps: 1e9, Delta: 0.01}
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs[:len(evs)/2] {
		_, _ = e.Apply(ev)
	}
	if e.LiveCount() == 0 {
		t.Fatal("workload half-point has no live coflows; test is vacuous")
	}
	st := e.State()
	clone, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.restoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone.State(), st) {
		t.Fatal("State → restoreState → State is not a fixed point")
	}
	// The clone must continue exactly like the original.
	for _, ev := range evs[len(evs)/2:] {
		_, _ = e.Apply(ev)
		_, _ = clone.Apply(ev)
	}
	if e.Digest() != clone.Digest() {
		t.Fatalf("restored engine diverged: %s vs %s", e.Digest(), clone.Digest())
	}
}

// TestStoreSkipsPreCheckpointRecords covers the crash window between snapshot
// rename and WAL rotation: records the snapshot already includes must not be
// re-applied.
func TestStoreSkipsPreCheckpointRecords(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	dir := t.TempDir()
	s, err := Open(dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}
	acked, _, err := s.Accept(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := s.Engine().Digest()
	s.Close()

	// Simulate the un-rotated WAL: re-append the already-checkpointed record.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := appendWALRecord(f, acked); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := Open(dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Recovered() != 0 {
		t.Fatalf("replayed %d pre-checkpoint records, want 0", rec.Recovered())
	}
	if rec.Engine().Digest() != want {
		t.Fatal("pre-checkpoint record perturbed recovered state")
	}
}

// TestStoreRejectsConfigMismatch: a data directory snapshotted under one
// EngineConfig must refuse to open under another.
func TestStoreRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	s, err := Open(dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Accept(Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	other := cfg
	other.Delta = 0.02
	if _, err := Open(dir, other, nil, nil); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("open with changed config: err=%v, want ErrConfigMismatch", err)
	}
}

// TestWALTornTailTruncated: recovery drops a damaged tail and subsequent
// appends land on a clean record boundary.
func TestWALTornTailTruncated(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	dir := t.TempDir()
	s, err := Open(dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Accept(Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	walPath := filepath.Join(dir, walName)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, tail := range []string{
		"garbage",                     // no frame at all
		"00000000 {\"kind\":\"regist", // unterminated record
		"ffffffff {\"kind\":\"advance\",\"at\":1}\n", // bad checksum
	} {
		if err := os.WriteFile(walPath, append(append([]byte{}, intact...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir, cfg, nil, nil)
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if rec.Recovered() != 1 {
			t.Fatalf("tail %q: recovered %d records, want 1", tail, rec.Recovered())
		}
		// The tail must be gone and the log appendable.
		if _, _, err := rec.Accept(Event{Kind: KindAdvance, At: 5}); err != nil {
			t.Fatalf("tail %q: append after truncation: %v", tail, err)
		}
		rec.Close()
		again, err := Open(dir, cfg, nil, nil)
		if err != nil {
			t.Fatalf("tail %q: reopen: %v", tail, err)
		}
		if again.Recovered() != 2 {
			t.Fatalf("tail %q: reopen recovered %d records, want 2", tail, again.Recovered())
		}
		again.Close()
		// Reset for the next tail variant.
		if err := os.WriteFile(walPath, intact, 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(filepath.Join(dir, snapshotName))
	}
}

// TestStoreRewindsPartialAppend: a failed append that leaves partial garbage
// at the WAL tail must not poison the record a retry appends after it — the
// store rewinds to the last good offset first. Without the rewind, recovery
// would truncate at the garbage and discard the retried record even though it
// was fsynced and acknowledged.
func TestStoreRewindsPartialAppend(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	dir := t.TempDir()
	s, err := Open(dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Accept(Event{Kind: KindRegister, At: 0, Coflow: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: partial bytes past the last good record, as a
	// failed appendWALRecord would leave them, with the failure flagged.
	if _, err := s.wal.Write([]byte("00000000 {\"kind\":\"regi")); err != nil {
		t.Fatal(err)
	}
	s.dirty = true
	// The retry must rewind before appending, not land after the garbage.
	if _, _, err := s.Accept(Event{Kind: KindAdvance, At: 5}); err != nil {
		t.Fatalf("accept after failed append: %v", err)
	}
	want := s.Engine().Digest()
	s.Close()

	rec, err := Open(dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Recovered() != 2 {
		t.Fatalf("recovered %d records, want 2 — the retried append was lost", rec.Recovered())
	}
	if got := rec.Engine().Digest(); got != want {
		t.Fatalf("digest after recovery %s, want %s", got, want)
	}
}

// TestStoreAcceptClassifiesWALFailures: append failures are walErrors
// (nothing persisted or applied — safe to retry), while Engine rejections
// after a durable append are not; retrying those would consume another WAL
// record and mutate the Engine again.
func TestStoreAcceptClassifiesWALFailures(t *testing.T) {
	cfg := EngineConfig{Ports: 4, LinkBps: 1e9, Delta: 0.01}
	s, err := Open(t.TempDir(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A deterministic rejection past a durable append is not a WAL failure.
	if _, _, err := s.Accept(Event{Kind: KindComplete, At: 0, Coflow: 9}); !errors.Is(err, ErrUnknownCoflow) || isWALError(err) {
		t.Fatalf("rejection err=%v, want ErrUnknownCoflow and not a walError", err)
	}
	seq := s.LastSeq()
	if seq != 1 {
		t.Fatalf("rejection consumed seq %d, want 1 (still WAL-logged)", seq)
	}
	// Break the WAL handle: appends now fail, and must classify as walError
	// without consuming a sequence number.
	s.wal.Close()
	_, _, err = s.Accept(Event{Kind: KindAdvance, At: 1})
	if !isWALError(err) {
		t.Fatalf("append failure err=%v, want a walError", err)
	}
	if s.LastSeq() != seq {
		t.Fatalf("failed append consumed seq %d", s.LastSeq())
	}
	// The wrap survives fmt.Errorf chains like acceptWithRetry's give-up.
	if !isWALError(fmt.Errorf("after retries: %w", err)) {
		t.Fatal("walError lost through error wrapping")
	}
	s.wal = nil // already closed
}

// TestReadWALBoundedStopsAtOversizedRegion: a corrupt region exceeding the
// record limit — with or without a newline — ends the scan at the last good
// record instead of buffering the whole region.
func TestReadWALBoundedStopsAtOversizedRegion(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := appendWALRecord(f, Event{Seq: 1, Kind: KindAdvance, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte{'x'}, 1<<20) // newline-free
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		events, good, err := readWALBounded(f, 4096)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(events) != 1 || good != int64(n) {
			t.Fatalf("%s: %d events, good=%d, want 1 event ending at %d", label, len(events), good, n)
		}
	}
	check("newline-free garbage")
	if _, err := f.Write([]byte{'\n'}); err != nil {
		t.Fatal(err)
	}
	check("newline-terminated oversized line")
}

// TestInfFloatRoundTrip pins the snapshot encoding of the two infinities.
func TestInfFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.Inf(1), math.Inf(-1), 1e308} {
		raw, err := infFloat(v).MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back infFloat
		if err := back.UnmarshalJSON(raw); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if float64(back) != v {
			t.Fatalf("round trip %v → %s → %v", v, raw, float64(back))
		}
	}
}
