package daemon

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/obs"
	"sunflow/internal/trace"
)

// twinEngines builds one incremental and one FullReplan engine for the same
// fabric, each with its own observer.
func twinEngines(t *testing.T, ports int) (inc, full *Engine, oi, of *obs.Observer) {
	t.Helper()
	cfg := EngineConfig{Ports: ports, LinkBps: 1e9, Delta: 0.01}
	oi = obs.NewWith(obs.NewRegistry(), nil)
	of = obs.NewWith(obs.NewRegistry(), nil)
	var err error
	if inc, err = NewEngine(cfg, oi); err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.FullReplan = true
	if full, err = NewEngine(fcfg, of); err != nil {
		t.Fatal(err)
	}
	return inc, full, oi, of
}

// incrementalEventScript turns a seed into a stream of daemon events: register
// events in arrival order interleaved with advances at arbitrary instants,
// occasionally a forced completion, and (in some cases) a fault — which gates
// the incremental path off and must do so identically on both engines.
func incrementalEventScript(rng *rand.Rand, withFault bool) []Event {
	tr := trace.Generator{
		Ports:      6 + rng.Intn(4),
		Coflows:    10 + rng.Intn(12),
		HorizonSec: 2 + rng.Float64()*4,
		MaxWidth:   1 + rng.Intn(4),
		Seed:       rng.Int63(),
	}.Trace()
	evs := make([]Event, 0, 2*len(tr.Coflows)+8)
	for i, c := range tr.Coflows {
		flows := make([]FlowSpec, 0, len(c.Flows))
		for _, f := range c.Flows {
			flows = append(flows, FlowSpec{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes})
		}
		ev := Event{Kind: KindRegister, At: c.Arrival, Coflow: c.ID, Flows: flows}
		if rng.Intn(4) == 0 {
			ev.Priority = 1
		}
		evs = append(evs, ev)
		if rng.Intn(3) == 0 {
			// Advance partway into the gap before the next arrival, so
			// replans happen at instants that are not arrival times.
			evs = append(evs, Event{Kind: KindAdvance, At: c.Arrival + rng.Float64()})
		}
		if withFault && i == len(tr.Coflows)/2 {
			evs = append(evs, Event{Kind: KindFault, At: c.Arrival + 0.1, Port: rng.Intn(tr.Ports), Duration: 0.5})
		}
		if rng.Intn(8) == 0 {
			evs = append(evs, Event{Kind: KindComplete, At: c.Arrival + rng.Float64()*0.5, Coflow: c.ID})
		}
	}
	// Drain: march time well past the horizon in a few strides.
	last := tr.Coflows[len(tr.Coflows)-1].Arrival
	for k := 1; k <= 4; k++ {
		evs = append(evs, Event{Kind: KindAdvance, At: last + float64(k)*200})
	}
	return evs
}

// applyBoth feeds the same event to both engines; events an engine rejects
// must be rejected by the other too.
func applyBoth(t *testing.T, inc, full *Engine, ev Event) bool {
	t.Helper()
	ai, erri := inc.Apply(ev)
	af, errf := full.Apply(ev)
	if (erri == nil) != (errf == nil) || ai != af {
		t.Fatalf("event %+v: incremental applied=%v err=%v, full applied=%v err=%v", ev, ai, erri, af, errf)
	}
	return erri == nil
}

// TestQuickEngineIncrementalBitExact is the daemon side of the differential
// property: over random event streams, an engine with schedule reuse enabled
// must stay bit-identical to a FullReplan engine after every single event —
// same digest chain (which folds the whole plan), and at the end the same
// completions and plan.
func TestQuickEngineIncrementalBitExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		withFault := rng.Intn(4) == 0
		evs := incrementalEventScript(rng, withFault)
		inc, full, _, _ := twinEngines(t, 16)
		for i, ev := range evs {
			applyBoth(t, inc, full, ev)
			if inc.Digest() != full.Digest() {
				t.Logf("seed %d: digests diverge after event %d (%+v)", seed, i, ev)
				return false
			}
		}
		if !reflect.DeepEqual(inc.Completions(), full.Completions()) {
			t.Logf("seed %d: completions diverge", seed)
			return false
		}
		if !reflect.DeepEqual(inc.Plan(), full.Plan()) {
			t.Logf("seed %d: final plans diverge", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineIncrementalSkipReconciliation pins the daemon's
// sched.intra_skipped counter to ground truth: across the same event stream,
// the incremental engine's intra passes plus skips must equal the FullReplan
// engine's intra passes, pass for pass, and a FullReplan engine never skips.
func TestEngineIncrementalSkipReconciliation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := incrementalEventScript(rng, false)
		inc, full, oi, of := twinEngines(t, 16)
		for _, ev := range evs {
			applyBoth(t, inc, full, ev)
		}
		if of.IntraSkipped.Load() != 0 {
			t.Logf("seed %d: FullReplan engine skipped %d intra passes", seed, of.IntraSkipped.Load())
			return false
		}
		if oi.SchedPasses.Load() != of.SchedPasses.Load() {
			t.Logf("seed %d: sched passes diverge: %d vs %d", seed, oi.SchedPasses.Load(), of.SchedPasses.Load())
			return false
		}
		if oi.IntraPasses.Load()+oi.IntraSkipped.Load() != of.IntraPasses.Load() {
			t.Logf("seed %d: intra %d + skipped %d != full intra %d", seed,
				oi.IntraPasses.Load(), oi.IntraSkipped.Load(), of.IntraPasses.Load())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
