package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sunflow/internal/fault"
	"sunflow/internal/obs"
)

// Config tunes the Daemon's service behavior. Engine and DataDir are the only
// required fields; everything else has a production default.
type Config struct {
	// Engine fixes the fabric and scheduling parameters. It must match the
	// data directory's history (Store enforces this).
	Engine EngineConfig
	// DataDir holds the WAL and snapshots.
	DataDir string

	// QueueSize bounds the intake queue between the HTTP handlers and the
	// apply loop; a full queue exerts backpressure until the request deadline
	// fires. Zero selects 256.
	QueueSize int
	// MaxInflight is the load-shedding threshold: requests arriving while
	// this many are already queued or being applied are rejected immediately
	// with ErrOverloaded (HTTP 429). Zero selects 2×QueueSize.
	MaxInflight int
	// RequestTimeout bounds how long a request may wait in the intake queue
	// before it is shed. Zero selects 5s; it composes with (never extends)
	// the client's own context deadline.
	RequestTimeout time.Duration

	// CheckpointEvery snapshots state and rotates the WAL after this many
	// accepted events. Zero selects 1024; negative disables count-based
	// checkpoints.
	CheckpointEvery int
	// CheckpointInterval snapshots on a wall-clock period regardless of
	// traffic. Zero selects 30s; negative disables the timer.
	CheckpointInterval time.Duration

	// WatchdogTimeout is how long one event may stay in apply before the
	// daemon declares its replan loop wedged and fails readiness. Zero
	// selects 30s; negative disables the watchdog.
	WatchdogTimeout time.Duration

	// Retry schedules re-attempts after transient accept failures (WAL I/O
	// errors); deterministic rejections are never retried. A zero value
	// selects {Base: 10ms, Factor: 2, Cap: 1s} in seconds.
	Retry fault.Backoff
	// MaxRetries bounds those re-attempts. Zero selects 5; negative disables
	// retries.
	MaxRetries int

	// Obs optionally instruments the Engine's scheduler internals.
	Obs *obs.Observer
	// Metrics optionally records the daemon's own counters.
	Metrics *obs.DaemonMetrics
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.QueueSize == 0 {
		c.QueueSize = 256
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 2 * c.QueueSize
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1024
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.WatchdogTimeout == 0 {
		c.WatchdogTimeout = 30 * time.Second
	}
	if c.Retry == (fault.Backoff{}) {
		c.Retry = fault.Backoff{Base: 0.010, Factor: 2, Cap: 1}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	return c
}

// Service-level rejections, distinct from the Engine's deterministic event
// rejections.
var (
	// ErrOverloaded sheds a request: the in-flight limit is reached or the
	// intake queue stayed full past the request deadline. HTTP 429.
	ErrOverloaded = errors.New("daemon: overloaded, retry later")
	// ErrDraining rejects new work during graceful shutdown. HTTP 503.
	ErrDraining = errors.New("daemon: draining")
	// ErrStopped rejects work after shutdown completed.
	ErrStopped = errors.New("daemon: stopped")
	// ErrWedged is what Ready reports while the watchdog considers the apply
	// loop stuck.
	ErrWedged = errors.New("daemon: replan loop wedged")
)

// Ack acknowledges one accepted event: by the time the client sees it, the
// event is fsynced in the WAL and applied to the live schedule.
type Ack struct {
	// Seq is the WAL sequence number assigned to the event.
	Seq uint64 `json:"seq"`
	// Applied is false for idempotent duplicates.
	Applied bool `json:"applied"`
	// Now is the Engine's logical clock after the event.
	Now float64 `json:"now"`
	// Digest fingerprints the schedule state after the event.
	Digest string `json:"digest"`
}

// request is one queued Submit or internal read.
type request struct {
	ev    Event
	ctx   context.Context
	reply chan result
	// coflow, on a kindStatus read, additionally requests that Coflow's view.
	coflow *int
}

// result is the apply loop's reply. For kindStatus reads the loop builds the
// status (and optional Coflow view) itself, so handlers never touch the
// Engine while the loop may be mutating it.
type result struct {
	ack    Ack
	err    error
	status Status
	view   *coflowView
}

// Daemon is the online scheduler service: a single apply loop serializing
// Store.Accept over a bounded intake queue, with admission control in front,
// a watchdog beside it, and checkpointing behind it. HTTP handlers (Routes)
// and probes (Ready) are mounted on an obshttp server by the caller.
type Daemon struct {
	cfg   Config
	store *Store
	m     *obs.DaemonMetrics

	intake chan request
	// inflight counts requests admitted but not yet answered.
	inflight atomic.Int64
	// draining flips once, at Shutdown.
	draining atomic.Bool
	// stopped flips when the apply loop has exited.
	stopped atomic.Bool
	// busySince is the wall nanotime the loop started the current apply, 0
	// while idle — the watchdog's only view into the loop.
	busySince atomic.Int64
	// wedged is the watchdog's verdict.
	wedged atomic.Bool

	// acceptFault, when set, is consulted before every Store.Accept and its
	// error treated as a transient WAL append failure. It exists for tests to
	// exercise the retry path; production never stores into it.
	acceptFault atomic.Pointer[func() error]

	// lastDone tracks the engine's completion count between applies so the
	// CoflowsDone counter advances by exactly the new completions. Only the
	// apply loop touches it.
	lastDone int

	drainCh chan struct{} // closed by Shutdown to start the drain
	doneCh  chan struct{} // closed when the apply loop exits
	wg      sync.WaitGroup

	// mu serializes Shutdown.
	mu sync.Mutex
}

// Start opens (or recovers) the data directory and starts the apply loop and
// watchdog. The returned Daemon is ready to accept events; mount Routes and
// Ready on an obshttp server to serve them.
func Start(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	store, err := Open(cfg.DataDir, cfg.Engine, cfg.Obs, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		store:   store,
		m:       cfg.Metrics,
		intake:  make(chan request, cfg.QueueSize),
		drainCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
		// Completions restored from disk predate this process; the counter
		// advances only for Coflows that finish from here on.
		lastDone: store.Engine().DoneCount(),
	}
	d.wg.Add(1)
	go d.loop()
	if cfg.WatchdogTimeout > 0 {
		d.wg.Add(1)
		go d.watchdog()
	}
	return d, nil
}

// Engine returns the live engine. It is only safe to read from outside the
// apply loop while the loop is idle; handlers use Status instead.
func (d *Daemon) Engine() *Engine { return d.store.Engine() }

// Recovered returns how many WAL records startup replayed.
func (d *Daemon) Recovered() int { return d.store.Recovered() }

// Ready implements the /readyz probe: nil while the daemon accepts work.
func (d *Daemon) Ready() error {
	switch {
	case d.stopped.Load():
		return ErrStopped
	case d.draining.Load():
		return ErrDraining
	case d.wedged.Load():
		return ErrWedged
	}
	return nil
}

// Submit runs one event through admission control and the apply loop,
// blocking until the event is durable and applied (or rejected). The three
// service errors — ErrOverloaded, ErrDraining, context deadline — leave no
// trace in the WAL; everything past them is acknowledged exactly once.
func (d *Daemon) Submit(ctx context.Context, ev Event) (Ack, error) {
	if d.stopped.Load() {
		return Ack{}, ErrStopped
	}
	if d.draining.Load() {
		return Ack{}, ErrDraining
	}
	if n := d.inflight.Add(1); n > int64(d.cfg.MaxInflight) {
		d.inflight.Add(-1)
		if m := d.m; m != nil {
			m.EventsShed.Inc()
		}
		return Ack{}, ErrOverloaded
	}
	defer d.inflight.Add(-1)
	if m := d.m; m != nil {
		m.Inflight.Set(d.inflight.Load())
	}

	ctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
	defer cancel()
	req := request{ev: ev, ctx: ctx, reply: make(chan result, 1)}
	select {
	case d.intake <- req:
	case <-ctx.Done():
		// Backpressure turned into load shedding: the queue stayed full for
		// the whole request deadline.
		if m := d.m; m != nil {
			m.EventsShed.Inc()
		}
		return Ack{}, fmt.Errorf("%w: intake queue full", ErrOverloaded)
	case <-d.doneCh:
		return Ack{}, ErrStopped
	}
	select {
	case r := <-req.reply:
		return r.ack, r.err
	case <-ctx.Done():
		// The loop will still apply the event (it may already be in the WAL);
		// only the acknowledgment is abandoned.
		return Ack{}, ctx.Err()
	}
}

// loop is the single apply goroutine: every Engine mutation happens here.
func (d *Daemon) loop() {
	defer d.wg.Done()
	defer close(d.doneCh)
	sinceCheckpoint := 0
	var tick <-chan time.Time
	if d.cfg.CheckpointInterval > 0 {
		t := time.NewTicker(d.cfg.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		if m := d.m; m != nil {
			m.QueueDepth.Set(int64(len(d.intake)))
		}
		select {
		case req := <-d.intake:
			if d.serve(req) {
				sinceCheckpoint++
			}
			if d.cfg.CheckpointEvery > 0 && sinceCheckpoint >= d.cfg.CheckpointEvery {
				d.checkpoint()
				sinceCheckpoint = 0
			}
		case <-tick:
			if sinceCheckpoint > 0 {
				d.checkpoint()
				sinceCheckpoint = 0
			}
		case <-d.drainCh:
			// Graceful drain: new Submits are already rejected; finish what
			// was admitted, checkpoint, close.
			for {
				select {
				case req := <-d.intake:
					d.serve(req)
				default:
					d.checkpoint()
					d.store.Close()
					d.stopped.Store(true)
					return
				}
			}
		}
	}
}

// serve applies one queued request, reporting whether an event was accepted
// into the WAL.
func (d *Daemon) serve(req request) bool {
	if req.ev.Kind == kindStatus {
		// Internal read: serialized with applies and never touches the WAL.
		// The snapshot is built here, inside the loop, so it cannot race the
		// next apply.
		req.reply <- d.snapshot(req.coflow)
		return false
	}
	if err := req.ctx.Err(); err != nil {
		// The deadline fired while the request was queued: the event never
		// reached the WAL, so dropping it is safe and the client saw ctx.Err.
		if m := d.m; m != nil {
			m.EventsExpired.Inc()
		}
		req.reply <- result{err: err}
		return false
	}
	d.busySince.Store(time.Now().UnixNano())
	start := time.Now()
	ev, applied, err := d.acceptWithRetry(req.ev)
	d.observeApply(time.Since(start), err)
	d.busySince.Store(0)
	d.wedged.Store(false)
	if err != nil {
		req.reply <- result{err: err}
		// Anything past a durable append — deterministic rejections, apply
		// errors — consumed a WAL record; a failed append (retries exhausted)
		// did not.
		return !isWALError(err)
	}
	req.reply <- result{ack: Ack{
		Seq:     ev.Seq,
		Applied: applied,
		Now:     d.store.Engine().Now(),
		Digest:  d.store.Engine().Digest(),
	}}
	return true
}

// acceptWithRetry retries WAL append failures on the configured fault.Backoff
// schedule — the only transient class: nothing was persisted or applied, so
// re-submitting the same event is safe. Everything else — deterministic
// Engine rejections and apply errors after a durable append (advance step
// budget, replan failures) — returns immediately: the WAL record is consumed,
// and a retry would append another record and mutate the Engine again.
func (d *Daemon) acceptWithRetry(ev Event) (Event, bool, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = nil
		if f := d.acceptFault.Load(); f != nil {
			if ferr := (*f)(); ferr != nil {
				lastErr = &walError{ferr}
			}
		}
		if lastErr == nil {
			acked, applied, err := d.store.Accept(ev)
			if err == nil || !isWALError(err) {
				return acked, applied, err
			}
			lastErr = err
		}
		if attempt >= d.cfg.MaxRetries {
			return ev, false, fmt.Errorf("daemon: accept failed after %d attempts: %w", attempt+1, lastErr)
		}
		if m := d.m; m != nil {
			m.ReplanRetries.Inc()
		}
		time.Sleep(time.Duration(d.cfg.Retry.Delay(attempt) * float64(time.Second)))
	}
}

// observeApply updates the per-apply metrics.
func (d *Daemon) observeApply(dur time.Duration, err error) {
	m := d.m
	if m == nil {
		return
	}
	m.ReplanSeconds.Observe(dur.Seconds())
	if err == nil {
		m.EventsAccepted.Inc()
		m.Replans.Inc()
	} else {
		m.EventsRejected.Inc()
	}
	eng := d.store.Engine()
	m.CoflowsLive.Set(int64(eng.LiveCount()))
	if done := eng.DoneCount(); done > d.lastDone {
		m.CoflowsDone.Add(int64(done - d.lastDone))
		d.lastDone = done
	}
}

// checkpoint snapshots state and rotates the WAL; failures are non-fatal (the
// WAL alone is sufficient for recovery, just slower).
func (d *Daemon) checkpoint() {
	_ = d.store.Checkpoint()
}

// watchdog fails readiness when one apply has been running longer than
// WatchdogTimeout — the signature of a wedged replan loop. Readiness returns
// once the loop moves again (serve clears the flag after every apply).
func (d *Daemon) watchdog() {
	defer d.wg.Done()
	period := d.cfg.WatchdogTimeout / 4
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			since := d.busySince.Load()
			if since == 0 {
				continue
			}
			if time.Since(time.Unix(0, since)) > d.cfg.WatchdogTimeout {
				if !d.wedged.Swap(true) {
					if m := d.m; m != nil {
						m.WatchdogStalls.Inc()
					}
				}
			}
		case <-d.doneCh:
			return
		}
	}
}

// Shutdown drains gracefully: readiness fails and new Submits are rejected
// immediately, everything already admitted is applied and acknowledged, a
// final checkpoint is written, and the store closes. Accepted Coflows are
// never lost — they are in the WAL before any acknowledgment. Shutdown is
// idempotent; ctx bounds the wait.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining.Swap(true) {
		// Second call: just wait for the first drain to finish.
	} else {
		if m := d.m; m != nil {
			m.Drains.Inc()
		}
		close(d.drainCh)
	}
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: drain interrupted: %w", ctx.Err())
	}
}
