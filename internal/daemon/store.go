package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"sunflow/internal/obs"
)

// Store is the crash-safe persistence layer under a Daemon: an Engine plus a
// write-ahead log of every accepted event and periodic snapshots of Engine
// state. The protocol is strict write-ahead:
//
//	validate → Append (fsync) → Apply → acknowledge
//
// so every acknowledged event is on disk before it touches the Engine. After
// a crash, Open restores the latest snapshot and replays the WAL suffix
// (records with Seq beyond the snapshot); because the Engine is a pure
// function of the accepted event sequence — deterministic rejections
// included — the recovered Engine is bit-identical to the pre-crash one, down
// to its schedule digest. recovery_test.go proves this over kill points at
// every event boundary, torn WAL tails, and checkpoints at arbitrary
// positions.
type Store struct {
	dir      string
	snapPath string
	walPath  string

	eng *Engine
	wal *os.File
	// seq is the last sequence number assigned.
	seq uint64
	// good is the WAL offset after the last fully appended record. A failed
	// append rewinds the file here before any retry, so a retried record can
	// never land after partial garbage from the failed attempt — recovery
	// would truncate at the garbage and discard the retried record even
	// though it was fsynced and acknowledged.
	good int64
	// dirty is set when a failed append may have left bytes past good and
	// the rewind itself failed; Accept re-attempts the rewind before the next
	// append.
	dirty bool
	// recovered counts WAL records replayed by Open.
	recovered int

	m *obs.DaemonMetrics
}

// snapshotVersion guards the snapshot schema. Version 2 added the drift-free
// base remainder to live entries; a version-1 snapshot cannot restore it, so
// it is rejected rather than silently diverging from the pre-crash engine.
const snapshotVersion = 2

// snapshotFile is the on-disk checkpoint.
type snapshotFile struct {
	Version int          `json:"version"`
	Config  EngineConfig `json:"config"`
	Seq     uint64       `json:"seq"`
	State   engineState  `json:"state"`
}

const (
	snapshotName = "snapshot.json"
	walName      = "wal.log"
)

// ErrConfigMismatch rejects opening a data directory checkpointed under a
// different EngineConfig: replaying its history under new parameters would
// silently produce different schedules.
var ErrConfigMismatch = errors.New("daemon: data directory was written under a different engine config")

// Open loads (or initializes) the data directory: restore the latest
// snapshot if present, replay the WAL suffix through the Engine, truncate any
// torn tail, and leave the WAL open for appends. The directory is created if
// missing.
func Open(dir string, cfg EngineConfig, o *obs.Observer, m *obs.DaemonMetrics) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: data dir: %w", err)
	}
	s := &Store{
		dir:      dir,
		snapPath: filepath.Join(dir, snapshotName),
		walPath:  filepath.Join(dir, walName),
		m:        m,
	}
	eng, err := NewEngine(cfg, o)
	if err != nil {
		return nil, err
	}
	s.eng = eng

	var snapSeq uint64
	if raw, err := os.ReadFile(s.snapPath); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(raw, &snap); err != nil {
			return nil, fmt.Errorf("daemon: snapshot %s corrupt: %w", s.snapPath, err)
		}
		if snap.Version != snapshotVersion {
			return nil, fmt.Errorf("daemon: snapshot %s has version %d, want %d", s.snapPath, snap.Version, snapshotVersion)
		}
		// FullReplan is a performance knob that cannot change schedules (the
		// differential property tests pin bit-identity), so it is excluded
		// from config identity: a data directory may be reopened with it
		// toggled.
		sc, oc := snap.Config, cfg
		sc.FullReplan, oc.FullReplan = false, false
		if sc != oc {
			return nil, fmt.Errorf("%w: snapshot has %+v", ErrConfigMismatch, snap.Config)
		}
		if err := eng.restoreState(snap.State); err != nil {
			return nil, err
		}
		snapSeq = snap.Seq
		s.seq = snap.Seq
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("daemon: read snapshot: %w", err)
	}

	wal, err := os.OpenFile(s.walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("daemon: open wal: %w", err)
	}
	events, goodBytes, err := readWAL(wal)
	if err != nil {
		wal.Close()
		return nil, err
	}
	for _, ev := range events {
		if ev.Seq <= snapSeq {
			// Pre-checkpoint record: the crash hit between snapshot rename and
			// WAL rotation. The snapshot already includes it.
			continue
		}
		// Deterministic rejections replay as rejections; both fold into the
		// digest identically, so errors here are part of history, not faults.
		_, _ = s.eng.Apply(ev)
		s.seq = ev.Seq
		s.recovered++
	}
	// Drop the torn tail (if any) so the next append starts on a record
	// boundary.
	if err := wal.Truncate(goodBytes); err != nil {
		wal.Close()
		return nil, fmt.Errorf("daemon: truncate torn wal tail: %w", err)
	}
	if _, err := wal.Seek(goodBytes, 0); err != nil {
		wal.Close()
		return nil, fmt.Errorf("daemon: seek wal: %w", err)
	}
	s.wal = wal
	s.good = goodBytes
	if m != nil {
		m.RecoveredEvents.Add(int64(s.recovered))
	}
	return s, nil
}

// Engine returns the Store's engine. Callers must not apply events directly;
// use Accept so every applied event is WAL-durable first.
func (s *Store) Engine() *Engine { return s.eng }

// LastSeq returns the last assigned sequence number.
func (s *Store) LastSeq() uint64 { return s.seq }

// Recovered returns how many WAL records Open replayed.
func (s *Store) Recovered() int { return s.recovered }

// Accept runs the write-ahead protocol for one event: assign the next
// sequence number, append and fsync the record, then apply it to the Engine.
// The returned event carries its assigned Seq. Apply rejections are returned
// to the caller but the record stays in the WAL — rejection is deterministic,
// so replay reproduces it. Append failures come back as a walError (nothing
// persisted or applied, safe to retry); apply errors do not.
func (s *Store) Accept(ev Event) (Event, bool, error) {
	if s.dirty {
		if err := s.rewind(); err != nil {
			return ev, false, &walError{fmt.Errorf("daemon: rewind wal after failed append: %w", err)}
		}
	}
	ev.Seq = s.seq + 1
	n, err := appendWALRecord(s.wal, ev)
	if err != nil {
		// The append did not happen (or is not durable): do not apply, and do
		// not consume the sequence number. Rewind past any partially written
		// bytes so a retry starts on a record boundary.
		s.dirty = true
		if rerr := s.rewind(); rerr != nil {
			err = fmt.Errorf("%w (rewind also failed: %v)", err, rerr)
		}
		return ev, false, &walError{err}
	}
	s.good += int64(n)
	s.seq = ev.Seq
	if m := s.m; m != nil {
		m.WALAppends.Inc()
		m.WALBytes.Add(int64(n))
	}
	applied, err := s.eng.Apply(ev)
	return ev, applied, err
}

// rewind truncates the WAL back to the last known-good record boundary and
// restores the write offset there, discarding partial bytes a failed append
// may have left.
func (s *Store) rewind() error {
	if err := s.wal.Truncate(s.good); err != nil {
		return err
	}
	if _, err := s.wal.Seek(s.good, 0); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Checkpoint writes an atomic snapshot of the Engine and rotates the WAL.
// Crash windows are all safe: before the rename the old snapshot+WAL pair is
// intact; between rename and truncation the WAL holds records the snapshot
// already covers, which replay skips by sequence number.
func (s *Store) Checkpoint() error {
	snap := snapshotFile{
		Version: snapshotVersion,
		Config:  s.eng.cfg,
		Seq:     s.seq,
		State:   s.eng.State(),
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("daemon: encode snapshot: %w", err)
	}
	tmp := s.snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("daemon: snapshot tmp: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("daemon: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("daemon: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("daemon: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath); err != nil {
		return fmt.Errorf("daemon: publish snapshot: %w", err)
	}
	syncDir(s.dir)
	// Rotate: everything in the WAL is now covered by the snapshot.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("daemon: rotate wal: %w", err)
	}
	s.good = 0
	if _, err := s.wal.Seek(0, 0); err != nil {
		// Offset unknown; force a rewind before the next append.
		s.dirty = true
		return fmt.Errorf("daemon: rotate wal: %w", err)
	}
	s.dirty = false
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("daemon: fsync rotated wal: %w", err)
	}
	if m := s.m; m != nil {
		m.Snapshots.Inc()
	}
	return nil
}

// Close releases the WAL handle. It does not checkpoint; state is already
// durable record by record.
func (s *Store) Close() error {
	if s == nil || s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable. Errors are
// dropped: some filesystems reject directory fsync, and the rename itself is
// already ordered after the tmp file's data sync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
