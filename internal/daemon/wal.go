package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log is line-framed JSON: each record is
//
//	crc32c-hex8 SP json-event LF
//
// The checksum covers the JSON bytes. Text framing keeps the log greppable
// during an incident; the CRC plus the trailing newline make torn tails
// detectable: a record is valid only when its line is newline-terminated and
// its checksum matches. Recovery accepts every valid prefix and truncates the
// first damaged byte onward — a crash mid-append (kill -9, power loss) costs
// at most the record being written, which was never acknowledged.
//
// Appends are fsynced before the daemon acknowledges an event, so an
// acknowledged event is durable by construction.

// crcTable is Castagnoli, the polynomial with hardware support on both amd64
// and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecordLimit bounds one record line (64 MiB) so a corrupt newline-free
// region cannot make recovery buffer unbounded garbage.
const walRecordLimit = 64 << 20

// walError marks a failed WAL append: the event is neither durable nor
// applied, so re-submitting the same event is safe. Errors from Engine.Apply
// after a durable append are never wrapped — the record is consumed, and a
// retry would append and apply the event a second time.
type walError struct{ err error }

func (e *walError) Error() string { return e.err.Error() }
func (e *walError) Unwrap() error { return e.err }

// isWALError reports whether a WAL append failure is anywhere in err's chain.
func isWALError(err error) bool {
	var we *walError
	return errors.As(err, &we)
}

// appendWALRecord frames, writes and fsyncs one event.
func appendWALRecord(f *os.File, ev Event) (n int, err error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return 0, fmt.Errorf("daemon: encode wal record: %w", err)
	}
	line := make([]byte, 0, len(body)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.Checksum(body, crcTable))...)
	line = append(line, body...)
	line = append(line, '\n')
	if _, err := f.Write(line); err != nil {
		return 0, fmt.Errorf("daemon: append wal record: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("daemon: fsync wal: %w", err)
	}
	return len(line), nil
}

// readWAL scans the log from the start, returning every valid record and the
// byte offset of the first damaged (or torn) one — len(file) when the log is
// wholly intact. Damage is tolerated only at the tail: since appends are
// sequential and fsynced, anything after the first bad byte was never
// acknowledged.
func readWAL(r io.Reader) (events []Event, goodBytes int64, err error) {
	return readWALBounded(r, walRecordLimit)
}

// readWALBounded is readWAL with an explicit record-size bound. Lines are
// accumulated in buffer-sized chunks and the scan aborts as soon as one
// exceeds the limit, so a corrupt newline-free region buffers at most
// limit + one buffer of garbage instead of the whole region.
func readWALBounded(r io.Reader, limit int) (events []Event, goodBytes int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var line []byte
	for {
		line = line[:0]
		for {
			chunk, rerr := br.ReadSlice('\n')
			line = append(line, chunk...)
			if rerr == nil {
				break
			}
			if rerr == io.EOF {
				// A bare tail without its newline is a torn final append.
				return events, goodBytes, nil
			}
			if rerr != bufio.ErrBufferFull {
				return events, goodBytes, fmt.Errorf("daemon: read wal: %w", rerr)
			}
			if len(line) > limit {
				// Oversized before any newline: damage, not a record.
				return events, goodBytes, nil
			}
		}
		if len(line) > limit {
			return events, goodBytes, nil
		}
		ev, ok := parseWALLine(line[:len(line)-1])
		if !ok {
			return events, goodBytes, nil
		}
		events = append(events, ev)
		goodBytes += int64(len(line))
	}
}

// parseWALLine validates one framed record.
func parseWALLine(line []byte) (Event, bool) {
	var ev Event
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return ev, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return ev, false
	}
	body := line[9:]
	if crc32.Checksum(body, crcTable) != sum {
		return ev, false
	}
	if err := json.Unmarshal(body, &ev); err != nil {
		return ev, false
	}
	return ev, true
}
