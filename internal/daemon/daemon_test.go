package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/obs/obshttp"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Engine:  EngineConfig{Ports: 8, LinkBps: 1e9, Delta: 0.01},
		DataDir: t.TempDir(),
		Retry:   fault.Backoff{Base: 1e-4, Factor: 2, Cap: 1e-3},
	}
}

func mustStart(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = d.Shutdown(ctx)
	})
	return d
}

func register(id int, at float64) Event {
	return Event{Kind: KindRegister, At: at, Coflow: id, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}}
}

// TestDaemonSubmitLifecycle: events stream in, acks carry monotone sequence
// numbers and the digest evolves; a duplicate register acks without applying.
func TestDaemonSubmitLifecycle(t *testing.T) {
	d := mustStart(t, testConfig(t))
	ctx := context.Background()

	a1, err := d.Submit(ctx, register(1, 0))
	if err != nil || !a1.Applied || a1.Seq != 1 {
		t.Fatalf("register: ack=%+v err=%v", a1, err)
	}
	a2, err := d.Submit(ctx, register(1, 0))
	if err != nil || a2.Applied {
		t.Fatalf("duplicate register: ack=%+v err=%v (want un-applied ack)", a2, err)
	}
	if a2.Seq != 2 {
		t.Fatalf("duplicate consumed seq %d, want 2 (still WAL-logged)", a2.Seq)
	}
	if _, err := d.Submit(ctx, Event{Kind: KindComplete, At: 1, Coflow: 99}); !errors.Is(err, ErrUnknownCoflow) {
		t.Fatalf("complete unknown: err=%v, want ErrUnknownCoflow", err)
	}
	a3, err := d.Submit(ctx, Event{Kind: KindAdvance, At: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a3.Now != 100 {
		t.Fatalf("advance: now=%v, want 100", a3.Now)
	}
	st, err := d.status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 0 || st.Done != 1 || st.Seq != 4 {
		t.Fatalf("status = %+v, want live=0 done=1 seq=4", st)
	}
}

// TestDaemonOverloadShedsButStaysObservable is the acceptance criterion for
// admission control: with the apply loop wedged and the intake saturated, new
// submissions shed with ErrOverloaded (HTTP 429) immediately, while /metrics
// and /healthz on the same process keep answering.
func TestDaemonOverloadShedsButStaysObservable(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.QueueSize = 1
	cfg.MaxInflight = 2
	cfg.RequestTimeout = 50 * time.Millisecond
	cfg.WatchdogTimeout = -1
	cfg.Metrics = obs.NewDaemonMetrics(reg)
	d := mustStart(t, cfg)

	block := make(chan struct{})
	blockFn := func() error { <-block; return nil }
	d.acceptFault.Store(&blockFn)
	defer func() {
		select {
		case <-block: // already closed
		default:
			close(block)
		}
	}()

	srv, err := obshttp.Serve("localhost:0", reg, obshttp.Options{Ready: d.Ready})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// First submit occupies the loop; second fills the queue.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			_, err := d.Submit(context.Background(), register(10+i, 0))
			results <- err
		}()
	}
	waitFor(t, func() bool { return d.inflight.Load() == 2 })

	// Third request exceeds MaxInflight: shed immediately, not after a wait.
	start := time.Now()
	if _, err := d.Submit(context.Background(), register(99, 0)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload submit: err=%v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Errorf("shedding blocked %v; must be immediate", waited)
	}

	// The observability plane must stay responsive while overloaded.
	for _, path := range []string{"/healthz", "/metrics", "/metrics.json"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s during overload: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s during overload: status %d", path, resp.StatusCode)
		}
	}
	if got := cfg.Metrics.EventsShed.Load(); got < 1 {
		t.Errorf("events_shed = %d, want >= 1", got)
	}

	// Unblock: the two admitted submissions must complete normally.
	close(block)
	d.acceptFault.Store(nil)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted submit %d failed: %v", i, err)
		}
	}
}

// TestDaemonQueueBackpressureSheds: when the queue stays full for the whole
// request deadline, the submission sheds as overload rather than hanging.
func TestDaemonQueueBackpressureSheds(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueSize = 1
	cfg.MaxInflight = 100
	cfg.RequestTimeout = 30 * time.Millisecond
	cfg.WatchdogTimeout = -1
	d := mustStart(t, cfg)
	block := make(chan struct{})
	blockFn := func() error { <-block; return nil }
	d.acceptFault.Store(&blockFn)
	done := make(chan struct{})
	go func() { // occupies the loop
		d.Submit(context.Background(), register(1, 0))
		close(done)
	}()
	waitFor(t, func() bool { return d.busySince.Load() != 0 })
	go d.Submit(context.Background(), register(2, 0)) // fills the queue
	waitFor(t, func() bool { return len(d.intake) == 1 })
	if _, err := d.Submit(context.Background(), register(3, 0)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("backpressure submit: err=%v, want ErrOverloaded", err)
	}
	close(block)
	d.acceptFault.Store(nil)
	<-done
}

// TestDaemonDrainKeepsAcceptedCoflows is the SIGTERM acceptance criterion:
// Shutdown answers everything admitted, then a fresh process over the same
// data directory sees every accepted Coflow — nothing acknowledged is lost.
func TestDaemonDrainKeepsAcceptedCoflows(t *testing.T) {
	cfg := testConfig(t)
	d, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if _, err := d.Submit(ctx, register(i, float64(i))); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	wantDigest := d.Engine().Digest()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.Ready(); err == nil {
		t.Fatal("Ready() nil after shutdown")
	}
	if _, err := d.Submit(ctx, register(6, 6)); err == nil {
		t.Fatal("submit after shutdown accepted")
	}

	// Restart over the same directory: the final checkpoint makes recovery a
	// pure snapshot load.
	d2, err := Start(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer d2.Shutdown(ctx)
	if d2.Recovered() != 0 {
		t.Errorf("recovered %d WAL records after graceful drain, want 0 (checkpointed)", d2.Recovered())
	}
	if got := d2.Engine().Digest(); got != wantDigest {
		t.Errorf("digest after restart %s, want %s", got, wantDigest)
	}
	// Earlier registrations complete as the clock advances with each arrival;
	// every accepted Coflow must be accounted for, live or done.
	if live, done := d2.Engine().LiveCount(), d2.Engine().DoneCount(); live+done != 5 {
		t.Errorf("coflows after restart: live=%d done=%d, want 5 total", live, done)
	}
}

// TestDaemonWatchdogFailsReadiness: a wedged apply flips /readyz while
// liveness stays green, and readiness recovers when the loop moves again.
func TestDaemonWatchdogFailsReadiness(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.WatchdogTimeout = 30 * time.Millisecond
	cfg.Metrics = obs.NewDaemonMetrics(reg)
	d := mustStart(t, cfg)
	block := make(chan struct{})
	blockFn := func() error { <-block; return nil }
	d.acceptFault.Store(&blockFn)
	done := make(chan struct{})
	go func() {
		d.Submit(context.Background(), register(1, 0))
		close(done)
	}()
	waitFor(t, func() bool { return errors.Is(d.Ready(), ErrWedged) })
	if got := cfg.Metrics.WatchdogStalls.Load(); got != 1 {
		t.Errorf("watchdog_stalls = %d, want 1", got)
	}
	close(block)
	d.acceptFault.Store(nil)
	<-done
	waitFor(t, func() bool { return d.Ready() == nil })
}

// TestDaemonRetriesTransientAcceptFailures: transient WAL-layer failures are
// retried on the fault.Backoff schedule and the submission still succeeds;
// the retries are counted.
func TestDaemonRetriesTransientAcceptFailures(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.Metrics = obs.NewDaemonMetrics(reg)
	d := mustStart(t, cfg)
	fails := 2
	flaky := func() error {
		if fails > 0 {
			fails--
			return errors.New("transient disk error")
		}
		return nil
	}
	d.acceptFault.Store(&flaky)
	ack, err := d.Submit(context.Background(), register(1, 0))
	if err != nil || !ack.Applied {
		t.Fatalf("submit through transient failures: ack=%+v err=%v", ack, err)
	}
	if got := cfg.Metrics.ReplanRetries.Load(); got != 2 {
		t.Errorf("replan_retries = %d, want 2", got)
	}

	// Exhausted retries surface the transient error.
	dead := func() error { return errors.New("disk gone") }
	d.acceptFault.Store(&dead)
	if _, err := d.Submit(context.Background(), register(2, 0)); err == nil {
		t.Fatal("submit with permanent accept failure succeeded")
	}
	d.acceptFault.Store(nil)
}

// TestDaemonReadsDoNotRaceApplies hammers status and per-Coflow reads while
// submissions mutate the Engine. The apply loop builds every read reply
// itself, so under -race this pins that handler goroutines never touch Engine
// maps mid-apply (which previously could panic the daemon on concurrent map
// iteration and write, or return torn digests).
func TestDaemonReadsDoNotRaceApplies(t *testing.T) {
	d := mustStart(t, testConfig(t))
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Submit(ctx, register(i, float64(i)*0.01)); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.status(ctx); err != nil {
					t.Errorf("status: %v", err)
					return
				}
				// Mix of ids that are live, done, and unknown.
				if _, err := d.read(ctx, &i); err != nil {
					t.Errorf("coflow read: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestDaemonHTTPAPI drives the full /v1 surface through a real obshttp
// server: register, advance, inspect, status, error mapping, readiness
// through drain.
func TestDaemonHTTPAPI(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.Metrics = obs.NewDaemonMetrics(reg)
	d := mustStart(t, cfg)
	srv, err := obshttp.Serve("localhost:0", reg, obshttp.Options{
		Ready:  d.Ready,
		Routes: d.Routes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	resp, body := post("/v1/coflows", registerRequest{Coflow: 1, At: 0, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 1e6}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var ack Ack
	if err := json.Unmarshal(body, &ack); err != nil || ack.Seq != 1 || !ack.Applied {
		t.Fatalf("register ack %s (err=%v)", body, err)
	}

	// Duplicate with different content → 409.
	resp, _ = post("/v1/coflows", registerRequest{Coflow: 1, At: 0, Flows: []FlowSpec{{Src: 0, Dst: 1, Bytes: 9e6}}})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflicting register: status %d, want 409", resp.StatusCode)
	}
	// Malformed event → 400.
	resp, _ = post("/v1/events", map[string]any{"kind": "bogus", "at": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus event: status %d, want 400", resp.StatusCode)
	}
	// Advance and read back.
	resp, _ = post("/v1/events", Event{Kind: KindAdvance, At: 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", resp.StatusCode)
	}
	resp, body = get("/v1/coflows/1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get coflow: %d %s", resp.StatusCode, body)
	}
	var view coflowView
	if err := json.Unmarshal(body, &view); err != nil || view.State != "done" || view.Completion == nil {
		t.Fatalf("coflow view %s (err=%v)", body, err)
	}
	resp, _ = get("/v1/coflows/777")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown coflow: status %d, want 404", resp.StatusCode)
	}
	resp, body = get("/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil || st.Done != 1 || st.Now != 50 {
		t.Fatalf("status %s (err=%v)", body, err)
	}
	resp, _ = get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving: status %d", resp.StatusCode)
	}

	// Drain: readiness fails, API rejects with 503, liveness stays green.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: status %d, want 503", resp.StatusCode)
	}
	resp, _ = post("/v1/events", Event{Kind: KindAdvance, At: 60})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: status %d, want 503", resp.StatusCode)
	}
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain: status %d, want 200 (still alive)", resp.StatusCode)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

// TestDaemonCheckpointEvery: count-triggered checkpoints rotate the WAL so a
// restart replays only the post-checkpoint suffix.
func TestDaemonCheckpointEvery(t *testing.T) {
	cfg := testConfig(t)
	cfg.CheckpointEvery = 3
	cfg.CheckpointInterval = -1
	d, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 1; i <= 4; i++ {
		if _, err := d.Submit(ctx, register(i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := d.Engine().Digest()
	// kill -9: drop the daemon without draining (the store handle leaks until
	// process exit, which is exactly what a crash does).
	_ = fmt.Sprintf("%p", d) // keep d alive to here

	d2, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(ctx)
	if d2.Recovered() != 1 {
		t.Errorf("recovered %d records, want 1 (3 checkpointed + 1 in WAL)", d2.Recovered())
	}
	if got := d2.Engine().Digest(); got != want {
		t.Errorf("digest after crash restart %s, want %s", got, want)
	}
}
