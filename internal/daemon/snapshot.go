package daemon

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"sunflow/internal/core"
	"sunflow/internal/fabric"
)

// This file encodes and restores Engine state for checkpoints. Two rules make
// the round trip bit-exact:
//
//   - Every map is serialized as a slice sorted by its key, so the same state
//     always produces the same bytes (the smoke test diffs snapshots).
//   - Floats ride through encoding/json untouched — Go emits the shortest
//     representation that round-trips float64 exactly — except ±Inf, which
//     JSON cannot carry; infFloat spells those as strings.
//
// Notably the PRT itself is never serialized: every replan rebuilds it from
// the plan's locked reservations, so the plan slice is the whole truth.

// infFloat is a float64 whose JSON form survives ±Inf.
type infFloat float64

// MarshalJSON encodes ±Inf as the strings "+inf"/"-inf".
func (f infFloat) MarshalJSON() ([]byte, error) {
	switch {
	case math.IsInf(float64(f), 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(float64(f), -1):
		return []byte(`"-inf"`), nil
	}
	return json.Marshal(float64(f))
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (f *infFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+inf"`:
		*f = infFloat(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = infFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = infFloat(v)
	return nil
}

// flowBytes is one (flow, bytes) pair of a serialized demand map.
type flowBytes struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Bytes float64 `json:"bytes"`
}

// flowTime is one (flow, instant) pair of a serialized finish map.
type flowTime struct {
	Src int     `json:"src"`
	Dst int     `json:"dst"`
	T   float64 `json:"t"`
}

// liveState is one live Coflow in a snapshot.
type liveState struct {
	ID            int         `json:"id"`
	Arrival       float64     `json:"arrival"`
	Priority      int         `json:"priority,omitempty"`
	Spec          []FlowSpec  `json:"spec"`
	Rem           []flowBytes `json:"rem"`
	Base          []flowBytes `json:"base,omitempty"`
	FlowFinish    []flowTime  `json:"flow_finish,omitempty"`
	Finish        infFloat    `json:"finish"`
	Switches      int         `json:"switches,omitempty"`
	Stranded      bool        `json:"stranded,omitempty"`
	StrandedBytes float64     `json:"stranded_bytes,omitempty"`
}

// doneState is one completed Coflow in a snapshot.
type doneState struct {
	ID int `json:"id"`
	Completion
}

// outageState is one declared outage in a snapshot.
type outageState struct {
	Port      int     `json:"port"`
	Start     float64 `json:"start"`
	End       float64 `json:"end,omitempty"`
	Permanent bool    `json:"permanent,omitempty"`
}

// engineState is the serializable whole of an Engine: applying it to a fresh
// Engine of the same EngineConfig reproduces the source bit-for-bit.
type engineState struct {
	Now     float64            `json:"now"`
	Live    []liveState        `json:"live"`
	Plan    []core.Reservation `json:"plan"`
	Outages []outageState      `json:"outages,omitempty"`
	Done    []doneState        `json:"done"`
	Digest  string             `json:"digest"`
	Replans uint64             `json:"replans"`
}

// State exports the Engine for a checkpoint.
func (e *Engine) State() engineState {
	st := engineState{
		Now:     e.now,
		Live:    make([]liveState, 0, len(e.live)),
		Plan:    append([]core.Reservation(nil), e.plan...),
		Done:    make([]doneState, 0, len(e.done)),
		Digest:  hex.EncodeToString(e.digest[:]),
		Replans: e.replans,
	}
	// Plan order is scheduler-determined but serialization must be canonical;
	// restore re-sorts by Start before crediting anyway (credit always does),
	// so a stable canonical order here is free.
	sort.SliceStable(st.Plan, func(a, b int) bool {
		ra, rb := st.Plan[a], st.Plan[b]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		if ra.CoflowID != rb.CoflowID {
			return ra.CoflowID < rb.CoflowID
		}
		if ra.In != rb.In {
			return ra.In < rb.In
		}
		return ra.Out < rb.Out
	})
	for _, id := range sortedIDs(e.live) {
		lc := e.live[id]
		ls := liveState{
			ID:            lc.id,
			Arrival:       lc.arrival,
			Priority:      lc.priority,
			Spec:          append([]FlowSpec(nil), lc.spec...),
			Rem:           sortedFlowBytes(lc.rem),
			FlowFinish:    sortedFlowTimes(lc.flowFinish),
			Finish:        infFloat(lc.finish),
			Switches:      lc.switches,
			Stranded:      lc.stranded,
			StrandedBytes: lc.strandedBytes,
		}
		if lc.base != nil {
			// base is never empty while set (it clones a rem with in-flight
			// demand), so omitempty cannot conflate it with unset.
			ls.Base = sortedFlowBytes(lc.base)
		}
		st.Live = append(st.Live, ls)
	}
	doneIDs := make([]int, 0, len(e.done))
	for id := range e.done {
		doneIDs = append(doneIDs, id)
	}
	sort.Ints(doneIDs)
	for _, id := range doneIDs {
		st.Done = append(st.Done, doneState{ID: id, Completion: e.done[id]})
	}
	for _, og := range e.outages {
		os := outageState{Port: og.Port, Start: og.Start}
		if og.permanent() {
			os.Permanent = true
		} else {
			os.End = og.End
		}
		st.Outages = append(st.Outages, os)
	}
	return st
}

// restoreState overwrites the Engine with a checkpointed state. The Engine
// must be freshly constructed for the same EngineConfig.
func (e *Engine) restoreState(st engineState) error {
	digest, err := hex.DecodeString(st.Digest)
	if err != nil || len(digest) != len(e.digest) {
		return fmt.Errorf("daemon: snapshot digest %q malformed", st.Digest)
	}
	live := make(map[int]*liveEntry, len(st.Live))
	for _, ls := range st.Live {
		lc := &liveEntry{
			id:            ls.ID,
			arrival:       ls.Arrival,
			priority:      ls.Priority,
			spec:          append([]FlowSpec(nil), ls.Spec...),
			specHash:      hashSpec(ls.Priority, ls.Spec),
			rem:           make(map[fabric.FlowKey]float64, len(ls.Rem)),
			flowFinish:    make(map[fabric.FlowKey]float64, len(ls.FlowFinish)),
			finish:        float64(ls.Finish),
			switches:      ls.Switches,
			stranded:      ls.Stranded,
			strandedBytes: ls.StrandedBytes,
		}
		// Rem was serialized in (src, dst) order, so it doubles as the sorted
		// key list remainderInto iterates. It lacks keys stranded before the
		// checkpoint, but those are absent from rem on a live engine too and
		// readers skip them either way.
		lc.keys = make([]fabric.FlowKey, 0, len(ls.Rem))
		for _, fb := range ls.Rem {
			k := fabric.FlowKey{Src: fb.Src, Dst: fb.Dst}
			lc.rem[k] = fb.Bytes
			lc.keys = append(lc.keys, k)
		}
		if len(ls.Base) > 0 {
			lc.base = make(map[fabric.FlowKey]float64, len(ls.Base))
			for _, fb := range ls.Base {
				lc.base[fabric.FlowKey{Src: fb.Src, Dst: fb.Dst}] = fb.Bytes
			}
		}
		for _, ft := range ls.FlowFinish {
			lc.flowFinish[fabric.FlowKey{Src: ft.Src, Dst: ft.Dst}] = ft.T
		}
		if _, dup := live[ls.ID]; dup {
			return fmt.Errorf("daemon: snapshot lists coflow %d twice", ls.ID)
		}
		live[ls.ID] = lc
	}
	done := make(map[int]Completion, len(st.Done))
	for _, ds := range st.Done {
		done[ds.ID] = ds.Completion
	}
	outages := make([]outage, 0, len(st.Outages))
	for _, os := range st.Outages {
		end := os.End
		if os.Permanent {
			end = math.Inf(1)
		}
		outages = append(outages, outage{Port: os.Port, Start: os.Start, End: end})
	}
	e.now = st.Now
	e.live = live
	e.plan = append([]core.Reservation(nil), st.Plan...)
	e.outages = outages
	e.done = done
	copy(e.digest[:], digest)
	e.replans = st.Replans
	return nil
}

// sortedFlowBytes serializes a demand map in (src, dst) order.
func sortedFlowBytes(m map[fabric.FlowKey]float64) []flowBytes {
	out := make([]flowBytes, 0, len(m))
	for k, b := range m {
		out = append(out, flowBytes{Src: k.Src, Dst: k.Dst, Bytes: b})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Src != out[b].Src {
			return out[a].Src < out[b].Src
		}
		return out[a].Dst < out[b].Dst
	})
	return out
}

// sortedFlowTimes serializes a finish map in (src, dst) order.
func sortedFlowTimes(m map[fabric.FlowKey]float64) []flowTime {
	out := make([]flowTime, 0, len(m))
	for k, t := range m {
		out = append(out, flowTime{Src: k.Src, Dst: k.Dst, T: t})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Src != out[b].Src {
			return out[a].Src < out[b].Src
		}
		return out[a].Dst < out[b].Dst
	})
	return out
}
